// pase_serve — the resilient strategy-serving daemon (src/serve): accepts
// line-delimited JSON solve queries on a Unix-domain socket and keeps the
// solver's caches warm across requests.
//
//   pase_serve --socket PATH [--workers N] [--solver-threads N]
//              [--queue-depth N] [--deadline-ms D] [--max-deadline-ms D]
//              [--watchdog-grace-ms D] [--cache-entries N]
//              [--max-model-nodes N] [--inject SPEC] [--seed S]
//              [--metrics-out FILE] [--metrics-format json|prom]
//              [--log-out FILE] [--trace-out FILE] [--slow-trace-ms D]
//              [--slow-trace-keep N] [--slo-window N]
//
// Robustness knobs:
//   --queue-depth N        admitted solves before requests are shed
//   --deadline-ms D        default per-request budget (requests may send
//                          their own, clamped by --max-deadline-ms)
//   --watchdog-grace-ms D  a solve still running at deadline + grace is
//                          cancelled and answered `error`
//   --inject SPEC          seeded fault injection, e.g.
//                          "slow=0.3:0.05,stall=0.05:2,poison=0.2"
//                          (see src/serve/inject.h)
//
// Observability knobs (DESIGN.md §11):
//   --log-out FILE         stream the structured event log (one canonical
//                          JSON line per request, flushed per line)
//   --trace-out FILE       write the merged per-request Chrome trace on
//                          shutdown (arms request-scoped tracing)
//   --slow-trace-ms D      keep traces only for requests slower than D ms
//                          (slow-request exemplars; ring of
//                          --slow-trace-keep)
//   --slo-window N         rolling SLO quantile window (last N solves)
//   --metrics-format F     json (default) or prom (Prometheus text) for
//                          --metrics-out
//
// SIGINT/SIGTERM or a {"op":"shutdown"} request stop the daemon cleanly;
// --metrics-out dumps the final serve.* metrics snapshot on exit.
//
// Exit codes: 0 clean shutdown, 1 runtime error, 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "serve/server.h"

using namespace pase;
using namespace pase::serve;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

SocketServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server) g_server->stop();
}

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s --socket PATH [--workers N] [--solver-threads N]\n"
      "          [--queue-depth N] [--deadline-ms D] [--max-deadline-ms D]\n"
      "          [--watchdog-grace-ms D] [--cache-entries N]\n"
      "          [--max-model-nodes N] [--inject SPEC] [--seed S]\n"
      "          [--metrics-out FILE] [--metrics-format json|prom]\n"
      "          [--log-out FILE] [--trace-out FILE] [--slow-trace-ms D]\n"
      "          [--slow-trace-keep N] [--slo-window N]\n"
      "\n"
      "Serves strategy queries over line-delimited JSON on a Unix socket\n"
      "(protocol: src/serve/protocol.h). Requests beyond --queue-depth are\n"
      "shed with an explicit response; solves overrunning their deadline\n"
      "degrade to the beam fallback; solves overrunning deadline + grace\n"
      "are killed by the watchdog. --inject arms seeded fault injection\n"
      "(slow=RATE:SECONDS,stall=RATE:SECONDS,poison=RATE).\n"
      "\n"
      "Observability: --log-out streams one canonical-JSON event line per\n"
      "request; --trace-out writes a merged Chrome trace of every request\n"
      "on shutdown (--slow-trace-ms keeps only slow-request exemplars);\n"
      "the metrics op reports rolling p50/p95/p99 over --slo-window\n"
      "solves; --metrics-format selects json or Prometheus text for\n"
      "--metrics-out.\n",
      argv0);
}

bool parse_i64_flag(const char* flag, const char* v, i64 min, i64* out) {
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (v[0] == '\0' || *end != '\0' || parsed < min) {
    std::fprintf(stderr, "error: invalid value '%s' for %s\n", v, flag);
    return false;
  }
  *out = parsed;
  return true;
}

bool parse_double_flag(const char* flag, const char* v, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (v[0] == '\0' || *end != '\0' || parsed < 0) {
    std::fprintf(stderr, "error: invalid value '%s' for %s\n", v, flag);
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  const char* metrics_out_path = nullptr;
  const char* trace_out_path = nullptr;
  bool metrics_prom = false;
  ServeOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", arg);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--socket") == 0) {
      if (!value(&v)) return kExitUsage;
      socket_path = v;
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &options.workers))
        return kExitUsage;
    } else if (std::strcmp(arg, "--solver-threads") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &options.solver_threads))
        return kExitUsage;
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &options.queue_depth))
        return kExitUsage;
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      if (!value(&v) ||
          !parse_double_flag(arg, v, &options.default_deadline_ms))
        return kExitUsage;
    } else if (std::strcmp(arg, "--max-deadline-ms") == 0) {
      if (!value(&v) || !parse_double_flag(arg, v, &options.max_deadline_ms))
        return kExitUsage;
    } else if (std::strcmp(arg, "--watchdog-grace-ms") == 0) {
      if (!value(&v) ||
          !parse_double_flag(arg, v, &options.watchdog_grace_ms))
        return kExitUsage;
    } else if (std::strcmp(arg, "--cache-entries") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &options.cache_entries))
        return kExitUsage;
    } else if (std::strcmp(arg, "--max-model-nodes") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &options.max_model_nodes))
        return kExitUsage;
    } else if (std::strcmp(arg, "--inject") == 0) {
      if (!value(&v)) return kExitUsage;
      const InjectParseResult inject = parse_inject_spec(v);
      if (!inject.ok) {
        std::fprintf(stderr, "error: --inject: %s\n", inject.error.c_str());
        return kExitUsage;
      }
      options.inject = inject.spec;
    } else if (std::strcmp(arg, "--seed") == 0) {
      i64 seed = 0;
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &seed)) return kExitUsage;
      options.seed = static_cast<u64>(seed);
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      if (!value(&metrics_out_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--metrics-format") == 0) {
      if (!value(&v)) return kExitUsage;
      if (std::strcmp(v, "json") == 0) {
        metrics_prom = false;
      } else if (std::strcmp(v, "prom") == 0) {
        metrics_prom = true;
      } else {
        std::fprintf(stderr,
                     "error: --metrics-format must be 'json' or 'prom'\n");
        return kExitUsage;
      }
    } else if (std::strcmp(arg, "--log-out") == 0) {
      if (!value(&v)) return kExitUsage;
      options.event_log_path = v;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if (!value(&trace_out_path)) return kExitUsage;
      options.trace = true;
    } else if (std::strcmp(arg, "--slow-trace-ms") == 0) {
      if (!value(&v) || !parse_double_flag(arg, v, &options.slow_trace_ms))
        return kExitUsage;
    } else if (std::strcmp(arg, "--slow-trace-keep") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &options.slow_trace_keep))
        return kExitUsage;
    } else if (std::strcmp(arg, "--slo-window") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &options.slo_window))
        return kExitUsage;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage(stdout, argv[0]);
      return kExitOk;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg);
      print_usage(stderr, argv[0]);
      return kExitUsage;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "error: --socket PATH is required\n");
    print_usage(stderr, argv[0]);
    return kExitUsage;
  }

  ServeCore core(options);
  SocketServer server(core, socket_path);
  std::string error;
  if (!server.listen(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::fprintf(stderr, "pase_serve: listening on %s (workers=%lld, "
               "queue-depth=%lld, deadline=%gms",
               socket_path.c_str(),
               static_cast<long long>(options.workers),
               static_cast<long long>(options.queue_depth),
               options.default_deadline_ms);
  if (!options.inject.empty())
    std::fprintf(stderr, ", inject=%s seed=%llu",
                 options.inject.to_string().c_str(),
                 static_cast<unsigned long long>(options.seed));
  std::fprintf(stderr, ")\n");

  server.run();
  g_server = nullptr;

  if (metrics_out_path) {
    std::ofstream out(metrics_out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out_path);
      return kExitRuntime;
    }
    out << core.metrics_snapshot(metrics_prom);
    if (!metrics_prom) out << "\n";
  }
  if (trace_out_path) {
    std::ofstream out(trace_out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_out_path);
      return kExitRuntime;
    }
    out << core.trace_chrome_json();
    std::fprintf(stderr, "pase_serve: wrote %llu request traces to %s\n",
                 static_cast<unsigned long long>(core.traces_kept()),
                 trace_out_path);
  }
  std::fprintf(stderr, "pase_serve: shut down cleanly (watchdog kills: %llu)\n",
               static_cast<unsigned long long>(core.watchdog_kills()));
  return kExitOk;
}
