// pase_cli — strategy search for models described in the pase-model text
// format (see src/io/model_parser.h), no recompilation needed.
//
//   pase_cli <model-file> [--devices N] [--machine 1080ti|2080ti|mixed]
//            [--memory-gb G] [--baseline] [--export FILE] [--trace FILE]
//
// Prints the best strategy (Table II style), its analytical cost, search
// statistics and simulated step time; --baseline adds the data-parallel
// comparison; --export writes the strategy in the pase-strategy format;
// --trace writes the simulated step timeline as Chrome trace-event JSON
// (open in chrome://tracing or Perfetto).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/dp_solver.h"
#include "core/strategy.h"
#include "io/model_parser.h"
#include "io/strategy_io.h"
#include "search/baselines.h"
#include "sim/memory.h"
#include "sim/simulator.h"

using namespace pase;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <model-file> [--devices N] [--machine 1080ti|2080ti|mixed]\n"
      "          [--memory-gb G] [--baseline] [--export FILE] [--trace "
      "FILE]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* model_path = nullptr;
  i64 devices = 8;
  std::string machine_name = "1080ti";
  double memory_gb = 0.0;
  bool baseline = false;
  const char* export_path = nullptr;
  const char* trace_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      devices = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      machine_name = argv[++i];
    } else if (std::strcmp(argv[i], "--memory-gb") == 0 && i + 1 < argc) {
      memory_gb = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline = true;
    } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (argv[i][0] != '-' && !model_path) {
      model_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!model_path || devices < 1) return usage(argv[0]);

  std::ifstream in(model_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", model_path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const ModelParseResult model = parse_model(buffer.str());
  if (!model.ok) {
    std::fprintf(stderr, "error: %s: %s\n", model_path, model.error.c_str());
    return 1;
  }

  MachineSpec machine;
  if (machine_name == "1080ti") {
    machine = MachineSpec::gtx1080ti(devices);
  } else if (machine_name == "2080ti") {
    machine = MachineSpec::rtx2080ti(devices);
  } else if (machine_name == "mixed") {
    machine = MachineSpec::mixed_cluster(devices);
  } else {
    return usage(argv[0]);
  }

  DpOptions options;
  options.config_options.max_devices = devices;
  options.cost_params = CostParams::for_machine(machine);
  if (memory_gb > 0)
    options.config_options.filter = memory_config_filter(memory_gb * 1e9);

  const DpResult r = find_best_strategy(model.graph, options);
  if (r.status == DpStatus::kOutOfMemory) {
    std::fprintf(stderr, "error: solver table guard tripped (graph too "
                         "dense for the DP)\n");
    return 1;
  }
  if (r.status == DpStatus::kInfeasible) {
    std::fprintf(stderr, "error: no configuration satisfies the %.1f GB "
                         "memory budget for some layer\n",
                 memory_gb);
    return 1;
  }

  const std::string title =
      (model.name.empty() ? std::string(model_path) : model.name) + " on " +
      std::to_string(devices) + "x " + machine.name;
  std::fputs(strategy_table(title, model.graph, r.strategy).c_str(), stdout);

  const Simulator sim(model.graph, machine);
  std::printf("\nlayers: %lld   K: %lld   M: %lld   search: %.1f ms\n",
              static_cast<long long>(model.graph.num_nodes()),
              static_cast<long long>(r.max_configs),
              static_cast<long long>(r.max_dependent_set),
              r.elapsed_seconds * 1e3);
  std::printf("analytical cost: %.4g FLOP-equiv   simulated step: %.2f ms   "
              "per-device memory: %.2f GB\n",
              r.best_cost, sim.simulate(r.strategy).step_time_s * 1e3,
              estimate_memory(model.graph, r.strategy).total() / 1e9);

  if (baseline) {
    const Strategy dp = data_parallel_strategy(model.graph, devices);
    std::printf("data parallelism: simulated step %.2f ms, memory %.2f GB "
                "-> speedup %.2fx\n",
                sim.simulate(dp).step_time_s * 1e3,
                estimate_memory(model.graph, dp).total() / 1e9,
                sim.speedup(r.strategy, dp));
  }

  if (export_path) {
    std::ofstream out(export_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", export_path);
      return 1;
    }
    out << write_strategy(model.graph, r.strategy);
    std::printf("strategy written to %s\n", export_path);
  }

  if (trace_path) {
    SimTrace trace;
    sim.simulate(r.strategy, &trace);
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path);
      return 1;
    }
    out << to_chrome_trace_json(trace);
    std::printf("chrome trace written to %s\n", trace_path);
  }
  return 0;
}
