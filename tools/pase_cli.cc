// pase_cli — strategy search for models described in the pase-model text
// format (see src/io/model_parser.h), no recompilation needed.
//
//   pase_cli <model-file> [--devices N] [--machine 1080ti|2080ti|mixed]
//            [--machine-spec FILE]
//            [--memory-gb G] [--baseline] [--export FILE] [--trace FILE]
//            [--deadline SECONDS] [--strict] [--beam-width N]
//            [--threads N] [--no-cost-cache] [--comm-model MODE]
//            [--max-model-nodes N]
//            [--zoo NAME] [--collapse-blocks] [--reuse-tables]
//            [--split-dims LIST] [--pipeline-stages N|auto]
//            [--faults SPEC] [--fault-aware] [--robustness N] [--seed S]
//
// Strategy-space options: --split-dims opens extra per-layer split classes
// beyond the paper's batch/parameter space — comma-separated from
// {batch,param,spatial,channel} (or "all"/"none"); the default
// "batch,param" reproduces the legacy space bitwise. --pipeline-stages
// adds the inter-stage pipeline dimension: the graph is cut into N stages
// (or the best count with "auto"), each stage re-parallelized by the DP on
// its share of the devices; 1 (the default) disables pipelining bitwise.
//
// Scaling options (docs/SCALING.md): --collapse-blocks detects repeated
// structurally-identical blocks (e.g. a GPT stack's layers), solves one
// representative and stitches — bit-identical to the uncollapsed solve,
// orders of magnitude faster on thousand-layer stacks; --reuse-tables
// keeps solver state so the --faults degraded re-solve becomes a delta
// re-solve (ordering and vertex sets reused); --zoo NAME solves a built-in
// zoo model (e.g. transformer_stack_1000) instead of a model file.
//
// Search engine options: --threads N fans the DP's per-vertex cost
// evaluations across N worker threads (0 = hardware concurrency, the
// default; results are bit-identical at any setting); --no-cost-cache
// disables the memoization of layer/transfer costs across structurally
// identical layers.
//
// Heterogeneous clusters: --machine-spec FILE loads a machine description
// (JSON; src/hetero/machine_file.h) with per-device FLOPS and per-link
// bandwidth tiers. The search then prices uneven proportional shards and
// the actual bottleneck link of every placed group (src/hetero), and the
// simulator replays strategies under the same heterogeneous timing. A
// uniform spec reproduces the named-machine results bit-identically.
// Exclusive with --machine; --devices, when given, must match the spec.
//
// Collective pricing: --comm-model {simple|auto|ring|tree|hd|hier} selects
// how internal collectives are priced by both the analytical cost model
// and the simulator (src/comm). `simple` (the default) keeps the paper's
// ring-bytes pricing bit-exactly; `auto` picks the cheapest of
// ring/tree/halving-doubling/hierarchical per message shape; the named
// modes force one algorithm family.
//
// Prints the best strategy (Table II style), its analytical cost, search
// statistics and simulated step time; --baseline adds the data-parallel
// comparison; --export writes the strategy in the pase-strategy format;
// --trace writes the simulated step timeline as Chrome trace-event JSON.
//
// Robustness options:
//   --faults SPEC    inject faults (see src/fault/fault_spec.h), e.g.
//                    "straggler=0:2,links=0.5:1,jitter=0.1,dropout=1e-4:100:30";
//                    prints a healthy-vs-faulted robustness report
//   --fault-aware    run the strategy search against the degraded machine
//                    instead of the healthy one
//   --robustness N   jittered scenarios for the report (default 16)
//   --seed S         fault-scenario seed (default 1)
//
// Degradation options: when the DP's table/work guard trips or --deadline
// expires, the search falls back to a bounded beam search and still emits a
// usable strategy, clearly labeled DEGRADED (exit 0). --strict restores the
// old hard failure; --beam-width sizes the fallback.
//
// Exit codes:
//   0  success (including a labeled degraded strategy)
//   1  runtime error (unreadable file, bad model, guard trip under --strict)
//   2  usage error (unknown flag, missing or malformed flag value)
//   3  infeasible (no configuration satisfies the memory budget)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/block_collapse.h"
#include "core/dp_solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/strategy.h"
#include "fault/fault_model.h"
#include "fault/robustness.h"
#include "hetero/hetero.h"
#include "hetero/machine_file.h"
#include "io/model_parser.h"
#include "io/strategy_io.h"
#include "models/models.h"
#include "pipeline/pipeline.h"
#include "search/baselines.h"
#include "sim/memory.h"
#include "sim/simulator.h"

using namespace pase;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInfeasible = 3;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s <model-file> [--devices N] [--machine 1080ti|2080ti|mixed]\n"
      "          [--machine-spec FILE]\n"
      "          [--memory-gb G] [--baseline] [--export FILE] [--trace FILE]\n"
      "          [--trace-out FILE] [--metrics-out FILE]\n"
      "          [--metrics-format json|prom]\n"
      "          [--deadline SECONDS] [--strict] [--beam-width N]\n"
      "          [--threads N] [--no-cost-cache]\n"
      "          [--comm-model simple|auto|ring|tree|hd|hier]\n"
      "          [--max-table-entries N] [--max-combinations N]\n"
      "          [--max-model-nodes N]\n"
      "          [--zoo NAME] [--collapse-blocks] [--reuse-tables]\n"
      "          [--split-dims LIST] [--pipeline-stages N|auto]\n"
      "          [--microbatches N]\n"
      "          [--faults SPEC] [--fault-aware] [--robustness N] [--seed "
      "S]\n"
      "          [--help]\n"
      "\n"
      "strategy space: --split-dims LIST opens extra per-layer split\n"
      "            classes — comma-separated from batch, param, spatial,\n"
      "            channel (or 'all'/'none'); the default 'batch,param' is\n"
      "            the paper's space, bit-identical to omitting the flag.\n"
      "            spatial opens locked H/W (and sequence) dims with halo-\n"
      "            exchange pricing, channel opens filter taps and per-head\n"
      "            channels; --pipeline-stages N cuts the graph into N\n"
      "            pipeline stages ('auto' searches the stage count; 1, the\n"
      "            default, disables pipelining bitwise); N must divide the\n"
      "            device count; --microbatches N sets the micro-batches in\n"
      "            flight for the pipeline fill/drain model (default 8)\n"
      "scaling:    --collapse-blocks solves one representative of each\n"
      "            maximal run of repeated structurally-identical blocks\n"
      "            and stitches (bit-identical to the uncollapsed solve;\n"
      "            docs/SCALING.md); --reuse-tables keeps solver state so\n"
      "            the --faults degraded re-solve is a delta re-solve;\n"
      "            --zoo NAME solves a built-in zoo model (alexnet, mlp,\n"
      "            transformer, transformer_stack_<N>, ...) instead of a\n"
      "            model file\n"
      "observability: --trace-out FILE records the search itself (DP phases\n"
      "            and worker tasks) as Chrome trace-event JSON — distinct\n"
      "            from --trace, which records the simulated step timeline;\n"
      "            --metrics-out FILE dumps the search metrics snapshot\n"
      "            (counters/histograms/gauges; the counter and histogram\n"
      "            sections are bit-identical at any --threads setting);\n"
      "            --metrics-format selects json (default) or prom\n"
      "            (Prometheus text exposition) for --metrics-out\n"
      "search engine: --threads N worker threads for the DP fan-out\n"
      "            (0 = hardware concurrency, the default; results are\n"
      "            bit-identical at any thread count); --no-cost-cache\n"
      "            disables layer/transfer cost memoization\n"
      "input limits: --max-model-nodes N rejects models with more than N\n"
      "            layers before any solver work (0 = unlimited, the\n"
      "            default); dimension products that would overflow 64-bit\n"
      "            table sizing are always rejected\n"
      "machine spec: --machine-spec FILE loads a heterogeneous machine\n"
      "            description (JSON: per-device FLOPS, per-link bandwidth\n"
      "            tiers; src/hetero/machine_file.h). Search and simulation\n"
      "            then price uneven shards and the bottleneck link of each\n"
      "            placed group; a uniform spec reproduces the named\n"
      "            machines bit-identically. Exclusive with --machine;\n"
      "            --devices, when given, must match the spec's count\n"
      "comm model: collective pricing for costs and simulation — simple\n"
      "            (paper's ring-bytes form, the default), auto (cheapest\n"
      "            algorithm per message), or a forced algorithm family\n"
      "            (ring, tree, hd = halving-doubling, hier = two-level)\n"
      "fault spec: comma-separated straggler=RANK:SLOWDOWN, links=INTRA:INTER,"
      "\n            jitter=SIGMA, dropout=RATE:INTERVAL:RESTART[:WRITE]\n"
      "exit codes: 0 ok (incl. degraded strategy)  1 runtime error\n"
      "            2 usage error                   3 infeasible\n",
      argv0);
}

int usage(const char* argv0) {
  print_usage(stderr, argv0);
  return kExitUsage;
}

/// Strict numeric flag parsing: the whole value must parse, and the error
/// names the flag and the offending value (no silent atoll-style zeros).
bool parse_i64_flag(const char* flag, const char* value, i64 min, i64* out) {
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (*value == '\0' || *end != '\0' || v < min) {
    std::fprintf(stderr,
                 "error: invalid value '%s' for %s (expected integer >= "
                 "%lld)\n",
                 value, flag, static_cast<long long>(min));
    return false;
  }
  *out = v;
  return true;
}

bool parse_double_flag(const char* flag, const char* value, double* out) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (*value == '\0' || *end != '\0' || v <= 0.0) {
    std::fprintf(stderr,
                 "error: invalid value '%s' for %s (expected positive "
                 "number)\n",
                 value, flag);
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* model_path = nullptr;
  i64 devices = 8;
  bool devices_given = false;
  std::string machine_name = "1080ti";
  bool machine_given = false;
  const char* machine_spec_path = nullptr;
  double memory_gb = 0.0;
  bool baseline = false;
  const char* export_path = nullptr;
  const char* trace_path = nullptr;
  const char* trace_out_path = nullptr;
  const char* metrics_out_path = nullptr;
  bool metrics_prom = false;
  double deadline_seconds = 0.0;
  bool strict = false;
  i64 beam_width = 256;
  i64 threads = 0;  // 0 = hardware concurrency
  bool no_cost_cache = false;
  CommModelKind comm_kind = CommModelKind::kSimple;
  i64 max_table_entries = 0;  // 0 = DpOptions default
  i64 max_combinations = 0;
  i64 max_model_nodes = 0;  // 0 = unlimited
  const char* zoo_name = nullptr;
  bool collapse_blocks = false;
  bool reuse_tables = false;
  SplitDims split_dims;
  bool split_dims_given = false;
  i64 pipeline_stages = 1;  // 1 = off, 0 = auto
  bool pipeline_given = false;
  i64 pipeline_microbatches = 8;
  const char* faults_arg = nullptr;
  bool fault_aware = false;
  i64 robustness_scenarios = 16;
  i64 fault_seed = 1;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", arg);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--devices") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &devices))
        return kExitUsage;
      devices_given = true;
    } else if (std::strcmp(arg, "--machine") == 0) {
      if (!value(&v)) return kExitUsage;
      machine_name = v;
      machine_given = true;
    } else if (std::strcmp(arg, "--machine-spec") == 0) {
      if (!value(&machine_spec_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--memory-gb") == 0) {
      if (!value(&v) || !parse_double_flag(arg, v, &memory_gb))
        return kExitUsage;
    } else if (std::strcmp(arg, "--baseline") == 0) {
      baseline = true;
    } else if (std::strcmp(arg, "--export") == 0) {
      if (!value(&export_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--trace") == 0) {
      if (!value(&trace_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if (!value(&trace_out_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      if (!value(&metrics_out_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--metrics-format") == 0) {
      if (!value(&v)) return kExitUsage;
      if (std::strcmp(v, "json") == 0) {
        metrics_prom = false;
      } else if (std::strcmp(v, "prom") == 0) {
        metrics_prom = true;
      } else {
        std::fprintf(stderr,
                     "error: --metrics-format must be 'json' or 'prom'\n");
        return kExitUsage;
      }
    } else if (std::strcmp(arg, "--deadline") == 0) {
      if (!value(&v) || !parse_double_flag(arg, v, &deadline_seconds))
        return kExitUsage;
    } else if (std::strcmp(arg, "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(arg, "--beam-width") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &beam_width))
        return kExitUsage;
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &threads))
        return kExitUsage;
    } else if (std::strcmp(arg, "--no-cost-cache") == 0) {
      no_cost_cache = true;
    } else if (std::strcmp(arg, "--comm-model") == 0) {
      if (!value(&v)) return kExitUsage;
      const auto kind = parse_comm_model_kind(v);
      if (!kind) {
        std::fprintf(stderr,
                     "error: invalid value '%s' for --comm-model (expected "
                     "simple, auto, ring, tree, hd or hier)\n",
                     v);
        return kExitUsage;
      }
      comm_kind = *kind;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage(stdout, argv[0]);
      return kExitOk;
    } else if (std::strcmp(arg, "--max-table-entries") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &max_table_entries))
        return kExitUsage;
    } else if (std::strcmp(arg, "--max-combinations") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &max_combinations))
        return kExitUsage;
    } else if (std::strcmp(arg, "--max-model-nodes") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &max_model_nodes))
        return kExitUsage;
    } else if (std::strcmp(arg, "--zoo") == 0) {
      if (!value(&zoo_name)) return kExitUsage;
    } else if (std::strcmp(arg, "--split-dims") == 0) {
      if (!value(&v)) return kExitUsage;
      const auto parsed = parse_split_dims(v);
      if (!parsed) {
        std::fprintf(stderr,
                     "error: invalid value '%s' for --split-dims (expected a "
                     "comma-separated subset of batch, param, spatial, "
                     "channel, or 'all'/'none')\n",
                     v);
        return kExitUsage;
      }
      split_dims = *parsed;
      split_dims_given = true;
    } else if (std::strcmp(arg, "--pipeline-stages") == 0) {
      if (!value(&v)) return kExitUsage;
      if (std::strcmp(v, "auto") == 0) {
        pipeline_stages = 0;
      } else if (!parse_i64_flag(arg, v, 1, &pipeline_stages)) {
        return kExitUsage;
      }
      pipeline_given = true;
    } else if (std::strcmp(arg, "--microbatches") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &pipeline_microbatches))
        return kExitUsage;
    } else if (std::strcmp(arg, "--collapse-blocks") == 0) {
      collapse_blocks = true;
    } else if (std::strcmp(arg, "--reuse-tables") == 0) {
      reuse_tables = true;
    } else if (std::strcmp(arg, "--faults") == 0) {
      if (!value(&faults_arg)) return kExitUsage;
    } else if (std::strcmp(arg, "--fault-aware") == 0) {
      fault_aware = true;
    } else if (std::strcmp(arg, "--robustness") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &robustness_scenarios))
        return kExitUsage;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &fault_seed))
        return kExitUsage;
    } else if (arg[0] != '-' && !model_path) {
      model_path = arg;
    } else {
      std::fprintf(stderr, "error: unknown or repeated argument '%s'\n", arg);
      return usage(argv[0]);
    }
  }
  if (!model_path && !zoo_name) {
    std::fprintf(stderr, "error: no model file given (or use --zoo NAME)\n");
    return usage(argv[0]);
  }
  if (model_path && zoo_name) {
    std::fprintf(stderr,
                 "error: give either a model file or --zoo, not both\n");
    return kExitUsage;
  }

  Graph graph;
  std::string model_name;
  if (zoo_name) {
    auto zoo = models::zoo_graph(zoo_name);
    if (!zoo) {
      std::fprintf(stderr, "error: unknown zoo model '%s'\n", zoo_name);
      return kExitRuntime;
    }
    graph = std::move(*zoo);
    model_name = zoo_name;
    if (max_model_nodes > 0 && graph.num_nodes() > max_model_nodes) {
      std::fprintf(stderr,
                   "error: %s: model has %lld layers, more than the "
                   "--max-model-nodes limit of %lld\n",
                   zoo_name, static_cast<long long>(graph.num_nodes()),
                   static_cast<long long>(max_model_nodes));
      return kExitRuntime;
    }
  } else {
    std::ifstream in(model_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", model_path);
      return kExitRuntime;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    ModelParseLimits parse_limits;
    parse_limits.max_nodes = max_model_nodes;
    ModelParseResult model = parse_model(buffer.str(), parse_limits);
    if (!model.ok) {
      std::fprintf(stderr, "error: %s: %s\n", model_path,
                   model.error.c_str());
      return kExitRuntime;
    }
    graph = std::move(model.graph);
    model_name = model.name.empty() ? std::string(model_path) : model.name;
  }

  MachineSpec machine;
  if (machine_spec_path) {
    if (machine_given) {
      std::fprintf(stderr,
                   "error: give either --machine or --machine-spec, not "
                   "both\n");
      return kExitUsage;
    }
    std::string spec_error;
    if (!load_machine_spec(machine_spec_path, &machine, &spec_error)) {
      std::fprintf(stderr, "error: %s: %s\n", machine_spec_path,
                   spec_error.c_str());
      return kExitRuntime;
    }
    if (devices_given && devices != machine.num_devices) {
      std::fprintf(stderr,
                   "error: --devices %lld does not match the machine-spec "
                   "device count %lld\n",
                   static_cast<long long>(devices),
                   static_cast<long long>(machine.num_devices));
      return kExitUsage;
    }
    devices = machine.num_devices;
  } else if (machine_name == "1080ti") {
    machine = MachineSpec::gtx1080ti(devices);
  } else if (machine_name == "2080ti") {
    machine = MachineSpec::rtx2080ti(devices);
  } else if (machine_name == "mixed") {
    machine = MachineSpec::mixed_cluster(devices);
  } else {
    std::fprintf(stderr,
                 "error: invalid value '%s' for --machine (expected 1080ti, "
                 "2080ti or mixed)\n",
                 machine_name.c_str());
    return kExitUsage;
  }

  FaultSpec fault_spec;
  if (faults_arg) {
    const FaultSpecParseResult parsed = parse_fault_spec(faults_arg);
    if (!parsed.ok) {
      std::fprintf(stderr, "error: --faults: %s\n", parsed.error.c_str());
      return kExitUsage;
    }
    fault_spec = parsed.spec;
    const std::string invalid = validate_fault_spec(fault_spec, devices);
    if (!invalid.empty()) {
      std::fprintf(stderr, "error: --faults: %s\n", invalid.c_str());
      return kExitUsage;
    }
  } else if (fault_aware) {
    std::fprintf(stderr, "error: --fault-aware requires --faults\n");
    return kExitUsage;
  }
  const FaultModel fault_model(fault_spec, static_cast<u64>(fault_seed));

  // The pipeline boundary DP splits devices evenly across stages and cuts a
  // coarsened boundary set (at most ~24 candidate cuts on large graphs), so
  // an explicit stage count must divide the device count and fit the graph.
  if (pipeline_stages >= 2) {
    if (devices % pipeline_stages != 0) {
      std::fprintf(stderr,
                   "error: --pipeline-stages %lld does not divide the device "
                   "count %lld\n",
                   static_cast<long long>(pipeline_stages),
                   static_cast<long long>(devices));
      return kExitUsage;
    }
    const i64 max_stages = std::min<i64>(graph.num_nodes(), 24);
    if (pipeline_stages > max_stages) {
      std::fprintf(stderr,
                   "error: --pipeline-stages %lld exceeds the supported "
                   "maximum of %lld for this model (%lld layers, at most 24 "
                   "stages)\n",
                   static_cast<long long>(pipeline_stages),
                   static_cast<long long>(max_stages),
                   static_cast<long long>(graph.num_nodes()));
      return kExitUsage;
    }
  }

  DpOptions options;
  options.collapse_blocks = collapse_blocks;
  // A shared context makes the --faults degraded re-solve a delta re-solve:
  // the main solve stores its ordering/vertex sets, the re-solve reuses
  // them (the degraded machine changes costs, not graph adjacency).
  DpContext solver_context;
  if (reuse_tables) options.context = &solver_context;
  options.config_options.max_devices = devices;
  // The widened per-layer strategy space (--split-dims): the default
  // {batch,param} mask equals every layer's builder-declared splittable
  // dims, so omitting the flag reproduces the legacy space bitwise.
  options.config_options.split_dims = split_dims;
  // Fault-aware search prices compute/communication on the degraded
  // machine (weakest-device rule, degraded links), so the found strategy
  // is the best one for the cluster as it actually is.
  const MachineSpec search_machine =
      fault_aware ? fault_model.perturb(machine) : machine;
  // hetero_cost_params degenerates to CostParams::for_machine on uniform
  // machines (bit-identical); on heterogeneous ones (a --machine-spec with
  // mixed devices, or a fault-perturbed cluster) it prices uneven
  // proportional shards and per-group bottleneck links (src/hetero).
  options.cost_params = hetero_cost_params(search_machine, comm_kind);
  options.deadline_seconds = deadline_seconds;
  options.degraded_fallback = !strict;
  options.beam_width = beam_width;
  options.num_threads = threads;
  options.use_cost_cache = !no_cost_cache;
  if (max_table_entries > 0)
    options.max_table_entries = static_cast<u64>(max_table_entries);
  if (max_combinations > 0)
    options.max_combinations = static_cast<u64>(max_combinations);
  if (memory_gb > 0)
    options.config_options.filter = memory_config_filter(memory_gb * 1e9);

  std::optional<TraceSession> trace_session;
  std::optional<MetricsRegistry> metrics_registry;
  if (trace_out_path) {
    trace_session.emplace();
    options.trace = &*trace_session;
  }
  if (metrics_out_path) {
    metrics_registry.emplace();
    options.metrics = &*metrics_registry;
  }

  // --pipeline-stages != 1 routes through the pipeline-dimension search:
  // the boundary DP cuts the graph into stages and re-parallelizes each
  // stage's subgraph under the same solver options (split-dim gates
  // included) on its share of the devices. stages == 1 is the plain solve,
  // bit for bit.
  std::optional<PipelinedSearchResult> pipelined;
  DpResult r;
  if (pipeline_stages != 1) {
    PipelineSearchOptions popts;
    popts.stages = pipeline_stages;
    popts.microbatches = pipeline_microbatches;
    const auto t0 = std::chrono::steady_clock::now();
    pipelined =
        find_best_pipelined_strategy(graph, search_machine, options, popts);
    r = pipelined->dp;
    r.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } else {
    r = find_best_strategy(graph, options);
  }
  if (r.status == DpStatus::kOutOfMemory) {
    std::fprintf(stderr,
                 "error: solver guard tripped (%s); rerun without --strict "
                 "for a degraded strategy\n",
                 r.guard_reason.c_str());
    return kExitRuntime;
  }
  if (r.status == DpStatus::kInfeasible) {
    std::fprintf(stderr,
                 "error: infeasible: no configuration satisfies the %.1f GB "
                 "memory budget for some layer\n",
                 memory_gb);
    return kExitInfeasible;
  }
  if (r.status == DpStatus::kDegraded) {
    std::printf("*** DEGRADED STRATEGY ***\n"
                "The exact search could not finish: %s.\n"
                "Falling back to beam search (width %lld); the strategy "
                "below is valid but\nmay be suboptimal.\n\n",
                r.guard_reason.c_str(), static_cast<long long>(beam_width));
  }

  const std::string title =
      model_name + " on " + std::to_string(devices) + "x " + machine.name +
      (r.status == DpStatus::kDegraded ? " [degraded]" : "") +
      (fault_aware ? " [fault-aware]" : "");
  std::fputs(strategy_table(title, graph, r.strategy).c_str(), stdout);

  const HeteroModel hetero(machine);
  const Simulator sim(graph, machine, comm_kind, !hetero.uniform());
  if (machine_spec_path)
    std::printf("machine spec: %s (%s, %lld devices%s)\n", machine_spec_path,
                machine.name.c_str(), static_cast<long long>(devices),
                hetero.uniform() ? "" : ", heterogeneous");
  if (pipelined && pipelined->stages > 1) {
    // A pipelined solve aggregates many per-stage DP runs; per-solve stats
    // (K, M, thread/cache counters) are not meaningful for the composite.
    std::printf("\nlayers: %lld   stages: %lld x %lld devices   "
                "search: %.1f ms\n",
                static_cast<long long>(graph.num_nodes()),
                static_cast<long long>(pipelined->stages),
                static_cast<long long>(pipelined->devices_per_stage),
                r.elapsed_seconds * 1e3);
  } else {
    std::printf("\nlayers: %lld   K: %lld   M: %lld   search: %.1f ms%s\n",
                static_cast<long long>(graph.num_nodes()),
                static_cast<long long>(r.max_configs),
                static_cast<long long>(r.max_dependent_set),
                r.elapsed_seconds * 1e3,
                r.status == DpStatus::kDegraded ? "   [degraded: beam search]"
                                                : "");
    const u64 cache_total = r.cost_cache_hits + r.cost_cache_misses;
    std::printf("threads: %lld   cost cache: %s",
                static_cast<long long>(r.threads_used),
                no_cost_cache ? "off" : "");
    if (!no_cost_cache)
      std::printf(
          "%llu hits / %llu misses (%.0f%% hit rate)",
          static_cast<unsigned long long>(r.cost_cache_hits),
          static_cast<unsigned long long>(r.cost_cache_misses),
          cache_total ? 100.0 * static_cast<double>(r.cost_cache_hits) /
                            static_cast<double>(cache_total)
                      : 0.0);
    std::printf("\n");
  }
  if (collapse_blocks) {
    if (r.collapse_fired)
      std::printf("block collapse: period %lld x %lld blocks (ordering %s)\n",
                  static_cast<long long>(r.collapse_period),
                  static_cast<long long>(r.collapse_blocks),
                  r.collapse_ordering_extrapolated ? "extrapolated"
                                                   : "certified full");
    else
      std::printf("block collapse: not fired (no repeated run of %lld+ "
                  "structurally identical blocks)\n",
                  static_cast<long long>(kMinCollapseBlocks));
  }
  std::printf("comm model: %s", comm_model_kind_name(comm_kind));
  if (comm_kind == CommModelKind::kAuto)
    std::printf(" (all-reduce 1 MiB x %lld devices -> %s)",
                static_cast<long long>(devices),
                comm_algo_name(sim.comm_model().chosen_algorithm(
                    Collective::kAllReduce, 1 << 20, devices)));
  std::printf("\n");
  if (split_dims_given) {
    // How much of the widened space this model actually exposes: layers
    // where a builder-locked dim became splittable under the given gates.
    i64 opened = 0;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const Node& node = graph.node(v);
      for (i64 d = 0; d < node.space.rank(); ++d)
        if (!node.space.dim(d).splittable &&
            dim_splittable(node, d, split_dims)) {
          ++opened;
          break;
        }
    }
    std::printf("split dims: %s (%lld of %lld layers gain dims%s)\n",
                split_dims.to_string().c_str(),
                static_cast<long long>(opened),
                static_cast<long long>(graph.num_nodes()),
                opened == 0 && (split_dims.spatial || split_dims.channel)
                    ? "; no eligible spatial/channel dims in this model"
                    : "");
  }
  if (pipeline_given) {
    if (pipelined && pipelined->stages > 1)
      std::printf("pipeline: bottleneck %.2f ms, step %.2f ms (%lld "
                  "micro-batches), no-pipeline %.2f ms, gain %.2fx\n",
                  pipelined->bottleneck_seconds * 1e3,
                  pipelined->step_seconds * 1e3,
                  static_cast<long long>(pipeline_microbatches),
                  pipelined->no_pipeline_seconds * 1e3,
                  pipelined->no_pipeline_seconds / pipelined->step_seconds);
    else
      std::printf("pipeline: 1 stage (no pipelining)\n");
  }
  std::printf("analytical cost: %.4g FLOP-equiv   simulated step: %.2f ms   "
              "per-device memory: %.2f GB\n",
              r.best_cost, sim.simulate(r.strategy).step_time_s * 1e3,
              estimate_memory(graph, r.strategy).total() / 1e9);

  if (baseline) {
    const Strategy dp = data_parallel_strategy(graph, devices);
    std::printf("data parallelism: simulated step %.2f ms, memory %.2f GB "
                "-> speedup %.2fx\n",
                sim.simulate(dp).step_time_s * 1e3,
                estimate_memory(graph, dp).total() / 1e9,
                sim.speedup(r.strategy, dp));
  }

  if (faults_arg) {
    // With --reuse-tables the report also re-solves against the degraded
    // machine — a delta re-solve through the context the main search just
    // filled — and prices what adapting the strategy would buy.
    const RobustnessReport rep =
        reuse_tables
            ? evaluate_robustness_with_resolve(
                  graph, machine, r.strategy, fault_model, options,
                  &solver_context, robustness_scenarios, comm_kind)
            : evaluate_robustness(graph, machine, r.strategy, fault_model,
                                  robustness_scenarios, comm_kind);
    std::printf("\nfault injection: %s (seed %lld, %lld scenarios)\n",
                fault_spec.to_string().c_str(),
                static_cast<long long>(fault_seed),
                static_cast<long long>(robustness_scenarios));
    std::printf("healthy step: %.2f ms   degraded step: %.2f ms   "
                "expected: %.2f ms (worst %.2f, stddev %.2f)\n",
                rep.healthy.step_time_s * 1e3,
                rep.degraded.step_time_s * 1e3, rep.mean_step_time_s * 1e3,
                rep.worst_step_time_s * 1e3, rep.stddev_s * 1e3);
    std::printf("checkpoint/restart overhead: %.2f ms/step   expected "
                "slowdown under faults: %.2fx\n",
                rep.checkpoint_overhead_s * 1e3, rep.slowdown());
    if (rep.resolved) {
      std::printf("degraded re-solve: %.1f ms search (%s), adapted step "
                  "%.2f ms -> adaptation gain %.2fx\n",
                  rep.resolve_seconds * 1e3,
                  rep.resolve_reused_tables ? "tables reused" : "cold",
                  rep.resolve_degraded.step_time_s * 1e3,
                  rep.adaptation_gain());
    }
  }

  if (export_path) {
    std::ofstream out(export_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", export_path);
      return kExitRuntime;
    }
    out << write_strategy(graph, r.strategy);
    std::printf("strategy written to %s\n", export_path);
  }

  if (trace_path) {
    SimTrace trace;
    sim.simulate(r.strategy, &trace);
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path);
      return kExitRuntime;
    }
    out << to_chrome_trace_json(trace);
    std::printf("chrome trace written to %s\n", trace_path);
  }

  if (trace_out_path) {
    std::ofstream out(trace_out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_out_path);
      return kExitRuntime;
    }
    out << trace_session->to_chrome_json();
    std::printf("search trace written to %s (%lld spans)\n", trace_out_path,
                static_cast<long long>(trace_session->num_spans()));
  }

  if (metrics_out_path) {
    // Fold the comm library's per-algorithm selection counts into the
    // snapshot: comm.cost.* for the search's pricing backend (absent under
    // --comm-model simple, which bypasses the library), comm.sim.* for the
    // simulator's model.
    if (options.cost_params.comm)
      options.cost_params.comm->export_metrics(&*metrics_registry,
                                               "comm.cost");
    sim.comm_model().export_metrics(&*metrics_registry, "comm.sim");
    std::ofstream out(metrics_out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out_path);
      return kExitRuntime;
    }
    if (metrics_prom)
      out << metrics_registry->to_prometheus();
    else
      out << metrics_registry->to_json();
    std::printf("metrics snapshot written to %s (%lld metrics)\n",
                metrics_out_path,
                static_cast<long long>(metrics_registry->num_metrics()));
  }
  return kExitOk;
}
