// bench_gate — the benchmark perf-regression gate (DESIGN.md §11).
//
//   bench_gate BASELINE CURRENT... [--tolerance R] [--stale-ratio S]
//              [--tail-slack-ms MS] [--scale-baseline F]
//   bench_gate --update BASELINE CURRENT...
//
// Compares fresh bench runs (one or more CURRENT files) against a
// checked-in baseline. Two baseline schemas:
//
//   - self-describing (BENCH_table1.json): the baseline carries a
//     top-level "gated" array of dotted metric paths ("section.key" or
//     "section.group.key"); exactly those numeric leaves are gated, so a
//     new bench binary adds gated fields without touching this tool;
//   - legacy bench_serve (BENCH_serve.json): every per-model
//     `cached_p50_ms` and `cached_p99_ms` under "models", plus the burst
//     `p50_ms`. Cold-solve times and the burst p99 are NOT gated: cold
//     times are dominated by one-off allocation noise, and the burst p99
//     lands on whichever cold solve was slowest — the cached-hit
//     distribution is what the serve SLO promises.
//
// Statistic: the element-wise MINIMUM across the CURRENT files. The
// minimum over repeated runs prices the code's uncontended cost — the
// thing a regression gate should measure — while medians and tails on a
// shared box price whatever else the machine was doing. tools/check.sh
// passes three runs. The same statistic produces the baseline:
// `--update` writes the merged minimum of the CURRENT files to BASELINE
// (the PASE_UPDATE_BENCH refresh path), so both sides of the comparison
// are min-of-3-runs.
//
// The gate is two-sided:
//   - ratio = current / (baseline * scale) > 1 + tolerance  -> REGRESSION
//   - ratio < stale-ratio                                   -> STALE
// The stale side catches a forgotten baseline after a big optimisation:
// a baseline 35%+ slower than reality would silently absorb a later
// regression of the same size.
//
// Tail metrics (name contains "p99") get an additional absolute slack of
// --tail-slack-ms (default 5) on the regression side and skip the stale
// side: a p99 over ~100us of wall time can absorb a whole scheduler
// preemption (ms-scale, additive), while a genuine hit-path regression is
// multiplicative and shows up in the p50s at the strict 25% band anyway.
//
// When both sides carry a top-level "cpu_calib_ms" (bench_serve's fixed
// memory-bound spin), baseline values are additionally scaled by
// current_calib / baseline_calib: machine-state drift between runs moves
// the spin and the serve latencies together, so normalizing by it leaves
// the band measuring the code, not the box.
//
// --scale-baseline F multiplies every baseline value by F before
// comparing; check.sh uses it to self-test the gate (scale 2 must trip
// STALE, scale 0.5 must trip REGRESSION) without editing JSON in shell.
//
// A metric present in the baseline but missing from every CURRENT fails
// the gate (a renamed field must come with a baseline refresh).
//
// Exit codes: 0 pass, 1 gate failure, 2 usage/parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/json.h"

using namespace pase::serve;

namespace {

constexpr int kExitPass = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 2;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s BASELINE CURRENT... [--tolerance R] [--stale-ratio S]\n"
      "          [--tail-slack-ms MS] [--scale-baseline F]\n"
      "       %s --update BASELINE CURRENT...\n"
      "\n"
      "Diffs bench runs (element-wise min over the CURRENT files) against\n"
      "the checked-in BASELINE. Gated: the baseline's top-level \"gated\"\n"
      "path list when present (BENCH_table1.json), else the bench_serve\n"
      "schema — per-model cached_p50_ms / cached_p99_ms and burst p50_ms\n"
      "(BENCH_serve.json). Fails on\n"
      "current/baseline > 1 + R (default 0.25, regression) or <\n"
      "stale-ratio (default 0.65, stale baseline). p99 metrics get\n"
      "--tail-slack-ms (default 5) of absolute headroom and skip the\n"
      "stale side. --scale-baseline F multiplies baseline values by F\n"
      "first (gate self-test hook). --update instead writes the merged\n"
      "minimum of the CURRENT files to BASELINE (the PASE_UPDATE_BENCH\n"
      "refresh path in tools/check.sh).\n",
      argv0, argv0);
}

bool parse_positive_double(const char* flag, const char* v, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (v[0] == '\0' || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "error: invalid value '%s' for %s\n", v, flag);
    return false;
  }
  *out = parsed;
  return true;
}

std::optional<Json> load_json(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  std::optional<Json> parsed = parse_json(buf.str(), &error);
  if (!parsed)
    std::fprintf(stderr, "error: %s: %s\n", path, error.c_str());
  return parsed;
}

struct Metric {
  std::string name;     ///< dotted path, e.g. "models.<m>.<key>"
  std::string section;  ///< top-level object ("models", "burst", ...)
  std::string group;    ///< second level, or "" for two-part paths
  std::string key;      ///< leaf field name
  double baseline = 0.0;  ///< already scaled
  bool present = false;   ///< found in at least one CURRENT file
  double current = 0.0;   ///< min across CURRENT files
};

/// The gated leaf under one run's JSON, or nullptr.
const Json* find_leaf(const Json& run, const Metric& m) {
  const Json* node = run.get(m.section);
  if (!m.group.empty()) node = node ? node->get(m.group) : nullptr;
  const Json* v = node ? node->get(m.key) : nullptr;
  return v && v->is_number() ? v : nullptr;
}

/// Fills the gated metric list from the baseline. Two schemas:
///   - self-describing: a top-level "gated" array of dotted paths
///     ("section.key" or "section.group.key"); BENCH_table1.json uses
///     this, so new benches gate new fields without touching this tool;
///   - legacy bench_serve: per-model cached_p50_ms/cached_p99_ms under
///     "models" plus the burst p50_ms.
/// Returns false if a "gated" path is malformed or missing from the
/// baseline (a renamed field must come with a baseline refresh).
bool collect(const Json& baseline, double scale,
             std::vector<Metric>* metrics) {
  const Json* gated = baseline.get("gated");
  if (gated && gated->is_array()) {
    for (const Json& entry : gated->array) {
      if (!entry.is_string()) {
        std::fprintf(stderr, "error: non-string entry in \"gated\"\n");
        return false;
      }
      Metric m;
      m.name = entry.string;
      const size_t dot1 = m.name.find('.');
      const size_t dot2 =
          dot1 == std::string::npos ? dot1 : m.name.find('.', dot1 + 1);
      if (dot1 == std::string::npos) {
        std::fprintf(stderr, "error: gated path '%s' has no '.'\n",
                     m.name.c_str());
        return false;
      }
      m.section = m.name.substr(0, dot1);
      if (dot2 == std::string::npos) {
        m.key = m.name.substr(dot1 + 1);
      } else {
        m.group = m.name.substr(dot1 + 1, dot2 - dot1 - 1);
        m.key = m.name.substr(dot2 + 1);
      }
      const Json* leaf = find_leaf(baseline, m);
      if (!leaf) {
        std::fprintf(stderr,
                     "error: gated path '%s' is not a number in the "
                     "baseline\n",
                     m.name.c_str());
        return false;
      }
      m.baseline = leaf->number * scale;
      metrics->push_back(std::move(m));
    }
    return true;
  }
  auto add = [&](const std::string& group, const std::string& key,
                 const Json* leaf) {
    if (!leaf || !leaf->is_number()) return;
    Metric m;
    m.section = group.empty() ? "burst" : "models";
    m.group = group;
    m.key = key;
    m.name = group.empty() ? "burst." + key : "models." + group + "." + key;
    m.baseline = leaf->number * scale;
    metrics->push_back(std::move(m));
  };
  const Json* models = baseline.get("models");
  if (models && models->is_object()) {
    for (const auto& [model, entry] : models->object) {
      add(model, "cached_p50_ms", entry.get("cached_p50_ms"));
      add(model, "cached_p99_ms", entry.get("cached_p99_ms"));
    }
  }
  const Json* burst = baseline.get("burst");
  if (burst) add("", "p50_ms", burst->get("p50_ms"));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  std::vector<const char*> current_paths;
  double tolerance = 0.25;
  double stale_ratio = 0.65;
  double tail_slack_ms = 5.0;
  double scale = 1.0;
  bool update = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", arg);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--tolerance") == 0) {
      if (!value(&v) || !parse_positive_double(arg, v, &tolerance))
        return kExitUsage;
    } else if (std::strcmp(arg, "--stale-ratio") == 0) {
      if (!value(&v) || !parse_positive_double(arg, v, &stale_ratio))
        return kExitUsage;
    } else if (std::strcmp(arg, "--tail-slack-ms") == 0) {
      if (!value(&v) || !parse_positive_double(arg, v, &tail_slack_ms))
        return kExitUsage;
    } else if (std::strcmp(arg, "--scale-baseline") == 0) {
      if (!value(&v) || !parse_positive_double(arg, v, &scale))
        return kExitUsage;
    } else if (std::strcmp(arg, "--update") == 0) {
      update = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage(stdout, argv[0]);
      return kExitPass;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg);
      print_usage(stderr, argv[0]);
      return kExitUsage;
    } else if (!baseline_path) {
      baseline_path = arg;
    } else {
      current_paths.push_back(arg);
    }
  }
  if (!baseline_path || current_paths.empty()) {
    std::fprintf(stderr,
                 "error: BASELINE and at least one CURRENT are required\n");
    print_usage(stderr, argv[0]);
    return kExitUsage;
  }

  std::vector<Json> currents;
  for (const char* path : current_paths) {
    std::optional<Json> run = load_json(path);
    if (!run) return kExitUsage;
    currents.push_back(std::move(*run));
  }

  // Min calibration across runs (0 = absent somewhere -> no normalizing).
  double cur_calib = 0.0;
  for (const Json& run : currents) {
    const double c = run.get_number("cpu_calib_ms", 0.0);
    if (c <= 0) {
      cur_calib = 0.0;
      break;
    }
    if (cur_calib == 0.0 || c < cur_calib) cur_calib = c;
  }

  if (update) {
    // Merged baseline: the first run with every gated metric (and the
    // calibration) replaced by the min across runs.
    Json merged = currents[0];
    std::vector<Metric> metrics;
    if (!collect(merged, 1.0, &metrics)) return kExitUsage;
    for (Metric& m : metrics) {
      bool any = false;
      for (const Json& run : currents) {
        const Json* leaf = find_leaf(run, m);
        if (leaf && (!any || leaf->number < m.current)) {
          m.current = leaf->number;
          any = true;
        }
      }
      if (!any) continue;
      Json* node = &merged.object[m.section];
      if (!m.group.empty()) node = &node->object[m.group];
      node->object[m.key] = Json::make_number(m.current);
    }
    if (cur_calib > 0)
      merged.object["cpu_calib_ms"] = Json::make_number(cur_calib);
    std::ofstream out(baseline_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", baseline_path);
      return kExitUsage;
    }
    out << write_json(merged) << "\n";
    std::fprintf(stderr, "bench_gate: wrote merged baseline (%zu runs) to %s\n",
                 currents.size(), baseline_path);
    return kExitPass;
  }

  const std::optional<Json> baseline = load_json(baseline_path);
  if (!baseline) return kExitUsage;

  const double base_calib = baseline->get_number("cpu_calib_ms", 0.0);
  if (base_calib > 0 && cur_calib > 0) {
    scale *= cur_calib / base_calib;
    std::fprintf(stderr,
                 "cpu calibration: baseline %.3f ms, current %.3f ms "
                 "(baseline scaled %.2fx)\n",
                 base_calib, cur_calib, cur_calib / base_calib);
  }

  std::vector<Metric> metrics;
  if (!collect(*baseline, scale, &metrics)) return kExitUsage;
  if (metrics.empty()) {
    std::fprintf(stderr, "error: %s has no gated metrics\n", baseline_path);
    return kExitUsage;
  }
  for (Metric& m : metrics) {
    for (const Json& run : currents) {
      const Json* leaf = find_leaf(run, m);
      if (leaf && (!m.present || leaf->number < m.current)) {
        m.current = leaf->number;
        m.present = true;
      }
    }
  }

  std::fprintf(stderr, "%-36s %12s %12s %8s  %s\n", "metric", "base(ms)",
               "cur(ms)", "ratio", "verdict");
  pase::i64 failures = 0;
  for (const Metric& m : metrics) {
    if (!m.present) {
      std::fprintf(stderr, "%-36s %12.3f %12s %8s  MISSING\n", m.name.c_str(),
                   m.baseline, "-", "-");
      ++failures;
      continue;
    }
    const double ratio = m.baseline > 0 ? m.current / m.baseline : 0.0;
    const bool tail = m.name.find("p99") != std::string::npos;
    const char* verdict = "ok";
    if (ratio > 1.0 + tolerance &&
        (!tail || m.current > m.baseline + tail_slack_ms)) {
      verdict = "REGRESSION";
      ++failures;
    } else if (!tail && ratio < stale_ratio) {
      verdict = "STALE (refresh baseline)";
      ++failures;
    }
    std::fprintf(stderr, "%-36s %12.3f %12.3f %8.2f  %s\n", m.name.c_str(),
                 m.baseline, m.current, ratio, verdict);
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_gate: FAIL (%lld of %zu metrics out of band; "
                 "tolerance=%.2f stale-ratio=%.2f, min over %zu runs)\n",
                 static_cast<long long>(failures), metrics.size(), tolerance,
                 stale_ratio, currents.size());
    return kExitFail;
  }
  std::fprintf(stderr,
               "bench_gate: PASS (%zu metrics within [%.2fx, %.2fx], "
               "min over %zu runs)\n",
               metrics.size(), stale_ratio, 1.0 + tolerance, currents.size());
  return kExitPass;
}
