#!/usr/bin/env bash
# Sanitized robustness gate: builds everything with ASan+UBSan, runs the
# unit suite, then feeds the malformed-model corpus through pase_cli and
# checks that every file exits with its documented code (tests/corpus/
# README.md) instead of crashing or tripping a sanitizer. A second build
# under TSan (-DPASE_SANITIZE=thread) runs the concurrency-relevant tests
# (ThreadPool, CostCache, Determinism, DpSolver) to catch data races in the
# parallel search engine, and a third build under UBSan alone
# (-DPASE_SANITIZE=undefined) re-runs the full unit suite — UBSan combined
# with ASan suppresses some checks, so the standalone stage is stricter.
# Finally a docs gate cross-checks README.md against `pase_cli --help` so
# flag documentation cannot drift.
#
# Usage: tools/check.sh [build-dir]   (default: build-asan; the TSan build
# goes in <build-dir>-tsan)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="abort_on_error=0"

fail=0
note() { printf '== %s\n' "$*"; }
bad() { printf 'FAIL: %s\n' "$*"; fail=1; }

note "configuring sanitized build in $BUILD"
cmake -B "$BUILD" -S "$ROOT" -DPASE_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$BUILD.configure.log" 2>&1 \
  || { bad "cmake configure (see $BUILD.configure.log)"; exit 1; }

note "building (-j$JOBS)"
cmake --build "$BUILD" -j "$JOBS" > "$BUILD.build.log" 2>&1 \
  || { bad "build (see $BUILD.build.log)"; exit 1; }

note "running unit tests under sanitizers"
(cd "$BUILD" && ctest --output-on-failure -j "$JOBS") || bad "ctest"

CLI="$BUILD/tools/pase_cli"

# expect <exit-code> <description> -- <cli args...>
expect() {
  local want="$1" what="$2"
  shift 3
  "$CLI" "$@" > /dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    bad "$what: expected exit $want, got $got ($CLI $*)"
  else
    note "ok ($want) $what"
  fi
}

note "malformed-model corpus"
expect 0 "valid control model" -- "$ROOT/tests/corpus/valid_tiny.pase" --devices 4
for f in dup_key nonpositive_dim negative_dim unknown_op bad_edge \
         missing_header unknown_directive garbage; do
  expect 1 "corpus $f" -- "$ROOT/tests/corpus/$f.pase" --devices 4
done
expect 3 "infeasible model" -- \
  "$ROOT/tests/corpus/infeasible.pase" --devices 4 --memory-gb 1

note "CLI usage errors"
expect 2 "no arguments" --
expect 2 "bad numeric flag" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices banana
expect 2 "bad fault spec" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --faults wobble=1
expect 2 "bad comm model" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --comm-model warp
expect 0 "auto comm model" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --comm-model auto

note "degraded-mode acceptance (guard trip must still exit 0)"
expect 0 "dense model degrades gracefully" -- \
  "$ROOT/tools/dense_model.pase" --devices 4
expect 1 "dense model under --strict" -- \
  "$ROOT/tools/dense_model.pase" --devices 4 --strict

TSAN_BUILD="$BUILD-tsan"
note "configuring TSan build in $TSAN_BUILD"
cmake -B "$TSAN_BUILD" -S "$ROOT" -DPASE_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$TSAN_BUILD.configure.log" 2>&1 \
  || bad "TSan cmake configure (see $TSAN_BUILD.configure.log)"
if [ -f "$TSAN_BUILD/CMakeCache.txt" ]; then
  note "building TSan tests (-j$JOBS)"
  cmake --build "$TSAN_BUILD" -j "$JOBS" --target pase_tests \
        > "$TSAN_BUILD.build.log" 2>&1 \
    || bad "TSan build (see $TSAN_BUILD.build.log)"
  if [ -x "$TSAN_BUILD/tests/pase_tests" ]; then
    note "running concurrency tests under TSan"
    TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/pase_tests" \
        --gtest_filter='ThreadPool.*:CostCache.*:Determinism.*:DpSolver*.*' \
      || bad "TSan concurrency tests"
  fi
fi

UBSAN_BUILD="$BUILD-ubsan"
note "configuring UBSan build in $UBSAN_BUILD"
cmake -B "$UBSAN_BUILD" -S "$ROOT" -DPASE_SANITIZE=undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$UBSAN_BUILD.configure.log" 2>&1 \
  || bad "UBSan cmake configure (see $UBSAN_BUILD.configure.log)"
if [ -f "$UBSAN_BUILD/CMakeCache.txt" ]; then
  note "building UBSan tests (-j$JOBS)"
  cmake --build "$UBSAN_BUILD" -j "$JOBS" --target pase_tests \
        > "$UBSAN_BUILD.build.log" 2>&1 \
    || bad "UBSan build (see $UBSAN_BUILD.build.log)"
  if [ -x "$UBSAN_BUILD/tests/pase_tests" ]; then
    note "running full test suite under UBSan"
    "$UBSAN_BUILD/tests/pase_tests" > "$UBSAN_BUILD.test.log" 2>&1 \
      || bad "UBSan test suite (see $UBSAN_BUILD.test.log)"
  fi
fi

note "docs gate: README.md vs pase_cli --help"
HELP="$("$CLI" --help 2>/dev/null)" || bad "pase_cli --help exited non-zero"
HELP_FLAGS="$(printf '%s\n' "$HELP" | grep -oE -- '--[a-z][a-z0-9-]+' | sort -u)"
# README side: only --flags inside fenced code blocks that mention pase_cli
# (the building/bench blocks legitimately use cmake/ctest flags).
README_FLAGS="$(awk '
  /^```/ { if (inblock && block ~ /pase_cli/) printf "%s", block;
           block = ""; inblock = !inblock; next }
  inblock { block = block $0 "\n" }
' "$ROOT/README.md" | grep -oE -- '--[a-z][a-z0-9-]+' | sort -u)"
for flag in $HELP_FLAGS; do
  grep -qF -- "$flag" "$ROOT/README.md" \
    || bad "docs gate: $flag is in pase_cli --help but not README.md"
done
for flag in $README_FLAGS; do
  printf '%s\n' "$HELP_FLAGS" | grep -qxF -- "$flag" \
    || bad "docs gate: $flag is in README.md but not pase_cli --help"
done
[ "$fail" -eq 0 ] && note "ok docs gate ($(printf '%s\n' "$HELP_FLAGS" | wc -l) flags cross-checked)"

if [ "$fail" -ne 0 ]; then
  printf '\ncheck.sh: FAILURES\n'
  exit 1
fi
printf '\ncheck.sh: all checks passed\n'
