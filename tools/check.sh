#!/usr/bin/env bash
# Sanitized robustness gate: builds everything with ASan+UBSan, runs the
# unit suite, then feeds the malformed-model corpus through pase_cli and
# checks that every file exits with its documented code (tests/corpus/
# README.md) instead of crashing or tripping a sanitizer. A second build
# under TSan (-DPASE_SANITIZE=thread) runs the concurrency-relevant tests
# (ThreadPool, CostCache, Determinism, DpSolver) to catch data races in the
# parallel search engine, and a third build under UBSan alone
# (-DPASE_SANITIZE=undefined) re-runs the full unit suite — UBSan combined
# with ASan suppresses some checks, so the standalone stage is stricter.
# A gcov coverage build (-DPASE_COVERAGE=ON) then runs the fast test tier
# and enforces a line-coverage floor over src/ (COV_FLOOR, default 70%).
# Finally a docs gate cross-checks README.md against `pase_cli --help` so
# flag documentation cannot drift. Golden/zoo-sweep tests carry the ctest
# label `slow` and are excluded from the sanitizer lanes (`-LE slow`).
#
# Usage: tools/check.sh [build-dir]   (default: build-asan; the TSan build
# goes in <build-dir>-tsan)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="abort_on_error=0"

fail=0
note() { printf '== %s\n' "$*"; }
bad() { printf 'FAIL: %s\n' "$*"; fail=1; }

note "configuring sanitized build in $BUILD"
cmake -B "$BUILD" -S "$ROOT" -DPASE_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$BUILD.configure.log" 2>&1 \
  || { bad "cmake configure (see $BUILD.configure.log)"; exit 1; }

note "building (-j$JOBS)"
cmake --build "$BUILD" -j "$JOBS" > "$BUILD.build.log" 2>&1 \
  || { bad "build (see $BUILD.build.log)"; exit 1; }

note "running unit tests under sanitizers (fast tier: -LE slow)"
(cd "$BUILD" && ctest --output-on-failure -LE slow -j "$JOBS") || bad "ctest"

CLI="$BUILD/tools/pase_cli"

# expect <exit-code> <description> -- <cli args...>
expect() {
  local want="$1" what="$2"
  shift 3
  "$CLI" "$@" > /dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    bad "$what: expected exit $want, got $got ($CLI $*)"
  else
    note "ok ($want) $what"
  fi
}

note "malformed-model corpus"
expect 0 "valid control model" -- "$ROOT/tests/corpus/valid_tiny.pase" --devices 4
for f in dup_key nonpositive_dim negative_dim unknown_op bad_edge \
         missing_header unknown_directive garbage; do
  expect 1 "corpus $f" -- "$ROOT/tests/corpus/$f.pase" --devices 4
done
expect 3 "infeasible model" -- \
  "$ROOT/tests/corpus/infeasible.pase" --devices 4 --memory-gb 1
expect 1 "corpus overflow_dims" -- \
  "$ROOT/tests/corpus/overflow_dims.pase" --devices 4
expect 0 "oversized model without a limit" -- \
  "$ROOT/tests/corpus/oversized.pase" --devices 4
expect 1 "oversized model under --max-model-nodes 8" -- \
  "$ROOT/tests/corpus/oversized.pase" --devices 4 --max-model-nodes 8

note "machine-spec corpus (--machine-spec, src/hetero/machine_file.h)"
expect 0 "valid machine spec (heterogeneous control)" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" \
  --machine-spec "$ROOT/tests/corpus/machine_valid.json"
for f in machine_negative_flops machine_missing_link \
         machine_count_mismatch; do
  expect 1 "corpus $f" -- \
    "$ROOT/tests/corpus/valid_tiny.pase" \
    --machine-spec "$ROOT/tests/corpus/$f.json"
done
expect 1 "unreadable machine spec" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" \
  --machine-spec "$ROOT/tests/corpus/no_such_machine.json"
expect 2 "machine spec combined with --machine" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --machine 2080ti \
  --machine-spec "$ROOT/tests/corpus/machine_valid.json"
expect 2 "machine spec vs --devices mismatch" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 8 \
  --machine-spec "$ROOT/tests/corpus/machine_valid.json"

note "CLI usage errors"
expect 2 "no arguments" --
expect 2 "bad numeric flag" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices banana
expect 2 "bad fault spec" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --faults wobble=1
expect 2 "bad comm model" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --comm-model warp
expect 0 "auto comm model" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --comm-model auto

note "widened strategy space flags (--split-dims / --pipeline-stages)"
expect 2 "bad split dims" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --split-dims bogus
expect 2 "trailing comma in split dims" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --split-dims batch,
# Spatial splits on an all-MatMul model: nothing to open, but that is a
# note in the report, not an error.
expect 0 "spatial split dims on a matmul-only model" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --split-dims spatial
expect 2 "bad pipeline stage count" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --pipeline-stages 0
expect 2 "pipeline stages not dividing devices" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --pipeline-stages 3
expect 2 "pipeline stages exceeding the layer count" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --pipeline-stages 4
expect 0 "explicit single pipeline stage" -- \
  "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --pipeline-stages 1
"$CLI" "$ROOT/tests/corpus/valid_tiny.pase" --devices 4 --split-dims spatial \
  2>/dev/null | grep -q "no eligible spatial/channel dims" \
  || bad "spatial split on a matmul-only model must report no eligible dims"

note "degraded-mode acceptance (guard trip must still exit 0)"
expect 0 "dense model degrades gracefully" -- \
  "$ROOT/tools/dense_model.pase" --devices 4
expect 1 "dense model under --strict" -- \
  "$ROOT/tools/dense_model.pase" --devices 4 --strict

note "observability flags (--trace-out / --metrics-out)"
OBS_TMP="${TMPDIR:-/tmp}/pase_check_obs"
mkdir -p "$OBS_TMP"
expect 0 "trace + metrics outputs" -- \
  "$ROOT/tools/example_model.pase" --devices 8 \
  --trace-out "$OBS_TMP/trace.json" --metrics-out "$OBS_TMP/metrics.json"
for phase in ordering configs dep_sets table_fill back_substitution; do
  grep -q "\"name\":\"$phase\"" "$OBS_TMP/trace.json" \
    || bad "trace missing phase span: $phase"
done
grep -q '"dp.cost_cache.misses"' "$OBS_TMP/metrics.json" \
  || bad "metrics snapshot missing dp.cost_cache.misses"
# The structural sections (counters + histograms; everything before the
# volatile gauges) must be byte-identical across thread counts.
"$CLI" "$ROOT/tools/example_model.pase" --devices 8 --threads 1 \
  --metrics-out "$OBS_TMP/m1.json" > /dev/null 2>&1 || bad "metrics at -t1"
"$CLI" "$ROOT/tools/example_model.pase" --devices 8 --threads 8 \
  --metrics-out "$OBS_TMP/m8.json" > /dev/null 2>&1 || bad "metrics at -t8"
sed '/"gauges"/,$d' "$OBS_TMP/m1.json" > "$OBS_TMP/m1.structural"
sed '/"gauges"/,$d' "$OBS_TMP/m8.json" > "$OBS_TMP/m8.structural"
if cmp -s "$OBS_TMP/m1.structural" "$OBS_TMP/m8.structural"; then
  note "ok structural metrics identical at 1 vs 8 threads"
else
  bad "structural metrics differ between --threads 1 and --threads 8"
fi

note "Prometheus metrics exposition (--metrics-format prom)"
expect 0 "prom metrics snapshot" -- \
  "$ROOT/tools/example_model.pase" --devices 8 \
  --metrics-out "$OBS_TMP/metrics.prom" --metrics-format prom
grep -q '^# TYPE pase_dp_cost_cache_misses counter$' "$OBS_TMP/metrics.prom" \
  || bad "prom snapshot missing pase_dp_cost_cache_misses counter"
grep -q '_bucket{le="+Inf"}' "$OBS_TMP/metrics.prom" \
  || bad "prom snapshot missing histogram +Inf bucket"
# Gauges must come last: no counter/histogram TYPE line after the first
# gauge TYPE line (the prom analogue of the structural-prefix contract).
if sed -n '/ gauge$/,$p' "$OBS_TMP/metrics.prom" | \
     grep -qE ' (counter|histogram)$'; then
  bad "prom snapshot interleaves counters/histograms after gauges"
else
  note "ok prom gauges are emitted last"
fi
expect 2 "bad metrics format" -- \
  "$ROOT/tools/example_model.pase" --devices 8 --metrics-format yaml

note "serve smoke: daemon + loadgen bursts (sanitized binaries)"
SERVE="$BUILD/tools/pase_serve"
LOADGEN="$BUILD/tools/pase_loadgen"
SOCK="$OBS_TMP/serve.sock"

# serve_burst <label> <loadgen-json> <event-log|""> <serve args...>: starts
# the daemon, fires a 60-request mixed burst, requests shutdown, and checks
# that both sides exit cleanly (loadgen exits 0 only when every response
# was classified, repeated queries answered byte-identically and — when an
# event log is given — every client-observed response joins a logged server
# record by seq with a matching code).
serve_burst() {
  local label="$1" json="$2" evlog="$3"
  shift 3
  rm -f "$SOCK"
  "$SERVE" --socket "$SOCK" "$@" > "$OBS_TMP/serve_$label.log" 2>&1 &
  local serve_pid=$!
  local up=0
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && { up=1; break; }
    sleep 0.1
  done
  [ "$up" -eq 1 ] || { bad "serve $label: daemon never bound $SOCK"; return; }
  local extra=()
  [ -n "$evlog" ] && extra=(--log-out "$evlog")
  if "$LOADGEN" --socket "$SOCK" --requests 60 --connections 4 \
       --zoo mlp,alexnet --devices 4,8 --json "$json" --shutdown \
       ${extra[@]+"${extra[@]}"} \
       > "$OBS_TMP/loadgen_$label.log" 2>&1; then
    note "ok serve $label burst (all responses classified)"
  else
    bad "serve $label burst (see $OBS_TMP/loadgen_$label.log)"
  fi
  if wait "$serve_pid"; then
    note "ok serve $label clean shutdown"
  else
    bad "serve $label: daemon exited non-zero (see $OBS_TMP/serve_$label.log)"
  fi
}

if [ -x "$SERVE" ] && [ -x "$LOADGEN" ]; then
  serve_burst healthy "$OBS_TMP/loadgen_healthy.json" \
    "$OBS_TMP/serve_healthy.events.jsonl" \
    --workers 2 --deadline-ms 10000 \
    --log-out "$OBS_TMP/serve_healthy.events.jsonl" \
    --trace-out "$OBS_TMP/serve_healthy.trace.json"
  grep -q '"watchdog_kills":0' "$OBS_TMP/loadgen_healthy.json" 2>/dev/null \
    || bad "healthy serve run reported watchdog kills (or no metrics)"
  grep -q '"log_mismatches":0' "$OBS_TMP/loadgen_healthy.json" 2>/dev/null \
    || bad "healthy serve run: event-log cross-check found mismatches"
  grep -q '"queue_ms"' "$OBS_TMP/serve_healthy.events.jsonl" 2>/dev/null \
    || bad "healthy event log carries no queue_ms (queue wait not recorded)"
  # The merged trace must show one request end to end: transport read,
  # admission, the solve, and the solver's own phase spans.
  for span in socket_read admission solve table_fill response_write; do
    grep -q "\"name\":\"$span\"" "$OBS_TMP/serve_healthy.trace.json" \
      || bad "serve trace missing span: $span"
  done
  # Fault-injected burst: stalls must be watchdog-killed into `error`
  # responses, poisoned cache entries detected on re-query — and the
  # daemon must still classify everything, log every request, and shut
  # down cleanly.
  serve_burst injected "$OBS_TMP/loadgen_injected.json" \
    "$OBS_TMP/serve_injected.events.jsonl" \
    --workers 2 --deadline-ms 300 --watchdog-grace-ms 200 \
    --inject "slow=0.3:0.05,stall=0.05:2,poison=0.2" --seed 7 \
    --log-out "$OBS_TMP/serve_injected.events.jsonl" \
    --trace-out "$OBS_TMP/serve_injected.trace.json"
  grep -q '"log_mismatches":0' "$OBS_TMP/loadgen_injected.json" 2>/dev/null \
    || bad "injected serve run: event-log cross-check found mismatches"
  grep -q '"name":"inject_' "$OBS_TMP/serve_injected.trace.json" \
    || bad "injected serve trace shows no inject_* spans"
else
  bad "serve smoke: pase_serve / pase_loadgen not built"
fi

TSAN_BUILD="$BUILD-tsan"
note "configuring TSan build in $TSAN_BUILD"
cmake -B "$TSAN_BUILD" -S "$ROOT" -DPASE_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$TSAN_BUILD.configure.log" 2>&1 \
  || bad "TSan cmake configure (see $TSAN_BUILD.configure.log)"
if [ -f "$TSAN_BUILD/CMakeCache.txt" ]; then
  note "building TSan tests (-j$JOBS)"
  cmake --build "$TSAN_BUILD" -j "$JOBS" --target pase_tests \
        > "$TSAN_BUILD.build.log" 2>&1 \
    || bad "TSan build (see $TSAN_BUILD.build.log)"
  if [ -x "$TSAN_BUILD/tests/pase_tests" ]; then
    note "running concurrency tests under TSan"
    TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/pase_tests" \
        --gtest_filter='ThreadPool.*:CostCache.*:Determinism.*:DpSolver*.*:Serve*.*:HaloCost.*' \
      || bad "TSan concurrency tests"
  fi
fi

UBSAN_BUILD="$BUILD-ubsan"
note "configuring UBSan build in $UBSAN_BUILD"
cmake -B "$UBSAN_BUILD" -S "$ROOT" -DPASE_SANITIZE=undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > "$UBSAN_BUILD.configure.log" 2>&1 \
  || bad "UBSan cmake configure (see $UBSAN_BUILD.configure.log)"
if [ -f "$UBSAN_BUILD/CMakeCache.txt" ]; then
  note "building UBSan tests (-j$JOBS)"
  cmake --build "$UBSAN_BUILD" -j "$JOBS" --target pase_tests \
        > "$UBSAN_BUILD.build.log" 2>&1 \
    || bad "UBSan build (see $UBSAN_BUILD.build.log)"
  if [ -x "$UBSAN_BUILD/tests/pase_tests" ]; then
    note "running full test suite under UBSan"
    "$UBSAN_BUILD/tests/pase_tests" --gtest_filter='-*Golden*:ObsZoo*' \
        > "$UBSAN_BUILD.test.log" 2>&1 \
      || bad "UBSan test suite (see $UBSAN_BUILD.test.log)"
  fi
fi

COV_BUILD="$BUILD-cov"
COV_FLOOR="${COV_FLOOR:-70}"
note "configuring coverage build in $COV_BUILD"
cmake -B "$COV_BUILD" -S "$ROOT" -DPASE_COVERAGE=ON \
      -DCMAKE_BUILD_TYPE=Debug > "$COV_BUILD.configure.log" 2>&1 \
  || bad "coverage cmake configure (see $COV_BUILD.configure.log)"
if [ -f "$COV_BUILD/CMakeCache.txt" ]; then
  note "building coverage tests (-j$JOBS)"
  cmake --build "$COV_BUILD" -j "$JOBS" --target pase_tests \
        > "$COV_BUILD.build.log" 2>&1 \
    || bad "coverage build (see $COV_BUILD.build.log)"
  if [ -x "$COV_BUILD/tests/pase_tests" ]; then
    note "running fast test tier with gcov instrumentation"
    (cd "$COV_BUILD" && ctest -LE slow -j "$JOBS" > ctest.log 2>&1) \
      || bad "coverage test run (see $COV_BUILD/ctest.log)"
    note "aggregating line coverage over src/ (floor: $COV_FLOOR%)"
    # gcov per .gcda; -r drops system headers, -s makes paths repo-relative.
    # Pair each "File 'src/...'" line with its "Lines executed:P% of N".
    mkdir -p "$COV_BUILD/gcov-scratch"
    COV_PCT="$(cd "$COV_BUILD/gcov-scratch" && \
      find "$COV_BUILD" -name '*.gcda' \
          -exec gcov -r -s "$ROOT" {} + 2>/dev/null | \
      awk "
        /^File /            { keep = (\$0 ~ /'src\//) }
        keep && /^Lines executed:/ {
          line = \$0
          sub(/^Lines executed:/, \"\", line)
          split(line, parts, /% of /)
          covered += parts[1] / 100 * parts[2]
          total   += parts[2]
          keep = 0
        }
        END { printf \"%.1f\", total ? 100 * covered / total : 0 }
      ")"
    if awk -v p="$COV_PCT" -v f="$COV_FLOOR" 'BEGIN{exit !(p+0 >= f+0)}'; then
      note "ok line coverage on src/: $COV_PCT% (floor $COV_FLOOR%)"
    else
      bad "line coverage on src/ is $COV_PCT%, below the $COV_FLOOR% floor"
    fi
  fi
fi

# Perf-regression gate: bench_serve latencies from a *non-sanitized* build
# (ASan/UBSan inflate latencies several-fold, so the checked-in baseline is
# only comparable against plain RelWithDebInfo numbers) diffed against
# BENCH_serve.json by bench_gate. The gated statistic is the element-wise
# MINIMUM over three fresh bench_serve runs — the minimum prices the
# code's uncontended cost, so shared-box noise has to land on all three
# runs before it can move the comparison. Tolerance: 25% on per-model
# cached-hit p50/p99 and burst p50; a baseline more than ~35% slower than
# reality is flagged stale. Refresh after an intentional perf change with:
#   PASE_UPDATE_BENCH=1 tools/check.sh
# which writes the same min-of-3-runs statistic back to BENCH_serve.json,
# keeping both sides of the comparison on equal footing.
BENCH_BUILD="$ROOT/build-bench"
note "perf gate: configuring non-sanitized bench build in $BENCH_BUILD"
cmake -B "$BENCH_BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      > "$BENCH_BUILD.configure.log" 2>&1 \
  || bad "bench cmake configure (see $BENCH_BUILD.configure.log)"
if [ -f "$BENCH_BUILD/CMakeCache.txt" ]; then
  note "building bench_serve + bench_gate (-j$JOBS)"
  cmake --build "$BENCH_BUILD" -j "$JOBS" --target bench_serve bench_gate \
        > "$BENCH_BUILD.build.log" 2>&1 \
    || bad "bench build (see $BENCH_BUILD.build.log)"
fi
BENCH_SERVE="$BENCH_BUILD/bench/bench_serve"
BENCH_GATE="$BENCH_BUILD/tools/bench_gate"
if [ -x "$BENCH_SERVE" ] && [ -x "$BENCH_GATE" ]; then
  BENCH_RUNS=()
  BENCH_OK=1
  for i in 1 2 3; do
    note "running bench_serve (non-sanitized, run $i of 3)"
    if "$BENCH_SERVE" > "$OBS_TMP/bench_serve_run$i.json" \
         2> "$OBS_TMP/bench_serve_run$i.log"; then
      BENCH_RUNS+=("$OBS_TMP/bench_serve_run$i.json")
    else
      bad "bench_serve run $i failed (see $OBS_TMP/bench_serve_run$i.log)"
      BENCH_OK=0
      break
    fi
  done
  if [ "$BENCH_OK" = 1 ]; then
    if [ -n "${PASE_UPDATE_BENCH:-}" ]; then
      "$BENCH_GATE" --update "$ROOT/BENCH_serve.json" "${BENCH_RUNS[@]}" \
        || bad "perf gate: baseline refresh failed"
      note "refreshed BENCH_serve.json (min of 3 runs, PASE_UPDATE_BENCH)"
    elif "$BENCH_GATE" "$ROOT/BENCH_serve.json" "${BENCH_RUNS[@]}"; then
      note "ok perf gate (cached-hit p50/p99 + burst p50 within 25%)"
    else
      bad "perf gate: serve latencies regressed vs BENCH_serve.json (see \
table above; PASE_UPDATE_BENCH=1 tools/check.sh to accept a new baseline)"
    fi
    # Gate self-test: a baseline inflated 2x must be flagged stale, and a
    # baseline deflated 2x must read as a regression — both directions of
    # the two-sided gate must actually fire.
    if "$BENCH_GATE" --scale-baseline 2 "$ROOT/BENCH_serve.json" \
         "${BENCH_RUNS[@]}" > /dev/null 2>&1; then
      bad "perf gate self-test: 2x-inflated baseline was not flagged"
    else
      note "ok perf gate self-test (2x baseline trips stale check)"
    fi
    if "$BENCH_GATE" --scale-baseline 0.5 "$ROOT/BENCH_serve.json" \
         "${BENCH_RUNS[@]}" > /dev/null 2>&1; then
      bad "perf gate self-test: 0.5x-deflated baseline was not flagged"
    else
      note "ok perf gate self-test (0.5x baseline trips regression check)"
    fi
  fi
else
  bad "perf gate: bench_serve / bench_gate not built"
fi

# Search-time scaling gate: bench_table1 (cold vs block-collapsed vs delta
# re-solve on the transformer_stack family, docs/SCALING.md) from the same
# non-sanitized build, diffed against BENCH_table1.json. The binary itself
# enforces the structural claims (bit-identity, >= 10x collapse speedup
# and sub-second delta at N=1000) and exits non-zero on violation; the
# gate then bands the absolute search times — min over three runs, with
# the small metrics additionally min-of-3 trials inside each run. Refresh
# after an intentional perf change with PASE_UPDATE_BENCH=1 tools/check.sh.
if [ -f "$BENCH_BUILD/CMakeCache.txt" ]; then
  note "building bench_table1 (-j$JOBS)"
  cmake --build "$BENCH_BUILD" -j "$JOBS" --target bench_table1 \
        >> "$BENCH_BUILD.build.log" 2>&1 \
    || bad "bench_table1 build (see $BENCH_BUILD.build.log)"
fi
BENCH_TABLE1="$BENCH_BUILD/bench/bench_table1"
if [ -x "$BENCH_TABLE1" ] && [ -x "$BENCH_GATE" ]; then
  T1_RUNS=()
  T1_OK=1
  for i in 1 2 3; do
    note "running bench_table1 (non-sanitized, run $i of 3; ~10s each)"
    if "$BENCH_TABLE1" > "$OBS_TMP/bench_table1_run$i.json" \
         2> "$OBS_TMP/bench_table1_run$i.log"; then
      T1_RUNS+=("$OBS_TMP/bench_table1_run$i.json")
    else
      bad "bench_table1 run $i failed a structural claim or crashed \
(see $OBS_TMP/bench_table1_run$i.log)"
      T1_OK=0
      break
    fi
  done
  if [ "$T1_OK" = 1 ]; then
    if [ -n "${PASE_UPDATE_BENCH:-}" ]; then
      "$BENCH_GATE" --update "$ROOT/BENCH_table1.json" "${T1_RUNS[@]}" \
        || bad "scaling gate: baseline refresh failed"
      note "refreshed BENCH_table1.json (min of 3 runs, PASE_UPDATE_BENCH)"
    elif "$BENCH_GATE" "$ROOT/BENCH_table1.json" "${T1_RUNS[@]}"; then
      note "ok scaling gate (cold/collapsed/delta search times within 25%)"
    else
      bad "scaling gate: search times regressed vs BENCH_table1.json (see \
table above; PASE_UPDATE_BENCH=1 tools/check.sh to accept a new baseline)"
    fi
  fi
else
  bad "scaling gate: bench_table1 / bench_gate not built"
fi

# Heterogeneity gate: ablation_heterogeneous replays DataParallel /
# homogeneous-assumption PaSE / hetero-aware PaSE strategies under the
# heterogeneity-aware simulator on the mixed-pod and multi-tier scenarios.
# The binary enforces the win claims itself (hetero-aware search dominates
# the homogeneous assumption on the mixed pod and wins on geometric mean
# everywhere) and exits non-zero on violation; the gate then diffs the
# simulated step times against BENCH_hetero.json. Those numbers are
# deterministic (no wall-clock anywhere), so a single run suffices and any
# drift means the cost/comm/hetero model itself changed — refresh with
# PASE_UPDATE_BENCH=1 tools/check.sh after an intentional model change.
if [ -f "$BENCH_BUILD/CMakeCache.txt" ]; then
  note "building ablation_heterogeneous (-j$JOBS)"
  cmake --build "$BENCH_BUILD" -j "$JOBS" --target ablation_heterogeneous \
        >> "$BENCH_BUILD.build.log" 2>&1 \
    || bad "ablation_heterogeneous build (see $BENCH_BUILD.build.log)"
fi
BENCH_HETERO="$BENCH_BUILD/bench/ablation_heterogeneous"
if [ -x "$BENCH_HETERO" ] && [ -x "$BENCH_GATE" ]; then
  note "running ablation_heterogeneous (win claims + gate)"
  if "$BENCH_HETERO" > "$OBS_TMP/bench_hetero.json" \
       2> "$OBS_TMP/bench_hetero.log"; then
    if [ -n "${PASE_UPDATE_BENCH:-}" ]; then
      "$BENCH_GATE" --update "$ROOT/BENCH_hetero.json" \
          "$OBS_TMP/bench_hetero.json" \
        || bad "hetero gate: baseline refresh failed"
      note "refreshed BENCH_hetero.json (PASE_UPDATE_BENCH)"
    elif "$BENCH_GATE" "$ROOT/BENCH_hetero.json" \
           "$OBS_TMP/bench_hetero.json"; then
      note "ok hetero gate (simulated step times match BENCH_hetero.json)"
    else
      bad "hetero gate: simulated step times drifted vs BENCH_hetero.json \
(the cost/comm/hetero model changed; PASE_UPDATE_BENCH=1 tools/check.sh to \
accept)"
    fi
  else
    bad "ablation_heterogeneous failed a win claim or crashed \
(see $OBS_TMP/bench_hetero.log)"
  fi
else
  bad "hetero gate: ablation_heterogeneous / bench_gate not built"
fi

# Widened-space gate: ablation_split_dims solves resnet_large_p with the
# legacy vs widened (--split-dims all) per-layer space on 64 devices and
# runs the auto pipeline-stage search on transformer_pipelined over the
# mixed cluster. The binary enforces the win claims itself (the widened
# space never costs more under the DP's metric and strictly beats the
# legacy strategy under simulation; auto pipelining strictly beats the
# single-stage reference) and exits non-zero on violation; the gate then
# diffs the DP costs / simulated steps / pipeline steps against
# BENCH_splits.json. Deterministic (no wall-clock), so a single run
# suffices — drift means the config/cost/comm/pipeline model changed;
# refresh with PASE_UPDATE_BENCH=1 tools/check.sh after an intentional
# model change.
if [ -f "$BENCH_BUILD/CMakeCache.txt" ]; then
  note "building ablation_split_dims (-j$JOBS)"
  cmake --build "$BENCH_BUILD" -j "$JOBS" --target ablation_split_dims \
        >> "$BENCH_BUILD.build.log" 2>&1 \
    || bad "ablation_split_dims build (see $BENCH_BUILD.build.log)"
fi
BENCH_SPLITS="$BENCH_BUILD/bench/ablation_split_dims"
if [ -x "$BENCH_SPLITS" ] && [ -x "$BENCH_GATE" ]; then
  note "running ablation_split_dims (win claims + gate; ~30s)"
  if "$BENCH_SPLITS" > "$OBS_TMP/bench_splits.json" \
       2> "$OBS_TMP/bench_splits.log"; then
    if [ -n "${PASE_UPDATE_BENCH:-}" ]; then
      "$BENCH_GATE" --update "$ROOT/BENCH_splits.json" \
          "$OBS_TMP/bench_splits.json" \
        || bad "splits gate: baseline refresh failed"
      note "refreshed BENCH_splits.json (PASE_UPDATE_BENCH)"
    elif "$BENCH_GATE" "$ROOT/BENCH_splits.json" \
           "$OBS_TMP/bench_splits.json"; then
      note "ok splits gate (DP costs and step times match BENCH_splits.json)"
    else
      bad "splits gate: DP costs / step times drifted vs BENCH_splits.json \
(the config/cost/comm/pipeline model changed; PASE_UPDATE_BENCH=1 \
tools/check.sh to accept)"
    fi
  else
    bad "ablation_split_dims failed a win claim or crashed \
(see $OBS_TMP/bench_splits.log)"
  fi
else
  bad "splits gate: ablation_split_dims / bench_gate not built"
fi

note "docs gate: README.md vs pase_cli --help"
HELP="$("$CLI" --help 2>/dev/null)" || bad "pase_cli --help exited non-zero"
HELP_FLAGS="$(printf '%s\n' "$HELP" | grep -oE -- '--[a-z][a-z0-9-]+' | sort -u)"
# README side: only --flags inside fenced code blocks that mention pase_cli
# (the building/bench blocks legitimately use cmake/ctest flags).
README_FLAGS="$(awk '
  /^```/ { if (inblock && block ~ /pase_cli/) printf "%s", block;
           block = ""; inblock = !inblock; next }
  inblock { block = block $0 "\n" }
' "$ROOT/README.md" | grep -oE -- '--[a-z][a-z0-9-]+' | sort -u)"
for flag in $HELP_FLAGS; do
  grep -qF -- "$flag" "$ROOT/README.md" \
    || bad "docs gate: $flag is in pase_cli --help but not README.md"
done
for flag in $README_FLAGS; do
  printf '%s\n' "$HELP_FLAGS" | grep -qxF -- "$flag" \
    || bad "docs gate: $flag is in README.md but not pase_cli --help"
done
[ "$fail" -eq 0 ] && note "ok docs gate ($(printf '%s\n' "$HELP_FLAGS" | wc -l) flags cross-checked)"

if [ "$fail" -ne 0 ]; then
  printf '\ncheck.sh: FAILURES\n'
  exit 1
fi
printf '\ncheck.sh: all checks passed\n'
