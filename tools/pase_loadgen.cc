// pase_loadgen — load generator and robustness probe for pase_serve:
// drives a mixed query stream over several connections, retries shed
// responses with seeded backoff + jitter, and reports the full response
// taxonomy with latency percentiles, cache hit rate and a cross-request
// determinism check (every repeat of a query must return a byte-identical
// strategy, whether served cold, from cache, or after a poison recovery).
//
//   pase_loadgen --socket PATH [--requests N] [--connections N]
//                [--zoo LIST] [--devices LIST] [--deadline-ms D]
//                [--retries N] [--backoff-ms D] [--seed S]
//                [--json FILE] [--log-out FILE] [--shutdown]
//
// The request mix is deterministic: request k queries zoo[k % |zoo|] at
// devices[k % |devices|], so a rerun with the same flags produces the same
// stream (and, against an uninjected server, the same responses).
//
// --log-out FILE arms the event-log cross-check: FILE is the path the
// daemon is writing its --log-out event log to (flushed per line, so it is
// readable while the daemon runs). After the burst, every client-observed
// response — including retried sheds — is joined against the log by the
// server-assigned "seq" (and its "req<k>" id): the logged code must match
// the observed code, the logged op/id must match what was sent, the
// logged machine signature must match the machine the request named
// (every request sends "machine":"1080ti" explicitly, so the log must
// show "1080Ti/p<devices>"), the logged total_ms must fit inside the
// client-measured latency, and no log line may be missing or duplicated.
// This catches dropped or doubled event lines that per-code totals alone
// would miss.
//
// Exit codes: 0 all requests classified and determinism held, 1 runtime
// error (connect failure, crash-like disconnect, determinism or event-log
// cross-check violation), 2 usage error.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "util/hash.h"
#include "util/types.h"

using namespace pase;
using namespace pase::serve;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s --socket PATH [--requests N] [--connections N]\n"
      "          [--zoo LIST] [--devices LIST] [--deadline-ms D]\n"
      "          [--retries N] [--backoff-ms D] [--seed S]\n"
      "          [--json FILE] [--log-out FILE] [--shutdown]\n"
      "\n"
      "Sends N solve queries (default 200) over C connections (default 4)\n"
      "mixing the comma-separated --zoo models (default mlp,alexnet) and\n"
      "--devices sizes (default 4,8). Shed responses are retried up to\n"
      "--retries times with --backoff-ms exponential backoff + seeded\n"
      "jitter. Reports per-code counts, qps, latency p50/p99, cache hit\n"
      "rate and a strategy-determinism check; --json writes the report as\n"
      "JSON; --log-out FILE cross-checks every observed response against\n"
      "the daemon's event log at FILE (join by seq/id; catches dropped or\n"
      "duplicated log lines); --shutdown stops the server afterwards.\n",
      argv0);
}

bool parse_i64_flag(const char* flag, const char* v, i64 min, i64* out) {
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (v[0] == '\0' || *end != '\0' || parsed < min) {
    std::fprintf(stderr, "error: invalid value '%s' for %s\n", v, flag);
    return false;
  }
  *out = parsed;
  return true;
}

/// Blocking Unix-socket client speaking one line per message.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const std::string& path, std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      *error = "connect " + path + ": " + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  /// Sends `line` (newline appended) and reads one response line.
  bool round_trip(const std::string& line, std::string* response,
                  std::string* error) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        *error = std::string("send: ") + std::strerror(errno);
        return false;
      }
      off += static_cast<size_t>(n);
    }
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        *error = n == 0 ? "server closed the connection"
                        : std::string("read: ") + std::strerror(errno);
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Deterministic backoff jitter in [0, 1) for (seed, request, attempt).
double jitter(u64 seed, u64 request, u64 attempt) {
  const u64 h = hash_combine(hash_combine(seed, request), attempt ^ 0x10adull);
  return static_cast<double>(h >> 11) * 0x1p-53;
}

struct Shared {
  std::mutex mu;
  std::map<std::string, u64> code_counts;
  std::map<std::string, u64> cache_counts;
  std::vector<double> latencies_ms;
  /// query key -> first strategy text seen (determinism reference).
  std::map<std::string, std::string> strategies;
  u64 retries = 0;
  u64 shed_responses = 0;  ///< total sheds, retried or not
  u64 determinism_checks = 0;
  u64 determinism_violations = 0;
  std::vector<std::string> errors;
};

/// What one logical request observed, for the --log-out cross-check. Slot
/// k is written only by the worker that claimed request k (the vector is
/// pre-sized), so no lock is needed.
struct ClientRecord {
  /// Every (server seq, code) this request saw, retried sheds included.
  std::vector<std::pair<i64, std::string>> attempts;
  double latency_ms = -1.0;  ///< first send -> final classified response
  /// Signature the daemon must log for this request's machine
  /// ("1080Ti/p<devices>" — every request names "1080ti" explicitly).
  std::string machine;
};

/// Joins the daemon's event log against the client-observed responses.
/// Returns the number of mismatches (0 = every attempt matched exactly
/// one log line and vice versa); fills `checked` with attempts joined.
u64 cross_check_event_log(const std::string& path,
                          const std::vector<ClientRecord>& records,
                          u64* checked, std::vector<std::string>* problems) {
  u64 mismatches = 0;
  auto flag = [&](const std::string& what) {
    ++mismatches;
    if (problems->size() < 16) problems->push_back(what);
  };

  std::ifstream in(path);
  if (!in) {
    flag("cannot read event log '" + path + "'");
    return mismatches;
  }

  // One server record per seq; a duplicated line is itself a violation.
  struct ServerRecord {
    std::string op, id, code, machine;
    double total_ms = 0.0;
  };
  std::map<i64, ServerRecord> by_seq;
  std::string line;
  i64 lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto parsed = parse_json(line);
    if (!parsed || !parsed->is_object()) {
      flag("event log line " + std::to_string(lineno) + ": unparsable");
      continue;
    }
    const Json* seq = parsed->get("seq");
    if (!seq || !seq->is_number()) {
      flag("event log line " + std::to_string(lineno) + ": missing seq");
      continue;
    }
    ServerRecord rec;
    rec.op = parsed->get_string("op");
    rec.id = parsed->get_string("id");
    rec.code = parsed->get_string("code");
    rec.machine = parsed->get_string("machine");
    rec.total_ms = parsed->get_number("total_ms", 0.0);
    const i64 s = static_cast<i64>(seq->number);
    if (!by_seq.emplace(s, std::move(rec)).second)
      flag("event log seq " + std::to_string(s) + ": duplicated line");
  }

  // Every client-observed attempt must have exactly one matching line.
  for (size_t k = 0; k < records.size(); ++k) {
    const ClientRecord& rec = records[k];
    const std::string want_id = "req" + std::to_string(k);
    for (const auto& [seq, code] : rec.attempts) {
      ++*checked;
      const auto it = by_seq.find(seq);
      if (it == by_seq.end()) {
        flag(want_id + " seq " + std::to_string(seq) +
             ": no event-log line (dropped?)");
        continue;
      }
      const ServerRecord& srv = it->second;
      if (srv.op != "solve")
        flag(want_id + " seq " + std::to_string(seq) + ": logged op '" +
             srv.op + "' != solve");
      if (srv.id != want_id)
        flag(want_id + " seq " + std::to_string(seq) + ": logged id '" +
             srv.id + "'");
      if (srv.code != code)
        flag(want_id + " seq " + std::to_string(seq) + ": logged code '" +
             srv.code + "' != observed '" + code + "'");
      if (!rec.machine.empty() && srv.machine != rec.machine)
        flag(want_id + " seq " + std::to_string(seq) +
             ": logged machine '" + srv.machine + "' != requested '" +
             rec.machine + "'");
      // The server handled this attempt strictly inside the client's
      // first-send -> final-receive window (same steady clock family);
      // 1ms slack covers measurement granularity only.
      if (rec.latency_ms >= 0.0 && srv.total_ms > rec.latency_ms + 1.0)
        flag(want_id + " seq " + std::to_string(seq) + ": logged total " +
             std::to_string(srv.total_ms) + "ms exceeds client latency " +
             std::to_string(rec.latency_ms) + "ms");
    }
  }

  // And no solve line for our ids may be unaccounted for (doubled
  // responses, phantom requests).
  std::map<i64, u64> claimed;
  for (const auto& rec : records)
    for (const auto& [seq, code] : rec.attempts) ++claimed[seq];
  for (const auto& [seq, srv] : by_seq) {
    if (srv.op != "solve" || srv.id.rfind("req", 0) != 0) continue;
    const auto it = claimed.find(seq);
    if (it == claimed.end())
      flag("event log seq " + std::to_string(seq) + " (id " + srv.id +
           "): no client observed it");
    else if (it->second != 1)
      flag("event log seq " + std::to_string(seq) + " (id " + srv.id +
           "): observed " + std::to_string(it->second) + " times");
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  i64 num_requests = 200;
  i64 num_connections = 4;
  std::string zoo_list = "mlp,alexnet";
  std::string devices_list = "4,8";
  double deadline_ms = 0.0;
  i64 max_retries = 3;
  i64 backoff_ms = 50;
  i64 seed = 1;
  const char* json_path = nullptr;
  const char* log_path = nullptr;
  bool send_shutdown = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", arg);
        return false;
      }
      *out = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--socket") == 0) {
      if (!value(&v)) return kExitUsage;
      socket_path = v;
    } else if (std::strcmp(arg, "--requests") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &num_requests))
        return kExitUsage;
    } else if (std::strcmp(arg, "--connections") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 1, &num_connections))
        return kExitUsage;
    } else if (std::strcmp(arg, "--zoo") == 0) {
      if (!value(&v)) return kExitUsage;
      zoo_list = v;
    } else if (std::strcmp(arg, "--devices") == 0) {
      if (!value(&v)) return kExitUsage;
      devices_list = v;
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      i64 d = 0;
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &d)) return kExitUsage;
      deadline_ms = static_cast<double>(d);
    } else if (std::strcmp(arg, "--retries") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &max_retries))
        return kExitUsage;
    } else if (std::strcmp(arg, "--backoff-ms") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &backoff_ms))
        return kExitUsage;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!value(&v) || !parse_i64_flag(arg, v, 0, &seed)) return kExitUsage;
    } else if (std::strcmp(arg, "--json") == 0) {
      if (!value(&json_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--log-out") == 0) {
      if (!value(&log_path)) return kExitUsage;
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      send_shutdown = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage(stdout, argv[0]);
      return kExitOk;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg);
      print_usage(stderr, argv[0]);
      return kExitUsage;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "error: --socket PATH is required\n");
    print_usage(stderr, argv[0]);
    return kExitUsage;
  }
  const std::vector<std::string> zoos = split_list(zoo_list);
  std::vector<i64> devices;
  for (const std::string& d : split_list(devices_list)) {
    char* end = nullptr;
    const long long parsed = std::strtoll(d.c_str(), &end, 10);
    if (*end != '\0' || parsed < 1) {
      std::fprintf(stderr, "error: bad --devices entry '%s'\n", d.c_str());
      return kExitUsage;
    }
    devices.push_back(parsed);
  }
  if (zoos.empty() || devices.empty()) {
    std::fprintf(stderr, "error: --zoo and --devices must be non-empty\n");
    return kExitUsage;
  }

  Shared shared;
  std::vector<ClientRecord> records(static_cast<size_t>(num_requests));
  std::atomic<i64> next_request{0};
  const auto t0 = std::chrono::steady_clock::now();

  auto worker = [&]() {
    Connection conn;
    std::string error;
    if (!conn.connect(socket_path, &error)) {
      std::lock_guard<std::mutex> lk(shared.mu);
      shared.errors.push_back(error);
      return;
    }
    for (;;) {
      const i64 k = next_request.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_requests) return;
      const std::string& zoo = zoos[static_cast<size_t>(k) % zoos.size()];
      const i64 p = devices[static_cast<size_t>(k) % devices.size()];

      Json req = Json::make_object();
      req.object["op"] = Json::make_string("solve");
      req.object["id"] = Json::make_string("req" + std::to_string(k));
      req.object["zoo"] = Json::make_string(zoo);
      req.object["devices"] = Json::make_number(static_cast<double>(p));
      // Name the machine explicitly so the event-log cross-check can pin
      // the daemon's logged machine signature to what was asked for.
      req.object["machine"] = Json::make_string("1080ti");
      records[static_cast<size_t>(k)].machine =
          "1080Ti/p" + std::to_string(p);
      if (deadline_ms > 0.0)
        req.object["deadline_ms"] = Json::make_number(deadline_ms);
      const std::string line = write_json(req);
      const std::string query_key = zoo + "@" + std::to_string(p);

      const auto sent = std::chrono::steady_clock::now();
      std::string code;
      for (i64 attempt = 0;; ++attempt) {
        std::string response;
        if (!conn.round_trip(line, &response, &error)) {
          std::lock_guard<std::mutex> lk(shared.mu);
          shared.errors.push_back("request " + std::to_string(k) + ": " +
                                  error);
          return;
        }
        const auto parsed = parse_json(response);
        if (!parsed || !parsed->is_object()) {
          std::lock_guard<std::mutex> lk(shared.mu);
          shared.errors.push_back("request " + std::to_string(k) +
                                  ": unparsable response");
          return;
        }
        code = parsed->get_string("code");
        const std::string cache = parsed->get_string("cache");
        const std::string strategy = parsed->get_string("strategy");
        {
          // Slot k belongs to this worker alone.
          ClientRecord& rec = records[static_cast<size_t>(k)];
          const Json* seq = parsed->get("seq");
          rec.attempts.emplace_back(
              seq && seq->is_number() ? static_cast<i64>(seq->number) : -1,
              code);
        }

        std::unique_lock<std::mutex> lk(shared.mu);
        if (code == "shed") {
          ++shared.shed_responses;
          if (attempt < max_retries) {
            ++shared.retries;
            lk.unlock();
            const double sleep_ms =
                static_cast<double>(backoff_ms) *
                static_cast<double>(i64{1} << std::min<i64>(attempt, 6)) *
                (0.5 + jitter(static_cast<u64>(seed), static_cast<u64>(k),
                              static_cast<u64>(attempt)));
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(sleep_ms));
            continue;
          }
        }
        ++shared.code_counts[code];
        if (!cache.empty()) ++shared.cache_counts[cache];
        const double latency_ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - sent)
                                      .count();
        records[static_cast<size_t>(k)].latency_ms = latency_ms;
        shared.latencies_ms.push_back(latency_ms);
        if (!strategy.empty()) {
          const auto it = shared.strategies.find(query_key);
          if (it == shared.strategies.end()) {
            shared.strategies[query_key] = strategy;
          } else {
            ++shared.determinism_checks;
            if (it->second != strategy) ++shared.determinism_violations;
          }
        }
        break;
      }
    }
  };

  std::vector<std::thread> threads;
  for (i64 c = 0; c < num_connections; ++c) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Final server-side numbers (and optional shutdown) on a fresh
  // connection.
  double server_watchdog_kills = -1.0;
  double server_poison_detected = -1.0;
  {
    Connection conn;
    std::string error, response;
    if (conn.connect(socket_path, &error)) {
      if (conn.round_trip("{\"op\":\"metrics\"}", &response, &error)) {
        if (const auto parsed = parse_json(response)) {
          if (const Json* metrics = parsed->get("metrics")) {
            if (const Json* counters = metrics->get("counters")) {
              server_watchdog_kills =
                  counters->get_number("serve.watchdog.kills", 0.0);
              server_poison_detected =
                  counters->get_number("serve.cache.poison_detected", 0.0);
            }
          }
        }
      }
      if (send_shutdown)
        conn.round_trip("{\"op\":\"shutdown\"}", &response, &error);
    } else {
      std::lock_guard<std::mutex> lk(shared.mu);
      shared.errors.push_back("metrics: " + error);
    }
  }

  // Event-log cross-check (after the final metrics/shutdown round trip, so
  // every line the daemon will write for our requests is flushed).
  u64 log_checked = 0;
  u64 log_mismatches = 0;
  std::vector<std::string> log_problems;
  if (log_path != nullptr)
    log_mismatches =
        cross_check_event_log(log_path, records, &log_checked, &log_problems);

  u64 classified = 0;
  for (const auto& kv : shared.code_counts) classified += kv.second;
  std::sort(shared.latencies_ms.begin(), shared.latencies_ms.end());
  auto percentile = [&](double q) {
    if (shared.latencies_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(shared.latencies_ms.size() - 1));
    return shared.latencies_ms[idx];
  };
  const double hits =
      static_cast<double>(shared.cache_counts.count("hit")
                              ? shared.cache_counts.at("hit")
                              : 0);
  const double misses =
      static_cast<double>(shared.cache_counts.count("miss")
                              ? shared.cache_counts.at("miss")
                              : 0);
  const double hit_rate =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;

  std::printf("pase_loadgen: %lld requests over %lld connections in %.2fs "
              "(%.1f qps)\n",
              static_cast<long long>(num_requests),
              static_cast<long long>(num_connections), elapsed_s,
              static_cast<double>(num_requests) / elapsed_s);
  std::printf("  responses:");
  for (const char* c : {"ok", "degraded", "shed", "infeasible", "malformed",
                        "error"}) {
    const auto it = shared.code_counts.find(c);
    std::printf(" %s=%llu", c,
                static_cast<unsigned long long>(
                    it == shared.code_counts.end() ? 0 : it->second));
  }
  std::printf("\n");
  std::printf("  latency ms: p50=%.2f p99=%.2f\n", percentile(0.5),
              percentile(0.99));
  std::printf("  cache: hits=%.0f misses=%.0f hit-rate=%.2f\n", hits, misses,
              hit_rate);
  std::printf("  sheds: %llu responses, %llu retried\n",
              static_cast<unsigned long long>(shared.shed_responses),
              static_cast<unsigned long long>(shared.retries));
  std::printf("  determinism: %llu repeats checked, %llu violations\n",
              static_cast<unsigned long long>(shared.determinism_checks),
              static_cast<unsigned long long>(shared.determinism_violations));
  if (server_watchdog_kills >= 0)
    std::printf("  server: watchdog_kills=%.0f poison_detected=%.0f\n",
                server_watchdog_kills, server_poison_detected);
  if (log_path != nullptr) {
    std::printf("  event log: %llu attempts joined, %llu mismatches\n",
                static_cast<unsigned long long>(log_checked),
                static_cast<unsigned long long>(log_mismatches));
    for (const std::string& p : log_problems)
      std::printf("  event-log mismatch: %s\n", p.c_str());
  }
  for (const std::string& e : shared.errors)
    std::printf("  error: %s\n", e.c_str());

  if (json_path) {
    Json report = Json::make_object();
    report.object["requests"] =
        Json::make_number(static_cast<double>(num_requests));
    report.object["classified"] =
        Json::make_number(static_cast<double>(classified));
    report.object["elapsed_s"] = Json::make_number(elapsed_s);
    report.object["qps"] =
        Json::make_number(static_cast<double>(num_requests) / elapsed_s);
    Json codes = Json::make_object();
    for (const auto& kv : shared.code_counts)
      codes.object[kv.first] =
          Json::make_number(static_cast<double>(kv.second));
    report.object["responses"] = std::move(codes);
    report.object["p50_ms"] = Json::make_number(percentile(0.5));
    report.object["p99_ms"] = Json::make_number(percentile(0.99));
    report.object["cache_hit_rate"] = Json::make_number(hit_rate);
    report.object["shed_responses"] =
        Json::make_number(static_cast<double>(shared.shed_responses));
    report.object["retries"] =
        Json::make_number(static_cast<double>(shared.retries));
    report.object["determinism_checks"] =
        Json::make_number(static_cast<double>(shared.determinism_checks));
    report.object["determinism_violations"] =
        Json::make_number(static_cast<double>(shared.determinism_violations));
    if (server_watchdog_kills >= 0) {
      report.object["watchdog_kills"] =
          Json::make_number(server_watchdog_kills);
      report.object["poison_detected"] =
          Json::make_number(server_poison_detected);
    }
    if (log_path != nullptr) {
      report.object["log_attempts_checked"] =
          Json::make_number(static_cast<double>(log_checked));
      report.object["log_mismatches"] =
          Json::make_number(static_cast<double>(log_mismatches));
    }
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return kExitRuntime;
    }
    out << write_json(report) << "\n";
  }

  if (!shared.errors.empty() || shared.determinism_violations > 0 ||
      classified != static_cast<u64>(num_requests) || log_mismatches > 0)
    return kExitRuntime;
  return kExitOk;
}
