// MobileNetV1 (depthwise-separable CNN) and a GNMT-style LSTM
// encoder-decoder NMT model — further zoo coverage: MobileNet exercises the
// depthwise operator (channel splits are communication-free there), GNMT
// exercises a two-stack recurrent graph with an attention bridge, the
// architecture whose expert strategy [1] the paper's RNN baseline mimics.
#include "models/models.h"
#include "models/wiring.h"
#include "ops/ops.h"

namespace pase::models {

Graph mobilenet_v1(i64 batch) {
  Graph g;
  i64 counter = 0;
  auto conv = [&](NodeId in, i64 cin, i64 hw, i64 n, i64 k) {
    const NodeId c = g.add_node(ops::conv2d(
        "Conv" + std::to_string(++counter), batch, cin, hw, hw, n, k, k));
    if (in != kInvalidNode) connect_image(g, in, c);
    return c;
  };
  auto dw = [&](NodeId in, i64 c, i64 hw) {
    const NodeId d = g.add_node(ops::depthwise_conv2d(
        "DwConv" + std::to_string(++counter), batch, c, hw, hw, 3, 3));
    connect_image(g, in, d);
    return d;
  };

  // Stem, then 13 depthwise-separable blocks (dw 3x3 + pw 1x1).
  NodeId x = conv(kInvalidNode, 3, 112, 32, 3);
  struct Block {
    i64 cin, hw, cout;
  };
  const Block blocks[] = {{32, 112, 64},    {64, 56, 128},  {128, 56, 128},
                          {128, 28, 256},   {256, 28, 256}, {256, 14, 512},
                          {512, 14, 512},   {512, 14, 512}, {512, 14, 512},
                          {512, 14, 512},   {512, 14, 512}, {512, 7, 1024},
                          {1024, 7, 1024}};
  for (const Block& blk : blocks) {
    x = dw(x, blk.cin, blk.hw);
    x = conv(x, blk.cin, blk.hw, blk.cout, 1);
  }

  const NodeId gap =
      g.add_node(ops::pool("GlobalPool", batch, 1024, 1, 1, 7, 7));
  connect_image(g, x, gap);
  const NodeId fc = g.add_node(ops::fully_connected("FC", batch, 1000, 1024));
  connect_flatten(g, gap, fc);
  const NodeId sm = g.add_node(ops::softmax("Softmax", batch, 1000));
  connect_fc_softmax(g, fc, sm);
  g.validate();
  return g;
}

Graph gnmt(i64 batch, i64 seq_len, i64 embed, i64 hidden, i64 vocab,
           i64 layers) {
  Graph g;
  const NodeId src_emb =
      g.add_node(ops::embedding("SrcEmbed", batch, seq_len, embed, vocab));
  const NodeId encoder = g.add_node(
      ops::lstm("Encoder", layers, batch, seq_len, embed, hidden));
  g.add_edge_named(src_emb, encoder, {"b", "s", "d"}, {"b", "s", "d"});

  const NodeId tgt_emb =
      g.add_node(ops::embedding("TgtEmbed", batch, seq_len, embed, vocab));
  const NodeId decoder = g.add_node(
      ops::lstm("Decoder", layers, batch, seq_len, embed, hidden));
  g.add_edge_named(tgt_emb, decoder, {"b", "s", "d"}, {"b", "s", "d"});

  // Attention bridge: queries from the decoder states, keys/values from the
  // encoder output (every device needs the full source states).
  const NodeId attn = g.add_node(
      ops::attention("Attention", batch, seq_len, 1, hidden, hidden,
                     seq_len));
  g.add_edge_named(encoder, attn, {"b", "s", "e"}, {"b", "", ""});
  g.add_edge_named(decoder, attn, {"b", "s", "e"}, {"b", "s", ""});

  const NodeId proj =
      g.add_node(ops::projection("FC", batch, seq_len, vocab, hidden));
  g.add_edge_named(attn, proj, {"b", "s", "c"}, {"b", "s", "d"});
  const NodeId sm =
      g.add_node(ops::softmax_seq("Softmax", batch, seq_len, vocab));
  g.add_edge_named(proj, sm, {"b", "s", "v"}, {"b", "s", "v"});

  g.validate();
  return g;
}

}  // namespace pase::models
