// Zoo-by-name lookup shared by the strategy service (`zoo` request field)
// and pase_cli (--zoo). Kept out of the individual model builders so adding
// a model means touching exactly one table.
#include <string>

#include "models/models.h"

namespace pase::models {

std::optional<Graph> zoo_graph(const std::string& name) {
  if (name == "alexnet") return alexnet();
  if (name == "inception_v3") return inception_v3();
  if (name == "rnnlm") return rnnlm();
  if (name == "transformer") return transformer();
  if (name == "densenet") return densenet();
  if (name == "resnet50") return resnet50();
  if (name == "vgg16") return vgg16();
  if (name == "mobilenet_v1") return mobilenet_v1();
  if (name == "gnmt") return gnmt();
  // Small FC chain: cheap-query tests and warm-up probes use this.
  if (name == "mlp") return mlp(32, {256, 256, 128, 64});
  // Widened-space scenarios (ISSUE: spatial/channel + pipeline dims).
  // CNN at large p: batch 16 exhausts the batch axis long before a big
  // cluster does, so spatial/channel splits are the only way to keep
  // scaling — the LBANN motivation (--split-dims spatial,channel).
  if (name == "resnet_large_p") return resnet50(/*batch=*/16);
  // Deep uniform stack with heavier per-block shapes than the generated
  // default: the natural pipelining workload (--pipeline-stages auto).
  if (name == "transformer_pipelined")
    return transformer_stack(/*blocks=*/8, /*batch=*/8, /*seq_len=*/128,
                             /*d_model=*/512, /*heads=*/8, /*d_ff=*/2048,
                             /*vocab=*/16384);
  // Generated N-block GPT-style stacks ("transformer_stack_<N>", N in
  // [1, 100000]): the repeated-structure family block collapsing and delta
  // re-solves are built for (docs/SCALING.md). The suffix must be a plain
  // decimal with no leading zero so every accepted name has exactly one
  // spelling (the result cache keys on the name).
  constexpr char kStackPrefix[] = "transformer_stack_";
  if (name.rfind(kStackPrefix, 0) == 0) {
    const std::string suffix = name.substr(sizeof(kStackPrefix) - 1);
    if (!suffix.empty() && suffix.size() <= 6 &&
        suffix.find_first_not_of("0123456789") == std::string::npos &&
        suffix[0] != '0') {
      const i64 blocks = std::stoll(suffix);
      if (blocks >= 1 && blocks <= 100000) return transformer_stack(blocks);
    }
  }
  return std::nullopt;
}

}  // namespace pase::models
