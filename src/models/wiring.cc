#include "models/wiring.h"

#include "util/check.h"

namespace pase::models {

namespace {

const char* channel_dim(const Node& n) {
  // Regular convolutions emit their out-channel dim "n"; depthwise convs
  // and every other image op use "c".
  return n.space.find("n") >= 0 ? "n" : "c";
}

}  // namespace

EdgeId connect_image(Graph& g, NodeId src, NodeId dst) {
  const Node& s = g.node(src);
  const std::string sc = channel_dim(s);
  return g.add_edge_named(src, dst, {"b", sc, "h", "w"},
                          {"b", "c", "h", "w"});
}

EdgeId connect_flatten(Graph& g, NodeId src, NodeId dst) {
  const Node& s = g.node(src);
  const std::string sc = channel_dim(s);
  const i64 b = s.space.dim(s.space.find("b")).size;
  const i64 c = s.space.dim(s.space.find(sc)).size;
  const i64 h = s.space.dim(s.space.find("h")).size;
  const i64 w = s.space.dim(s.space.find("w")).size;
  // Tensor kept 4-D so producer-side splits stay visible; only the channel
  // dim maps onto the FC's input channels (channel-major flattening).
  return g.add_edge_named(src, dst, {"b", sc, "h", "w"},
                          {"b", "c", "", ""}, {b, c, h, w});
}

EdgeId connect_fc(Graph& g, NodeId src, NodeId dst) {
  PASE_CHECK(g.node(src).kind == OpKind::kFullyConnected);
  return g.add_edge_named(src, dst, {"b", "n"}, {"b", "c"});
}

EdgeId connect_fc_softmax(Graph& g, NodeId src, NodeId dst) {
  return g.add_edge_named(src, dst, {"b", "n"}, {"b", "n"});
}

}  // namespace pase::models
