// Transformer (base) graph with full residual/LayerNorm structure. The final
// encoder LayerNorm output feeds every decoder cross-attention, making it a
// high-degree node with a long live range — the structural property the
// paper's §IV-A singles out as what makes Transformer harder to sequence
// than InceptionV3.
#include "models/models.h"
#include "ops/ops.h"
#include "util/check.h"

namespace pase::models {

namespace {

/// Connects a [b, s, d]-shaped producer (embedding / layer-norm /
/// elementwise / feed-forward) to a consumer. `dst_d` names the consumer
/// iteration dim the model dim maps to ("" = the consumer needs the full
/// model dim, e.g. attention projections contract over it).
EdgeId seq_edge(Graph& g, NodeId src, NodeId dst, const std::string& dst_d) {
  return g.add_edge_named(src, dst, {"b", "s", "d"}, {"b", "s", dst_d});
}

/// Connects an attention output [b, s, h, c] to a [b, s, d] consumer; the
/// head dim maps onto the consumer's model dim (head-major layout), the
/// within-head channels stay local.
EdgeId attn_out_edge(Graph& g, NodeId src, NodeId dst) {
  return g.add_edge_named(src, dst, {"b", "s", "h", "c"},
                          {"b", "s", "d", ""});
}

}  // namespace

Graph transformer(i64 batch, i64 seq_len, i64 d_model, i64 heads, i64 d_ff,
                  i64 vocab, i64 layers) {
  PASE_CHECK(d_model % heads == 0);
  const i64 dk = d_model / heads;
  Graph g;

  auto add_ln = [&](const std::string& name) {
    return g.add_node(ops::layer_norm(name, batch, seq_len, d_model));
  };
  auto add_residual = [&](const std::string& name) {
    return g.add_node(ops::elementwise_seq(name, batch, seq_len, d_model));
  };

  // ---- Encoder ----
  const NodeId src_emb =
      g.add_node(ops::embedding("SrcEmbed", batch, seq_len, d_model, vocab));
  NodeId x = src_emb;
  for (i64 i = 1; i <= layers; ++i) {
    const std::string t = std::to_string(i);
    const NodeId attn = g.add_node(ops::attention(
        "EncAttn" + t, batch, seq_len, heads, dk, dk, seq_len));
    seq_edge(g, x, attn, "");
    const NodeId add1 = add_residual("EncRes1_" + t);
    seq_edge(g, x, add1, "d");
    attn_out_edge(g, attn, add1);
    const NodeId ln1 = add_ln("EncLN1_" + t);
    seq_edge(g, add1, ln1, "d");

    const NodeId ffn = g.add_node(
        ops::feed_forward("EncFFN" + t, batch, seq_len, d_model, d_ff));
    seq_edge(g, ln1, ffn, "d");
    const NodeId add2 = add_residual("EncRes2_" + t);
    seq_edge(g, ln1, add2, "d");
    seq_edge(g, ffn, add2, "d");
    const NodeId ln2 = add_ln("EncLN2_" + t);
    seq_edge(g, add2, ln2, "d");
    x = ln2;
  }
  const NodeId enc_out = x;

  // ---- Decoder ----
  const NodeId tgt_emb =
      g.add_node(ops::embedding("TgtEmbed", batch, seq_len, d_model, vocab));
  NodeId y = tgt_emb;
  for (i64 i = 1; i <= layers; ++i) {
    const std::string t = std::to_string(i);
    const NodeId sattn = g.add_node(ops::attention(
        "DecSelfAttn" + t, batch, seq_len, heads, dk, dk, seq_len));
    seq_edge(g, y, sattn, "");
    const NodeId add1 = add_residual("DecRes1_" + t);
    seq_edge(g, y, add1, "d");
    attn_out_edge(g, sattn, add1);
    const NodeId ln1 = add_ln("DecLN1_" + t);
    seq_edge(g, add1, ln1, "d");

    // Cross-attention: queries from the decoder, keys/values from the
    // encoder output (every device needs the full source activations).
    const NodeId cattn = g.add_node(ops::attention(
        "DecCrossAttn" + t, batch, seq_len, heads, dk, dk, seq_len));
    seq_edge(g, ln1, cattn, "");
    g.add_edge_named(enc_out, cattn, {"b", "s", "d"}, {"b", "", ""});
    const NodeId add2 = add_residual("DecRes2_" + t);
    seq_edge(g, ln1, add2, "d");
    attn_out_edge(g, cattn, add2);
    const NodeId ln2 = add_ln("DecLN2_" + t);
    seq_edge(g, add2, ln2, "d");

    const NodeId ffn = g.add_node(
        ops::feed_forward("DecFFN" + t, batch, seq_len, d_model, d_ff));
    seq_edge(g, ln2, ffn, "d");
    const NodeId add3 = add_residual("DecRes3_" + t);
    seq_edge(g, ln2, add3, "d");
    seq_edge(g, ffn, add3, "d");
    const NodeId ln3 = add_ln("DecLN3_" + t);
    seq_edge(g, add3, ln3, "d");
    y = ln3;
  }

  // ---- Output head ----
  const NodeId proj =
      g.add_node(ops::projection("FC", batch, seq_len, vocab, d_model));
  seq_edge(g, y, proj, "d");
  const NodeId sm =
      g.add_node(ops::softmax_seq("Softmax", batch, seq_len, vocab));
  g.add_edge_named(proj, sm, {"b", "s", "v"}, {"b", "s", "v"});

  g.validate();
  return g;
}

}  // namespace pase::models
