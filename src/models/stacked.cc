// Generated N-block decoder-only transformer stack (GPT-style): one
// pre-norm block — LN -> self-attention -> residual add, LN -> feed-forward
// -> residual add — repeated N times between an embedding head and a
// LayerNorm + vocabulary-projection + softmax tail. Every block is
// byte-for-byte structurally identical (same extents, same edge wiring
// offsets), which is exactly what the block-collapse pass in
// src/core/block_collapse.h detects: the whole stack folds into one
// 6-node representative however large N is. N is capped only by memory;
// the thousand-layer configurations in docs/SCALING.md use this family.
#include "models/models.h"
#include "ops/ops.h"
#include "util/check.h"

namespace pase::models {

namespace {

/// [b, s, d] producer -> consumer; `dst_d` names the consumer dim the model
/// dim maps to ("" = consumer contracts over the full model dim).
EdgeId seq_edge(Graph& g, NodeId src, NodeId dst, const std::string& dst_d) {
  return g.add_edge_named(src, dst, {"b", "s", "d"}, {"b", "s", dst_d});
}

/// Attention output [b, s, h, c] -> [b, s, d] consumer (head-major layout).
EdgeId attn_out_edge(Graph& g, NodeId src, NodeId dst) {
  return g.add_edge_named(src, dst, {"b", "s", "h", "c"},
                          {"b", "s", "d", ""});
}

}  // namespace

Graph transformer_stack(i64 blocks, i64 batch, i64 seq_len, i64 d_model,
                        i64 heads, i64 d_ff, i64 vocab) {
  PASE_CHECK(blocks >= 1);
  PASE_CHECK(d_model % heads == 0);
  const i64 dk = d_model / heads;
  Graph g;

  const NodeId emb =
      g.add_node(ops::embedding("Embed", batch, seq_len, d_model, vocab));
  NodeId x = emb;
  for (i64 i = 1; i <= blocks; ++i) {
    const std::string t = std::to_string(i);
    // Pre-norm: LN feeds attention, the residual skips around both.
    const NodeId ln1 =
        g.add_node(ops::layer_norm("LN1_" + t, batch, seq_len, d_model));
    seq_edge(g, x, ln1, "d");
    const NodeId attn = g.add_node(
        ops::attention("Attn" + t, batch, seq_len, heads, dk, dk, seq_len));
    seq_edge(g, ln1, attn, "");
    const NodeId add1 = g.add_node(
        ops::elementwise_seq("Res1_" + t, batch, seq_len, d_model));
    seq_edge(g, x, add1, "d");
    attn_out_edge(g, attn, add1);

    const NodeId ln2 =
        g.add_node(ops::layer_norm("LN2_" + t, batch, seq_len, d_model));
    seq_edge(g, add1, ln2, "d");
    const NodeId ffn = g.add_node(
        ops::feed_forward("FFN" + t, batch, seq_len, d_model, d_ff));
    seq_edge(g, ln2, ffn, "d");
    const NodeId add2 = g.add_node(
        ops::elementwise_seq("Res2_" + t, batch, seq_len, d_model));
    seq_edge(g, add1, add2, "d");
    seq_edge(g, ffn, add2, "d");
    x = add2;
  }

  const NodeId lnf =
      g.add_node(ops::layer_norm("LNFinal", batch, seq_len, d_model));
  seq_edge(g, x, lnf, "d");
  const NodeId proj =
      g.add_node(ops::projection("FC", batch, seq_len, vocab, d_model));
  seq_edge(g, lnf, proj, "d");
  const NodeId sm =
      g.add_node(ops::softmax_seq("Softmax", batch, seq_len, vocab));
  g.add_edge_named(proj, sm, {"b", "s", "v"}, {"b", "s", "v"});

  g.validate();
  return g;
}

}  // namespace pase::models
