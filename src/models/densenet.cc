// DenseNet-style stack of dense blocks: within a block every layer consumes
// the outputs of all previous layers. The graph is uniformly dense, so no
// vertex ordering can keep dependent sets small — the limitation the paper
// discusses in §V; used by the dependent-set ablation.
#include "models/models.h"
#include "models/wiring.h"
#include "ops/ops.h"

namespace pase::models {

Graph densenet(i64 batch, i64 blocks, i64 layers_per_block, i64 growth) {
  Graph g;
  i64 counter = 0;
  i64 h = 28, w = 28;
  i64 channels = 2 * growth;

  NodeId stem = g.add_node(
      ops::conv2d("Stem", batch, 3, h, w, channels, 3, 3));

  NodeId block_in = stem;
  for (i64 blk = 0; blk < blocks; ++blk) {
    std::vector<NodeId> feeds{block_in};
    i64 cin = channels;
    for (i64 l = 0; l < layers_per_block; ++l) {
      const NodeId conv = g.add_node(ops::conv2d(
          "Dense" + std::to_string(++counter), batch, cin, h, w, growth, 3,
          3));
      // Dense connectivity: this layer reads every previous output.
      for (NodeId f : feeds) connect_image(g, f, conv);
      feeds.push_back(conv);
      cin += growth;
    }
    // Transition: 1x1 conv halving the spatial grid, fed by all layers.
    h /= 2;
    w /= 2;
    const NodeId trans = g.add_node(ops::conv2d(
        "Transition" + std::to_string(blk + 1), batch, cin, h, w, cin / 2, 1,
        1));
    for (NodeId f : feeds) connect_image(g, f, trans);
    channels = cin / 2;
    block_in = trans;
  }

  const NodeId gap = g.add_node(
      ops::pool("GlobalPool", batch, channels, 1, 1, h, w));
  connect_image(g, block_in, gap);
  const NodeId fc =
      g.add_node(ops::fully_connected("FC", batch, 1000, channels));
  connect_flatten(g, gap, fc);
  const NodeId sm = g.add_node(ops::softmax("Softmax", batch, 1000));
  connect_fc_softmax(g, fc, sm);

  g.validate();
  return g;
}

std::vector<Benchmark> paper_benchmarks() {
  std::vector<Benchmark> v;
  v.push_back({"AlexNet", alexnet()});
  v.push_back({"InceptionV3", inception_v3()});
  v.push_back({"RNNLM", rnnlm()});
  v.push_back({"Transformer", transformer()});
  return v;
}

}  // namespace pase::models
