// InceptionV3 graph builder. Every convolution is followed by a batch-norm
// node (conv+BN+ReLU blocks in the reference network); inception modules
// fan out of and back into high-degree split/concat nodes, giving the graph
// the sparse-with-a-few-dense-spots structure the paper's §III-C discusses
// (Fig. 5 shows the InceptionE subgraph).
#include "models/models.h"
#include "models/wiring.h"
#include "ops/ops.h"
#include "util/check.h"

namespace pase::models {

namespace {

/// Incrementally builds the network; tracks the running layer counter so
/// node names stay unique.
class Builder {
 public:
  explicit Builder(Graph& g, i64 batch) : g_(g), b_(batch) {}

  /// conv(+BN) block: returns the BN node as the block output.
  NodeId conv(NodeId in, i64 cin, i64 h, i64 w, i64 n, i64 r, i64 s) {
    const std::string id = std::to_string(++counter_);
    const NodeId c = g_.add_node(ops::conv2d("Conv" + id, b_, cin, h, w, n,
                                             r, s));
    if (in != kInvalidNode) connect_image(g_, in, c);
    const NodeId bn = g_.add_node(ops::batch_norm("BN" + id, b_, n, h, w));
    connect_image(g_, c, bn);
    return bn;
  }

  NodeId max_pool(NodeId in, i64 c, i64 h, i64 w, i64 r, i64 s) {
    const NodeId p = g_.add_node(
        ops::pool("Pool" + std::to_string(++counter_), b_, c, h, w, r, s));
    connect_image(g_, in, p);
    return p;
  }

  NodeId concat(const std::vector<NodeId>& inputs, i64 c_total, i64 h,
                i64 w) {
    const NodeId cc = g_.add_node(
        ops::concat("Concat" + std::to_string(++counter_), b_, c_total, h,
                    w));
    for (NodeId in : inputs) connect_image(g_, in, cc);
    return cc;
  }

  Graph& g_;
  i64 b_;
  i64 counter_ = 0;
};

/// 35x35 module: 1x1 / 1x1->5x5 / 1x1->3x3->3x3 / pool->1x1 branches.
NodeId inception_a(Builder& B, NodeId in, i64 cin, i64 pool_proj) {
  const i64 h = 35, w = 35;
  const NodeId b1 = B.conv(in, cin, h, w, 64, 1, 1);
  NodeId b2 = B.conv(in, cin, h, w, 48, 1, 1);
  b2 = B.conv(b2, 48, h, w, 64, 5, 5);
  NodeId b3 = B.conv(in, cin, h, w, 64, 1, 1);
  b3 = B.conv(b3, 64, h, w, 96, 3, 3);
  b3 = B.conv(b3, 96, h, w, 96, 3, 3);
  NodeId b4 = B.max_pool(in, cin, h, w, 3, 3);
  b4 = B.conv(b4, cin, h, w, pool_proj, 1, 1);
  return B.concat({b1, b2, b3, b4}, 64 + 64 + 96 + pool_proj, h, w);
}

/// Grid reduction 35x35 -> 17x17.
NodeId inception_b(Builder& B, NodeId in, i64 cin) {
  const NodeId b1 = B.conv(in, cin, 17, 17, 384, 3, 3);  // stride 2
  NodeId b2 = B.conv(in, cin, 35, 35, 64, 1, 1);
  b2 = B.conv(b2, 64, 35, 35, 96, 3, 3);
  b2 = B.conv(b2, 96, 17, 17, 96, 3, 3);  // stride 2
  const NodeId b3 = B.max_pool(in, cin, 17, 17, 3, 3);  // stride 2
  return B.concat({b1, b2, b3}, 384 + 96 + cin, 17, 17);
}

/// 17x17 module with factorized 7x7 convolutions; c7 is the bottleneck
/// width (128/160/160/192 across the four C modules).
NodeId inception_c(Builder& B, NodeId in, i64 cin, i64 c7) {
  const i64 h = 17, w = 17;
  const NodeId b1 = B.conv(in, cin, h, w, 192, 1, 1);
  NodeId b2 = B.conv(in, cin, h, w, c7, 1, 1);
  b2 = B.conv(b2, c7, h, w, c7, 1, 7);
  b2 = B.conv(b2, c7, h, w, 192, 7, 1);
  NodeId b3 = B.conv(in, cin, h, w, c7, 1, 1);
  b3 = B.conv(b3, c7, h, w, c7, 7, 1);
  b3 = B.conv(b3, c7, h, w, c7, 1, 7);
  b3 = B.conv(b3, c7, h, w, c7, 7, 1);
  b3 = B.conv(b3, c7, h, w, 192, 1, 7);
  NodeId b4 = B.max_pool(in, cin, h, w, 3, 3);
  b4 = B.conv(b4, cin, h, w, 192, 1, 1);
  return B.concat({b1, b2, b3, b4}, 4 * 192, h, w);
}

/// Grid reduction 17x17 -> 8x8.
NodeId inception_d(Builder& B, NodeId in, i64 cin) {
  NodeId b1 = B.conv(in, cin, 17, 17, 192, 1, 1);
  b1 = B.conv(b1, 192, 8, 8, 320, 3, 3);  // stride 2
  NodeId b2 = B.conv(in, cin, 17, 17, 192, 1, 1);
  b2 = B.conv(b2, 192, 17, 17, 192, 1, 7);
  b2 = B.conv(b2, 192, 17, 17, 192, 7, 1);
  b2 = B.conv(b2, 192, 8, 8, 192, 3, 3);  // stride 2
  const NodeId b3 = B.max_pool(in, cin, 8, 8, 3, 3);  // stride 2
  return B.concat({b1, b2, b3}, 320 + 192 + cin, 8, 8);
}

/// 8x8 module (paper Fig. 5): two branches themselves fork into parallel
/// 1x3 / 3x1 convolutions that rejoin at the concat, creating the
/// high-degree nodes the ordering has to handle.
NodeId inception_e(Builder& B, NodeId in, i64 cin) {
  const i64 h = 8, w = 8;
  const NodeId b1 = B.conv(in, cin, h, w, 320, 1, 1);
  const NodeId b2 = B.conv(in, cin, h, w, 384, 1, 1);
  const NodeId b2a = B.conv(b2, 384, h, w, 384, 1, 3);
  const NodeId b2b = B.conv(b2, 384, h, w, 384, 3, 1);
  NodeId b3 = B.conv(in, cin, h, w, 448, 1, 1);
  b3 = B.conv(b3, 448, h, w, 384, 3, 3);
  const NodeId b3a = B.conv(b3, 384, h, w, 384, 1, 3);
  const NodeId b3b = B.conv(b3, 384, h, w, 384, 3, 1);
  NodeId b4 = B.max_pool(in, cin, h, w, 3, 3);
  b4 = B.conv(b4, cin, h, w, 192, 1, 1);
  return B.concat({b1, b2a, b2b, b3a, b3b, b4},
                  320 + 4 * 384 + 192, h, w);
}

}  // namespace

Graph inception_v3(i64 batch) {
  Graph g;
  Builder B(g, batch);

  // Stem: 299x299x3 -> 35x35x192.
  NodeId x = B.conv(kInvalidNode, 3, 149, 149, 32, 3, 3);  // stride 2
  x = B.conv(x, 32, 147, 147, 32, 3, 3);
  x = B.conv(x, 32, 147, 147, 64, 3, 3);
  x = B.max_pool(x, 64, 73, 73, 3, 3);  // stride 2
  x = B.conv(x, 64, 73, 73, 80, 1, 1);
  x = B.conv(x, 80, 71, 71, 192, 3, 3);
  x = B.max_pool(x, 192, 35, 35, 3, 3);  // stride 2

  // Inception modules.
  x = inception_a(B, x, 192, 32);   // -> 256
  x = inception_a(B, x, 256, 64);   // -> 288
  x = inception_a(B, x, 288, 64);   // -> 288
  x = inception_b(B, x, 288);       // -> 768, 17x17
  x = inception_c(B, x, 768, 128);
  x = inception_c(B, x, 768, 160);
  x = inception_c(B, x, 768, 160);
  x = inception_c(B, x, 768, 192);
  x = inception_d(B, x, 768);       // -> 1280, 8x8
  x = inception_e(B, x, 1280);      // -> 2048
  x = inception_e(B, x, 2048);      // -> 2048

  // Head: global average pool -> FC -> softmax.
  x = B.max_pool(x, 2048, 1, 1, 8, 8);
  const NodeId fc = g.add_node(ops::fully_connected("FC", batch, 1000, 2048));
  connect_flatten(g, x, fc);
  const NodeId sm = g.add_node(ops::softmax("Softmax", batch, 1000));
  connect_fc_softmax(g, fc, sm);

  g.validate();
  return g;
}

}  // namespace pase::models
