// ResNet-50 and VGG-16 builders — zoo extensions beyond the paper's four
// benchmarks. ResNet's skip connections give every block a degree-3 join
// node (between InceptionV3's fan-outs and AlexNet's path), a useful
// ordering stress case; VGG-16 is a parameter-heavy path graph whose giant
// FC layers make OWT-style parameter parallelism essential.
#include "models/models.h"
#include "models/wiring.h"
#include "ops/ops.h"

namespace pase::models {

namespace {

struct ResNetBuilder {
  Graph& g;
  i64 b;
  i64 counter = 0;

  NodeId conv_bn(NodeId in, i64 cin, i64 h, i64 w, i64 n, i64 r, i64 s) {
    const std::string id = std::to_string(++counter);
    const NodeId c =
        g.add_node(ops::conv2d("Conv" + id, b, cin, h, w, n, r, s));
    if (in != kInvalidNode) connect_image(g, in, c);
    const NodeId bn = g.add_node(ops::batch_norm("BN" + id, b, n, h, w));
    connect_image(g, c, bn);
    return bn;
  }

  /// Bottleneck residual block: 1x1 -> 3x3 -> 1x1 plus a skip edge joined
  /// by an elementwise add. `project` adds a 1x1 projection on the skip
  /// path (stride/channel changes).
  NodeId bottleneck(NodeId in, i64 cin, i64 h, i64 w, i64 mid, i64 out,
                    bool project) {
    NodeId x = conv_bn(in, cin, h, w, mid, 1, 1);
    x = conv_bn(x, mid, h, w, mid, 3, 3);
    x = conv_bn(x, mid, h, w, out, 1, 1);
    NodeId skip = in;
    if (project) skip = conv_bn(in, cin, h, w, out, 1, 1);
    const NodeId add = g.add_node(
        ops::elementwise("Add" + std::to_string(++counter), b, out, h, w));
    connect_image(g, x, add);
    connect_image(g, skip, add);
    return add;
  }
};

}  // namespace

Graph resnet50(i64 batch) {
  Graph g;
  ResNetBuilder B{g, batch};

  // Stem: 224x224x3 -> 56x56x64.
  NodeId x = B.conv_bn(kInvalidNode, 3, 112, 112, 64, 7, 7);  // stride 2
  const NodeId pool =
      g.add_node(ops::pool("StemPool", batch, 64, 56, 56, 3, 3));
  connect_image(g, x, pool);
  x = pool;

  // Stage layout: (blocks, mid, out, spatial).
  struct Stage {
    i64 blocks, mid, out, hw;
  };
  const Stage stages[] = {
      {3, 64, 256, 56}, {4, 128, 512, 28}, {6, 256, 1024, 14},
      {3, 512, 2048, 7}};
  i64 cin = 64;
  for (const Stage& s : stages) {
    for (i64 blk = 0; blk < s.blocks; ++blk) {
      x = B.bottleneck(x, cin, s.hw, s.hw, s.mid, s.out,
                       /*project=*/blk == 0);
      cin = s.out;
    }
  }

  const NodeId gap = g.add_node(ops::pool("GlobalPool", batch, 2048, 1, 1, 7, 7));
  connect_image(g, x, gap);
  const NodeId fc = g.add_node(ops::fully_connected("FC", batch, 1000, 2048));
  connect_flatten(g, gap, fc);
  const NodeId sm = g.add_node(ops::softmax("Softmax", batch, 1000));
  connect_fc_softmax(g, fc, sm);
  g.validate();
  return g;
}

Graph vgg16(i64 batch) {
  Graph g;
  i64 counter = 0;
  auto conv = [&](NodeId in, i64 cin, i64 hw, i64 n) {
    const NodeId c = g.add_node(ops::conv2d(
        "Conv" + std::to_string(++counter), batch, cin, hw, hw, n, 3, 3));
    if (in != kInvalidNode) connect_image(g, in, c);
    return c;
  };
  auto pool = [&](NodeId in, i64 c, i64 hw) {
    const NodeId p = g.add_node(
        ops::pool("Pool" + std::to_string(counter), batch, c, hw, hw, 2, 2));
    connect_image(g, in, p);
    return p;
  };

  NodeId x = conv(kInvalidNode, 3, 224, 64);
  x = conv(x, 64, 224, 64);
  x = pool(x, 64, 112);
  x = conv(x, 64, 112, 128);
  x = conv(x, 128, 112, 128);
  x = pool(x, 128, 56);
  x = conv(x, 128, 56, 256);
  x = conv(x, 256, 56, 256);
  x = conv(x, 256, 56, 256);
  x = pool(x, 256, 28);
  x = conv(x, 256, 28, 512);
  x = conv(x, 512, 28, 512);
  x = conv(x, 512, 28, 512);
  x = pool(x, 512, 14);
  x = conv(x, 512, 14, 512);
  x = conv(x, 512, 14, 512);
  x = conv(x, 512, 14, 512);
  x = pool(x, 512, 7);

  const NodeId fc1 =
      g.add_node(ops::fully_connected("FC1", batch, 4096, 512 * 7 * 7));
  connect_flatten(g, x, fc1);
  const NodeId fc2 = g.add_node(ops::fully_connected("FC2", batch, 4096, 4096));
  connect_fc(g, fc1, fc2);
  const NodeId fc3 = g.add_node(ops::fully_connected("FC3", batch, 1000, 4096));
  connect_fc(g, fc2, fc3);
  const NodeId sm = g.add_node(ops::softmax("Softmax", batch, 1000));
  connect_fc_softmax(g, fc3, sm);
  g.validate();
  return g;
}

}  // namespace pase::models
