// Edge-wiring helpers shared by the model builders: they resolve the tensor
// dim maps between common layer pairs so model code reads like a network
// definition.
#pragma once

#include "graph/graph.h"

namespace pase::models {

/// Connects an image-shaped output [b, channels, h, w] of `src` to the image
/// input of `dst`. The producer's channel dim is "n" for convolutions and
/// "c" otherwise; the consumer's is always "c". Spatial extents may differ
/// (strides); the dim map still aligns them.
EdgeId connect_image(Graph& g, NodeId src, NodeId dst);

/// Connects a [b, c, h, w] feature map to a fully-connected layer (b, n, c),
/// flattening c*h*w into the FC's input-channel dim (channel-major).
EdgeId connect_flatten(Graph& g, NodeId src, NodeId dst);

/// Connects FC output [b, n] to the next FC's input (b, *, c).
EdgeId connect_fc(Graph& g, NodeId src, NodeId dst);

/// Connects FC output [b, n] to a softmax (b, n).
EdgeId connect_fc_softmax(Graph& g, NodeId src, NodeId dst);

}  // namespace pase::models
