#include "models/models.h"
#include "models/wiring.h"
#include "ops/ops.h"

namespace pase::models {

Graph alexnet(i64 batch) {
  Graph g;
  const i64 b = batch;

  // Convolutional trunk (output spatial extents after stride/pooling).
  const NodeId conv1 = g.add_node(ops::conv2d("Conv1", b, 3, 55, 55, 96, 11, 11));
  const NodeId pool1 = g.add_node(ops::pool("Pool1", b, 96, 27, 27, 3, 3));
  const NodeId conv2 = g.add_node(ops::conv2d("Conv2", b, 96, 27, 27, 256, 5, 5));
  const NodeId pool2 = g.add_node(ops::pool("Pool2", b, 256, 13, 13, 3, 3));
  const NodeId conv3 = g.add_node(ops::conv2d("Conv3", b, 256, 13, 13, 384, 3, 3));
  const NodeId conv4 = g.add_node(ops::conv2d("Conv4", b, 384, 13, 13, 384, 3, 3));
  const NodeId conv5 = g.add_node(ops::conv2d("Conv5", b, 384, 13, 13, 256, 3, 3));
  const NodeId pool5 = g.add_node(ops::pool("Pool5", b, 256, 6, 6, 3, 3));

  // Classifier head.
  const NodeId fc1 = g.add_node(ops::fully_connected("FC1", b, 4096, 256 * 6 * 6));
  const NodeId fc2 = g.add_node(ops::fully_connected("FC2", b, 4096, 4096));
  const NodeId fc3 = g.add_node(ops::fully_connected("FC3", b, 1000, 4096));
  const NodeId sm = g.add_node(ops::softmax("Softmax", b, 1000));

  connect_image(g, conv1, pool1);
  connect_image(g, pool1, conv2);
  connect_image(g, conv2, pool2);
  connect_image(g, pool2, conv3);
  connect_image(g, conv3, conv4);
  connect_image(g, conv4, conv5);
  connect_image(g, conv5, pool5);
  connect_flatten(g, pool5, fc1);
  connect_fc(g, fc1, fc2);
  connect_fc(g, fc2, fc3);
  connect_fc_softmax(g, fc3, sm);

  g.validate();
  return g;
}

Graph mlp(i64 batch, const std::vector<i64>& widths) {
  PASE_CHECK(widths.size() >= 2);
  Graph g;
  NodeId prev = kInvalidNode;
  for (size_t i = 1; i < widths.size(); ++i) {
    const NodeId fc = g.add_node(ops::fully_connected(
        "FC" + std::to_string(i), batch, widths[i], widths[i - 1]));
    if (prev != kInvalidNode) connect_fc(g, prev, fc);
    prev = fc;
  }
  const NodeId sm = g.add_node(ops::softmax("Softmax", batch, widths.back()));
  connect_fc_softmax(g, prev, sm);
  g.validate();
  return g;
}

}  // namespace pase::models
