// Model zoo: builders for the paper's four evaluation benchmarks (§IV) plus
// auxiliary graphs used by tests, examples and ablations. Shapes default to
// the paper's: batch 128 for the CNNs (ImageNet-1K), batch 64 for RNNLM
// (Billion-Word) and Transformer (WMT EN->DE).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace pase::models {

/// AlexNet (Krizhevsky et al.): 5 convolutions, 3 FC layers, softmax —
/// a simple path graph (paper §IV benchmark (a)).
Graph alexnet(i64 batch = 128);

/// InceptionV3 (Szegedy et al.): full stem + 3xA, B, 4xC, D, 2xE inception
/// modules; sparse graph with a few high-degree split/concat nodes
/// (paper §IV benchmark (b), Fig. 5).
Graph inception_v3(i64 batch = 128);

/// RNNLM: embedding -> 2-layer LSTM stack (a single 5-D node, §IV-A) ->
/// vocabulary projection -> softmax; path graph (benchmark (c)). The
/// default vocabulary is the 32k sampled-softmax shortlist Billion-Word
/// LMs train with; pass vocab = 793471 for the raw corpus vocabulary.
Graph rnnlm(i64 batch = 64, i64 seq_len = 40, i64 embed = 1024,
            i64 hidden = 2048, i64 vocab = 32768, i64 layers = 2);

/// Transformer base (Vaswani et al.): 6 encoder + 6 decoder layers with
/// residual/LayerNorm structure; the encoder output is a high-degree node
/// with a long live range (benchmark (d)).
Graph transformer(i64 batch = 64, i64 seq_len = 128, i64 d_model = 512,
                  i64 heads = 8, i64 d_ff = 2048, i64 vocab = 32000,
                  i64 layers = 6);

/// DenseNet-style dense block stack: uniformly dense connectivity; no
/// ordering keeps dependent sets small (the §V limitation example).
Graph densenet(i64 batch = 32, i64 blocks = 2, i64 layers_per_block = 6,
               i64 growth = 32);

/// ResNet-50: bottleneck residual blocks whose skip connections create a
/// degree-3 join per block — a zoo extension beyond the paper's benchmarks.
Graph resnet50(i64 batch = 128);

/// VGG-16: a parameter-heavy path-graph CNN (the classic OWT showcase).
Graph vgg16(i64 batch = 128);

/// MobileNetV1: depthwise-separable blocks; channel splits of the depthwise
/// convolutions are communication-free, a distinct trade-off point.
Graph mobilenet_v1(i64 batch = 128);

/// GNMT-style LSTM encoder-decoder with an attention bridge — the
/// architecture whose expert strategy [1] the paper's RNN baseline mimics.
Graph gnmt(i64 batch = 64, i64 seq_len = 40, i64 embed = 1024,
           i64 hidden = 1024, i64 vocab = 32768, i64 layers = 4);

/// Small multi-layer perceptron (FC chain) for tests and the quickstart.
Graph mlp(i64 batch, const std::vector<i64>& widths);

/// Generated decoder-only transformer stack (GPT-style): `blocks` identical
/// pre-norm blocks (LN -> attention -> residual, LN -> feed-forward ->
/// residual; 6 nodes each) between an embedding head and an
/// LN/projection/softmax tail. Every block is structurally identical, the
/// workload block collapsing (docs/SCALING.md) is built for; N up to 1000
/// and beyond is supported. Defaults keep per-node work small so graph size,
/// not per-vertex cost, dominates search time.
Graph transformer_stack(i64 blocks, i64 batch = 8, i64 seq_len = 64,
                        i64 d_model = 256, i64 heads = 4, i64 d_ff = 1024,
                        i64 vocab = 8192);

/// Builds a zoo model by name: the builders above with their default
/// shapes ("alexnet", "transformer", "mlp", ...), the generated
/// repeated-block family "transformer_stack_<N>" for N in [1, 100000]
/// (e.g. "transformer_stack_1000"), and the widened-space scenarios
/// "resnet_large_p" (small-batch ResNet-50 — batch parallelism exhausts at
/// large p, spatial/channel splits keep scaling) and
/// "transformer_pipelined" (a deep uniform stack for --pipeline-stages).
/// Returns nullopt for unknown names. This is the lookup behind the
/// strategy service's `zoo` request field and pase_cli's --zoo flag.
std::optional<Graph> zoo_graph(const std::string& name);

/// A named benchmark graph.
struct Benchmark {
  std::string name;
  Graph graph;
};

/// The paper's four evaluation benchmarks with Table I/II shapes.
std::vector<Benchmark> paper_benchmarks();

}  // namespace pase::models
