// RNNLM graph: embedding -> LSTM stack -> vocabulary projection -> softmax.
// Following paper §IV-A, the whole LSTM stack (including the recurrent
// steps) is a single node with the 5-D iteration space (l, b, s, d, e), so
// the graph is a simple path graph and configurations that split l or s
// capture the intra-layer pipeline parallelism of the RNN.
#include "models/models.h"
#include "ops/ops.h"

namespace pase::models {

Graph rnnlm(i64 batch, i64 seq_len, i64 embed, i64 hidden, i64 vocab,
            i64 layers) {
  Graph g;
  const NodeId emb =
      g.add_node(ops::embedding("Embedding", batch, seq_len, embed, vocab));
  const NodeId rnn =
      g.add_node(ops::lstm("LSTM", layers, batch, seq_len, embed, hidden));
  const NodeId proj =
      g.add_node(ops::projection("FC", batch, seq_len, vocab, hidden));
  const NodeId sm =
      g.add_node(ops::softmax_seq("Softmax", batch, seq_len, vocab));

  // Embedding output [b, s, d] feeds the LSTM input dim.
  g.add_edge_named(emb, rnn, {"b", "s", "d"}, {"b", "s", "d"});
  // Top-layer LSTM output [b, s, e] feeds the projection's contracted dim.
  g.add_edge_named(rnn, proj, {"b", "s", "e"}, {"b", "s", "d"});
  // Logits [b, s, v] feed the softmax.
  g.add_edge_named(proj, sm, {"b", "s", "v"}, {"b", "s", "v"});

  g.validate();
  return g;
}

}  // namespace pase::models
