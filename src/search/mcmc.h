// FlexFlow-style Markov-Chain-Monte-Carlo strategy search (paper §IV):
// random-walk over the same configuration space the DP explores, Metropolis
// acceptance, started from an expert-designed candidate as [7, §6.2]
// suggests. The paper's stop criteria are implemented: the search ends when
// it has not improved the best discovered strategy for half the search so
// far, or after max_iterations (250,000 in the paper).
//
// FlexFlow evaluates each candidate with an execution simulator rather than
// an O(degree) incremental delta; `full_evaluation` (default on) mirrors
// that cost profile, which is what makes MCMC orders of magnitude slower
// than the DP in Table I. Turning it off gives the incremental-evaluation
// ablation.
#pragma once

#include <functional>

#include "config/config_enum.h"
#include "cost/cost_model.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

struct McmcOptions {
  u64 max_iterations = 250000;
  u64 seed = 1;
  /// Metropolis temperature as a fraction of the initial strategy cost.
  double temperature_fraction = 0.02;
  /// Stop when no improvement for half the iterations so far (after a
  /// minimum warm-up), matching [7, §6.2].
  bool stop_half_no_improvement = true;
  u64 min_iterations = 10000;
  /// Re-evaluate the full cost function each step (FlexFlow-like simulator
  /// cost profile) instead of applying an incremental delta.
  bool full_evaluation = true;

  /// Optional custom objective evaluated per candidate (e.g. the
  /// discrete-event simulator's step time — FlexFlow's actual architecture
  /// is exactly MCMC over an execution simulator). When set, it overrides
  /// the analytical cost function and forces full evaluation. Must be
  /// thread-safe when num_chains > 1 runs on num_threads > 1.
  std::function<double(const Strategy&)> objective;

  /// Independent restarts: chain c runs with RNG seed `seed + c`, all from
  /// the same initial strategy. The best chain wins; ties break toward the
  /// lower chain index. Because each chain's random walk depends only on
  /// its own seed, the outcome is bit-identical at any thread count.
  u64 num_chains = 1;
  /// Worker threads for the chain fan-out: 1 = sequential (no pool),
  /// 0 = hardware concurrency, N = exactly N.
  i64 num_threads = 1;

  /// Memoize t_l/t_x across structurally identical layers/edges for the
  /// analytical objective (never changes results).
  bool use_cost_cache = true;
};

struct McmcResult {
  double best_cost = 0.0;
  Strategy best_strategy;
  u64 iterations = 0;  ///< summed over all chains
  u64 accepted = 0;    ///< summed over all chains
  double elapsed_seconds = 0.0;
  u64 winning_chain = 0;  ///< index of the chain that found best_strategy
};

/// Runs the MCMC search starting from `initial` (must be valid under
/// `config_options`). Deterministic for a fixed seed: results are
/// bit-identical at any num_threads setting (chains are independent and
/// reduced in chain order).
McmcResult mcmc_search(const Graph& graph,
                       const ConfigOptions& config_options,
                       const CostParams& cost_params, const Strategy& initial,
                       const McmcOptions& options);

}  // namespace pase
