#include "search/brute_force.h"

#include <limits>

namespace pase {

std::optional<BruteForceResult> brute_force_search(
    const Graph& graph, const ConfigOptions& config_options,
    const CostParams& cost_params, u64 max_strategies) {
  const ConfigCache configs(graph, config_options);
  const CostModel cost(graph, cost_params);
  const i64 n = graph.num_nodes();

  double total = 1.0;
  for (NodeId v = 0; v < n; ++v)
    total *= static_cast<double>(configs.at(v).size());
  if (total > static_cast<double>(max_strategies)) return std::nullopt;

  Strategy current(static_cast<size_t>(n));
  std::vector<u32> odo(static_cast<size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v)
    current[static_cast<size_t>(v)] = configs.at(v)[0];

  BruteForceResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  for (;;) {
    const double c = cost.total_cost(current);
    ++result.strategies_evaluated;
    if (c < result.best_cost) {
      result.best_cost = c;
      result.best_strategy = current;
    }
    // Advance the odometer.
    size_t k = 0;
    for (; k < odo.size(); ++k) {
      const auto& list = configs.at(static_cast<NodeId>(k));
      if (++odo[k] < list.size()) {
        current[k] = list[odo[k]];
        break;
      }
      odo[k] = 0;
      current[k] = list[0];
    }
    if (k == odo.size()) break;
  }
  return result;
}

}  // namespace pase
