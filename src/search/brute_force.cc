#include "search/brute_force.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "cost/cost_cache.h"
#include "util/thread_pool.h"

namespace pase {

namespace {

/// Decodes strategy linear index `idx` (node 0 = fastest-varying digit)
/// into per-node config indices, filling `odo` and `out`.
void decode_strategy(const ConfigCache& configs, u64 idx,
                     std::vector<u32>& odo, Strategy& out) {
  for (size_t v = 0; v < odo.size(); ++v) {
    const auto& list = configs.at(static_cast<NodeId>(v));
    odo[v] = static_cast<u32>(idx % list.size());
    out[v] = list[odo[v]];
    idx /= list.size();
  }
}

/// Sweeps linear indices [i0, i1), returning the best (cost, index) with
/// the sequential tie-break: the first strictly better strategy wins, i.e.
/// the lowest index among equal-cost optima.
std::pair<double, u64> sweep_range(const ConfigCache& configs,
                                   const CostModel& cost, u64 i0, u64 i1) {
  const size_t n = static_cast<size_t>(configs.num_nodes());
  std::vector<u32> odo(n);
  Strategy current(n);
  decode_strategy(configs, i0, odo, current);

  double best_cost = std::numeric_limits<double>::infinity();
  u64 best_idx = i0;
  for (u64 idx = i0; idx < i1; ++idx) {
    const double c = cost.total_cost(current);
    if (c < best_cost) {
      best_cost = c;
      best_idx = idx;
    }
    // Advance the odometer.
    for (size_t k = 0; k < n; ++k) {
      const auto& list = configs.at(static_cast<NodeId>(k));
      if (++odo[k] < list.size()) {
        current[k] = list[odo[k]];
        break;
      }
      odo[k] = 0;
      current[k] = list[0];
    }
  }
  return {best_cost, best_idx};
}

}  // namespace

std::optional<BruteForceResult> brute_force_search(
    const Graph& graph, const ConfigOptions& config_options,
    const CostParams& cost_params, u64 max_strategies, i64 num_threads,
    bool use_cost_cache) {
  const ConfigCache configs(graph, config_options);

  std::optional<CostCache> cache;
  if (use_cost_cache) cache.emplace(graph);
  CostModel cost(graph, cost_params);
  if (cache) cost.attach_cache(&*cache);

  const i64 n = graph.num_nodes();
  double total_d = 1.0;
  for (NodeId v = 0; v < n; ++v) {
    if (configs.at(v).empty()) return std::nullopt;
    total_d *= static_cast<double>(configs.at(v).size());
  }
  if (total_d > static_cast<double>(max_strategies)) return std::nullopt;
  const u64 total = static_cast<u64>(total_d);

  const i64 threads = ThreadPool::resolve(num_threads);
  std::pair<double, u64> best;
  if (threads > 1 && total >= 1024) {
    ThreadPool pool(threads);
    const i64 grain = std::max<i64>(
        256, ceil_div(static_cast<i64>(total), threads * 8));
    const i64 nchunks = ceil_div(static_cast<i64>(total), grain);
    // Per-chunk results land in chunk-indexed slots; the reduction below
    // walks them in index order, so the chosen strategy is the one the
    // sequential sweep would pick, at any thread count.
    std::vector<std::pair<double, u64>> partial(
        static_cast<size_t>(nchunks));
    pool.parallel_for(0, static_cast<i64>(total), grain, [&](i64 b0, i64 b1) {
      partial[static_cast<size_t>(b0 / grain)] = sweep_range(
          configs, cost, static_cast<u64>(b0), static_cast<u64>(b1));
    });
    best = {std::numeric_limits<double>::infinity(), 0};
    for (const auto& p : partial)
      if (p.first < best.first) best = p;  // ascending index: < keeps lowest
  } else {
    best = sweep_range(configs, cost, 0, total);
  }

  BruteForceResult result;
  result.best_cost = best.first;
  result.strategies_evaluated = total;
  result.best_strategy.resize(static_cast<size_t>(n));
  std::vector<u32> odo(static_cast<size_t>(n));
  decode_strategy(configs, best.second, odo, result.best_strategy);
  return result;
}

}  // namespace pase
