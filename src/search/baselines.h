// Baseline strategy generators the paper compares against (§IV):
//  * data parallelism — split every layer's batch dim across all devices;
//  * expert-designed strategies — OWT for CNNs (Krizhevsky), the GNMT-style
//    data+pipeline hybrid for RNNs (Wu et al.), and the Mesh-TensorFlow
//    batch/model-dim hybrid for Transformer (Shazeer et al.).
#pragma once

#include "config/config_enum.h"
#include "graph/graph.h"

namespace pase {

/// Splits `node`'s dims by the per-dim factors in `by` (dim-name -> factor);
/// factors are clamped to powers of two, the dim extent, and the remaining
/// device budget `p`, in declaration order of `by`. Unlisted dims get 1.
Config make_config(const Node& node,
                   const std::vector<std::pair<std::string, i64>>& by, i64 p);

/// Pure data parallelism: every node's batch dim ("b") split p ways (clamped
/// to its extent); nodes without a batch dim stay serial.
Strategy data_parallel_strategy(const Graph& graph, i64 p);

/// "One weird trick" (OWT): data parallelism for convolutional/pooling
/// layers, parameter parallelism (out-channel split) for fully-connected and
/// softmax layers. Defined for CNN graphs.
Strategy owt_strategy(const Graph& graph, i64 p);

/// GNMT-style data+pipeline hybrid for RNN LMs: the LSTM stack splits its
/// layer dim fully (pipeline across layers) and the batch dim across the
/// remaining devices; embedding/projection/softmax run data-parallel.
Strategy rnn_expert_strategy(const Graph& graph, i64 p);

/// Mesh-TensorFlow hybrid for Transformer: batch dim m-way and model dims
/// (vocab, ffn hidden, attention heads) n-way with m*n == p.
/// n defaults to 4 for p >= 16, else 2.
Strategy transformer_expert_strategy(const Graph& graph, i64 p, i64 n = 0);

/// Dispatches to the relevant expert strategy by inspecting the graph's
/// operator mix (LSTM -> RNN expert, attention -> Transformer expert,
/// conv -> OWT, otherwise data parallelism).
Strategy expert_strategy(const Graph& graph, i64 p);

}  // namespace pase
