// Exhaustive strategy search (paper §III-A's naive method, without the DP).
// Exponential in |V| — only usable on small graphs, where it provides the
// ground truth that the DP solver is verified against (Theorem 1 tests).
//
// Parallel sweep: the strategy space is a cross product of per-node
// configuration lists, so each strategy has a mixed-radix linear index.
// With num_threads != 1 the index range is chunked and swept on a
// work-stealing pool; chunks are reduced in index order and ties broken by
// the lower strategy index, which is exactly the sequential loop's
// first-strict-improvement rule — the result is bit-identical at any
// thread count. Safe to call concurrently from multiple threads.
#pragma once

#include <optional>

#include "config/config_enum.h"
#include "cost/cost_model.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

struct BruteForceResult {
  double best_cost = 0.0;
  Strategy best_strategy;
  u64 strategies_evaluated = 0;
};

/// Enumerates every valid strategy and returns the minimum-cost one.
/// Returns nullopt if the total strategy count exceeds `max_strategies`.
/// `num_threads`: 1 = sequential, 0 = hardware concurrency, N = exactly N.
/// `use_cost_cache` memoizes t_l/t_x across structurally identical
/// layers/edges (never changes results).
std::optional<BruteForceResult> brute_force_search(
    const Graph& graph, const ConfigOptions& config_options,
    const CostParams& cost_params, u64 max_strategies = u64{1} << 26,
    i64 num_threads = 1, bool use_cost_cache = true);

}  // namespace pase
