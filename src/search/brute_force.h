// Exhaustive strategy search (paper §III-A's naive method, without the DP).
// Exponential in |V| — only usable on small graphs, where it provides the
// ground truth that the DP solver is verified against (Theorem 1 tests).
#pragma once

#include <optional>

#include "config/config_enum.h"
#include "cost/cost_model.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

struct BruteForceResult {
  double best_cost = 0.0;
  Strategy best_strategy;
  u64 strategies_evaluated = 0;
};

/// Enumerates every valid strategy and returns the minimum-cost one.
/// Returns nullopt if the total strategy count exceeds `max_strategies`.
std::optional<BruteForceResult> brute_force_search(
    const Graph& graph, const ConfigOptions& config_options,
    const CostParams& cost_params, u64 max_strategies = u64{1} << 26);

}  // namespace pase
