#include "search/baselines.h"

#include <algorithm>

#include "util/check.h"

namespace pase {

Config make_config(const Node& node,
                   const std::vector<std::pair<std::string, i64>>& by,
                   i64 p) {
  Config c = Config::ones(node.space.rank());
  i64 budget = p;
  for (const auto& [name, factor] : by) {
    const i64 d = node.space.find(name);
    PASE_CHECK_MSG(d >= 0, "unknown dim in make_config");
    if (!node.space.dim(d).splittable) continue;
    i64 f = std::min({factor, node.space.dim(d).size, budget});
    f = floor_pow2(std::max<i64>(f, 1));
    c.set(d, static_cast<u16>(f));
    budget /= f;
  }
  return c;
}

namespace {

/// Out-channel dim of an FC-like node: "n" for plain FC, "v" (vocabulary)
/// for sequence projections.
const char* out_channel_dim(const Node& node) {
  return node.space.find("n") >= 0 ? "n" : "v";
}

bool has_kind(const Graph& graph, OpKind kind) {
  for (const Node& n : graph.nodes())
    if (n.kind == kind) return true;
  return false;
}

}  // namespace

Strategy data_parallel_strategy(const Graph& graph, i64 p) {
  Strategy phi;
  phi.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const Node& node : graph.nodes())
    phi.push_back(node.space.find("b") >= 0
                      ? make_config(node, {{"b", p}}, p)
                      : Config::ones(node.space.rank()));
  return phi;
}

Strategy owt_strategy(const Graph& graph, i64 p) {
  Strategy phi;
  phi.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const Node& node : graph.nodes()) {
    switch (node.kind) {
      case OpKind::kFullyConnected:
        // Parameter parallelism: out-channel split only (paper §III-C: OWT
        // "only the out-channel dimension is parallelized").
        phi.push_back(make_config(node, {{out_channel_dim(node), p}}, p));
        break;
      case OpKind::kSoftmax:
        phi.push_back(make_config(node, {{out_channel_dim(node), p}}, p));
        break;
      default:
        phi.push_back(node.space.find("b") >= 0
                          ? make_config(node, {{"b", p}}, p)
                          : Config::ones(node.space.rank()));
    }
  }
  return phi;
}

Strategy rnn_expert_strategy(const Graph& graph, i64 p) {
  Strategy phi;
  phi.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const Node& node : graph.nodes()) {
    if (node.kind == OpKind::kLSTM) {
      const i64 layers = node.space.dim(node.space.find("l")).size;
      phi.push_back(make_config(node, {{"l", layers}, {"b", p}}, p));
    } else if (node.space.find("b") >= 0) {
      phi.push_back(make_config(node, {{"b", p}}, p));
    } else {
      phi.push_back(Config::ones(node.space.rank()));
    }
  }
  return phi;
}

Strategy transformer_expert_strategy(const Graph& graph, i64 p, i64 n) {
  if (n <= 0) n = p >= 16 ? 4 : 2;
  n = std::min(n, p);
  const i64 m = std::max<i64>(1, p / n);
  Strategy phi;
  phi.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const Node& node : graph.nodes()) {
    switch (node.kind) {
      case OpKind::kEmbedding:
        phi.push_back(make_config(node, {{"b", m}, {"v", n}}, p));
        break;
      case OpKind::kAttention:
        phi.push_back(make_config(node, {{"b", m}, {"h", n}}, p));
        break;
      case OpKind::kFeedForward:
        phi.push_back(make_config(node, {{"b", m}, {"e", n}}, p));
        break;
      case OpKind::kSoftmax:
        phi.push_back(make_config(node, {{"b", m}, {"v", n}}, p));
        break;
      case OpKind::kFullyConnected:
        // Final projection: split batch and the out-channel/vocab dim.
        phi.push_back(
            make_config(node, {{"b", m}, {out_channel_dim(node), n}}, p));
        break;
      default:
        phi.push_back(node.space.find("b") >= 0
                          ? make_config(node, {{"b", m}}, p)
                          : Config::ones(node.space.rank()));
    }
  }
  return phi;
}

Strategy expert_strategy(const Graph& graph, i64 p) {
  if (has_kind(graph, OpKind::kLSTM)) return rnn_expert_strategy(graph, p);
  if (has_kind(graph, OpKind::kAttention))
    return transformer_expert_strategy(graph, p);
  if (has_kind(graph, OpKind::kConv2D)) return owt_strategy(graph, p);
  return data_parallel_strategy(graph, p);
}

}  // namespace pase
