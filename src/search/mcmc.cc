#include "search/mcmc.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace pase {

McmcResult mcmc_search(const Graph& graph,
                       const ConfigOptions& config_options,
                       const CostParams& cost_params, const Strategy& initial,
                       const McmcOptions& options) {
  WallTimer timer;
  const ConfigCache configs(graph, config_options);
  const CostModel cost(graph, cost_params);
  Rng rng(options.seed);

  const auto evaluate = [&](const Strategy& phi) {
    return options.objective ? options.objective(phi)
                             : cost.total_cost(phi);
  };

  Strategy current = initial;
  PASE_CHECK(static_cast<i64>(current.size()) == graph.num_nodes());
  double current_cost = evaluate(current);

  McmcResult result;
  result.best_cost = current_cost;
  result.best_strategy = current;

  const double temperature =
      std::max(options.temperature_fraction * current_cost, 1e-30);

  u64 last_improvement = 0;
  u64 iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    if (options.stop_half_no_improvement && iter > options.min_iterations &&
        (iter - last_improvement) * 2 > iter)
      break;

    // Propose: random node, random configuration.
    const NodeId v =
        static_cast<NodeId>(rng.uniform(static_cast<u64>(graph.num_nodes())));
    const auto& list = configs.at(v);
    const Config proposal = list[rng.uniform(list.size())];
    if (proposal == current[static_cast<size_t>(v)]) continue;

    double delta;
    if (options.full_evaluation || options.objective) {
      const Config saved = current[static_cast<size_t>(v)];
      current[static_cast<size_t>(v)] = proposal;
      delta = evaluate(current) - current_cost;
      current[static_cast<size_t>(v)] = saved;
    } else {
      delta = cost.delta_cost(current, v, proposal);
    }

    const bool accept =
        delta < 0.0 || rng.uniform_double() < std::exp(-delta / temperature);
    if (!accept) continue;

    current[static_cast<size_t>(v)] = proposal;
    current_cost += delta;
    ++result.accepted;
    if (current_cost < result.best_cost) {
      result.best_cost = current_cost;
      result.best_strategy = current;
      last_improvement = iter;
    }
  }

  result.iterations = iter;
  // Guard against accumulated floating-point drift in delta mode.
  result.best_cost = evaluate(result.best_strategy);
  result.elapsed_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace pase
