#include "search/mcmc.h"

#include <cmath>
#include <optional>

#include "cost/cost_cache.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace pase {

namespace {

/// One Metropolis chain (the seed implementation, unchanged): random node,
/// random configuration, accept on improvement or with the Boltzmann
/// probability. Reads `configs`/`cost` concurrently with other chains
/// (both are const and thread-safe); all mutable state is chain-local.
McmcResult run_chain(const Graph& graph, const ConfigCache& configs,
                     const CostModel& cost, const Strategy& initial,
                     const McmcOptions& options, u64 seed) {
  Rng rng(seed);

  const auto evaluate = [&](const Strategy& phi) {
    return options.objective ? options.objective(phi)
                             : cost.total_cost(phi);
  };

  Strategy current = initial;
  PASE_CHECK(static_cast<i64>(current.size()) == graph.num_nodes());
  double current_cost = evaluate(current);

  McmcResult result;
  result.best_cost = current_cost;
  result.best_strategy = current;

  const double temperature =
      std::max(options.temperature_fraction * current_cost, 1e-30);

  u64 last_improvement = 0;
  u64 iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    if (options.stop_half_no_improvement && iter > options.min_iterations &&
        (iter - last_improvement) * 2 > iter)
      break;

    // Propose: random node, random configuration.
    const NodeId v =
        static_cast<NodeId>(rng.uniform(static_cast<u64>(graph.num_nodes())));
    const auto& list = configs.at(v);
    const Config proposal = list[rng.uniform(list.size())];
    if (proposal == current[static_cast<size_t>(v)]) continue;

    double delta;
    if (options.full_evaluation || options.objective) {
      const Config saved = current[static_cast<size_t>(v)];
      current[static_cast<size_t>(v)] = proposal;
      delta = evaluate(current) - current_cost;
      current[static_cast<size_t>(v)] = saved;
    } else {
      delta = cost.delta_cost(current, v, proposal);
    }

    const bool accept =
        delta < 0.0 || rng.uniform_double() < std::exp(-delta / temperature);
    if (!accept) continue;

    current[static_cast<size_t>(v)] = proposal;
    current_cost += delta;
    ++result.accepted;
    if (current_cost < result.best_cost) {
      result.best_cost = current_cost;
      result.best_strategy = current;
      last_improvement = iter;
    }
  }

  result.iterations = iter;
  // Guard against accumulated floating-point drift in delta mode.
  result.best_cost = evaluate(result.best_strategy);
  return result;
}

}  // namespace

McmcResult mcmc_search(const Graph& graph,
                       const ConfigOptions& config_options,
                       const CostParams& cost_params, const Strategy& initial,
                       const McmcOptions& options) {
  WallTimer timer;
  const ConfigCache configs(graph, config_options);

  std::optional<CostCache> cache;
  if (options.use_cost_cache) cache.emplace(graph);
  CostModel cost(graph, cost_params);
  if (cache) cost.attach_cache(&*cache);

  const u64 chains = std::max<u64>(1, options.num_chains);
  std::vector<McmcResult> per_chain(chains);

  const i64 threads = ThreadPool::resolve(options.num_threads);
  if (chains > 1 && threads > 1) {
    ThreadPool pool(threads);
    // One task per chain; chain c is fully determined by seed + c, so the
    // assignment of chains to workers cannot influence any result.
    pool.parallel_for(0, static_cast<i64>(chains), 1, [&](i64 c0, i64 c1) {
      for (i64 c = c0; c < c1; ++c)
        per_chain[static_cast<size_t>(c)] =
            run_chain(graph, configs, cost, initial, options,
                      options.seed + static_cast<u64>(c));
    });
  } else {
    for (u64 c = 0; c < chains; ++c)
      per_chain[static_cast<size_t>(c)] = run_chain(
          graph, configs, cost, initial, options, options.seed + c);
  }

  // Reduce in chain order: strict less-than keeps the lowest-index winner.
  McmcResult result = per_chain[0];
  result.winning_chain = 0;
  for (u64 c = 1; c < chains; ++c) {
    if (per_chain[c].best_cost < result.best_cost) {
      result.best_cost = per_chain[c].best_cost;
      result.best_strategy = per_chain[c].best_strategy;
      result.winning_chain = c;
    }
    result.iterations += per_chain[c].iterations;
    result.accepted += per_chain[c].accepted;
  }
  result.elapsed_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace pase
