// Vertex orderings. The DP of recurrence (4) works with any ordering; its
// complexity is exponential in the largest dependent-set size M, which is a
// function of the ordering. GenerateSeq (paper Fig. 3) greedily keeps
// dependent sets small; breadth-first ordering is the paper's baseline that
// runs out of memory on InceptionV3/Transformer (Table I).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace pase {

enum class OrderingKind {
  kGenerateSeq,   ///< paper Fig. 3
  kBreadthFirst,  ///< paper §III-A baseline
};

struct Ordering {
  /// seq[i] = node id of the (i+1)-th vertex v^(i+1) (0-based here).
  std::vector<NodeId> seq;
  /// pos[v] = position of node v in seq.
  std::vector<i64> pos;

  /// Dependent-set sizes tracked by GenerateSeq (v.d in Fig. 3); only
  /// populated by generate_seq(), used to verify Theorem 2 and for the
  /// dependent-set ablation.
  std::vector<std::vector<NodeId>> dep_sets;
};

/// Paper Fig. 3: greedy minimum-|v.d| sequencing, O(|V|^2).
/// Ties are broken by smallest node id for determinism.
Ordering generate_seq(const Graph& graph);

/// Breadth-first traversal from node 0, direction-agnostic.
Ordering breadth_first(const Graph& graph);

Ordering make_ordering(const Graph& graph, OrderingKind kind);

}  // namespace pase
