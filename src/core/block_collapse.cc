#include "core/block_collapse.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "cost/cost_cache.h"
#include "util/bitset.h"
#include "util/check.h"

namespace pase {

namespace {

/// Block instances kept in the representative window graph. Needs to be at
/// least 2 (so an adjacent-block edge exists inside the window) plus enough
/// slack for the greedy to reach its periodic steady state; certification
/// catches any window that was too small, so this is a latency knob, not a
/// correctness one.
constexpr i64 kWindowBlocks = 4;

/// Longest block period considered. Real repeated blocks are a handful of
/// layers (a Transformer block is 6 nodes here); the scan is O(n) per
/// candidate period so the cap bounds detection at O(n * kMaxPeriod).
constexpr i64 kMaxPeriod = 64;

/// Incident-edge descriptor of a node, id-relative: two nodes with equal
/// sorted descriptor lists (and equal node classes) are verbatim shifted
/// copies of each other, wiring included.
using EdgeDesc = std::tuple<i64 /*other - v*/, bool /*v is src*/,
                            u32 /*edge class*/>;

std::vector<std::vector<EdgeDesc>> edge_descriptors(const Graph& graph,
                                                    const CostCache& classes) {
  std::vector<std::vector<EdgeDesc>> desc(
      static_cast<size_t>(graph.num_nodes()));
  for (const Edge& e : graph.edges()) {
    const u32 cls = classes.edge_class(e.id);
    desc[static_cast<size_t>(e.src)].emplace_back(
        static_cast<i64>(e.dst) - e.src, true, cls);
    desc[static_cast<size_t>(e.dst)].emplace_back(
        static_cast<i64>(e.src) - e.dst, false, cls);
  }
  for (auto& d : desc) std::sort(d.begin(), d.end());
  return desc;
}

}  // namespace

BlockPlan detect_blocks(const Graph& graph, const CostCache& classes) {
  const i64 n = graph.num_nodes();
  BlockPlan plan;
  plan.node_class.resize(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    plan.node_class[static_cast<size_t>(v)] = classes.node_class(v);
  plan.edge_class.resize(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e)
    plan.edge_class[static_cast<size_t>(e)] = classes.edge_class(e);

  const auto desc = edge_descriptors(graph, classes);
  // shifted(v, pi): node v+pi is a verbatim pi-shifted copy of v.
  auto shifted = [&](NodeId v, i64 pi) {
    const NodeId w = v + static_cast<NodeId>(pi);
    return plan.node_class[static_cast<size_t>(v)] ==
               plan.node_class[static_cast<size_t>(w)] &&
           desc[static_cast<size_t>(v)] == desc[static_cast<size_t>(w)];
  };

  // Best candidate: most covered nodes, then smallest period (a period-2pi
  // match is always implied by a period-pi one), then smallest start.
  const i64 max_period = std::min(kMaxPeriod, n / kMinCollapseBlocks);
  for (i64 pi = 1; pi <= max_period; ++pi) {
    for (i64 a = 0; a + pi < n;) {
      if (!shifted(static_cast<NodeId>(a), pi)) {
        ++a;
        continue;
      }
      i64 b = a;
      while (b + pi < n && shifted(static_cast<NodeId>(b), pi)) ++b;
      // Nodes [a, b + pi) are periodic with period pi: (b - a) / pi + 1
      // complete blocks starting at a.
      const i64 count = (b - a) / pi + 1;
      const i64 covered = count * pi;
      if (count >= kMinCollapseBlocks &&
          covered > plan.period * plan.count) {
        plan.period = pi;
        plan.first = static_cast<NodeId>(a);
        plan.count = count;
      }
      a = b + 1;
    }
  }
  if (!plan.fired()) {
    plan.period = 0;
    plan.first = 0;
    plan.count = 0;
  }
  return plan;
}

Ordering certify_generate_seq(const Graph& graph,
                              const std::vector<NodeId>& seq) {
  const i64 n = graph.num_nodes();
  Ordering out;
  if (static_cast<i64>(seq.size()) != n) return out;

  // The exact state generate_seq maintains (Fig. 3), with |v.d| kept
  // incrementally: sizes only change for vertices in the merged set, so a
  // (size, id)-ordered set gives the greedy's pick — the first strictly
  // smaller candidate of an id-order scan IS the lexicographic minimum —
  // in O(log n) instead of an O(n^2/64) popcount sweep.
  std::vector<Bitset> d(static_cast<size_t>(n));
  std::vector<i64> size(static_cast<size_t>(n));
  std::set<std::pair<i64, NodeId>> by_size;
  for (NodeId v = 0; v < n; ++v) {
    d[static_cast<size_t>(v)] = graph.neighbor_set(v);
    const auto& dv = d[static_cast<size_t>(v)];
    size[static_cast<size_t>(v)] = dv.count() - (dv.test(v) ? 1 : 0);
    by_size.emplace(size[static_cast<size_t>(v)], v);
  }

  out.seq.reserve(static_cast<size_t>(n));
  out.pos.assign(static_cast<size_t>(n), -1);
  out.dep_sets.resize(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const NodeId best = seq[static_cast<size_t>(i)];
    if (best < 0 || best >= n ||
        out.pos[static_cast<size_t>(best)] != -1) {
      return {};  // not a permutation
    }
    // The prescribed vertex must be what the greedy would pick.
    const auto it = by_size.begin();
    if (it->first != size[static_cast<size_t>(best)] || it->second != best)
      return {};
    by_size.erase(it);

    out.seq.push_back(best);
    out.pos[static_cast<size_t>(best)] = i;
    auto& db = d[static_cast<size_t>(best)];
    db.reset(best);
    db.for_each([&](i64 v) {
      out.dep_sets[static_cast<size_t>(i)].push_back(
          static_cast<NodeId>(v));
    });

    const Bitset merged = db;
    merged.for_each([&](i64 v) {
      auto& dv = d[static_cast<size_t>(v)];
      dv |= merged;
      dv.reset(best);
      const i64 ns = dv.count() - (dv.test(v) ? 1 : 0);
      if (ns != size[static_cast<size_t>(v)]) {
        by_size.erase({size[static_cast<size_t>(v)],
                       static_cast<NodeId>(v)});
        size[static_cast<size_t>(v)] = ns;
        by_size.emplace(ns, static_cast<NodeId>(v));
      }
    });
  }
  return out;
}

Ordering collapsed_generate_seq(const Graph& graph, const BlockPlan& plan,
                                CollapseOrderingStats* stats) {
  const i64 n = graph.num_nodes();
  if (stats) *stats = {};
  // Without enough instances beyond the window there is nothing to stitch.
  if (!plan.fired() || plan.count < kWindowBlocks + 2)
    return generate_seq(graph);

  const i64 pi = plan.period;
  const i64 m = plan.count;
  const NodeId f = plan.first;
  const i64 cut = f + kWindowBlocks * pi;   // low region: ids < cut
  const i64 high0 = f + (m - 1) * pi;       // last run-block start
  const i64 run_end = f + m * pi;
  const i64 shift = (m - kWindowBlocks) * pi;

  // Representative window graph: prefix + kWindowBlocks block instances +
  // everything after the run, ids >= high0 remapped down by `shift` (the
  // last run block's image coincides with window block kWindowBlocks-1, so
  // its interior edges are dropped — the window copy already has them).
  auto mu = [&](NodeId x) -> NodeId {
    if (x < cut) return x;
    if (x >= high0) return static_cast<NodeId>(x - shift);
    return kInvalidNode;
  };
  Graph window;
  for (NodeId v = 0; v < n; ++v)
    if (v < cut || v >= run_end) window.add_node(graph.node(v));
  for (const Edge& e : graph.edges()) {
    const bool src_last = e.src >= high0 && e.src < run_end;
    const bool dst_last = e.dst >= high0 && e.dst < run_end;
    if (src_last && dst_last) continue;
    const NodeId s = mu(e.src), t = mu(e.dst);
    if (s == kInvalidNode || t == kInvalidNode) continue;
    window.add_edge(s, t, e.shape, e.src_dims, e.dst_dims);
  }
  if (stats) {
    stats->extrapolated = true;
    stats->window_nodes = window.num_nodes();
  }

  const Ordering word = generate_seq(window);
  const i64 wn = window.num_nodes();

  // Locate the last window block (ids [cut - pi, cut)) occupying pi
  // consecutive positions that mirror the previous block shifted by pi —
  // the periodic steady state to replicate.
  i64 t1 = -1;
  for (i64 t = pi; t + pi <= wn && t1 < 0; ++t) {
    bool ok = true;
    for (i64 j = 0; ok && j < pi; ++j) {
      const NodeId v = word.seq[static_cast<size_t>(t + j)];
      ok = v >= cut - pi && v < cut &&
           word.seq[static_cast<size_t>(t - pi + j)] + pi == v;
    }
    if (ok) t1 = t;
  }

  std::vector<NodeId> seq;
  if (t1 >= 0) {
    // Stitch: keep the window sequence up to and including the steady-state
    // block, replay that block shifted by k*pi for every dropped instance,
    // then the rest of the window sequence — lifting post-run ids back up.
    seq.reserve(static_cast<size_t>(n));
    auto lift = [&](NodeId x) {
      return x < cut ? x : static_cast<NodeId>(x + shift);
    };
    for (i64 t = 0; t < t1 + pi; ++t)
      seq.push_back(lift(word.seq[static_cast<size_t>(t)]));
    for (i64 k = 1; k <= m - kWindowBlocks; ++k)
      for (i64 j = 0; j < pi; ++j)
        seq.push_back(static_cast<NodeId>(
            word.seq[static_cast<size_t>(t1 + j)] + k * pi));
    for (i64 t = t1 + pi; t < wn; ++t)
      seq.push_back(lift(word.seq[static_cast<size_t>(t)]));
    PASE_CHECK(static_cast<i64>(seq.size()) == n);

    Ordering certified = certify_generate_seq(graph, seq);
    if (!certified.seq.empty()) {
      if (stats) stats->certified = true;
      return certified;
    }
  }
  // No periodic steady state found, or the stitch failed certification:
  // pay the full greedy. Correctness never depends on the fast path.
  return generate_seq(graph);
}

}  // namespace pase
