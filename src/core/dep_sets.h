// Connected sets X(i), dependent sets D(i) and connected subsets S(i) of
// paper §III-B, computed directly from their definitions by DFS over the
// induced prefix subgraphs (matching Fig. 4 lines 6-7). These are used by
// the DP solver for any ordering, and serve as the reference implementation
// against which GenerateSeq's incrementally-maintained v.d sets are verified
// (Theorem 2).
//
// Thread safety: these are pure functions of (graph, order, i) — no shared
// mutable state, no caching. Concurrent calls on the same graph/ordering
// are safe. `dependent` is sorted by node id; the DP solver relies on that
// order when laying out its dense mixed-radix substrategy tables (see
// dp_solver.cc), so it is part of this interface's contract.
#pragma once

#include <vector>

#include "core/ordering.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

/// Per-position vertex sets for position i (0-based) of an ordering.
struct VertexSets {
  /// X(i): vertices of V_<=i connected to v^(i) through V_<=i (incl. v^(i)).
  std::vector<NodeId> connected;
  /// D(i) = N(X(i)) n V_>i, sorted by node id.
  std::vector<NodeId> dependent;
  /// Anchors of S(i): for each connected component of X(i) - {v^(i)}, the
  /// position j of its maximum-position vertex (Fig. 4 line 14). The
  /// component equals X(j).
  std::vector<i64> subset_anchors;
};

/// Computes X(i), D(i), S(i) for position i of `order`.
VertexSets compute_vertex_sets(const Graph& graph, const Ordering& order,
                               i64 i);

/// All positions at once.
std::vector<VertexSets> compute_all_vertex_sets(const Graph& graph,
                                                const Ordering& order);

/// M = max_i |D(i)| for this ordering — the exponent of the DP complexity.
i64 max_dependent_set_size(const Graph& graph, const Ordering& order);

}  // namespace pase
