#include "core/strategy.h"

#include <sstream>

#include "util/table.h"
#include "util/types.h"

namespace pase {

bool strategy_valid(const Graph& graph, const Strategy& phi,
                    const ConfigOptions& opts) {
  if (static_cast<i64>(phi.size()) != graph.num_nodes()) return false;
  for (const Node& node : graph.nodes()) {
    const Config& c = phi[static_cast<size_t>(node.id)];
    if (c.rank() != node.space.rank()) return false;
    i64 degree = 1;
    for (i64 d = 0; d < c.rank(); ++d) {
      const i64 f = c[d];
      if (f < 1) return false;
      if (f > 1 && !node.space.dim(d).splittable) return false;
      if (opts.powers_of_two_only && !is_pow2(f)) return false;
      if (opts.cap_by_extent && f > node.space.dim(d).size) return false;
      degree *= f;
    }
    if (degree > opts.max_devices) return false;
    if (opts.require_full_use && degree != opts.max_devices) return false;
  }
  return true;
}

std::string strategy_to_string(const Graph& graph, const Strategy& phi) {
  std::ostringstream os;
  for (const Node& node : graph.nodes())
    os << node.name << "  " << node.space.names() << "  "
       << phi[static_cast<size_t>(node.id)].to_string() << '\n';
  return os.str();
}

std::string strategy_table(const std::string& title, const Graph& graph,
                           const Strategy& phi) {
  TextTable table(title);
  table.set_header({"Layers", "Dimensions", "Configuration"});

  // Collapse maximal runs of nodes sharing dims + configuration.
  i64 run_start = 0;
  auto same = [&](i64 a, i64 b) {
    return graph.node(static_cast<NodeId>(a)).space.names() ==
               graph.node(static_cast<NodeId>(b)).space.names() &&
           phi[static_cast<size_t>(a)] == phi[static_cast<size_t>(b)];
  };
  auto flush = [&](i64 end) {  // [run_start, end)
    const Node& first = graph.node(static_cast<NodeId>(run_start));
    std::string label = first.name;
    if (end - run_start > 1)
      label += " .. " + graph.node(static_cast<NodeId>(end - 1)).name;
    table.add_row({label, first.space.names(),
                   phi[static_cast<size_t>(run_start)].to_string()});
  };
  for (i64 v = 1; v < graph.num_nodes(); ++v) {
    if (!same(run_start, v)) {
      flush(v);
      run_start = v;
    }
  }
  if (graph.num_nodes() > 0) flush(graph.num_nodes());
  return table.to_string();
}

}  // namespace pase
