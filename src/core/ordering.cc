#include "core/ordering.h"

#include <queue>

#include "util/bitset.h"
#include "util/check.h"

namespace pase {

Ordering generate_seq(const Graph& graph) {
  const i64 n = graph.num_nodes();
  Ordering out;
  out.seq.reserve(static_cast<size_t>(n));
  out.pos.assign(static_cast<size_t>(n), -1);
  out.dep_sets.resize(static_cast<size_t>(n));

  // v.d <- N(v)  (Fig. 3 line 1)
  std::vector<Bitset> d(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    d[static_cast<size_t>(v)] = graph.neighbor_set(v);

  Bitset unsequenced(n);
  for (NodeId v = 0; v < n; ++v) unsequenced.set(v);

  for (i64 i = 0; i < n; ++i) {
    // Pick the unsequenced node with minimum |v.d| (line 5). While a node
    // is unsequenced its v.d may contain the node itself (the invariant
    // D(j)|i of Theorem 2's proof intersects with V_>i, which still holds
    // v^(j)); the node's own entry disappears from its dependent set the
    // moment it is sequenced, so it is excluded from the cardinality.
    NodeId best = kInvalidNode;
    i64 best_size = 0;
    unsequenced.for_each([&](i64 u) {
      const auto& du = d[static_cast<size_t>(u)];
      const i64 size = du.count() - (du.test(u) ? 1 : 0);
      if (best == kInvalidNode || size < best_size) {
        best = static_cast<NodeId>(u);
        best_size = size;
      }
    });
    PASE_CHECK(best != kInvalidNode);

    out.seq.push_back(best);
    out.pos[static_cast<size_t>(best)] = i;
    unsequenced.reset(best);
    d[static_cast<size_t>(best)].reset(best);  // D(i) = v.d - {v^(i)}

    // Record v^(i).d before propagating (it equals D(i), Theorem 2).
    out.dep_sets[static_cast<size_t>(i)] =
        [&] {
          std::vector<NodeId> ids;
          d[static_cast<size_t>(best)].for_each(
              [&](i64 v) { ids.push_back(static_cast<NodeId>(v)); });
          return ids;
        }();

    // For all v in v^(i).d: v.d <- v.d U v^(i).d - {v^(i)}  (lines 7-9).
    const Bitset merged = d[static_cast<size_t>(best)];
    merged.for_each([&](i64 v) {
      auto& dv = d[static_cast<size_t>(v)];
      dv |= merged;
      dv.reset(best);
    });
  }
  return out;
}

Ordering breadth_first(const Graph& graph) {
  const i64 n = graph.num_nodes();
  Ordering out;
  out.seq.reserve(static_cast<size_t>(n));
  out.pos.assign(static_cast<size_t>(n), -1);

  Bitset seen(n);
  std::queue<NodeId> q;
  auto push = [&](NodeId v) {
    if (!seen.test(v)) {
      seen.set(v);
      q.push(v);
    }
  };
  for (NodeId start = 0; start < n; ++start) {
    // The graph is expected to be connected; the loop keeps the ordering
    // total even if it is not.
    push(start);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      out.pos[static_cast<size_t>(v)] = static_cast<i64>(out.seq.size());
      out.seq.push_back(v);
      for (NodeId w : graph.neighbors(v)) push(w);
    }
  }
  return out;
}

Ordering make_ordering(const Graph& graph, OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kGenerateSeq: return generate_seq(graph);
    case OrderingKind::kBreadthFirst: return breadth_first(graph);
  }
  PASE_CHECK(false);
  return {};
}

}  // namespace pase
