// Strategy helpers: validation against the configuration-space rules and
// Table II-style pretty printing.
#pragma once

#include <string>

#include "config/config_enum.h"
#include "graph/graph.h"

namespace pase {

/// True iff `phi` assigns every node a configuration that is valid under
/// `opts` (rank matches the iteration space, power-of-two/extent/splittable
/// rules respected, degree <= p).
bool strategy_valid(const Graph& graph, const Strategy& phi,
                    const ConfigOptions& opts);

/// One line per node: "name  dims  (c1, ..., cd)".
std::string strategy_to_string(const Graph& graph, const Strategy& phi);

/// Table II-style rendering: Layers | Dimensions | Configuration, with
/// consecutive nodes sharing a configuration & dimension signature collapsed
/// into one row ("Conv 1-4" style).
std::string strategy_table(const std::string& title, const Graph& graph,
                           const Strategy& phi);

}  // namespace pase
