#include "core/dep_sets.h"

#include <algorithm>

#include "util/bitset.h"
#include "util/check.h"

namespace pase {

namespace {

/// DFS from `start` through vertices with position < `limit_pos` (plus the
/// start itself); returns visited set.
Bitset dfs_prefix(const Graph& graph, const Ordering& order, NodeId start,
                  i64 limit_pos) {
  Bitset visited(graph.num_nodes());
  std::vector<NodeId> stack{start};
  visited.set(start);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : graph.neighbors(v)) {
      if (!visited.test(w) && order.pos[static_cast<size_t>(w)] < limit_pos) {
        visited.set(w);
        stack.push_back(w);
      }
    }
  }
  return visited;
}

}  // namespace

VertexSets compute_vertex_sets(const Graph& graph, const Ordering& order,
                               i64 i) {
  const NodeId vi = order.seq[static_cast<size_t>(i)];
  VertexSets out;

  // X(i): reachable from v^(i) through vertices at positions <= i.
  const Bitset x = dfs_prefix(graph, order, vi, i + 1);
  x.for_each([&](i64 v) { out.connected.push_back(static_cast<NodeId>(v)); });

  // D(i) = N(X(i)) n V_>i.
  Bitset dep(graph.num_nodes());
  x.for_each([&](i64 v) {
    for (NodeId w : graph.neighbors(static_cast<NodeId>(v)))
      if (order.pos[static_cast<size_t>(w)] > i) dep.set(w);
  });
  dep.for_each(
      [&](i64 v) { out.dependent.push_back(static_cast<NodeId>(v)); });

  // S(i): components of X(i) - {v^(i)} within the induced prefix subgraph,
  // identified by their max-position anchor.
  Bitset remaining = x;
  remaining.reset(vi);
  while (remaining.any()) {
    NodeId seed = kInvalidNode;
    remaining.for_each([&](i64 v) {
      if (seed == kInvalidNode) seed = static_cast<NodeId>(v);
    });
    // Component of `seed` within positions < i.
    Bitset comp = dfs_prefix(graph, order, seed, i);
    comp &= remaining;  // restrict to X(i) - {v^(i)}
    i64 anchor = -1;
    comp.for_each([&](i64 v) {
      anchor = std::max(anchor, order.pos[static_cast<size_t>(v)]);
    });
    PASE_CHECK(anchor >= 0 && anchor < i);
    out.subset_anchors.push_back(anchor);
    remaining -= comp;
  }
  std::sort(out.subset_anchors.begin(), out.subset_anchors.end());
  return out;
}

std::vector<VertexSets> compute_all_vertex_sets(const Graph& graph,
                                                const Ordering& order) {
  std::vector<VertexSets> out;
  out.reserve(order.seq.size());
  for (i64 i = 0; i < static_cast<i64>(order.seq.size()); ++i)
    out.push_back(compute_vertex_sets(graph, order, i));
  return out;
}

i64 max_dependent_set_size(const Graph& graph, const Ordering& order) {
  i64 m = 0;
  for (i64 i = 0; i < static_cast<i64>(order.seq.size()); ++i) {
    const VertexSets s = compute_vertex_sets(graph, order, i);
    m = std::max(m, static_cast<i64>(s.dependent.size()));
  }
  return m;
}

}  // namespace pase
