// FindBestStrategy (paper Fig. 4): dynamic programming over recurrence (4).
//
// For each vertex v^(i) in the sequence, the solver enumerates every valid
// substrategy phi of the dependent set D(i); for each it finds the
// configuration C of v^(i) minimizing
//
//   H(i, phi U {(v^(i),C)}) + sum_{X(j) in S(i)} R(j, phi''),
//
// where H is the layer cost of v^(i) plus its transfer costs to later
// neighbors, and the R(j, .) values are read from the DP tables of the
// connected-subset anchors. Tables are hash maps keyed by the configuration
// choices of the dependent-set nodes. A table/work guard reports the same
// out-of-memory outcome the paper observes for breadth-first ordering on
// InceptionV3 and Transformer (Table I) without actually exhausting RAM;
// with DpOptions::degraded_fallback, a tripped guard (or an expired
// wall-clock deadline) instead degrades gracefully to a bounded beam search
// over the same vertex ordering and costs, returning a valid but possibly
// suboptimal strategy with status kDegraded.
//
// Parallel execution and determinism contract
// -------------------------------------------
// The per-vertex inner loop of recurrence (4) is embarrassingly parallel:
// every substrategy phi of D(i) is evaluated independently and written to
// its own slot of a dense mixed-radix table (earlier vertices' tables are
// only read). With DpOptions::num_threads != 1 the solver fans these
// evaluations across a work-stealing ThreadPool, decomposing the phi index
// range into fixed chunks by index — never by scheduling — and each phi's
// minimization scans configurations in enumeration order with strict
// less-than, exactly as the sequential loop does. Consequently the returned
// strategy, cost, status and diagnostics are BIT-IDENTICAL at every thread
// count (verified by tests/determinism_test.cc); only elapsed_seconds
// varies. The cost-model memoization cache (DpOptions::use_cost_cache) is
// likewise invisible in the results: cost functions are pure, so cache hits
// return the same bits a recomputation would.
//
// find_best_strategy() itself is a pure function of (graph, options) plus
// wall-clock effects (deadline): concurrent calls from different threads
// are safe, as each call owns all of its mutable state.
#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "config/config_enum.h"
#include "core/ordering.h"
#include "cost/cost_model.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

class MetricsRegistry;
class TraceSession;

/// Cross-solve context for delta re-solves (docs/SCALING.md, DESIGN.md §12).
///
/// Everything the solver computes *before* the DP tables — the vertex
/// ordering, the per-position dependent sets D(i) and anchor sets S(i), and
/// the component roots — is a pure function of the graph's ADJACENCY (which
/// node ids are connected, in which direction) and the ordering kind. It is
/// completely independent of tensor extents, batch size, device counts,
/// bandwidths and cost params. A caller that re-solves the same topology
/// under mutated parameters (the serving daemon after a batch-size change,
/// the robustness evaluator re-solving per degraded machine) can hand the
/// same DpContext to every solve: on an adjacency match the solver skips the
/// ordering and vertex-set phases — the dominant cost at thousand-node scale
/// — and only refills the (cheap) DP tables. On any mismatch the context is
/// ignored, so reuse can never change results; the solver verifies the
/// stored (src, dst) edge list element-for-element rather than trusting a
/// hash. Thread-safe; solves from any number of threads may share one
/// context. The stored snapshot is replaced wholesale after a successful
/// solve of a non-matching graph.
class DpContext {
 public:
  struct Snapshot {
    OrderingKind kind = OrderingKind::kGenerateSeq;
    i64 num_nodes = 0;
    /// Exact (src, dst) per EdgeId — identity, not a hash.
    std::vector<std::pair<NodeId, NodeId>> edges;
    Ordering order;
    std::vector<std::vector<NodeId>> dependent;  ///< D(i) per position
    std::vector<std::vector<i64>> anchors;       ///< S(i) per position
    std::vector<i64> roots;  ///< component root positions (descending)
  };

  /// The stored snapshot when it matches (kind, adjacency of `graph`)
  /// exactly; nullptr otherwise.
  std::shared_ptr<const Snapshot> match(const Graph& graph,
                                        OrderingKind kind) const;
  /// Replaces the stored snapshot.
  void store(std::shared_ptr<const Snapshot> snap);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> snap_;
};

struct DpOptions {
  ConfigOptions config_options;
  CostParams cost_params;
  OrderingKind ordering = OrderingKind::kGenerateSeq;

  /// OOM guard: maximum substrategy-table entries for a single vertex.
  u64 max_table_entries = u64{1} << 23;
  /// Work guard: maximum (substrategies x configurations) combinations
  /// analyzed for a single vertex.
  u64 max_combinations = u64{2} << 30;

  /// Wall-clock budget for the exact DP; 0 = unlimited. Expiry is treated
  /// like a tripped guard (fallback or kOutOfMemory). Checked between
  /// vertices, inside the precompute loops, and (amortized, every few
  /// thousand combinations) inside the table-fill inner loop, so even a
  /// single-large-vertex model honors a tight budget promptly.
  double deadline_seconds = 0.0;
  /// Optional external cancellation token (e.g. a serving watchdog). When
  /// non-null and set, the solve aborts at the next cancellation point and
  /// is treated exactly like a deadline expiry (fallback or kOutOfMemory),
  /// except the beam-search fallback also honors the token and may return
  /// kOutOfMemory if cancelled before producing a strategy. The pointee
  /// must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Graceful degradation: when a guard or the deadline trips, run a
  /// bounded beam search over the same ordering and recurrence costs
  /// instead of returning no strategy (status kDegraded). Off by default so
  /// the paper-reproduction benches keep reporting the Table I OOM outcome;
  /// pase_cli enables it.
  bool degraded_fallback = false;
  /// Partial strategies kept per vertex by the fallback beam search.
  i64 beam_width = 256;

  /// Worker threads for the per-vertex configuration x substrategy fan-out:
  /// 1 = sequential (no pool), 0 = hardware concurrency, N = exactly N.
  /// Results are bit-identical at any setting (see file comment).
  i64 num_threads = 1;

  /// Memoize t_l/t_x across structurally identical layers and edges (see
  /// cost/cost_cache.h). Never changes results; pase_cli --no-cost-cache
  /// disables it for ablation.
  bool use_cost_cache = true;
  /// Optional caller-owned cost cache shared across solves (the serving
  /// daemon keeps one warm per (graph signature, cost params) pair so a hot
  /// re-query skips every t_l/t_x recomputation). When non-null (and
  /// use_cost_cache is true) the solver uses it instead of constructing a
  /// fresh per-solve cache; DpResult hit/miss stats then report this
  /// solve's *delta* only. Contract: the cache must have been built against
  /// a graph structurally identical to `graph` (same nodes/edges in the
  /// same order) under identical CostParams — see cost/cost_cache.h. The
  /// cache is thread-safe; it never changes results (cost functions are
  /// pure). Must outlive the call.
  CostCache* shared_cost_cache = nullptr;

  /// Block collapsing for repeated-structure graphs (core/block_collapse.h,
  /// docs/SCALING.md): detect maximal runs of structurally identical blocks,
  /// run GenerateSeq on a small representative window, stitch + certify the
  /// full ordering, and reuse per-class node-cost vectors and edge-cost
  /// matrices across same-class vertices. Results are ALWAYS bit-identical
  /// to collapse_blocks = false — the stitched ordering is certified against
  /// the greedy's own invariant (falling back to the full GenerateSeq on any
  /// mismatch) and class reuse is verified against each vertex's actual
  /// configuration list. Off by default; pase_cli --collapse-blocks and the
  /// serving daemon enable it.
  bool collapse_blocks = false;

  /// Optional cross-solve context for delta re-solves (see DpContext). When
  /// non-null and its snapshot matches this graph's adjacency + ordering
  /// kind, the ordering/vertex-set/root phases are skipped and only the DP
  /// tables are refilled; on a successful solve of a non-matching graph the
  /// snapshot is replaced. Never changes results. Must outlive the call.
  DpContext* context = nullptr;

  /// Optional observability sinks (src/obs); either or both may be null.
  /// `trace` records phase and per-vertex spans (ordering, dep_sets,
  /// table_fill, back_substitution, worker task spans); `metrics` collects
  /// dp.* counters/histograms/gauges. Attaching them never changes results,
  /// and every structural metric recorded is bit-identical across thread
  /// counts (see src/obs/metrics.h and DESIGN.md §9). Both must outlive the
  /// solve.
  TraceSession* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

enum class DpStatus {
  kOk,
  kOutOfMemory,  ///< a resource guard tripped (table size, work, or
                 ///< deadline) with the fallback disabled; no strategy
  kInfeasible,   ///< a node has no admissible configuration (e.g. every
                 ///< choice violates the per-device memory cap)
  kDegraded,     ///< a guard tripped, but the beam-search fallback produced
                 ///< a valid (not necessarily optimal) strategy
};

struct DpResult {
  DpStatus status = DpStatus::kOk;
  double best_cost = std::numeric_limits<double>::infinity();
  Strategy strategy;  ///< configuration per node, indexed by NodeId

  // Diagnostics (paper §III-C / Table I discussion).
  i64 max_dependent_set = 0;          ///< M for the ordering used
  u64 max_combinations_analyzed = 0;  ///< max_i |Phi(D(i))| * |C(v^(i))|
  i64 max_configs = 0;                ///< K
  double elapsed_seconds = 0.0;
  std::vector<i64> dependent_set_sizes;  ///< |D(i)| per position

  /// Which guard tripped, human-readable (set for kOutOfMemory/kDegraded).
  std::string guard_reason;
  /// Machine-readable guard classification (mirrors guard_reason). The
  /// serving layer uses this to decide cacheability: kTableGuard/kWorkGuard
  /// trips are pure functions of (graph, options) and may be cached, while
  /// kDeadline/kCancelled depend on wall-clock timing and must not be.
  enum class TripCause { kNone, kTableGuard, kWorkGuard, kDeadline,
                         kCancelled };
  TripCause trip_cause = TripCause::kNone;

  /// Worker threads actually used (DpOptions::num_threads resolved).
  i64 threads_used = 1;
  /// Cost-cache statistics (both zero when the cache is disabled).
  u64 cost_cache_hits = 0;
  u64 cost_cache_misses = 0;

  // Block-collapse and delta-re-solve diagnostics (docs/SCALING.md). All
  // structural: identical at every thread count.
  bool collapse_fired = false;  ///< a run of >= kMinCollapseBlocks detected
  i64 collapse_period = 0;      ///< nodes per detected block
  i64 collapse_blocks = 0;      ///< detected block instances
  /// The ordering came from the window + stitch fast path and passed
  /// certification (false also when the fast path fell back to the full
  /// GenerateSeq — the result is bit-identical either way).
  bool collapse_ordering_extrapolated = false;
  /// Ordering/vertex sets/roots were reused from DpOptions::context.
  bool reused_tables = false;
};

/// Stable wire name for a trip cause ("table_guard", "deadline", ...;
/// "none" for kNone) — what the serve event log and traces emit.
const char* trip_cause_name(DpResult::TripCause cause);

/// Runs FindBestStrategy on `graph`. Deterministic: ties are broken by
/// configuration enumeration order.
DpResult find_best_strategy(const Graph& graph, const DpOptions& options);

}  // namespace pase
