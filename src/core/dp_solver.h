// FindBestStrategy (paper Fig. 4): dynamic programming over recurrence (4).
//
// For each vertex v^(i) in the sequence, the solver enumerates every valid
// substrategy phi of the dependent set D(i); for each it finds the
// configuration C of v^(i) minimizing
//
//   H(i, phi U {(v^(i),C)}) + sum_{X(j) in S(i)} R(j, phi''),
//
// where H is the layer cost of v^(i) plus its transfer costs to later
// neighbors, and the R(j, .) values are read from the DP tables of the
// connected-subset anchors. Tables are hash maps keyed by the configuration
// choices of the dependent-set nodes. A table/work guard reports the same
// out-of-memory outcome the paper observes for breadth-first ordering on
// InceptionV3 and Transformer (Table I) without actually exhausting RAM.
#pragma once

#include <limits>
#include <vector>

#include "config/config_enum.h"
#include "core/ordering.h"
#include "cost/cost_model.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

struct DpOptions {
  ConfigOptions config_options;
  CostParams cost_params;
  OrderingKind ordering = OrderingKind::kGenerateSeq;

  /// OOM guard: maximum substrategy-table entries for a single vertex.
  u64 max_table_entries = u64{1} << 23;
  /// Work guard: maximum (substrategies x configurations) combinations
  /// analyzed for a single vertex.
  u64 max_combinations = u64{2} << 30;
};

enum class DpStatus {
  kOk,
  kOutOfMemory,  ///< a guard tripped; no strategy produced
  kInfeasible,   ///< a node has no admissible configuration (e.g. every
                 ///< choice violates the per-device memory cap)
};

struct DpResult {
  DpStatus status = DpStatus::kOk;
  double best_cost = std::numeric_limits<double>::infinity();
  Strategy strategy;  ///< configuration per node, indexed by NodeId

  // Diagnostics (paper §III-C / Table I discussion).
  i64 max_dependent_set = 0;          ///< M for the ordering used
  u64 max_combinations_analyzed = 0;  ///< max_i |Phi(D(i))| * |C(v^(i))|
  i64 max_configs = 0;                ///< K
  double elapsed_seconds = 0.0;
  std::vector<i64> dependent_set_sizes;  ///< |D(i)| per position
};

/// Runs FindBestStrategy on `graph`. Deterministic: ties are broken by
/// configuration enumeration order.
DpResult find_best_strategy(const Graph& graph, const DpOptions& options);

}  // namespace pase
