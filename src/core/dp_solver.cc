#include "core/dp_solver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/block_collapse.h"
#include "core/dep_sets.h"
#include "cost/cost_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace pase {

namespace {

/// Below this many combination evaluations for a vertex, the fan-out is not
/// worth the chunk bookkeeping and the vertex is processed on the calling
/// thread. Has no effect on results, only on scheduling.
constexpr u64 kParallelWorkThreshold = 4096;

/// DP table entry: minimum cost R(i, phi) and the arg-min configuration of
/// v^(i) for back-substitution.
struct Entry {
  double cost = 0.0;
  u32 cfg = 0;
};

/// Compact number rendering for guard-reason diagnostics.
std::string fmt_count(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

/// Per-position DP state kept alive for anchor lookups and extraction.
///
/// The substrategy table R(i, .) is a dense vector indexed by the
/// mixed-radix rank of phi: dependent[0] is the fastest-varying digit
/// (stride 1), matching the odometer enumeration order, so an entry's index
/// is sum_k cur_idx[dependent[k]] * stride[k]. Dense indexing replaces the
/// seed's hash-map tables: every phi in the cross product is materialized
/// anyway, and a rank computation is cheaper than hashing a key vector —
/// and it gives each parallel worker a distinct, pre-sized slot to write,
/// which is what makes the threaded fan-out race-free and deterministic.
struct PositionState {
  std::vector<NodeId> dependent;  ///< D(i), sorted by node id
  std::vector<i64> anchors;       ///< S(i) anchor positions
  std::vector<u32> radix;         ///< |C(dependent[k])|
  std::vector<u64> stride;        ///< mixed-radix strides, stride[0] = 1
  std::vector<Entry> table;       ///< size = prod(radix)

  u64 index_of(const std::vector<u32>& cur_idx) const {
    u64 idx = 0;
    for (size_t k = 0; k < dependent.size(); ++k)
      idx += static_cast<u64>(cur_idx[static_cast<size_t>(dependent[k])]) *
             stride[k];
    return idx;
  }
};

/// Graceful-degradation fallback: a deterministic beam search over the same
/// vertex ordering. A beam state is a configuration choice for every
/// sequenced-so-far vertex; placing v^(i) adds its node cost plus the cost
/// of every incident edge whose other endpoint is already sequenced (each
/// edge is counted exactly once, when its later endpoint is placed, so a
/// completed state's accumulated cost is exactly Eq. (1)). Work is bounded
/// by beam_width * K per vertex — no substrategy tables, no blow-up.
///
/// Honors an external cancellation token (`cancel`, may be null): a serving
/// watchdog that kills a runaway solve must not then wait for the fallback.
/// Returns false (result.strategy untouched) when cancelled before
/// completing; a deadline expiry alone never aborts the fallback, since the
/// beam is the bounded answer *to* the expiry.
bool beam_search_fallback(const Graph& graph, const Ordering& order,
                          const ConfigCache& configs, const CostModel& cost,
                          i64 beam_width, const std::atomic<bool>* cancel,
                          DpResult& result) {
  PASE_CHECK(beam_width >= 1);
  const i64 n = graph.num_nodes();

  struct State {
    double cost = 0.0;
    std::vector<u32> cfg;  ///< per node id; meaningful for placed nodes
  };
  std::vector<State> beam(1);
  beam[0].cfg.assign(static_cast<size_t>(n), 0);

  struct Candidate {
    double cost;
    u32 state;
    u32 ci;
  };
  std::vector<Candidate> candidates;

  for (i64 i = 0; i < n; ++i) {
    if (cancel && cancel->load(std::memory_order_relaxed)) return false;
    const NodeId vi = order.seq[static_cast<size_t>(i)];
    const auto& vi_configs = configs.at(vi);

    // Incident edges whose other endpoint is already placed.
    struct EarlierEdge {
      const Edge* edge;
      NodeId other;
    };
    std::vector<EarlierEdge> earlier;
    for (EdgeId eid : graph.incident_edges(vi)) {
      const Edge& e = graph.edge(eid);
      const NodeId w = e.src == vi ? e.dst : e.src;
      if (order.pos[static_cast<size_t>(w)] < i) earlier.push_back({&e, w});
    }

    candidates.clear();
    for (size_t s = 0; s < beam.size(); ++s) {
      for (size_t ci = 0; ci < vi_configs.size(); ++ci) {
        double c = beam[s].cost + cost.node_cost(vi, vi_configs[ci]);
        for (const EarlierEdge& ee : earlier) {
          const Config& other_cfg =
              configs.at(ee.other)[beam[s].cfg[static_cast<size_t>(ee.other)]];
          const Config& src =
              ee.edge->src == vi ? vi_configs[ci] : other_cfg;
          const Config& dst =
              ee.edge->src == vi ? other_cfg : vi_configs[ci];
          c += cost.edge_cost(*ee.edge, src, dst);
        }
        candidates.push_back(
            {c, static_cast<u32>(s), static_cast<u32>(ci)});
      }
    }

    const size_t keep =
        std::min(static_cast<size_t>(beam_width), candidates.size());
    // Deterministic: ties broken by parent-state rank, then config order.
    std::partial_sort(candidates.begin(), candidates.begin() + keep,
                      candidates.end(),
                      [](const Candidate& a, const Candidate& b) {
                        if (a.cost != b.cost) return a.cost < b.cost;
                        if (a.state != b.state) return a.state < b.state;
                        return a.ci < b.ci;
                      });
    std::vector<State> next(keep);
    for (size_t k = 0; k < keep; ++k) {
      next[k].cost = candidates[k].cost;
      next[k].cfg = beam[candidates[k].state].cfg;
      next[k].cfg[static_cast<size_t>(vi)] = candidates[k].ci;
    }
    beam = std::move(next);
  }

  const State& best = beam.front();  // sorted: front is the minimum
  result.strategy.assign(static_cast<size_t>(n), Config{});
  for (NodeId v = 0; v < n; ++v)
    result.strategy[static_cast<size_t>(v)] =
        configs.at(v)[best.cfg[static_cast<size_t>(v)]];
  // Report the authoritative Eq. (1) evaluation of the extracted strategy
  // (equal to best.cost up to floating-point association).
  result.best_cost = cost.total_cost(result.strategy);
  return true;
}

/// Recursive back-substitution: assigns v^(i)'s best configuration under the
/// current dependent-set choices, then descends into the connected subsets.
void extract(const std::vector<PositionState>& states,
             const Ordering& order, const ConfigCache& configs,
             i64 pos, std::vector<u32>& cur_idx, Strategy& out) {
  const PositionState& st = states[static_cast<size_t>(pos)];
  const u64 idx = st.index_of(cur_idx);
  PASE_CHECK_MSG(idx < st.table.size(), "missing DP entry during extraction");
  const NodeId vi = order.seq[static_cast<size_t>(pos)];
  cur_idx[static_cast<size_t>(vi)] = st.table[idx].cfg;
  out[static_cast<size_t>(vi)] = configs.at(vi)[st.table[idx].cfg];
  for (i64 j : st.anchors) extract(states, order, configs, j, cur_idx, out);
}

}  // namespace

std::shared_ptr<const DpContext::Snapshot> DpContext::match(
    const Graph& graph, OrderingKind kind) const {
  std::shared_ptr<const Snapshot> snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = snap_;
  }
  if (!snap || snap->kind != kind || snap->num_nodes != graph.num_nodes() ||
      static_cast<i64>(snap->edges.size()) != graph.num_edges()) {
    return nullptr;
  }
  // Adjacency identity, element for element. Shapes/extents are deliberately
  // NOT compared: the cached phases are pure functions of (src, dst) pairs,
  // which is exactly what makes batch/device/bandwidth mutations reusable.
  for (const Edge& e : graph.edges()) {
    const auto& p = snap->edges[static_cast<size_t>(e.id)];
    if (p.first != e.src || p.second != e.dst) return nullptr;
  }
  return snap;
}

void DpContext::store(std::shared_ptr<const Snapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  snap_ = std::move(snap);
}

const char* trip_cause_name(DpResult::TripCause cause) {
  switch (cause) {
    case DpResult::TripCause::kNone: return "none";
    case DpResult::TripCause::kTableGuard: return "table_guard";
    case DpResult::TripCause::kWorkGuard: return "work_guard";
    case DpResult::TripCause::kDeadline: return "deadline";
    case DpResult::TripCause::kCancelled: return "cancelled";
  }
  return "none";
}

DpResult find_best_strategy(const Graph& graph, const DpOptions& options) {
  WallTimer timer;
  DpResult result;
  TraceSession* const trace = options.trace;
  MetricsRegistry* const metrics = options.metrics;

  // Per-solve cache by default; a caller-owned shared cache (the serving
  // daemon keeps one warm per graph signature) survives across solves, so
  // its counters are reported as this solve's delta. Under concurrent
  // solves sharing one cache the delta is approximate (other requests bump
  // the same counters) — diagnostics only, never results. Constructed
  // before the ordering phase because block collapsing reads its structural
  // equivalence classes.
  std::optional<CostCache> own_cost_cache;
  CostCache* cost_cache = nullptr;
  if (options.use_cost_cache) {
    if (options.shared_cost_cache) {
      cost_cache = options.shared_cost_cache;
    } else {
      own_cost_cache.emplace(graph);
      cost_cache = &*own_cost_cache;
    }
  }

  Ordering order;
  std::shared_ptr<const DpContext::Snapshot> reused;
  BlockPlan plan;
  bool have_plan = false;
  {
    PhaseScope phase(trace, metrics, "ordering", "dp.phase.ordering_seconds");
    if (options.context) {
      reused = options.context->match(graph, options.ordering);
      if (metrics)
        metrics->add_counter(reused ? "dp.reuse.hits" : "dp.reuse.misses", 1);
    }
    if (options.collapse_blocks) {
      // The plan powers the per-class cost memo below even when the
      // ordering itself comes from a context snapshot, so detect always.
      if (cost_cache) {
        plan = detect_blocks(graph, *cost_cache);
      } else {
        const CostCache classes_only(graph);
        plan = detect_blocks(graph, classes_only);
      }
      have_plan = true;
      result.collapse_fired = plan.fired();
      result.collapse_period = plan.period;
      result.collapse_blocks = plan.count;
      if (metrics && plan.fired()) {
        metrics->add_counter("dp.collapse.fired", 1);
        metrics->record("dp.collapse.period", plan.period);
        metrics->record("dp.collapse.blocks", plan.count);
      }
    }
    if (reused) {
      order = reused->order;
      result.reused_tables = true;
    } else if (have_plan && plan.fired() &&
               options.ordering == OrderingKind::kGenerateSeq) {
      CollapseOrderingStats stats;
      order = collapsed_generate_seq(graph, plan, &stats);
      result.collapse_ordering_extrapolated = stats.certified;
      if (metrics && stats.certified)
        metrics->add_counter("dp.collapse.ordering_certified", 1);
    } else {
      order = make_ordering(graph, options.ordering);
    }
  }
  std::optional<ConfigCache> configs_storage;
  {
    PhaseScope phase(trace, metrics, "configs", "dp.phase.configs_seconds");
    configs_storage.emplace(graph, options.config_options);
  }
  const ConfigCache& configs = *configs_storage;
  const u64 hits0 = cost_cache ? cost_cache->hits() : 0;
  const u64 misses0 = cost_cache ? cost_cache->misses() : 0;
  CostModel cost(graph, options.cost_params);
  if (cost_cache) cost.attach_cache(cost_cache);
  auto record_cache_stats = [&] {
    if (!cost_cache) return;
    result.cost_cache_hits = cost_cache->hits() - hits0;
    result.cost_cache_misses = cost_cache->misses() - misses0;
  };
  // Final metrics flush, shared by every exit path. Counters/histograms
  // recorded here are structural — pure functions of (graph, options minus
  // num_threads) — while anything wall-clock or scheduling dependent goes
  // into gauges (see src/obs/metrics.h).
  auto record_metrics = [&] {
    if (!metrics) return;
    metrics->add_counter("dp.solves", 1);
    metrics->add_counter("dp.cost_cache.hits", result.cost_cache_hits);
    metrics->add_counter("dp.cost_cache.misses", result.cost_cache_misses);
    const char* status = "ok";
    switch (result.status) {
      case DpStatus::kOk: status = "ok"; break;
      case DpStatus::kOutOfMemory: status = "oom"; break;
      case DpStatus::kInfeasible: status = "infeasible"; break;
      case DpStatus::kDegraded: status = "degraded"; break;
    }
    metrics->add_counter(std::string("dp.status.") + status, 1);
    metrics->add_gauge("dp.elapsed_seconds", result.elapsed_seconds);
    metrics->set_gauge("dp.threads", static_cast<double>(result.threads_used));
  };

  // The pool is created per solve (worker startup is microseconds against
  // search times of milliseconds and up); num_threads == 1 bypasses it.
  const i64 threads = ThreadPool::resolve(options.num_threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) {
    pool.emplace(threads);
    pool->set_trace(trace);
  }
  result.threads_used = threads;

  const i64 n = graph.num_nodes();
  if (metrics) metrics->add_counter("dp.vertices", static_cast<u64>(n));

  result.max_configs = configs.max_configs();
  for (NodeId v = 0; v < n; ++v) {
    if (configs.at(v).empty()) {
      result.status = DpStatus::kInfeasible;
      record_cache_stats();
      result.elapsed_seconds = timer.elapsed_seconds();
      record_metrics();
      return result;
    }
  }

  std::vector<PositionState> states(static_cast<size_t>(n));
  std::vector<u32> cur_idx(static_cast<size_t>(n), 0);

  // Guard/deadline/cancellation trips either abort the exact DP
  // (kOutOfMemory, the paper Table I outcome) or degrade gracefully to the
  // beam-search fallback — which itself honors the external cancel token,
  // so a watchdog kill cannot be stalled by the fallback either.
  auto degrade_or_fail = [&](std::string reason,
                             DpResult::TripCause cause) -> DpResult {
    result.guard_reason = std::move(reason);
    result.trip_cause = cause;
    bool fallback_ok = false;
    if (options.degraded_fallback) {
      PhaseScope phase(trace, metrics, "beam_fallback",
                       "dp.phase.beam_fallback_seconds");
      fallback_ok =
          beam_search_fallback(graph, order, configs, cost,
                               options.beam_width, options.cancel, result);
    }
    if (fallback_ok) {
      result.status = DpStatus::kDegraded;
    } else {
      result.status = DpStatus::kOutOfMemory;
      if (options.degraded_fallback) {
        result.guard_reason += "; beam fallback cancelled";
        result.trip_cause = DpResult::TripCause::kCancelled;
      }
    }
    record_cache_stats();
    result.elapsed_seconds = timer.elapsed_seconds();
    record_metrics();
    return result;
  };
  auto deadline_expired = [&] {
    return options.deadline_seconds > 0.0 &&
           timer.elapsed_seconds() > options.deadline_seconds;
  };
  // Cancellation (external token beats deadline: the watchdog's kill is the
  // more urgent signal and its message should say "cancelled").
  auto abort_cause = [&]() -> DpResult::TripCause {
    if (options.cancel && options.cancel->load(std::memory_order_relaxed))
      return DpResult::TripCause::kCancelled;
    if (deadline_expired()) return DpResult::TripCause::kDeadline;
    return DpResult::TripCause::kNone;
  };
  auto abort_message = [&](DpResult::TripCause cause,
                           const std::string& where) {
    return (cause == DpResult::TripCause::kCancelled
                ? std::string("cancelled ")
                : "deadline of " + fmt_count(options.deadline_seconds) +
                      "s expired ") +
           where;
  };
  // Cooperative cancellation across workers once the deadline expires or
  // the external token is observed set.
  std::atomic<bool> cancel{false};

  // Per-class cost memoization (collapse mode): same-class vertices share
  // their t_l vector and t_x matrices — the "solve one class representative"
  // half of block collapsing. Exactness: a CostCache class groups nodes
  // (edges) whose every cost-model input is byte-identical, so equal class
  // implies equal cost for equal configurations; equality of the actual
  // configuration LISTS is verified at lookup (never assumed — a
  // ConfigOptions filter could in principle admit different lists for
  // same-class nodes, in which case the memo simply misses). Fills happen on
  // the calling thread before the parallel fan-out, preserving the
  // bit-identical-at-any-thread-count contract.
  struct ClassNodeCosts {
    NodeId rep = kInvalidNode;
    std::shared_ptr<const std::vector<double>> costs;
  };
  std::unordered_map<u32, ClassNodeCosts> class_node_costs;
  struct ClassEdgeCosts {
    NodeId rep_vi = kInvalidNode;
    NodeId rep_other = kInvalidNode;
    std::shared_ptr<const std::vector<double>> matrix;
  };
  std::unordered_map<u64, ClassEdgeCosts> class_edge_costs;

  for (i64 i = 0; i < n; ++i) {
    if (const auto cause = abort_cause(); cause != DpResult::TripCause::kNone)
      return degrade_or_fail(
          abort_message(cause, "at vertex " + std::to_string(i) + " of " +
                                   std::to_string(n)),
          cause);
    const NodeId vi = order.seq[static_cast<size_t>(i)];
    const auto& vi_configs = configs.at(vi);
    PositionState& st = states[static_cast<size_t>(i)];

    {
      PhaseScope phase(trace, metrics, "dep_sets",
                       "dp.phase.dep_sets_seconds");
      phase.arg("vertex", i);
      if (reused) {
        st.dependent = reused->dependent[static_cast<size_t>(i)];
        st.anchors = reused->anchors[static_cast<size_t>(i)];
      } else {
        const VertexSets sets = compute_vertex_sets(graph, order, i);
        st.dependent = sets.dependent;
        st.anchors = sets.subset_anchors;
      }
      phase.arg("dep_set", static_cast<i64>(st.dependent.size()));
    }
    result.dependent_set_sizes.push_back(
        static_cast<i64>(st.dependent.size()));
    result.max_dependent_set = std::max(
        result.max_dependent_set, static_cast<i64>(st.dependent.size()));
    if (metrics)
      metrics->record("dp.dep_set_size",
                      static_cast<i64>(st.dependent.size()));

    PhaseScope fill_phase(trace, metrics, "table_fill",
                          "dp.phase.table_fill_seconds");
    fill_phase.arg("vertex", i);

    // Guard against combinatorial blow-up (paper Table I "OOM" outcome).
    double combos = 1.0;
    for (NodeId d : st.dependent)
      combos *= static_cast<double>(configs.at(d).size());
    const double work = combos * static_cast<double>(vi_configs.size());
    if (combos > static_cast<double>(options.max_table_entries))
      return degrade_or_fail(
          "substrategy table for vertex " + std::to_string(i) + " needs " +
              fmt_count(combos) + " entries (guard: " +
              std::to_string(options.max_table_entries) + ")",
          DpResult::TripCause::kTableGuard);
    if (work > static_cast<double>(options.max_combinations))
      return degrade_or_fail(
          "vertex " + std::to_string(i) + " needs " + fmt_count(work) +
              " combination evaluations (guard: " +
              std::to_string(options.max_combinations) + ")",
          DpResult::TripCause::kWorkGuard);
    result.max_combinations_analyzed = std::max(
        result.max_combinations_analyzed, static_cast<u64>(work));

    st.radix.resize(st.dependent.size());
    st.stride.resize(st.dependent.size());
    u64 prod = 1;
    for (size_t k = 0; k < st.dependent.size(); ++k) {
      st.radix[k] =
          static_cast<u32>(configs.at(st.dependent[k]).size());
      st.stride[k] = prod;
      prod *= st.radix[k];
    }
    PASE_CHECK(static_cast<double>(prod) == combos);
    fill_phase.arg("substrategies", static_cast<i64>(prod));
    fill_phase.arg("configs", static_cast<i64>(vi_configs.size()));
    fill_phase.arg("work", static_cast<i64>(work));
    if (metrics) {
      metrics->add_counter("dp.substrategies", prod);
      metrics->add_counter("dp.combinations", static_cast<u64>(work));
      metrics->record("dp.substrategies_per_vertex", static_cast<i64>(prod));
    }

    // The t_l / t_x precompute loops below can dominate wall time on a
    // single-large-vertex model — they make |C(v^(i))| + sum_w |C(v^(i))| x
    // |C(w)| cost-model calls before the table fill ever starts — so they
    // carry their own amortized abort check (every 256 cost calls; a
    // steady_clock read amortized over 256 cost evaluations is noise).
    u64 precompute_tick = 0;
    auto precompute_cause = [&]() -> DpResult::TripCause {
      if ((++precompute_tick & 255u) != 0) return DpResult::TripCause::kNone;
      return abort_cause();
    };

    // Precompute t_l(v^(i), C) for every C in C(v^(i)) — shared across
    // same-class vertices in collapse mode.
    std::shared_ptr<const std::vector<double>> node_costs_ptr;
    if (have_plan) {
      const auto it =
          class_node_costs.find(plan.node_class[static_cast<size_t>(vi)]);
      if (it != class_node_costs.end() &&
          configs.at(it->second.rep) == vi_configs) {
        node_costs_ptr = it->second.costs;
        if (metrics) metrics->add_counter("dp.collapse.node_memo_hits", 1);
      }
    }
    if (!node_costs_ptr) {
      auto computed =
          std::make_shared<std::vector<double>>(vi_configs.size());
      for (size_t c = 0; c < vi_configs.size(); ++c) {
        if (const auto cause = precompute_cause();
            cause != DpResult::TripCause::kNone)
          return degrade_or_fail(
              abort_message(cause, "precomputing costs for vertex " +
                                       std::to_string(i)),
              cause);
        (*computed)[c] = cost.node_cost(vi, vi_configs[c]);
      }
      node_costs_ptr = std::move(computed);
      if (have_plan)
        class_node_costs[plan.node_class[static_cast<size_t>(vi)]] = {
            vi, node_costs_ptr};
    }
    const std::vector<double>& node_costs = *node_costs_ptr;

    // Later edges of v^(i) (the H function's transfer terms) with their full
    // |C(v^(i))| x |C(w)| cost matrices; every later neighbor w is in D(i).
    // In collapse mode a matrix is shared across edges of the same
    // structural class and orientation once both endpoint configuration
    // lists are verified equal to the representative's.
    struct LaterEdge {
      NodeId other;
      std::shared_ptr<const std::vector<double>>
          cost_matrix;  ///< [ci * |C(w)| + cw]
    };
    std::vector<LaterEdge> later_edges;
    for (EdgeId eid : graph.incident_edges(vi)) {
      const Edge& e = graph.edge(eid);
      const NodeId w = e.src == vi ? e.dst : e.src;
      if (order.pos[static_cast<size_t>(w)] <= i) continue;
      PASE_CHECK(std::binary_search(st.dependent.begin(), st.dependent.end(),
                                    w));
      LaterEdge le;
      le.other = w;
      const auto& w_configs = configs.at(w);
      const u64 memo_key =
          (static_cast<u64>(
               have_plan ? plan.edge_class[static_cast<size_t>(e.id)] : 0)
           << 1) |
          (e.src == vi ? 1u : 0u);
      if (have_plan) {
        const auto it = class_edge_costs.find(memo_key);
        if (it != class_edge_costs.end() &&
            configs.at(it->second.rep_vi) == vi_configs &&
            configs.at(it->second.rep_other) == w_configs) {
          le.cost_matrix = it->second.matrix;
          if (metrics) metrics->add_counter("dp.collapse.edge_memo_hits", 1);
        }
      }
      if (!le.cost_matrix) {
        auto matrix = std::make_shared<std::vector<double>>(
            vi_configs.size() * w_configs.size());
        for (size_t ci = 0; ci < vi_configs.size(); ++ci)
          for (size_t cw = 0; cw < w_configs.size(); ++cw) {
            if (const auto cause = precompute_cause();
                cause != DpResult::TripCause::kNone)
              return degrade_or_fail(
                  abort_message(cause, "precomputing costs for vertex " +
                                           std::to_string(i)),
                  cause);
            const Config& src = e.src == vi ? vi_configs[ci] : w_configs[cw];
            const Config& dst = e.src == vi ? w_configs[cw] : vi_configs[ci];
            (*matrix)[ci * w_configs.size() + cw] =
                cost.edge_cost(e, src, dst);
          }
        le.cost_matrix = std::move(matrix);
        if (have_plan)
          class_edge_costs[memo_key] = {vi, w, le.cost_matrix};
      }
      later_edges.push_back(std::move(le));
    }

    // Anchors whose D(j) contains v^(i) must be re-looked-up per C; the rest
    // depend only on phi and are hoisted out of the configuration loop.
    std::vector<i64> anchors_outer, anchors_inner;
    for (i64 j : st.anchors) {
      const auto& dj = states[static_cast<size_t>(j)].dependent;
      const bool contains_vi =
          std::binary_search(dj.begin(), dj.end(), vi);
      (contains_vi ? anchors_inner : anchors_outer).push_back(j);
      // Theory: D(j) is a subset of D(i) U {v^(i)} for X(j) in S(i).
      for (NodeId d : dj)
        PASE_CHECK(d == vi || std::binary_search(st.dependent.begin(),
                                                 st.dependent.end(), d));
    }

    st.table.resize(static_cast<size_t>(prod));

    // Evaluates the phi linear-index range [p0, p1), writing each best
    // Entry to its own table slot. `cur` is the caller's scratch config-
    // index vector (one per worker in the parallel fan-out, so workers
    // never share mutable state; table writes are to disjoint slots).
    // Identical code runs in the sequential and parallel paths, and each
    // phi's config scan uses strict less-than in enumeration order, so the
    // filled table is bit-identical however the range is split.
    auto process_range = [&](u64 p0, u64 p1, std::vector<u32>& cur) {
      const size_t kd = st.dependent.size();
      std::vector<u32> odo(kd);
      for (size_t k = 0; k < kd; ++k) {
        odo[k] = static_cast<u32>((p0 / st.stride[k]) % st.radix[k]);
        cur[static_cast<size_t>(st.dependent[k])] = odo[k];
      }
      // Amortized abort check every ~8k *combinations* — counting phi
      // indices would let a vertex with few substrategies but a huge
      // configuration set blow far past the deadline between checks.
      u64 combos_since_check = 0;
      for (u64 idx = p0; idx < p1; ++idx) {
        combos_since_check += vi_configs.size();
        if (combos_since_check >= 8192) {
          combos_since_check = 0;
          if (cancel.load(std::memory_order_relaxed)) return;
          if (abort_cause() != DpResult::TripCause::kNone) {
            cancel.store(true, std::memory_order_relaxed);
            return;
          }
        }

        double base = 0.0;
        for (i64 j : anchors_outer) {
          const PositionState& sj = states[static_cast<size_t>(j)];
          base += sj.table[sj.index_of(cur)].cost;
        }

        Entry best{std::numeric_limits<double>::infinity(), 0};
        for (size_t ci = 0; ci < vi_configs.size(); ++ci) {
          double c = base + node_costs[ci];
          for (const LaterEdge& le : later_edges)
            c += (*le.cost_matrix)[ci * configs.at(le.other).size() +
                                   cur[static_cast<size_t>(le.other)]];
          if (!anchors_inner.empty()) {
            cur[static_cast<size_t>(vi)] = static_cast<u32>(ci);
            for (i64 j : anchors_inner) {
              const PositionState& sj = states[static_cast<size_t>(j)];
              c += sj.table[sj.index_of(cur)].cost;
            }
          }
          if (c < best.cost) best = Entry{c, static_cast<u32>(ci)};
        }
        st.table[idx] = best;

        // Advance the odometer (digit k = dependent[k], stride order).
        for (size_t k = 0; k < kd; ++k) {
          if (++odo[k] < st.radix[k]) {
            cur[static_cast<size_t>(st.dependent[k])] = odo[k];
            break;
          }
          odo[k] = 0;
          cur[static_cast<size_t>(st.dependent[k])] = 0;
        }
      }
    };

    if (pool && prod > 1 && static_cast<u64>(work) >= kParallelWorkThreshold) {
      // Chunk the phi range by index only — the decomposition (and hence
      // every table entry) is independent of scheduling and thread count.
      const i64 grain = std::max<i64>(
          64, ceil_div(static_cast<i64>(prod), threads * 8));
      pool->parallel_for(
          0, static_cast<i64>(prod), grain,
          [&](i64 b0, i64 b1) {
            std::vector<u32> cur(static_cast<size_t>(n), 0);
            process_range(static_cast<u64>(b0), static_cast<u64>(b1), cur);
          },
          &cancel);
    } else {
      process_range(0, prod, cur_idx);
    }
    if (cancel.load(std::memory_order_relaxed)) {
      // Classify after the fact: the external token stays set and an
      // expired deadline stays expired, so the cause is still observable.
      auto cause = abort_cause();
      if (cause == DpResult::TripCause::kNone)
        cause = DpResult::TripCause::kDeadline;
      return degrade_or_fail(
          abort_message(cause, "enumerating substrategies of vertex " +
                                   std::to_string(i)),
          cause);
    }
  }

  // For a weakly connected graph the last vertex covers everything:
  // R(|V|, {}) is the optimum. For a disconnected graph (pipeline-stage
  // subgraphs), each weakly connected component is covered by its own
  // maximum-position vertex, whose dependent set is empty; costs add and
  // back-substitution runs per component root.
  std::vector<i64> roots;
  {
    PhaseScope phase(trace, metrics, "back_substitution",
                     "dp.phase.back_substitution_seconds");
    if (reused) {
      roots = reused->roots;
    } else {
      Bitset covered(n);
      for (i64 i = n - 1; i >= 0; --i) {
        const NodeId vi = order.seq[static_cast<size_t>(i)];
        if (covered.test(vi)) continue;
        roots.push_back(i);
        for (NodeId v : compute_vertex_sets(graph, order, i).connected)
          covered.set(v);
      }
    }
    phase.arg("roots", static_cast<i64>(roots.size()));

    result.best_cost = 0.0;
    result.strategy.assign(static_cast<size_t>(n), Config{});
    std::fill(cur_idx.begin(), cur_idx.end(), 0);
    for (i64 root : roots) {
      const PositionState& st = states[static_cast<size_t>(root)];
      PASE_CHECK(st.dependent.empty());
      PASE_CHECK(st.table.size() == 1);
      result.best_cost += st.table[0].cost;
      // Back-substitution (paper: "a simple back-substitution, starting from
      // v^(|V|).cfg, provides the best strategy").
      extract(states, order, configs, root, cur_idx, result.strategy);
    }
    for (const Config& c : result.strategy)
      PASE_CHECK_MSG(c.rank() > 0, "extraction must assign every node");
  }
  if (metrics)
    metrics->add_counter("dp.roots", static_cast<u64>(roots.size()));

  // Publish this solve's adjacency-pure phases (ordering, vertex sets,
  // roots) for future delta re-solves under mutated parameters.
  if (options.context && !reused) {
    auto snap = std::make_shared<DpContext::Snapshot>();
    snap->kind = options.ordering;
    snap->num_nodes = n;
    snap->edges.reserve(static_cast<size_t>(graph.num_edges()));
    for (const Edge& e : graph.edges()) snap->edges.emplace_back(e.src, e.dst);
    snap->order = order;
    snap->dependent.resize(static_cast<size_t>(n));
    snap->anchors.resize(static_cast<size_t>(n));
    for (i64 i = 0; i < n; ++i) {
      snap->dependent[static_cast<size_t>(i)] =
          states[static_cast<size_t>(i)].dependent;
      snap->anchors[static_cast<size_t>(i)] =
          states[static_cast<size_t>(i)].anchors;
    }
    snap->roots = roots;
    options.context->store(std::move(snap));
    if (metrics) metrics->add_counter("dp.reuse.stores", 1);
  }

  record_cache_stats();
  result.elapsed_seconds = timer.elapsed_seconds();
  record_metrics();
  return result;
}

}  // namespace pase
