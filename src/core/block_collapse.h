// Block collapsing for repeated-structure graphs (ROADMAP item 2, paper
// §III-C discussion of search cost): real Transformer/GPT stacks repeat one
// block of layers hundreds of times, and every phase of the DP that walks
// the whole graph — GenerateSeq above all, whose per-step global min-scan is
// O(|V|^2) with bitset popcounts — pays for each repeat separately. This
// module detects maximal runs of structurally identical blocks using the
// exact layer-equivalence classes the CostCache already computes, solves
// the ordering problem once on a small representative window, stitches the
// window's sequence across every repeat by periodicity, and then *certifies*
// the stitched sequence against GenerateSeq's own greedy invariant — so the
// returned ordering is bit-identical to generate_seq(graph) by construction,
// never by hope. The DP solver additionally uses the detected classes to
// compute node-cost vectors and edge-cost matrices once per class instead of
// once per vertex (see dp_solver.cc); DESIGN.md §12 gives the full
// exactness argument.
//
// Thread safety: everything here is a pure function of its arguments — no
// shared mutable state. Concurrent calls are safe.
#pragma once

#include <vector>

#include "core/ordering.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

class CostCache;

/// Fewest block instances worth collapsing: below this the window IS the
/// graph and the machinery is pure overhead.
constexpr i64 kMinCollapseBlocks = 4;

/// A maximal run of `count` structurally identical blocks of `period`
/// consecutive node ids starting at node id `first`. Two blocks are
/// "structurally identical" when every node pair at equal offset is in the
/// same CostCache equivalence class AND has the same incident-edge
/// descriptor set (signed neighbor offset, direction, edge class) — i.e.
/// the second block is a verbatim id-shifted copy of the first, wiring
/// included. The class arrays cover the whole graph and power the DP
/// solver's per-class cost memoization even outside the run.
struct BlockPlan {
  i64 period = 0;   ///< nodes per block
  NodeId first = 0; ///< id of the first node of the first block in the run
  i64 count = 0;    ///< number of complete block instances in the run
  std::vector<u32> node_class;  ///< per NodeId, from CostCache
  std::vector<u32> edge_class;  ///< per EdgeId, from CostCache

  /// True when the graph has a run worth collapsing.
  bool fired() const { return count >= kMinCollapseBlocks; }
  /// Nodes covered by the run.
  i64 nodes_covered() const { return period * count; }
};

/// Detects the best collapsible run of `graph`: the candidate maximizing
/// covered nodes, ties broken toward the smallest period then the smallest
/// starting id (deterministic). `classes` must have been built against
/// `graph`. Always fills the class arrays; `fired()` tells whether a run of
/// at least kMinCollapseBlocks instances exists.
BlockPlan detect_blocks(const Graph& graph, const CostCache& classes);

/// How collapsed_generate_seq produced its ordering (diagnostics only).
struct CollapseOrderingStats {
  bool extrapolated = false;  ///< window + periodic stitch was attempted
  bool certified = false;     ///< the stitched sequence passed certification
  i64 window_nodes = 0;       ///< size of the reduced window graph
};

/// GenerateSeq through the collapse fast path: builds a reduced graph with
/// only a small window of block instances (the class representative), runs
/// the real generate_seq on it, stitches the window's periodic segment
/// across all `plan.count` instances, and certifies the result (below).
/// Falls back to generate_seq(graph) whenever the plan did not fire, the
/// stitch cannot be located, or certification fails — so the returned
/// ordering (seq, pos and dep_sets) is ALWAYS bit-identical to
/// generate_seq(graph).
Ordering collapsed_generate_seq(const Graph& graph, const BlockPlan& plan,
                                CollapseOrderingStats* stats = nullptr);

/// Certifies that `seq` is exactly the sequence generate_seq(graph) would
/// emit, by replaying Fig. 3's greedy with incrementally maintained
/// dependent-set sizes: at every step the prescribed vertex must be the
/// (size, id)-lexicographic minimum over unsequenced vertices — precisely
/// the original's first-strictly-smaller scan in id order. O(|V| (d log|V| +
/// |V|/64)) for max update degree d, against the original's O(|V|^3 / 64).
/// Returns the complete Ordering (seq, pos, dep_sets — the same Theorem 2
/// sets generate_seq records) on success, or an empty Ordering (seq.empty())
/// on any mismatch.
Ordering certify_generate_seq(const Graph& graph,
                              const std::vector<NodeId>& seq);

}  // namespace pase
