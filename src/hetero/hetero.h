// First-class heterogeneous machine model (ROADMAP item 3; AMP, PAPERS.md):
// per-device FLOPS and per-link bandwidths become inputs the search *prices*,
// not just simulator refinements.
//
// Placement. The DP's configuration space stays mixed-radix over parallel
// degrees; what heterogeneity changes is *which* physical devices a degree-g
// layer occupies and how its work is sharded. HeteroModel fixes the
// deterministic fastest-first placement: devices sorted by descending peak
// FLOPS (ties by rank), a degree-g layer occupying the first g. Prefixes are
// nested, so the aligned-placement transfer-overlap closed form in
// cost_model.cc (`transfer_bytes`) remains exact, and the placement is a
// pure function of the spec — bit-identical across thread counts for free.
//
// Uneven shards. Across the g fastest devices a layer's work is split
// proportionally to each device's peak (every shard finishes together), so
// the per-layer compute time is W / sum_top-g(f) instead of the even-shard
// (W/g) / f_weakest. Expressed in the cost model's weakest-device
// FLOP-equivalents that is a pure scale factor per degree:
//
//   compute_scale[g] = g * F_ref / sum_top-g(f)   <= 1,  F_ref = weakest f
//
// Link pricing. A collective over group g runs on the physical span of the
// placed prefix; the bottleneck link of that span (the machine's link tiers,
// or the legacy intra/inter pair) sets the per-group FLOP-to-byte ratio:
//
//   group_r[g] = F_ref * efficiency / bottleneck_bw(g)   <= r
//
// Both tables install into CostParams (hetero_cost_params below). A uniform
// spec installs *nothing* and returns CostParams::for_machine verbatim —
// the homogeneous machine is the degenerate case, bit-identical to the
// legacy path (same precedent as CommModelKind::kSimple attaching no comm
// model). The fault path builds on the same contract: a straggler-degraded
// MachineSpec is just a heterogeneous machine, so robustness re-solves and
// plain solves share one search path (DESIGN.md §13).
#pragma once

#include <string>
#include <vector>

#include "comm/comm_model.h"
#include "cost/cost_model.h"
#include "cost/machine.h"
#include "util/types.h"

namespace pase {

class HeteroModel {
 public:
  explicit HeteroModel(const MachineSpec& machine);

  const MachineSpec& machine() const { return machine_; }

  /// True when every device has the same peak and every link tier matches
  /// the scalar link_bandwidth — i.e. the hetero tables would be the
  /// identity and the legacy model is exact.
  bool uniform() const { return uniform_; }

  /// Fastest-first device permutation: placement()[i] is the physical rank
  /// of the i-th logical device (descending FLOPS, ties by ascending rank).
  const std::vector<i64>& placement() const { return placement_; }

  /// Sum of the g fastest devices' peak FLOPS (g clamped to [1, p]).
  double effective_flops(i64 group) const;

  /// Physical extent (max physical rank + 1) of the g fastest devices —
  /// the span whose bottleneck link a group-g collective pays.
  i64 placed_span(i64 group) const;

  /// Bottleneck link bandwidth for a group of the g fastest devices: the
  /// machine's tier for the placed span, or the legacy intra/inter pair.
  double group_bandwidth(i64 group) const;

  /// Proportional-shard compute scale (<= 1), in weakest-device units.
  double compute_scale(i64 group) const;

  /// Per-group FLOP-to-byte ratio (<= the machine's scalar r).
  double group_r(i64 group) const;

  /// Short deterministic signature for logs/metrics, e.g. "MixedPod/p8/het"
  /// — uniform machines render as "name/p8".
  std::string signature() const;

 private:
  MachineSpec machine_;
  bool uniform_ = true;
  std::vector<i64> placement_;
  std::vector<double> prefix_flops_;  ///< prefix_flops_[g-1] = top-g sum
  std::vector<i64> prefix_span_;      ///< prefix_span_[g-1] = placed span
};

/// CostParams for a possibly heterogeneous machine. Uniform specs return
/// CostParams::for_machine(m, kind) verbatim — bit-identical costs and
/// strategies to the legacy path. Non-uniform specs get the
/// hetero_compute_scale / hetero_group_r tables installed (and, for non-
/// simple kinds, a tier-aware CommModel).
CostParams hetero_cost_params(const MachineSpec& m,
                              CommModelKind kind = CommModelKind::kSimple);

/// HeteroModel(m).signature() without building the tables by hand.
std::string machine_signature(const MachineSpec& m);

}  // namespace pase
