// Machine-spec files: a JSON device/link description of a (possibly
// heterogeneous) cluster, loadable via `pase_cli --machine-spec <file>` and
// acceptable inline in the serve protocol ("machine_spec"). Parsed with the
// hardened serve/json.h parser — machine specs cross a trust boundary the
// same way protocol lines do, so malformed input must produce a structured
// error, never an abort.
//
// Format (all bandwidths bytes/s, FLOPS per second, latencies seconds):
//
//   {
//     "name": "mixed-pod",           // optional label
//     "devices": 8,                  // required, >= 1
//     "devices_per_node": 8,         // optional
//     "peak_flops": 11.3e12,         // required unless device_flops given
//     "device_flops": [ ... ],       // optional, exactly `devices` entries
//     "link_bandwidth": 7e9,         // optional when links given elsewhere
//     "intra_node_bandwidth": 12e9,  // optional
//     "inter_node_bandwidth": 7e9,   // optional
//     "link_tiers": [                // optional multi-tier fabric
//       {"span": 8, "bandwidth": 12e9, "latency_s": 5e-6},
//       {"span": 16, "bandwidth": 7e9}
//     ],
//     "link_latency_s": 5e-6,        // optional
//     "compute_efficiency": 0.35,    // optional, in (0, 1]
//     "grad_overlap_efficiency": 1.0,   // optional, in [0, 1]
//     "gradient_comm_discount": 0.3     // optional, in [0, 1]
//   }
//
// At least one link description (link_bandwidth, intra/inter pair, or
// link_tiers) is required. When link_bandwidth is omitted it defaults to
// the weakest given link, matching the presets' §V convention. Tier spans
// must be positive, strictly increasing, and cover all devices. Unknown
// keys are rejected (typos must not silently fall back to defaults).
#pragma once

#include <string>

#include "cost/machine.h"

namespace pase {

/// Parses one machine-spec document. On failure returns false and, when
/// `error` is non-null, fills it with a structured reason (parser errors
/// carry byte offsets; validation errors name the offending key).
bool parse_machine_spec(const std::string& text, MachineSpec* out,
                        std::string* error);

/// Reads `path` and parses it; unreadable files fail with *error set.
bool load_machine_spec(const std::string& path, MachineSpec* out,
                       std::string* error);

}  // namespace pase
