#include "hetero/hetero.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace pase {

HeteroModel::HeteroModel(const MachineSpec& machine) : machine_(machine) {
  const i64 p = machine_.num_devices;
  PASE_CHECK(p >= 1);
  placement_.resize(static_cast<size_t>(p));
  std::iota(placement_.begin(), placement_.end(), i64{0});
  // stable_sort keeps ties in rank order, making the permutation a pure
  // function of the spec (determinism across thread counts comes for free:
  // the tables are computed once, before any parallel phase).
  std::stable_sort(placement_.begin(), placement_.end(), [&](i64 a, i64 b) {
    return machine_.flops_of(a) > machine_.flops_of(b);
  });
  prefix_flops_.resize(static_cast<size_t>(p));
  prefix_span_.resize(static_cast<size_t>(p));
  double sum = 0.0;
  i64 span = 0;
  for (i64 g = 0; g < p; ++g) {
    const i64 rank = placement_[static_cast<size_t>(g)];
    sum += machine_.flops_of(rank);
    span = std::max(span, rank + 1);
    prefix_flops_[static_cast<size_t>(g)] = sum;
    prefix_span_[static_cast<size_t>(g)] = span;
  }
  const double weakest = machine_.weakest_flops();
  bool flops_uniform = true;
  for (i64 d = 0; d < p; ++d)
    flops_uniform = flops_uniform && machine_.flops_of(d) == weakest;
  bool tiers_flat = true;
  for (const LinkTier& t : machine_.link_tiers)
    tiers_flat = tiers_flat && t.bandwidth == machine_.link_bandwidth;
  uniform_ = flops_uniform && tiers_flat;
}

double HeteroModel::effective_flops(i64 group) const {
  const i64 g =
      std::clamp<i64>(group, 1, static_cast<i64>(prefix_flops_.size()));
  return prefix_flops_[static_cast<size_t>(g - 1)];
}

i64 HeteroModel::placed_span(i64 group) const {
  const i64 g =
      std::clamp<i64>(group, 1, static_cast<i64>(prefix_span_.size()));
  return prefix_span_[static_cast<size_t>(g - 1)];
}

double HeteroModel::group_bandwidth(i64 group) const {
  const i64 span = placed_span(group);
  if (machine_.has_link_tiers()) return machine_.tier_bandwidth(span);
  return span <= machine_.devices_per_node ? machine_.intra_bw()
                                           : machine_.inter_bw();
}

double HeteroModel::compute_scale(i64 group) const {
  const i64 g =
      std::clamp<i64>(group, 1, static_cast<i64>(prefix_flops_.size()));
  return static_cast<double>(g) * machine_.weakest_flops() /
         effective_flops(g);
}

double HeteroModel::group_r(i64 group) const {
  return machine_.weakest_flops() * machine_.compute_efficiency /
         group_bandwidth(group);
}

std::string HeteroModel::signature() const {
  std::string s = machine_.name.empty() ? "machine" : machine_.name;
  s += "/p" + std::to_string(machine_.num_devices);
  if (!uniform_) s += "/het";
  return s;
}

CostParams hetero_cost_params(const MachineSpec& m, CommModelKind kind) {
  HeteroModel h(m);
  CostParams p = CostParams::for_machine(m, kind);
  // The degenerate case: a uniform spec installs nothing, so costs and
  // strategies are bit-identical to the legacy path (the kSimple "attaches
  // no comm model" precedent).
  if (h.uniform()) return p;
  const i64 n = m.num_devices;
  p.hetero_compute_scale.resize(static_cast<size_t>(n) + 1);
  p.hetero_group_r.resize(static_cast<size_t>(n) + 1);
  for (i64 g = 1; g <= n; ++g) {
    p.hetero_compute_scale[static_cast<size_t>(g)] = h.compute_scale(g);
    p.hetero_group_r[static_cast<size_t>(g)] = h.group_r(g);
  }
  // Degree-0 groups do not occur; keep the slot well-defined anyway.
  p.hetero_compute_scale[0] = p.hetero_compute_scale[1];
  p.hetero_group_r[0] = p.hetero_group_r[1];
  return p;
}

std::string machine_signature(const MachineSpec& m) {
  return HeteroModel(m).signature();
}

}  // namespace pase
