#include "hetero/machine_file.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "serve/json.h"

namespace pase {
namespace {

using serve::Json;

bool fail(std::string* error, const std::string& reason) {
  if (error) *error = "machine spec: " + reason;
  return false;
}

/// Positive finite number at `key`, or absent (-> false, no error).
bool read_positive(const Json& j, const std::string& key, double* out,
                   bool* present, std::string* error, bool* ok) {
  *present = false;
  const Json* v = j.get(key);
  if (!v) {
    *ok = true;
    return false;
  }
  if (!v->is_number() || !std::isfinite(v->number) || v->number <= 0) {
    *ok = fail(error, "\"" + key + "\" must be a positive number");
    return false;
  }
  *out = v->number;
  *present = true;
  *ok = true;
  return true;
}

bool read_unit_interval(const Json& j, const std::string& key, double* out,
                        double lo, std::string* error) {
  const Json* v = j.get(key);
  if (!v) return true;
  if (!v->is_number() || !std::isfinite(v->number) || v->number < lo ||
      v->number > 1.0) {
    std::ostringstream os;
    os << "\"" << key << "\" must be a number in [" << lo << ", 1]";
    return fail(error, os.str());
  }
  *out = v->number;
  return true;
}

bool read_count(const Json& j, const std::string& key, i64* out,
                std::string* error) {
  const Json* v = j.get(key);
  if (!v) return true;
  if (!v->is_number() || !std::isfinite(v->number) ||
      v->number != std::floor(v->number) || v->number < 1 ||
      v->number > 1e6) {
    return fail(error, "\"" + key + "\" must be a positive integer");
  }
  *out = static_cast<i64>(v->number);
  return true;
}

}  // namespace

bool parse_machine_spec(const std::string& text, MachineSpec* out,
                        std::string* error) {
  std::string parse_error;
  std::optional<Json> doc = serve::parse_json(text, &parse_error);
  if (!doc) return fail(error, parse_error);
  const Json& j = *doc;
  if (!j.is_object()) return fail(error, "top level must be an object");

  static const std::set<std::string> kKnownKeys = {
      "name",           "devices",
      "devices_per_node", "peak_flops",
      "device_flops",   "link_bandwidth",
      "intra_node_bandwidth", "inter_node_bandwidth",
      "link_tiers",     "link_latency_s",
      "compute_efficiency", "grad_overlap_efficiency",
      "gradient_comm_discount"};
  for (const auto& [key, value] : j.object)
    if (!kKnownKeys.count(key))
      return fail(error, "unknown key \"" + key + "\"");

  MachineSpec m;
  if (const Json* name = j.get("name")) {
    if (!name->is_string()) return fail(error, "\"name\" must be a string");
    m.name = name->string;
  }
  if (m.name.empty()) m.name = "spec";

  if (!j.get("devices")) return fail(error, "\"devices\" is required");
  m.num_devices = 0;
  if (!read_count(j, "devices", &m.num_devices, error)) return false;
  if (!read_count(j, "devices_per_node", &m.devices_per_node, error))
    return false;

  bool ok = false, have_peak = false;
  read_positive(j, "peak_flops", &m.peak_flops, &have_peak, error, &ok);
  if (!ok) return false;

  if (const Json* flops = j.get("device_flops")) {
    if (!flops->is_array())
      return fail(error, "\"device_flops\" must be an array of numbers");
    if (static_cast<i64>(flops->array.size()) != m.num_devices) {
      std::ostringstream os;
      os << "\"device_flops\" has " << flops->array.size()
         << " entries but \"devices\" is " << m.num_devices;
      return fail(error, os.str());
    }
    m.device_flops.reserve(flops->array.size());
    for (size_t i = 0; i < flops->array.size(); ++i) {
      const Json& f = flops->array[i];
      if (!f.is_number() || !std::isfinite(f.number) || f.number <= 0) {
        std::ostringstream os;
        os << "\"device_flops\"[" << i << "] must be a positive number";
        return fail(error, os.str());
      }
      m.device_flops.push_back(f.number);
    }
    // The scalar peak defaults to the fastest device (its §V role is "a
    // representative peak"; weakest_flops() governs the analytical model).
    if (!have_peak)
      m.peak_flops =
          *std::max_element(m.device_flops.begin(), m.device_flops.end());
  } else if (!have_peak) {
    return fail(error, "\"peak_flops\" or \"device_flops\" is required");
  }

  bool have_link = false, have_intra = false, have_inter = false;
  double link_bw = 0.0;
  read_positive(j, "link_bandwidth", &link_bw, &have_link, error, &ok);
  if (!ok) return false;
  read_positive(j, "intra_node_bandwidth", &m.intra_node_bandwidth,
                &have_intra, error, &ok);
  if (!ok) return false;
  read_positive(j, "inter_node_bandwidth", &m.inter_node_bandwidth,
                &have_inter, error, &ok);
  if (!ok) return false;

  // Parsed before link_tiers: it is the default tier latency.
  if (const Json* lat = j.get("link_latency_s")) {
    if (!lat->is_number() || !std::isfinite(lat->number) || lat->number < 0)
      return fail(error, "\"link_latency_s\" must be a non-negative number");
    m.link_latency_s = lat->number;
  }

  if (const Json* tiers = j.get("link_tiers")) {
    if (!tiers->is_array() || tiers->array.empty())
      return fail(error, "\"link_tiers\" must be a non-empty array");
    i64 prev_span = 0;
    for (size_t i = 0; i < tiers->array.size(); ++i) {
      const Json& t = tiers->array[i];
      std::ostringstream at;
      at << "\"link_tiers\"[" << i << "]";
      if (!t.is_object()) return fail(error, at.str() + " must be an object");
      for (const auto& [key, value] : t.object)
        if (key != "span" && key != "bandwidth" && key != "latency_s")
          return fail(error, at.str() + " has unknown key \"" + key + "\"");
      LinkTier tier;
      const Json* span = t.get("span");
      if (!span || !span->is_number() ||
          span->number != std::floor(span->number) || span->number < 1)
        return fail(error, at.str() + ".span must be a positive integer");
      tier.span = static_cast<i64>(span->number);
      if (tier.span <= prev_span)
        return fail(error, "\"link_tiers\" spans must be strictly increasing");
      prev_span = tier.span;
      const Json* bw = t.get("bandwidth");
      if (!bw || !bw->is_number() || !std::isfinite(bw->number) ||
          bw->number <= 0)
        return fail(error, at.str() + ".bandwidth must be a positive number");
      tier.bandwidth = bw->number;
      tier.latency_s = m.link_latency_s;
      if (const Json* lat = t.get("latency_s")) {
        if (!lat->is_number() || !std::isfinite(lat->number) ||
            lat->number < 0)
          return fail(error,
                      at.str() + ".latency_s must be a non-negative number");
        tier.latency_s = lat->number;
      }
      m.link_tiers.push_back(tier);
    }
    if (m.link_tiers.back().span < m.num_devices) {
      std::ostringstream os;
      os << "\"link_tiers\" cover only " << m.link_tiers.back().span
         << " of " << m.num_devices << " devices";
      return fail(error, os.str());
    }
  }

  if (!have_link && !have_intra && !have_inter && m.link_tiers.empty())
    return fail(error,
                "no link given: need \"link_bandwidth\", "
                "\"intra_node_bandwidth\"/\"inter_node_bandwidth\", or "
                "\"link_tiers\"");

  if (have_link) {
    m.link_bandwidth = link_bw;
  } else {
    // §V convention: the analytical B is the weakest link anywhere.
    double weakest = 0.0;
    if (have_intra)
      weakest = weakest > 0 ? std::min(weakest, m.intra_node_bandwidth)
                            : m.intra_node_bandwidth;
    if (have_inter)
      weakest = weakest > 0 ? std::min(weakest, m.inter_node_bandwidth)
                            : m.inter_node_bandwidth;
    for (const LinkTier& t : m.link_tiers)
      weakest = weakest > 0 ? std::min(weakest, t.bandwidth) : t.bandwidth;
    m.link_bandwidth = weakest;
  }

  if (!read_unit_interval(j, "compute_efficiency", &m.compute_efficiency,
                          1e-6, error))
    return false;
  if (!read_unit_interval(j, "grad_overlap_efficiency",
                          &m.grad_overlap_efficiency, 0.0, error))
    return false;
  if (!read_unit_interval(j, "gradient_comm_discount",
                          &m.gradient_comm_discount, 0.0, error))
    return false;

  *out = m;
  return true;
}

bool load_machine_spec(const std::string& path, MachineSpec* out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "cannot read \"" + path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_machine_spec(buf.str(), out, error);
}

}  // namespace pase
