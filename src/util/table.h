// Minimal ASCII table printer used by the benchmark harness to emit the
// paper's tables in a readable, diffable format.
#pragma once

#include <string>
#include <vector>

namespace pase {

class TextTable {
 public:
  /// Optional title printed above the table.
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Horizontal separator row.
  void add_rule();

  /// Render with column widths fit to content.
  std::string to_string() const;
  /// Render to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  struct Row {
    bool rule = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace pase
