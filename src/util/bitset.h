// Dynamic bitset used for vertex-set operations in the ordering and
// dependent-set machinery. DNN graphs have a few hundred nodes, so set
// union/intersection over 64-bit words is far cheaper than sorted vectors.
#pragma once

#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace pase {

/// A fixed-universe dynamic bitset over [0, size).
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(i64 size) : size_(size), words_((size + 63) / 64, 0) {}

  i64 size() const { return size_; }

  bool test(i64 i) const {
    PASE_CHECK(i >= 0 && i < size_);
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1u;
  }

  void set(i64 i) {
    PASE_CHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i >> 6)] |= (u64{1} << (i & 63));
  }

  void reset(i64 i) {
    PASE_CHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i >> 6)] &= ~(u64{1} << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  i64 count() const {
    i64 c = 0;
    for (u64 w : words_) c += __builtin_popcountll(w);
    return c;
  }

  bool any() const {
    for (u64 w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  Bitset& operator|=(const Bitset& o) {
    PASE_CHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  Bitset& operator&=(const Bitset& o) {
    PASE_CHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// Set difference: remove all bits present in o.
  Bitset& operator-=(const Bitset& o) {
    PASE_CHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  bool operator==(const Bitset& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }

  bool intersects(const Bitset& o) const {
    PASE_CHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// Indices of set bits, ascending.
  std::vector<i64> to_vector() const {
    std::vector<i64> out;
    out.reserve(static_cast<size_t>(count()));
    for (i64 i = 0; i < size_; ++i)
      if (test(i)) out.push_back(i);
    return out;
  }

  /// Iterate set bits ascending; f(i64 index).
  template <typename F>
  void for_each(F&& f) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      u64 word = words_[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        f(static_cast<i64>(w * 64 + static_cast<size_t>(bit)));
        word &= word - 1;
      }
    }
  }

 private:
  i64 size_ = 0;
  std::vector<u64> words_;
};

}  // namespace pase
