// Hash utilities: combine, range hashing. Used to key DP substrategy tables.
#pragma once

#include <functional>
#include <vector>

#include "util/types.h"

namespace pase {

/// Boost-style hash combine with 64-bit mixing.
inline u64 hash_combine(u64 seed, u64 v) {
  // splitmix64 finalizer for good avalanche behaviour.
  v += 0x9e3779b97f4a7c15ull + seed;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

/// Hash a contiguous range of trivially hashable integers.
template <typename T>
u64 hash_range(const T* data, size_t n) {
  u64 h = 0x2545f4914f6cdd1dull;
  for (size_t i = 0; i < n; ++i) h = hash_combine(h, static_cast<u64>(data[i]));
  return h;
}

template <typename T>
u64 hash_vector(const std::vector<T>& v) {
  return hash_range(v.data(), v.size());
}

/// std::hash adaptor for vectors of integers.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    return static_cast<size_t>(hash_vector(v));
  }
};

}  // namespace pase
