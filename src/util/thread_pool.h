// Work-stealing thread pool used by the search engines (DP solver,
// exhaustive search, multi-chain MCMC) to fan independent cost evaluations
// across cores.
//
// Thread-safety and determinism contract:
//  * submit() and parallel_for() may be called from any thread, including
//    from inside a pool task (nested submission is supported; a task that
//    must wait on another task should do so via wait(), which executes
//    pending work instead of blocking a worker).
//  * parallel_for() decomposes [begin, end) into fixed chunks by index, so
//    the mapping of iteration -> chunk is a pure function of (begin, end,
//    grain) and never depends on the number of threads or on scheduling.
//    Callers that write only to disjoint, index-addressed slots therefore
//    produce bit-identical results at any thread count — this is the
//    property the DP solver's determinism guarantee rests on.
//  * Exceptions thrown by tasks are captured: submit() rethrows from the
//    returned future; parallel_for() rethrows the exception of the
//    *lowest-indexed* failing chunk (again independent of scheduling).
//  * All public members are safe to call concurrently. The pool itself
//    must outlive every future obtained from it; the destructor drains
//    queued tasks before joining.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/types.h"

namespace pase {

class TraceSession;

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1). A 1-thread pool still works (parallel_for degrades to a
  /// sequential loop on the calling thread).
  explicit ThreadPool(i64 num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  i64 num_threads() const { return static_cast<i64>(workers_.size()); }

  /// Resolves the `0 = hardware concurrency` convention used by options
  /// structs (DpOptions::num_threads, pase_cli --threads).
  static i64 resolve(i64 requested);

  /// Schedules `f` and returns a future for its result. The task runs on
  /// whichever worker dequeues it; if called from inside a pool task the
  /// new task is pushed to the submitting worker's own deque (and may be
  /// stolen by idle workers — the "work-stealing" part).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    push([task] { (*task)(); });
    return fut;
  }

  /// Runs body(chunk_begin, chunk_end) over a fixed, scheduling-independent
  /// decomposition of [begin, end) into chunks of `grain` indices (last
  /// chunk may be short). The calling thread participates. Blocks until all
  /// chunks have run; rethrows the lowest-chunk exception if any body threw
  /// (remaining chunks are skipped once a failure is recorded).
  ///
  /// `cancel` makes the loop cooperatively cancellable: when non-null and
  /// set, chunks not yet started are skipped (already-running bodies finish
  /// or observe the token themselves). Cancellation only ever *abandons*
  /// work, so a caller that checks the token after the call (as the DP
  /// solver's deadline/watchdog path does) keeps determinism: either the
  /// loop completed every chunk, or the caller discards the whole result.
  void parallel_for(i64 begin, i64 end, i64 grain,
                    const std::function<void(i64, i64)>& body,
                    const std::atomic<bool>* cancel = nullptr);

  /// Waits for `fut` while helping execute pending pool work, so a task may
  /// submit subtasks and wait on them without deadlocking even on a
  /// 1-thread pool. Returns fut.get() (rethrowing its exception, if any).
  template <typename T>
  T wait(std::future<T>& fut) {
    while (fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one()) std::this_thread::yield();
    }
    return fut.get();
  }

  /// Executes one pending task if any is available (own deque first, then
  /// stealing from the other workers). Returns false when every deque was
  /// empty. Public so callers can help drain the pool while polling.
  bool run_one();

  /// Attaches (or detaches, with nullptr) a trace session: every task the
  /// pool executes is then recorded as a "task" span on the executing
  /// thread's lane. The session must outlive its attachment; task spans are
  /// scheduling-dependent and therefore land in volatile trace/gauge data
  /// only, never in structural metrics (see src/obs/metrics.h).
  void set_trace(TraceSession* trace) {
    trace_.store(trace, std::memory_order_release);
  }

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  void push(std::function<void()> task);
  void worker_main(i64 slot);
  bool try_pop(i64 slot, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  i64 queued_ = 0;  ///< tasks pushed but not yet popped (guarded by idle_mu_)
  bool stop_ = false;

  std::atomic<u64> rr_{0};  ///< round-robin cursor for external submissions
  std::atomic<TraceSession*> trace_{nullptr};
};

}  // namespace pase
