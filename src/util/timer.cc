#include "util/timer.h"

#include <cmath>
#include <cstdio>

namespace pase {

std::string format_mins_secs(double seconds) {
  if (seconds < 0) seconds = 0;
  const i64 total_ms = static_cast<i64>(std::llround(seconds * 1000.0));
  const i64 mins = total_ms / 60000;
  const i64 secs = (total_ms % 60000) / 1000;
  const i64 ms = total_ms % 1000;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld.%03lld",
                static_cast<long long>(mins), static_cast<long long>(secs),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace pase
