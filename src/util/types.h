// Fundamental integer aliases and small helpers used across PaSE.
#pragma once

#include <cstdint>
#include <cstddef>

namespace pase {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Integer ceiling division for non-negative operands.
constexpr i64 ceil_div(i64 a, i64 b) { return (a + b - 1) / b; }

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(i64 x) { return x > 0 && (x & (x - 1)) == 0; }

/// Largest power of two <= x (x >= 1).
constexpr i64 floor_pow2(i64 x) {
  i64 r = 1;
  while (r * 2 <= x) r *= 2;
  return r;
}

}  // namespace pase
