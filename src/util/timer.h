// Wall-clock timer and the paper's mins:secs.msecs duration formatting
// (Table I reports times like "0:14.398" and "31:23.187").
#pragma once

#include <chrono>
#include <string>

#include "util/types.h"

namespace pase {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  i64 elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Format seconds as "M:SS.mmm" matching the paper's Table I unit.
std::string format_mins_secs(double seconds);

}  // namespace pase
