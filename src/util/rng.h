// Deterministic seedable RNG used by the MCMC search and property tests.
#pragma once

#include "util/check.h"
#include "util/types.h"

namespace pase {

/// xoshiro256** — fast, high-quality, deterministic across platforms
/// (std::mt19937 distributions are not portable across standard libraries).
class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  u64 uniform(u64 n) {
    PASE_CHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (~u64{0} - n + 1) % n;
    for (;;) {
      const u64 r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4];
};

}  // namespace pase
