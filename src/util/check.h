// Lightweight runtime contract checks (always on, independent of NDEBUG).
//
// Following the C++ Core Guidelines (I.6/E.12), precondition violations are
// programming errors: we print a diagnostic and abort rather than throwing,
// since no caller can meaningfully recover from a broken invariant.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pase::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "PASE_CHECK failed: %s at %s:%d%s%s\n", cond, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pase::detail

#define PASE_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::pase::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define PASE_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond))                                                      \
      ::pase::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
