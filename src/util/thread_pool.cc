#include "util/thread_pool.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace pase {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// nested submissions land on the submitting worker's own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  i64 slot = -1;
};
thread_local WorkerIdentity tls_identity;

}  // namespace

i64 ThreadPool::resolve(i64 requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<i64>(hw) : 1;
}

ThreadPool::ThreadPool(i64 num_threads) {
  const i64 n = resolve(num_threads);
  deques_.reserve(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i)
    deques_.push_back(std::make_unique<WorkerDeque>());
  workers_.reserve(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::push(std::function<void()> task) {
  size_t target;
  if (tls_identity.pool == this && tls_identity.slot >= 0) {
    target = static_cast<size_t>(tls_identity.slot);
  } else {
    target = static_cast<size_t>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                 deques_.size());
  }
  {
    std::lock_guard<std::mutex> lk(deques_[target]->mu);
    deques_[target]->q.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    ++queued_;
  }
  idle_cv_.notify_one();
}

bool ThreadPool::try_pop(i64 slot, std::function<void()>& out) {
  const i64 n = static_cast<i64>(deques_.size());
  bool found = false;
  // Own deque first (LIFO end for locality), then steal from the others'
  // FIFO end, starting just past our slot to spread contention.
  if (slot >= 0) {
    WorkerDeque& own = *deques_[static_cast<size_t>(slot)];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.q.empty()) {
      out = std::move(own.q.back());
      own.q.pop_back();
      found = true;
    }
  }
  for (i64 k = 0; !found && k < n; ++k) {
    const size_t victim = static_cast<size_t>((slot + 1 + k) % n);  // slot>=-1
    if (slot >= 0 && victim == static_cast<size_t>(slot)) continue;
    WorkerDeque& d = *deques_[victim];
    std::lock_guard<std::mutex> lk(d.mu);
    if (!d.q.empty()) {
      out = std::move(d.q.front());
      d.q.pop_front();
      found = true;
    }
  }
  if (found) {
    std::lock_guard<std::mutex> lk(idle_mu_);
    --queued_;
  }
  return found;
}

bool ThreadPool::run_one() {
  const i64 slot = tls_identity.pool == this ? tls_identity.slot : -1;
  std::function<void()> task;
  if (!try_pop(slot, task)) return false;
  {
    TraceSession::Span s(trace_.load(std::memory_order_acquire), "task");
    task();
  }
  return true;
}

void ThreadPool::worker_main(i64 slot) {
  tls_identity = {this, slot};
  for (;;) {
    std::function<void()> task;
    if (try_pop(slot, task)) {
      {
        TraceSession::Span s(trace_.load(std::memory_order_acquire), "task");
        task();
      }
      continue;
    }
    std::unique_lock<std::mutex> lk(idle_mu_);
    idle_cv_.wait(lk, [&] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::parallel_for(i64 begin, i64 end, i64 grain,
                              const std::function<void(i64, i64)>& body,
                              const std::atomic<bool>* cancel) {
  if (end <= begin) return;
  grain = std::max<i64>(1, grain);
  const i64 span = end - begin;
  const i64 nchunks = ceil_div(span, grain);

  struct Shared {
    std::atomic<i64> next{0};
    std::atomic<i64> done{0};
    std::mutex err_mu;
    std::exception_ptr err;
    i64 err_chunk = -1;
  };
  auto shared = std::make_shared<Shared>();

  auto drain = [shared, begin, end, grain, nchunks, &body, cancel] {
    for (;;) {
      const i64 c = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const i64 b0 = begin + c * grain;
      const i64 b1 = std::min(end, b0 + grain);
      try {
        // Cancelled loops skip chunks not yet started; the caller is
        // responsible for discarding the (partial) result.
        if (!cancel || !cancel->load(std::memory_order_relaxed)) body(b0, b1);
      } catch (...) {
        // Every chunk runs to completion; the *lowest* failing chunk wins,
        // so the propagated exception is scheduling-independent.
        std::lock_guard<std::mutex> lk(shared->err_mu);
        if (shared->err_chunk < 0 || c < shared->err_chunk) {
          shared->err = std::current_exception();
          shared->err_chunk = c;
        }
      }
      shared->done.fetch_add(1, std::memory_order_acq_rel);
    }
  };

  // Helpers for every worker; `body` stays alive because this frame blocks
  // until all chunks are done, and the helpers only touch it while a chunk
  // is still unclaimed or running.
  const i64 helpers =
      std::min<i64>(num_threads(), std::max<i64>(0, nchunks - 1));
  for (i64 i = 0; i < helpers; ++i) push(drain);
  drain();  // the calling thread participates
  while (shared->done.load(std::memory_order_acquire) < nchunks) {
    if (!run_one()) std::this_thread::yield();
  }
  if (shared->err) std::rethrow_exception(shared->err);
}

}  // namespace pase
