#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pase {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::add_rule() { rows_.push_back(Row{true, {}}); }

std::string TextTable::to_string() const {
  // Compute column widths.
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<size_t> width(ncols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  account(header_);
  for (const auto& r : rows_)
    if (!r.rule) account(r.cells);

  std::ostringstream os;
  auto emit_rule = [&] {
    os << '+';
    for (size_t i = 0; i < ncols; ++i) {
      for (size_t j = 0; j < width[i] + 2; ++j) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto emit_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c;
      for (size_t j = c.size(); j < width[i] + 1; ++j) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  emit_rule();
  if (!header_.empty()) {
    emit_cells(header_);
    emit_rule();
  }
  for (const auto& r : rows_) {
    if (r.rule)
      emit_rule();
    else
      emit_cells(r.cells);
  }
  emit_rule();
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace pase
