// Enumeration of the valid configuration set C(v) for a node (paper §II):
// all d-tuples with product <= p, restricted here to power-of-two factors and
// to dims the operator marks splittable (filter dims are never split — the
// same restriction the paper's prototype applies, which matches the paper's
// reported |C(v)| of ~10-30 at p=8 and ~100 at p=64 for InceptionV3).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "config/config.h"
#include "graph/node.h"
#include "util/types.h"

namespace pase {

/// Which classes of iteration dims the odometer may split. The default
/// (batch + param) reproduces the legacy batch/parameter space bitwise;
/// spatial and channel open the dims the paper's prototype keeps serial
/// (LBANN-style height/width and filter/per-head channel splits).
struct SplitDims {
  bool batch = true;    ///< the "b" dim (data parallelism)
  bool param = true;    ///< every other legacy-splittable dim
  bool spatial = false; ///< locked H/W on image ops, seq dim on seq ops
  bool channel = false; ///< locked filter taps (r/s) and per-head channels

  bool operator==(const SplitDims& o) const {
    return batch == o.batch && param == o.param && spatial == o.spatial &&
           channel == o.channel;
  }
  bool operator!=(const SplitDims& o) const { return !(*this == o); }

  /// True iff this is exactly the legacy space (the default).
  bool legacy() const { return batch && param && !spatial && !channel; }

  /// Canonical spelling: enabled classes in the fixed order
  /// "batch,param,spatial,channel" ("none" when all are off). Equivalent
  /// user spellings render identically, so cache keys built on this string
  /// collapse "spatial,batch" and "batch,spatial" into one entry.
  std::string to_string() const;
};

/// Parses a comma-separated class list ("batch,param,spatial", "all",
/// "none"); nullopt on unknown class names or empty elements.
std::optional<SplitDims> parse_split_dims(const std::string& spec);

/// The split class of one iteration dim of a node, independent of whether
/// the builder marked it splittable: kBatch for "b"; kSpatial for image
/// H/W and the sequence dim of sequence ops; kChannel for conv/pool filter
/// taps and attention per-head query channels; kParam for every other
/// builder-splittable dim; kNever for dims no gate may open (e.g. the
/// attention sequence dim, which would shard the attention pattern itself).
enum class SplitDimClass { kBatch, kParam, kSpatial, kChannel, kNever };
SplitDimClass split_dim_class(const Node& node, i64 dim);

/// Whether the odometer may split `dim` of `node` under `dims`. Dims the
/// builder marked splittable are gated by their batch/param class —
/// builder-level spatial opt-ins (model files with `spatial=1`,
/// allow_spatial_split call sites) stay open under every gate setting, so
/// the default gates reproduce the builder's space bitwise. Locked dims
/// open only when their spatial/channel gate is on.
bool dim_splittable(const Node& node, i64 dim, const SplitDims& dims);

struct ConfigOptions {
  i64 max_devices = 1;  ///< p

  /// Which dim classes the enumeration may split (see SplitDims). The
  /// default reproduces the legacy space bitwise.
  SplitDims split_dims;

  /// Restrict split factors to powers of two (real clusters come in powers
  /// of two and it keeps K near the paper's reported sizes).
  bool powers_of_two_only = true;

  /// Require the full machine to be used (product == p) rather than <= p.
  /// The paper uses <= p; full-use is provided for ablation.
  bool require_full_use = false;

  /// Never split a dim more ways than its extent.
  bool cap_by_extent = true;

  /// Optional per-configuration admission predicate, applied after the
  /// structural rules. Used e.g. for per-device memory caps (paper §I:
  /// large models cannot replicate their parameters, so data-parallel
  /// configurations must be excluded outright); see
  /// memory_config_filter() in sim/memory.h.
  std::function<bool(const Node&, const Config&)> filter;
};

/// Enumerates C(v) for the given iteration space. Factors for non-splittable
/// dims are fixed to 1. The serial configuration (all ones) is always first
/// (unless require_full_use excludes it), making tie-breaking deterministic.
/// The per-node `filter` and the split-dim gates are not applied here
/// (there is no node to classify dims against).
std::vector<Config> enumerate_configs(const IterSpace& space,
                                      const ConfigOptions& opts);

/// Per-node variant: applies the opts.split_dims gates (via
/// dim_splittable, so locked spatial/channel dims open when enabled) and
/// then `opts.filter`. May return an empty list when the filter rejects
/// every configuration (the solver then reports the problem infeasible).
std::vector<Config> enumerate_node_configs(const Node& node,
                                           const ConfigOptions& opts);

/// Per-node configuration lists for a whole graph, indexed by NodeId.
class ConfigCache {
 public:
  ConfigCache() = default;
  ConfigCache(const class Graph& graph, const ConfigOptions& opts);

  const std::vector<Config>& at(NodeId id) const {
    return lists_[static_cast<size_t>(id)];
  }
  i64 num_nodes() const { return static_cast<i64>(lists_.size()); }

  /// K = max_v |C(v)| (paper's complexity parameter).
  i64 max_configs() const;

 private:
  std::vector<std::vector<Config>> lists_;
};

}  // namespace pase
