// Enumeration of the valid configuration set C(v) for a node (paper §II):
// all d-tuples with product <= p, restricted here to power-of-two factors and
// to dims the operator marks splittable (filter dims are never split — the
// same restriction the paper's prototype applies, which matches the paper's
// reported |C(v)| of ~10-30 at p=8 and ~100 at p=64 for InceptionV3).
#pragma once

#include <functional>
#include <vector>

#include "config/config.h"
#include "graph/node.h"
#include "util/types.h"

namespace pase {

struct ConfigOptions {
  i64 max_devices = 1;  ///< p

  /// Restrict split factors to powers of two (real clusters come in powers
  /// of two and it keeps K near the paper's reported sizes).
  bool powers_of_two_only = true;

  /// Require the full machine to be used (product == p) rather than <= p.
  /// The paper uses <= p; full-use is provided for ablation.
  bool require_full_use = false;

  /// Never split a dim more ways than its extent.
  bool cap_by_extent = true;

  /// Optional per-configuration admission predicate, applied after the
  /// structural rules. Used e.g. for per-device memory caps (paper §I:
  /// large models cannot replicate their parameters, so data-parallel
  /// configurations must be excluded outright); see
  /// memory_config_filter() in sim/memory.h.
  std::function<bool(const Node&, const Config&)> filter;
};

/// Enumerates C(v) for the given iteration space. Factors for non-splittable
/// dims are fixed to 1. The serial configuration (all ones) is always first
/// (unless require_full_use excludes it), making tie-breaking deterministic.
/// The per-node `filter` is not applied here (there is no node).
std::vector<Config> enumerate_configs(const IterSpace& space,
                                      const ConfigOptions& opts);

/// Per-node variant: additionally applies `opts.filter`. May return an
/// empty list when the filter rejects every configuration (the solver then
/// reports the problem infeasible).
std::vector<Config> enumerate_node_configs(const Node& node,
                                           const ConfigOptions& opts);

/// Per-node configuration lists for a whole graph, indexed by NodeId.
class ConfigCache {
 public:
  ConfigCache() = default;
  ConfigCache(const class Graph& graph, const ConfigOptions& opts);

  const std::vector<Config>& at(NodeId id) const {
    return lists_[static_cast<size_t>(id)];
  }
  i64 num_nodes() const { return static_cast<i64>(lists_.size()); }

  /// K = max_v |C(v)| (paper's complexity parameter).
  i64 max_configs() const;

 private:
  std::vector<std::vector<Config>> lists_;
};

}  // namespace pase
