// Parallelization configurations (paper §II): a configuration C_v of a node v
// is a d-tuple of positive integers describing how each dim of v's iteration
// space is split across devices; valid when the product of the entries is at
// most p.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/hash.h"
#include "util/types.h"

namespace pase {

/// A parallelization configuration. Fixed capacity avoids per-config heap
/// allocations in the DP inner loops; DNN iteration spaces have rank <= 8.
class Config {
 public:
  static constexpr i64 kMaxRank = 8;

  Config() = default;
  explicit Config(std::initializer_list<u16> factors) {
    PASE_CHECK(static_cast<i64>(factors.size()) <= kMaxRank);
    for (u16 f : factors) push_back(f);
  }

  i64 rank() const { return rank_; }

  u16 operator[](i64 i) const {
    PASE_CHECK(i >= 0 && i < rank_);
    return c_[static_cast<size_t>(i)];
  }

  void push_back(u16 f) {
    PASE_CHECK(rank_ < kMaxRank && f >= 1);
    c_[static_cast<size_t>(rank_++)] = f;
  }

  void set(i64 i, u16 f) {
    PASE_CHECK(i >= 0 && i < rank_ && f >= 1);
    c_[static_cast<size_t>(i)] = f;
  }

  /// Degree of parallelism: product of all split factors.
  i64 degree() const {
    i64 d = 1;
    for (i64 i = 0; i < rank_; ++i) d *= c_[static_cast<size_t>(i)];
    return d;
  }

  /// A rank-d configuration with every factor 1 (fully serial).
  static Config ones(i64 rank) {
    Config c;
    for (i64 i = 0; i < rank; ++i) c.push_back(1);
    return c;
  }

  bool operator==(const Config& o) const {
    if (rank_ != o.rank_) return false;
    for (i64 i = 0; i < rank_; ++i)
      if (c_[static_cast<size_t>(i)] != o.c_[static_cast<size_t>(i)])
        return false;
    return true;
  }
  bool operator!=(const Config& o) const { return !(*this == o); }

  u64 hash() const { return hash_range(c_.data(), static_cast<size_t>(rank_)); }

  /// "(32, 1, 1, 1, 1, 1, 1)" — Table II format.
  std::string to_string() const;

 private:
  i64 rank_ = 0;
  std::array<u16, kMaxRank> c_{};
};

/// A complete parallelization strategy phi: one configuration per node,
/// indexed by NodeId.
using Strategy = std::vector<Config>;

}  // namespace pase
