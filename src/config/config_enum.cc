#include "config/config_enum.h"

#include <algorithm>
#include <sstream>

#include "graph/graph.h"
#include "util/check.h"

namespace pase {

std::string Config::to_string() const {
  std::ostringstream os;
  os << '(';
  for (i64 i = 0; i < rank(); ++i) {
    if (i) os << ", ";
    os << (*this)[i];
  }
  os << ')';
  return os.str();
}

namespace {

void enumerate_rec(const IterSpace& space, const ConfigOptions& opts, i64 dim,
                   i64 degree_so_far, Config& cur, std::vector<Config>& out) {
  if (dim == space.rank()) {
    if (!opts.require_full_use || degree_so_far == opts.max_devices)
      out.push_back(cur);
    return;
  }
  const IterDim& d = space.dim(dim);
  const i64 budget = opts.max_devices / degree_so_far;
  i64 max_factor = d.splittable ? budget : 1;
  if (opts.cap_by_extent) max_factor = std::min(max_factor, d.size);
  for (i64 f = 1; f <= max_factor;
       f = opts.powers_of_two_only ? f * 2 : f + 1) {
    cur.set(dim, static_cast<u16>(f));
    enumerate_rec(space, opts, dim + 1, degree_so_far * f, cur, out);
  }
  cur.set(dim, 1);
}

}  // namespace

std::vector<Config> enumerate_configs(const IterSpace& space,
                                      const ConfigOptions& opts) {
  PASE_CHECK(opts.max_devices >= 1);
  std::vector<Config> out;
  Config cur = Config::ones(space.rank());
  enumerate_rec(space, opts, 0, 1, cur, out);
  PASE_CHECK_MSG(!out.empty(), "configuration set must not be empty");
  return out;
}

std::vector<Config> enumerate_node_configs(const Node& node,
                                           const ConfigOptions& opts) {
  std::vector<Config> out = enumerate_configs(node.space, opts);
  if (opts.filter) {
    std::erase_if(out,
                  [&](const Config& c) { return !opts.filter(node, c); });
  }
  return out;
}

ConfigCache::ConfigCache(const Graph& graph, const ConfigOptions& opts) {
  lists_.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const Node& n : graph.nodes())
    lists_.push_back(enumerate_node_configs(n, opts));
}

i64 ConfigCache::max_configs() const {
  i64 k = 0;
  for (const auto& l : lists_) k = std::max(k, static_cast<i64>(l.size()));
  return k;
}

}  // namespace pase
