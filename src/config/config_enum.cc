#include "config/config_enum.h"

#include <algorithm>
#include <sstream>

#include "graph/graph.h"
#include "util/check.h"

namespace pase {

std::string Config::to_string() const {
  std::ostringstream os;
  os << '(';
  for (i64 i = 0; i < rank(); ++i) {
    if (i) os << ", ";
    os << (*this)[i];
  }
  os << ')';
  return os.str();
}

std::string SplitDims::to_string() const {
  std::string out;
  auto add = [&](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (batch) add("batch");
  if (param) add("param");
  if (spatial) add("spatial");
  if (channel) add("channel");
  return out.empty() ? "none" : out;
}

std::optional<SplitDims> parse_split_dims(const std::string& spec) {
  SplitDims dims;
  dims.batch = dims.param = false;
  if (spec == "none") return dims;
  if (spec == "all") {
    dims.batch = dims.param = dims.spatial = dims.channel = true;
    return dims;
  }
  size_t at = 0;
  while (at <= spec.size()) {
    const size_t comma = std::min(spec.find(',', at), spec.size());
    const std::string part = spec.substr(at, comma - at);
    if (part == "batch") dims.batch = true;
    else if (part == "param") dims.param = true;
    else if (part == "spatial") dims.spatial = true;
    else if (part == "channel") dims.channel = true;
    else return std::nullopt;  // unknown class or empty element
    at = comma + 1;
  }
  return dims;
}

SplitDimClass split_dim_class(const Node& node, i64 dim) {
  const IterDim& d = node.space.dim(dim);
  if (d.name == "b") return SplitDimClass::kBatch;
  const bool windowed =
      node.kind == OpKind::kConv2D || node.kind == OpKind::kPool;
  if (windowed) {
    // Conv2D/Pool (b, c, h, w, [n,] r, s): h/w are the spatial stencil
    // dims, r/s the filter-window taps (LBANN's filter splits).
    if (d.name == "h" || d.name == "w") return SplitDimClass::kSpatial;
    if (d.name == "r" || d.name == "s") return SplitDimClass::kChannel;
  } else if (node.kind == OpKind::kAttention) {
    // Splitting s would shard the attention pattern itself — no gate opens
    // it; c is the per-head query channel (Megatron-style head-internal
    // tensor parallelism).
    if (d.name == "s") return SplitDimClass::kNever;
    if (d.name == "c") return SplitDimClass::kChannel;
  } else if (d.name == "h" || d.name == "w" || d.name == "s") {
    // Pointwise image ops lock h/w, sequence ops lock s: both are the
    // 1-D "spatial" axis of their data layout. Opening them alongside the
    // stencil ops keeps producer/consumer partitions aligned so spatial
    // strategies don't pay a full reshard on every edge.
    return SplitDimClass::kSpatial;
  }
  return d.splittable ? SplitDimClass::kParam : SplitDimClass::kNever;
}

bool dim_splittable(const Node& node, i64 dim, const SplitDims& dims) {
  const SplitDimClass cls = split_dim_class(node, dim);
  if (node.space.dim(dim).splittable) {
    // Builder-splittable: gated by the batch/param class. A spatial or
    // channel class here means the builder opted the dim in explicitly
    // (model files with spatial=1, allow_spatial_split call sites) — that
    // opt-in is honored under every gate setting, keeping the default
    // gates bitwise-identical to the builder's space.
    if (cls == SplitDimClass::kBatch) return dims.batch;
    if (cls == SplitDimClass::kParam) return dims.param;
    return true;
  }
  if (cls == SplitDimClass::kSpatial) return dims.spatial;
  if (cls == SplitDimClass::kChannel) return dims.channel;
  return false;
}

namespace {

/// `mask[i]`, not space.dim(i).splittable, decides whether dim i may take
/// factors > 1: the per-node entry points widen/narrow the mask by split
/// class while the space-only entry point reproduces the builder flags.
void enumerate_rec(const IterSpace& space, const ConfigOptions& opts,
                   const std::vector<bool>& mask, i64 dim, i64 degree_so_far,
                   Config& cur, std::vector<Config>& out) {
  if (dim == space.rank()) {
    if (!opts.require_full_use || degree_so_far == opts.max_devices)
      out.push_back(cur);
    return;
  }
  const IterDim& d = space.dim(dim);
  const i64 budget = opts.max_devices / degree_so_far;
  i64 max_factor = mask[static_cast<size_t>(dim)] ? budget : 1;
  if (opts.cap_by_extent) max_factor = std::min(max_factor, d.size);
  for (i64 f = 1; f <= max_factor;
       f = opts.powers_of_two_only ? f * 2 : f + 1) {
    cur.set(dim, static_cast<u16>(f));
    enumerate_rec(space, opts, mask, dim + 1, degree_so_far * f, cur, out);
  }
  cur.set(dim, 1);
}

std::vector<Config> enumerate_masked(const IterSpace& space,
                                     const ConfigOptions& opts,
                                     const std::vector<bool>& mask) {
  PASE_CHECK(opts.max_devices >= 1);
  std::vector<Config> out;
  Config cur = Config::ones(space.rank());
  enumerate_rec(space, opts, mask, 0, 1, cur, out);
  PASE_CHECK_MSG(!out.empty(), "configuration set must not be empty");
  return out;
}

}  // namespace

std::vector<Config> enumerate_configs(const IterSpace& space,
                                      const ConfigOptions& opts) {
  std::vector<bool> mask(static_cast<size_t>(space.rank()));
  for (i64 i = 0; i < space.rank(); ++i)
    mask[static_cast<size_t>(i)] = space.dim(i).splittable;
  return enumerate_masked(space, opts, mask);
}

std::vector<Config> enumerate_node_configs(const Node& node,
                                           const ConfigOptions& opts) {
  std::vector<bool> mask(static_cast<size_t>(node.space.rank()));
  for (i64 i = 0; i < node.space.rank(); ++i)
    mask[static_cast<size_t>(i)] = dim_splittable(node, i, opts.split_dims);
  std::vector<Config> out = enumerate_masked(node.space, opts, mask);
  if (opts.filter) {
    std::erase_if(out,
                  [&](const Config& c) { return !opts.filter(node, c); });
  }
  return out;
}

ConfigCache::ConfigCache(const Graph& graph, const ConfigOptions& opts) {
  lists_.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const Node& n : graph.nodes())
    lists_.push_back(enumerate_node_configs(n, opts));
}

i64 ConfigCache::max_configs() const {
  i64 k = 0;
  for (const auto& l : lists_) k = std::max(k, static_cast<i64>(l.size()));
  return k;
}

}  // namespace pase
