// Collective-communication algorithm library: prices all-reduce,
// all-gather, reduce-scatter, broadcast and all-to-all under several
// classic algorithms — ring, binomial tree, recursive halving-doubling,
// and a hierarchical two-level (intra-node, then inter-node) composition —
// each as an alpha-beta (latency + per-byte) cost over the machine's
// intra-/inter-node links.
//
// Why it exists: the paper's cost functions and the Fig. 6 simulator assume
// a single collective shape (ring wire bytes over one flat link). Real
// collectives switch algorithms with message size, group size and topology
// — NCCL/MPI pick trees or halving-doubling for latency-bound small
// messages and rings or hierarchical compositions for bandwidth-bound large
// ones — and Mesh-TensorFlow / FlexFlow both attribute strategy-ranking
// shifts to exactly this interaction. CommModelKind::kAuto models it: the
// cheapest algorithm per (collective, bytes, group) is selected by argmin
// over the closed forms below and memoized.
//
// Cost conventions (n = logical tensor bytes, g = group size,
// L = ceil(log2 g), alpha = per-message link latency, 1/bw = per-byte
// time of the link class a flat algorithm crosses — intra-node when the
// group fits inside one host, inter-node otherwise):
//
//   collective      ring                      tree (binomial)     halving-doubling
//   all-reduce      2(g-1)a + 2n(g-1)/g /bw   2L(a + n/bw)        2La + 2n(g-1)/g /bw
//   all-gather /
//   reduce-scatter  (g-1)a +  n(g-1)/g /bw     L(a + n/bw)         La +  n(g-1)/g /bw
//   broadcast       (L+g-1)a + 2n(g-1)/g /bw   L(a + n/bw)        2La + 2n(g-1)/g /bw
//   all-to-all      (g-1)(a + n/g /bw)         La + L n/2 /bw     = ring (pairwise)
//
// (ring broadcast is the van-de-Geijn scatter + all-gather; tree all-to-all
// is Bruck's algorithm; halving-doubling all-to-all has no standard form
// and falls back to pairwise exchange.) The hierarchical algorithm splits a
// multi-node group into an intra-node phase over min(g, devices_per_node)
// ranks on the intra link and an inter-node phase over the node count on
// the inter link (see hierarchical_phases(); for single-node groups it
// degenerates to the intra-node ring).
//
// CommModelKind::kSimple reproduces the legacy pricing bit-exactly — the
// flat-link + hierarchical-ring closed forms the pre-comm-library simulator
// hard-coded — so reproduction benches keep their output unchanged; it is
// the default everywhere.
//
// Thread-safety: const member functions are safe to call concurrently; the
// kAuto choice memo is guarded by an internal mutex, and because every
// closed form is a pure function of (collective, bytes, group), memoized
// results are bit-identical regardless of which thread populated an entry
// first — the parallel DP's determinism contract is preserved.
#pragma once

#include <array>
#include <atomic>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <mutex>

#include "cost/machine.h"
#include "util/types.h"

namespace pase {

class MetricsRegistry;

/// The collective operations strategies induce: partial-sum and gradient
/// syncs are all-reduces; parameter resharding uses all-gather /
/// reduce-scatter; broadcast and all-to-all round out the library for
/// pipeline and expert-parallel layouts.
enum class Collective {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kBroadcast,
  kAllToAll,
};

/// The algorithm families (see the file comment for their closed forms).
enum class CommAlgo { kRing, kTree, kHalvingDoubling, kHierarchical };

/// Pricing mode: kSimple = legacy bit-exact pricing (default), kAuto =
/// cheapest algorithm per (collective, bytes, group), the rest force one
/// algorithm family for every collective.
enum class CommModelKind {
  kSimple,
  kAuto,
  kRing,
  kTree,
  kHalvingDoubling,
  kHierarchical,
};

const char* collective_name(Collective c);
const char* comm_algo_name(CommAlgo a);
const char* comm_model_kind_name(CommModelKind k);

/// Parses the CLI spelling {simple|auto|ring|tree|hd|hier}; nullopt on
/// anything else.
std::optional<CommModelKind> parse_comm_model_kind(const std::string& s);

/// The two phases of the hierarchical composition, in seconds. For
/// single-node groups inter_s is 0.
struct CommPhases {
  double intra_s = 0.0;
  double inter_s = 0.0;
  double total() const { return intra_s + inter_s; }
};

/// Prices collectives on one machine. Immutable after construction apart
/// from the internal kAuto memo (see the file comment for thread-safety).
/// Built from a MachineSpec, so fault-layer perturbations (scale_links,
/// stragglers) compose automatically: a degraded spec yields a degraded
/// comm model.
class CommModel {
 public:
  explicit CommModel(const MachineSpec& m,
                     CommModelKind kind = CommModelKind::kSimple);

  CommModelKind kind() const { return kind_; }

  /// Seconds for collective `c` over a `bytes`-byte logical tensor across
  /// `group` devices, under this model's kind. 0 for empty tensors or
  /// single-device groups.
  double collective_time(Collective c, double bytes, i64 group) const;

  /// Seconds for a point-to-point transfer of per-device `bytes` over the
  /// link class implied by `group` (intra-node iff the group fits in one
  /// host) — identical in every kind, matching the legacy simulator.
  double point_to_point_time(double bytes, i64 group) const;

  /// Seconds for a halo exchange: per-device boundary-plane `bytes` traded
  /// with the two neighbors along a spatially split dim of `group` devices.
  /// Two message latencies plus the plane bytes on the group's link class;
  /// identical in every kind (a neighbor exchange has no algorithm choice).
  /// Monotone in both bytes and group. 0 for unsplit dims or empty planes.
  double halo_exchange_time(double bytes, i64 group) const;

  /// Seconds under one specific algorithm family, independent of kind()
  /// (kSimple excepted: it is a pricing mode, not an algorithm). Exposed
  /// for the auto-selector, tests and benches.
  double algorithm_time(CommAlgo a, Collective c, double bytes,
                        i64 group) const;

  /// The algorithm kAuto picks (and memoizes) for this shape: the argmin of
  /// algorithm_time over all families, ties broken by enum order. Returns
  /// kRing for degenerate shapes (bytes <= 0 or group <= 1).
  CommAlgo chosen_algorithm(Collective c, double bytes, i64 group) const;

  /// Intra-/inter-node breakdown of the hierarchical composition;
  /// total() == algorithm_time(kHierarchical, ...) exactly.
  CommPhases hierarchical_phases(Collective c, double bytes, i64 group) const;

  i64 devices_per_node() const { return devices_per_node_; }

  /// How many non-degenerate collective_time() calls were priced through
  /// algorithm family `a` (for kAuto, the chosen family; for a forced kind,
  /// that family). Structural: call sites and auto choices are pure
  /// functions of the priced shapes, so counts are bit-identical across
  /// thread counts whenever the set of shapes priced is (the DP prices all
  /// shapes on its calling thread — see dp_solver.h).
  u64 use_count(CommAlgo a) const {
    return use_counts_[static_cast<size_t>(a)].load(
        std::memory_order_relaxed);
  }
  /// Same, for calls priced through the legacy kSimple closed forms.
  u64 simple_use_count() const {
    return use_counts_[kSimpleUseSlot].load(std::memory_order_relaxed);
  }
  /// Dumps the per-family use counts as `<prefix>.algo.<family>` counters
  /// (plus `<prefix>.algo.simple`), omitting zero counts so untouched
  /// families don't pad the snapshot.
  void export_metrics(MetricsRegistry* metrics,
                      const std::string& prefix) const;

 private:
  /// A flat (single-level) algorithm over `group` ranks on the link class
  /// the group implies.
  double flat_time(CommAlgo a, Collective c, double bytes, i64 group,
                   double bw, double alpha_s) const;
  /// Legacy pricing (kSimple): the pre-comm-library simulator's flat ring /
  /// fixed hierarchical-ring closed form, reproduced bit-exactly on
  /// two-level machines; on multi-tier machines (link_tiers present) the
  /// same closed forms priced over each group's covering tier.
  double simple_time(Collective c, double bytes, i64 group) const;

  /// Bandwidth/latency of the link a `group`-rank collective crosses: the
  /// machine's covering link tier when tiers are present, else the legacy
  /// intra/inter pair — returning *exactly* those member doubles, so every
  /// closed form is byte-identical to the pre-tier pricing on two-level
  /// machines.
  double link_bw(i64 group) const {
    if (!tiers_.empty()) {
      for (const LinkTier& t : tiers_)
        if (group <= t.span) return t.bandwidth;
      return tiers_.back().bandwidth;
    }
    return group <= devices_per_node_ ? intra_bw_ : inter_bw_;
  }
  double link_latency(i64 group) const {
    if (!tiers_.empty()) {
      for (const LinkTier& t : tiers_)
        if (group <= t.span) return t.latency_s;
      return tiers_.back().latency_s;
    }
    return latency_s_;
  }

  CommModelKind kind_;
  i64 devices_per_node_;
  double intra_bw_;
  double inter_bw_;
  double latency_s_;
  std::vector<LinkTier> tiers_;  ///< multi-tier fabric; empty = two-level

  mutable std::mutex choice_mutex_;
  mutable std::unordered_map<u64, CommAlgo> choice_memo_;

  /// Slots 0..3 mirror CommAlgo; the extra slot counts kSimple pricings.
  static constexpr size_t kSimpleUseSlot = 4;
  mutable std::array<std::atomic<u64>, 5> use_counts_{};
};

}  // namespace pase
