#include "comm/comm_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/hash.h"

namespace pase {

namespace {

/// ceil(log2(g)) for g >= 1: the step count of the logarithmic algorithms.
double ceil_log2(i64 g) {
  i64 steps = 0;
  for (i64 span = 1; span < g; span <<= 1) ++steps;
  return static_cast<double>(steps);
}

/// Wire bytes per device of a ring all-reduce: 2(g-1)/g * n. Arithmetic
/// matches ring_all_reduce_bytes (src/cost) exactly; reimplemented here so
/// the comm library stays below src/cost in the link order.
double ring_wire_bytes(double bytes, i64 group) {
  if (group <= 1) return 0.0;
  return 2.0 * bytes * static_cast<double>(group - 1) /
         static_cast<double>(group);
}

u64 shape_key(Collective c, double bytes, i64 group) {
  u64 bits;
  static_assert(sizeof(bits) == sizeof(bytes));
  std::memcpy(&bits, &bytes, sizeof(bits));
  u64 h = hash_combine(static_cast<u64>(c), bits);
  return hash_combine(h, static_cast<u64>(group));
}

}  // namespace

const char* collective_name(Collective c) {
  switch (c) {
    case Collective::kAllReduce: return "all-reduce";
    case Collective::kAllGather: return "all-gather";
    case Collective::kReduceScatter: return "reduce-scatter";
    case Collective::kBroadcast: return "broadcast";
    case Collective::kAllToAll: return "all-to-all";
  }
  return "?";
}

const char* comm_algo_name(CommAlgo a) {
  switch (a) {
    case CommAlgo::kRing: return "ring";
    case CommAlgo::kTree: return "tree";
    case CommAlgo::kHalvingDoubling: return "hd";
    case CommAlgo::kHierarchical: return "hier";
  }
  return "?";
}

const char* comm_model_kind_name(CommModelKind k) {
  switch (k) {
    case CommModelKind::kSimple: return "simple";
    case CommModelKind::kAuto: return "auto";
    case CommModelKind::kRing: return "ring";
    case CommModelKind::kTree: return "tree";
    case CommModelKind::kHalvingDoubling: return "hd";
    case CommModelKind::kHierarchical: return "hier";
  }
  return "?";
}

std::optional<CommModelKind> parse_comm_model_kind(const std::string& s) {
  if (s == "simple") return CommModelKind::kSimple;
  if (s == "auto") return CommModelKind::kAuto;
  if (s == "ring") return CommModelKind::kRing;
  if (s == "tree") return CommModelKind::kTree;
  if (s == "hd") return CommModelKind::kHalvingDoubling;
  if (s == "hier") return CommModelKind::kHierarchical;
  return std::nullopt;
}

CommModel::CommModel(const MachineSpec& m, CommModelKind kind)
    : kind_(kind),
      devices_per_node_(m.devices_per_node),
      intra_bw_(m.intra_bw()),
      inter_bw_(m.inter_bw()),
      latency_s_(m.link_latency_s),
      tiers_(m.link_tiers) {
  PASE_CHECK(devices_per_node_ >= 1);
  PASE_CHECK(intra_bw_ > 0 && inter_bw_ > 0);
  for (const LinkTier& t : tiers_)
    PASE_CHECK(t.span >= 1 && t.bandwidth > 0 && t.latency_s >= 0);
}

double CommModel::point_to_point_time(double bytes, i64 group) const {
  if (bytes <= 0.0) return 0.0;
  return bytes / link_bw(group) + link_latency(group);
}

double CommModel::halo_exchange_time(double bytes, i64 group) const {
  if (bytes <= 0.0 || group <= 1) return 0.0;
  // Each device trades one boundary plane with each of its (at most) two
  // neighbors along the split dim: two messages' latency, and `bytes` (the
  // up+down planes together) on the link class the split group spans. The
  // exchanges are pairwise and concurrent, so no group-size factor beyond
  // the link class — deeper splits only hurt through slower covering links
  // (and the shrinking per-device interior they leave behind).
  return 2.0 * link_latency(group) + bytes / link_bw(group);
}

double CommModel::simple_time(Collective c, double bytes, i64 group) const {
  if (bytes <= 0.0 || group <= 1) return 0.0;
  const i64 dpn = devices_per_node_;
  if (c != Collective::kAllReduce) {
    // The legacy model only knew one collective shape; everything else is
    // priced as ring wire bytes over the implied flat link.
    const double wire = c == Collective::kAllToAll
                            ? bytes * static_cast<double>(group - 1) /
                                  static_cast<double>(group)
                            : ring_wire_bytes(bytes, group) / 2.0;
    return wire / link_bw(group) + link_latency(group);
  }
  // The pre-comm-library Simulator::all_reduce_time closed form; link_bw /
  // link_latency return the legacy member doubles on two-level machines,
  // keeping this bit-exact, and the covering tier on multi-tier ones.
  if (group <= dpn) {
    const double wire = ring_wire_bytes(bytes, group);
    return wire / link_bw(group) + link_latency(group);
  }
  const i64 nodes = (group + dpn - 1) / dpn;
  const double intra_bytes = 2.0 * bytes * static_cast<double>(dpn - 1) /
                             static_cast<double>(dpn);
  const double inter_bytes =
      ring_wire_bytes(bytes / static_cast<double>(dpn), nodes);
  return intra_bytes / link_bw(dpn) + inter_bytes / link_bw(group) +
         link_latency(dpn) + link_latency(group);
}

double CommModel::flat_time(CommAlgo a, Collective c, double bytes, i64 group,
                            double bw, double alpha_s) const {
  if (bytes <= 0.0 || group <= 1) return 0.0;
  const double g = static_cast<double>(group);
  const double a_s = alpha_s;
  const double L = ceil_log2(group);
  const double ring_frac = bytes * (g - 1.0) / g;  // n(g-1)/g
  switch (a) {
    case CommAlgo::kRing:
      switch (c) {
        case Collective::kAllReduce:
          return 2.0 * (g - 1.0) * a_s + 2.0 * ring_frac / bw;
        case Collective::kAllGather:
        case Collective::kReduceScatter:
          return (g - 1.0) * a_s + ring_frac / bw;
        case Collective::kBroadcast:  // van de Geijn scatter + all-gather
          return (L + g - 1.0) * a_s + 2.0 * ring_frac / bw;
        case Collective::kAllToAll:  // pairwise exchange
          return (g - 1.0) * (a_s + bytes / g / bw);
      }
      break;
    case CommAlgo::kTree:
      switch (c) {
        case Collective::kAllReduce:  // binomial reduce + broadcast
          return 2.0 * L * (a_s + bytes / bw);
        case Collective::kAllGather:
        case Collective::kReduceScatter:
        case Collective::kBroadcast:
          return L * (a_s + bytes / bw);
        case Collective::kAllToAll:  // Bruck
          return L * a_s + L * bytes / 2.0 / bw;
      }
      break;
    case CommAlgo::kHalvingDoubling:
      switch (c) {
        case Collective::kAllReduce:  // Rabenseifner
          return 2.0 * L * a_s + 2.0 * ring_frac / bw;
        case Collective::kAllGather:
        case Collective::kReduceScatter:
          return L * a_s + ring_frac / bw;
        case Collective::kBroadcast:  // binomial scatter + hd all-gather
          return 2.0 * L * a_s + 2.0 * ring_frac / bw;
        case Collective::kAllToAll:  // no standard form: pairwise exchange
          return (g - 1.0) * (a_s + bytes / g / bw);
      }
      break;
    case CommAlgo::kHierarchical:
      PASE_CHECK(false);  // handled by hierarchical_phases()
  }
  return 0.0;
}

CommPhases CommModel::hierarchical_phases(Collective c, double bytes,
                                          i64 group) const {
  CommPhases ph;
  if (bytes <= 0.0 || group <= 1) return ph;
  const i64 dpn = devices_per_node_;
  const i64 local = std::min<i64>(group, dpn);
  const i64 nodes = (group + dpn - 1) / dpn;
  // The intra phase crosses the local link; the inter phase, spanning the
  // full group, pays that group's covering tier (the legacy inter link on
  // two-level machines).
  const double ib = link_bw(local), il = link_latency(local);
  const double xb = tiers_.empty() ? inter_bw_ : link_bw(group);
  const double xl = tiers_.empty() ? latency_s_ : link_latency(group);
  if (nodes <= 1) {
    ph.intra_s = flat_time(CommAlgo::kRing, c, bytes, local, ib, il);
    return ph;
  }
  const double nl = static_cast<double>(local);
  const double shard = bytes / nl;  // per-lane bytes after the intra split
  switch (c) {
    case Collective::kAllReduce:
      // Intra reduce-scatter + all-gather on the full tensor (= a ring
      // all-reduce's wire volume), inter ring all-reduce on each lane's
      // 1/local shard across the nodes.
      ph.intra_s = flat_time(CommAlgo::kRing, c, bytes, local, ib, il);
      ph.inter_s = flat_time(CommAlgo::kRing, c, shard, nodes, xb, xl);
      break;
    case Collective::kReduceScatter:
      ph.intra_s = flat_time(CommAlgo::kRing, c, bytes, local, ib, il);
      ph.inter_s = flat_time(CommAlgo::kRing, c, shard, nodes, xb, xl);
      break;
    case Collective::kAllGather:
      // Mirror image: gather each lane across nodes first, then complete
      // the tensor inside each node.
      ph.inter_s = flat_time(CommAlgo::kRing, c, shard, nodes, xb, xl);
      ph.intra_s = flat_time(CommAlgo::kRing, c, bytes, local, ib, il);
      break;
    case Collective::kBroadcast:
      // Binomial across nodes (one NIC hop per level), then binomial fan-out
      // inside each node.
      ph.inter_s = flat_time(CommAlgo::kTree, c, bytes, nodes, xb, xl);
      ph.intra_s = flat_time(CommAlgo::kTree, c, bytes, local, ib, il);
      break;
    case Collective::kAllToAll: {
      // Phase 1: node-local pairwise exchange of the locally-destined
      // blocks; phase 2: pairwise exchange between nodes of the aggregated
      // local*n/g blocks each node owes every other node.
      const double per_rank = bytes / static_cast<double>(group);
      ph.intra_s = static_cast<double>(local - 1) * (il + per_rank / ib);
      ph.inter_s = static_cast<double>(nodes - 1) * (xl + per_rank * nl / xb);
      break;
    }
  }
  return ph;
}

double CommModel::algorithm_time(CommAlgo a, Collective c, double bytes,
                                 i64 group) const {
  if (bytes <= 0.0 || group <= 1) return 0.0;
  if (a == CommAlgo::kHierarchical)
    return hierarchical_phases(c, bytes, group).total();
  return flat_time(a, c, bytes, group, link_bw(group), link_latency(group));
}

CommAlgo CommModel::chosen_algorithm(Collective c, double bytes,
                                     i64 group) const {
  if (bytes <= 0.0 || group <= 1) return CommAlgo::kRing;
  const u64 key = shape_key(c, bytes, group);
  {
    std::lock_guard<std::mutex> lock(choice_mutex_);
    const auto it = choice_memo_.find(key);
    if (it != choice_memo_.end()) return it->second;
  }
  CommAlgo best = CommAlgo::kRing;
  double best_time = algorithm_time(best, c, bytes, group);
  for (CommAlgo a : {CommAlgo::kTree, CommAlgo::kHalvingDoubling,
                     CommAlgo::kHierarchical}) {
    const double t = algorithm_time(a, c, bytes, group);
    if (t < best_time) {  // strict: ties keep the earlier enum value
      best = a;
      best_time = t;
    }
  }
  std::lock_guard<std::mutex> lock(choice_mutex_);
  choice_memo_.emplace(key, best);
  return best;
}

double CommModel::collective_time(Collective c, double bytes,
                                  i64 group) const {
  if (bytes <= 0.0 || group <= 1) return 0.0;
  auto count_use = [this](size_t slot) {
    use_counts_[slot].fetch_add(1, std::memory_order_relaxed);
  };
  switch (kind_) {
    case CommModelKind::kSimple:
      count_use(kSimpleUseSlot);
      return simple_time(c, bytes, group);
    case CommModelKind::kAuto: {
      const CommAlgo a = chosen_algorithm(c, bytes, group);
      count_use(static_cast<size_t>(a));
      return algorithm_time(a, c, bytes, group);
    }
    case CommModelKind::kRing:
      count_use(static_cast<size_t>(CommAlgo::kRing));
      return algorithm_time(CommAlgo::kRing, c, bytes, group);
    case CommModelKind::kTree:
      count_use(static_cast<size_t>(CommAlgo::kTree));
      return algorithm_time(CommAlgo::kTree, c, bytes, group);
    case CommModelKind::kHalvingDoubling:
      count_use(static_cast<size_t>(CommAlgo::kHalvingDoubling));
      return algorithm_time(CommAlgo::kHalvingDoubling, c, bytes, group);
    case CommModelKind::kHierarchical:
      count_use(static_cast<size_t>(CommAlgo::kHierarchical));
      return algorithm_time(CommAlgo::kHierarchical, c, bytes, group);
  }
  return 0.0;
}

void CommModel::export_metrics(MetricsRegistry* metrics,
                               const std::string& prefix) const {
  if (!metrics) return;
  for (CommAlgo a : {CommAlgo::kRing, CommAlgo::kTree,
                     CommAlgo::kHalvingDoubling, CommAlgo::kHierarchical}) {
    const u64 n = use_count(a);
    if (n > 0)
      metrics->add_counter(prefix + ".algo." + comm_algo_name(a), n);
  }
  if (simple_use_count() > 0)
    metrics->add_counter(prefix + ".algo.simple", simple_use_count());
}

}  // namespace pase
