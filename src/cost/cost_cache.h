// Sharded, thread-safe memoization of cost-model queries.
//
// Real DNNs repeat structure — the Transformer stacks 6 identical encoder
// layers, InceptionV3 repeats whole modules — so the DP solver, the
// exhaustive baseline and the MCMC search keep re-evaluating t_l and t_x
// for layers/edges that are byte-for-byte copies of one another. The cache
// groups nodes (and edges) into *structural equivalence classes* at
// construction by comparing every field the cost model reads (iteration
// space extents, FLOP density, parameter tensors, reduction dims, halos,
// output spec; edge tensor shape and dim maps), then memoizes
//   (node class, configuration)            -> t_l
//   (edge class, src config, dst config)   -> r * t_x
// Class construction is exact (full structural comparison, no hashing
// shortcut), so a cache hit is guaranteed to return the same value the
// direct computation would.
//
// Thread-safety and determinism contract:
//  * lookup/store are safe from any number of threads; the table is split
//    into 16 independently locked shards to keep contention negligible.
//  * Cost functions are pure, so whichever thread computes a value first
//    stores exactly the bits every other thread would have computed —
//    caching never perturbs results, at any thread count.
//  * hits()/misses() are monotonic relaxed counters for diagnostics only.
//
// A CostCache is built against one Graph and must only be attached to
// CostModels over that same graph *with identical CostParams* (the cached
// values bake the params in). The DP solver constructs one per solve.
#pragma once

#include <array>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "config/config.h"
#include "graph/graph.h"
#include "util/hash.h"
#include "util/types.h"

namespace pase {

class CostCache {
 public:
  explicit CostCache(const Graph& graph);

  /// Structural class ids (nodes with equal ids have identical cost
  /// behaviour for every configuration; likewise edges).
  u32 node_class(NodeId v) const {
    return node_class_[static_cast<size_t>(v)];
  }
  u32 edge_class(EdgeId e) const {
    return edge_class_[static_cast<size_t>(e)];
  }
  i64 num_node_classes() const { return num_node_classes_; }
  i64 num_edge_classes() const { return num_edge_classes_; }

  /// True (and *out filled) on a hit for t_l(node class of v, c).
  bool lookup_node(NodeId v, const Config& c, double* out) const;
  void store_node(NodeId v, const Config& c, double cost);

  /// True (and *out filled) on a hit for the edge cost of e under
  /// (src, dst) configurations.
  bool lookup_edge(EdgeId e, const Config& src, const Config& dst,
                   double* out) const;
  void store_edge(EdgeId e, const Config& src, const Config& dst,
                  double cost);

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct NodeKey {
    u32 cls;
    Config cfg;
    bool operator==(const NodeKey& o) const {
      return cls == o.cls && cfg == o.cfg;
    }
  };
  struct EdgeKey {
    u32 cls;
    Config src, dst;
    bool operator==(const EdgeKey& o) const {
      return cls == o.cls && src == o.src && dst == o.dst;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      return static_cast<size_t>(hash_combine(k.cfg.hash(), k.cls));
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      return static_cast<size_t>(
          hash_combine(hash_combine(k.src.hash(), k.dst.hash()), k.cls));
    }
  };

  static constexpr size_t kShards = 16;
  struct NodeShard {
    mutable std::mutex mu;
    std::unordered_map<NodeKey, double, NodeKeyHash> map;
  };
  struct EdgeShard {
    mutable std::mutex mu;
    std::unordered_map<EdgeKey, double, EdgeKeyHash> map;
  };

  static size_t shard_of(u64 h) { return static_cast<size_t>(h % kShards); }

  std::vector<u32> node_class_;
  std::vector<u32> edge_class_;
  i64 num_node_classes_ = 0;
  i64 num_edge_classes_ = 0;

  std::array<NodeShard, kShards> node_shards_;
  std::array<EdgeShard, kShards> edge_shards_;

  mutable std::atomic<u64> hits_{0};
  mutable std::atomic<u64> misses_{0};
};

}  // namespace pase
