#include "cost/cost_cache.h"

#include <map>

#include "graph/iter_space.h"

namespace pase {

namespace {

/// Exact structural signature of everything layer_cost() reads from a Node.
/// Built as a flat integer/double vector and compared with std::map's exact
/// ordering, so two nodes share a class iff the cost model cannot tell them
/// apart (names and op kinds are irrelevant to cost).
std::vector<double> node_signature(const Node& n) {
  std::vector<double> s;
  s.push_back(static_cast<double>(n.space.rank()));
  for (i64 d = 0; d < n.space.rank(); ++d)
    s.push_back(static_cast<double>(n.space.dim(d).size));
  s.push_back(n.flops_per_point);
  s.push_back(static_cast<double>(n.reduction_dims.size()));
  for (i32 d : n.reduction_dims) s.push_back(static_cast<double>(d));
  s.push_back(static_cast<double>(n.params.size()));
  for (const ParamTensor& p : n.params) {
    s.push_back(static_cast<double>(p.volume));
    s.push_back(static_cast<double>(p.dims.size()));
    for (i32 d : p.dims) s.push_back(static_cast<double>(d));
  }
  s.push_back(static_cast<double>(n.halos.size()));
  for (const HaloSpec& h : n.halos) {
    s.push_back(static_cast<double>(h.dim));
    s.push_back(static_cast<double>(h.width));
  }
  s.push_back(static_cast<double>(n.output.volume));
  s.push_back(static_cast<double>(n.output.dims.size()));
  for (i32 d : n.output.dims) s.push_back(static_cast<double>(d));
  return s;
}

/// Everything transfer_bytes() reads from an Edge (endpoints excluded: the
/// cost depends only on the tensor and its dim maps, not on which node ids
/// carry it).
std::vector<double> edge_signature(const Edge& e) {
  std::vector<double> s;
  s.push_back(static_cast<double>(e.shape.size()));
  for (i64 x : e.shape) s.push_back(static_cast<double>(x));
  for (i32 x : e.src_dims) s.push_back(static_cast<double>(x));
  for (i32 x : e.dst_dims) s.push_back(static_cast<double>(x));
  return s;
}

}  // namespace

CostCache::CostCache(const Graph& graph) {
  std::map<std::vector<double>, u32> node_ids;
  node_class_.reserve(static_cast<size_t>(graph.num_nodes()));
  for (const Node& n : graph.nodes()) {
    const auto [it, inserted] = node_ids.emplace(
        node_signature(n), static_cast<u32>(node_ids.size()));
    (void)inserted;
    node_class_.push_back(it->second);
  }
  num_node_classes_ = static_cast<i64>(node_ids.size());

  std::map<std::vector<double>, u32> edge_ids;
  edge_class_.reserve(static_cast<size_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    const auto [it, inserted] = edge_ids.emplace(
        edge_signature(e), static_cast<u32>(edge_ids.size()));
    (void)inserted;
    edge_class_.push_back(it->second);
  }
  num_edge_classes_ = static_cast<i64>(edge_ids.size());
}

bool CostCache::lookup_node(NodeId v, const Config& c, double* out) const {
  const NodeKey key{node_class(v), c};
  const NodeShard& shard = node_shards_[shard_of(NodeKeyHash{}(key))];
  std::lock_guard<std::mutex> lk(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = it->second;
  return true;
}

void CostCache::store_node(NodeId v, const Config& c, double cost) {
  const NodeKey key{node_class(v), c};
  NodeShard& shard = node_shards_[shard_of(NodeKeyHash{}(key))];
  std::lock_guard<std::mutex> lk(shard.mu);
  shard.map.emplace(key, cost);
}

bool CostCache::lookup_edge(EdgeId e, const Config& src, const Config& dst,
                            double* out) const {
  const EdgeKey key{edge_class(e), src, dst};
  const EdgeShard& shard = edge_shards_[shard_of(EdgeKeyHash{}(key))];
  std::lock_guard<std::mutex> lk(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = it->second;
  return true;
}

void CostCache::store_edge(EdgeId e, const Config& src, const Config& dst,
                           double cost) {
  const EdgeKey key{edge_class(e), src, dst};
  EdgeShard& shard = edge_shards_[shard_of(EdgeKeyHash{}(key))];
  std::lock_guard<std::mutex> lk(shard.mu);
  shard.map.emplace(key, cost);
}

}  // namespace pase
