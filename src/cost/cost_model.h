// The analytical cost model of paper §II, Eq. (1):
//
//   F(G, phi) = sum_v t_l(v, phi, r)  +  sum_(u,v) r * t_x(u, v, phi)
//
// All costs are expressed in FLOPs; communication volumes are normalized by
// multiplying with the FLOP-to-byte ratio r = F/B.
//
//  * t_l — layer cost: per-device FLOPs plus r x internal communication
//    (partial-sum all-reduce when reduction dims are split, gradient
//    all-reduce across each parameter's replication group, halo exchange
//    for split stencil dims).
//  * t_x — transfer cost along an edge: the paper's
//    max_d |A(v,d,phi)| - |A(v,d,phi) n A(u,d,phi)| evaluated in closed form
//    for uniform block partitions under the greedy aligned placement,
//    counted in both directions (t_x is edge-direction agnostic).
//
// Collective pricing is pluggable: by default t_l uses the paper's ring
// wire-byte form (`simple`), but CostParams::comm can attach the src/comm
// algorithm library so internal collectives are priced by topology-aware
// alpha-beta closed forms instead (CommModelKind::kAuto picks the cheapest
// algorithm per message shape).
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "comm/comm_model.h"
#include "config/config.h"
#include "cost/machine.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

struct CostParams {
  double r = 1.0;              ///< FLOP-to-byte ratio F/B
  double bytes_per_element = 4.0;  ///< fp32 tensors
  /// Backward-pass FLOPs relative to forward (dL/dx and dL/dW GEMMs).
  double bwd_flops_multiplier = 2.0;
  /// Activation/gradient transfers happen in both directions.
  double fwd_bwd_comm_multiplier = 2.0;
  /// Weight applied to gradient all-reduce bytes in t_l: frameworks overlap
  /// the gradient sync with backward compute, so its marginal cost is lower
  /// than inline communication (the simulator models the overlap exactly;
  /// the analytical model only needs the relative weighting).
  double gradient_comm_discount = 0.3;

  /// Optional collective-pricing backend (src/comm). Null — the default,
  /// and what for_machine(m) produces — keeps the paper's `simple` pricing:
  /// ring wire bytes x r, bit-identical to the pre-comm-library model.
  /// When set, each internal collective of t_l is priced by the CommModel's
  /// alpha-beta closed forms in seconds and converted to FLOP-equivalents
  /// via seconds_to_flops; t_x keeps its closed-form redistribution bytes
  /// in every mode (it is a point-to-point reshard, not a collective).
  std::shared_ptr<const CommModel> comm;
  /// FLOP-equivalents per second of collective time under `comm`: the
  /// weakest device's achieved FLOPs, the same scale r bakes in (r * bytes
  /// == seconds_to_flops * bytes / B).
  double seconds_to_flops = 0.0;

  /// Heterogeneity-aware pricing tables (src/hetero/hetero.h installs
  /// them). Empty — the default, and what for_machine produces — keeps the
  /// homogeneous pricing bit-identical. Both are indexed by device-group
  /// size (entry g for a group of g devices, clamped to the last entry):
  ///   hetero_compute_scale[g]  proportional-shard compute scale over the g
  ///                            fastest devices, in weakest-device units
  ///                            (<= 1; layer_flops multiplies by it);
  ///   hetero_group_r[g]        FLOP-to-byte ratio for a collective over
  ///                            the placed group's bottleneck link (<= r).
  std::vector<double> hetero_compute_scale;
  std::vector<double> hetero_group_r;

  bool heterogeneity_aware() const { return !hetero_group_r.empty(); }

  double compute_scale(i64 degree) const {
    if (hetero_compute_scale.empty()) return 1.0;
    const size_t i = std::min(static_cast<size_t>(degree),
                              hetero_compute_scale.size() - 1);
    return hetero_compute_scale[i];
  }

  double group_r(i64 group) const {
    if (hetero_group_r.empty()) return r;
    const size_t i =
        std::min(static_cast<size_t>(group), hetero_group_r.size() - 1);
    return hetero_group_r[i];
  }

  static CostParams for_machine(const MachineSpec& m) {
    CostParams p;
    // Achieved (not peak) FLOPs per byte keeps compute and communication on
    // the same wall-clock scale. For heterogeneous clusters the paper's §V
    // rule applies: price compute at the weakest device.
    p.r = m.weakest_flops() / m.link_bandwidth * m.compute_efficiency;
    p.gradient_comm_discount = m.gradient_comm_discount;
    p.seconds_to_flops = m.weakest_flops() * m.compute_efficiency;
    return p;
  }

  /// for_machine plus a collective-pricing mode: kSimple attaches nothing
  /// (bit-identical to for_machine(m)); any other kind attaches a CommModel
  /// of that kind built over `m`'s links and topology.
  static CostParams for_machine(const MachineSpec& m, CommModelKind kind) {
    CostParams p = for_machine(m);
    if (kind != CommModelKind::kSimple)
      p.comm = std::make_shared<const CommModel>(m, kind);
    return p;
  }
};

/// Bytes moved per device by a ring all-reduce of `bytes` over `group`
/// devices: 2 * (g-1)/g * bytes.
double ring_all_reduce_bytes(double bytes, i64 group);

/// One internal communication a layer performs under a configuration
/// (partial-sum all-reduce, gradient all-reduce, or halo exchange), as
/// per-device bytes plus the participating group size — the discrete-event
/// simulator uses the group to pick intra- vs inter-node bandwidth.
struct CollectiveComm {
  enum class Kind { kReduceAllReduce, kGradientAllReduce, kHaloExchange };
  Kind kind;
  double bytes = 0.0;        ///< per device, both passes where applicable
  i64 group = 1;             ///< devices participating
  double volume_bytes = 0.0; ///< tensor shard being reduced (all-reduces
                             ///< only; lets the simulator price topology-
                             ///< aware hierarchical collectives)
};

/// All internal communications of t_l(v, C).
std::vector<CollectiveComm> layer_collectives(const Node& node,
                                              const Config& config,
                                              const CostParams& params);

/// Layer cost t_l(v, C, r) in FLOPs (computation + r x internal comm).
double layer_cost(const Node& node, const Config& config,
                  const CostParams& params);

/// The pure-computation part of t_l (per-device FLOPs, fwd + bwd).
double layer_flops(const Node& node, const Config& config,
                   const CostParams& params);

/// Transfer volume t_x for an edge, in bytes (both directions), given the
/// producer and consumer configurations.
double transfer_bytes(const Edge& edge, const Config& src_config,
                      const Config& dst_config, const CostParams& params);

/// FLOP-to-byte ratio applied to an edge's redistribution bytes: the
/// machine-wide r or, under the hetero tables, the per-group r of the wider
/// endpoint's placed group (the reshard runs over the union of the two
/// aligned fastest-first prefixes, which is the wider one).
double edge_flop_byte_ratio(const CostParams& params, const Config& src_config,
                            const Config& dst_config);

/// Per-strategy cost breakdown of Eq. (1).
struct CostBreakdown {
  double layer = 0.0;     ///< sum of t_l, FLOPs
  double transfer = 0.0;  ///< sum of r * t_x, FLOPs
  double total() const { return layer + transfer; }
};

class CostCache;

/// Evaluates Eq. (1) for full strategies and supports O(degree) incremental
/// re-evaluation when one node's configuration changes (used by the MCMC
/// search and by the DP's H function).
///
/// Thread-safety: a CostModel is immutable after construction (and after an
/// optional attach_cache()), and every member function is const and free of
/// hidden state, so one instance may be shared by any number of threads —
/// the parallel DP solver and multi-chain MCMC rely on this. An attached
/// CostCache is internally synchronized (see cost_cache.h) and, because
/// cost functions are pure, memoization returns bit-identical values
/// regardless of which thread populated an entry first; results therefore
/// never depend on thread count or on whether the cache is enabled.
class CostModel {
 public:
  CostModel(const Graph& graph, CostParams params)
      : graph_(&graph), params_(params) {}

  const Graph& graph() const { return *graph_; }
  const CostParams& params() const { return params_; }

  /// Attaches a memoization cache for node/edge cost queries. `cache` must
  /// be built over the same graph and outlive this model, and must not be
  /// shared across CostModels with different CostParams (cached values bake
  /// the params in). Pass nullptr to detach.
  void attach_cache(CostCache* cache) { cache_ = cache; }
  const CostCache* cache() const { return cache_; }

  double node_cost(NodeId v, const Config& config) const {
    if (cache_) return cached_node_cost(v, config);
    return layer_cost(graph_->node(v), config, params_);
  }

  /// r * t_x for edge e, in FLOPs.
  double edge_cost(const Edge& e, const Config& src_config,
                   const Config& dst_config) const {
    if (cache_) return cached_edge_cost(e, src_config, dst_config);
    return edge_flop_byte_ratio(params_, src_config, dst_config) *
           transfer_bytes(e, src_config, dst_config, params_);
  }

  double edge_cost(EdgeId e, const Strategy& phi) const {
    const Edge& edge = graph_->edge(e);
    return edge_cost(edge, phi[static_cast<size_t>(edge.src)],
                     phi[static_cast<size_t>(edge.dst)]);
  }

  /// Full F(G, phi). `phi` must provide a configuration for every node.
  CostBreakdown evaluate(const Strategy& phi) const;

  double total_cost(const Strategy& phi) const {
    return evaluate(phi).total();
  }

  /// Change in F(G, phi) if node v's configuration is replaced by
  /// `new_config`; touches only v and its incident edges.
  double delta_cost(const Strategy& phi, NodeId v,
                    const Config& new_config) const;

  /// Seconds for one training step under `phi` on machine `m` according to
  /// the analytical model: F(G, phi) / peak_flops.
  double step_time_seconds(const Strategy& phi, const MachineSpec& m) const {
    return total_cost(phi) / m.peak_flops;
  }

 private:
  double cached_node_cost(NodeId v, const Config& config) const;
  double cached_edge_cost(const Edge& e, const Config& src_config,
                          const Config& dst_config) const;

  const Graph* graph_;
  CostParams params_;
  CostCache* cache_ = nullptr;
};

}  // namespace pase
