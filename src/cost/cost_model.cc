#include "cost/cost_model.h"

#include <algorithm>

#include "cost/cost_cache.h"
#include "util/check.h"

namespace pase {

double ring_all_reduce_bytes(double bytes, i64 group) {
  if (group <= 1) return 0.0;
  return 2.0 * bytes * static_cast<double>(group - 1) /
         static_cast<double>(group);
}

namespace {

/// Product of config factors over a dim subset, clamped to >= 1.
double split_product(const Config& c, const std::vector<i32>& dims) {
  double prod = 1.0;
  for (i32 d : dims) prod *= static_cast<double>(c[d]);
  return prod;
}

}  // namespace

std::vector<CollectiveComm> layer_collectives(const Node& node,
                                              const Config& config,
                                              const CostParams& params) {
  PASE_CHECK(config.rank() == node.space.rank());
  const double degree = static_cast<double>(config.degree());
  std::vector<CollectiveComm> out;

  // (a) Partial-sum all-reduce when reduction dims are split: each device
  // holds a shard of the (reduction) output and reduces it across the
  // reduction group. Happens in forward and (for input gradients) backward.
  const double reduce_group = split_product(config, node.reduction_dims);
  if (reduce_group > 1.0 && node.output.volume > 0) {
    const double out_shard_bytes = static_cast<double>(node.output.volume) /
                                   split_product(config, node.output.dims) *
                                   params.bytes_per_element;
    out.push_back(CollectiveComm{
        CollectiveComm::Kind::kReduceAllReduce,
        params.fwd_bwd_comm_multiplier *
            ring_all_reduce_bytes(out_shard_bytes,
                                  static_cast<i64>(reduce_group)),
        static_cast<i64>(reduce_group),
        params.fwd_bwd_comm_multiplier * out_shard_bytes});
  }

  // (b) Gradient all-reduce: devices that are replicas w.r.t. a parameter
  // tensor (they agree on all dims indexing it) must average its gradient
  // once per step. This is the term that makes pure data parallelism
  // expensive for parameter-heavy layers.
  for (const ParamTensor& p : node.params) {
    const double owners = split_product(config, p.dims);
    const i64 group = static_cast<i64>(degree / owners + 0.5);
    if (group > 1) {
      const double shard_bytes =
          static_cast<double>(p.volume) / owners * params.bytes_per_element;
      out.push_back(CollectiveComm{
          CollectiveComm::Kind::kGradientAllReduce,
          ring_all_reduce_bytes(shard_bytes, group), group, shard_bytes});
    }
  }

  // (c) Halo exchange when a stencil's spatial dim is split: two one-sided
  // boundary planes per split dim, forward and backward.
  for (const HaloSpec& h : node.halos) {
    if (config[h.dim] <= 1) continue;
    // Elements in one unit-thick plane orthogonal to the halo dim, per
    // device (the other output dims are split too).
    double plane = static_cast<double>(node.output.volume) /
                   static_cast<double>(node.space.dim(h.dim).size);
    for (i32 d : node.output.dims)
      if (d != h.dim) plane /= static_cast<double>(config[d]);
    out.push_back(CollectiveComm{
        CollectiveComm::Kind::kHaloExchange,
        params.fwd_bwd_comm_multiplier * 2.0 *
            static_cast<double>(h.width) * plane * params.bytes_per_element,
        config[h.dim], 0.0});
  }
  return out;
}

double layer_flops(const Node& node, const Config& config,
                   const CostParams& params) {
  PASE_CHECK(config.rank() == node.space.rank());
  // Computation: FLOPs are divided evenly across the participating devices.
  // Under the hetero tables the proportional-shard scale (<= 1, exactly 1.0
  // when absent) re-expresses the division over the degree fastest devices
  // in weakest-device FLOP-equivalents (src/hetero/hetero.h).
  return node.fwd_flops() * (1.0 + params.bwd_flops_multiplier) /
         static_cast<double>(config.degree()) *
         params.compute_scale(config.degree());
}

double layer_cost(const Node& node, const Config& config,
                  const CostParams& params) {
  if (params.comm) {
    // Comm-model pricing: all-reduces priced by the attached algorithm
    // library on the logical tensor shard (volume_bytes), halo exchanges by
    // the neighbor-exchange primitive (two message latencies + plane bytes
    // on the split group's link class); seconds are rescaled to
    // FLOP-equivalents so the total stays on Eq. (1)'s scale.
    double comm_flops = 0.0;
    for (const CollectiveComm& c : layer_collectives(node, config, params)) {
      const double weight =
          c.kind == CollectiveComm::Kind::kGradientAllReduce
              ? params.gradient_comm_discount
              : 1.0;
      const double seconds =
          c.kind == CollectiveComm::Kind::kHaloExchange
              ? params.comm->halo_exchange_time(c.bytes, c.group)
              : params.comm->collective_time(Collective::kAllReduce,
                                             c.volume_bytes, c.group);
      comm_flops += weight * seconds * params.seconds_to_flops;
    }
    return layer_flops(node, config, params) + comm_flops;
  }
  if (params.heterogeneity_aware()) {
    // Placement-aware pricing: each collective pays the bottleneck link of
    // its own placed group instead of the machine-wide weakest-link r.
    double comm_flops = 0.0;
    for (const CollectiveComm& c : layer_collectives(node, config, params)) {
      const double weight =
          c.kind == CollectiveComm::Kind::kGradientAllReduce
              ? params.gradient_comm_discount
              : 1.0;
      comm_flops += weight * params.group_r(c.group) * c.bytes;
    }
    return layer_flops(node, config, params) + comm_flops;
  }
  double comm_bytes = 0.0;
  for (const CollectiveComm& c : layer_collectives(node, config, params)) {
    const double weight =
        c.kind == CollectiveComm::Kind::kGradientAllReduce
            ? params.gradient_comm_discount
            : 1.0;
    comm_bytes += weight * c.bytes;
  }
  return layer_flops(node, config, params) + params.r * comm_bytes;
}

double transfer_bytes(const Edge& edge, const Config& src_config,
                      const Config& dst_config, const CostParams& params) {
  // Per-device need volume |A(.,d)| on each side and held-overlap volume
  // |A(v,d) n A(u,d)| under uniform block partitions with hierarchically
  // aligned (greedy prefix) placement:
  //   need_u  = vol / prod_t cu_t     (consumer role in the backward pass)
  //   need_v  = vol / prod_t cv_t     (consumer role in the forward pass)
  //   overlap = vol / prod_t max(cu_t, cv_t)
  // The overlap only exists on devices the producing side actually used: if
  // the receiving side runs on more devices than the producing side, the
  // devices beyond the producer's prefix hold nothing, and the max over
  // devices in the paper's t_x definition is the full need.
  double need_u = 1.0;
  double need_v = 1.0;
  double overlap = 1.0;
  for (size_t t = 0; t < edge.shape.size(); ++t) {
    const double extent = static_cast<double>(edge.shape[t]);
    const i32 sd = edge.src_dims[t];
    const i32 dd = edge.dst_dims[t];
    // Clamp split factors by the tensor extent along this dim (slices of a
    // larger iteration dim can be narrower than the dim itself).
    const double cu =
        sd >= 0 ? std::min(static_cast<double>(src_config[sd]), extent) : 1.0;
    const double cv =
        dd >= 0 ? std::min(static_cast<double>(dst_config[dd]), extent) : 1.0;
    need_u *= extent / cu;
    need_v *= extent / cv;
    overlap *= extent / std::max(cu, cv);
  }
  const i64 deg_u = src_config.degree();
  const i64 deg_v = dst_config.degree();
  // Forward: the activation flows u -> v; backward: its gradient v -> u.
  const double fwd =
      deg_v > deg_u ? need_v : std::max(0.0, need_v - overlap);
  const double bwd =
      deg_u > deg_v ? need_u : std::max(0.0, need_u - overlap);
  return (fwd + bwd) * params.bytes_per_element;
}

double edge_flop_byte_ratio(const CostParams& params, const Config& src_config,
                            const Config& dst_config) {
  if (!params.heterogeneity_aware()) return params.r;
  return params.group_r(std::max(src_config.degree(), dst_config.degree()));
}

double CostModel::cached_node_cost(NodeId v, const Config& config) const {
  double c;
  if (cache_->lookup_node(v, config, &c)) return c;
  c = layer_cost(graph_->node(v), config, params_);
  cache_->store_node(v, config, c);
  return c;
}

double CostModel::cached_edge_cost(const Edge& e, const Config& src_config,
                                   const Config& dst_config) const {
  const double ratio = edge_flop_byte_ratio(params_, src_config, dst_config);
  if (e.id < 0)  // synthetic edge not registered in the graph: no memo slot
    return ratio * transfer_bytes(e, src_config, dst_config, params_);
  double c;
  if (cache_->lookup_edge(e.id, src_config, dst_config, &c)) return c;
  c = ratio * transfer_bytes(e, src_config, dst_config, params_);
  cache_->store_edge(e.id, src_config, dst_config, c);
  return c;
}

CostBreakdown CostModel::evaluate(const Strategy& phi) const {
  PASE_CHECK(static_cast<i64>(phi.size()) == graph_->num_nodes());
  CostBreakdown b;
  for (const Node& n : graph_->nodes())
    b.layer += node_cost(n.id, phi[static_cast<size_t>(n.id)]);
  for (const Edge& e : graph_->edges())
    b.transfer += edge_cost(e, phi[static_cast<size_t>(e.src)],
                            phi[static_cast<size_t>(e.dst)]);
  return b;
}

double CostModel::delta_cost(const Strategy& phi, NodeId v,
                             const Config& new_config) const {
  const Config& old_config = phi[static_cast<size_t>(v)];
  double delta = node_cost(v, new_config) - node_cost(v, old_config);
  for (EdgeId eid : graph_->incident_edges(v)) {
    const Edge& e = graph_->edge(eid);
    const Config& src_old = phi[static_cast<size_t>(e.src)];
    const Config& dst_old = phi[static_cast<size_t>(e.dst)];
    const Config& src_new = e.src == v ? new_config : src_old;
    const Config& dst_new = e.dst == v ? new_config : dst_old;
    delta += edge_cost(e, src_new, dst_new) - edge_cost(e, src_old, dst_old);
  }
  return delta;
}

}  // namespace pase
