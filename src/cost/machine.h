// Machine description (paper §II): p devices, average peak FLOPS F per
// device, average link bandwidth B bytes/s; the cost model only needs the
// FLOP-to-byte ratio r = F/B. The discrete-event simulator (src/sim) uses
// the richer per-link fields.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace pase {

struct MachineSpec {
  std::string name;
  i64 num_devices = 1;          ///< p
  i64 devices_per_node = 8;     ///< GPUs per host
  double peak_flops = 1.0;      ///< F, per device
  double link_bandwidth = 1.0;  ///< B, bytes/s (average, for the cost model)

  /// Simulator-only refinements: intra-node (PCIe) vs inter-node (IB)
  /// bandwidths and a per-message latency.
  double intra_node_bandwidth = 0.0;  ///< bytes/s; 0 = use link_bandwidth
  double inter_node_bandwidth = 0.0;  ///< bytes/s; 0 = use link_bandwidth
  double link_latency_s = 5e-6;

  /// Achieved fraction of peak FLOPS (typical fp32 DNN utilization); used
  /// by the simulator for wall-clock compute time. The analytical cost
  /// model keeps peak F, as the paper does — it only needs relative ranks.
  double compute_efficiency = 0.35;

  /// Fraction of gradient all-reduce time hidden behind backward-pass
  /// compute (Mesh-TensorFlow overlaps them; the paper's §IV-B notes all
  /// such feasible optimizations were enabled in its measurements).
  double grad_overlap_efficiency = 1.0;

  /// Analytical-model weight for gradient all-reduce bytes (see
  /// CostParams::gradient_comm_discount). Machines with low balance hide a
  /// smaller fraction of the gradient sync, so the weight is higher.
  double gradient_comm_discount = 0.3;

  /// Heterogeneous clusters (paper §V): optional per-device peak FLOPS,
  /// rank-indexed, size num_devices. Empty = homogeneous at peak_flops.
  /// Following §V, the analytical cost model prices compute at the weakest
  /// device ("the primary bottleneck"); the simulator uses the true
  /// per-device peaks of the ranks a layer runs on.
  std::vector<double> device_flops;

  double flops_of(i64 rank) const {
    if (device_flops.empty()) return peak_flops;
    PASE_CHECK(rank >= 0 && rank < static_cast<i64>(device_flops.size()));
    return device_flops[static_cast<size_t>(rank)];
  }

  /// Weakest device overall (the §V rule for the analytical model).
  double weakest_flops() const {
    if (device_flops.empty()) return peak_flops;
    return *std::min_element(device_flops.begin(), device_flops.end());
  }

  /// Weakest device among ranks [0, degree) — the prefix a layer with that
  /// parallel degree occupies under the aligned placement.
  double prefix_weakest_flops(i64 degree) const {
    if (device_flops.empty()) return peak_flops;
    const i64 limit = std::min<i64>(degree, num_devices);
    double w = device_flops[0];
    for (i64 d = 1; d < limit; ++d) w = std::min(w, flops_of(d));
    return w;
  }

  double flop_to_byte_ratio() const {
    PASE_CHECK(link_bandwidth > 0);
    return peak_flops / link_bandwidth;
  }

  double intra_bw() const {
    return intra_node_bandwidth > 0 ? intra_node_bandwidth : link_bandwidth;
  }
  double inter_bw() const {
    return inter_node_bandwidth > 0 ? inter_node_bandwidth : link_bandwidth;
  }

  /// GeForce GTX 1080 Ti cluster: 8 GPUs/node, PCIe with peer-to-peer
  /// access, InfiniBand across nodes (paper §IV-B machine (a)).
  static MachineSpec gtx1080ti(i64 p) {
    MachineSpec m;
    m.name = "1080Ti";
    m.num_devices = p;
    m.peak_flops = 11.3e12;          // fp32
    m.intra_node_bandwidth = 12e9;  // PCIe 3.0 x16 with P2P
    m.inter_node_bandwidth = 7e9;   // FDR InfiniBand NIC per node
    // Analytical-model B: the weakest link, as the paper's §V prescribes.
    m.link_bandwidth = 7e9;
    // High machine balance: most of the gradient sync hides behind backward
    // compute.
    m.gradient_comm_discount = 0.15;
    return m;
  }

  /// GeForce RTX 2080 Ti cluster. 2080 Ti does not support PCIe
  /// peer-to-peer, so transfers stage through host memory: much lower
  /// effective bandwidth at a higher compute peak => very low machine
  /// balance, which amplifies strategy inefficiencies (paper §IV-B).
  static MachineSpec rtx2080ti(i64 p) {
    MachineSpec m;
    m.name = "2080Ti";
    m.num_devices = p;
    m.peak_flops = 13.4e12;
    m.intra_node_bandwidth = 3e9;  // staged through the host, no P2P
    m.inter_node_bandwidth = 3e9;
    m.link_bandwidth = 3e9;
    // Low machine balance: gradient sync mostly exceeds what backward
    // compute can hide.
    m.gradient_comm_discount = 0.5;
    return m;
  }

  /// A heterogeneous cluster: the first half of the ranks are 1080Ti-class
  /// devices, the second half an older generation at `slow_fraction` of the
  /// peak. Exercises the paper's §V heterogeneity rule.
  static MachineSpec mixed_cluster(i64 p, double slow_fraction = 0.6) {
    MachineSpec m = gtx1080ti(p);
    m.name = "Mixed";
    m.device_flops.assign(static_cast<size_t>(p), m.peak_flops);
    for (i64 d = p / 2; d < p; ++d)
      m.device_flops[static_cast<size_t>(d)] = m.peak_flops * slow_fraction;
    return m;
  }

  // Fault-injection perturbations (src/fault): both return *this so a
  // FaultModel can chain them on a copy of the healthy spec.

  /// Slows rank `rank` to 1/`slowdown` of its current speed (straggler:
  /// thermal throttling, a sick host, a contended PCIe switch). Materializes
  /// `device_flops` on first use so the remaining ranks keep their speed.
  MachineSpec& slow_device(i64 rank, double slowdown) {
    PASE_CHECK(rank >= 0 && rank < num_devices && slowdown >= 1.0);
    if (device_flops.empty())
      device_flops.assign(static_cast<size_t>(num_devices), peak_flops);
    device_flops[static_cast<size_t>(rank)] /= slowdown;
    return *this;
  }

  /// Scales link bandwidths by the given factors in (0, 1] (degraded PCIe
  /// lane width, a flapping or rate-limited NIC). The analytical-model B
  /// follows the weakest of the two scaled links, matching how the presets
  /// derive it.
  MachineSpec& scale_links(double intra_factor, double inter_factor) {
    PASE_CHECK(intra_factor > 0 && intra_factor <= 1.0);
    PASE_CHECK(inter_factor > 0 && inter_factor <= 1.0);
    intra_node_bandwidth = intra_bw() * intra_factor;
    inter_node_bandwidth = inter_bw() * inter_factor;
    link_bandwidth = std::min(intra_node_bandwidth, inter_node_bandwidth);
    return *this;
  }
};

}  // namespace pase
