// Machine description (paper §II): p devices, average peak FLOPS F per
// device, average link bandwidth B bytes/s; the cost model only needs the
// FLOP-to-byte ratio r = F/B. The discrete-event simulator (src/sim) uses
// the richer per-link fields.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace pase {

/// One interconnect tier of a multi-level fabric: every device group whose
/// placement spans at most `span` ranks communicates over a link of this
/// bandwidth/latency. Tiers are kept sorted by span; the smallest tier that
/// covers a group wins (NVLink island < PCIe host < IB rack < Ethernet pod).
struct LinkTier {
  i64 span = 0;            ///< max group extent served by this tier
  double bandwidth = 0.0;  ///< bytes/s (the β term)
  double latency_s = 0.0;  ///< per-message latency (the α term)
};

struct MachineSpec {
  std::string name;
  i64 num_devices = 1;          ///< p
  i64 devices_per_node = 8;     ///< GPUs per host
  double peak_flops = 1.0;      ///< F, per device
  double link_bandwidth = 1.0;  ///< B, bytes/s (average, for the cost model)

  /// Simulator-only refinements: intra-node (PCIe) vs inter-node (IB)
  /// bandwidths and a per-message latency.
  double intra_node_bandwidth = 0.0;  ///< bytes/s; 0 = use link_bandwidth
  double inter_node_bandwidth = 0.0;  ///< bytes/s; 0 = use link_bandwidth
  double link_latency_s = 5e-6;

  /// Achieved fraction of peak FLOPS (typical fp32 DNN utilization); used
  /// by the simulator for wall-clock compute time. The analytical cost
  /// model keeps peak F, as the paper does — it only needs relative ranks.
  double compute_efficiency = 0.35;

  /// Fraction of gradient all-reduce time hidden behind backward-pass
  /// compute (Mesh-TensorFlow overlaps them; the paper's §IV-B notes all
  /// such feasible optimizations were enabled in its measurements).
  double grad_overlap_efficiency = 1.0;

  /// Analytical-model weight for gradient all-reduce bytes (see
  /// CostParams::gradient_comm_discount). Machines with low balance hide a
  /// smaller fraction of the gradient sync, so the weight is higher.
  double gradient_comm_discount = 0.3;

  /// Heterogeneous clusters (paper §V): optional per-device peak FLOPS,
  /// rank-indexed, size num_devices. Empty = homogeneous at peak_flops.
  /// Following §V, the analytical cost model prices compute at the weakest
  /// device ("the primary bottleneck"); the simulator uses the true
  /// per-device peaks of the ranks a layer runs on.
  std::vector<double> device_flops;

  /// Multi-tier interconnect (optional): sorted by ascending span, spans
  /// strictly increasing, the last tier covering num_devices. Empty =
  /// two-level intra/inter behavior everywhere (the legacy presets). Only
  /// the heterogeneity-aware path (src/hetero, CommModel) consults tiers;
  /// the legacy analytical model keeps the scalar link_bandwidth.
  std::vector<LinkTier> link_tiers;

  bool has_link_tiers() const { return !link_tiers.empty(); }

  /// The smallest tier whose span covers a group of `group` consecutive
  /// ranks; the widest tier if none does (group > machine, defensive).
  const LinkTier& tier_for_group(i64 group) const {
    PASE_CHECK(!link_tiers.empty());
    for (const LinkTier& t : link_tiers)
      if (group <= t.span) return t;
    return link_tiers.back();
  }

  double tier_bandwidth(i64 group) const {
    return tier_for_group(group).bandwidth;
  }
  double tier_latency(i64 group) const { return tier_for_group(group).latency_s; }

  double flops_of(i64 rank) const {
    if (device_flops.empty()) return peak_flops;
    PASE_CHECK(rank >= 0 && rank < static_cast<i64>(device_flops.size()));
    return device_flops[static_cast<size_t>(rank)];
  }

  /// Weakest device overall (the §V rule for the analytical model).
  double weakest_flops() const {
    if (device_flops.empty()) return peak_flops;
    return *std::min_element(device_flops.begin(), device_flops.end());
  }

  /// Weakest device among ranks [0, degree) — the prefix a layer with that
  /// parallel degree occupies under the aligned placement.
  double prefix_weakest_flops(i64 degree) const {
    if (device_flops.empty()) return peak_flops;
    const i64 limit = std::min<i64>(degree, num_devices);
    double w = device_flops[0];
    for (i64 d = 1; d < limit; ++d) w = std::min(w, flops_of(d));
    return w;
  }

  double flop_to_byte_ratio() const {
    PASE_CHECK(link_bandwidth > 0);
    return peak_flops / link_bandwidth;
  }

  double intra_bw() const {
    return intra_node_bandwidth > 0 ? intra_node_bandwidth : link_bandwidth;
  }
  double inter_bw() const {
    return inter_node_bandwidth > 0 ? inter_node_bandwidth : link_bandwidth;
  }

  /// GeForce GTX 1080 Ti cluster: 8 GPUs/node, PCIe with peer-to-peer
  /// access, InfiniBand across nodes (paper §IV-B machine (a)).
  static MachineSpec gtx1080ti(i64 p) {
    MachineSpec m;
    m.name = "1080Ti";
    m.num_devices = p;
    m.peak_flops = 11.3e12;          // fp32
    m.intra_node_bandwidth = 12e9;  // PCIe 3.0 x16 with P2P
    m.inter_node_bandwidth = 7e9;   // FDR InfiniBand NIC per node
    // Analytical-model B: the weakest link, as the paper's §V prescribes.
    m.link_bandwidth = 7e9;
    // High machine balance: most of the gradient sync hides behind backward
    // compute.
    m.gradient_comm_discount = 0.15;
    return m;
  }

  /// GeForce RTX 2080 Ti cluster. 2080 Ti does not support PCIe
  /// peer-to-peer, so transfers stage through host memory: much lower
  /// effective bandwidth at a higher compute peak => very low machine
  /// balance, which amplifies strategy inefficiencies (paper §IV-B).
  static MachineSpec rtx2080ti(i64 p) {
    MachineSpec m;
    m.name = "2080Ti";
    m.num_devices = p;
    m.peak_flops = 13.4e12;
    m.intra_node_bandwidth = 3e9;  // staged through the host, no P2P
    m.inter_node_bandwidth = 3e9;
    m.link_bandwidth = 3e9;
    // Low machine balance: gradient sync mostly exceeds what backward
    // compute can hide.
    m.gradient_comm_discount = 0.5;
    return m;
  }

  /// A heterogeneous cluster: the first half of the ranks are 1080Ti-class
  /// devices, the second half an older generation at `slow_fraction` of the
  /// peak. Exercises the paper's §V heterogeneity rule.
  static MachineSpec mixed_cluster(i64 p, double slow_fraction = 0.6) {
    MachineSpec m = gtx1080ti(p);
    m.name = "Mixed";
    m.device_flops.assign(static_cast<size_t>(p), m.peak_flops);
    for (i64 d = p / 2; d < p; ++d)
      m.device_flops[static_cast<size_t>(d)] = m.peak_flops * slow_fraction;
    return m;
  }

  /// A mixed 1080Ti+2080Ti pod (ROADMAP item 3): the first half of the
  /// ranks are 2080Ti-class peaks behind the higher 1080Ti-style links, the
  /// second half 1080Ti-class. Two link tiers: PCIe within a host, IB
  /// across hosts. The scalar fields keep the §V weakest-device /
  /// weakest-link convention so the legacy model stays well-defined.
  static MachineSpec mixed_pod(i64 p) {
    MachineSpec m = gtx1080ti(p);
    m.name = "MixedPod";
    m.device_flops.assign(static_cast<size_t>(p), m.peak_flops);
    for (i64 d = 0; d < p / 2; ++d)
      m.device_flops[static_cast<size_t>(d)] = 13.4e12;  // 2080Ti-class peak
    m.link_tiers = {{std::min(m.devices_per_node, p), m.intra_node_bandwidth,
                     m.link_latency_s}};
    if (p > m.devices_per_node)
      m.link_tiers.push_back(
          {p, m.inter_node_bandwidth, m.link_latency_s * 4});
    return m;
  }

  /// A homogeneous pod behind a three-tier interconnect: PCIe island (8),
  /// IB rack (16), oversubscribed pod spine beyond. Small groups are cheap,
  /// pod-wide collectives pay the spine.
  static MachineSpec multi_tier(i64 p) {
    MachineSpec m = gtx1080ti(p);
    m.name = "MultiTier";
    m.link_tiers = {{8, 12e9, m.link_latency_s},
                    {16, 7e9, m.link_latency_s * 4}};
    if (p > 16) m.link_tiers.push_back({p, 3e9, m.link_latency_s * 10});
    // §V analytical B: the weakest link any group can land on.
    m.link_bandwidth = m.link_tiers.back().bandwidth;
    m.inter_node_bandwidth = m.link_bandwidth;
    return m;
  }

  // Fault-injection perturbations (src/fault): both return *this so a
  // FaultModel can chain them on a copy of the healthy spec.

  /// Slows rank `rank` to 1/`slowdown` of its current speed (straggler:
  /// thermal throttling, a sick host, a contended PCIe switch). Materializes
  /// `device_flops` on first use so the remaining ranks keep their speed.
  MachineSpec& slow_device(i64 rank, double slowdown) {
    PASE_CHECK(rank >= 0 && rank < num_devices && slowdown >= 1.0);
    if (device_flops.empty())
      device_flops.assign(static_cast<size_t>(num_devices), peak_flops);
    device_flops[static_cast<size_t>(rank)] /= slowdown;
    return *this;
  }

  /// Scales link bandwidths by the given factors in (0, 1] (degraded PCIe
  /// lane width, a flapping or rate-limited NIC). The analytical-model B
  /// follows the weakest of the two scaled links, matching how the presets
  /// derive it.
  MachineSpec& scale_links(double intra_factor, double inter_factor) {
    PASE_CHECK(intra_factor > 0 && intra_factor <= 1.0);
    PASE_CHECK(inter_factor > 0 && inter_factor <= 1.0);
    intra_node_bandwidth = intra_bw() * intra_factor;
    inter_node_bandwidth = inter_bw() * inter_factor;
    link_bandwidth = std::min(intra_node_bandwidth, inter_node_bandwidth);
    for (LinkTier& t : link_tiers) {
      t.bandwidth *= t.span <= devices_per_node ? intra_factor : inter_factor;
      link_bandwidth = std::min(link_bandwidth, t.bandwidth);
    }
    return *this;
  }
};

}  // namespace pase
