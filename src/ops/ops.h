// Operator library: factory functions that build computation-graph nodes
// with the analytical cost-model payload filled in (iteration space, FLOP
// density, parameter tensors, reduction dims, halos, reduction-output spec).
//
// Conventions, matching the paper's Table II dimension legend:
//   conv/pool:  b c h w n r s   (batch, in-chan, out-height, out-width,
//                                out-chan, filter-height, filter-width)
//   FC:         b n c           (batch, out-chan, in-chan)
//   softmax:    b n   or  b s v
//   embedding:  b s d v         (batch, seq-len, embed-dim, vocab)
//   LSTM:       l b s d e       (layers, batch, seq-len, embed, hidden)
//   attention:  b s h c k       (batch, seq-len, heads, query-chan, kv-chan)
//   ffn:        b s d e         (batch, seq-len, model-dim, hidden-dim)
//
// FLOP counts are forward-pass; the cost model applies a backward multiplier.
#pragma once

#include <string>

#include "graph/node.h"
#include "util/types.h"

namespace pase::ops {

/// 2-D convolution producing an n x h x w output from a c-channel input with
/// an r x s filter. h/w are *output* spatial extents. Filter dims are not
/// splittable. Spatial dims are splittable only when `allow_spatial_split`
/// is set (splitting them incurs halo exchange and is never chosen in the
/// paper's Table II; leaving them out keeps |C(v)| at the paper's reported
/// sizes). Splitting c/r/s incurs a partial-sum all-reduce of the output.
Node conv2d(const std::string& name, i64 b, i64 c, i64 h, i64 w, i64 n, i64 r,
            i64 s, bool allow_spatial_split = false);

/// Depthwise convolution (MobileNet-style): each of the c channels is
/// convolved with its own r x s filter; there is no cross-channel
/// reduction, so splitting c is communication-free.
Node depthwise_conv2d(const std::string& name, i64 b, i64 c, i64 h, i64 w,
                      i64 r, i64 s, bool allow_spatial_split = false);

/// Max/avg pooling with an r x s window over a c-channel h x w output map.
Node pool(const std::string& name, i64 b, i64 c, i64 h, i64 w, i64 r, i64 s,
          bool allow_spatial_split = false);

/// Fully connected layer: [b, c] x [c, n] -> [b, n].
Node fully_connected(const std::string& name, i64 b, i64 n, i64 c);

/// Softmax (+ cross-entropy loss) over n classes. Splitting n all-reduces
/// the per-row normalizers.
Node softmax(const std::string& name, i64 b, i64 n);

/// Softmax over vocabulary v applied per (batch, sequence) position.
Node softmax_seq(const std::string& name, i64 b, i64 s, i64 v);

/// Embedding lookup from a v x d table for b x s tokens. Splitting v shards
/// the table; per-shard partial outputs are all-reduced.
Node embedding(const std::string& name, i64 b, i64 s, i64 d, i64 v);

/// Whole RNN/LSTM stack as a single node (paper §IV-A): l layers, seq s,
/// embed d, hidden e. Splitting l / s exposes the intra-layer pipeline
/// parallelism the paper describes.
Node lstm(const std::string& name, i64 l, i64 b, i64 s, i64 d, i64 e);

/// Multi-head attention module (self- or cross-attention): h heads with
/// query channels c and key/value channels k per head; model dim = h * c.
/// s_kv is the key/value sequence length (== s for self-attention).
Node attention(const std::string& name, i64 b, i64 s, i64 h, i64 c, i64 k,
               i64 s_kv);

/// Transformer position-wise feed-forward: d -> e -> d.
Node feed_forward(const std::string& name, i64 b, i64 s, i64 d, i64 e);

/// Per-position output projection onto the vocabulary: a [b*s, d] x [d, v]
/// GEMM (the "FC" rows of Table II with dimensions "bsvd").
Node projection(const std::string& name, i64 b, i64 s, i64 v, i64 d);

/// Layer normalization over model dim d.
Node layer_norm(const std::string& name, i64 b, i64 s, i64 d);

/// Batch normalization over a b x c x h x w activation.
Node batch_norm(const std::string& name, i64 b, i64 c, i64 h, i64 w);

/// Channel-dim concatenation of inception branches; c is the total output
/// channel count.
Node concat(const std::string& name, i64 b, i64 c, i64 h, i64 w);

/// Pointwise op (ReLU, residual add, dropout) over a b x c x h x w tensor.
Node elementwise(const std::string& name, i64 b, i64 c, i64 h, i64 w);

/// Pointwise op over a b x s x d tensor (transformer residual/activation).
Node elementwise_seq(const std::string& name, i64 b, i64 s, i64 d);

/// Graph input placeholder (no compute, no params).
Node input(const std::string& name, i64 b, i64 c, i64 h, i64 w);

}  // namespace pase::ops
