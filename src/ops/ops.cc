#include "ops/ops.h"

#include "util/check.h"

namespace pase::ops {

namespace {

IterDim dim(const char* name, i64 size, bool splittable = true) {
  return IterDim{name, size, splittable};
}

}  // namespace

Node conv2d(const std::string& name, i64 b, i64 c, i64 h, i64 w, i64 n, i64 r,
            i64 s, bool allow_spatial_split) {
  Node node;
  node.name = name;
  node.kind = OpKind::kConv2D;
  node.space = IterSpace({dim("b", b), dim("c", c),
                          dim("h", h, allow_spatial_split),
                          dim("w", w, allow_spatial_split), dim("n", n),
                          dim("r", r, false), dim("s", s, false)});
  node.flops_per_point = 2.0;  // one multiply-add per iteration point
  node.params.push_back(ParamTensor{c * n * r * s, {1, 4, 5, 6}});
  node.params.push_back(ParamTensor{n, {4}});  // bias
  node.reduction_dims = {1, 5, 6};             // c, r, s
  if (r > 1) node.halos.push_back(HaloSpec{2, (r - 1) / 2});
  if (s > 1) node.halos.push_back(HaloSpec{3, (s - 1) / 2});
  node.output = OutputSpec{b * n * h * w, {0, 4, 2, 3}};
  return node;
}

Node depthwise_conv2d(const std::string& name, i64 b, i64 c, i64 h, i64 w,
                      i64 r, i64 s, bool allow_spatial_split) {
  Node node;
  node.name = name;
  node.kind = OpKind::kConv2D;
  node.space = IterSpace({dim("b", b), dim("c", c),
                          dim("h", h, allow_spatial_split),
                          dim("w", w, allow_spatial_split),
                          dim("r", r, false), dim("s", s, false)});
  node.flops_per_point = 2.0;
  node.params.push_back(ParamTensor{c * r * s, {1, 4, 5}});
  // The only contractions are the filter dims; splitting them (channel
  // gate) leaves each device with a partial window sum that must be
  // all-reduced. Serial filter dims — the legacy space — emit nothing.
  node.reduction_dims = {4, 5};
  if (r > 1) node.halos.push_back(HaloSpec{2, (r - 1) / 2});
  if (s > 1) node.halos.push_back(HaloSpec{3, (s - 1) / 2});
  node.output = OutputSpec{b * c * h * w, {0, 1, 2, 3}};
  return node;
}

Node pool(const std::string& name, i64 b, i64 c, i64 h, i64 w, i64 r, i64 s,
          bool allow_spatial_split) {
  Node node;
  node.name = name;
  node.kind = OpKind::kPool;
  node.space = IterSpace({dim("b", b), dim("c", c),
                          dim("h", h, allow_spatial_split),
                          dim("w", w, allow_spatial_split),
                          dim("r", r, false), dim("s", s, false)});
  node.flops_per_point = 1.0;  // one compare/accumulate per window element
  // Splitting the pooling window (channel gate) leaves partial max/sum
  // results that combine with an all-reduce over the window group.
  node.reduction_dims = {4, 5};
  if (r > 1) node.halos.push_back(HaloSpec{2, (r - 1) / 2});
  if (s > 1) node.halos.push_back(HaloSpec{3, (s - 1) / 2});
  node.output = OutputSpec{b * c * h * w, {0, 1, 2, 3}};
  return node;
}

Node fully_connected(const std::string& name, i64 b, i64 n, i64 c) {
  Node node;
  node.name = name;
  node.kind = OpKind::kFullyConnected;
  node.space = IterSpace({dim("b", b), dim("n", n), dim("c", c)});
  node.flops_per_point = 2.0;
  node.params.push_back(ParamTensor{n * c, {1, 2}});
  node.params.push_back(ParamTensor{n, {1}});  // bias
  node.reduction_dims = {2};
  node.output = OutputSpec{b * n, {0, 1}};
  return node;
}

Node softmax(const std::string& name, i64 b, i64 n) {
  Node node;
  node.name = name;
  node.kind = OpKind::kSoftmax;
  node.space = IterSpace({dim("b", b), dim("n", n)});
  node.flops_per_point = 5.0;  // exp, max, two sums, divide (amortized)
  node.reduction_dims = {1};
  // The reduction result is the per-row normalizer: volume b.
  node.output = OutputSpec{b, {0}};
  return node;
}

Node softmax_seq(const std::string& name, i64 b, i64 s, i64 v) {
  Node node;
  node.name = name;
  node.kind = OpKind::kSoftmax;
  node.space = IterSpace({dim("b", b), dim("s", s, false), dim("v", v)});
  node.flops_per_point = 5.0;
  node.reduction_dims = {2};
  node.output = OutputSpec{b * s, {0, 1}};
  return node;
}

Node embedding(const std::string& name, i64 b, i64 s, i64 d, i64 v) {
  Node node;
  node.name = name;
  node.kind = OpKind::kEmbedding;
  node.space =
      IterSpace({dim("b", b), dim("s", s, false), dim("d", d), dim("v", v)});
  // A lookup moves b*s*d elements regardless of v; expressing the op in the
  // 4-D (b,s,d,v) space (so the vocab dim is a split choice, Table II) means
  // the per-point density must absorb the 1/v factor.
  node.flops_per_point = 1.0 / static_cast<double>(v);
  node.params.push_back(ParamTensor{v * d, {3, 2}});
  // Splitting v makes each device produce partial rows (tokens it owns);
  // combining them is an all-reduce of the b*s*d output.
  node.reduction_dims = {3};
  node.output = OutputSpec{b * s * d, {0, 1, 2}};
  return node;
}

Node lstm(const std::string& name, i64 l, i64 b, i64 s, i64 d, i64 e) {
  Node node;
  node.name = name;
  node.kind = OpKind::kLSTM;
  node.space =
      IterSpace({dim("l", l), dim("b", b), dim("s", s), dim("d", d),
                 dim("e", e)});
  // Four gates, each an input GEMM (d x e) plus a hidden GEMM (e x e);
  // 2 FLOPs per MAC. Normalized per point of the l*b*s*d*e space:
  // 8 + 8*e/d (the hidden-GEMM term rescaled onto the d axis).
  node.flops_per_point = 8.0 + 8.0 * static_cast<double>(e) /
                                   static_cast<double>(d);
  node.params.push_back(
      ParamTensor{l * 4 * (d * e + e * e), {0, 3, 4}});
  node.reduction_dims = {3};  // input-dim contraction
  node.output = OutputSpec{l * b * s * e, {0, 1, 2, 4}};
  return node;
}

Node attention(const std::string& name, i64 b, i64 s, i64 h, i64 c, i64 k,
               i64 s_kv) {
  PASE_CHECK(s_kv >= 1);
  Node node;
  node.name = name;
  node.kind = OpKind::kAttention;
  // s and c are kept serial: sequence splits would shard the attention
  // pattern itself and per-head query channels are the natural atom; the
  // paper's Table II configurations split only b, h (and the space keeps k
  // as a further choice).
  node.space = IterSpace({dim("b", b), dim("s", s, false), dim("h", h),
                          dim("c", c, false), dim("k", k)});
  const double D = static_cast<double>(h * c);   // model dim
  const double Dk = static_cast<double>(h * k);  // kv dim
  // Q/K/V/output projections (~8*b*s*D^2 when c == k) plus scores and
  // context (~4*b*s*s_kv*D); normalized by the space volume b*s*h*c*k.
  const double fwd = 2.0 * static_cast<double>(b) * static_cast<double>(s) *
                         (D * D + D * Dk + Dk * Dk + D * D) +
                     4.0 * static_cast<double>(b) * static_cast<double>(s) *
                         static_cast<double>(s_kv) * D;
  node.flops_per_point = fwd / static_cast<double>(node.space.volume());
  node.params.push_back(ParamTensor{
      static_cast<i64>(2 * D * D + 2 * D * Dk), {2, 3, 4}});
  node.reduction_dims = {4};  // contraction over kv channels
  node.output = OutputSpec{b * s * h * c, {0, 1, 2, 3}};
  return node;
}

Node feed_forward(const std::string& name, i64 b, i64 s, i64 d, i64 e) {
  Node node;
  node.name = name;
  node.kind = OpKind::kFeedForward;
  node.space =
      IterSpace({dim("b", b), dim("s", s, false), dim("d", d), dim("e", e)});
  node.flops_per_point = 4.0;  // two GEMMs, 2 FLOPs per MAC each
  node.params.push_back(ParamTensor{2 * d * e, {2, 3}});
  // Either GEMM's contraction needs a partial-sum all-reduce when its
  // contracted dim is split.
  node.reduction_dims = {2, 3};
  node.output = OutputSpec{b * s * d, {0, 1, 2}};
  return node;
}

Node projection(const std::string& name, i64 b, i64 s, i64 v, i64 d) {
  Node node;
  node.name = name;
  node.kind = OpKind::kFullyConnected;
  node.space = IterSpace({dim("b", b), dim("s", s, false), dim("v", v),
                          dim("d", d)});
  node.flops_per_point = 2.0;
  node.params.push_back(ParamTensor{v * d, {2, 3}});
  node.reduction_dims = {3};
  node.output = OutputSpec{b * s * v, {0, 1, 2}};
  return node;
}

Node layer_norm(const std::string& name, i64 b, i64 s, i64 d) {
  Node node;
  node.name = name;
  node.kind = OpKind::kLayerNorm;
  node.space = IterSpace({dim("b", b), dim("s", s, false), dim("d", d)});
  node.flops_per_point = 5.0;
  node.params.push_back(ParamTensor{2 * d, {2}});
  node.reduction_dims = {2};
  node.output = OutputSpec{b * s, {0, 1}};
  return node;
}

Node batch_norm(const std::string& name, i64 b, i64 c, i64 h, i64 w) {
  Node node;
  node.name = name;
  node.kind = OpKind::kBatchNorm;
  node.space = IterSpace({dim("b", b), dim("c", c), dim("h", h, false),
                          dim("w", w, false)});
  node.flops_per_point = 4.0;
  node.params.push_back(ParamTensor{2 * c, {1}});
  node.reduction_dims = {0, 2, 3};  // statistics over batch and space
  node.output = OutputSpec{c, {1}};
  return node;
}

Node concat(const std::string& name, i64 b, i64 c, i64 h, i64 w) {
  Node node;
  node.name = name;
  node.kind = OpKind::kConcat;
  node.space = IterSpace({dim("b", b), dim("c", c), dim("h", h, false),
                          dim("w", w, false)});
  node.flops_per_point = 0.0;  // pure data movement, captured by t_x
  node.output = OutputSpec{b * c * h * w, {0, 1, 2, 3}};
  return node;
}

Node elementwise(const std::string& name, i64 b, i64 c, i64 h, i64 w) {
  Node node;
  node.name = name;
  node.kind = OpKind::kElementwise;
  node.space = IterSpace({dim("b", b), dim("c", c), dim("h", h, false),
                          dim("w", w, false)});
  node.flops_per_point = 1.0;
  node.output = OutputSpec{b * c * h * w, {0, 1, 2, 3}};
  return node;
}

Node elementwise_seq(const std::string& name, i64 b, i64 s, i64 d) {
  Node node;
  node.name = name;
  node.kind = OpKind::kElementwise;
  node.space = IterSpace({dim("b", b), dim("s", s, false), dim("d", d)});
  node.flops_per_point = 1.0;
  node.output = OutputSpec{b * s * d, {0, 1, 2}};
  return node;
}

Node input(const std::string& name, i64 b, i64 c, i64 h, i64 w) {
  Node node;
  node.name = name;
  node.kind = OpKind::kInput;
  node.space = IterSpace({dim("b", b), dim("c", c), dim("h", h, false),
                          dim("w", w, false)});
  node.flops_per_point = 0.0;
  node.output = OutputSpec{b * c * h * w, {0, 1, 2, 3}};
  return node;
}

}  // namespace pase::ops
