#include "io/model_parser.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "ops/ops.h"

namespace pase {

namespace {

/// key=value argument bag for one `node` line.
class Args {
 public:
  bool parse(std::istringstream& ls, std::string* error) {
    std::string token;
    while (ls >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
        *error = "expected key=value, got '" + token + "'";
        return false;
      }
      i64 value = 0;
      try {
        value = std::stoll(token.substr(eq + 1));
      } catch (...) {
        *error = "non-integer value in '" + token + "'";
        return false;
      }
      const std::string key = token.substr(0, eq);
      // Every key is a dimension extent except the spatial-split flag, so
      // non-positive values can only be mistakes.
      if (value < 1 && key != "spatial") {
        *error = "non-positive value in '" + token + "'";
        return false;
      }
      if (key == "spatial" && (value < 0 || value > 1)) {
        *error = "spatial must be 0 or 1, got '" + token + "'";
        return false;
      }
      if (!values_.emplace(key, value).second) {
        *error = "duplicate key '" + key + "'";
        return false;
      }
    }
    return true;
  }

  /// Required key; flags `error` when absent.
  i64 get(const std::string& key, std::string* error) {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (error->empty()) *error = "missing required key '" + key + "'";
      return 1;
    }
    used_.insert(*it);
    return it->second;
  }

  i64 get_or(const std::string& key, i64 fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.insert(*it);
    return it->second;
  }

  /// True when `batch` times every dimension value overflows the headroom
  /// int64 table sizing needs. The op builders multiply dim extents into
  /// iteration-space point counts (and the cost model into byte counts), so
  /// a product past ~2^61 is rejected before any op constructor runs —
  /// signed overflow downstream would be undefined behaviour, not a
  /// recoverable error.
  bool product_overflows(i64 batch) const {
    i64 prod = batch;
    for (const auto& kv : values_) {
      if (kv.first == "spatial" || kv.first == "b") continue;  // b == batch
      if (__builtin_mul_overflow(prod, kv.second, &prod)) return true;
      if (prod > (i64{1} << 61)) return true;
    }
    return false;
  }

  /// Any keys never consumed (typo detection).
  std::string unused() const {
    for (const auto& kv : values_)
      if (!used_.count(kv)) return kv.first;
    return "";
  }

 private:
  std::map<std::string, i64> values_;
  std::set<std::pair<const std::string, i64>> used_;
};

}  // namespace

ModelParseResult parse_model(const std::string& text,
                             const ModelParseLimits& limits) {
  ModelParseResult result;
  std::istringstream is(text);
  std::string line;
  i64 line_no = 0;
  bool header_seen = false;
  i64 batch = 1;
  std::map<std::string, NodeId> by_name;

  auto fail = [&](const std::string& why) {
    result.error = "line " + std::to_string(line_no) + ": " + why;
    return result;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;

    if (!header_seen) {
      std::string version;
      if (kw != "pase-model" || !(ls >> version) || version != "v1")
        return fail("expected header 'pase-model v1'");
      header_seen = true;
      continue;
    }

    if (kw == "model") {
      ls >> result.name;
    } else if (kw == "batch") {
      if (!(ls >> batch) || batch < 1) return fail("bad batch size");
    } else if (kw == "node") {
      std::string name, op;
      if (!(ls >> name >> op)) return fail("node needs a name and an op");
      if (by_name.count(name)) return fail("duplicate node '" + name + "'");
      if (limits.max_nodes > 0 &&
          result.graph.num_nodes() >= limits.max_nodes)
        return fail("model exceeds the maximum of " +
                    std::to_string(limits.max_nodes) + " nodes");
      Args args;
      std::string err;
      if (!args.parse(ls, &err)) return fail(err);
      const i64 b = args.get_or("b", batch);
      if (args.product_overflows(b))
        return fail("dimension product of node '" + name +
                    "' overflows 64-bit table sizing");

      Node node;
      if (op == "conv2d") {
        node = ops::conv2d(name, b, args.get("c", &err), args.get("h", &err),
                           args.get("w", &err), args.get("n", &err),
                           args.get("r", &err), args.get("s", &err),
                           args.get_or("spatial", 0) != 0);
      } else if (op == "dwconv") {
        node = ops::depthwise_conv2d(
            name, b, args.get("c", &err), args.get("h", &err),
            args.get("w", &err), args.get("r", &err), args.get("s", &err),
            args.get_or("spatial", 0) != 0);
      } else if (op == "pool") {
        node = ops::pool(name, b, args.get("c", &err), args.get("h", &err),
                         args.get("w", &err), args.get("r", &err),
                         args.get("s", &err), args.get_or("spatial", 0) != 0);
      } else if (op == "fc") {
        node = ops::fully_connected(name, b, args.get("n", &err),
                                    args.get("c", &err));
      } else if (op == "softmax") {
        node = ops::softmax(name, b, args.get("n", &err));
      } else if (op == "softmax_seq") {
        node = ops::softmax_seq(name, b, args.get("s", &err),
                                args.get("v", &err));
      } else if (op == "embedding") {
        node = ops::embedding(name, b, args.get("s", &err),
                              args.get("d", &err), args.get("v", &err));
      } else if (op == "lstm") {
        node = ops::lstm(name, args.get("l", &err), b, args.get("s", &err),
                         args.get("d", &err), args.get("e", &err));
      } else if (op == "attention") {
        const i64 s = args.get("s", &err);
        node = ops::attention(name, b, s, args.get("heads", &err),
                              args.get("qk", &err), args.get("qk", &err),
                              args.get_or("skv", s));
      } else if (op == "ffn") {
        node = ops::feed_forward(name, b, args.get("s", &err),
                                 args.get("d", &err), args.get("e", &err));
      } else if (op == "layernorm") {
        node = ops::layer_norm(name, b, args.get("s", &err),
                               args.get("d", &err));
      } else if (op == "batchnorm") {
        node = ops::batch_norm(name, b, args.get("c", &err),
                               args.get("h", &err), args.get("w", &err));
      } else if (op == "concat") {
        node = ops::concat(name, b, args.get("c", &err), args.get("h", &err),
                           args.get("w", &err));
      } else if (op == "elementwise") {
        node = ops::elementwise(name, b, args.get("c", &err),
                                args.get("h", &err), args.get("w", &err));
      } else if (op == "elementwise_seq") {
        node = ops::elementwise_seq(name, b, args.get("s", &err),
                                    args.get("d", &err));
      } else if (op == "projection") {
        node = ops::projection(name, b, args.get("s", &err),
                               args.get("v", &err), args.get("d", &err));
      } else {
        return fail("unknown op '" + op + "'");
      }
      if (!err.empty()) return fail(op + ": " + err);
      const std::string stray = args.unused();
      if (!stray.empty())
        return fail(op + ": unknown key '" + stray + "'");
      by_name[name] = result.graph.add_node(std::move(node));
    } else if (kw == "edge") {
      std::string src, dst;
      if (!(ls >> src >> dst)) return fail("edge needs src and dst nodes");
      const auto si = by_name.find(src);
      const auto di = by_name.find(dst);
      if (si == by_name.end()) return fail("unknown node '" + src + "'");
      if (di == by_name.end()) return fail("unknown node '" + dst + "'");
      std::vector<std::string> src_names, dst_names;
      std::string map;
      while (ls >> map) {
        const auto colon = map.find(':');
        if (colon == std::string::npos)
          return fail("edge map must be srcdim:dstdim, got '" + map + "'");
        const std::string s_dim = map.substr(0, colon);
        const std::string d_dim = map.substr(colon + 1);
        if (s_dim == "-" || s_dim.empty())
          return fail("producer side of an edge map must name a dim");
        if (result.graph.node(si->second).space.find(s_dim) < 0)
          return fail("'" + src + "' has no dim '" + s_dim + "'");
        if (d_dim != "-" &&
            result.graph.node(di->second).space.find(d_dim) < 0)
          return fail("'" + dst + "' has no dim '" + d_dim + "'");
        src_names.push_back(s_dim);
        dst_names.push_back(d_dim == "-" ? "" : d_dim);
      }
      if (src_names.empty()) return fail("edge needs at least one dim map");
      result.graph.add_edge_named(si->second, di->second, src_names,
                                  dst_names);
    } else {
      return fail("unknown directive '" + kw + "'");
    }
  }

  if (!header_seen) {
    result.error = "empty input";
    return result;
  }
  if (result.graph.num_nodes() == 0) {
    result.error = "model has no nodes";
    return result;
  }
  if (!result.graph.weakly_connected()) {
    result.error = "model graph must be weakly connected";
    return result;
  }
  result.graph.validate();
  result.ok = true;
  return result;
}

}  // namespace pase
