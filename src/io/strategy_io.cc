#include "io/strategy_io.h"

#include <map>
#include <sstream>

#include "util/check.h"

namespace pase {

std::string write_strategy(const Graph& graph, const Strategy& phi) {
  PASE_CHECK(static_cast<i64>(phi.size()) == graph.num_nodes());
  std::ostringstream os;
  os << "pase-strategy v1\n";
  for (const Node& n : graph.nodes()) {
    const Config& c = phi[static_cast<size_t>(n.id)];
    PASE_CHECK(c.rank() == n.space.rank());
    os << "node " << n.name << " dims " << n.space.names() << " config ";
    for (i64 d = 0; d < c.rank(); ++d) {
      if (d) os << ',';
      os << c[d];
    }
    os << '\n';
  }
  return os.str();
}

ReadResult read_strategy(const Graph& graph, const std::string& text) {
  ReadResult result;
  std::map<std::string, NodeId> by_name;
  for (const Node& n : graph.nodes()) {
    if (!by_name.emplace(n.name, n.id).second) {
      result.error = "graph has duplicate node name: " + n.name;
      return result;
    }
  }

  result.strategy.assign(static_cast<size_t>(graph.num_nodes()), Config{});
  std::vector<bool> seen(static_cast<size_t>(graph.num_nodes()), false);

  std::istringstream is(text);
  std::string line;
  bool header_seen = false;
  i64 line_no = 0;
  auto fail = [&](const std::string& why) {
    result.error = "line " + std::to_string(line_no) + ": " + why;
    return result;
  };

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      if (line != "pase-strategy v1")
        return fail("expected header 'pase-strategy v1'");
      header_seen = true;
      continue;
    }
    std::istringstream ls(line);
    std::string kw_node, name, kw_dims, dims, kw_config, config_str;
    if (!(ls >> kw_node >> name >> kw_dims >> dims >> kw_config >>
          config_str) ||
        kw_node != "node" || kw_dims != "dims" || kw_config != "config")
      return fail("malformed record");

    const auto it = by_name.find(name);
    if (it == by_name.end()) return fail("unknown node '" + name + "'");
    const Node& node = graph.node(it->second);
    if (seen[static_cast<size_t>(it->second)])
      return fail("duplicate record for '" + name + "'");
    if (dims != node.space.names())
      return fail("dim signature mismatch for '" + name + "': expected " +
                  node.space.names() + ", got " + dims);

    Config c;
    std::istringstream cs(config_str);
    std::string factor;
    while (std::getline(cs, factor, ',')) {
      i64 f = 0;
      try {
        f = std::stoll(factor);
      } catch (...) {
        return fail("bad split factor '" + factor + "'");
      }
      if (f < 1 || f > 65535 || c.rank() == Config::kMaxRank)
        return fail("split factor out of range");
      c.push_back(static_cast<u16>(f));
    }
    if (c.rank() != node.space.rank())
      return fail("config rank mismatch for '" + name + "'");
    result.strategy[static_cast<size_t>(it->second)] = c;
    seen[static_cast<size_t>(it->second)] = true;
  }

  if (!header_seen) {
    result.error = "empty input";
    return result;
  }
  for (const Node& n : graph.nodes())
    if (!seen[static_cast<size_t>(n.id)]) {
      result.error = "missing record for node '" + n.name + "'";
      return result;
    }
  result.ok = true;
  return result;
}

}  // namespace pase
