// Strategy serialization. The paper (§II, §VI) points out that frameworks
// like GShard and Mesh-TensorFlow can consume user-specified sharding
// decisions; this module writes PaSE strategies in a stable line-oriented
// text format such a bridge can parse, and reads them back (round-trip
// safe), keyed by layer name so a strategy survives graph rebuilds.
//
// Format (one record per node, '#' comments ignored):
//
//   pase-strategy v1
//   node <name> dims <dim-names> config <c1,c2,...>
#pragma once

#include <string>

#include "config/config.h"
#include "graph/graph.h"

namespace pase {

/// Serializes `phi` for `graph` into the textual format above.
std::string write_strategy(const Graph& graph, const Strategy& phi);

struct ReadResult {
  bool ok = false;
  std::string error;  ///< human-readable reason when !ok
  Strategy strategy;
};

/// Parses a serialized strategy and binds it to `graph` by node name.
/// Fails (with a message) on unknown/missing/duplicate node names, dim
/// signature mismatches, or malformed records.
ReadResult read_strategy(const Graph& graph, const std::string& text);

}  // namespace pase
