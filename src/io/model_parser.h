// Text model-description format, so users can run the strategy search on
// their own networks without writing C++. Line-oriented; '#' starts a
// comment. Grammar:
//
//   pase-model v1
//   batch <N>                      # default batch used by node shorthands
//   node <name> <op> key=value...  # one layer
//   edge <src> <dst> <map>...      # one tensor; maps are srcdim:dstdim
//
// Supported ops and their keys (batch b defaults to the `batch` directive):
//   conv2d    c h w n r s [spatial=1]     pool      c h w r s [spatial=1]
//   dwconv    c h w r s [spatial=1]       fc        n c
//   softmax   n                           softmax_seq s v
//   embedding s d v                       lstm      l s d e
//   attention s heads qk [skv]            ffn       s d e
//   layernorm s d                         batchnorm c h w
//   concat    c h w                       elementwise c h w
//   elementwise_seq s d                   projection  s v d
//
// Edge maps pair a producer iteration-dim name with a consumer dim name;
// '-' on the consumer side means the consumer needs the dim's full extent
// (e.g. "edge enc attn b:b s:- d:-"). The tensor's shape is taken from the
// producer dims.
#pragma once

#include <string>

#include "graph/graph.h"

namespace pase {

struct ModelParseResult {
  bool ok = false;
  std::string error;  ///< "line N: reason" when !ok
  std::string name;   ///< optional `model <name>` directive
  Graph graph;
};

/// Parses the format above. The returned graph is validated (connected,
/// consistent dim maps) on success.
ModelParseResult parse_model(const std::string& text);

}  // namespace pase
