// Text model-description format, so users can run the strategy search on
// their own networks without writing C++. Line-oriented; '#' starts a
// comment. Grammar:
//
//   pase-model v1
//   batch <N>                      # default batch used by node shorthands
//   node <name> <op> key=value...  # one layer
//   edge <src> <dst> <map>...      # one tensor; maps are srcdim:dstdim
//
// Supported ops and their keys (batch b defaults to the `batch` directive):
//   conv2d    c h w n r s [spatial=1]     pool      c h w r s [spatial=1]
//   dwconv    c h w r s [spatial=1]       fc        n c
//   softmax   n                           softmax_seq s v
//   embedding s d v                       lstm      l s d e
//   attention s heads qk [skv]            ffn       s d e
//   layernorm s d                         batchnorm c h w
//   concat    c h w                       elementwise c h w
//   elementwise_seq s d                   projection  s v d
//
// Edge maps pair a producer iteration-dim name with a consumer dim name;
// '-' on the consumer side means the consumer needs the dim's full extent
// (e.g. "edge enc attn b:b s:- d:-"). The tensor's shape is taken from the
// producer dims.
#pragma once

#include <string>

#include "graph/graph.h"

namespace pase {

struct ModelParseResult {
  bool ok = false;
  std::string error;  ///< "line N: reason" when !ok
  std::string name;   ///< optional `model <name>` directive
  Graph graph;
};

/// Resource limits for parsing untrusted input (the serving daemon's and
/// pase_cli's admission boundary). Zero means unlimited. Independent of
/// these, the parser always rejects node lines whose dimension product
/// (batch included) would overflow the int64 iteration-space/table-sizing
/// arithmetic downstream — overflowing there is undefined behaviour, so it
/// must be caught at the trust boundary, not by a guard.
struct ModelParseLimits {
  i64 max_nodes = 0;  ///< reject models with more `node` lines than this
};

/// Parses the format above. The returned graph is validated (connected,
/// consistent dim maps) on success.
ModelParseResult parse_model(const std::string& text,
                             const ModelParseLimits& limits = {});

}  // namespace pase
