// The DNN computation graph G = (V, E) of paper §II: a weakly connected
// directed graph whose nodes are layers and whose edges carry tensors.
//
// Edges are self-contained for the transfer-cost model t_x: each edge records
// the tensor shape plus, per tensor dim, which iteration-space dim of the
// producer and of the consumer it maps to (-1 when unmapped, meaning that
// side replicates/needs the full extent of the dim).
#pragma once

#include <string>
#include <vector>

#include "graph/node.h"
#include "util/bitset.h"
#include "util/types.h"

namespace pase {

using EdgeId = i32;

struct Edge {
  EdgeId id = -1;
  NodeId src = kInvalidNode;  ///< producer
  NodeId dst = kInvalidNode;  ///< consumer
  std::vector<i64> shape;     ///< tensor extents
  std::vector<i32> src_dims;  ///< tensor dim -> src iteration dim, or -1
  std::vector<i32> dst_dims;  ///< tensor dim -> dst iteration dim, or -1

  i64 volume() const {
    i64 v = 1;
    for (i64 s : shape) v *= s;
    return v;
  }
};

class Graph {
 public:
  /// Adds a node and returns its id. The node's `id` field is filled in.
  NodeId add_node(Node node);

  /// Adds an edge carrying a tensor of `shape` from `src` to `dst`.
  /// `src_dims[t]` / `dst_dims[t]` name the iteration-space dim of the
  /// respective node that tensor dim t maps to (-1 = unmapped).
  EdgeId add_edge(NodeId src, NodeId dst, std::vector<i64> shape,
                  std::vector<i32> src_dims, std::vector<i32> dst_dims);

  /// Convenience: edge whose dim maps are given by iteration-dim *names*
  /// looked up in each node's space ("" = unmapped). Shape defaults to the
  /// producer-side dim extents.
  EdgeId add_edge_named(NodeId src, NodeId dst,
                        const std::vector<std::string>& src_names,
                        const std::vector<std::string>& dst_names,
                        std::vector<i64> shape = {});

  i64 num_nodes() const { return static_cast<i64>(nodes_.size()); }
  i64 num_edges() const { return static_cast<i64>(edges_.size()); }

  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }
  const Edge& edge(EdgeId id) const { return edges_[static_cast<size_t>(id)]; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Direction-agnostic neighbors N(v) (paper §III notation), deduplicated.
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return adj_[static_cast<size_t>(id)];
  }

  /// Ids of edges incident to `id` (either direction), deduplicated.
  const std::vector<EdgeId>& incident_edges(NodeId id) const {
    return incident_[static_cast<size_t>(id)];
  }

  /// Undirected degree |N(v)|.
  i64 degree(NodeId id) const {
    return static_cast<i64>(adj_[static_cast<size_t>(id)].size());
  }

  /// Neighbor set as a bitset over node ids.
  Bitset neighbor_set(NodeId id) const;

  /// True iff the graph is weakly connected (paper requires this).
  bool weakly_connected() const;

  /// Kahn topological order over the directed edges (smallest id first
  /// among ready nodes, deterministic). Aborts if the graph has a cycle.
  std::vector<NodeId> topological_order() const;

  /// Validates internal consistency (edge endpoint/dim-map ranges); aborts
  /// via PASE_CHECK on violation. Returns *this for chaining.
  const Graph& validate() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::vector<EdgeId>> incident_;
};

}  // namespace pase
