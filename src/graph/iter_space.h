// Iteration spaces (Wolfe-style, see paper §II): each DNN layer is a node
// whose computation is captured by a d-dimensional rectangular iteration
// space. A parallelization configuration splits these dims across devices.
#pragma once

#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace pase {

/// One dimension of a node's iteration space.
struct IterDim {
  std::string name;        ///< single-letter label used in the paper, e.g. "b"
  i64 size = 1;            ///< extent of the dimension
  bool splittable = true;  ///< false for dims that are never parallelized
                           ///< (e.g. conv filter dims r, s)
};

/// A rectangular iteration space: an ordered list of named dimensions.
class IterSpace {
 public:
  IterSpace() = default;
  explicit IterSpace(std::vector<IterDim> dims) : dims_(std::move(dims)) {
    for (const auto& d : dims_) PASE_CHECK_MSG(d.size >= 1, d.name.c_str());
  }

  i64 rank() const { return static_cast<i64>(dims_.size()); }
  const IterDim& dim(i64 i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<IterDim>& dims() const { return dims_; }

  /// Total number of iteration points.
  i64 volume() const {
    i64 v = 1;
    for (const auto& d : dims_) v *= d.size;
    return v;
  }

  /// Index of the dimension with the given name; -1 if absent.
  i64 find(const std::string& name) const {
    for (i64 i = 0; i < rank(); ++i)
      if (dims_[static_cast<size_t>(i)].name == name) return i;
    return -1;
  }

  /// Concatenated dim names, e.g. "bchwnrs" (Table II "Dimensions" column).
  std::string names() const {
    std::string s;
    for (const auto& d : dims_) s += d.name;
    return s;
  }

 private:
  std::vector<IterDim> dims_;
};

}  // namespace pase
