#include "graph/graph.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "util/check.h"

namespace pase {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "Input";
    case OpKind::kConv2D: return "Conv2D";
    case OpKind::kPool: return "Pool";
    case OpKind::kFullyConnected: return "FC";
    case OpKind::kSoftmax: return "Softmax";
    case OpKind::kEmbedding: return "Embedding";
    case OpKind::kLSTM: return "LSTM";
    case OpKind::kAttention: return "Attention";
    case OpKind::kFeedForward: return "FeedForward";
    case OpKind::kLayerNorm: return "LayerNorm";
    case OpKind::kBatchNorm: return "BatchNorm";
    case OpKind::kConcat: return "Concat";
    case OpKind::kElementwise: return "Elementwise";
  }
  return "?";
}

NodeId Graph::add_node(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  for (i32 d : node.reduction_dims)
    PASE_CHECK(d >= 0 && d < node.space.rank());
  for (const auto& p : node.params)
    for (i32 d : p.dims) PASE_CHECK(d >= 0 && d < node.space.rank());
  for (i32 d : node.output.dims) PASE_CHECK(d >= 0 && d < node.space.rank());
  nodes_.push_back(std::move(node));
  adj_.emplace_back();
  incident_.emplace_back();
  return id;
}

EdgeId Graph::add_edge(NodeId src, NodeId dst, std::vector<i64> shape,
                       std::vector<i32> src_dims, std::vector<i32> dst_dims) {
  PASE_CHECK(src >= 0 && src < num_nodes());
  PASE_CHECK(dst >= 0 && dst < num_nodes());
  PASE_CHECK_MSG(src != dst, "self loops are not allowed");
  PASE_CHECK(shape.size() == src_dims.size());
  PASE_CHECK(shape.size() == dst_dims.size());
  for (size_t t = 0; t < shape.size(); ++t) {
    PASE_CHECK(shape[t] >= 1);
    PASE_CHECK(src_dims[t] >= -1 && src_dims[t] < node(src).space.rank());
    PASE_CHECK(dst_dims[t] >= -1 && dst_dims[t] < node(dst).space.rank());
  }

  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{id, src, dst, std::move(shape), std::move(src_dims),
                        std::move(dst_dims)});

  auto link = [&](NodeId a, NodeId b) {
    auto& nb = adj_[static_cast<size_t>(a)];
    if (std::find(nb.begin(), nb.end(), b) == nb.end()) nb.push_back(b);
    incident_[static_cast<size_t>(a)].push_back(id);
  };
  link(src, dst);
  link(dst, src);
  return id;
}

EdgeId Graph::add_edge_named(NodeId src, NodeId dst,
                             const std::vector<std::string>& src_names,
                             const std::vector<std::string>& dst_names,
                             std::vector<i64> shape) {
  PASE_CHECK(src_names.size() == dst_names.size());
  std::vector<i32> sd, dd;
  sd.reserve(src_names.size());
  dd.reserve(dst_names.size());
  for (const auto& n : src_names)
    sd.push_back(n.empty() ? -1 : static_cast<i32>(node(src).space.find(n)));
  for (const auto& n : dst_names)
    dd.push_back(n.empty() ? -1 : static_cast<i32>(node(dst).space.find(n)));
  for (size_t t = 0; t < src_names.size(); ++t) {
    PASE_CHECK_MSG(src_names[t].empty() || sd[t] >= 0,
                   "unknown src dim name");
    PASE_CHECK_MSG(dst_names[t].empty() || dd[t] >= 0,
                   "unknown dst dim name");
  }
  if (shape.empty()) {
    shape.reserve(sd.size());
    for (size_t t = 0; t < sd.size(); ++t) {
      PASE_CHECK_MSG(sd[t] >= 0,
                     "shape required when a src dim is unmapped");
      shape.push_back(node(src).space.dim(sd[t]).size);
    }
  }
  return add_edge(src, dst, std::move(shape), std::move(sd), std::move(dd));
}

Bitset Graph::neighbor_set(NodeId id) const {
  Bitset b(num_nodes());
  for (NodeId n : neighbors(id)) b.set(n);
  return b;
}

bool Graph::weakly_connected() const {
  if (nodes_.empty()) return true;
  Bitset seen(num_nodes());
  std::queue<NodeId> q;
  q.push(0);
  seen.set(0);
  i64 visited = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId n : neighbors(v)) {
      if (!seen.test(n)) {
        seen.set(n);
        ++visited;
        q.push(n);
      }
    }
  }
  return visited == num_nodes();
}

std::vector<NodeId> Graph::topological_order() const {
  const i64 n = num_nodes();
  std::vector<i64> indegree(static_cast<size_t>(n), 0);
  for (const Edge& e : edges_) ++indegree[static_cast<size_t>(e.dst)];
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v)
    if (indegree[static_cast<size_t>(v)] == 0) frontier.push_back(v);
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(n));
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end(), std::greater<NodeId>());
    const NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (EdgeId eid : incident_edges(v)) {
      const Edge& e = edge(eid);
      if (e.src != v) continue;
      if (--indegree[static_cast<size_t>(e.dst)] == 0)
        frontier.push_back(e.dst);
    }
  }
  PASE_CHECK_MSG(static_cast<i64>(order.size()) == n,
                 "computation graph must be acyclic");
  return order;
}

const Graph& Graph::validate() const {
  PASE_CHECK_MSG(weakly_connected(), "computation graph must be connected");
  // Note: mapped tensor extents may legitimately differ from the extent of
  // the iteration dim they map to (concat slices, strided convolutions,
  // fused dims), so no extent relation is enforced here; add_edge already
  // validated the dim indices.
  return *this;
}

}  // namespace pase
