// Computation-graph nodes. A node is a DNN layer together with everything the
// analytical cost model needs: its iteration space, FLOP density, parameter
// tensors (for gradient all-reduce costs), reduction dimensions (for
// partial-sum all-reduce costs), halo exchanges (for split conv spatial dims)
// and its primary output tensor (to size internal collectives).
#pragma once

#include <string>
#include <vector>

#include "graph/iter_space.h"
#include "util/types.h"

namespace pase {

using NodeId = i32;
constexpr NodeId kInvalidNode = -1;

/// Operator kind; used for pretty printing and by expert strategies, which
/// pick per-layer-type parallelizations (e.g. OWT: data-parallel convs,
/// parameter-parallel FC layers).
enum class OpKind {
  kInput,
  kConv2D,
  kPool,
  kFullyConnected,
  kSoftmax,
  kEmbedding,
  kLSTM,
  kAttention,
  kFeedForward,
  kLayerNorm,
  kBatchNorm,
  kConcat,
  kElementwise,
};

const char* op_kind_name(OpKind kind);

/// A parameter (weight) tensor of a node. `dims` lists the iteration-space
/// dims that index the tensor; devices that agree on those dims hold the same
/// shard, so the gradient all-reduce group is the product of the configuration
/// over all *other* dims.
struct ParamTensor {
  i64 volume = 0;         ///< number of elements
  std::vector<i32> dims;  ///< iteration-space dims indexing this tensor
};

/// Halo exchange induced by splitting a spatial dim of a stencil op (conv).
struct HaloSpec {
  i32 dim = 0;        ///< iteration-space dim whose split causes the halo
  i64 width = 0;      ///< one-sided halo width in elements ((r-1)/2 for conv)
};

/// Primary output tensor, used to size internal collectives (partial-sum
/// all-reduce when reduction dims are split).
struct OutputSpec {
  i64 volume = 0;
  std::vector<i32> dims;  ///< iteration-space dims indexing the output
};

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  OpKind kind = OpKind::kElementwise;
  IterSpace space;

  /// Forward FLOPs per iteration-space point (e.g. 2 for a multiply-add).
  double flops_per_point = 0.0;

  std::vector<ParamTensor> params;
  std::vector<i32> reduction_dims;  ///< dims reduced over (e.g. GEMM k)
  std::vector<HaloSpec> halos;
  OutputSpec output;

  /// Total forward FLOPs of the layer.
  double fwd_flops() const {
    return flops_per_point * static_cast<double>(space.volume());
  }

  i64 param_volume() const {
    i64 v = 0;
    for (const auto& p : params) v += p.volume;
    return v;
  }
};

}  // namespace pase
