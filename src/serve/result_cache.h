// (graph signature, machine, p, ...) -> DpResult cache for the serving
// daemon: the AMP-style hot re-query (same graph, new machine or p — or
// the same query again) must come back at interactive latency instead of
// re-running the DP.
//
// Keying. graph_signature() hashes every field the solver's result depends
// on — op kinds, iteration spaces, FLOP densities, parameter tensors,
// reduction dims, halos, outputs, and the full edge structure — but NOT
// node names: two graphs that differ only in labels get the same strategy,
// so they share an entry (the strategy is stored as per-NodeId configs and
// re-rendered against the requesting graph's names). The full cache key
// adds machine, devices, memory cap, comm model and beam width. The
// request deadline is deliberately NOT part of the key; see the
// cacheability rule below.
//
// Cacheability and determinism. Only results that are pure functions of
// (graph, options) are stored: kOk solves and kDegraded results whose trip
// cause is a table/work guard. Deadline- or watchdog-caused degradation
// depends on wall-clock timing and is never cached — otherwise one slow
// moment would pin a suboptimal strategy for every later caller. This rule
// is what makes a cache hit byte-identical to a fresh solve.
//
// Integrity (verify-on-hit). Every entry stores check_cost, the Eq. (1)
// evaluation of its strategy at store time. On a hit the server re-prices
// the strategy (O(V+E), pure, so bit-identical by construction) and
// compares; a mismatch means the entry is corrupt (exercised by the
// --inject poison mode), the entry is dropped and the solve re-runs. The
// corrupt() hook exists solely for that fault path.
//
// Thread-safety: all members are internally synchronized (single mutex;
// entries are small and lookups copy out).
#pragma once

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "config/config.h"
#include "core/dp_solver.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase::serve {

/// Structural hash of a graph: everything the cost model and solver read,
/// excluding node names.
u64 graph_signature(const Graph& graph);

struct ResultKey {
  u64 graph_sig = 0;
  std::string machine;
  i64 devices = 0;
  double memory_gb = 0.0;
  std::string comm_model;
  i64 beam_width = 0;
  /// Canonical split-dim spelling (ServeRequest::split_dims): equivalent
  /// client spellings were already canonicalized at parse time, so they
  /// land on the same entry; different searched spaces never share one.
  std::string split_dims;
  i64 pipeline_stages = 0;
  /// Part of the key only because the fill/drain factor steers which stage
  /// partition wins when pipeline_stages != 1.
  i64 microbatches = 0;

  u64 hash() const;
};

class ResultCache {
 public:
  /// Keeps at most `max_entries` results, evicting least-recently-used.
  explicit ResultCache(i64 max_entries);

  struct Entry {
    DpStatus status = DpStatus::kOk;
    DpResult::TripCause trip_cause = DpResult::TripCause::kNone;
    double best_cost = 0.0;
    double check_cost = 0.0;  ///< integrity check value (see file comment)
    Strategy strategy;        ///< per-NodeId configs
    std::string guard_reason;
  };

  /// True iff `status`/`cause` may be stored (see cacheability rule).
  static bool cacheable(DpStatus status, DpResult::TripCause cause) {
    if (status == DpStatus::kOk || status == DpStatus::kInfeasible)
      return true;
    return status == DpStatus::kDegraded &&
           (cause == DpResult::TripCause::kTableGuard ||
            cause == DpResult::TripCause::kWorkGuard);
  }

  /// Copies the entry out on a hit and marks it most-recently-used.
  bool lookup(u64 key, Entry* out);
  void store(u64 key, Entry entry);
  /// Drops one entry (verify-on-hit failure path).
  void erase(u64 key);
  /// Fault injection: flips low mantissa bits of the stored check_cost so
  /// the next verify-on-hit deterministically detects corruption. No-op if
  /// the key is absent.
  void corrupt(u64 key);

  i64 size() const;
  u64 hits() const;
  u64 misses() const;

 private:
  struct Slot {
    u64 key;
    Entry entry;
  };

  mutable std::mutex mu_;
  i64 max_entries_;
  std::list<Slot> lru_;  ///< front = most recent
  std::unordered_map<u64, std::list<Slot>::iterator> index_;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace pase::serve
