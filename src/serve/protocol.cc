#include "serve/protocol.h"

#include <cmath>

#include "config/config_enum.h"
#include "hetero/machine_file.h"
#include "serve/json.h"

namespace pase::serve {

namespace {

/// Range-checked integral field: absent -> fallback; present but not an
/// integer in [min, max] -> error.
bool read_i64(const Json& obj, const std::string& key, i64 min, i64 max,
              i64 fallback, i64* out, std::string* error) {
  const Json* v = obj.get(key);
  if (!v) {
    *out = fallback;
    return true;
  }
  if (!v->is_number() || v->number != std::floor(v->number) ||
      v->number < static_cast<double>(min) ||
      v->number > static_cast<double>(max)) {
    *error = "field '" + key + "' must be an integer in [" +
             std::to_string(min) + ", " + std::to_string(max) + "]";
    return false;
  }
  *out = static_cast<i64>(v->number);
  return true;
}

bool read_double(const Json& obj, const std::string& key, double min,
                 double max, double fallback, double* out,
                 std::string* error) {
  const Json* v = obj.get(key);
  if (!v) {
    *out = fallback;
    return true;
  }
  if (!v->is_number() || v->number < min || v->number > max) {
    *error = "field '" + key + "' must be a number in [" +
             std::to_string(min) + ", " + std::to_string(max) + "]";
    return false;
  }
  *out = v->number;
  return true;
}

}  // namespace

RequestParseResult parse_request(const std::string& line) {
  RequestParseResult result;
  std::string json_error;
  const auto parsed = parse_json(line, &json_error);
  if (!parsed) {
    result.error = "bad JSON (" + json_error + ")";
    return result;
  }
  if (!parsed->is_object()) {
    result.error = "request must be a JSON object";
    return result;
  }
  const Json& obj = *parsed;

  const std::string op = obj.get_string("op");
  ServeRequest& req = result.request;
  if (op == "solve") {
    req.op = ServeRequest::Op::kSolve;
  } else if (op == "ping") {
    req.op = ServeRequest::Op::kPing;
  } else if (op == "metrics") {
    req.op = ServeRequest::Op::kMetrics;
  } else if (op == "shutdown") {
    req.op = ServeRequest::Op::kShutdown;
  } else {
    result.error = op.empty() ? "missing 'op' field"
                              : "unknown op '" + op + "'";
    return result;
  }
  req.id = obj.get_string("id");
  if (req.op != ServeRequest::Op::kSolve) {
    result.ok = true;
    return result;
  }

  req.zoo = obj.get_string("zoo");
  req.model_text = obj.get_string("model");
  if (req.zoo.empty() == req.model_text.empty()) {
    result.error = "a solve needs exactly one of 'zoo' or 'model'";
    return result;
  }
  req.machine = obj.get_string("machine", "1080ti");
  i64 devices_fallback = 8;
  MachineSpec spec_machine;
  if (const Json* spec = obj.get("machine_spec")) {
    if (obj.get("machine")) {
      result.error =
          "a solve takes at most one of 'machine' or 'machine_spec'";
      return result;
    }
    if (!spec->is_object()) {
      result.error = "field 'machine_spec' must be an object";
      return result;
    }
    // Canonicalize before validating so byte-equal specs share one result-
    // cache key regardless of the client's key order.
    req.machine_spec_json = write_json(*spec);
    std::string spec_error;
    if (!parse_machine_spec(req.machine_spec_json, &spec_machine,
                            &spec_error)) {
      result.error = spec_error;
      return result;
    }
    devices_fallback = spec_machine.num_devices;
  }
  req.comm_model = obj.get_string("comm_model", "simple");
  if (const Json* sd = obj.get("split_dims")) {
    if (!sd->is_string()) {
      result.error = "field 'split_dims' must be a string";
      return result;
    }
    const auto dims = parse_split_dims(sd->string);
    if (!dims) {
      result.error =
          "field 'split_dims' must be a comma-separated subset of batch, "
          "param, spatial, channel (or 'all'/'none')";
      return result;
    }
    // Canonicalize so equivalent spellings share one result-cache entry.
    req.split_dims = dims->to_string();
  }
  std::string err;
  if (!read_i64(obj, "devices", 1, 1 << 20, devices_fallback, &req.devices,
                &err) ||
      !read_i64(obj, "beam_width", 1, 1 << 20, 256, &req.beam_width, &err) ||
      // The pipeline boundary DP coarsens to at most ~24 candidate cuts, so
      // larger explicit stage counts can never be realized.
      !read_i64(obj, "pipeline_stages", 0, 24, 1, &req.pipeline_stages,
                &err) ||
      !read_i64(obj, "microbatches", 1, 1 << 20, 8, &req.microbatches,
                &err) ||
      !read_double(obj, "memory_gb", 0.0, 1e9, 0.0, &req.memory_gb, &err) ||
      !read_double(obj, "deadline_ms", 0.0, 1e9, 0.0, &req.deadline_ms,
                   &err)) {
    result.error = err;
    return result;
  }
  if (req.pipeline_stages >= 2 && req.devices % req.pipeline_stages != 0) {
    result.error = "field 'pipeline_stages' (" +
                   std::to_string(req.pipeline_stages) +
                   ") must divide 'devices' (" + std::to_string(req.devices) +
                   ")";
    return result;
  }
  if (!req.machine_spec_json.empty() &&
      req.devices != spec_machine.num_devices) {
    result.error = "field 'devices' (" + std::to_string(req.devices) +
                   ") does not match the machine_spec device count (" +
                   std::to_string(spec_machine.num_devices) + ")";
    return result;
  }
  result.ok = true;
  return result;
}

const char* response_code_name(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk: return "ok";
    case ResponseCode::kDegraded: return "degraded";
    case ResponseCode::kShed: return "shed";
    case ResponseCode::kMalformed: return "malformed";
    case ResponseCode::kInfeasible: return "infeasible";
    case ResponseCode::kError: return "error";
  }
  return "error";
}

std::string ServeResponse::to_line() const {
  Json obj = Json::make_object();
  obj.object["code"] = Json::make_string(response_code_name(code));
  if (!id.empty()) obj.object["id"] = Json::make_string(id);
  if (!reason.empty()) obj.object["reason"] = Json::make_string(reason);
  if (!strategy.empty()) obj.object["strategy"] = Json::make_string(strategy);
  if (!cache.empty()) obj.object["cache"] = Json::make_string(cache);
  if (!strategy.empty()) obj.object["cost"] = Json::make_number(cost);
  if (elapsed_ms >= 0.0) obj.object["elapsed_ms"] = Json::make_number(elapsed_ms);
  if (seq >= 0) obj.object["seq"] = Json::make_number(static_cast<double>(seq));
  if (!metrics_json.empty()) {
    // The snapshot comes from our own byte-stable emitter, so it parses;
    // embed it as a value rather than an escaped string.
    if (auto parsed = parse_json(metrics_json))
      obj.object["metrics"] = std::move(*parsed);
  }
  if (!slo_json.empty()) {
    if (auto parsed = parse_json(slo_json))
      obj.object["slo"] = std::move(*parsed);
  }
  return write_json(obj);
}

}  // namespace pase::serve
