#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pase::serve {

Json Json::make_bool(bool b) {
  Json j;
  j.kind = Kind::kBool;
  j.boolean = b;
  return j;
}

Json Json::make_number(double n) {
  Json j;
  j.kind = Kind::kNumber;
  j.number = n;
  return j;
}

Json Json::make_string(std::string s) {
  Json j;
  j.kind = Kind::kString;
  j.string = std::move(s);
  return j;
}

Json Json::make_array() {
  Json j;
  j.kind = Kind::kArray;
  return j;
}

Json Json::make_object() {
  Json j;
  j.kind = Kind::kObject;
  return j;
}

const Json* Json::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* v = get(key);
  return v && v->is_string() ? v->string : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* v = get(key);
  return v && v->is_number() ? v->number : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = get(key);
  return v && v->kind == Kind::kBool ? v->boolean : fallback;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool run(Json& out, std::string* error) {
    if (!parse_value(out, 0)) {
      fill_error(error);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing garbage";
      fill_error(error);
      return false;
    }
    return true;
  }

 private:
  void fill_error(std::string* error) const {
    if (error)
      *error = "byte " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "malformed JSON" : reason_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      reason_ = "expected string";
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Only the \u00XX subrange the writer emits (control chars).
            if (pos_ + 4 > text_.size()) {
              reason_ = "truncated \\u escape";
              return false;
            }
            char* end = nullptr;
            const std::string hex = text_.substr(pos_, 4);
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4 || code > 0xff) {
              reason_ = "unsupported \\u escape '" + hex + "'";
              return false;
            }
            out += static_cast<char>(code);
            pos_ += 4;
            break;
          }
          default:
            reason_ = std::string("bad escape '\\") + e + "'";
            return false;
        }
      } else {
        out += c;
      }
    }
    reason_ = "unterminated string";
    return false;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) {
      reason_ = "nesting deeper than " + std::to_string(kMaxDepth);
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      reason_ = "unexpected end of input";
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out = Json::make_bool(true);
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out = Json::make_bool(false);
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out = Json::make_null();
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_ || !std::isfinite(v)) {
      reason_ = "expected a value";
      return false;
    }
    out = Json::make_number(v);
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  bool parse_array(Json& out, int depth) {
    consume('[');
    out.kind = Json::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      Json elem;
      if (!parse_value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      if (consume(']')) return true;
      if (!consume(',')) {
        reason_ = "expected ',' or ']'";
        return false;
      }
    }
  }

  bool parse_object(Json& out, int depth) {
    consume('{');
    out.kind = Json::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) {
        reason_ = "expected ':' after key '" + key + "'";
        return false;
      }
      Json val;
      if (!parse_value(val, depth + 1)) return false;
      // Last duplicate key wins, like most JSON decoders.
      out.object[std::move(key)] = std::move(val);
      if (consume('}')) return true;
      if (!consume(',')) {
        reason_ = "expected ',' or '}'";
        return false;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string reason_;
};

void write_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_value(const Json& v, std::string& out) {
  switch (v.kind) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case Json::Kind::kNumber: {
      char buf[40];
      // Integral doubles render without an exponent or trailing zeros so
      // counts stay readable and byte-stable; %.17g round-trips the rest.
      if (v.number == std::floor(v.number) &&
          std::abs(v.number) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      }
      out += buf;
      break;
    }
    case Json::Kind::kString:
      write_escaped(v.string, out);
      break;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& e : v.array) {
        if (!first) out += ',';
        first = false;
        write_value(e, out);
      }
      out += ']';
      break;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& kv : v.object) {
        if (!first) out += ',';
        first = false;
        write_escaped(kv.first, out);
        out += ':';
        write_value(kv.second, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::optional<Json> parse_json(const std::string& text, std::string* error) {
  Json v;
  Parser p(text);
  if (!p.run(v, error)) return std::nullopt;
  return v;
}

std::string write_json(const Json& v) {
  std::string out;
  write_value(v, out);
  return out;
}

}  // namespace pase::serve
