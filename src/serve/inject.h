// Seeded fault injection for the serving daemon (pase_serve --inject), in
// the spirit of src/fault's FaultSpec grammar: a comma-separated spec
// whose clauses each arm one failure mode, drawn per request from a
// deterministic seeded stream so every degradation path is testable with
// exact expectations.
//
// Clauses:
//   slow=RATE:SECONDS    worker sleeps SECONDS before solving; the sleep
//                        consumes the request's deadline, so a budget
//                        shorter than the sleep deterministically exercises
//                        the degraded (beam fallback) path
//   stall=RATE:SECONDS   worker wedges for SECONDS, honoring only the
//                        cancellation token (not the deadline) — exactly
//                        the runaway solve the watchdog exists to kill
//   poison=RATE          the result-cache entry written by this request is
//                        corrupted after the store, so the *next* hit
//                        exercises the verify-on-hit recovery path
//
// RATEs are probabilities in [0, 1]. Draws are a pure function of
// (spec, seed, request index): request k draws u = hash(seed, k, clause)
// mapped to [0, 1) and arms the clause iff u < RATE — so a replay with the
// same seed and request order injects identically.
#pragma once

#include <string>

#include "util/types.h"

namespace pase::serve {

struct InjectSpec {
  double slow_rate = 0.0;
  double slow_seconds = 0.0;
  double stall_rate = 0.0;
  double stall_seconds = 0.0;
  double poison_rate = 0.0;

  bool empty() const {
    return slow_rate == 0.0 && stall_rate == 0.0 && poison_rate == 0.0;
  }

  /// Canonical rendering in the parse grammar.
  std::string to_string() const;
};

struct InjectParseResult {
  bool ok = false;
  std::string error;  ///< names the offending clause when !ok
  InjectSpec spec;
};

/// Parses e.g. "slow=0.3:0.05,stall=0.05:2,poison=0.2". Structured errors,
/// never aborts.
InjectParseResult parse_inject_spec(const std::string& text);

/// Faults armed for one request.
struct InjectDraw {
  bool slow = false;
  bool stall = false;
  bool poison = false;
};

/// Deterministic per-request draw (see file comment).
InjectDraw draw_injections(const InjectSpec& spec, u64 seed,
                           u64 request_index);

}  // namespace pase::serve
