// Line-delimited JSON protocol of the strategy-serving daemon.
//
// Every request is one JSON object on one line; every response is one JSON
// object on one line. Request ops:
//
//   {"op":"solve", "zoo":"alexnet", "devices":8, ...}    strategy query
//   {"op":"ping"}                                        liveness probe
//   {"op":"metrics"}                                     serve.* snapshot
//   {"op":"shutdown"}                                    graceful stop
//
// Solve fields (all optional except the model source):
//   "zoo": NAME        — a built-in benchmark graph (src/models), or
//   "model": TEXT      — an inline pase-model v1 description
//   "id": STRING       — client tag echoed back verbatim
//   "machine": 1080ti|2080ti|mixed|mixed_pod|multi_tier (default 1080ti)
//   "machine_spec": {...} — an inline heterogeneous machine description
//                        (the machine-spec JSON object of
//                        src/hetero/machine_file.h); exclusive with
//                        "machine". "devices" defaults to the spec's count
//                        and, when given, must match it.
//   "devices": N       — cluster size p (default 8)
//   "memory_gb": G     — per-device memory cap (0 = unlimited)
//   "deadline_ms": D   — per-request budget (0 = server default; values
//                        above the server's --max-deadline-ms are clamped)
//   "comm_model": simple|auto|ring|tree|hd|hier (default simple)
//   "beam_width": N    — degraded-fallback beam width (default 256)
//   "split_dims": LIST — per-layer split classes to search, comma-separated
//                        from {batch,param,spatial,channel} or "all"/"none"
//                        (default "batch,param", the paper's space;
//                        canonicalized so equivalent spellings share one
//                        result-cache entry)
//   "pipeline_stages": N — inter-stage pipeline dimension: 1 = off (the
//                        default, bit-identical to a plain solve), 0 =
//                        auto (search the stage count), N in [2, 24] =
//                        exactly N stages (must divide "devices")
//   "microbatches": N  — micro-batches in flight for the pipeline
//                        fill/drain model (default 8)
//
// Response codes — the full failure taxonomy (DESIGN.md §10):
//   ok          solved to optimality within budget
//   degraded    deadline/guard tripped; a valid beam-search strategy is
//               still attached
//   shed        admission control refused the request (queue at capacity);
//               retry with backoff — never a silent drop
//   malformed   unparsable JSON, unknown op, or a model that failed
//               validation; "reason" explains
//   infeasible  no configuration satisfies the memory cap
//   error       internal failure (e.g. solve killed by the watchdog)
//
// Solve responses carry: "code", "id", "cost", "elapsed_ms", "cache"
// (hit|miss|poisoned), "strategy" (pase-strategy v1 text, ok/degraded
// only), and "reason" (non-ok codes). Every response also carries "seq",
// the server-assigned request sequence number — the join key between a
// response, its event-log line, and its spans in the merged trace.
// `metrics` responses additionally carry "metrics" (the registry snapshot)
// and "slo" (rolling p50/p95/p99 over the last --slo-window solves; see
// obs/rolling.h).
#pragma once

#include <string>

#include "util/types.h"

namespace pase::serve {

struct ServeRequest {
  enum class Op { kSolve, kPing, kMetrics, kShutdown };
  Op op = Op::kSolve;
  std::string id;          ///< echoed back; empty = omitted
  std::string zoo;         ///< zoo graph name (exclusive with model_text)
  std::string model_text;  ///< inline pase-model source
  std::string machine = "1080ti";
  /// Canonical (write_json) rendering of an inline "machine_spec" object;
  /// empty = named machine. Canonicalizing here makes byte-equal specs
  /// dedupe/cache together regardless of client key order or whitespace.
  std::string machine_spec_json;
  i64 devices = 8;
  double memory_gb = 0.0;
  double deadline_ms = 0.0;  ///< 0 = server default
  std::string comm_model = "simple";
  i64 beam_width = 256;
  /// Canonical (SplitDims::to_string) spelling of the searched split-dim
  /// classes; canonicalizing at parse time makes "spatial,batch,param" and
  /// "batch,param,spatial" share one result-cache entry.
  std::string split_dims = "batch,param";
  i64 pipeline_stages = 1;  ///< 1 = off, 0 = auto, N = exactly N stages
  i64 microbatches = 8;     ///< pipeline fill/drain model
};

struct RequestParseResult {
  bool ok = false;
  std::string error;  ///< human-readable reason when !ok
  ServeRequest request;
};

/// Parses one request line. Never throws; malformed input (bad JSON, wrong
/// types, out-of-range numbers, unknown op, both or neither model source
/// for a solve) comes back as !ok with a reason the caller wraps in a
/// `malformed` response.
RequestParseResult parse_request(const std::string& line);

enum class ResponseCode {
  kOk,
  kDegraded,
  kShed,
  kMalformed,
  kInfeasible,
  kError,
};

const char* response_code_name(ResponseCode code);

/// Response under construction; to_line() renders the canonical JSON line
/// (no trailing newline). Fields left at their defaults are omitted.
struct ServeResponse {
  ResponseCode code = ResponseCode::kOk;
  std::string id;
  std::string reason;
  std::string strategy;    ///< pase-strategy v1 text
  std::string cache;       ///< "hit" | "miss" | "poisoned"
  double cost = 0.0;
  double elapsed_ms = -1.0;  ///< < 0 = omitted
  i64 seq = -1;              ///< server request sequence number; < 0 = omitted
  std::string metrics_json;  ///< metrics op only: raw snapshot, not escaped
  std::string slo_json;      ///< metrics op only: rolling SLO quantiles

  std::string to_line() const;
};

}  // namespace pase::serve
