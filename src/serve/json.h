// Minimal JSON value type with a hardened parser and a canonical writer,
// for the strategy-serving daemon's line-delimited protocol (src/serve).
//
// This is the first place the system *reads* JSON from an untrusted peer
// (the observability emitters in src/obs only write), so the parser is
// built for adversarial input: a recursion-depth cap, strict trailing-
// garbage rejection, and structured errors with byte offsets instead of
// aborts. The grammar matches tests/mini_json.h (full JSON minus \uXXXX
// escapes, numbers held as double) so tests can cross-check both sides.
//
// The writer emits objects with keys in std::map order (sorted), no
// whitespace, and shortest-round-trip doubles rendered as integers when
// integral — a byte-stable canonical form, so "same response" can be
// asserted with a string compare.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.h"

namespace pase::serve {

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  // std::map keeps writer output canonically ordered.
  std::map<std::string, Json> object;

  Json() = default;
  static Json make_null() { return Json(); }
  static Json make_bool(bool b);
  static Json make_number(double n);
  static Json make_string(std::string s);
  static Json make_array();
  static Json make_object();

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member access; nullptr when absent or not an object.
  const Json* get(const std::string& key) const;

  /// Typed member reads with defaults (absent or wrong-typed -> fallback).
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
};

/// Parses one JSON document. On failure returns nullopt and, when `error`
/// is non-null, fills it with "byte N: reason". Rejects trailing garbage
/// and nesting deeper than 64 levels (stack-exhaustion guard — protocol
/// messages are flat objects; anything deeper is hostile or broken).
std::optional<Json> parse_json(const std::string& text,
                               std::string* error = nullptr);

/// Canonical single-line rendering (sorted keys, no whitespace, \uXXXX
/// escapes for control characters so the output never contains a newline).
std::string write_json(const Json& v);

}  // namespace pase::serve
