#include "serve/result_cache.h"

#include <cstring>

#include "util/hash.h"

namespace pase::serve {

namespace {

u64 bits_of(double v) {
  u64 b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

u64 hash_string(u64 h, const std::string& s) {
  h = hash_combine(h, s.size());
  for (const char c : s) h = hash_combine(h, static_cast<u8>(c));
  return h;
}

template <typename T>
u64 hash_ints(u64 h, const std::vector<T>& v) {
  h = hash_combine(h, v.size());
  for (const T x : v) h = hash_combine(h, static_cast<u64>(x));
  return h;
}

}  // namespace

u64 graph_signature(const Graph& graph) {
  u64 h = 0x5ea5e57a7e6e57a7ull;
  h = hash_combine(h, static_cast<u64>(graph.num_nodes()));
  for (const Node& n : graph.nodes()) {
    // Everything the cost model reads; node names deliberately excluded.
    h = hash_combine(h, static_cast<u64>(n.kind));
    h = hash_combine(h, static_cast<u64>(n.space.rank()));
    for (const IterDim& d : n.space.dims()) {
      h = hash_string(h, d.name);
      h = hash_combine(h, static_cast<u64>(d.size));
      h = hash_combine(h, d.splittable ? 1 : 0);
    }
    h = hash_combine(h, bits_of(n.flops_per_point));
    h = hash_combine(h, n.params.size());
    for (const ParamTensor& p : n.params) {
      h = hash_combine(h, static_cast<u64>(p.volume));
      h = hash_ints(h, p.dims);
    }
    h = hash_ints(h, n.reduction_dims);
    h = hash_combine(h, n.halos.size());
    for (const HaloSpec& halo : n.halos) {
      h = hash_combine(h, static_cast<u64>(halo.dim));
      h = hash_combine(h, static_cast<u64>(halo.width));
    }
    h = hash_combine(h, static_cast<u64>(n.output.volume));
    h = hash_ints(h, n.output.dims);
  }
  h = hash_combine(h, static_cast<u64>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    h = hash_combine(h, static_cast<u64>(e.src));
    h = hash_combine(h, static_cast<u64>(e.dst));
    h = hash_ints(h, e.shape);
    h = hash_ints(h, e.src_dims);
    h = hash_ints(h, e.dst_dims);
  }
  return h;
}

u64 ResultKey::hash() const {
  u64 h = graph_sig;
  h = hash_string(h, machine);
  h = hash_combine(h, static_cast<u64>(devices));
  h = hash_combine(h, bits_of(memory_gb));
  h = hash_string(h, comm_model);
  h = hash_combine(h, static_cast<u64>(beam_width));
  h = hash_string(h, split_dims);
  h = hash_combine(h, static_cast<u64>(pipeline_stages));
  h = hash_combine(h, static_cast<u64>(microbatches));
  return h;
}

ResultCache::ResultCache(i64 max_entries)
    : max_entries_(max_entries < 1 ? 1 : max_entries) {}

bool ResultCache::lookup(u64 key, Entry* out) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *out = it->second->entry;
  return true;
}

void ResultCache::store(u64 key, Entry entry) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(entry)});
  index_[key] = lru_.begin();
  while (static_cast<i64>(lru_.size()) > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void ResultCache::erase(u64 key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void ResultCache::corrupt(u64 key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  double& c = it->second->entry.check_cost;
  u64 b = bits_of(c);
  b ^= 0xffull;  // low mantissa bits: value changes, stays finite
  std::memcpy(&c, &b, sizeof(c));
}

i64 ResultCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<i64>(lru_.size());
}

u64 ResultCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

u64 ResultCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

}  // namespace pase::serve
