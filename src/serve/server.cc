#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <future>

#include "comm/comm_model.h"
#include "core/dp_solver.h"
#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "cost/machine.h"
#include "hetero/hetero.h"
#include "hetero/machine_file.h"
#include "io/model_parser.h"
#include "io/strategy_io.h"
#include "models/models.h"
#include "pipeline/pipeline.h"
#include "serve/json.h"
#include "sim/memory.h"
#include "util/hash.h"
#include "util/timer.h"

namespace pase::serve {

namespace {

/// Bound on distinct (graph, machine) cost caches / comm models kept warm;
/// past it the memos are dropped wholesale and simply warm up again (the
/// result cache has real LRU — these are cheap to rebuild by comparison).
constexpr size_t kMaxWarmMemos = 64;

std::optional<Graph> build_zoo_graph(const std::string& name) {
  // Shared with pase_cli --zoo; see src/models/zoo.cc for the name table.
  return models::zoo_graph(name);
}

std::optional<MachineSpec> build_machine(const std::string& name,
                                         i64 devices) {
  if (name == "1080ti") return MachineSpec::gtx1080ti(devices);
  if (name == "2080ti") return MachineSpec::rtx2080ti(devices);
  if (name == "mixed") return MachineSpec::mixed_cluster(devices);
  if (name == "mixed_pod") return MachineSpec::mixed_pod(devices);
  if (name == "multi_tier") return MachineSpec::multi_tier(devices);
  return std::nullopt;
}

/// The request's machine: the inline machine_spec when present (already
/// validated by parse_request; re-parsed here, it cannot fail), else the
/// named preset. nullopt only for an unknown preset name.
std::optional<MachineSpec> resolve_machine(const ServeRequest& req) {
  if (!req.machine_spec_json.empty()) {
    MachineSpec m;
    std::string error;
    if (!parse_machine_spec(req.machine_spec_json, &m, &error))
      return std::nullopt;
    return m;
  }
  return build_machine(req.machine, req.devices);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

const char* op_name(ServeRequest::Op op) {
  switch (op) {
    case ServeRequest::Op::kSolve: return "solve";
    case ServeRequest::Op::kPing: return "ping";
    case ServeRequest::Op::kMetrics: return "metrics";
    case ServeRequest::Op::kShutdown: return "shutdown";
  }
  return "solve";
}

}  // namespace

/// One in-flight solve, shared by duplicate requests (single-flight
/// deduplication): the first caller (the leader) runs the solve; callers
/// holding the same key while it runs wait on the same future instead of
/// burning a second admission slot on identical work.
struct ServeCore::Flight {
  std::shared_future<SolveOutcome> future;
};

ServeCore::ServeCore(ServeOptions options)
    : options_(std::move(options)),
      events_(options_.event_log_memory),
      results_(options_.cache_entries),
      pool_(options_.workers < 1 ? 1 : options_.workers),
      epoch_(std::chrono::steady_clock::now()),
      roll_total_(options_.slo_window),
      roll_queue_(options_.slo_window),
      roll_solve_(options_.slo_window) {
  if (!options_.event_log_path.empty()) {
    std::string error;
    if (!events_.open_sink(options_.event_log_path, &error))
      std::fprintf(stderr, "pase_serve: %s (event log kept in memory only)\n",
                   error.c_str());
  }
  watchdog_ = std::thread([this] { watchdog_main(); });
}

ServeCore::~ServeCore() {
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    watchdog_stop_ = true;
  }
  watch_cv_.notify_all();
  watchdog_.join();
}

void ServeCore::watchdog_main() {
  std::unique_lock<std::mutex> lk(watch_mu_);
  while (!watchdog_stop_) {
    watch_cv_.wait_for(lk, std::chrono::milliseconds(10));
    const auto now = std::chrono::steady_clock::now();
    for (const auto& w : watches_) {
      if (now >= w->kill_at && !w->killed.load(std::memory_order_relaxed)) {
        // The kill decision, as an instant span on the request's own
        // session (safe: the watch is unregistered — under this mutex —
        // before the session can be torn down).
        {
          TraceSession::Span kill_span(w->trace, "watchdog_kill");
          kill_span.arg("seq", static_cast<i64>(w->seq));
        }
        w->killed.store(true, std::memory_order_relaxed);
        w->cancel.store(true, std::memory_order_relaxed);
        watchdog_kills_.fetch_add(1, std::memory_order_relaxed);
        metrics_.add_counter("serve.watchdog.kills", 1);
      }
    }
  }
}

std::shared_ptr<CostCache> ServeCore::cost_cache_for(const ResultKey& key,
                                                     const Graph& graph) {
  // Cost values depend on (graph structure, machine, devices, comm model)
  // but not on the memory cap or beam width.
  u64 h = key.graph_sig;
  for (const char c : key.machine) h = hash_combine(h, static_cast<u8>(c));
  h = hash_combine(h, static_cast<u64>(key.devices));
  for (const char c : key.comm_model)
    h = hash_combine(h, static_cast<u8>(c));
  std::lock_guard<std::mutex> lk(caches_mu_);
  auto it = cost_caches_.find(h);
  if (it != cost_caches_.end()) return it->second;
  if (cost_caches_.size() >= kMaxWarmMemos) cost_caches_.clear();
  auto cache = std::make_shared<CostCache>(graph);
  cost_caches_[h] = cache;
  return cache;
}

std::shared_ptr<DpContext> ServeCore::dp_context_for(const Graph& graph) {
  // Adjacency-only key: tensor extents are deliberately excluded so a
  // batch/device/bandwidth mutation of a known topology lands on the same
  // context (the whole point of delta re-solves). The context verifies the
  // exact (src, dst) edge list before reuse — see DpContext::match.
  u64 h = hash_combine(0x70617365u, static_cast<u64>(graph.num_nodes()));
  for (const Edge& e : graph.edges())
    h = hash_combine(h, hash_combine(static_cast<u64>(e.src),
                                     static_cast<u64>(e.dst)));
  std::lock_guard<std::mutex> lk(caches_mu_);
  auto it = dp_contexts_.find(h);
  if (it != dp_contexts_.end()) return it->second;
  if (dp_contexts_.size() >= kMaxWarmMemos) dp_contexts_.clear();
  auto context = std::make_shared<DpContext>();
  dp_contexts_[h] = context;
  return context;
}

std::shared_ptr<const CommModel> ServeCore::comm_model_for(
    const ServeRequest& request) {
  u64 h = 0x9e3779b97f4a7c15ull;
  const std::string& machine_key = request.machine_spec_json.empty()
                                       ? request.machine
                                       : request.machine_spec_json;
  for (const char c : machine_key) h = hash_combine(h, static_cast<u8>(c));
  h = hash_combine(h, static_cast<u64>(request.devices));
  for (const char c : request.comm_model)
    h = hash_combine(h, static_cast<u8>(c));
  std::lock_guard<std::mutex> lk(caches_mu_);
  auto it = comm_models_.find(h);
  if (it != comm_models_.end()) return it->second;
  if (comm_models_.size() >= kMaxWarmMemos) comm_models_.clear();
  const auto machine = resolve_machine(request);
  const auto kind = parse_comm_model_kind(request.comm_model);
  auto model = std::make_shared<const CommModel>(*machine, *kind);
  comm_models_[h] = model;
  return model;
}

// ---------------------------------------------------------------------------
// Request scopes and the per-request telemetry surfaces

ServeCore::RequestScope ServeCore::begin_request() {
  RequestScope scope;
  scope.seq_ = seq_counter_.fetch_add(1, std::memory_order_relaxed);
  scope.t0_ = std::chrono::steady_clock::now();
  if (options_.trace) {
    scope.offset_us_ =
        std::chrono::duration<double, std::micro>(scope.t0_ - epoch_).count();
    scope.trace_ = std::make_unique<TraceSession>();
    scope.root_ =
        std::make_unique<TraceSession::Span>(scope.trace_.get(), "request");
    scope.root_->arg("seq", static_cast<i64>(scope.seq_));
  }
  return scope;
}

void ServeCore::end_request(RequestScope& scope) {
  if (!scope.trace_) return;
  scope.root_.reset();  // close the "request" span
  const double total_ms = ms_since(scope.t0_);
  std::vector<ChromeEvent> events = scope.trace_->events();
  scope.trace_.reset();
  if (options_.slow_trace_ms > 0.0 && total_ms < options_.slow_trace_ms) {
    metrics_.add_counter("serve.trace.dropped", 1);
    return;
  }
  i64 max_tid = -1;
  for (const auto& e : events) max_tid = std::max(max_tid, e.tid);
  std::lock_guard<std::mutex> lk(traces_mu_);
  // Stitch onto the shared timeline: each request gets its own tid block
  // (lanes stay distinguishable) and its session-relative timestamps are
  // shifted by the session's offset from the core epoch, so the merged
  // trace shows all requests in true wall-clock order.
  for (auto& e : events) {
    e.tid += next_trace_tid_;
    e.ts_us += scope.offset_us_;
  }
  next_trace_tid_ += max_tid + 1;
  kept_traces_.push_back(std::move(events));
  ++traces_kept_total_;
  metrics_.add_counter("serve.trace.kept", 1);
  if (options_.slow_trace_ms > 0.0) {
    while (static_cast<i64>(kept_traces_.size()) > options_.slow_trace_keep) {
      kept_traces_.pop_front();
      metrics_.add_counter("serve.trace.evicted", 1);
    }
  }
}

std::string ServeCore::trace_chrome_json() const {
  std::lock_guard<std::mutex> lk(traces_mu_);
  std::vector<ChromeEvent> all;
  for (const auto& bundle : kept_traces_)
    all.insert(all.end(), bundle.begin(), bundle.end());
  return to_chrome_trace_json(all);
}

u64 ServeCore::traces_kept() const {
  std::lock_guard<std::mutex> lk(traces_mu_);
  return traces_kept_total_;
}

void ServeCore::log_event(const RequestScope& scope, const ServeRequest* req,
                          const ServeResponse& resp, const SolveAudit* audit,
                          double total_ms) {
  Json ev = Json::make_object();
  ev.object["seq"] = Json::make_number(static_cast<double>(scope.seq()));
  if (req != nullptr) ev.object["op"] = Json::make_string(op_name(req->op));
  if (req != nullptr && !req->id.empty())
    ev.object["id"] = Json::make_string(req->id);
  ev.object["code"] = Json::make_string(response_code_name(resp.code));
  if (!resp.cache.empty()) ev.object["cache"] = Json::make_string(resp.cache);
  ev.object["total_ms"] = Json::make_number(total_ms);
  if (audit != nullptr) {
    ev.object["deadline_ms"] = Json::make_number(audit->deadline_ms);
    ev.object["remaining_ms"] =
        Json::make_number(audit->deadline_ms - total_ms);
    if (audit->queue_ms >= 0.0)
      ev.object["queue_ms"] = Json::make_number(audit->queue_ms);
    if (audit->solve_ms >= 0.0)
      ev.object["solve_ms"] = Json::make_number(audit->solve_ms);
    if (audit->trip != nullptr)
      ev.object["trip"] = Json::make_string(audit->trip);
    if (audit->dedup) ev.object["dedup"] = Json::make_bool(true);
    if (audit->reuse) ev.object["reuse"] = Json::make_bool(true);
    if (!audit->machine.empty())
      ev.object["machine"] = Json::make_string(audit->machine);
  }
  events_.append(write_json(ev));
}

ServeCore::SloSnapshot ServeCore::slo_snapshot() const {
  SloSnapshot snap;
  snap.window = options_.slo_window;
  snap.total = roll_total_.snapshot();
  snap.queue_wait = roll_queue_.snapshot();
  snap.solve = roll_solve_.snapshot();
  return snap;
}

std::string ServeCore::slo_json() const {
  const SloSnapshot snap = slo_snapshot();
  auto fill = [](const RollingHistogram::Snapshot& s) {
    Json o = Json::make_object();
    o.object["count"] = Json::make_number(static_cast<double>(s.count));
    o.object["p50_ms"] = Json::make_number(s.p50);
    o.object["p95_ms"] = Json::make_number(s.p95);
    o.object["p99_ms"] = Json::make_number(s.p99);
    return o;
  };
  Json obj = Json::make_object();
  obj.object["window"] =
      Json::make_number(static_cast<double>(snap.window));
  obj.object["total"] = fill(snap.total);
  obj.object["queue_wait"] = fill(snap.queue_wait);
  obj.object["solve"] = fill(snap.solve);
  return write_json(obj);
}

void ServeCore::refresh_volatile_gauges() {
  metrics_.set_gauge(
      "serve.inflight",
      static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  const SloSnapshot snap = slo_snapshot();
  metrics_.set_gauge("serve.slo.total_p50_ms", snap.total.p50);
  metrics_.set_gauge("serve.slo.total_p99_ms", snap.total.p99);
  metrics_.set_gauge("serve.slo.queue_p50_ms", snap.queue_wait.p50);
  metrics_.set_gauge("serve.slo.queue_p99_ms", snap.queue_wait.p99);
  metrics_.set_gauge("serve.slo.solve_p50_ms", snap.solve.p50);
  metrics_.set_gauge("serve.slo.solve_p99_ms", snap.solve.p99);
}

std::string ServeCore::metrics_snapshot(bool prometheus) {
  refresh_volatile_gauges();
  return prometheus ? metrics_.to_prometheus() : metrics_.to_json();
}

// ---------------------------------------------------------------------------
// Request handling

std::string ServeCore::handle_line(const std::string& line) {
  RequestScope scope = begin_request();
  std::string response = handle_line(line, scope);
  end_request(scope);
  return response;
}

std::string ServeCore::handle_overlong(RequestScope& scope) {
  const auto handled = std::chrono::steady_clock::now();
  metrics_.add_counter("serve.requests", 1);
  metrics_.add_counter("serve.responses.malformed", 1);
  ServeResponse resp;
  resp.code = ResponseCode::kMalformed;
  resp.reason = "request line exceeds " +
                std::to_string(options_.max_line_bytes) + " bytes";
  resp.seq = static_cast<i64>(scope.seq());
  log_event(scope, nullptr, resp, nullptr, ms_since(handled));
  return resp.to_line();
}

std::string ServeCore::handle_line(const std::string& line,
                                   RequestScope& scope) {
  const auto handled = std::chrono::steady_clock::now();
  metrics_.add_counter("serve.requests", 1);
  TraceSession::Span handle_span(scope.trace(), "handle");
  handle_span.arg("seq", static_cast<i64>(scope.seq()));

  RequestParseResult parsed;
  {
    TraceSession::Span parse_span(scope.trace(), "parse");
    parsed = parse_request(line);
  }

  ServeResponse resp;
  resp.seq = static_cast<i64>(scope.seq());
  if (!parsed.ok) {
    metrics_.add_counter("serve.responses.malformed", 1);
    resp.code = ResponseCode::kMalformed;
    resp.reason = parsed.error;
    log_event(scope, nullptr, resp, nullptr, ms_since(handled));
    return resp.to_line();
  }
  const ServeRequest& req = parsed.request;

  resp.id = req.id;
  SolveAudit audit;
  bool is_solve = false;
  switch (req.op) {
    case ServeRequest::Op::kPing:
      metrics_.add_counter("serve.responses.ok", 1);
      break;
    case ServeRequest::Op::kMetrics:
      refresh_volatile_gauges();
      resp.metrics_json = metrics_.to_json();
      resp.slo_json = slo_json();
      metrics_.add_counter("serve.responses.ok", 1);
      break;
    case ServeRequest::Op::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      metrics_.add_counter("serve.responses.ok", 1);
      break;
    case ServeRequest::Op::kSolve: {
      is_solve = true;
      resp = handle_solve(req, scope, audit);
      resp.id = req.id;
      resp.seq = static_cast<i64>(scope.seq());
      metrics_.add_counter(
          std::string("serve.responses.") + response_code_name(resp.code), 1);
      break;
    }
  }

  const double total_ms = ms_since(handled);
  if (is_solve) {
    roll_total_.record(total_ms);
    // Queue/solve rolls take one sample per *flight*, recorded by its
    // leader — joiners share the leader's numbers and must not skew the
    // distribution; hits and sheds never reach a worker at all.
    if (audit.admitted) {
      roll_queue_.record(audit.queue_ms);
      roll_solve_.record(audit.solve_ms);
    }
  }
  log_event(scope, &req, resp, is_solve ? &audit : nullptr, total_ms);
  return resp.to_line();
}

ServeResponse ServeCore::handle_solve(const ServeRequest& req,
                                      RequestScope& scope,
                                      SolveAudit& audit) {
  const auto accepted = std::chrono::steady_clock::now();
  ServeResponse resp;
  auto finish = [&](ServeResponse& r) -> ServeResponse& {
    r.elapsed_ms = ms_since(accepted);
    return r;
  };

  // The request's wall-clock budget, resolved once: the audit, the
  // admission path, and the watchdog all see the same number.
  double deadline_ms = req.deadline_ms > 0.0 ? req.deadline_ms
                                             : options_.default_deadline_ms;
  if (options_.max_deadline_ms > 0.0 && deadline_ms > options_.max_deadline_ms)
    deadline_ms = options_.max_deadline_ms;
  audit.deadline_ms = deadline_ms;

  // Build the request graph (zoo by name, or inline text through the
  // hardened parser — this is the service's untrusted-input boundary).
  Graph graph;
  {
    TraceSession::Span build_span(scope.trace(), "build_graph");
    if (!req.zoo.empty()) {
      auto built = build_zoo_graph(req.zoo);
      if (!built) {
        resp.code = ResponseCode::kMalformed;
        resp.reason = "unknown zoo model '" + req.zoo + "'";
        return finish(resp);
      }
      graph = std::move(*built);
    } else {
      ModelParseLimits limits;
      limits.max_nodes = options_.max_model_nodes;
      ModelParseResult model = parse_model(req.model_text, limits);
      if (!model.ok) {
        resp.code = ResponseCode::kMalformed;
        resp.reason = "model: " + model.error;
        return finish(resp);
      }
      graph = std::move(model.graph);
    }
    const auto machine = resolve_machine(req);
    if (!machine) {
      resp.code = ResponseCode::kMalformed;
      resp.reason = "unknown machine '" + req.machine + "'";
      return finish(resp);
    }
    if (!parse_comm_model_kind(req.comm_model)) {
      resp.code = ResponseCode::kMalformed;
      resp.reason = "unknown comm model '" + req.comm_model + "'";
      return finish(resp);
    }
    // The machine signature joins the three telemetry surfaces the same way
    // "seq" does: event-log field, serve.machine.* counter, and (below) the
    // result-cache key — heterogeneous requests stay distinguishable
    // everywhere (DESIGN.md §13).
    audit.machine = machine_signature(*machine);
    metrics_.add_counter("serve.machine." + audit.machine, 1);
  }

  // The stage-count/device divisibility check lives in parse_request; the
  // graph-size bound needs the built graph, so it lives here.
  if (req.pipeline_stages > graph.num_nodes()) {
    resp.code = ResponseCode::kMalformed;
    resp.reason = "pipeline_stages (" + std::to_string(req.pipeline_stages) +
                  ") exceeds the model's layer count (" +
                  std::to_string(graph.num_nodes()) + ")";
    return finish(resp);
  }

  ResultKey key;
  key.graph_sig = graph_signature(graph);
  // Inline specs key by their canonical JSON — two requests share a result
  // only when their machines are byte-identical.
  key.machine =
      req.machine_spec_json.empty() ? req.machine : req.machine_spec_json;
  key.devices = req.devices;
  key.memory_gb = req.memory_gb;
  key.comm_model = req.comm_model;
  key.beam_width = req.beam_width;
  key.split_dims = req.split_dims;
  key.pipeline_stages = req.pipeline_stages;
  key.microbatches = req.microbatches;
  const u64 khash = key.hash();

  const u64 request_index =
      request_counter_.fetch_add(1, std::memory_order_relaxed);
  const InjectDraw draw =
      draw_injections(options_.inject, options_.seed, request_index);

  // Warm path: result-cache hit, verified before trust (see
  // result_cache.h). A poisoned entry is detected here, dropped, and the
  // request falls through to a fresh solve.
  ResultCache::Entry entry;
  bool poisoned = false;
  bool hit;
  {
    TraceSession::Span lookup_span(scope.trace(), "cache_lookup");
    hit = results_.lookup(khash, &entry);
  }
  if (hit) {
    bool verified = true;
    if (!entry.strategy.empty()) {
      TraceSession::Span verify_span(scope.trace(), "cache_verify");
      // hetero_cost_params, not for_machine: verify-on-hit must re-price
      // with exactly the params run_solve used or every hetero hit would
      // read as poisoned.
      CostParams params = hetero_cost_params(
          *resolve_machine(req), *parse_comm_model_kind(req.comm_model));
      if (params.comm) params.comm = comm_model_for(req);
      CostModel cost(graph, params);
      auto shared_cache = cost_cache_for(key, graph);
      cost.attach_cache(shared_cache.get());
      verified = cost.total_cost(entry.strategy) == entry.check_cost;
    }
    if (verified) {
      metrics_.add_counter("serve.cache.hits", 1);
      resp.cache = "hit";
      if (entry.trip_cause != DpResult::TripCause::kNone)
        audit.trip = trip_cause_name(entry.trip_cause);
      switch (entry.status) {
        case DpStatus::kOk: resp.code = ResponseCode::kOk; break;
        case DpStatus::kDegraded: resp.code = ResponseCode::kDegraded; break;
        case DpStatus::kInfeasible:
          resp.code = ResponseCode::kInfeasible;
          resp.reason = "no configuration satisfies the memory cap";
          break;
        case DpStatus::kOutOfMemory:
          resp.code = ResponseCode::kError;
          resp.reason = entry.guard_reason;
          break;
      }
      if (!entry.strategy.empty()) {
        resp.cost = entry.best_cost;
        resp.strategy = write_strategy(graph, entry.strategy);
        if (entry.status == DpStatus::kDegraded)
          resp.reason = entry.guard_reason;
      }
      return finish(resp);
    }
    metrics_.add_counter("serve.cache.poison_detected", 1);
    results_.erase(khash);
    poisoned = true;
  }
  metrics_.add_counter("serve.cache.misses", 1);

  // Admission control: bounded concurrent solves, explicit shedding.
  // Duplicate in-flight requests join the leader instead of taking a slot.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  const auto submitted = std::chrono::steady_clock::now();
  {
    TraceSession::Span admission_span(scope.trace(), "admission");
    std::lock_guard<std::mutex> lk(flight_mu_);
    auto it = flights_.find(khash);
    if (it != flights_.end()) {
      flight = it->second;
      metrics_.add_counter("serve.dedup.joined", 1);
      audit.dedup = true;
    } else {
      if (inflight_.load(std::memory_order_relaxed) >=
          options_.queue_depth) {
        resp.code = ResponseCode::kShed;
        resp.reason = "queue at capacity (" +
                      std::to_string(options_.queue_depth) +
                      " solves in flight); retry with backoff";
        return finish(resp);
      }
      inflight_.fetch_add(1, std::memory_order_relaxed);
      leader = true;
      flight = std::make_shared<Flight>();
      auto task = std::make_shared<std::packaged_task<SolveOutcome()>>(
          [this, req, graph = std::move(graph), key, accepted, submitted,
           deadline_ms, draw, trace = scope.trace(),
           seq = scope.seq()]() mutable {
            SolveOutcome out = run_solve(req, graph, key, accepted, submitted,
                                         deadline_ms, draw, trace, seq);
            inflight_.fetch_sub(1, std::memory_order_relaxed);
            return out;
          });
      flight->future = task->get_future().share();
      flights_[khash] = flight;
      pool_.submit([task] { (*task)(); });
    }
  }

  SolveOutcome out;
  {
    // Leaders wait for their own solve; joiners wait for someone else's.
    // The solver's phase spans land on the *leader's* session (worker
    // lane), stitched to this span by the shared "seq" arg.
    TraceSession::Span wait_span(scope.trace(),
                                 leader ? "solve_wait" : "dedup_join");
    out = flight->future.get();
  }
  if (leader) {
    std::lock_guard<std::mutex> lk(flight_mu_);
    auto it = flights_.find(khash);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }

  audit.admitted = leader;
  audit.queue_ms = out.queue_wait_ms;
  audit.solve_ms = out.solve_ms;
  audit.trip = out.trip;
  audit.reuse = out.reused;

  resp.code = out.code;
  resp.reason = out.reason;
  resp.cache = poisoned ? "poisoned" : "miss";
  if (!out.strategy.empty()) {
    TraceSession::Span render_span(scope.trace(), "render");
    resp.cost = out.cost;
    // The leader moved its graph into the solve; joiners still hold
    // theirs. Rebuild for rendering when needed.
    if (graph.num_nodes() == 0) {
      if (!req.zoo.empty()) graph = *build_zoo_graph(req.zoo);
      else graph = parse_model(req.model_text).graph;
    }
    resp.strategy = write_strategy(graph, out.strategy);
  }
  return finish(resp);
}

ServeCore::SolveOutcome ServeCore::run_solve(
    const ServeRequest& req, const Graph& graph, const ResultKey& key,
    std::chrono::steady_clock::time_point accepted,
    std::chrono::steady_clock::time_point submitted, double deadline_ms,
    const InjectDraw& draw, TraceSession* trace, u64 seq) {
  SolveOutcome out;
  // This runs on a pool worker: a fresh lane in the leader's session, so
  // the merged trace shows the handoff from the connection lane
  // (solve_wait) to the worker lane (solve -> solver phases).
  TraceSession::Span solve_span(trace, "solve");
  solve_span.arg("seq", static_cast<i64>(seq));
  out.queue_wait_ms = ms_since(submitted);
  solve_span.arg("queue_wait_us",
                 static_cast<i64>(out.queue_wait_ms * 1e3));

  auto watch = std::make_shared<Watch>();
  watch->kill_at = accepted +
                   std::chrono::microseconds(static_cast<i64>(
                       (deadline_ms + options_.watchdog_grace_ms) * 1e3));
  watch->trace = trace;
  watch->seq = seq;
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    watches_.push_back(watch);
  }
  auto unregister = [&] {
    std::lock_guard<std::mutex> lk(watch_mu_);
    for (size_t i = 0; i < watches_.size(); ++i)
      if (watches_[i] == watch) {
        watches_.erase(watches_.begin() + static_cast<long>(i));
        break;
      }
  };

  // Fault injection (deterministic per request; see inject.h).
  if (draw.slow) {
    TraceSession::Span slow_span(trace, "inject_slow");
    metrics_.add_counter("serve.inject.slow", 1);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.inject.slow_seconds));
  }
  if (draw.stall) {
    // A wedged worker: ignores its deadline, yields only to the
    // cancellation token — the watchdog's job.
    TraceSession::Span stall_span(trace, "inject_stall");
    metrics_.add_counter("serve.inject.stall", 1);
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.inject.stall_seconds));
    while (std::chrono::steady_clock::now() < until &&
           !watch->cancel.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  if (watch->cancel.load(std::memory_order_relaxed)) {
    unregister();
    out.code = ResponseCode::kError;
    out.trip = trip_cause_name(DpResult::TripCause::kCancelled);
    out.reason = "solve killed by watchdog after " +
                 std::to_string(static_cast<i64>(ms_since(accepted))) + "ms";
    return out;
  }

  DpOptions options;
  options.config_options.max_devices = req.devices;
  // req.split_dims is the canonical spelling parse_request stored, so it
  // always parses here.
  options.config_options.split_dims = *parse_split_dims(req.split_dims);
  const MachineSpec machine = *resolve_machine(req);
  const CommModelKind comm_kind = *parse_comm_model_kind(req.comm_model);
  options.cost_params = hetero_cost_params(machine, comm_kind);
  if (options.cost_params.comm)
    options.cost_params.comm = comm_model_for(req);  // warm memo
  if (req.memory_gb > 0)
    options.config_options.filter = memory_config_filter(req.memory_gb * 1e9);
  // Whatever the queue and injected sleeps consumed already counts against
  // the request's budget; a spent budget degrades immediately (the beam
  // fallback is bounded work), it does not error.
  const double remaining_s = (deadline_ms - ms_since(accepted)) / 1e3;
  options.deadline_seconds = remaining_s > 1e-9 ? remaining_s : 1e-9;
  options.cancel = &watch->cancel;
  options.degraded_fallback = true;
  options.beam_width = req.beam_width;
  options.num_threads = options_.solver_threads;
  auto shared_cache = cost_cache_for(key, graph);
  options.shared_cost_cache = shared_cache.get();
  options.collapse_blocks = options_.collapse_blocks;
  std::shared_ptr<DpContext> context;
  if (options_.reuse_tables) {
    context = dp_context_for(graph);
    options.context = context.get();
  }
  options.metrics = &metrics_;
  // The solver's phase spans (ordering, table_fill, ...) nest inside this
  // lane's "solve" span in the request's own session.
  options.trace = trace;

  const auto solve_start = std::chrono::steady_clock::now();
  DpResult result;
  if (req.pipeline_stages != 1) {
    // The pipeline-stage dimension: the boundary DP cuts the graph and
    // re-parallelizes each stage under the same options (deadline, cancel
    // token, split-dim gates, shared cost cache all thread through). The
    // composed result carries a full-graph strategy and its Eq. (1) cost,
    // so the cache/verify/render paths below need no special casing.
    PipelineSearchOptions popts;
    popts.stages = req.pipeline_stages;
    popts.microbatches = req.microbatches;
    result = find_best_pipelined_strategy(graph, machine, options, popts).dp;
  } else {
    result = find_best_strategy(graph, options);
  }
  out.solve_ms = ms_since(solve_start);
  if (result.trip_cause != DpResult::TripCause::kNone)
    out.trip = trip_cause_name(result.trip_cause);
  out.reused = result.reused_tables;
  if (options_.reuse_tables)
    metrics_.add_counter(
        result.reused_tables ? "serve.reuse.hits" : "serve.reuse.misses", 1);
  unregister();

  switch (result.status) {
    case DpStatus::kOk: out.code = ResponseCode::kOk; break;
    case DpStatus::kDegraded:
      out.code = ResponseCode::kDegraded;
      out.reason = result.guard_reason;
      break;
    case DpStatus::kInfeasible:
      out.code = ResponseCode::kInfeasible;
      out.reason = "no configuration satisfies the memory cap";
      break;
    case DpStatus::kOutOfMemory:
      // With the fallback enabled this is reachable only through
      // cancellation (the fallback itself honors the token).
      out.code = ResponseCode::kError;
      out.reason = watch->killed.load(std::memory_order_relaxed)
                       ? "solve killed by watchdog: " + result.guard_reason
                       : result.guard_reason;
      return out;
  }
  out.cost = result.best_cost;
  out.strategy = result.strategy;

  if (ResultCache::cacheable(result.status, result.trip_cause)) {
    ResultCache::Entry entry;
    entry.status = result.status;
    entry.trip_cause = result.trip_cause;
    entry.best_cost = result.best_cost;
    entry.strategy = result.strategy;
    entry.guard_reason = result.guard_reason;
    if (!entry.strategy.empty()) {
      // check_cost is the exact value verify-on-hit will recompute: the
      // pure Eq. (1) re-evaluation, not the DP's table sum (they can
      // differ in floating-point association).
      CostModel cost(graph, options.cost_params);
      cost.attach_cache(shared_cache.get());
      entry.check_cost = cost.total_cost(entry.strategy);
    }
    const u64 khash = key.hash();
    results_.store(khash, std::move(entry));
    if (draw.poison) {
      metrics_.add_counter("serve.inject.poison", 1);
      results_.corrupt(khash);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SocketServer

SocketServer::SocketServer(ServeCore& core, std::string socket_path)
    : core_(core), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

bool SocketServer::listen(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + path_;
    return false;
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error) *error = "bind " + path_ + ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void SocketServer::run() {
  while (!stop_.load(std::memory_order_acquire) &&
         !core_.shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  // Wake blocked reads so connection threads can exit, then join them.
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      if (conn_threads_.empty()) break;
      t = std::move(conn_threads_.back());
      conn_threads_.pop_back();
    }
    t.join();
  }
}

void SocketServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool overlong = false;
  for (;;) {
    // One request scope per protocol line, opened *before* the read so
    // socket_read lands in the same trace as the handling. A scope
    // abandoned at EOF (no line arrived) is simply discarded.
    ServeCore::RequestScope scope = core_.begin_request();
    std::string line;
    bool got_line = false;
    {
      TraceSession::Span read_span(scope.trace(), "socket_read");
      for (;;) {
        const auto nl = buffer.find('\n');
        if (nl != std::string::npos) {
          line = buffer.substr(0, nl);
          buffer.erase(0, nl + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.empty()) continue;  // blank keep-alive line
          got_line = true;
          break;
        }
        if (static_cast<i64>(buffer.size()) > core_.options().max_line_bytes) {
          // Keep draining to the newline but remember to reject the line:
          // an explicit malformed response, not a silent close.
          overlong = true;
          buffer.clear();
        }
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) break;
        buffer.append(chunk, static_cast<size_t>(n));
      }
    }
    if (!got_line) break;

    std::string response;
    if (overlong) {
      response = core_.handle_overlong(scope);
      overlong = false;
    } else {
      response = core_.handle_line(line, scope);
    }
    response += '\n';
    {
      TraceSession::Span write_span(scope.trace(), "response_write");
      size_t off = 0;
      while (off < response.size()) {
        const ssize_t n = ::send(fd, response.data() + off,
                                 response.size() - off, MSG_NOSIGNAL);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
    }
    core_.end_request(scope);
    if (core_.shutdown_requested()) break;
  }
  ::close(fd);
}

}  // namespace pase::serve
