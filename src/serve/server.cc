#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>

#include "comm/comm_model.h"
#include "core/dp_solver.h"
#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "cost/machine.h"
#include "io/model_parser.h"
#include "io/strategy_io.h"
#include "models/models.h"
#include "sim/memory.h"
#include "util/hash.h"
#include "util/timer.h"

namespace pase::serve {

namespace {

/// Bound on distinct (graph, machine) cost caches / comm models kept warm;
/// past it the memos are dropped wholesale and simply warm up again (the
/// result cache has real LRU — these are cheap to rebuild by comparison).
constexpr size_t kMaxWarmMemos = 64;

std::optional<Graph> build_zoo_graph(const std::string& name) {
  if (name == "alexnet") return models::alexnet();
  if (name == "inception_v3") return models::inception_v3();
  if (name == "rnnlm") return models::rnnlm();
  if (name == "transformer") return models::transformer();
  if (name == "densenet") return models::densenet();
  if (name == "resnet50") return models::resnet50();
  if (name == "vgg16") return models::vgg16();
  if (name == "mobilenet_v1") return models::mobilenet_v1();
  if (name == "gnmt") return models::gnmt();
  // Small FC chain: the cheap query tests and warm-up probes use this.
  if (name == "mlp") return models::mlp(32, {256, 256, 128, 64});
  return std::nullopt;
}

std::optional<MachineSpec> build_machine(const std::string& name,
                                         i64 devices) {
  if (name == "1080ti") return MachineSpec::gtx1080ti(devices);
  if (name == "2080ti") return MachineSpec::rtx2080ti(devices);
  if (name == "mixed") return MachineSpec::mixed_cluster(devices);
  return std::nullopt;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

/// One in-flight solve, shared by duplicate requests (single-flight
/// deduplication): the first caller (the leader) runs the solve; callers
/// holding the same key while it runs wait on the same future instead of
/// burning a second admission slot on identical work.
struct ServeCore::Flight {
  std::shared_future<SolveOutcome> future;
};

ServeCore::ServeCore(ServeOptions options)
    : options_(std::move(options)),
      results_(options_.cache_entries),
      pool_(options_.workers < 1 ? 1 : options_.workers) {
  watchdog_ = std::thread([this] { watchdog_main(); });
}

ServeCore::~ServeCore() {
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    watchdog_stop_ = true;
  }
  watch_cv_.notify_all();
  watchdog_.join();
}

void ServeCore::watchdog_main() {
  std::unique_lock<std::mutex> lk(watch_mu_);
  while (!watchdog_stop_) {
    watch_cv_.wait_for(lk, std::chrono::milliseconds(10));
    const auto now = std::chrono::steady_clock::now();
    for (const auto& w : watches_) {
      if (now >= w->kill_at && !w->killed.load(std::memory_order_relaxed)) {
        w->killed.store(true, std::memory_order_relaxed);
        w->cancel.store(true, std::memory_order_relaxed);
        watchdog_kills_.fetch_add(1, std::memory_order_relaxed);
        metrics_.add_counter("serve.watchdog.kills", 1);
      }
    }
  }
}

std::shared_ptr<CostCache> ServeCore::cost_cache_for(const ResultKey& key,
                                                     const Graph& graph) {
  // Cost values depend on (graph structure, machine, devices, comm model)
  // but not on the memory cap or beam width.
  u64 h = key.graph_sig;
  for (const char c : key.machine) h = hash_combine(h, static_cast<u8>(c));
  h = hash_combine(h, static_cast<u64>(key.devices));
  for (const char c : key.comm_model)
    h = hash_combine(h, static_cast<u8>(c));
  std::lock_guard<std::mutex> lk(caches_mu_);
  auto it = cost_caches_.find(h);
  if (it != cost_caches_.end()) return it->second;
  if (cost_caches_.size() >= kMaxWarmMemos) cost_caches_.clear();
  auto cache = std::make_shared<CostCache>(graph);
  cost_caches_[h] = cache;
  return cache;
}

std::shared_ptr<const CommModel> ServeCore::comm_model_for(
    const ServeRequest& request) {
  u64 h = 0x9e3779b97f4a7c15ull;
  for (const char c : request.machine) h = hash_combine(h, static_cast<u8>(c));
  h = hash_combine(h, static_cast<u64>(request.devices));
  for (const char c : request.comm_model)
    h = hash_combine(h, static_cast<u8>(c));
  std::lock_guard<std::mutex> lk(caches_mu_);
  auto it = comm_models_.find(h);
  if (it != comm_models_.end()) return it->second;
  if (comm_models_.size() >= kMaxWarmMemos) comm_models_.clear();
  const auto machine = build_machine(request.machine, request.devices);
  const auto kind = parse_comm_model_kind(request.comm_model);
  auto model = std::make_shared<const CommModel>(*machine, *kind);
  comm_models_[h] = model;
  return model;
}

std::string ServeCore::handle_line(const std::string& line) {
  metrics_.add_counter("serve.requests", 1);
  const RequestParseResult parsed = parse_request(line);
  if (!parsed.ok) {
    metrics_.add_counter("serve.responses.malformed", 1);
    ServeResponse resp;
    resp.code = ResponseCode::kMalformed;
    resp.reason = parsed.error;
    return resp.to_line();
  }
  const ServeRequest& req = parsed.request;

  ServeResponse resp;
  resp.id = req.id;
  switch (req.op) {
    case ServeRequest::Op::kPing:
      metrics_.add_counter("serve.responses.ok", 1);
      return resp.to_line();
    case ServeRequest::Op::kMetrics:
      metrics_.set_gauge("serve.inflight",
                         static_cast<double>(
                             inflight_.load(std::memory_order_relaxed)));
      resp.metrics_json = metrics_.to_json();
      metrics_.add_counter("serve.responses.ok", 1);
      return resp.to_line();
    case ServeRequest::Op::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      metrics_.add_counter("serve.responses.ok", 1);
      return resp.to_line();
    case ServeRequest::Op::kSolve:
      break;
  }
  resp = handle_solve(req);
  resp.id = req.id;
  metrics_.add_counter(
      std::string("serve.responses.") + response_code_name(resp.code), 1);
  return resp.to_line();
}

ServeResponse ServeCore::handle_solve(const ServeRequest& req) {
  const auto accepted = std::chrono::steady_clock::now();
  ServeResponse resp;
  auto finish = [&](ServeResponse& r) -> ServeResponse& {
    r.elapsed_ms = ms_since(accepted);
    return r;
  };

  // Build the request graph (zoo by name, or inline text through the
  // hardened parser — this is the service's untrusted-input boundary).
  Graph graph;
  if (!req.zoo.empty()) {
    auto built = build_zoo_graph(req.zoo);
    if (!built) {
      resp.code = ResponseCode::kMalformed;
      resp.reason = "unknown zoo model '" + req.zoo + "'";
      return finish(resp);
    }
    graph = std::move(*built);
  } else {
    ModelParseLimits limits;
    limits.max_nodes = options_.max_model_nodes;
    ModelParseResult model = parse_model(req.model_text, limits);
    if (!model.ok) {
      resp.code = ResponseCode::kMalformed;
      resp.reason = "model: " + model.error;
      return finish(resp);
    }
    graph = std::move(model.graph);
  }
  if (!build_machine(req.machine, req.devices)) {
    resp.code = ResponseCode::kMalformed;
    resp.reason = "unknown machine '" + req.machine + "'";
    return finish(resp);
  }
  if (!parse_comm_model_kind(req.comm_model)) {
    resp.code = ResponseCode::kMalformed;
    resp.reason = "unknown comm model '" + req.comm_model + "'";
    return finish(resp);
  }

  ResultKey key;
  key.graph_sig = graph_signature(graph);
  key.machine = req.machine;
  key.devices = req.devices;
  key.memory_gb = req.memory_gb;
  key.comm_model = req.comm_model;
  key.beam_width = req.beam_width;
  const u64 khash = key.hash();

  const u64 request_index =
      request_counter_.fetch_add(1, std::memory_order_relaxed);
  const InjectDraw draw =
      draw_injections(options_.inject, options_.seed, request_index);

  // Warm path: result-cache hit, verified before trust (see
  // result_cache.h). A poisoned entry is detected here, dropped, and the
  // request falls through to a fresh solve.
  ResultCache::Entry entry;
  bool poisoned = false;
  if (results_.lookup(khash, &entry)) {
    bool verified = true;
    if (!entry.strategy.empty()) {
      CostParams params = CostParams::for_machine(
          *build_machine(req.machine, req.devices),
          *parse_comm_model_kind(req.comm_model));
      if (params.comm) params.comm = comm_model_for(req);
      CostModel cost(graph, params);
      auto shared_cache = cost_cache_for(key, graph);
      cost.attach_cache(shared_cache.get());
      verified = cost.total_cost(entry.strategy) == entry.check_cost;
    }
    if (verified) {
      metrics_.add_counter("serve.cache.hits", 1);
      resp.cache = "hit";
      switch (entry.status) {
        case DpStatus::kOk: resp.code = ResponseCode::kOk; break;
        case DpStatus::kDegraded: resp.code = ResponseCode::kDegraded; break;
        case DpStatus::kInfeasible:
          resp.code = ResponseCode::kInfeasible;
          resp.reason = "no configuration satisfies the memory cap";
          break;
        case DpStatus::kOutOfMemory:
          resp.code = ResponseCode::kError;
          resp.reason = entry.guard_reason;
          break;
      }
      if (!entry.strategy.empty()) {
        resp.cost = entry.best_cost;
        resp.strategy = write_strategy(graph, entry.strategy);
        if (entry.status == DpStatus::kDegraded)
          resp.reason = entry.guard_reason;
      }
      return finish(resp);
    }
    metrics_.add_counter("serve.cache.poison_detected", 1);
    results_.erase(khash);
    poisoned = true;
  }
  metrics_.add_counter("serve.cache.misses", 1);

  // Admission control: bounded concurrent solves, explicit shedding.
  // Duplicate in-flight requests join the leader instead of taking a slot.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lk(flight_mu_);
    auto it = flights_.find(khash);
    if (it != flights_.end()) {
      flight = it->second;
      metrics_.add_counter("serve.dedup.joined", 1);
    } else {
      if (inflight_.load(std::memory_order_relaxed) >=
          options_.queue_depth) {
        resp.code = ResponseCode::kShed;
        resp.reason = "queue at capacity (" +
                      std::to_string(options_.queue_depth) +
                      " solves in flight); retry with backoff";
        return finish(resp);
      }
      inflight_.fetch_add(1, std::memory_order_relaxed);
      leader = true;
      double deadline_ms = req.deadline_ms > 0.0 ? req.deadline_ms
                                                 : options_.default_deadline_ms;
      if (options_.max_deadline_ms > 0.0 &&
          deadline_ms > options_.max_deadline_ms)
        deadline_ms = options_.max_deadline_ms;
      flight = std::make_shared<Flight>();
      auto task = std::make_shared<std::packaged_task<SolveOutcome()>>(
          [this, req, graph = std::move(graph), key, accepted, deadline_ms,
           draw]() mutable {
            SolveOutcome out =
                run_solve(req, graph, key, accepted, deadline_ms, draw);
            inflight_.fetch_sub(1, std::memory_order_relaxed);
            return out;
          });
      flight->future = task->get_future().share();
      flights_[khash] = flight;
      pool_.submit([task] { (*task)(); });
    }
  }

  const SolveOutcome out = flight->future.get();
  if (leader) {
    std::lock_guard<std::mutex> lk(flight_mu_);
    auto it = flights_.find(khash);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }

  resp.code = out.code;
  resp.reason = out.reason;
  resp.cache = poisoned ? "poisoned" : "miss";
  if (!out.strategy.empty()) {
    resp.cost = out.cost;
    // The leader moved its graph into the solve; joiners still hold
    // theirs. Rebuild for rendering when needed.
    if (graph.num_nodes() == 0) {
      if (!req.zoo.empty()) graph = *build_zoo_graph(req.zoo);
      else graph = parse_model(req.model_text).graph;
    }
    resp.strategy = write_strategy(graph, out.strategy);
  }
  return finish(resp);
}

ServeCore::SolveOutcome ServeCore::run_solve(
    const ServeRequest& req, const Graph& graph, const ResultKey& key,
    std::chrono::steady_clock::time_point accepted, double deadline_ms,
    const InjectDraw& draw) {
  SolveOutcome out;

  auto watch = std::make_shared<Watch>();
  watch->kill_at = accepted +
                   std::chrono::microseconds(static_cast<i64>(
                       (deadline_ms + options_.watchdog_grace_ms) * 1e3));
  {
    std::lock_guard<std::mutex> lk(watch_mu_);
    watches_.push_back(watch);
  }
  auto unregister = [&] {
    std::lock_guard<std::mutex> lk(watch_mu_);
    for (size_t i = 0; i < watches_.size(); ++i)
      if (watches_[i] == watch) {
        watches_.erase(watches_.begin() + static_cast<long>(i));
        break;
      }
  };

  // Fault injection (deterministic per request; see inject.h).
  if (draw.slow) {
    metrics_.add_counter("serve.inject.slow", 1);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.inject.slow_seconds));
  }
  if (draw.stall) {
    // A wedged worker: ignores its deadline, yields only to the
    // cancellation token — the watchdog's job.
    metrics_.add_counter("serve.inject.stall", 1);
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.inject.stall_seconds));
    while (std::chrono::steady_clock::now() < until &&
           !watch->cancel.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  if (watch->cancel.load(std::memory_order_relaxed)) {
    unregister();
    out.code = ResponseCode::kError;
    out.reason = "solve killed by watchdog after " +
                 std::to_string(static_cast<i64>(ms_since(accepted))) + "ms";
    return out;
  }

  DpOptions options;
  options.config_options.max_devices = req.devices;
  const MachineSpec machine = *build_machine(req.machine, req.devices);
  const CommModelKind comm_kind = *parse_comm_model_kind(req.comm_model);
  options.cost_params = CostParams::for_machine(machine, comm_kind);
  if (options.cost_params.comm)
    options.cost_params.comm = comm_model_for(req);  // warm memo
  if (req.memory_gb > 0)
    options.config_options.filter = memory_config_filter(req.memory_gb * 1e9);
  // Whatever the queue and injected sleeps consumed already counts against
  // the request's budget; a spent budget degrades immediately (the beam
  // fallback is bounded work), it does not error.
  const double remaining_s = (deadline_ms - ms_since(accepted)) / 1e3;
  options.deadline_seconds = remaining_s > 1e-9 ? remaining_s : 1e-9;
  options.cancel = &watch->cancel;
  options.degraded_fallback = true;
  options.beam_width = req.beam_width;
  options.num_threads = options_.solver_threads;
  auto shared_cache = cost_cache_for(key, graph);
  options.shared_cost_cache = shared_cache.get();
  options.metrics = &metrics_;

  const DpResult result = find_best_strategy(graph, options);
  unregister();

  switch (result.status) {
    case DpStatus::kOk: out.code = ResponseCode::kOk; break;
    case DpStatus::kDegraded:
      out.code = ResponseCode::kDegraded;
      out.reason = result.guard_reason;
      break;
    case DpStatus::kInfeasible:
      out.code = ResponseCode::kInfeasible;
      out.reason = "no configuration satisfies the memory cap";
      break;
    case DpStatus::kOutOfMemory:
      // With the fallback enabled this is reachable only through
      // cancellation (the fallback itself honors the token).
      out.code = ResponseCode::kError;
      out.reason = watch->killed.load(std::memory_order_relaxed)
                       ? "solve killed by watchdog: " + result.guard_reason
                       : result.guard_reason;
      return out;
  }
  out.cost = result.best_cost;
  out.strategy = result.strategy;

  if (ResultCache::cacheable(result.status, result.trip_cause)) {
    ResultCache::Entry entry;
    entry.status = result.status;
    entry.trip_cause = result.trip_cause;
    entry.best_cost = result.best_cost;
    entry.strategy = result.strategy;
    entry.guard_reason = result.guard_reason;
    if (!entry.strategy.empty()) {
      // check_cost is the exact value verify-on-hit will recompute: the
      // pure Eq. (1) re-evaluation, not the DP's table sum (they can
      // differ in floating-point association).
      CostModel cost(graph, options.cost_params);
      cost.attach_cache(shared_cache.get());
      entry.check_cost = cost.total_cost(entry.strategy);
    }
    const u64 khash = key.hash();
    results_.store(khash, std::move(entry));
    if (draw.poison) {
      metrics_.add_counter("serve.inject.poison", 1);
      results_.corrupt(khash);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SocketServer

SocketServer::SocketServer(ServeCore& core, std::string socket_path)
    : core_(core), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

bool SocketServer::listen(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + path_;
    return false;
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error) *error = "bind " + path_ + ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void SocketServer::run() {
  while (!stop_.load(std::memory_order_acquire) &&
         !core_.shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  // Wake blocked reads so connection threads can exit, then join them.
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      if (conn_threads_.empty()) break;
      t = std::move(conn_threads_.back());
      conn_threads_.pop_back();
    }
    t.join();
  }
}

void SocketServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool overlong = false;
  for (;;) {
    const auto nl = buffer.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response;
      if (overlong) {
        ServeResponse resp;
        resp.code = ResponseCode::kMalformed;
        resp.reason = "request line exceeds " +
                      std::to_string(core_.options().max_line_bytes) +
                      " bytes";
        response = resp.to_line();
        core_.metrics().add_counter("serve.responses.malformed", 1);
        overlong = false;
      } else {
        response = core_.handle_line(line);
      }
      response += '\n';
      size_t off = 0;
      while (off < response.size()) {
        const ssize_t n = ::send(fd, response.data() + off,
                                 response.size() - off, MSG_NOSIGNAL);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
      if (core_.shutdown_requested()) break;
      continue;
    }
    if (static_cast<i64>(buffer.size()) > core_.options().max_line_bytes) {
      // Keep draining to the newline but remember to reject the line:
      // an explicit malformed response, not a silent close.
      overlong = true;
      buffer.clear();
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
}

}  // namespace pase::serve
