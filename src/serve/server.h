// The resilient strategy-serving daemon (ROADMAP item 1: the solver as a
// long-running service). Two layers:
//
//  * ServeCore — transport-independent request handling: parse, admission
//    control, single-flight deduplication, the warm caches, deadline
//    propagation, the watchdog, fault injection, and serve.* metrics. One
//    handle_line() call per protocol line; safe from any number of
//    threads. Tests drive this layer directly, no sockets involved.
//  * SocketServer — a Unix-domain-socket front end: accept loop, one
//    thread per connection, line framing with an input-size guard.
//
// Robustness invariants (DESIGN.md §10):
//  * Every request gets exactly one classified response: ok, degraded,
//    shed, malformed, infeasible or error — never a silent drop, never an
//    uncontrolled crash.
//  * Admission control: at most --queue-depth solves are admitted
//    (running or queued); beyond that, requests are shed immediately with
//    an explicit `shed` response the client can back off on.
//  * Deadlines: every solve carries a wall-clock budget that propagates
//    into DpOptions (including the amortized in-loop checks), so a
//    timed-out request returns a *degraded but valid* strategy. A
//    watchdog thread additionally cancels solves that overrun budget +
//    grace (e.g. an injected worker stall) via the solver's cancellation
//    token; a killed solve answers `error`.
//  * Warm state: a (graph signature, machine, p, ...) -> result LRU, a
//    shared CostCache per graph/machine pair, and a CommModel memo
//    survive across requests. Cached results are verified on every hit
//    (see result_cache.h) and only timing-independent results are stored,
//    so a cache hit is byte-identical to a fresh solve.
//
// Observability invariants (DESIGN.md §11):
//  * Every request gets exactly one event-log line (obs/event_log.h),
//    rendered through the canonical serve/json.cc writer, carrying the
//    server-assigned "seq", op, code, cache disposition, trip cause,
//    queue wait, solve time, total latency and deadline budget/remaining.
//    "seq" is also stamped on the response line, joining the three
//    telemetry surfaces (response, event log, trace).
//  * With tracing armed, each request runs under its own TraceSession
//    whose spans — socket_read, parse, cache_lookup/verify, admission,
//    solve (plus the solver's own phase spans on the worker lane),
//    inject_* clauses, watchdog_kill, response_write — are stitched into
//    one merged Chrome trace on a shared timeline (trace_chrome_json()).
//    Slow-exemplar mode keeps only requests over a latency threshold in a
//    bounded ring.
//  * Rolling SLO quantiles (obs/rolling.h) over the last slo_window
//    solves — total latency, queue wait, solve time — are served by the
//    `metrics` op and exported as serve.slo.* gauges.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "serve/inject.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "util/thread_pool.h"

namespace pase {
class CostCache;
class CommModel;
class DpContext;
}  // namespace pase

namespace pase::serve {

struct ServeOptions {
  i64 workers = 2;          ///< concurrent solves (ThreadPool size)
  i64 solver_threads = 1;   ///< DP threads within one solve
  i64 queue_depth = 8;      ///< max admitted solves before shedding
  double default_deadline_ms = 2000.0;  ///< when the request sends none
  double max_deadline_ms = 30000.0;     ///< clamp for request deadlines
  double watchdog_grace_ms = 500.0;     ///< kill at deadline + grace
  i64 cache_entries = 128;              ///< result-cache capacity
  i64 max_model_nodes = 512;            ///< parser limit for inline models
  i64 max_line_bytes = i64{1} << 20;    ///< protocol input-size guard
  InjectSpec inject;                    ///< fault injection (off if empty)
  u64 seed = 1;                         ///< injection draw seed
  bool trace = false;        ///< arm per-request TraceSessions
  double slow_trace_ms = 0.0;  ///< keep only requests over this latency
                               ///< (0 = keep every traced request)
  i64 slow_trace_keep = 32;  ///< trace ring capacity in slow-exemplar mode
  i64 slo_window = 512;      ///< rolling SLO window (solve requests)
  std::string event_log_path;  ///< stream the event log here ("" = memory
                               ///< ring only)
  i64 event_log_memory = 1024;  ///< in-memory event ring capacity
  /// Block collapsing for repeated-structure graphs (docs/SCALING.md).
  /// Never changes results (certified bit-identical in the solver); on by
  /// default so thousand-layer zoo stacks solve in seconds.
  bool collapse_blocks = true;
  /// Delta re-solves: keep one DpContext per graph *adjacency* so a
  /// cache-miss re-solve of a known topology under mutated parameters
  /// (batch size, devices, bandwidths) skips the ordering/vertex-set
  /// phases. Never changes results; the context verifies the adjacency
  /// element-for-element before reuse. Responses/events report it via the
  /// "reuse" field.
  bool reuse_tables = true;
};

class ServeCore {
 public:
  explicit ServeCore(ServeOptions options);
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Per-request observability context: the server-assigned sequence
  /// number and (when tracing is armed) the request's TraceSession.
  /// Transports open one scope per request so transport work (socket
  /// read, response write) lands inside the same trace as the handling.
  /// A scope abandoned without end_request() (e.g. EOF with no request)
  /// discards its trace.
  class RequestScope {
   public:
    RequestScope() = default;
    RequestScope(RequestScope&&) = default;
    RequestScope& operator=(RequestScope&&) = default;

    /// Null when tracing is off — Span construction no-ops on null.
    TraceSession* trace() const { return trace_.get(); }
    u64 seq() const { return seq_; }

   private:
    friend class ServeCore;
    std::unique_ptr<TraceSession> trace_;
    std::unique_ptr<TraceSession::Span> root_;  ///< the "request" span
    u64 seq_ = 0;
    double offset_us_ = 0.0;  ///< session start relative to core epoch
    std::chrono::steady_clock::time_point t0_;
  };

  /// Assigns the next sequence number (and a TraceSession when armed).
  RequestScope begin_request();
  /// Handles one protocol line end to end and returns the response line
  /// (no trailing newline). Blocking: a solve returns when it completes,
  /// is shed, or is killed. Thread-safe. Appends exactly one event-log
  /// line per call.
  std::string handle_line(const std::string& line, RequestScope& scope);
  /// Closes the scope: finishes the request span and, when tracing,
  /// stitches the session into the merged trace (or drops it, in
  /// slow-exemplar mode, when the request was fast).
  void end_request(RequestScope& scope);
  /// Convenience begin/handle/end for transport-less callers (tests,
  /// bench_serve).
  std::string handle_line(const std::string& line);
  /// The transport's response to an overlong input line: a malformed
  /// response that still gets a seq and an event-log line.
  std::string handle_overlong(RequestScope& scope);

  /// True once a shutdown request has been handled.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Solves the watchdog had to kill (healthy runs must report zero).
  u64 watchdog_kills() const {
    return watchdog_kills_.load(std::memory_order_relaxed);
  }

  const ServeOptions& options() const { return options_; }
  MetricsRegistry& metrics() { return metrics_; }
  EventLog& event_log() { return events_; }
  const EventLog& event_log() const { return events_; }

  /// Rolling SLO quantiles over the last slo_window solve requests.
  /// `total` covers every solve; `queue_wait`/`solve` cover admitted
  /// solves only (cache hits and sheds never queue), so their counts lag
  /// `total` by the hits/sheds — exactly the gap an admission audit wants
  /// visible.
  struct SloSnapshot {
    i64 window = 0;
    RollingHistogram::Snapshot total;
    RollingHistogram::Snapshot queue_wait;
    RollingHistogram::Snapshot solve;
  };
  SloSnapshot slo_snapshot() const;

  /// Merged Chrome trace of every kept request, on one timeline (ts = µs
  /// since core construction, one tid block per request). Empty trace
  /// ("[]"-only) when tracing is off or nothing was kept.
  std::string trace_chrome_json() const;
  u64 traces_kept() const;

  /// Registry snapshot with the volatile serve gauges (inflight, slo)
  /// refreshed first. Prometheus text when `prometheus`, canonical JSON
  /// otherwise.
  std::string metrics_snapshot(bool prometheus);

 private:
  /// Outcome of one solve, shared between duplicate in-flight requests.
  struct SolveOutcome {
    ResponseCode code = ResponseCode::kError;
    double cost = 0.0;
    Strategy strategy;
    std::string reason;
    double queue_wait_ms = 0.0;  ///< submit -> worker pickup
    double solve_ms = 0.0;       ///< solver wall time (excludes injects)
    const char* trip = nullptr;  ///< trip_cause_name() when a guard tripped
    bool reused = false;  ///< solver reused a DpContext (delta re-solve)
  };
  struct Flight;

  /// Watchdog registration for one running solve.
  struct Watch {
    std::atomic<bool> cancel{false};
    std::atomic<bool> killed{false};
    std::chrono::steady_clock::time_point kill_at;
    TraceSession* trace = nullptr;  ///< request session, for the kill span
    u64 seq = 0;
  };

  /// What handle_solve learned about one request, for the event line and
  /// the rolling SLO. queue/solve < 0 = request never reached a worker
  /// (hit, shed, malformed).
  struct SolveAudit {
    double deadline_ms = 0.0;
    double queue_ms = -1.0;
    double solve_ms = -1.0;
    const char* trip = nullptr;
    bool dedup = false;    ///< joined another request's flight
    bool admitted = false;  ///< this request was the flight leader
    bool reuse = false;     ///< delta re-solve reused a warm DpContext
    /// Machine signature (src/hetero machine_signature, e.g. "1080Ti/p8",
    /// "MixedPod/p8/het"): lands in the event-log "machine" field and the
    /// serve.machine.* counters so heterogeneous requests are
    /// distinguishable in rollups. Empty until the machine validates.
    std::string machine;
  };

  ServeResponse handle_solve(const ServeRequest& request, RequestScope& scope,
                             SolveAudit& audit);
  SolveOutcome run_solve(const ServeRequest& request, const Graph& graph,
                         const ResultKey& key,
                         std::chrono::steady_clock::time_point accepted,
                         std::chrono::steady_clock::time_point submitted,
                         double deadline_ms, const InjectDraw& draw,
                         TraceSession* trace, u64 seq);
  std::shared_ptr<CostCache> cost_cache_for(const ResultKey& key,
                                            const Graph& graph);
  std::shared_ptr<const CommModel> comm_model_for(const ServeRequest& request);
  /// Warm DpContext keyed by graph *adjacency* (not the full structural
  /// signature — extent mutations must land on the same context for delta
  /// re-solves to fire). The context itself re-verifies the adjacency, so
  /// a hash collision degrades to a context miss, never a wrong result.
  std::shared_ptr<DpContext> dp_context_for(const Graph& graph);
  void watchdog_main();
  /// Renders + appends the one event-log line for this request.
  void log_event(const RequestScope& scope, const ServeRequest* request,
                 const ServeResponse& response, const SolveAudit* audit,
                 double total_ms);
  /// Rolling SLO as a canonical-JSON object (the metrics op's "slo").
  std::string slo_json() const;
  void refresh_volatile_gauges();

  ServeOptions options_;
  MetricsRegistry metrics_;
  EventLog events_;
  ResultCache results_;
  ThreadPool pool_;
  const std::chrono::steady_clock::time_point epoch_;

  RollingHistogram roll_total_;
  RollingHistogram roll_queue_;
  RollingHistogram roll_solve_;

  std::mutex caches_mu_;
  std::unordered_map<u64, std::shared_ptr<CostCache>> cost_caches_;
  std::unordered_map<u64, std::shared_ptr<const CommModel>> comm_models_;
  std::unordered_map<u64, std::shared_ptr<DpContext>> dp_contexts_;

  std::mutex flight_mu_;
  std::unordered_map<u64, std::shared_ptr<Flight>> flights_;

  std::mutex watch_mu_;
  std::vector<std::shared_ptr<Watch>> watches_;
  std::condition_variable watch_cv_;
  std::thread watchdog_;
  bool watchdog_stop_ = false;

  /// Kept per-request event bundles (already shifted onto the shared
  /// timeline and remapped to unique tids).
  mutable std::mutex traces_mu_;
  std::deque<std::vector<ChromeEvent>> kept_traces_;
  i64 next_trace_tid_ = 0;
  u64 traces_kept_total_ = 0;

  std::atomic<i64> inflight_{0};
  std::atomic<u64> request_counter_{0};  ///< feeds injection draws
  std::atomic<u64> seq_counter_{0};      ///< response/event/trace join key
  std::atomic<u64> watchdog_kills_{0};
  std::atomic<bool> shutdown_{false};
};

/// Unix-domain-socket front end. Lifecycle: construct, listen(), run()
/// (blocks until a shutdown request arrives or stop() is called from a
/// signal handler's thread), destructor cleans up the socket file.
class SocketServer {
 public:
  SocketServer(ServeCore& core, std::string socket_path);
  ~SocketServer();

  /// Binds and listens. False (with reason) on failure.
  bool listen(std::string* error);
  /// Accept loop; returns after shutdown. Spawns one thread per
  /// connection; all are joined before returning.
  void run();
  /// Async-signal-safe-ish stop: flips a flag the accept loop polls.
  void stop() { stop_.store(true, std::memory_order_release); }

 private:
  void serve_connection(int fd);

  ServeCore& core_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace pase::serve
