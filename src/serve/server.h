// The resilient strategy-serving daemon (ROADMAP item 1: the solver as a
// long-running service). Two layers:
//
//  * ServeCore — transport-independent request handling: parse, admission
//    control, single-flight deduplication, the warm caches, deadline
//    propagation, the watchdog, fault injection, and serve.* metrics. One
//    handle_line() call per protocol line; safe from any number of
//    threads. Tests drive this layer directly, no sockets involved.
//  * SocketServer — a Unix-domain-socket front end: accept loop, one
//    thread per connection, line framing with an input-size guard.
//
// Robustness invariants (DESIGN.md §10):
//  * Every request gets exactly one classified response: ok, degraded,
//    shed, malformed, infeasible or error — never a silent drop, never an
//    uncontrolled crash.
//  * Admission control: at most --queue-depth solves are admitted
//    (running or queued); beyond that, requests are shed immediately with
//    an explicit `shed` response the client can back off on.
//  * Deadlines: every solve carries a wall-clock budget that propagates
//    into DpOptions (including the amortized in-loop checks), so a
//    timed-out request returns a *degraded but valid* strategy. A
//    watchdog thread additionally cancels solves that overrun budget +
//    grace (e.g. an injected worker stall) via the solver's cancellation
//    token; a killed solve answers `error`.
//  * Warm state: a (graph signature, machine, p, ...) -> result LRU, a
//    shared CostCache per graph/machine pair, and a CommModel memo
//    survive across requests. Cached results are verified on every hit
//    (see result_cache.h) and only timing-independent results are stored,
//    so a cache hit is byte-identical to a fresh solve.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "serve/inject.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "util/thread_pool.h"

namespace pase {
class CostCache;
class CommModel;
}  // namespace pase

namespace pase::serve {

struct ServeOptions {
  i64 workers = 2;          ///< concurrent solves (ThreadPool size)
  i64 solver_threads = 1;   ///< DP threads within one solve
  i64 queue_depth = 8;      ///< max admitted solves before shedding
  double default_deadline_ms = 2000.0;  ///< when the request sends none
  double max_deadline_ms = 30000.0;     ///< clamp for request deadlines
  double watchdog_grace_ms = 500.0;     ///< kill at deadline + grace
  i64 cache_entries = 128;              ///< result-cache capacity
  i64 max_model_nodes = 512;            ///< parser limit for inline models
  i64 max_line_bytes = i64{1} << 20;    ///< protocol input-size guard
  InjectSpec inject;                    ///< fault injection (off if empty)
  u64 seed = 1;                         ///< injection draw seed
};

class ServeCore {
 public:
  explicit ServeCore(ServeOptions options);
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// Handles one protocol line end to end and returns the response line
  /// (no trailing newline). Blocking: a solve returns when it completes,
  /// is shed, or is killed. Thread-safe.
  std::string handle_line(const std::string& line);

  /// True once a shutdown request has been handled.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Solves the watchdog had to kill (healthy runs must report zero).
  u64 watchdog_kills() const {
    return watchdog_kills_.load(std::memory_order_relaxed);
  }

  const ServeOptions& options() const { return options_; }
  MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Outcome of one solve, shared between duplicate in-flight requests.
  struct SolveOutcome {
    ResponseCode code = ResponseCode::kError;
    double cost = 0.0;
    Strategy strategy;
    std::string reason;
  };
  struct Flight;

  /// Watchdog registration for one running solve.
  struct Watch {
    std::atomic<bool> cancel{false};
    std::atomic<bool> killed{false};
    std::chrono::steady_clock::time_point kill_at;
  };

  ServeResponse handle_solve(const ServeRequest& request);
  SolveOutcome run_solve(const ServeRequest& request, const Graph& graph,
                         const ResultKey& key,
                         std::chrono::steady_clock::time_point accepted,
                         double deadline_ms, const InjectDraw& draw);
  std::shared_ptr<CostCache> cost_cache_for(const ResultKey& key,
                                            const Graph& graph);
  std::shared_ptr<const CommModel> comm_model_for(const ServeRequest& request);
  void watchdog_main();

  ServeOptions options_;
  MetricsRegistry metrics_;
  ResultCache results_;
  ThreadPool pool_;

  std::mutex caches_mu_;
  std::unordered_map<u64, std::shared_ptr<CostCache>> cost_caches_;
  std::unordered_map<u64, std::shared_ptr<const CommModel>> comm_models_;

  std::mutex flight_mu_;
  std::unordered_map<u64, std::shared_ptr<Flight>> flights_;

  std::mutex watch_mu_;
  std::vector<std::shared_ptr<Watch>> watches_;
  std::condition_variable watch_cv_;
  std::thread watchdog_;
  bool watchdog_stop_ = false;

  std::atomic<i64> inflight_{0};
  std::atomic<u64> request_counter_{0};
  std::atomic<u64> watchdog_kills_{0};
  std::atomic<bool> shutdown_{false};
};

/// Unix-domain-socket front end. Lifecycle: construct, listen(), run()
/// (blocks until a shutdown request arrives or stop() is called from a
/// signal handler's thread), destructor cleans up the socket file.
class SocketServer {
 public:
  SocketServer(ServeCore& core, std::string socket_path);
  ~SocketServer();

  /// Binds and listens. False (with reason) on failure.
  bool listen(std::string* error);
  /// Accept loop; returns after shutdown. Spawns one thread per
  /// connection; all are joined before returning.
  void run();
  /// Async-signal-safe-ish stop: flips a flag the accept loop polls.
  void stop() { stop_.store(true, std::memory_order_release); }

 private:
  void serve_connection(int fd);

  ServeCore& core_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace pase::serve
