#include "serve/inject.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/hash.h"

namespace pase::serve {

namespace {

/// "a:b" or "a" -> doubles. Returns the number of fields parsed (0 on
/// malformed input).
int split_fields(const std::string& value, double* a, double* b) {
  const auto colon = value.find(':');
  char* end = nullptr;
  const std::string first =
      colon == std::string::npos ? value : value.substr(0, colon);
  *a = std::strtod(first.c_str(), &end);
  if (first.empty() || *end != '\0') return 0;
  if (colon == std::string::npos) return 1;
  const std::string second = value.substr(colon + 1);
  *b = std::strtod(second.c_str(), &end);
  if (second.empty() || *end != '\0') return 0;
  return 2;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Uniform [0, 1) from a hash draw.
double unit(u64 seed, u64 request_index, u64 clause) {
  const u64 h = hash_combine(hash_combine(seed, request_index), clause);
  return static_cast<double>(h >> 11) * 0x1p-53;
}

}  // namespace

std::string InjectSpec::to_string() const {
  std::ostringstream os;
  const char* sep = "";
  if (slow_rate > 0.0) {
    os << "slow=" << fmt(slow_rate) << ":" << fmt(slow_seconds);
    sep = ",";
  }
  if (stall_rate > 0.0) {
    os << sep << "stall=" << fmt(stall_rate) << ":" << fmt(stall_seconds);
    sep = ",";
  }
  if (poison_rate > 0.0) os << sep << "poison=" << fmt(poison_rate);
  return os.str();
}

InjectParseResult parse_inject_spec(const std::string& text) {
  InjectParseResult result;
  std::stringstream ss(text);
  std::string clause;
  while (std::getline(ss, clause, ',')) {
    if (clause.empty()) continue;
    const auto eq = clause.find('=');
    if (eq == std::string::npos) {
      result.error = "clause '" + clause + "' needs key=value";
      return result;
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    double a = 0.0, b = 0.0;
    const int n = split_fields(value, &a, &b);
    if (key == "slow" || key == "stall") {
      if (n != 2 || a < 0.0 || a > 1.0 || b < 0.0) {
        result.error = key + " needs RATE:SECONDS with RATE in [0,1]";
        return result;
      }
      if (key == "slow") {
        result.spec.slow_rate = a;
        result.spec.slow_seconds = b;
      } else {
        result.spec.stall_rate = a;
        result.spec.stall_seconds = b;
      }
    } else if (key == "poison") {
      if (n != 1 || a < 0.0 || a > 1.0) {
        result.error = "poison needs a RATE in [0,1]";
        return result;
      }
      result.spec.poison_rate = a;
    } else {
      result.error = "unknown clause '" + key + "'";
      return result;
    }
  }
  result.ok = true;
  return result;
}

InjectDraw draw_injections(const InjectSpec& spec, u64 seed,
                           u64 request_index) {
  InjectDraw draw;
  if (spec.empty()) return draw;
  draw.slow = unit(seed, request_index, 1) < spec.slow_rate;
  draw.stall = unit(seed, request_index, 2) < spec.stall_rate;
  draw.poison = unit(seed, request_index, 3) < spec.poison_rate;
  return draw;
}

}  // namespace pase::serve
