#include "obs/event_log.h"

namespace pase {

EventLog::EventLog(i64 memory_capacity)
    : capacity_(memory_capacity < 1 ? 1 : memory_capacity) {}

bool EventLog::open_sink(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_.open(path, std::ios::out | std::ios::trunc);
  if (!sink_.is_open()) {
    if (error != nullptr) *error = "cannot open event log '" + path + "'";
    sink_open_ = false;
    return false;
  }
  sink_open_ = true;
  return true;
}

void EventLog::append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(line);
  while (static_cast<i64>(ring_.size()) > capacity_) ring_.pop_front();
  ++total_;
  if (sink_open_) {
    sink_ << line << '\n';
    sink_.flush();
  }
}

u64 EventLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<std::string> EventLog::tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(ring_.begin(), ring_.end());
}

}  // namespace pase
