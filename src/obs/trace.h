// TraceSession: thread-safe recording of nested spans for the search-side
// hot path (DP solver phases, thread-pool tasks), rendered as Chrome
// trace-event JSON through the shared emitter (obs/chrome_trace.h) — the
// same format the simulator's per-layer timeline uses, so one viewer loads
// both.
//
// Model: each thread that opens a span gets its own *lane* (a tid in the
// emitted trace). Spans are strictly nested per lane (RAII — a child Span
// is destroyed before its parent), timestamps come from one steady clock
// shared by the whole session, and every record is appended at span *open*,
// so a lane's records are in start order: per-tid timestamps in the emitted
// JSON are monotone non-decreasing and sibling/child ranges nest exactly —
// the properties tests/obs_test.cc asserts on the parsed output.
//
// Determinism contract: span *timestamps and lane ids* are wall-clock and
// scheduling dependent (volatile). The span *structure produced by the
// calling thread* — which phases appear, how many per-vertex spans, their
// nesting and integer args — is a pure function of the input, independent
// of thread count; worker-lane "task" spans are the one scheduling-
// dependent part (chunk decomposition varies with the configured thread
// count). Structural regression tests therefore key on phase names and
// counts, never on lane ids or times (see DESIGN.md §9).
//
// Thread-safety: any number of threads may open/close spans concurrently.
// Snapshot accessors (to_chrome_json, phase_totals, ...) must not run
// concurrently with span activity — callers snapshot after the traced work
// has joined, which is how the solver and CLI use it.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "util/types.h"

namespace pase {

class MetricsRegistry;
struct TraceLane;

class TraceSession {
 public:
  TraceSession();
  ~TraceSession();  // out of line: TraceLane is incomplete here
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// RAII span: opens on construction, closes on destruction. A null
  /// `session` makes every operation a no-op, so instrumentation sites can
  /// pass through an optional pointer unconditionally.
  class Span {
   public:
    Span(TraceSession* session, const char* name);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attaches an integer arg to the span (shown in the trace viewer).
    /// Args are emitted in attachment order.
    void arg(const char* key, i64 value);

   private:
    TraceLane* lane_ = nullptr;
    size_t slot_ = 0;
  };

  i64 num_lanes() const;
  /// Completed spans across all lanes.
  i64 num_spans() const;

  /// All completed spans as Chrome events: tid = lane id, timestamps in
  /// microseconds since session construction, per-lane start order.
  std::vector<ChromeEvent> events() const;
  std::string to_chrome_json() const;

  /// Aggregate duration per span name across all lanes, sorted by name —
  /// the "where did the search's time go" summary bench/table1 prints.
  struct PhaseTotal {
    std::string name;
    u64 count = 0;
    double total_us = 0.0;
  };
  std::vector<PhaseTotal> phase_totals() const;

 private:
  friend class Span;

  TraceLane* lane_for_current_thread();

  const u64 id_;  ///< globally unique, for the per-thread lane cache
  const double start_ns_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceLane>> lanes_;
};

/// Combined phase instrumentation: a TraceSession span plus an accumulated
/// `<gauge_name>` seconds gauge in a MetricsRegistry. Either sink (or both)
/// may be null. This is what the DP solver wraps its phases in, so the
/// trace file and the metrics snapshot are guaranteed to describe the same
/// phase boundaries.
class PhaseScope {
 public:
  PhaseScope(TraceSession* trace, MetricsRegistry* metrics,
             const char* span_name, const char* gauge_name);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  void arg(const char* key, i64 value) { span_.arg(key, value); }

 private:
  TraceSession::Span span_;
  MetricsRegistry* metrics_;
  const char* gauge_name_;
  double start_ns_;
};

}  // namespace pase
