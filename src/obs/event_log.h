// EventLog: a thread-safe, append-only log of one canonical-JSON line per
// served request — the serve-path counterpart of TraceSession (spans) and
// MetricsRegistry (aggregates). Where metrics answer "how is the service
// doing", the event log answers "what happened to request #1234".
//
// Layering: this class knows nothing about JSON — callers (ServeCore)
// render records through the canonical serve/json.cc writer and append the
// finished line here. That keeps pase_obs dependency-free while every line
// stays byte-comparable: same record -> same bytes, regardless of which
// component logged it.
//
// Sinks: append() always records into a bounded in-memory ring (for the
// `metrics`/test surface and crash triage) and, when open_sink() succeeded,
// writes the line + '\n' to the file sink and flushes immediately. The
// flush-per-line policy is deliberate: pase_loadgen's --log-out cross-check
// joins the file against client-observed responses while the daemon is
// still running, and a crashed daemon must not lose acknowledged requests
// from the log. Lines are written whole under one lock, so concurrent
// appenders can never interleave bytes within a line (the
// one-line-per-request invariant tested by Serve*EventLog tests).
//
// Thread-safety: all members safe to call concurrently (one internal
// mutex).
#pragma once

#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.h"

namespace pase {

class EventLog {
 public:
  /// Keeps the most recent `memory_capacity` lines in memory (clamped to
  /// >= 1). The file sink, if opened, always receives every line.
  explicit EventLog(i64 memory_capacity = 1024);

  /// Start streaming every subsequent line to `path` (truncates). Returns
  /// false and fills *error on failure; the in-memory ring keeps working
  /// either way.
  bool open_sink(const std::string& path, std::string* error);

  /// Append one event line (a complete canonical-JSON object, without the
  /// trailing newline). Atomic per line: written and flushed whole.
  void append(const std::string& line);

  /// Lifetime lines appended (monotone; unaffected by ring eviction).
  u64 total() const;

  /// The in-memory ring, oldest first (at most memory_capacity lines).
  std::vector<std::string> tail() const;

 private:
  mutable std::mutex mu_;
  i64 capacity_;
  std::deque<std::string> ring_;
  u64 total_ = 0;
  std::ofstream sink_;
  bool sink_open_ = false;
};

}  // namespace pase
