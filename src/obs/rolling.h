// RollingHistogram: windowed quantile estimation over the last N samples,
// for rolling SLO metrics (p50/p95/p99 latency over the most recent
// requests) in long-running processes where lifetime aggregates hide
// recent regressions.
//
// Model: a fixed-size ring of the raw samples. record() overwrites the
// oldest sample once the window is full; quantile(q) sorts a snapshot of
// the window and returns the nearest-rank element, the same estimator
// pase_loadgen's report uses — so client-side and server-side percentiles
// are comparable by construction. The state (and therefore every quantile)
// is a pure function of the sample sequence: deterministic given request
// order, independent of wall-clock (the samples themselves are of course
// timing data — see DESIGN.md §11 for what that means for tests).
//
// Cost: record() is O(1); quantile()/snapshot() are O(N log N) for window
// size N. Windows are small (hundreds), and snapshots are taken on the
// metrics path, not the request hot path.
//
// Thread-safety: all members are safe to call concurrently (one internal
// mutex).
#pragma once

#include <mutex>
#include <vector>

#include "util/types.h"

namespace pase {

class RollingHistogram {
 public:
  /// Window of the last `window` samples (clamped to >= 1).
  explicit RollingHistogram(i64 window = 512);

  void record(double value);

  /// Samples currently in the window (<= window size).
  i64 count() const;
  /// Lifetime samples recorded (monotone, never truncated).
  u64 total() const;
  i64 window() const { return window_; }

  /// Nearest-rank quantile over the current window: sorted[floor(q*(n-1))]
  /// for q in [0, 1]. Returns 0.0 on an empty window.
  double quantile(double q) const;

  struct Snapshot {
    i64 window = 0;
    i64 count = 0;  ///< samples in the window
    u64 total = 0;  ///< lifetime samples
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  /// One consistent read of count/total and the three SLO quantiles.
  Snapshot snapshot() const;

 private:
  /// Caller must hold mu_. Sorted copy of the live window.
  std::vector<double> sorted_window_locked() const;

  mutable std::mutex mu_;
  i64 window_;
  std::vector<double> ring_;  ///< grows to window_, then cycles
  size_t next_ = 0;           ///< overwrite position once full
  u64 total_ = 0;
};

}  // namespace pase
