// MetricsRegistry: named counters, gauges and histograms with a
// deterministic, canonically-ordered snapshot dump.
//
// Metric taxonomy — this split is what makes the registry usable as a
// regression tripwire (see DESIGN.md §9):
//  * counters    — monotonic u64 *structural* quantities (vertices
//                  processed, substrategies enumerated, cache hits,
//                  comm-algorithm selections). Contract: every counter in
//                  the registry must be bit-identical across thread counts
//                  for the same input.
//  * histograms  — distributions of structural i64 samples (dependent-set
//                  sizes, per-vertex substrategy counts) in power-of-two
//                  buckets; same determinism contract as counters.
//  * gauges      — *volatile* doubles (elapsed seconds, thread counts,
//                  phase times). No cross-run or cross-thread-count
//                  stability is promised.
//
// Snapshots (to_json / to_text) list sections in the fixed order counters,
// histograms, gauges, each alphabetically sorted, one metric per line —
// so the structural part of a dump is a byte-stable prefix and "strip the
// gauges section" is all a consumer needs to diff two runs
// (structural_json() does exactly that).
//
// Thread-safety: all members are safe to call concurrently (one internal
// mutex; the hot paths increment per solver *phase*, not per inner-loop
// iteration, so contention is negligible).
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.h"

namespace pase {

class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter (created at zero on first use).
  void add_counter(const std::string& name, u64 delta);
  /// Sets / accumulates the named gauge.
  void set_gauge(const std::string& name, double value);
  void add_gauge(const std::string& name, double delta);
  /// Records one sample into the named histogram. Samples must be >= 0
  /// (structural quantities are counts); negative values clamp to 0.
  void record(const std::string& name, i64 value);

  /// Reads (0 / empty when the metric does not exist).
  u64 counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  struct HistogramSnapshot {
    u64 count = 0;
    i64 sum = 0;
    /// Non-empty power-of-two buckets as (lower bound, count), ascending.
    std::vector<std::pair<i64, u64>> buckets;
  };
  HistogramSnapshot histogram(const std::string& name) const;

  i64 num_metrics() const;

  /// Canonical JSON dump (see the file comment for the layout contract).
  /// With include_gauges = false the volatile section is omitted entirely.
  std::string to_json(bool include_gauges = true) const;
  /// The deterministic part only: counters + histograms. Bit-identical
  /// across thread counts by contract; what the determinism tests diff.
  std::string structural_json() const { return to_json(false); }
  /// Aligned human-readable dump, same ordering as to_json.
  std::string to_text() const;

  /// Prometheus text exposition format (version 0.0.4). Metric names are
  /// prefixed with "pase_" and sanitized ('.' and any other non
  /// [a-zA-Z0-9_] byte become '_'). Section order matches to_json —
  /// counters, histograms, then gauges — so stripping everything from the
  /// first `# TYPE ... gauge` line onward yields the same structural
  /// (thread-count-invariant) prefix contract as structural_json().
  /// Histograms emit cumulative `_bucket{le="..."}` series at the
  /// inclusive upper bound of each non-empty power-of-two bucket
  /// (bucket 0 -> le="0", bucket k -> le="2^k - 1") plus `+Inf`, `_sum`
  /// and `_count`. With include_gauges = false the gauge section is
  /// omitted entirely.
  std::string to_prometheus(bool include_gauges = true) const;

 private:
  /// Power-of-two histogram: bucket k counts samples whose bit width is k,
  /// i.e. bucket 0 holds {0}, bucket k>=1 holds [2^(k-1), 2^k).
  struct Hist {
    u64 count = 0;
    i64 sum = 0;
    std::array<u64, 64> buckets{};
  };

  mutable std::mutex mu_;
  std::map<std::string, u64> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Hist> hists_;
};

}  // namespace pase
