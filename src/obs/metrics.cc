#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace pase {

namespace {

size_t bucket_of(i64 value) {
  if (value <= 0) return 0;
  size_t k = 0;
  for (u64 v = static_cast<u64>(value); v > 0; v >>= 1) ++k;
  return std::min<size_t>(k, 63);
}

i64 bucket_lower_bound(size_t k) {
  return k == 0 ? 0 : static_cast<i64>(u64{1} << (k - 1));
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::add_counter(const std::string& name, u64 delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::add_gauge(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] += delta;
}

void MetricsRegistry::record(const std::string& name, i64 value) {
  std::lock_guard<std::mutex> lock(mu_);
  Hist& h = hists_[name];
  ++h.count;
  h.sum += std::max<i64>(value, 0);
  ++h.buckets[bucket_of(value)];
}

u64 MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  const auto it = hists_.find(name);
  if (it == hists_.end()) return snap;
  snap.count = it->second.count;
  snap.sum = it->second.sum;
  for (size_t k = 0; k < it->second.buckets.size(); ++k)
    if (it->second.buckets[k] > 0)
      snap.buckets.emplace_back(bucket_lower_bound(k), it->second.buckets[k]);
  return snap;
}

i64 MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<i64>(counters_.size() + gauges_.size() + hists_.size());
}

std::string MetricsRegistry::to_json(bool include_gauges) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n";
  char buf[64];

  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n  \"", first ? "" : ",");
    out += buf;
    out += name;
    std::snprintf(buf, sizeof(buf), "\": %llu",
                  static_cast<unsigned long long>(value));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n},\n";

  out += "\"histograms\":{";
  first = true;
  for (const auto& [name, h] : hists_) {
    out += first ? "\n  \"" : ",\n  \"";
    out += name;
    std::snprintf(buf, sizeof(buf),
                  "\": {\"count\": %llu, \"sum\": %lld, \"buckets\": [",
                  static_cast<unsigned long long>(h.count),
                  static_cast<long long>(h.sum));
    out += buf;
    bool first_bucket = true;
    for (size_t k = 0; k < h.buckets.size(); ++k) {
      if (h.buckets[k] == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s[%lld,%llu]",
                    first_bucket ? "" : ",",
                    static_cast<long long>(bucket_lower_bound(k)),
                    static_cast<unsigned long long>(h.buckets[k]));
      out += buf;
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}" : "\n}";

  if (include_gauges) {
    out += ",\n\"gauges\":{";
    first = true;
    for (const auto& [name, value] : gauges_) {
      out += first ? "\n  \"" : ",\n  \"";
      out += name;
      out += "\": " + fmt_double(value);
      first = false;
    }
    out += first ? "}" : "\n}";
  }
  out += "\n}\n";
  return out;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "pase_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus(bool include_gauges) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[96];

  for (const auto& [name, value] : counters_) {
    const std::string pn = prom_name(name);
    out += "# TYPE " + pn + " counter\n";
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(value));
    out += pn + buf;
  }

  for (const auto& [name, h] : hists_) {
    const std::string pn = prom_name(name);
    out += "# TYPE " + pn + " histogram\n";
    u64 cumulative = 0;
    for (size_t k = 0; k < h.buckets.size(); ++k) {
      if (h.buckets[k] == 0) continue;
      cumulative += h.buckets[k];
      // Inclusive upper bound of bucket k: 0 for {0}, 2^k - 1 for
      // [2^(k-1), 2^k).
      const i64 le =
          k == 0 ? 0 : static_cast<i64>((u64{1} << k) - 1);
      std::snprintf(buf, sizeof(buf), "_bucket{le=\"%lld\"} %llu\n",
                    static_cast<long long>(le),
                    static_cast<unsigned long long>(cumulative));
      out += pn + buf;
    }
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += pn + buf;
    std::snprintf(buf, sizeof(buf), "_sum %lld\n",
                  static_cast<long long>(h.sum));
    out += pn + buf;
    std::snprintf(buf, sizeof(buf), "_count %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += pn + buf;
  }

  if (include_gauges) {
    for (const auto& [name, value] : gauges_) {
      const std::string pn = prom_name(name);
      out += "# TYPE " + pn + " gauge\n";
      out += pn + " " + fmt_double(value) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t width = 0;
  for (const auto& [name, value] : counters_) width = std::max(width, name.size());
  for (const auto& [name, h] : hists_) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges_) width = std::max(width, name.size());

  std::string out;
  char buf[96];
  auto pad = [&](const std::string& name) {
    std::string p = name;
    p.resize(width, ' ');
    return p;
  };
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter    %s  %llu\n",
                  pad(name).c_str(), static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, h] : hists_) {
    std::snprintf(buf, sizeof(buf),
                  "histogram  %s  count=%llu sum=%lld\n", pad(name).c_str(),
                  static_cast<unsigned long long>(h.count),
                  static_cast<long long>(h.sum));
    out += buf;
  }
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge      %s  %s\n", pad(name).c_str(),
                  fmt_double(value).c_str());
    out += buf;
  }
  return out;
}

}  // namespace pase
