#include "obs/rolling.h"

#include <algorithm>
#include <cmath>

namespace pase {

RollingHistogram::RollingHistogram(i64 window)
    : window_(window < 1 ? 1 : window) {
  ring_.reserve(static_cast<size_t>(window_));
}

void RollingHistogram::record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<i64>(ring_.size()) < window_) {
    ring_.push_back(value);
  } else {
    ring_[next_] = value;
    next_ = (next_ + 1) % ring_.size();
  }
  ++total_;
}

i64 RollingHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<i64>(ring_.size());
}

u64 RollingHistogram::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<double> RollingHistogram::sorted_window_locked() const {
  std::vector<double> sorted = ring_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

namespace {

double nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

double RollingHistogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nearest_rank(sorted_window_locked(), q);
}

RollingHistogram::Snapshot RollingHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.window = window_;
  snap.count = static_cast<i64>(ring_.size());
  snap.total = total_;
  const std::vector<double> sorted = sorted_window_locked();
  snap.p50 = nearest_rank(sorted, 0.5);
  snap.p95 = nearest_rank(sorted, 0.95);
  snap.p99 = nearest_rank(sorted, 0.99);
  return snap;
}

}  // namespace pase
