#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>

#include "obs/metrics.h"

namespace pase {

namespace {

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Session ids are globally unique, never reused; the per-thread lane cache
/// keys on them so a stale cache entry for a destroyed session can never
/// alias a live one allocated at the same address.
std::atomic<u64> next_session_id{1};

}  // namespace

/// One thread's spans. Only the owning thread appends (no lock); snapshot
/// readers run after the traced work has joined (see the header contract).
struct TraceLane {
  struct Record {
    const char* name;
    double ts_us;           ///< relative to session start
    double open_ns;         ///< absolute steady-clock open time
    double dur_us = -1.0;   ///< -1 while the span is open
    std::vector<std::pair<std::string, i64>> args;
  };
  i64 lane_id = 0;
  std::vector<Record> records;
};

TraceSession::TraceSession()
    : id_(next_session_id.fetch_add(1, std::memory_order_relaxed)),
      start_ns_(steady_ns()) {}

TraceSession::~TraceSession() = default;

TraceLane* TraceSession::lane_for_current_thread() {
  struct CacheEntry {
    u64 session_id;
    TraceLane* lane;
  };
  // Per-thread cache of (session -> lane); bounded so threads that outlive
  // many sessions (e.g. the main thread across repeated solves) don't
  // accumulate stale entries without end.
  static thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache)
    if (e.session_id == id_) return e.lane;
  std::lock_guard<std::mutex> lock(mu_);
  lanes_.push_back(std::make_unique<TraceLane>());
  lanes_.back()->lane_id = static_cast<i64>(lanes_.size()) - 1;
  if (cache.size() >= 64) cache.erase(cache.begin());
  cache.push_back({id_, lanes_.back().get()});
  return lanes_.back().get();
}

TraceSession::Span::Span(TraceSession* session, const char* name) {
  if (!session) return;
  lane_ = session->lane_for_current_thread();
  slot_ = lane_->records.size();
  const double open = steady_ns();
  lane_->records.push_back(
      {name, (open - session->start_ns_) / 1e3, open, -1.0, {}});
}

TraceSession::Span::~Span() {
  if (!lane_) return;
  TraceLane::Record& r = lane_->records[slot_];
  // Same steady clock as the open: children (destroyed first) always close
  // at or before their parent, so per-lane ranges nest exactly.
  r.dur_us = (steady_ns() - r.open_ns) / 1e3;
}

void TraceSession::Span::arg(const char* key, i64 value) {
  if (!lane_) return;
  lane_->records[slot_].args.emplace_back(key, value);
}

i64 TraceSession::num_lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<i64>(lanes_.size());
}

i64 TraceSession::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  i64 n = 0;
  for (const auto& lane : lanes_)
    for (const TraceLane::Record& r : lane->records)
      if (r.dur_us >= 0.0) ++n;
  return n;
}

std::vector<ChromeEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ChromeEvent> out;
  for (const auto& lane : lanes_) {
    for (const TraceLane::Record& r : lane->records) {
      if (r.dur_us < 0.0) continue;  // still open: skip, keep output valid
      ChromeEvent e;
      e.name = r.name;
      e.tid = lane->lane_id;
      e.ts_us = r.ts_us;
      e.dur_us = r.dur_us;
      e.args = r.args;
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::string TraceSession::to_chrome_json() const {
  return to_chrome_trace_json(events());
}

std::vector<TraceSession::PhaseTotal> TraceSession::phase_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, PhaseTotal> by_name;
  for (const auto& lane : lanes_) {
    for (const TraceLane::Record& r : lane->records) {
      if (r.dur_us < 0.0) continue;
      PhaseTotal& t = by_name[r.name];
      t.name = r.name;
      ++t.count;
      t.total_us += r.dur_us;
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(by_name.size());
  for (auto& [name, total] : by_name) out.push_back(std::move(total));
  return out;
}

PhaseScope::PhaseScope(TraceSession* trace, MetricsRegistry* metrics,
                       const char* span_name, const char* gauge_name)
    : span_(trace, span_name),
      metrics_(metrics),
      gauge_name_(gauge_name),
      start_ns_(steady_ns()) {}

PhaseScope::~PhaseScope() {
  if (metrics_ && gauge_name_)
    metrics_->add_gauge(gauge_name_, (steady_ns() - start_ns_) / 1e9);
}

}  // namespace pase
