// Shared Chrome trace-event JSON emitter (load the output in
// chrome://tracing or Perfetto). Both trace producers in the system — the
// discrete-event simulator's per-layer timeline (src/sim) and the search
// TraceSession (obs/trace.h) — render through this one function, so the
// wire format is defined in exactly one place and cannot drift between
// them.
//
// Format contract: complete ("ph":"X") events, timestamps and durations in
// microseconds rendered with %.3f, integer args. The rendering is
// byte-stable: the same event vector always produces the same string,
// which is what lets the golden-output harness diff trace files.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace pase {

/// One complete slice. `args` are emitted in the order given (callers pass
/// a fixed order, keeping output deterministic).
struct ChromeEvent {
  std::string name;
  i64 pid = 0;
  i64 tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::vector<std::pair<std::string, i64>> args;
};

/// Renders `events` as a Chrome trace-event JSON array, one event per line.
std::string to_chrome_trace_json(const std::vector<ChromeEvent>& events);

}  // namespace pase
