#include "obs/chrome_trace.h"

#include <cstdio>

namespace pase {

std::string to_chrome_trace_json(const std::vector<ChromeEvent>& events) {
  std::string out = "[";
  char buf[256];
  bool first = true;
  for (const ChromeEvent& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%lld,"
                  "\"tid\":%lld,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
                  first ? "" : ",", e.name.c_str(),
                  static_cast<long long>(e.pid), static_cast<long long>(e.tid),
                  e.ts_us, e.dur_us);
    out += buf;
    bool first_arg = true;
    for (const auto& [key, value] : e.args) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld", first_arg ? "" : ",",
                    key.c_str(), static_cast<long long>(value));
      out += buf;
      first_arg = false;
    }
    out += "}}";
    first = false;
  }
  out += "\n]\n";
  return out;
}

}  // namespace pase
