#include "pipeline/pipeline.h"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>

#include "cost/cost_model.h"
#include "util/check.h"

namespace pase {

Graph induced_subgraph(const Graph& graph, const std::vector<NodeId>& nodes,
                       std::vector<NodeId>& remap) {
  remap.assign(static_cast<size_t>(graph.num_nodes()), kInvalidNode);
  Graph sub;
  for (NodeId v : nodes) {
    Node copy = graph.node(v);
    remap[static_cast<size_t>(v)] = sub.add_node(std::move(copy));
  }
  for (const Edge& e : graph.edges()) {
    const NodeId s = remap[static_cast<size_t>(e.src)];
    const NodeId d = remap[static_cast<size_t>(e.dst)];
    if (s != kInvalidNode && d != kInvalidNode)
      sub.add_edge(s, d, e.shape, e.src_dims, e.dst_dims);
  }
  return sub;
}

namespace {

struct IntervalCost {
  double compute_seconds = 0.0;
  Strategy strategy;  ///< indexed by position within the interval
  bool feasible = false;
};

}  // namespace

PipelineResult partition_pipeline(const Graph& graph, const MachineSpec& m,
                                  const PipelineOptions& options) {
  const std::vector<NodeId> topo = graph.topological_order();
  const i64 n = static_cast<i64>(topo.size());
  const double effective_flops = m.peak_flops * m.compute_efficiency;

  // Candidate boundaries: coarsened so the O(boundaries^2) interval solves
  // stay cheap on 200-node graphs. Boundary b means "first b topo nodes".
  const i64 granularity = std::max<i64>(1, n / 24);
  std::vector<i64> boundaries;
  for (i64 b = 0; b <= n; b += granularity) boundaries.push_back(b);
  if (boundaries.back() != n) boundaries.push_back(n);
  const i64 nb = static_cast<i64>(boundaries.size());

  // Interval stage cost via FindBestStrategy on the induced subgraph.
  std::map<std::tuple<i64, i64, i64>, IntervalCost> cache;
  auto interval_cost = [&](i64 bi, i64 bj,
                           i64 devices) -> const IntervalCost& {
    auto [it, inserted] =
        cache.try_emplace({boundaries[bi], boundaries[bj], devices});
    if (!inserted) return it->second;
    IntervalCost& ic = it->second;
    std::vector<NodeId> nodes(topo.begin() + boundaries[bi],
                              topo.begin() + boundaries[bj]);
    std::vector<NodeId> remap;
    const Graph sub = induced_subgraph(graph, nodes, remap);
    DpOptions opt = options.solver;
    opt.config_options.max_devices = devices;
    const DpResult r = find_best_strategy(sub, opt);
    if (r.status == DpStatus::kOk) {
      ic.feasible = true;
      ic.compute_seconds = r.best_cost / effective_flops;
      ic.strategy = r.strategy;
    }
    return ic;
  };

  // Activation bytes crossing a boundary, charged to the producing stage.
  std::vector<i64> pos(static_cast<size_t>(graph.num_nodes()), 0);
  for (i64 i = 0; i < n; ++i) pos[static_cast<size_t>(topo[i])] = i;
  auto crossing_seconds = [&](i64 bj) {  // boundary after `bj` topo nodes
    double bytes = 0.0;
    for (const Edge& e : graph.edges())
      if (pos[static_cast<size_t>(e.src)] < boundaries[bj] &&
          pos[static_cast<size_t>(e.dst)] >= boundaries[bj])
        bytes += static_cast<double>(e.volume()) * 4.0;
    return bytes / m.inter_bw() + m.link_latency_s;
  };

  PipelineResult best;
  best.step_seconds = std::numeric_limits<double>::infinity();

  for (const i64 stages : options.stage_counts) {
    if (stages < 1 || m.num_devices % stages != 0 || stages > nb - 1)
      continue;
    const i64 devices = m.num_devices / stages;

    // DP over boundaries: bottleneck[bj][s] = best achievable max stage
    // time using the first bj boundary units in s stages.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dp(
        static_cast<size_t>(nb), std::vector<double>(
                                     static_cast<size_t>(stages + 1), kInf));
    std::vector<std::vector<i64>> parent(
        static_cast<size_t>(nb),
        std::vector<i64>(static_cast<size_t>(stages + 1), -1));
    dp[0][0] = 0.0;
    for (i64 bj = 1; bj < nb; ++bj) {
      for (i64 s = 1; s <= stages; ++s) {
        for (i64 bi = s - 1; bi < bj; ++bi) {
          if (dp[static_cast<size_t>(bi)][static_cast<size_t>(s - 1)] ==
              kInf)
            continue;
          const IntervalCost& ic = interval_cost(bi, bj, devices);
          if (!ic.feasible) continue;
          double t = ic.compute_seconds;
          if (bj < nb - 1) t += crossing_seconds(bj);
          const double bottleneck = std::max(
              dp[static_cast<size_t>(bi)][static_cast<size_t>(s - 1)], t);
          if (bottleneck <
              dp[static_cast<size_t>(bj)][static_cast<size_t>(s)]) {
            dp[static_cast<size_t>(bj)][static_cast<size_t>(s)] = bottleneck;
            parent[static_cast<size_t>(bj)][static_cast<size_t>(s)] = bi;
          }
        }
      }
    }
    const double bottleneck =
        dp[static_cast<size_t>(nb - 1)][static_cast<size_t>(stages)];
    if (bottleneck == kInf) continue;

    // Steady-state pipeline: all stages overlap across micro-batches, so a
    // step costs one bottleneck interval; fill/drain stretches it.
    const double fill_drain =
        static_cast<double>(options.microbatches + stages - 1) /
        static_cast<double>(options.microbatches);
    const double step = bottleneck * fill_drain;
    if (stages == 1) best.no_pipeline_seconds = step;
    if (step >= best.step_seconds) continue;

    // Reconstruct the winning partition.
    best.step_seconds = step;
    best.bottleneck_seconds = bottleneck;
    best.devices_per_stage = devices;
    best.stages.clear();
    std::vector<i64> cuts;
    for (i64 bj = nb - 1, s = stages; s > 0; --s) {
      cuts.push_back(bj);
      bj = parent[static_cast<size_t>(bj)][static_cast<size_t>(s)];
    }
    cuts.push_back(0);
    std::reverse(cuts.begin(), cuts.end());
    for (size_t k = 0; k + 1 < cuts.size(); ++k) {
      PipelineStage stage;
      stage.nodes.assign(topo.begin() + boundaries[cuts[k]],
                         topo.begin() + boundaries[cuts[k + 1]]);
      const IntervalCost& ic = interval_cost(cuts[k], cuts[k + 1], devices);
      stage.strategy = ic.strategy;
      stage.compute_seconds = ic.compute_seconds;
      stage.transfer_seconds =
          cuts[k + 1] < nb - 1 ? crossing_seconds(cuts[k + 1]) : 0.0;
      best.stages.push_back(std::move(stage));
    }
  }

  // Empty stages = no feasible partition: every requested stage count was
  // skipped (does not divide the device count, or exceeds the boundary
  // budget) or every interval solve failed (memory filter, cancellation).
  // Callers must check rather than trust the zeroed timing fields.
  if (best.stages.empty()) return best;
  if (best.no_pipeline_seconds == 0.0) {
    // stage_counts did not include 1; compute the reference separately.
    DpOptions opt = options.solver;
    opt.config_options.max_devices = m.num_devices;
    const DpResult r = find_best_strategy(graph, opt);
    if (r.status == DpStatus::kOk)
      best.no_pipeline_seconds = r.best_cost / effective_flops;
  }
  return best;
}

PipelinedSearchResult find_best_pipelined_strategy(
    const Graph& graph, const MachineSpec& m, const DpOptions& solver,
    const PipelineSearchOptions& popts) {
  PASE_CHECK_MSG(popts.stages >= 0, "stages must be >= 0 (0 = auto)");
  PipelinedSearchResult out;

  if (popts.stages == 1) {
    // The disabled-dimension contract: no pipeline axis means the plain
    // solve, bit for bit — same DpResult, nothing recomputed.
    DpOptions opt = solver;
    opt.config_options.max_devices = m.num_devices;
    out.dp = find_best_strategy(graph, opt);
    const double effective_flops = m.peak_flops * m.compute_efficiency;
    out.devices_per_stage = m.num_devices;
    out.no_pipeline_seconds = out.dp.best_cost / effective_flops;
    out.bottleneck_seconds = out.no_pipeline_seconds;
    out.step_seconds = out.no_pipeline_seconds;
    return out;
  }

  PipelineOptions options;
  options.solver = solver;
  options.microbatches = popts.microbatches;
  if (popts.stages == 0) {
    options.stage_counts.clear();
    for (i64 s = 1; s <= std::min<i64>(m.num_devices, 8); s *= 2)
      if (m.num_devices % s == 0) options.stage_counts.push_back(s);
  } else {
    PASE_CHECK_MSG(m.num_devices % popts.stages == 0,
                   "--pipeline-stages must divide the device count");
    options.stage_counts = {popts.stages};
  }
  PipelineResult pr = partition_pipeline(graph, m, options);
  if (pr.stages.empty()) {
    // No stage interval was solvable: either the memory filter rejected
    // every per-stage configuration, or a cancellation token fired while
    // the boundary DP was solving intervals.
    if (solver.cancel && solver.cancel->load(std::memory_order_relaxed)) {
      out.dp.status = DpStatus::kOutOfMemory;
      out.dp.guard_reason = "cancelled during pipeline partition";
    } else {
      out.dp.status = DpStatus::kInfeasible;
    }
    return out;
  }

  out.stages = static_cast<i64>(pr.stages.size());
  out.devices_per_stage = pr.devices_per_stage;
  out.bottleneck_seconds = pr.bottleneck_seconds;
  out.step_seconds = pr.step_seconds;
  out.no_pipeline_seconds = pr.no_pipeline_seconds;

  // Scatter the per-stage configs back onto original node ids and price
  // the composed strategy with Eq. (1) so the result carries the same
  // (strategy, cost) surface a plain solve does — the serve path's
  // verify-on-hit and the CLI's report read these fields.
  out.dp.status = DpStatus::kOk;
  out.dp.strategy.assign(static_cast<size_t>(graph.num_nodes()), Config());
  for (const PipelineStage& stage : pr.stages) {
    PASE_CHECK(stage.strategy.size() == stage.nodes.size());
    for (size_t i = 0; i < stage.nodes.size(); ++i)
      out.dp.strategy[static_cast<size_t>(stage.nodes[i])] =
          stage.strategy[i];
  }
  const CostModel cost(graph, solver.cost_params);
  out.dp.best_cost = cost.total_cost(out.dp.strategy);
  out.stage_details = std::move(pr.stages);
  return out;
}

}  // namespace pase
