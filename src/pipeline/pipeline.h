// Inter-batch pipeline parallelism composed with PaSE (paper §VI):
//
//   "the computation graph can be first split into multiple stages using
//    the formulation proposed in [PipeDream] to achieve inter-batch
//    pipeline parallelism, and the subgraphs from each stage can be further
//    parallelized with data+parameter parallelism using our approach."
//
// This module implements that composition. A pipeline partition cuts a
// fixed topological order of the graph into contiguous stages; each stage
// gets an equal share of the devices and its subgraph is parallelized by
// FindBestStrategy. Stage boundaries are chosen by dynamic programming to
// minimize the pipeline bottleneck (the steady-state step time of a
// PipeDream-style pipeline is governed by its slowest stage plus the
// activations it forwards).
#pragma once

#include <vector>

#include "core/dp_solver.h"
#include "cost/machine.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

struct PipelineOptions {
  /// Stage counts to consider; each must divide the device count. The best
  /// count (including 1 = no pipeline, pure PaSE) is selected.
  std::vector<i64> stage_counts = {1, 2, 4};
  /// Micro-batches in flight; fill/drain overhead multiplies the bottleneck
  /// by (microbatches + stages - 1) / microbatches.
  i64 microbatches = 8;
  /// Per-stage strategy search settings (max_devices is set per stage).
  DpOptions solver;
};

struct PipelineStage {
  std::vector<NodeId> nodes;  ///< original-graph ids, topological order
  Strategy strategy;          ///< configs indexed like `nodes`
  double compute_seconds = 0.0;   ///< Eq. (1) cost of the stage / F
  double transfer_seconds = 0.0;  ///< activations forwarded to the next stage
  double seconds() const { return compute_seconds + transfer_seconds; }
};

struct PipelineResult {
  std::vector<PipelineStage> stages;
  i64 devices_per_stage = 0;
  double bottleneck_seconds = 0.0;  ///< slowest stage, steady state
  /// Estimated per-step time including fill/drain overhead.
  double step_seconds = 0.0;
  /// Step time of the best single-stage (pure PaSE) alternative, for
  /// comparison.
  double no_pipeline_seconds = 0.0;
};

/// Partitions `graph` into pipeline stages and parallelizes each stage with
/// FindBestStrategy, evaluating every requested stage count and returning
/// the best. The machine's devices are split evenly across stages.
PipelineResult partition_pipeline(const Graph& graph, const MachineSpec& m,
                                  const PipelineOptions& options);

/// Builds the subgraph induced by `nodes` (which must be closed under the
/// original graph's edges in the sense that only edges with both endpoints
/// inside are kept). `remap[v]` receives the new id of original node v.
Graph induced_subgraph(const Graph& graph, const std::vector<NodeId>& nodes,
                       std::vector<NodeId>& remap);

}  // namespace pase
