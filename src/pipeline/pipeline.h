// Inter-batch pipeline parallelism composed with PaSE (paper §VI):
//
//   "the computation graph can be first split into multiple stages using
//    the formulation proposed in [PipeDream] to achieve inter-batch
//    pipeline parallelism, and the subgraphs from each stage can be further
//    parallelized with data+parameter parallelism using our approach."
//
// This module implements that composition. A pipeline partition cuts a
// fixed topological order of the graph into contiguous stages; each stage
// gets an equal share of the devices and its subgraph is parallelized by
// FindBestStrategy. Stage boundaries are chosen by dynamic programming to
// minimize the pipeline bottleneck (the steady-state step time of a
// PipeDream-style pipeline is governed by its slowest stage plus the
// activations it forwards).
#pragma once

#include <vector>

#include "core/dp_solver.h"
#include "cost/machine.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

struct PipelineOptions {
  /// Stage counts to consider; each must divide the device count. The best
  /// count (including 1 = no pipeline, pure PaSE) is selected.
  std::vector<i64> stage_counts = {1, 2, 4};
  /// Micro-batches in flight; fill/drain overhead multiplies the bottleneck
  /// by (microbatches + stages - 1) / microbatches.
  i64 microbatches = 8;
  /// Per-stage strategy search settings (max_devices is set per stage).
  DpOptions solver;
};

struct PipelineStage {
  std::vector<NodeId> nodes;  ///< original-graph ids, topological order
  Strategy strategy;          ///< configs indexed like `nodes`
  double compute_seconds = 0.0;   ///< Eq. (1) cost of the stage / F
  double transfer_seconds = 0.0;  ///< activations forwarded to the next stage
  double seconds() const { return compute_seconds + transfer_seconds; }
};

struct PipelineResult {
  /// Empty = no feasible partition (no requested stage count divides the
  /// device count and fits the boundary budget, or every interval solve
  /// failed under the memory filter / cancellation token).
  std::vector<PipelineStage> stages;
  i64 devices_per_stage = 0;
  double bottleneck_seconds = 0.0;  ///< slowest stage, steady state
  /// Estimated per-step time including fill/drain overhead.
  double step_seconds = 0.0;
  /// Step time of the best single-stage (pure PaSE) alternative, for
  /// comparison.
  double no_pipeline_seconds = 0.0;
};

/// Partitions `graph` into pipeline stages and parallelizes each stage with
/// FindBestStrategy, evaluating every requested stage count and returning
/// the best. The machine's devices are split evenly across stages.
PipelineResult partition_pipeline(const Graph& graph, const MachineSpec& m,
                                  const PipelineOptions& options);

/// The pipeline-stage dimension of the searched strategy space
/// (--pipeline-stages): how many stages the graph-partition axis may use.
struct PipelineSearchOptions {
  /// 1 = no pipelining — find_best_strategy verbatim, bitwise (the
  /// default); 0 = auto (every power-of-two stage count dividing the
  /// device count, up to 8); N > 1 = exactly N stages (must divide the
  /// device count).
  i64 stages = 1;
  /// Micro-batches in flight (fill/drain overhead).
  i64 microbatches = 8;
};

/// find_best_strategy generalized with the inter-stage pipeline dimension.
/// Unlike the per-layer split dims, pipelining is a graph-partition choice:
/// one cut assignment for the whole graph, searched by the boundary DP of
/// partition_pipeline, with each stage's subgraph re-parallelized under
/// `solver` (split-dim gates included) on its share of the devices.
struct PipelinedSearchResult {
  /// Full-graph result. stages == 1: find_best_strategy's DpResult,
  /// bit-identical. stages > 1: strategy is the per-stage configs scattered
  /// back to original node ids, best_cost its Eq. (1) evaluation.
  DpResult dp;
  i64 stages = 1;
  i64 devices_per_stage = 0;
  /// Chosen stage partition; empty when stages == 1.
  std::vector<PipelineStage> stage_details;
  double bottleneck_seconds = 0.0;   ///< slowest stage, steady state
  double step_seconds = 0.0;         ///< pipeline step estimate (fill/drain in)
  double no_pipeline_seconds = 0.0;  ///< single-stage reference
};

/// Searches the pipeline-stage dimension. `solver.config_options
/// .max_devices` is overridden per stage; all other solver options (cost
/// params, split-dim gates, threads, guards) thread through to every stage
/// solve. With popts.stages == 1 this is find_best_strategy plus two
/// derived seconds fields — the disabled-dimension bitwise contract.
PipelinedSearchResult find_best_pipelined_strategy(
    const Graph& graph, const MachineSpec& m, const DpOptions& solver,
    const PipelineSearchOptions& popts);

/// Builds the subgraph induced by `nodes` (which must be closed under the
/// original graph's edges in the sense that only edges with both endpoints
/// inside are kept). `remap[v]` receives the new id of original node v.
Graph induced_subgraph(const Graph& graph, const std::vector<NodeId>& nodes,
                       std::vector<NodeId>& remap);

}  // namespace pase
