// Seeded, deterministic realization of a FaultSpec.
//
// The deterministic faults (stragglers, link degradation) perturb a copy of
// the healthy MachineSpec, which both the analytical cost model and the
// discrete-event simulator consume unchanged — a straggler lowers that
// rank's device_flops, a degraded link lowers the bandwidth fields. The
// stochastic fault (link jitter) is realized as a per-scenario
// SimPerturbation whose sample stream derives from (seed, scenario index),
// so the same seed and spec reproduce bit-identical simulations. Device
// dropout enters as an amortized per-step checkpoint/restart overhead (see
// checkpoint_overhead_s).
#pragma once

#include "cost/machine.h"
#include "fault/fault_spec.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace pase {

class FaultModel {
 public:
  explicit FaultModel(FaultSpec spec, u64 seed = 1);

  const FaultSpec& spec() const { return spec_; }
  u64 seed() const { return seed_; }

  /// The healthy machine with all deterministic faults applied. Straggler
  /// ranks must be in range (see validate_fault_spec).
  MachineSpec perturb(MachineSpec healthy) const;

  /// The jitter stream for scenario `scenario`: a mean-one log-normal
  /// multiplier exp(sigma * z - sigma^2 / 2), z ~ N(0, 1), drawn once per
  /// communication in simulation order. Deterministic for (seed, scenario);
  /// an identity perturbation when jitter_sigma == 0.
  SimPerturbation scenario_perturbation(u64 scenario) const;

  /// Expected per-step wall-clock overhead of the dropout model at step
  /// time `step_time_s`:
  ///
  ///   write_s / interval  +  rate * (restart_s + interval/2 * step_time)
  ///
  /// i.e. amortized checkpoint writes plus, per expected failure, the
  /// restart cost and the average half-interval of recomputed steps.
  double checkpoint_overhead_s(double step_time_s) const;

 private:
  FaultSpec spec_;
  u64 seed_;
};

}  // namespace pase
