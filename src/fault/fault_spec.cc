#include "fault/fault_spec.h"

#include <cstdio>
#include <cstdlib>

namespace pase {

namespace {

/// Splits `s` on `sep`, keeping empty pieces (so "a::b" surfaces as an
/// error downstream rather than silently collapsing).
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t end = s.find(sep, start);
    out.push_back(s.substr(start, end - start));
    if (end == std::string::npos) return out;
    start = end + 1;
  }
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_i64(const std::string& s, i64* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string FaultSpec::to_string() const {
  std::string out;
  auto append = [&](const std::string& clause) {
    if (!out.empty()) out += ',';
    out += clause;
  };
  for (const StragglerFault& s : stragglers)
    append("straggler=" + std::to_string(s.rank) + ":" + fmt(s.slowdown));
  if (links.active())
    append("links=" + fmt(links.intra_factor) + ":" +
           fmt(links.inter_factor));
  if (jitter_sigma > 0.0) append("jitter=" + fmt(jitter_sigma));
  if (dropout.active())
    append("dropout=" + fmt(dropout.failures_per_step) + ":" +
           fmt(dropout.checkpoint_interval_steps) + ":" +
           fmt(dropout.restart_s) + ":" + fmt(dropout.checkpoint_write_s));
  return out.empty() ? "none" : out;
}

FaultSpecParseResult parse_fault_spec(const std::string& text) {
  FaultSpecParseResult result;
  auto fail = [&](const std::string& clause, const std::string& why) {
    result.error = "fault clause '" + clause + "': " + why;
    return result;
  };

  for (const std::string& clause : split(text, ',')) {
    if (clause.empty()) return fail(clause, "empty clause");
    const size_t eq = clause.find('=');
    if (eq == std::string::npos)
      return fail(clause, "expected key=value");
    const std::string key = clause.substr(0, eq);
    const std::vector<std::string> vals = split(clause.substr(eq + 1), ':');

    if (key == "straggler") {
      StragglerFault s;
      if (vals.size() != 2 || !parse_i64(vals[0], &s.rank) ||
          !parse_double(vals[1], &s.slowdown))
        return fail(clause, "expected straggler=RANK:SLOWDOWN");
      if (s.rank < 0) return fail(clause, "rank must be >= 0");
      if (s.slowdown < 1.0)
        return fail(clause, "slowdown must be >= 1");
      result.spec.stragglers.push_back(s);
    } else if (key == "links") {
      LinkDegradation& l = result.spec.links;
      if (vals.size() != 2 || !parse_double(vals[0], &l.intra_factor) ||
          !parse_double(vals[1], &l.inter_factor))
        return fail(clause, "expected links=INTRA:INTER");
      if (l.intra_factor <= 0 || l.intra_factor > 1.0 ||
          l.inter_factor <= 0 || l.inter_factor > 1.0)
        return fail(clause, "factors must be in (0, 1]");
    } else if (key == "jitter") {
      if (vals.size() != 1 ||
          !parse_double(vals[0], &result.spec.jitter_sigma))
        return fail(clause, "expected jitter=SIGMA");
      if (result.spec.jitter_sigma < 0)
        return fail(clause, "sigma must be >= 0");
    } else if (key == "dropout") {
      DeviceDropout& d = result.spec.dropout;
      if (vals.size() < 3 || vals.size() > 4 ||
          !parse_double(vals[0], &d.failures_per_step) ||
          !parse_double(vals[1], &d.checkpoint_interval_steps) ||
          !parse_double(vals[2], &d.restart_s) ||
          (vals.size() == 4 && !parse_double(vals[3], &d.checkpoint_write_s)))
        return fail(clause, "expected dropout=RATE:INTERVAL:RESTART[:WRITE]");
      if (d.failures_per_step < 0 || d.checkpoint_interval_steps < 1 ||
          d.restart_s < 0 || d.checkpoint_write_s < 0)
        return fail(clause,
                    "rate/restart/write must be >= 0, interval >= 1");
    } else {
      return fail(clause, "unknown fault kind '" + key + "'");
    }
  }

  result.ok = true;
  return result;
}

std::string validate_fault_spec(const FaultSpec& spec, i64 num_devices) {
  for (const StragglerFault& s : spec.stragglers) {
    if (s.rank >= num_devices)
      return "straggler rank " + std::to_string(s.rank) +
             " out of range for " + std::to_string(num_devices) + " devices";
  }
  return "";
}

}  // namespace pase
