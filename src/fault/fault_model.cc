#include "fault/fault_model.h"

#include <cmath>
#include <memory>

#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pase {

FaultModel::FaultModel(FaultSpec spec, u64 seed)
    : spec_(std::move(spec)), seed_(seed) {}

MachineSpec FaultModel::perturb(MachineSpec healthy) const {
  PASE_CHECK_MSG(validate_fault_spec(spec_, healthy.num_devices).empty(),
                 "fault spec not valid for this machine");
  for (const StragglerFault& s : spec_.stragglers)
    healthy.slow_device(s.rank, s.slowdown);
  if (spec_.links.active())
    healthy.scale_links(spec_.links.intra_factor, spec_.links.inter_factor);
  return healthy;
}

SimPerturbation FaultModel::scenario_perturbation(u64 scenario) const {
  SimPerturbation pert;
  const double sigma = spec_.jitter_sigma;
  if (sigma <= 0.0) return pert;  // identity: null comm_factor
  // The callable owns its RNG so repeated simulate() calls with a fresh
  // perturbation replay the identical stream.
  auto rng = std::make_shared<Rng>(hash_combine(seed_, scenario));
  pert.comm_factor = [rng, sigma] {
    // Box-Muller; 1 - u keeps the log argument in (0, 1].
    const double u1 = 1.0 - rng->uniform_double();
    const double u2 = rng->uniform_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return std::exp(sigma * z - 0.5 * sigma * sigma);
  };
  return pert;
}

double FaultModel::checkpoint_overhead_s(double step_time_s) const {
  const DeviceDropout& d = spec_.dropout;
  if (!d.active() && d.checkpoint_write_s <= 0.0) return 0.0;
  const double amortized_write =
      d.checkpoint_write_s / d.checkpoint_interval_steps;
  const double expected_rework =
      d.failures_per_step *
      (d.restart_s + 0.5 * d.checkpoint_interval_steps * step_time_s);
  return amortized_write + expected_rework;
}

}  // namespace pase
