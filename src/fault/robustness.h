// Robustness scoring: how a fixed strategy's simulated step time behaves
// when the cluster is unhealthy. A strategy chosen for the ideal machine
// can rank very differently once rank 0 straggles or a NIC degrades —
// wide layers wait on the slow prefix device while narrower or
// differently-split layers shrug it off — so the report is the basis for
// the robustness ranking in bench/ablation_faults.
#pragma once

#include "core/dp_solver.h"
#include "fault/fault_model.h"
#include "graph/graph.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace pase {

struct RobustnessReport {
  SimResult healthy;   ///< ideal machine, no faults
  SimResult degraded;  ///< deterministic faults only (stragglers, links)
  /// Statistics of total per-step time (jittered simulation + amortized
  /// checkpoint/restart overhead) over the scenario distribution.
  double mean_step_time_s = 0.0;
  double worst_step_time_s = 0.0;
  double stddev_s = 0.0;
  /// Dropout overhead at the degraded (jitter-free) step time.
  double checkpoint_overhead_s = 0.0;
  i64 num_scenarios = 0;

  /// Expected slowdown versus the healthy machine; the robustness score
  /// (lower is more robust).
  double slowdown() const { return mean_step_time_s / healthy.step_time_s; }

  // Filled by evaluate_robustness_with_resolve only: what re-running the
  // DP against the *degraded* machine would buy. The degraded cluster has
  // the same graph adjacency, so the re-solve is a DpContext delta
  // re-solve — sub-second even at thousand-layer scale (docs/SCALING.md).
  bool resolved = false;            ///< a degraded-machine re-solve ran
  DpStatus resolve_status = DpStatus::kOk;
  Strategy resolve_strategy;        ///< empty unless resolve_status is
                                    ///< kOk/kDegraded
  SimResult resolve_degraded;       ///< adapted strategy, degraded machine
  bool resolve_reused_tables = false;  ///< delta path fired (context hit)
  double resolve_seconds = 0.0;     ///< wall time of the re-solve

  /// Step-time ratio fixed-strategy / adapted-strategy on the degraded
  /// machine (> 1 = adapting to the faults beats keeping phi). 0 when no
  /// re-solve ran or it produced no strategy.
  double adaptation_gain() const {
    if (!resolved || resolve_degraded.step_time_s <= 0.0) return 0.0;
    return degraded.step_time_s / resolve_degraded.step_time_s;
  }
};

/// Simulates `phi` on the healthy machine, on the deterministically
/// degraded machine, and over `num_scenarios` jittered scenarios drawn from
/// `model`'s seed. Deterministic: identical inputs give a bit-identical
/// report. `comm_kind` selects the collective-pricing mode for every
/// simulation (src/comm); because the comm model is rebuilt from each
/// perturbed MachineSpec, link degradation composes with the algorithm
/// library — a degraded NIC slows the inter-node phase of a hierarchical
/// all-reduce, and kAuto may even switch algorithms under faults.
RobustnessReport evaluate_robustness(const Graph& graph,
                                     const MachineSpec& healthy,
                                     const Strategy& phi,
                                     const FaultModel& model,
                                     i64 num_scenarios = 16,
                                     CommModelKind comm_kind =
                                         CommModelKind::kSimple);

/// evaluate_robustness plus a degraded-machine re-solve: re-runs the DP
/// with `solve_options` against model.perturb(healthy) — cost params are
/// overridden to the degraded machine; everything else (ordering, guards,
/// collapse_blocks, threads) is taken from `solve_options` as-is — and
/// simulates the adapted strategy on the degraded machine. Pass the
/// `context` used for the healthy solve (may be null) to make this a delta
/// re-solve: the degraded cluster has the same graph adjacency, so the
/// ordering/vertex-set phases are reused and only the DP tables refill.
/// Deterministic for identical inputs (resolve_seconds aside).
RobustnessReport evaluate_robustness_with_resolve(
    const Graph& graph, const MachineSpec& healthy, const Strategy& phi,
    const FaultModel& model, const DpOptions& solve_options,
    DpContext* context, i64 num_scenarios = 16,
    CommModelKind comm_kind = CommModelKind::kSimple);

}  // namespace pase
