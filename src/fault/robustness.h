// Robustness scoring: how a fixed strategy's simulated step time behaves
// when the cluster is unhealthy. A strategy chosen for the ideal machine
// can rank very differently once rank 0 straggles or a NIC degrades —
// wide layers wait on the slow prefix device while narrower or
// differently-split layers shrug it off — so the report is the basis for
// the robustness ranking in bench/ablation_faults.
#pragma once

#include "fault/fault_model.h"
#include "graph/graph.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace pase {

struct RobustnessReport {
  SimResult healthy;   ///< ideal machine, no faults
  SimResult degraded;  ///< deterministic faults only (stragglers, links)
  /// Statistics of total per-step time (jittered simulation + amortized
  /// checkpoint/restart overhead) over the scenario distribution.
  double mean_step_time_s = 0.0;
  double worst_step_time_s = 0.0;
  double stddev_s = 0.0;
  /// Dropout overhead at the degraded (jitter-free) step time.
  double checkpoint_overhead_s = 0.0;
  i64 num_scenarios = 0;

  /// Expected slowdown versus the healthy machine; the robustness score
  /// (lower is more robust).
  double slowdown() const { return mean_step_time_s / healthy.step_time_s; }
};

/// Simulates `phi` on the healthy machine, on the deterministically
/// degraded machine, and over `num_scenarios` jittered scenarios drawn from
/// `model`'s seed. Deterministic: identical inputs give a bit-identical
/// report. `comm_kind` selects the collective-pricing mode for every
/// simulation (src/comm); because the comm model is rebuilt from each
/// perturbed MachineSpec, link degradation composes with the algorithm
/// library — a degraded NIC slows the inter-node phase of a hierarchical
/// all-reduce, and kAuto may even switch algorithms under faults.
RobustnessReport evaluate_robustness(const Graph& graph,
                                     const MachineSpec& healthy,
                                     const Strategy& phi,
                                     const FaultModel& model,
                                     i64 num_scenarios = 16,
                                     CommModelKind comm_kind =
                                         CommModelKind::kSimple);

}  // namespace pase
