// Fault taxonomy for the robustness layer. The paper's evaluation (§IV)
// assumes a healthy, homogeneous cluster; real training clusters see
// stragglers, degraded links, transient network jitter and outright device
// loss. A FaultSpec describes a set of such faults to inject; FaultModel
// (fault_model.h) turns it into deterministic perturbations of a
// MachineSpec and of the discrete-event simulator's communication timing.
//
// The four fault classes:
//  * Straggler — rank r computes at 1/slowdown of its healthy speed
//    (thermal throttling, a sick host, background tenants).
//  * Link degradation — intra-node and/or inter-node bandwidth scaled by a
//    factor in (0, 1] (lane-width downgrade, flapping or rate-limited NIC).
//  * Link jitter — transient, zero-mean-in-log multiplicative noise on every
//    communication, sampled per event from a seeded stream (congestion).
//  * Device dropout — a device-loss rate with a checkpoint/restart cost
//    model: amortized per-step overhead
//      write_s / interval + rate * (restart_s + interval/2 * step_time).
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace pase {

struct StragglerFault {
  i64 rank = 0;
  double slowdown = 1.0;  ///< >= 1; device runs at 1/slowdown speed
};

struct LinkDegradation {
  double intra_factor = 1.0;  ///< (0, 1]; multiplies intra-node bandwidth
  double inter_factor = 1.0;  ///< (0, 1]; multiplies inter-node bandwidth
  bool active() const { return intra_factor < 1.0 || inter_factor < 1.0; }
};

/// Device loss + checkpoint/restart recovery cost model. On a failure the
/// job restarts from the last checkpoint, losing on average half a
/// checkpoint interval of work plus a fixed restart cost.
struct DeviceDropout {
  double failures_per_step = 0.0;  ///< expected device-loss events per step
  double checkpoint_interval_steps = 100.0;
  double checkpoint_write_s = 0.0;  ///< wall-clock cost of one checkpoint
  double restart_s = 30.0;          ///< re-init + weight reload on failure
  bool active() const { return failures_per_step > 0.0; }
};

struct FaultSpec {
  std::vector<StragglerFault> stragglers;
  LinkDegradation links;
  double jitter_sigma = 0.0;  ///< log-space std-dev of per-comm noise
  DeviceDropout dropout;

  bool empty() const {
    return stragglers.empty() && !links.active() && jitter_sigma == 0.0 &&
           !dropout.active();
  }

  /// Canonical one-line rendering in the parse_fault_spec() grammar.
  std::string to_string() const;
};

struct FaultSpecParseResult {
  bool ok = false;
  std::string error;  ///< names the offending clause when !ok
  FaultSpec spec;
};

/// Parses a comma-separated fault spec, e.g. the CLI's --faults argument:
///
///   straggler=RANK:SLOWDOWN      (repeatable)
///   links=INTRA:INTER            (bandwidth factors in (0, 1])
///   jitter=SIGMA                 (log-space std-dev, >= 0)
///   dropout=RATE:INTERVAL:RESTART[:WRITE]
///
/// Example: "straggler=0:2.0,links=0.5:1.0,jitter=0.1,dropout=1e-4:100:30".
/// Returns a structured error (never aborts) on malformed input.
FaultSpecParseResult parse_fault_spec(const std::string& text);

/// Checks `spec` against a concrete machine (straggler ranks in range).
/// Returns an empty string when valid, otherwise a human-readable reason.
std::string validate_fault_spec(const FaultSpec& spec, i64 num_devices);

}  // namespace pase
