#include "fault/robustness.h"

#include <cmath>

#include "hetero/hetero.h"
#include "util/check.h"

namespace pase {

RobustnessReport evaluate_robustness(const Graph& graph,
                                     const MachineSpec& healthy,
                                     const Strategy& phi,
                                     const FaultModel& model,
                                     i64 num_scenarios,
                                     CommModelKind comm_kind) {
  PASE_CHECK(num_scenarios >= 1);
  RobustnessReport report;
  report.num_scenarios = num_scenarios;

  const Simulator healthy_sim(graph, healthy, comm_kind);
  report.healthy = healthy_sim.simulate(phi);

  const MachineSpec degraded_machine = model.perturb(healthy);
  const Simulator degraded_sim(graph, degraded_machine, comm_kind);
  report.degraded = degraded_sim.simulate(phi);
  report.checkpoint_overhead_s =
      model.checkpoint_overhead_s(report.degraded.step_time_s);

  double sum = 0.0, sum_sq = 0.0;
  for (i64 k = 0; k < num_scenarios; ++k) {
    const SimPerturbation pert =
        model.scenario_perturbation(static_cast<u64>(k));
    const double sim_s =
        degraded_sim.simulate(phi, nullptr, &pert).step_time_s;
    const double total_s = sim_s + model.checkpoint_overhead_s(sim_s);
    sum += total_s;
    sum_sq += total_s * total_s;
    report.worst_step_time_s = std::max(report.worst_step_time_s, total_s);
  }
  const double n = static_cast<double>(num_scenarios);
  report.mean_step_time_s = sum / n;
  const double var =
      std::max(0.0, sum_sq / n - report.mean_step_time_s *
                                     report.mean_step_time_s);
  report.stddev_s = std::sqrt(var);
  return report;
}

RobustnessReport evaluate_robustness_with_resolve(
    const Graph& graph, const MachineSpec& healthy, const Strategy& phi,
    const FaultModel& model, const DpOptions& solve_options,
    DpContext* context, i64 num_scenarios, CommModelKind comm_kind) {
  RobustnessReport report = evaluate_robustness(graph, healthy, phi, model,
                                                num_scenarios, comm_kind);

  // Re-solve against the machine the faults actually left us with. A
  // straggler-degraded cluster *is* a heterogeneous machine (DESIGN.md
  // §13), so the re-solve goes through hetero_cost_params — the same path
  // a plain solve on that machine takes (for a fault that degrades every
  // device equally the spec stays uniform and this is the legacy params,
  // bit-identically). The graph adjacency is unchanged, so a shared
  // DpContext turns this into a delta re-solve (ordering/vertex sets
  // reused, tables refilled under the degraded cost params).
  const MachineSpec degraded_machine = model.perturb(healthy);
  DpOptions options = solve_options;
  options.cost_params = hetero_cost_params(degraded_machine, comm_kind);
  options.context = context;
  const DpResult result = find_best_strategy(graph, options);

  report.resolved = true;
  report.resolve_status = result.status;
  report.resolve_reused_tables = result.reused_tables;
  report.resolve_seconds = result.elapsed_seconds;
  if (result.status == DpStatus::kOk || result.status == DpStatus::kDegraded) {
    report.resolve_strategy = result.strategy;
    const Simulator degraded_sim(graph, degraded_machine, comm_kind);
    report.resolve_degraded = degraded_sim.simulate(result.strategy);
  }
  return report;
}

}  // namespace pase
