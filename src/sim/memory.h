// Per-device memory-footprint estimator (paper §II, last paragraph): the
// footprint is the sum of (i) tensor storage — parameter shards, gradient +
// optimizer state, and activation shards held for the backward pass — and
// (ii) communication buffers, proportional to the communication volume the
// strategy incurs. Minimizing communication therefore also reduces memory,
// which the ablation bench demonstrates.
#pragma once

#include <functional>

#include "config/config.h"
#include "cost/cost_model.h"
#include "graph/graph.h"

namespace pase {

struct MemoryFootprint {
  double parameter_bytes = 0.0;   ///< weight shards incl. grads + momentum
  double activation_bytes = 0.0;  ///< per-edge activation shards (fwd cache)
  double buffer_bytes = 0.0;      ///< collective/transfer staging buffers
  double total() const {
    return parameter_bytes + activation_bytes + buffer_bytes;
  }
};

struct MemoryOptions {
  /// Copies of each parameter shard held per device: weights + gradients +
  /// optimizer state (e.g. SGD momentum).
  double parameter_state_copies = 3.0;
  double bytes_per_element = 4.0;
};

/// Worst-case (max over devices ~ device 0 under aligned prefix placement)
/// per-device footprint of strategy `phi`.
MemoryFootprint estimate_memory(const Graph& graph, const Strategy& phi,
                                const MemoryOptions& options = {});

/// Per-device bytes a single node contributes under `config`: its parameter
/// shards (with optimizer state), its output activation shard, and its
/// internal collective buffers.
double node_memory_bytes(const Node& node, const Config& config,
                         const MemoryOptions& options = {});

/// Configuration-admission predicate for ConfigOptions::filter rejecting
/// configurations whose single-node footprint exceeds `budget_bytes`
/// (paper §I: replicated parameters make large models untrainable with
/// data parallelism — those configurations must leave the search space).
std::function<bool(const Node&, const Config&)> memory_config_filter(
    double budget_bytes, MemoryOptions options = {});

}  // namespace pase
