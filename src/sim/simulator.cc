#include "sim/simulator.h"

#include <algorithm>

#include "obs/chrome_trace.h"
#include "util/check.h"

namespace pase {

Simulator::Simulator(const Graph& graph, MachineSpec machine,
                     CommModelKind comm_kind, bool hetero_aware)
    : graph_(&graph), machine_(std::move(machine)),
      params_(CostParams::for_machine(machine_)),
      comm_(machine_, comm_kind),
      topo_order_(graph.topological_order()) {
  if (hetero_aware) hetero_.emplace(machine_);
}

double Simulator::transfer_time(double bytes, i64 group) const {
  return comm_.point_to_point_time(bytes, group);
}

double Simulator::all_reduce_time(double volume, i64 group) const {
  return comm_.collective_time(Collective::kAllReduce, volume, group);
}

std::string to_chrome_trace_json(const SimTrace& trace) {
  // Lower the simulator's per-layer timeline onto the shared emitter
  // (obs/chrome_trace.h): each layer contributes a compute slice and, when
  // non-empty, a trailing " (comm)" slice. The rendered bytes are identical
  // to what the simulator emitted before the emitter was shared.
  std::vector<ChromeEvent> events;
  events.reserve(trace.events.size() * 2);
  for (const TraceEvent& e : trace.events) {
    for (int phase = 0; phase < 2; ++phase) {
      const double start = phase == 0 ? e.start_s : e.start_s + e.compute_s;
      const double dur = phase == 0 ? e.compute_s : e.comm_s;
      if (dur <= 0.0) continue;
      ChromeEvent out;
      out.name = phase == 0 ? e.name : e.name + " (comm)";
      out.ts_us = start * 1e6;
      out.dur_us = dur * 1e6;
      out.args.emplace_back("devices", e.degree);
      events.push_back(std::move(out));
    }
  }
  return to_chrome_trace_json(events);
}

SimResult Simulator::simulate(const Strategy& phi, SimTrace* trace,
                              const SimPerturbation* perturbation) const {
  PASE_CHECK(static_cast<i64>(phi.size()) == graph_->num_nodes());
  const i64 p = machine_.num_devices;
  // One draw per communication, in simulation order, whether or not the
  // duration is zero — keeps the sample stream (and thus determinism)
  // independent of which communications happen to be free.
  auto jitter = [&] {
    return perturbation && perturbation->comm_factor
               ? perturbation->comm_factor()
               : 1.0;
  };

  // Per-device availability; finish[v] = time node v's outputs are ready.
  std::vector<double> avail(static_cast<size_t>(p), 0.0);
  std::vector<double> finish(static_cast<size_t>(graph_->num_nodes()), 0.0);

  SimResult result;
  // Gradient all-reduces are not on the forward/backward critical path;
  // they overlap with backward compute (grad_overlap_efficiency). They are
  // accumulated separately and the un-hidden remainder is added at the end.
  double grad_comm_s = 0.0;
  double bwd_compute_s = 0.0;
  const double bwd_fraction = params_.bwd_flops_multiplier /
                              (1.0 + params_.bwd_flops_multiplier);

  for (const NodeId v : topo_order_) {
    const Node& node = graph_->node(v);
    const Config& cfg = phi[static_cast<size_t>(v)];
    const i64 degree = std::min<i64>(cfg.degree(), p);

    // Inputs must have arrived (producer finish + transfer time).
    double ready = 0.0;
    for (EdgeId eid : graph_->incident_edges(v)) {
      const Edge& e = graph_->edge(eid);
      if (e.dst != v) continue;
      const double bytes =
          transfer_bytes(e, phi[static_cast<size_t>(e.src)], cfg, params_);
      const i64 group =
          std::max<i64>(phi[static_cast<size_t>(e.src)].degree(), degree);
      ready = std::max(ready, finish[static_cast<size_t>(e.src)] +
                                  jitter() * transfer_time(bytes, group));
    }

    // Devices 0..degree-1 must be free (aligned prefix placement).
    double start = ready;
    for (i64 d = 0; d < degree; ++d)
      start = std::max(start, avail[static_cast<size_t>(d)]);

    // On heterogeneous clusters the layer finishes when its slowest
    // occupied device does; in hetero-aware mode the degree fastest
    // devices take proportionally sized shards and finish together, so the
    // layer runs at the sum of their peaks (W / sum_top-g(f)).
    const double compute_s =
        hetero_ ? layer_flops(node, cfg, params_) *
                      static_cast<double>(degree) /
                      (hetero_->effective_flops(degree) *
                       machine_.compute_efficiency)
                : layer_flops(node, cfg, params_) /
                      (machine_.prefix_weakest_flops(degree) *
                       machine_.compute_efficiency);
    double comm_s = 0.0;
    for (const CollectiveComm& c : layer_collectives(node, cfg, params_)) {
      switch (c.kind) {
        case CollectiveComm::Kind::kGradientAllReduce:
          grad_comm_s += jitter() * all_reduce_time(c.volume_bytes, c.group);
          break;
        case CollectiveComm::Kind::kReduceAllReduce:
          comm_s += jitter() * all_reduce_time(c.volume_bytes, c.group);
          break;
        case CollectiveComm::Kind::kHaloExchange:
          comm_s += jitter() * comm_.halo_exchange_time(c.bytes, c.group);
          break;
      }
    }
    bwd_compute_s += bwd_fraction * compute_s;

    const double end = start + compute_s + comm_s;
    finish[static_cast<size_t>(v)] = end;
    for (i64 d = 0; d < degree; ++d) avail[static_cast<size_t>(d)] = end;
    result.compute_time_s += compute_s;
    result.comm_time_s += comm_s;
    if (trace)
      trace->events.push_back(
          TraceEvent{node.name, start, compute_s, comm_s, degree});
  }

  double timeline_end = 0.0;
  for (double t : avail) timeline_end = std::max(timeline_end, t);
  const double exposed_grad = std::max(
      0.0, grad_comm_s - machine_.grad_overlap_efficiency * bwd_compute_s);
  result.comm_time_s += grad_comm_s;
  result.step_time_s = timeline_end + exposed_grad;
  return result;
}

}  // namespace pase
