#include "sim/memory.h"

#include <algorithm>

#include "util/check.h"

namespace pase {

double node_memory_bytes(const Node& node, const Config& config,
                         const MemoryOptions& options) {
  CostParams params;
  params.bytes_per_element = options.bytes_per_element;
  double bytes = 0.0;
  for (const ParamTensor& p : node.params) {
    double owners = 1.0;
    for (i32 d : p.dims) owners *= static_cast<double>(config[d]);
    bytes += static_cast<double>(p.volume) / owners *
             options.bytes_per_element * options.parameter_state_copies;
  }
  if (node.output.volume > 0) {
    double splits = 1.0;
    for (i32 d : node.output.dims) splits *= static_cast<double>(config[d]);
    bytes += static_cast<double>(node.output.volume) / splits *
             options.bytes_per_element;
  }
  for (const CollectiveComm& c : layer_collectives(node, config, params))
    bytes += c.bytes;
  return bytes;
}

std::function<bool(const Node&, const Config&)> memory_config_filter(
    double budget_bytes, MemoryOptions options) {
  return [budget_bytes, options](const Node& node, const Config& config) {
    return node_memory_bytes(node, config, options) <= budget_bytes;
  };
}

MemoryFootprint estimate_memory(const Graph& graph, const Strategy& phi,
                                const MemoryOptions& options) {
  PASE_CHECK(static_cast<i64>(phi.size()) == graph.num_nodes());
  MemoryFootprint fp;
  CostParams params;  // r is irrelevant for byte volumes
  params.bytes_per_element = options.bytes_per_element;

  for (const Node& node : graph.nodes()) {
    const Config& cfg = phi[static_cast<size_t>(node.id)];
    // Parameter shards: a device holds volume / (product of splits over the
    // dims indexing the tensor); replicas hold full copies of their shard.
    for (const ParamTensor& p : node.params) {
      double owners = 1.0;
      for (i32 d : p.dims) owners *= static_cast<double>(cfg[d]);
      fp.parameter_bytes += static_cast<double>(p.volume) / owners *
                            options.bytes_per_element *
                            options.parameter_state_copies;
    }
    // Communication buffers for internal collectives.
    for (const CollectiveComm& c : layer_collectives(node, cfg, params))
      fp.buffer_bytes += c.bytes;
  }

  // Activations: each edge's tensor shard is held by the consumer until the
  // backward pass (the need volume |A(v,d,phi)| of §II).
  for (const Edge& e : graph.edges()) {
    const Config& cv = phi[static_cast<size_t>(e.dst)];
    double need = 1.0;
    for (size_t t = 0; t < e.shape.size(); ++t) {
      const double extent = static_cast<double>(e.shape[t]);
      const double split =
          e.dst_dims[t] >= 0
              ? std::min(static_cast<double>(cv[e.dst_dims[t]]), extent)
              : 1.0;
      need *= extent / split;
    }
    fp.activation_bytes += need * options.bytes_per_element;
    // Staging buffer for the part that has to be fetched.
    fp.buffer_bytes +=
        transfer_bytes(e, phi[static_cast<size_t>(e.src)], cv, params) / 2.0;
  }
  return fp;
}

}  // namespace pase
