#include "sim/placement.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace pase {

i64 device_for_coordinate(const Config& config, const NodePlacement& placement,
                          const std::vector<i64>& coord) {
  PASE_CHECK(static_cast<i64>(coord.size()) == config.rank());
  PASE_CHECK(static_cast<i64>(placement.dim_order.size()) == config.rank());
  i64 rank = 0;
  i64 radix = 1;
  for (i32 d : placement.dim_order) {
    PASE_CHECK(coord[static_cast<size_t>(d)] >= 0 &&
               coord[static_cast<size_t>(d)] < config[d]);
    rank += coord[static_cast<size_t>(d)] * radix;
    radix *= config[d];
  }
  return rank;
}

namespace {

/// Inverse of device_for_coordinate: grid coordinate owned by `rank`.
std::vector<i64> coordinate_for_device(const Config& config,
                                       const NodePlacement& placement,
                                       i64 rank) {
  std::vector<i64> coord(static_cast<size_t>(config.rank()), 0);
  for (i32 d : placement.dim_order) {
    coord[static_cast<size_t>(d)] = rank % config[d];
    rank /= config[d];
  }
  return coord;
}

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double length() const { return std::max(0.0, hi - lo); }
};

Interval block(double extent, i64 splits, i64 index) {
  const double len = extent / static_cast<double>(splits);
  return Interval{static_cast<double>(index) * len,
                  static_cast<double>(index + 1) * len};
}

Interval intersect(const Interval& a, const Interval& b) {
  return Interval{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

}  // namespace

double locality_score(const Graph& graph, const Strategy& phi,
                      const Placement& placement) {
  double score = 0.0;
  for (const Edge& e : graph.edges()) {
    const Config& cu = phi[static_cast<size_t>(e.src)];
    const Config& cv = phi[static_cast<size_t>(e.dst)];
    const NodePlacement& pu = placement.nodes[static_cast<size_t>(e.src)];
    const NodePlacement& pv = placement.nodes[static_cast<size_t>(e.dst)];
    const i64 shared = std::min(cu.degree(), cv.degree());
    // Both grids are rank bijections; a consumer device r < deg_u overlaps
    // with exactly the producer block also owned by r (replicas along
    // unmapped producer dims hold the same block, so the coordinate's
    // mapped components fully determine it).
    for (i64 r = 0; r < shared; ++r) {
      const auto uc = coordinate_for_device(cu, pu, r);
      const auto vc = coordinate_for_device(cv, pv, r);
      double overlap = 1.0;
      for (size_t t = 0; t < e.shape.size(); ++t) {
        const double extent = static_cast<double>(e.shape[t]);
        const Interval held =
            e.src_dims[t] >= 0
                ? block(extent, cu[e.src_dims[t]],
                        uc[static_cast<size_t>(e.src_dims[t])])
                : Interval{0.0, extent};
        const Interval needed =
            e.dst_dims[t] >= 0
                ? block(extent, cv[e.dst_dims[t]],
                        vc[static_cast<size_t>(e.dst_dims[t])])
                : Interval{0.0, extent};
        overlap *= intersect(held, needed).length();
      }
      score += overlap;
    }
  }
  return score;
}

Placement naive_placement(const Graph& graph, const Strategy& phi) {
  PASE_CHECK(static_cast<i64>(phi.size()) == graph.num_nodes());
  Placement p;
  p.nodes.resize(static_cast<size_t>(graph.num_nodes()));
  for (const Node& n : graph.nodes()) {
    auto& order = p.nodes[static_cast<size_t>(n.id)].dim_order;
    for (i64 d = 0; d < n.space.rank(); ++d)
      order.push_back(static_cast<i32>(d));
  }
  return p;
}

Placement greedy_placement(const Graph& graph, const Strategy& phi) {
  Placement p = naive_placement(graph, phi);
  std::vector<bool> placed(static_cast<size_t>(graph.num_nodes()), false);

  // BFS over the (direction-agnostic) graph so every node after the first
  // has at least one placed neighbor to align with.
  std::queue<NodeId> queue;
  for (NodeId start = 0; start < graph.num_nodes(); ++start) {
    if (placed[static_cast<size_t>(start)]) continue;
    queue.push(start);
    placed[static_cast<size_t>(start)] = true;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      const Node& node = graph.node(v);

      // Alignment key per dim: the placement position of the first placed
      // neighbor's dim it shares a tensor dim with; unshared dims keep a
      // large key so they vary outermost, after every shared dim.
      std::vector<i64> key(static_cast<size_t>(node.space.rank()),
                           node.space.rank() + 1000);
      for (EdgeId eid : graph.incident_edges(v)) {
        const Edge& e = graph.edge(eid);
        const NodeId other = e.src == v ? e.dst : e.src;
        if (!placed[static_cast<size_t>(other)] || other == v) continue;
        const auto& mine = e.src == v ? e.src_dims : e.dst_dims;
        const auto& theirs = e.src == v ? e.dst_dims : e.src_dims;
        const auto& their_order =
            p.nodes[static_cast<size_t>(other)].dim_order;
        for (size_t t = 0; t < mine.size(); ++t) {
          if (mine[t] < 0 || theirs[t] < 0) continue;
          const auto pos = std::find(their_order.begin(), their_order.end(),
                                     theirs[t]) -
                           their_order.begin();
          key[static_cast<size_t>(mine[t])] =
              std::min(key[static_cast<size_t>(mine[t])],
                       static_cast<i64>(pos));
        }
      }
      auto& order = p.nodes[static_cast<size_t>(v)].dim_order;
      std::stable_sort(order.begin(), order.end(), [&](i32 a, i32 b) {
        return key[static_cast<size_t>(a)] < key[static_cast<size_t>(b)];
      });

      for (NodeId w : graph.neighbors(v)) {
        if (!placed[static_cast<size_t>(w)]) {
          placed[static_cast<size_t>(w)] = true;
          queue.push(w);
        }
      }
    }
  }
  return p;
}

}  // namespace pase
