// Device placement (paper §II): a parallelization configuration says how to
// *split* an iteration space but not which device runs which part. The
// paper uses "a simple greedy assignment that maximizes data locality", i.e.
// maximizes |A(v,d,phi) n A(u,d,phi)| across edges — equivalently, aligns
// the sharding decisions of adjacent layers (as GShard does).
//
// This module makes that assignment explicit: each node's devices are the
// rank prefix [0, degree), with its grid laid out so that tensor dims shared
// with already-placed neighbors vary in the same rank order. It also scores
// placements so the greedy choice can be verified against alternatives.
#pragma once

#include <vector>

#include "config/config.h"
#include "graph/graph.h"
#include "util/types.h"

namespace pase {

/// Placement of one node: the order in which its iteration-space dims vary
/// across device ranks (innermost first). The devices used are always the
/// rank prefix [0, degree).
struct NodePlacement {
  std::vector<i32> dim_order;  ///< permutation of the split dims, innermost
                               ///< (fastest-varying) first
};

struct Placement {
  std::vector<NodePlacement> nodes;  ///< indexed by NodeId
};

/// Device rank that owns grid coordinate `coord` (one entry per
/// iteration-space dim) under `placement` of a node with configuration
/// `config`. Ranks are assigned innermost-first along `dim_order`.
i64 device_for_coordinate(const Config& config, const NodePlacement& placement,
                          const std::vector<i64>& coord);

/// Total data-locality score of a placement: the summed per-edge overlap
/// volume between what each consumer device needs and what it already holds
/// from the producer (higher is better). Evaluated exactly by enumerating
/// device grids, so intended for verification and small graphs.
double locality_score(const Graph& graph, const Strategy& phi,
                      const Placement& placement);

/// Greedy locality-maximizing placement (paper §II): process nodes in a
/// BFS order; for each node, order its split dims so that dims shared
/// (through tensor maps) with already-placed neighbors keep the neighbor's
/// rank order, making shared-dim shards land on the same ranks.
Placement greedy_placement(const Graph& graph, const Strategy& phi);

/// Baseline for comparison: every node lays its dims out in declaration
/// order, ignoring neighbors.
Placement naive_placement(const Graph& graph, const Strategy& phi);

}  // namespace pase
