// Discrete-event training-step simulator — the stand-in for the paper's
// Mesh-TensorFlow runs on 1080Ti/2080Ti clusters (Fig. 6).
//
// Model:
//  * Devices are ranked 0..p-1, `devices_per_node` per host. Under the
//    greedy aligned placement of §II, a node with parallel degree g runs on
//    the device prefix 0..g-1, with grid coordinates laid out consistently
//    across layers (which is what makes the closed-form t_x overlap valid).
//  * Layers execute in topological order. A layer starts when (a) all its
//    input tensors have arrived and (b) the devices it uses are free; it
//    occupies them for compute + internal-collective time. Independent
//    branches overlap only to the extent they use disjoint device prefixes.
//  * Communication time = bytes / bandwidth + latency, with intra-node
//    (PCIe) bandwidth when the participating group fits inside one host and
//    inter-node (InfiniBand) bandwidth otherwise. The 2080Ti profile's
//    missing peer-to-peer support shows up as a low intra-node bandwidth.
//
// Absolute times are approximate; Fig. 6 only needs the *relative* step
// times of strategies on the same machine, which this model preserves.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "comm/comm_model.h"
#include "config/config.h"
#include "cost/cost_model.h"
#include "cost/machine.h"
#include "graph/graph.h"
#include "hetero/hetero.h"

namespace pase {

struct SimResult {
  double step_time_s = 0.0;     ///< one forward+backward+update step
  double compute_time_s = 0.0;  ///< device-0 busy time spent computing
  double comm_time_s = 0.0;     ///< device-0 busy time spent communicating
  /// Throughput in steps/s; 0 for an empty (zero-time) step rather than a
  /// division by zero.
  double steps_per_second() const {
    return step_time_s > 0.0 ? 1.0 / step_time_s : 0.0;
  }
};

/// One simulated layer execution, for timeline inspection.
struct TraceEvent {
  std::string name;
  double start_s = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  i64 degree = 1;  ///< devices occupied
};

struct SimTrace {
  std::vector<TraceEvent> events;  ///< topological order
};

/// Per-run perturbation hook for fault injection (src/fault). `comm_factor`
/// is invoked once per communication the simulator prices — input-tensor
/// transfers and layer collectives, in the fixed (topological, edge-id)
/// simulation order — and its result multiplies that communication's
/// duration. Deterministic callables (e.g. a seeded RNG stream) therefore
/// yield bit-identical SimResults for identical (graph, strategy, seed).
struct SimPerturbation {
  std::function<double()> comm_factor;  ///< multiplier >= 0; null = 1.0
};

/// Renders a trace in the Chrome trace-event JSON format (load in
/// chrome://tracing or Perfetto; compute and communication phases appear
/// as separate slices).
std::string to_chrome_trace_json(const SimTrace& trace);

class Simulator {
 public:
  /// `comm_kind` selects the collective-pricing mode (src/comm):
  /// kSimple — the default — reproduces the legacy flat-link/hierarchical
  /// formulas bit-exactly; kAuto and the named algorithms price every
  /// CollectiveComm through the same alpha-beta library the analytical
  /// cost model can attach, keeping the two consistent.
  ///
  /// `hetero_aware` opts into the src/hetero execution model: a degree-g
  /// layer runs on the g *fastest* devices (fastest-first placement) with
  /// proportionally sized shards, so its compute time is W / sum_top-g(f)
  /// instead of the even-shard (W/g) / prefix_weakest. On a uniform
  /// machine the two coincide and the flag is a no-op; off by default so
  /// every legacy caller keeps bit-identical results.
  Simulator(const Graph& graph, MachineSpec machine,
            CommModelKind comm_kind = CommModelKind::kSimple,
            bool hetero_aware = false);

  /// Simulates one training step under `phi`; optionally records the
  /// per-layer timeline and/or applies a fault perturbation to every
  /// communication (see SimPerturbation).
  SimResult simulate(const Strategy& phi, SimTrace* trace = nullptr,
                     const SimPerturbation* perturbation = nullptr) const;

  /// step_time(baseline) / step_time(phi): the Fig. 6 y-axis with
  /// baseline = data parallelism.
  double speedup(const Strategy& phi, const Strategy& baseline) const {
    return simulate(baseline).step_time_s / simulate(phi).step_time_s;
  }

  const MachineSpec& machine() const { return machine_; }

  const CommModel& comm_model() const { return comm_; }

 private:
  /// Point-to-point / halo / transfer time for per-device `bytes` over the
  /// link class implied by the group size.
  double transfer_time(double bytes, i64 group) const;
  /// All-reduce of a `volume`-byte shard across `group` devices, priced by
  /// the comm library under this simulator's CommModelKind (the kSimple
  /// default is the legacy NCCL-style intra-ring + inter-ring form).
  double all_reduce_time(double volume, i64 group) const;

  const Graph* graph_;
  MachineSpec machine_;
  CostParams params_;
  CommModel comm_;
  std::vector<NodeId> topo_order_;
  /// Engaged in hetero-aware mode: fastest-first placement + proportional
  /// shards (see the constructor comment).
  std::optional<HeteroModel> hetero_;
};

}  // namespace pase
