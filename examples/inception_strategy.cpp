// Find and analyze the best strategy for InceptionV3 — the paper's hardest
// CNN case (sparse graph with high-degree concat nodes, §III-C).
//
//   ./inception_strategy [num_devices]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/dep_sets.h"
#include "core/dp_solver.h"
#include "models/models.h"
#include "search/baselines.h"
#include "sim/memory.h"
#include "sim/simulator.h"

using namespace pase;

int main(int argc, char** argv) {
  const i64 p = argc > 1 ? std::atoll(argv[1]) : 32;
  const MachineSpec machine = MachineSpec::gtx1080ti(p);
  const Graph graph = models::inception_v3();

  std::printf("InceptionV3: %lld layers, %lld tensors\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()));

  // Why the vertex ordering matters (paper §III-C).
  const i64 m_gs = max_dependent_set_size(graph, generate_seq(graph));
  const i64 m_bf = max_dependent_set_size(graph, breadth_first(graph));
  std::printf("Max dependent set: %lld (GenerateSeq) vs %lld (BFS)\n\n",
              static_cast<long long>(m_gs), static_cast<long long>(m_bf));

  DpOptions options;
  options.config_options.max_devices = p;
  options.cost_params = CostParams::for_machine(machine);
  const DpResult result = find_best_strategy(graph, options);
  if (result.status != DpStatus::kOk) {
    std::fprintf(stderr, "solver ran out of memory\n");
    return 1;
  }
  std::printf("Search finished in %.0f ms.\n", result.elapsed_seconds * 1e3);

  // Print the hybrid (non-data-parallel) layers — the deep module-E convs,
  // where the cost model finds pure batch splitting suboptimal (§IV-C).
  std::printf("Layers where the search chose hybrid parallelism:\n");
  for (const Node& n : graph.nodes()) {
    const Config& c = result.strategy[static_cast<size_t>(n.id)];
    const i64 bdim = n.space.find("b");
    bool pure_batch = true;
    for (i64 d = 0; d < c.rank(); ++d)
      if (d != bdim && c[d] > 1) pure_batch = false;
    if (!pure_batch)
      std::printf("  %-10s %-8s %s\n", n.name.c_str(),
                  n.space.names().c_str(), c.to_string().c_str());
  }

  const Simulator sim(graph, machine);
  const Strategy dp = data_parallel_strategy(graph, p);
  const Strategy owt = owt_strategy(graph, p);
  std::printf("\nSimulated step time (batch 128):\n");
  std::printf("  data parallel : %.1f ms\n", sim.simulate(dp).step_time_s * 1e3);
  std::printf("  OWT expert    : %.1f ms\n", sim.simulate(owt).step_time_s * 1e3);
  std::printf("  PaSE          : %.1f ms\n",
              sim.simulate(result.strategy).step_time_s * 1e3);
  std::printf("\nPer-device memory: %.2f GB (DP) -> %.2f GB (PaSE)\n",
              estimate_memory(graph, dp).total() / 1e9,
              estimate_memory(graph, result.strategy).total() / 1e9);
  return 0;
}
