// The paper's §VI composition, end to end: partition a deep CNN into
// PipeDream-style pipeline stages, parallelize each stage's subgraph with
// PaSE, and export the per-stage strategies in the serialization format a
// GShard-style bridge can consume.
//
//   ./pipeline_hybrid [num_devices]
#include <cstdio>
#include <cstdlib>

#include "io/strategy_io.h"
#include "models/models.h"
#include "pipeline/pipeline.h"
#include "search/baselines.h"

using namespace pase;

int main(int argc, char** argv) {
  const i64 p = argc > 1 ? std::atoll(argv[1]) : 16;
  const MachineSpec machine = MachineSpec::gtx1080ti(p);
  const Graph graph = models::vgg16(64);

  PipelineOptions options;
  options.stage_counts = {1, 2, 4};
  options.microbatches = 8;
  options.solver.cost_params = CostParams::for_machine(machine);

  const PipelineResult r = partition_pipeline(graph, machine, options);

  std::printf("VGG-16 on %lld GPUs: best partition uses %zu stage(s), %lld "
              "devices each.\n",
              static_cast<long long>(p), r.stages.size(),
              static_cast<long long>(r.devices_per_stage));
  std::printf("Estimated step: %.2f ms pipelined vs %.2f ms pure PaSE.\n\n",
              r.step_seconds * 1e3, r.no_pipeline_seconds * 1e3);

  for (size_t s = 0; s < r.stages.size(); ++s) {
    const PipelineStage& stage = r.stages[s];
    std::printf("Stage %zu: %zu layers (%s .. %s), compute %.2f ms, "
                "activation handoff %.2f ms\n",
                s + 1, stage.nodes.size(),
                graph.node(stage.nodes.front()).name.c_str(),
                graph.node(stage.nodes.back()).name.c_str(),
                stage.compute_seconds * 1e3, stage.transfer_seconds * 1e3);

    // Export this stage's strategy (keyed by layer names, so it can be
    // applied to the original model definition).
    std::vector<NodeId> remap;
    const Graph sub = induced_subgraph(graph, stage.nodes, remap);
    const std::string text = write_strategy(sub, stage.strategy);
    // Round-trip through the parser as a sanity check before handing the
    // file to an execution framework.
    PASE_CHECK(read_strategy(sub, text).ok);
    std::printf("%s\n", text.c_str());
  }
  return 0;
}
