// Quickstart: build a computation graph with the operator library, run
// FindBestStrategy, and compare the result against data parallelism.
//
//   ./quickstart [num_devices]
#include <cstdio>
#include <cstdlib>

#include "core/dp_solver.h"
#include "core/strategy.h"
#include "models/models.h"
#include "ops/ops.h"
#include "search/baselines.h"
#include "sim/simulator.h"

using namespace pase;

int main(int argc, char** argv) {
  const i64 p = argc > 1 ? std::atoll(argv[1]) : 8;

  // 1. Describe the machine: p GPUs, 8 per node, PCIe + InfiniBand.
  const MachineSpec machine = MachineSpec::gtx1080ti(p);

  // 2. Build a DNN computation graph. Here: a small MLP classifier.
  //    Each node is a layer; each edge carries a tensor with explicit
  //    dim maps (the model zoo in src/models shows larger examples).
  Graph graph;
  const NodeId fc1 = graph.add_node(ops::fully_connected("FC1", 64, 4096, 1024));
  const NodeId fc2 = graph.add_node(ops::fully_connected("FC2", 64, 4096, 4096));
  const NodeId fc3 = graph.add_node(ops::fully_connected("FC3", 64, 1000, 4096));
  const NodeId sm = graph.add_node(ops::softmax("Softmax", 64, 1000));
  graph.add_edge_named(fc1, fc2, {"b", "n"}, {"b", "c"});
  graph.add_edge_named(fc2, fc3, {"b", "n"}, {"b", "c"});
  graph.add_edge_named(fc3, sm, {"b", "n"}, {"b", "n"});
  graph.validate();

  // 3. Search for the best hybrid parallelization strategy.
  DpOptions options;
  options.config_options.max_devices = p;
  options.cost_params = CostParams::for_machine(machine);
  const DpResult result = find_best_strategy(graph, options);
  if (result.status != DpStatus::kOk) {
    std::fprintf(stderr, "solver ran out of memory\n");
    return 1;
  }

  // 4. Inspect the result.
  std::printf("Best strategy for p = %lld devices:\n\n%s\n",
              static_cast<long long>(p),
              strategy_table("MLP", graph, result.strategy).c_str());

  const Simulator sim(graph, machine);
  const Strategy dp = data_parallel_strategy(graph, p);
  std::printf("Analytical cost:   %.3e FLOP-equivalents\n", result.best_cost);
  std::printf("Search time:       %.1f ms (K = %lld, M = %lld)\n",
              result.elapsed_seconds * 1e3,
              static_cast<long long>(result.max_configs),
              static_cast<long long>(result.max_dependent_set));
  std::printf("Simulated speedup over data parallelism: %.2fx\n",
              sim.speedup(result.strategy, dp));
  return 0;
}
