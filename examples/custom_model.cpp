// Extending PaSE to a model the library does not ship: a two-tower
// retrieval/recommendation network. Shows the full public API surface —
// custom nodes with hand-written cost payloads, edge dim maps across
// branches, strategy search, validation and simulation.
//
//   ./custom_model [num_devices]
#include <cstdio>
#include <cstdlib>

#include "core/dp_solver.h"
#include "core/strategy.h"
#include "ops/ops.h"
#include "search/baselines.h"
#include "sim/simulator.h"

using namespace pase;

namespace {

/// A dot-product interaction layer joining the two towers: iteration space
/// (b, d) contracting over the embedding dim. Built by hand to show that
/// custom operators only need an iteration space plus the cost payload.
Node interaction(const std::string& name, i64 b, i64 d) {
  Node node;
  node.name = name;
  node.kind = OpKind::kElementwise;
  node.space = IterSpace({{"b", b, true}, {"d", d, true}});
  node.flops_per_point = 2.0;  // multiply + add into the running dot
  node.reduction_dims = {1};   // contraction over d
  node.output = OutputSpec{b, {0}};
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  const i64 p = argc > 1 ? std::atoll(argv[1]) : 16;
  const i64 batch = 256, d = 256;

  Graph g;
  // User tower: huge sparse id embedding -> MLP.
  const NodeId user_emb =
      g.add_node(ops::embedding("UserEmbed", batch, 1, d, 2000000));
  const NodeId user_fc =
      g.add_node(ops::fully_connected("UserFC", batch, d, d));
  // Item tower: smaller vocabulary, deeper MLP.
  const NodeId item_emb =
      g.add_node(ops::embedding("ItemEmbed", batch, 1, d, 100000));
  const NodeId item_fc1 =
      g.add_node(ops::fully_connected("ItemFC1", batch, 2 * d, d));
  const NodeId item_fc2 =
      g.add_node(ops::fully_connected("ItemFC2", batch, d, 2 * d));
  // Join + score.
  const NodeId join = g.add_node(interaction("DotProduct", batch, d));
  const NodeId score = g.add_node(ops::softmax("Score", batch, 2));

  // Embedding outputs [b, s=1, d] feed the towers' FC inputs.
  g.add_edge_named(user_emb, user_fc, {"b", "d"}, {"b", "c"});
  g.add_edge_named(item_emb, item_fc1, {"b", "d"}, {"b", "c"});
  g.add_edge_named(item_fc1, item_fc2, {"b", "n"}, {"b", "c"});
  // Tower outputs meet at the interaction layer.
  g.add_edge_named(user_fc, join, {"b", "n"}, {"b", "d"});
  g.add_edge_named(item_fc2, join, {"b", "n"}, {"b", "d"});
  g.add_edge_named(join, score, {"b"}, {"b"});
  g.validate();

  const MachineSpec machine = MachineSpec::gtx1080ti(p);
  DpOptions options;
  options.config_options.max_devices = p;
  options.cost_params = CostParams::for_machine(machine);
  const DpResult r = find_best_strategy(g, options);
  if (r.status != DpStatus::kOk) {
    std::fprintf(stderr, "solver ran out of memory\n");
    return 1;
  }
  PASE_CHECK(strategy_valid(g, r.strategy, options.config_options));

  std::printf("%s\n",
              strategy_table("Two-tower retrieval model", g, r.strategy)
                  .c_str());
  const Simulator sim(g, machine);
  std::printf(
      "Simulated speedup over data parallelism on %lld GPUs: %.2fx\n",
      static_cast<long long>(p),
      sim.speedup(r.strategy, data_parallel_strategy(g, p)));
  std::printf(
      "(The 2M-row user-id table forces the table dims apart from the\n"
      "batch dim — exactly the kind of layer-specific choice hybrid\n"
      "parallelism exists for.)\n");
  return 0;
}
