// Compare parallelization strategies for the Transformer NMT model across
// machine profiles: data parallelism, the Mesh-TensorFlow expert hybrid,
// a FlexFlow-like MCMC search, and PaSE.
//
//   ./transformer_strategy [num_devices]
#include <cstdio>
#include <cstdlib>

#include "core/dp_solver.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/mcmc.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace pase;

int main(int argc, char** argv) {
  const i64 p = argc > 1 ? std::atoll(argv[1]) : 32;
  const Graph graph = models::transformer();

  TextTable table("Transformer (WMT EN->DE shapes), simulated step time");
  table.set_header({"Strategy", "1080Ti step (ms)", "1080Ti speedup",
                    "2080Ti step (ms)", "2080Ti speedup"});

  const MachineSpec machines[] = {MachineSpec::gtx1080ti(p),
                                  MachineSpec::rtx2080ti(p)};

  // Collect the candidate strategies per machine (PaSE and the MCMC are
  // machine-aware through r = F/B; DP and the expert are not).
  struct Candidate {
    std::string name;
    Strategy phi[2];
  };
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"Data parallel",
       {data_parallel_strategy(graph, p), data_parallel_strategy(graph, p)}});
  candidates.push_back({"Mesh-TF expert",
                        {transformer_expert_strategy(graph, p),
                         transformer_expert_strategy(graph, p)}});

  Candidate mcmc{"FlexFlow-like MCMC", {}};
  Candidate pase{"PaSE (ours)", {}};
  for (int mi = 0; mi < 2; ++mi) {
    DpOptions options;
    options.config_options.max_devices = p;
    options.cost_params = CostParams::for_machine(machines[mi]);
    McmcOptions mo;
    mo.max_iterations = 25000;
    mo.min_iterations = 2500;
    mo.full_evaluation = false;
    mcmc.phi[mi] = mcmc_search(graph, options.config_options,
                               options.cost_params,
                               transformer_expert_strategy(graph, p), mo)
                       .best_strategy;
    const DpResult r = find_best_strategy(graph, options);
    if (r.status != DpStatus::kOk) {
      std::fprintf(stderr, "solver ran out of memory\n");
      return 1;
    }
    pase.phi[mi] = r.strategy;
  }
  candidates.push_back(mcmc);
  candidates.push_back(pase);

  const Simulator sims[2] = {Simulator(graph, machines[0]),
                             Simulator(graph, machines[1])};
  const double dp_ms[2] = {
      sims[0].simulate(candidates[0].phi[0]).step_time_s * 1e3,
      sims[1].simulate(candidates[0].phi[1]).step_time_s * 1e3};

  char buf[32];
  for (const Candidate& c : candidates) {
    std::vector<std::string> row = {c.name};
    for (int mi = 0; mi < 2; ++mi) {
      const double ms = sims[mi].simulate(c.phi[mi]).step_time_s * 1e3;
      std::snprintf(buf, sizeof(buf), "%.1f", ms);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2fx", dp_ms[mi] / ms);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nNote how the no-peer-to-peer 2080Ti profile amplifies the gap\n"
      "between strategies (paper Fig. 6b measured up to 4x there).\n");
  return 0;
}
