// Ablation for paper §III-C and §V: dependent-set sizes under GenerateSeq
// vs breadth-first ordering, the resulting K^(M+1) work bound, and the
// DenseNet case where no ordering helps.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/dep_sets.h"
#include "util/table.h"

using namespace pase;

namespace {

struct OrderingStats {
  i64 max_dep = 0;
  double mean_dep = 0.0;
};

OrderingStats stats(const Graph& g, const Ordering& o) {
  OrderingStats s;
  double sum = 0.0;
  for (i64 i = 0; i < g.num_nodes(); ++i) {
    const i64 d =
        static_cast<i64>(compute_vertex_sets(g, o, i).dependent.size());
    s.max_dep = std::max(s.max_dep, d);
    sum += static_cast<double>(d);
  }
  s.mean_dep = sum / static_cast<double>(g.num_nodes());
  return s;
}

}  // namespace

int main() {
  auto benchmarks = models::paper_benchmarks();
  benchmarks.push_back({"DenseNet (2x6)", models::densenet()});

  TextTable table(
      "Ablation: dependent-set sizes by ordering (paper Sec. III-C / V)");
  table.set_header({"Benchmark", "|V|", "K(p=8)", "M GenerateSeq",
                    "mean |D| GS", "M BreadthFirst", "mean |D| BF",
                    "log10 K^(M+1) GS", "log10 K^(M+1) BF"});

  ConfigOptions copts;
  copts.max_devices = 8;
  char buf[32];
  for (const auto& b : benchmarks) {
    const ConfigCache cache(b.graph, copts);
    const double k = static_cast<double>(cache.max_configs());
    const OrderingStats gs = stats(b.graph, generate_seq(b.graph));
    const OrderingStats bf = stats(b.graph, breadth_first(b.graph));
    std::vector<std::string> row = {b.name,
                                    std::to_string(b.graph.num_nodes()),
                                    std::to_string(cache.max_configs()),
                                    std::to_string(gs.max_dep)};
    std::snprintf(buf, sizeof(buf), "%.2f", gs.mean_dep);
    row.push_back(buf);
    row.push_back(std::to_string(bf.max_dep));
    std::snprintf(buf, sizeof(buf), "%.2f", bf.mean_dep);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f",
                  std::log10(k) * static_cast<double>(gs.max_dep + 1));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f",
                  std::log10(k) * static_cast<double>(bf.max_dep + 1));
    row.push_back(buf);
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nPaper reference points: InceptionV3 has ~218 nodes; GenerateSeq\n"
      "keeps |D(i) u {v}| <= 3 while BF reaches ~10, i.e. K^(M+1) >= 1e11\n"
      "combinations (OOM). DenseNet stays dense under any ordering (Sec. "
      "V).\n");
  return 0;
}
