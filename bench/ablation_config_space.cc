// Ablation over the configuration-space choices the prototype makes
// (DESIGN.md §4.1): power-of-two-only split factors and product <= p vs
// product == p. Reports both solver time and the quality (cost ratio vs the
// default space's optimum) so the pruning's effect is visible.
#include "bench_common.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pase;

int main() {
  const i64 p = 8;
  const MachineSpec m = MachineSpec::gtx1080ti(p);

  TextTable table(
      "Ablation: configuration-space variants (p = 8, 1080Ti profile)");
  table.set_header({"Benchmark", "Variant", "K", "Time", "Cost vs default"});

  char buf[32];
  for (const auto& b : models::paper_benchmarks()) {
    struct Variant {
      const char* name;
      bool pow2;
      bool full_use;
    };
    const Variant variants[] = {
        {"pow2, <=p (default)", true, false},
        {"pow2, ==p", true, true},
        {"any factor, <=p", false, false},
    };
    double default_cost = 0.0;
    bool first = true;
    for (const Variant& v : variants) {
      DpOptions opt = bench::dp_options(m);
      opt.config_options.powers_of_two_only = v.pow2;
      opt.config_options.require_full_use = v.full_use;
      const ConfigCache cache(b.graph, opt.config_options);
      const DpResult r = find_best_strategy(b.graph, opt);
      std::vector<std::string> row = {first ? b.name : "", v.name,
                                      std::to_string(cache.max_configs())};
      if (r.status == DpStatus::kOk) {
        if (first) default_cost = r.best_cost;
        row.push_back(format_mins_secs(r.elapsed_seconds));
        std::snprintf(buf, sizeof(buf), "%.4f", r.best_cost / default_cost);
        row.push_back(buf);
      } else {
        row.push_back("OOM");
        row.push_back("-");
      }
      table.add_row(row);
      first = false;
    }
    table.add_rule();
  }
  table.print();
  std::printf(
      "\nReading: '==p' forbids leaving devices idle (can only raise cost);\n"
      "non-power-of-two factors enlarge K with little quality gain — the\n"
      "justification for the default pruning, which matches the paper's\n"
      "reported K ranges.\n");
  return 0;
}
