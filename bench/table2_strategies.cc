// Reproduces paper Table II: the best strategies found by FindBestStrategy
// for a system of 4 nodes x 8 1080Ti GPUs (p = 32), printed per benchmark
// with runs of identically-configured layers collapsed.
#include "bench_common.h"
#include "core/strategy.h"
#include "util/table.h"

using namespace pase;

int main() {
  const i64 p = 32;
  const MachineSpec m = MachineSpec::gtx1080ti(p);
  std::printf(
      "Table II: best strategies found by FindBestStrategy for 4 nodes x 8 "
      "1080Ti GPUs (p = 32)\n\n");
  for (const auto& b : models::paper_benchmarks()) {
    const DpResult r = find_best_strategy(b.graph, bench::dp_options(m));
    if (r.status != DpStatus::kOk) {
      std::printf("%s: solver ran out of memory\n", b.name.c_str());
      continue;
    }
    // Like the paper's module-level rows, pure data-parallel stretches are
    // summarized; layers with hybrid/parameter parallelism are listed.
    TextTable table(b.name);
    table.set_header({"Layers", "Dimensions", "Configuration"});
    i64 dp_layers = 0;
    for (const Node& n : b.graph.nodes()) {
      const Config& c = r.strategy[static_cast<size_t>(n.id)];
      bool pure_batch = true;
      const i64 bdim = n.space.find("b");
      for (i64 d = 0; d < c.rank(); ++d)
        if (d != bdim && c[d] > 1) pure_batch = false;
      if (pure_batch) {
        ++dp_layers;
        continue;
      }
      table.add_row({n.name, n.space.names(), c.to_string()});
    }
    table.add_rule();
    table.add_row({"(all other layers)", "-",
                   "pure data parallelism, batch split"});
    table.print();
    std::printf("  %lld of %lld layers use pure data parallelism\n\n",
                static_cast<long long>(dp_layers),
                static_cast<long long>(b.graph.num_nodes()));
  }
  // Beyond the paper's Table II: the same search with the widened
  // per-layer space (--split-dims all) on the small-batch large ResNet,
  // where the batch axis alone cannot cover p = 32 and the DP reaches for
  // spatial/channel splits (halo-exchange pricing included in Eq. (1)).
  {
    const Graph graph = *models::zoo_graph("resnet_large_p");
    DpOptions widened = bench::dp_options(m);
    widened.config_options.split_dims = *parse_split_dims("all");
    const DpResult r = find_best_strategy(graph, widened);
    if (r.status == DpStatus::kOk) {
      TextTable table("resnet_large_p, widened space (--split-dims all)");
      table.set_header({"Layers", "Dimensions", "Configuration"});
      i64 dp_layers = 0;
      for (const Node& n : graph.nodes()) {
        const Config& c = r.strategy[static_cast<size_t>(n.id)];
        bool pure_batch = true;
        const i64 bdim = n.space.find("b");
        for (i64 d = 0; d < c.rank(); ++d)
          if (d != bdim && c[d] > 1) pure_batch = false;
        if (pure_batch) {
          ++dp_layers;
          continue;
        }
        table.add_row({n.name, n.space.names(), c.to_string()});
      }
      table.add_rule();
      table.add_row({"(all other layers)", "-",
                     "pure data parallelism, batch split"});
      table.print();
      std::printf("  %lld of %lld layers use pure data parallelism\n\n",
                  static_cast<long long>(dp_layers),
                  static_cast<long long>(graph.num_nodes()));
    } else {
      std::printf("resnet_large_p (widened): solver ran out of memory\n\n");
    }
  }

  std::printf(
      "Legend: b batch, c in-chan/query-chan, h height/heads, w width,\n"
      "n out-chan, r/s filter dims, l RNN layers, s seq len, d embed/model\n"
      "dim, e hidden dim, v vocabulary, k kv channels.\n");
  return 0;
}
