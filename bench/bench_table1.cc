// Search-time scaling trajectory: cold vs block-collapsed vs delta
// re-solve on the generated transformer_stack family (docs/SCALING.md),
// the numbers the ROADMAP's BENCH_table1.json trajectory tracks.
//
// For each N in {8, 100, 1000} (transformer_stack_<N>, 6N + 4 layers):
//   cold_ms       exact solve, no collapse, no context
//   collapsed_ms  --collapse-blocks solve (bit-identical by construction;
//                 re-verified here against the cold strategy and cost)
//   delta_ms      re-solve after a batch mutation through a DpContext
//                 primed by a previous solve (ordering/vertex sets reused)
// Small timings are min-of-3 trials; the N=1000 cold solve is a single
// trial (seconds of pure compute — measurement noise is far below the
// gate's band; three trials would triple the stage's wall time for
// nothing).
//
// Output is one canonical JSON object on stdout (redirect to
// BENCH_table1.json); human-readable numbers go to stderr. The JSON
// carries a top-level "gated" path list, which is what tools/bench_gate
// diffs against the checked-in baseline (calibration-normalized via
// cpu_calib_ms, exactly like BENCH_serve.json).
//
// Structural claims enforced here (exit 1 on violation, so check.sh fails
// even before the gate runs):
//   - collapsed and delta results are bit-identical to the cold solve at
//     every N (strategy and best_cost);
//   - the N=1000 collapse speedup is >= 10x (the ROADMAP open-item-2
//     acceptance bar);
//   - the N=1000 delta re-solve is sub-second and actually reused tables.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/json.h"

using namespace pase;
using pase::bench::calibrate_cpu_ms;
using pase::bench::now_ms;
using pase::serve::Json;
using pase::serve::write_json;

namespace {

struct Row {
  i64 blocks = 0;
  double cold_ms = 0.0;
  double collapsed_ms = 0.0;
  double delta_ms = 0.0;
  bool delta_reused = false;
  bool identical = false;
  i64 layers = 0;
};

bool same_result(const DpResult& a, const DpResult& b) {
  return a.status == b.status && a.best_cost == b.best_cost &&
         a.strategy == b.strategy;
}

/// Min-of-`trials` wall time of find_best_strategy; the first trial's
/// result is kept (all trials are bit-identical — the DP is deterministic).
double timed_solve(const Graph& graph, const DpOptions& options, int trials,
                   DpResult* out) {
  double best = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double t0 = now_ms();
    DpResult r = find_best_strategy(graph, options);
    const double ms = now_ms() - t0;
    if (t == 0) *out = std::move(r);
    if (t == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  const double calib_ms = calibrate_cpu_ms(3);
  std::fprintf(stderr, "cpu calibration: %.3f ms (memory-bound spin)\n",
               calib_ms);

  const MachineSpec machine = MachineSpec::gtx1080ti(8);
  const std::vector<i64> family = {8, 100, 1000};
  bool ok = true;
  std::vector<Row> rows;

  std::fprintf(stderr, "%-24s %6s %12s %12s %12s %9s\n", "model", "layers",
               "cold(ms)", "collapsed", "delta(ms)", "speedup");
  for (const i64 n : family) {
    Row row;
    row.blocks = n;
    const Graph graph = models::transformer_stack(n);
    const Graph mutated = models::transformer_stack(n, /*batch=*/16);
    row.layers = graph.num_nodes();
    // Cold solves of the thousand-layer instance take seconds each; one
    // trial is plenty there (see the file comment).
    const int cold_trials = n <= 100 ? 3 : 1;

    const DpOptions cold_options = bench::dp_options(machine);
    DpOptions collapsed_options = cold_options;
    collapsed_options.collapse_blocks = true;

    DpResult cold, collapsed;
    row.cold_ms = timed_solve(graph, cold_options, cold_trials, &cold);
    row.collapsed_ms = timed_solve(graph, collapsed_options, 3, &collapsed);
    row.identical = same_result(cold, collapsed);

    // Delta: prime a context with a collapsed solve of the original
    // graph, then re-solve the batch-mutated instance (same adjacency)
    // through it. Every trial reuses the stored ordering/vertex sets.
    DpContext context;
    DpOptions delta_options = collapsed_options;
    delta_options.context = &context;
    DpResult primed, delta, delta_cold;
    timed_solve(graph, delta_options, 1, &primed);
    row.delta_ms = timed_solve(mutated, delta_options, 3, &delta);
    row.delta_reused = delta.reused_tables;
    // The delta result must match a context-free solve of the mutated
    // instance (collapsed — its bit-identity to cold was just checked).
    timed_solve(mutated, collapsed_options, 1, &delta_cold);
    row.identical = row.identical && same_result(delta, delta_cold);

    const double speedup =
        row.collapsed_ms > 0 ? row.cold_ms / row.collapsed_ms : 0.0;
    std::fprintf(stderr, "transformer_stack_%-6lld %6lld %12.1f %12.1f "
                 "%12.1f %8.1fx%s%s\n",
                 static_cast<long long>(n),
                 static_cast<long long>(row.layers), row.cold_ms,
                 row.collapsed_ms, row.delta_ms, speedup,
                 row.identical ? "" : "  NOT BIT-IDENTICAL",
                 row.delta_reused ? "" : "  DELTA-DID-NOT-REUSE");
    if (!row.identical) {
      std::fprintf(stderr,
                   "FAIL: collapsed/delta solve differs from cold at N=%lld\n",
                   static_cast<long long>(n));
      ok = false;
    }
    if (!row.delta_reused) {
      std::fprintf(stderr, "FAIL: delta re-solve missed the context at "
                   "N=%lld\n", static_cast<long long>(n));
      ok = false;
    }
    rows.push_back(row);
  }

  const Row& big = rows.back();
  const double big_speedup =
      big.collapsed_ms > 0 ? big.cold_ms / big.collapsed_ms : 0.0;
  if (big_speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: N=1000 collapse speedup %.1fx is below the 10x bar\n",
                 big_speedup);
    ok = false;
  }
  if (big.delta_ms >= 1000.0) {
    std::fprintf(stderr,
                 "FAIL: N=1000 delta re-solve took %.0f ms (>= 1 s)\n",
                 big.delta_ms);
    ok = false;
  }

  Json models_json = Json::make_object();
  for (const Row& row : rows) {
    Json entry = Json::make_object();
    entry.object["layers"] =
        Json::make_number(static_cast<double>(row.layers));
    entry.object["cold_ms"] = Json::make_number(row.cold_ms);
    entry.object["collapsed_ms"] = Json::make_number(row.collapsed_ms);
    entry.object["delta_ms"] = Json::make_number(row.delta_ms);
    entry.object["speedup"] = Json::make_number(
        row.collapsed_ms > 0 ? row.cold_ms / row.collapsed_ms : 0.0);
    models_json.object["transformer_stack_" + std::to_string(row.blocks)] =
        std::move(entry);
  }

  // The gate bands the absolute search times of the big instances; the
  // N=8 row is informational (tens of ms, too close to scheduler noise),
  // and the speedup ratios are enforced as hard claims above instead —
  // the gate's regression/stale bands are built for "lower is better"
  // latencies, not ratios.
  Json gated = Json::make_array();
  for (const char* path :
       {"models.transformer_stack_100.cold_ms",
        "models.transformer_stack_100.collapsed_ms",
        "models.transformer_stack_1000.cold_ms",
        "models.transformer_stack_1000.collapsed_ms",
        "models.transformer_stack_1000.delta_ms"})
    gated.array.push_back(Json::make_string(path));

  Json report = Json::make_object();
  report.object["bench"] = Json::make_string("table1_scaling");
  report.object["cpu_calib_ms"] = Json::make_number(calib_ms);
  report.object["devices"] =
      Json::make_number(static_cast<double>(machine.num_devices));
  report.object["gated"] = std::move(gated);
  report.object["models"] = std::move(models_json);
  std::printf("%s\n", write_json(report).c_str());
  return ok ? 0 : 1;
}
