// Ablation for paper §V heterogeneity: a mixed cluster whose second half
// runs at 60% peak. The analytical model prices compute at the weakest
// device (the §V rule); the simulator resolves true per-device speeds.
#include "bench_common.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace pase;

int main() {
  const i64 p = 16;

  TextTable table(
      "Ablation: heterogeneous cluster (16 devices: 8x 1080Ti + 8x 0.6-peak)"
      " — simulated step time (ms)");
  table.set_header({"Benchmark", "Strategy", "Homogeneous", "Mixed",
                    "Mixed/Homog."});

  const MachineSpec homog = MachineSpec::gtx1080ti(p);
  const MachineSpec mixed = MachineSpec::mixed_cluster(p, 0.6);

  char buf[32];
  for (const auto& b : models::paper_benchmarks()) {
    struct Row {
      std::string name;
      Strategy homog_phi, mixed_phi;
    };
    std::vector<Row> rows;
    rows.push_back({"DataParallel", data_parallel_strategy(b.graph, p),
                    data_parallel_strategy(b.graph, p)});
    const DpResult rh = find_best_strategy(b.graph, bench::dp_options(homog));
    const DpResult rm = find_best_strategy(b.graph, bench::dp_options(mixed));
    rows.push_back({"PaSE (ours)", rh.strategy, rm.strategy});

    const Simulator sh(b.graph, homog);
    const Simulator sm(b.graph, mixed);
    bool first = true;
    for (const Row& row : rows) {
      const double th = sh.simulate(row.homog_phi).step_time_s * 1e3;
      const double tm = sm.simulate(row.mixed_phi).step_time_s * 1e3;
      std::vector<std::string> cells = {first ? b.name : "", row.name};
      std::snprintf(buf, sizeof(buf), "%.2f", th);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2f", tm);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2fx", tm / th);
      cells.push_back(buf);
      table.add_row(cells);
      first = false;
    }
    table.add_rule();
  }
  table.print();
  std::printf(
      "\nPer §V, PaSE searches with the weakest device's FLOP rate; the\n"
      "found strategies remain valid (and still beat data parallelism)\n"
      "when the slow half of the machine gates every wide layer.\n");
  return 0;
}
