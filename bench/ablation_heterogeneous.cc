// Heterogeneity ablation: what does searching with the first-class machine
// model (src/hetero) buy over the paper's homogeneous weakest-device
// assumption, on clusters that are actually heterogeneous?
//
// Two scenarios (cost/machine.h presets):
//   mixed_pod_8    8 devices, half 2080Ti-class and half 1080Ti-class
//                  FLOPS, NVLink-style intra tier + slower inter tier
//   multi_tier_16  16 uniform devices behind a 2-tier interconnect
//                  (fast 8-device islands, slow island-to-island links)
//
// For each paper benchmark and scenario, three strategies are replayed
// under the heterogeneity-aware simulator (uneven proportional shards,
// per-group bottleneck links — the cluster as it actually is):
//   dp_ms      data parallelism across all devices
//   homog_ms   PaSE searched with CostParams::for_machine — the legacy
//              homogeneous assumption (weakest device, weakest link)
//   hetero_ms  PaSE searched with hetero_cost_params — uneven shards and
//              per-group links priced during the search itself
//
// Reported per row: the three step times, the hetero/homog gain, whether
// the search actually changed the strategy, and whether the homogeneous
// assumption flipped the DataParallel-vs-PaSE ranking (naive simulation
// says one order, heterogeneous simulation says the other).
//
// Structural claims enforced here (exit 1, so check.sh fails before the
// gate runs):
//   - on the mixed pod (the acceptance scenario) hetero-aware search
//     never loses to the homogeneous assumption under heterogeneous
//     simulation, and strictly wins on at least one row with a changed
//     strategy;
//   - on every scenario, no row loses by more than 5% (the analytical
//     model and the discrete-event simulator are different models of the
//     same machine, so the homogeneous argmin can luckily edge out the
//     hetero one on a single benchmark) and the scenario's geometric-mean
//     gain stays >= 1.
//
// Output is one canonical JSON object on stdout (redirect to
// BENCH_hetero.json); the human table goes to stderr. The JSON carries a
// top-level "gated" path list for tools/bench_gate. Unlike the wall-time
// benches there is NO cpu_calib_ms here: every gated number is a
// deterministic simulated step time, so the gate compares exact
// reproducible values rather than calibration-normalized timings.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hetero/hetero.h"
#include "serve/json.h"
#include "util/table.h"

using namespace pase;
using pase::serve::Json;
using pase::serve::write_json;

namespace {

struct Scenario {
  std::string key;
  MachineSpec machine;
  bool must_dominate = false;  ///< the acceptance scenario: no losses at all
};

struct Row {
  std::string model;
  double dp_ms = 0.0;
  double homog_ms = 0.0;
  double hetero_ms = 0.0;
  bool strategy_changed = false;
  bool rank_flip = false;
};

}  // namespace

int main() {
  const std::vector<Scenario> scenarios = {
      {"mixed_pod_16", MachineSpec::mixed_pod(16), /*must_dominate=*/true},
      {"multi_tier_32", MachineSpec::multi_tier(32)},
  };

  bool ok = true;
  bool strict_win = false;
  i64 strategy_changes = 0;
  i64 rank_flips = 0;
  Json scenarios_json = Json::make_object();
  char buf[64];

  for (const Scenario& sc : scenarios) {
    const MachineSpec& m = sc.machine;
    TextTable table("Heterogeneity ablation: " + sc.key + " (" +
                    machine_signature(m) +
                    ") — step time under heterogeneous simulation (ms)");
    table.set_header({"Benchmark", "DataParallel", "PaSE homog.",
                      "PaSE hetero", "Gain", "Changed"});

    Json models_json = Json::make_object();
    double log_gain_sum = 0.0;
    for (const auto& b : models::paper_benchmarks()) {
      Row row;
      row.model = b.name;

      DpOptions homog_options = bench::dp_options(m);
      DpOptions hetero_options = homog_options;
      hetero_options.cost_params = hetero_cost_params(m);

      const Strategy dp = data_parallel_strategy(b.graph, m.num_devices);
      const DpResult homog = find_best_strategy(b.graph, homog_options);
      const DpResult hetero = find_best_strategy(b.graph, hetero_options);
      row.strategy_changed = !(homog.strategy == hetero.strategy);

      // The cluster as it actually is (uneven shards, per-group links)
      // vs the flat machine the homogeneous assumption believes in.
      const Simulator real(b.graph, m, CommModelKind::kSimple, true);
      const Simulator naive(b.graph, m, CommModelKind::kSimple, false);
      row.dp_ms = real.simulate(dp).step_time_s * 1e3;
      row.homog_ms = real.simulate(homog.strategy).step_time_s * 1e3;
      row.hetero_ms = real.simulate(hetero.strategy).step_time_s * 1e3;
      const bool naive_rank =
          naive.simulate(homog.strategy).step_time_s <
          naive.simulate(dp).step_time_s;
      const bool real_rank = row.homog_ms < row.dp_ms;
      row.rank_flip = naive_rank != real_rank;

      const double lose_band = sc.must_dominate ? 1.0 + 1e-9 : 1.05;
      if (row.hetero_ms > row.homog_ms * lose_band) {
        std::fprintf(stderr,
                     "FAIL: %s/%s: hetero-aware search lost under "
                     "heterogeneous simulation (%.4f ms > %.4f ms%s)\n",
                     sc.key.c_str(), b.name.c_str(), row.hetero_ms,
                     row.homog_ms,
                     sc.must_dominate ? "" : ", beyond the 5% band");
        ok = false;
      }
      if (sc.must_dominate && row.strategy_changed &&
          row.hetero_ms < row.homog_ms * (1.0 - 1e-6))
        strict_win = true;
      log_gain_sum += std::log(row.homog_ms / row.hetero_ms);
      strategy_changes += row.strategy_changed ? 1 : 0;
      rank_flips += row.rank_flip ? 1 : 0;

      std::vector<std::string> cells = {b.name};
      std::snprintf(buf, sizeof(buf), "%.3f", row.dp_ms);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.3f", row.homog_ms);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.3f", row.hetero_ms);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.3fx",
                    row.hetero_ms > 0 ? row.homog_ms / row.hetero_ms : 0.0);
      cells.push_back(buf);
      cells.push_back(std::string(row.strategy_changed ? "yes" : "no") +
                      (row.rank_flip ? " (rank flip)" : ""));
      table.add_row(cells);

      Json entry = Json::make_object();
      entry.object["dp_ms"] = Json::make_number(row.dp_ms);
      entry.object["homog_ms"] = Json::make_number(row.homog_ms);
      entry.object["hetero_ms"] = Json::make_number(row.hetero_ms);
      entry.object["gain"] = Json::make_number(
          row.hetero_ms > 0 ? row.homog_ms / row.hetero_ms : 0.0);
      entry.object["strategy_changed"] =
          Json::make_bool(row.strategy_changed);
      entry.object["rank_flip"] = Json::make_bool(row.rank_flip);
      models_json.object[b.name] = std::move(entry);
    }
    // TextTable prints to stdout; route this one through stderr so stdout
    // stays pure JSON for the gate.
    std::string rendered = table.to_string();
    std::fputs(rendered.c_str(), stderr);
    std::fputs("\n", stderr);
    const double geomean_gain = std::exp(
        log_gain_sum /
        static_cast<double>(models::paper_benchmarks().size()));
    if (geomean_gain < 1.0 - 1e-9) {
      std::fprintf(stderr,
                   "FAIL: %s: geometric-mean hetero/homog gain %.4fx is "
                   "below 1\n",
                   sc.key.c_str(), geomean_gain);
      ok = false;
    }
    std::fprintf(stderr, "%s geometric-mean gain: %.3fx\n\n", sc.key.c_str(),
                 geomean_gain);
    scenarios_json.object[sc.key] = std::move(models_json);
  }

  if (!strict_win) {
    std::fprintf(stderr,
                 "FAIL: hetero-aware search never strictly beat the "
                 "homogeneous assumption on the mixed pod\n");
    ok = false;
  }
  std::fprintf(stderr,
               "strategy changes: %lld of %d rows   rank flips: %lld\n",
               static_cast<long long>(strategy_changes),
               static_cast<int>(scenarios.size()) * 4,
               static_cast<long long>(rank_flips));

  // Scenario objects live at the top level: bench_gate dotted paths have
  // at most three parts (section.group.key), so the path is
  // "<scenario>.<model>.<metric>".
  Json gated = Json::make_array();
  for (const Scenario& sc : scenarios)
    for (const auto& b : models::paper_benchmarks())
      for (const char* metric : {"homog_ms", "hetero_ms"})
        gated.array.push_back(
            Json::make_string(sc.key + "." + b.name + "." + metric));

  Json report = Json::make_object();
  report.object["bench"] = Json::make_string("hetero_ablation");
  report.object["gated"] = std::move(gated);
  report.object["rank_flips"] =
      Json::make_number(static_cast<double>(rank_flips));
  for (auto& [key, value] : scenarios_json.object)
    report.object[key] = std::move(value);
  report.object["strategy_changes"] =
      Json::make_number(static_cast<double>(strategy_changes));
  std::printf("%s\n", write_json(report).c_str());
  return ok ? 0 : 1;
}
