// Ablation for paper §II device placement: the greedy locality-maximizing
// assignment vs a naive declaration-order layout, measured as the total
// producer-consumer overlap volume each realizes (higher = less data
// actually moved; the closed-form t_x assumes the greedy alignment).
#include "bench_common.h"
#include "sim/placement.h"
#include "util/table.h"

using namespace pase;

int main() {
  const i64 p = 32;
  const MachineSpec m = MachineSpec::gtx1080ti(p);

  TextTable table(
      "Ablation: greedy vs naive device placement, locality score "
      "(overlap GB; higher is better) at p = 32");
  table.set_header({"Benchmark", "Strategy", "Naive", "Greedy", "Gain"});

  char buf[32];
  auto fmt = [&](double elems) {
    std::snprintf(buf, sizeof(buf), "%.3f", elems * 4.0 / 1e9);
    return std::string(buf);
  };

  for (const auto& b : models::paper_benchmarks()) {
    const DpResult r = find_best_strategy(b.graph, bench::dp_options(m));
    struct Row {
      const char* name;
      Strategy phi;
    };
    const std::vector<Row> rows = {
        {"DataParallel", data_parallel_strategy(b.graph, p)},
        {"PaSE (ours)", r.strategy}};
    bool first = true;
    for (const Row& row : rows) {
      const double naive =
          locality_score(b.graph, row.phi, naive_placement(b.graph, row.phi));
      const double greedy = locality_score(
          b.graph, row.phi, greedy_placement(b.graph, row.phi));
      std::vector<std::string> cells = {first ? b.name : "", row.name,
                                        fmt(naive), fmt(greedy)};
      std::snprintf(buf, sizeof(buf), "%.2fx",
                    naive > 0 ? greedy / naive : 1.0);
      cells.push_back(buf);
      table.add_row(cells);
      first = false;
    }
    table.add_rule();
  }
  table.print();
  std::printf(
      "\nPaper §II: 'a simple greedy assignment that maximizes data\n"
      "locality works sufficiently well in practice' — the greedy column\n"
      "realizes the overlap the closed-form t_x credits.\n");
  return 0;
}
