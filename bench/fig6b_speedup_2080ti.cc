// Reproduces paper Fig. 6b: speedup over data parallelism on the 2080Ti
// cluster profile. 2080Ti lacks PCIe peer-to-peer access, so the machine
// balance is very low and strategy inefficiencies are amplified — the paper
// measures up to 4x there.
#include "fig6_common.h"

int main() {
  return pase::bench::run_fig6(
      "Fig. 6b: speedup over data parallelism, simulated RTX 2080 Ti "
      "cluster",
      [](pase::i64 p) { return pase::MachineSpec::rtx2080ti(p); });
}
