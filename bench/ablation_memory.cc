// Ablation for the paper's §II memory claim: minimizing the communication
// objective also reduces the per-device memory footprint, since parameters
// get sharded and communication buffers shrink.
#include "bench_common.h"
#include "sim/memory.h"
#include "util/table.h"

using namespace pase;

int main() {
  const i64 p = 32;
  const MachineSpec m = MachineSpec::gtx1080ti(p);

  TextTable table(
      "Ablation: per-device memory footprint at p = 32 (GB; params incl. "
      "grads+momentum)");
  table.set_header({"Benchmark", "Strategy", "Params", "Activations",
                    "Buffers", "Total"});

  char buf[32];
  auto fmt = [&](double bytes) {
    std::snprintf(buf, sizeof(buf), "%.3f", bytes / 1e9);
    return std::string(buf);
  };

  for (const auto& b : models::paper_benchmarks()) {
    const DpResult r = find_best_strategy(b.graph, bench::dp_options(m));
    struct Row {
      const char* name;
      Strategy phi;
    };
    const std::vector<Row> rows = {
        {"DataParallel", data_parallel_strategy(b.graph, p)},
        {"Expert", expert_strategy(b.graph, p)},
        {"PaSE (ours)", r.strategy},
    };
    bool first = true;
    for (const Row& row : rows) {
      const MemoryFootprint fp = estimate_memory(b.graph, row.phi);
      table.add_row({first ? b.name : "", row.name, fmt(fp.parameter_bytes),
                     fmt(fp.activation_bytes), fmt(fp.buffer_bytes),
                     fmt(fp.total())});
      first = false;
    }
    table.add_rule();
  }
  table.print();
  std::printf(
      "\nPaper Sec. II: the per-device footprint is tensor storage plus\n"
      "communication buffers; the communication-minimizing objective\n"
      "indirectly minimizes both.\n");
  return 0;
}
