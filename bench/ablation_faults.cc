// Ablation: fault-aware robustness. Every strategy is scored by the
// discrete-event simulator under a deterministic fault scenario
// (straggler + degraded links + transient jitter, seeded), and ranked
// twice — by healthy step time and by expected faulted step time. The
// point of the table: the healthy ranking is not robust, and searching
// on the perturbed machine (`pase_cli --fault-aware`) recovers it.
#include <algorithm>

#include "bench_common.h"
#include "fault/fault_model.h"
#include "fault/robustness.h"
#include "util/table.h"

using namespace pase;

namespace {

struct Entry {
  std::string name;
  Strategy phi;
  RobustnessReport rep;
};

// 1-based rank of entry `i` under `key`, with deterministic ties.
int rank_of(const std::vector<Entry>& entries, size_t i,
            double (*key)(const Entry&)) {
  int rank = 1;
  for (size_t j = 0; j < entries.size(); ++j)
    if (key(entries[j]) < key(entries[i]) ||
        (key(entries[j]) == key(entries[i]) && j < i))
      ++rank;
  return rank;
}

double healthy_key(const Entry& e) { return e.rep.healthy.step_time_s; }
double faulted_key(const Entry& e) { return e.rep.mean_step_time_s; }

}  // namespace

int main() {
  const i64 p = 16;
  const char* kFaults = "straggler=0:3,links=0.8:0.35,jitter=0.1";
  const u64 kSeed = 7;
  const int kScenarios = 16;

  const FaultSpecParseResult parsed = parse_fault_spec(kFaults);
  PASE_CHECK(parsed.ok);
  const FaultModel model(parsed.spec, kSeed);

  const MachineSpec healthy = MachineSpec::gtx1080ti(p);
  const MachineSpec faulted = model.perturb(healthy);

  TextTable table("Ablation: robustness under faults (p=16, spec '" +
                  std::string(kFaults) + "', seed 7) — step time (ms)");
  table.set_header({"Benchmark", "Strategy", "Healthy", "Faulted(mean)",
                    "Worst", "Slowdown", "Rank H", "Rank F"});

  int rank_changes = 0;
  char buf[32];
  for (const auto& b : models::paper_benchmarks()) {
    std::vector<Entry> entries;
    entries.push_back({"DataParallel", data_parallel_strategy(b.graph, p), {}});
    entries.push_back({"Expert", expert_strategy(b.graph, p), {}});
    const DpResult dp = find_best_strategy(b.graph, bench::dp_options(healthy));
    PASE_CHECK(dp.status == DpStatus::kOk);
    entries.push_back({"PaSE", dp.strategy, {}});
    // Fault-aware: the same search run against the perturbed machine.
    const DpResult fa = find_best_strategy(b.graph, bench::dp_options(faulted));
    PASE_CHECK(fa.status == DpStatus::kOk);
    entries.push_back({"PaSE fault-aware", fa.strategy, {}});

    for (Entry& e : entries)
      e.rep = evaluate_robustness(b.graph, healthy, e.phi, model, kScenarios);

    bool first = true;
    for (size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      const int rh = rank_of(entries, i, healthy_key);
      const int rf = rank_of(entries, i, faulted_key);
      if (rh != rf) ++rank_changes;
      std::vector<std::string> cells = {first ? b.name : "", e.name};
      std::snprintf(buf, sizeof(buf), "%.2f", e.rep.healthy.step_time_s * 1e3);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2f", e.rep.mean_step_time_s * 1e3);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2f", e.rep.worst_step_time_s * 1e3);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2fx", e.rep.slowdown());
      cells.push_back(buf);
      cells.push_back(std::to_string(rh));
      cells.push_back(std::to_string(rf));
      table.add_row(cells);
      first = false;
    }
    table.add_rule();
  }
  table.print();
  std::printf(
      "\n%d strategy rank(s) change between the healthy and faulted\n"
      "orderings. Scores are deterministic for a fixed seed: rerunning\n"
      "this binary reproduces the table bit-for-bit.\n",
      rank_changes);
  return 0;
}
