// Ablation: collective-pricing fidelity. For every zoo benchmark the DP
// search runs twice — once under the paper's `simple` ring-bytes pricing
// and once under the src/comm library's `auto` algorithm selection — and
// each found strategy (plus the data-parallel and expert baselines) is
// simulated under both pricing modes. The table flags (a) benchmarks where
// the two searches choose different strategies and (b) strategy-ranking
// flips between the two simulated orderings: the cases where the single
// collective shape the paper assumes would have picked a different winner
// than a topology-aware model does.
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

using namespace pase;

namespace {

struct Entry {
  std::string name;
  Strategy phi;
  double simple_s = 0.0;  ///< simulated step, kSimple pricing
  double auto_s = 0.0;    ///< simulated step, kAuto pricing
};

// 1-based rank of entry `i` under `key`, with deterministic ties.
int rank_of(const std::vector<Entry>& entries, size_t i,
            double (*key)(const Entry&)) {
  int rank = 1;
  for (size_t j = 0; j < entries.size(); ++j)
    if (key(entries[j]) < key(entries[i]) ||
        (key(entries[j]) == key(entries[i]) && j < i))
      ++rank;
  return rank;
}

double simple_key(const Entry& e) { return e.simple_s; }
double auto_key(const Entry& e) { return e.auto_s; }

}  // namespace

int main() {
  const i64 p = 32;  // 4 nodes x 8 devices: multi-node collectives matter
  const MachineSpec machine = MachineSpec::gtx1080ti(p);

  TextTable table(
      "Ablation: simple vs auto collective pricing (p=32, 1080Ti) — "
      "simulated step (ms)");
  table.set_header({"Benchmark", "Strategy", "Step(simple)", "Step(auto)",
                    "Rank S", "Rank A"});

  int rank_flips = 0;
  int strategy_changes = 0;
  char buf[32];
  for (const auto& b : models::paper_benchmarks()) {
    DpOptions simple_opt = bench::dp_options(machine);
    const DpResult simple_dp = find_best_strategy(b.graph, simple_opt);
    PASE_CHECK(simple_dp.status == DpStatus::kOk);

    DpOptions auto_opt = bench::dp_options(machine);
    auto_opt.cost_params =
        CostParams::for_machine(machine, CommModelKind::kAuto);
    const DpResult auto_dp = find_best_strategy(b.graph, auto_opt);
    PASE_CHECK(auto_dp.status == DpStatus::kOk);
    if (auto_dp.strategy != simple_dp.strategy) ++strategy_changes;

    std::vector<Entry> entries;
    entries.push_back(
        {"DataParallel", data_parallel_strategy(b.graph, p)});
    entries.push_back({"Expert", expert_strategy(b.graph, p)});
    entries.push_back({"PaSE (simple)", simple_dp.strategy});
    entries.push_back({auto_dp.strategy == simple_dp.strategy
                           ? "PaSE (auto, same)"
                           : "PaSE (auto)",
                       auto_dp.strategy});

    const Simulator simple_sim(b.graph, machine, CommModelKind::kSimple);
    const Simulator auto_sim(b.graph, machine, CommModelKind::kAuto);
    for (Entry& e : entries) {
      e.simple_s = simple_sim.simulate(e.phi).step_time_s;
      e.auto_s = auto_sim.simulate(e.phi).step_time_s;
    }

    bool first = true;
    for (size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      const int rs = rank_of(entries, i, simple_key);
      const int ra = rank_of(entries, i, auto_key);
      if (rs != ra) ++rank_flips;
      std::vector<std::string> cells = {first ? b.name : "", e.name};
      std::snprintf(buf, sizeof(buf), "%.2f", e.simple_s * 1e3);
      cells.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2f", e.auto_s * 1e3);
      cells.push_back(buf);
      cells.push_back(std::to_string(rs));
      cells.push_back(std::to_string(ra));
      table.add_row(cells);
      first = false;
    }
    table.add_rule();
  }
  table.print();
  std::printf(
      "\n%d benchmark(s) where the auto-priced search picks a different\n"
      "strategy than the simple-priced one, and %d strategy rank(s) that\n"
      "flip between the simple and auto simulated orderings. Both pricing\n"
      "modes are deterministic: rerunning reproduces the table bit-for-bit.\n",
      strategy_changes, rank_flips);
  return 0;
}
