// Ablation for the paper's §I motivation: "it might be impossible to train
// large models by just using data parallelism, due to memory constraints."
// A large-vocabulary RNNLM is searched under a per-device memory budget:
// data parallelism busts the budget at every device count, while PaSE's
// parameter-parallel strategies fit comfortably.
#include "bench_common.h"
#include "sim/memory.h"
#include "util/table.h"

using namespace pase;

int main() {
  // Billion-Word-scale RNNLM: 793k vocabulary, 2048 hidden.
  const Graph g = models::rnnlm(64, 40, 1024, 2048, 793471);
  const double budget = 11e9;  // a 1080Ti's 11 GB

  TextTable table(
      "Ablation: per-device memory (GB) for a 793k-vocab RNNLM vs an 11 GB "
      "device budget");
  table.set_header({"p", "DataParallel", "PaSE (uncapped)",
                    "PaSE (11 GB cap)", "Cap feasible?"});

  char buf[32];
  auto fmt = [&](double bytes) {
    std::snprintf(buf, sizeof(buf), "%.2f", bytes / 1e9);
    return std::string(buf);
  };

  for (const i64 p : bench::device_counts()) {
    const MachineSpec m = MachineSpec::gtx1080ti(p);
    std::vector<std::string> row = {std::to_string(p)};
    row.push_back(fmt(estimate_memory(g, data_parallel_strategy(g, p)).total()));

    const DpResult free = find_best_strategy(g, bench::dp_options(m));
    row.push_back(free.status == DpStatus::kOk
                      ? fmt(estimate_memory(g, free.strategy).total())
                      : "-");

    DpOptions capped = bench::dp_options(m);
    capped.config_options.filter = memory_config_filter(budget);
    const DpResult r = find_best_strategy(g, capped);
    if (r.status == DpStatus::kOk) {
      row.push_back(fmt(estimate_memory(g, r.strategy).total()));
      row.push_back("yes");
    } else {
      row.push_back("-");
      row.push_back("no");
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nData parallelism replicates the 2.4 GB embedding + 6.5 GB\n"
      "projection tables (plus gradients and optimizer state) on every\n"
      "device; the capped search excludes those configurations outright\n"
      "and still finds efficient strategies.\n");
  return 0;
}
