// Shared helpers for the table/figure-reproducing benchmark binaries.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/dp_solver.h"
#include "cost/machine.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/mcmc.h"
#include "sim/simulator.h"

namespace pase::bench {

inline const std::vector<i64>& device_counts() {
  static const std::vector<i64> p = {4, 8, 16, 32, 64};
  return p;
}

/// `num_threads` follows DpOptions: 0 = hardware concurrency (the default
/// here — benches exploit all cores; DP results are bit-identical at any
/// thread count, so this only changes wall-clock columns), 1 = sequential.
inline DpOptions dp_options(const MachineSpec& m,
                            OrderingKind ordering = OrderingKind::kGenerateSeq,
                            i64 num_threads = 0) {
  DpOptions opt;
  opt.config_options.max_devices = m.num_devices;
  opt.cost_params = CostParams::for_machine(m);
  opt.ordering = ordering;
  opt.num_threads = num_threads;
  return opt;
}

/// MCMC settings for the FlexFlow-like column, following [7, §6.2]: stop
/// when the best discovered strategy has not improved for half the search,
/// or after 250,000 iterations — the paper's exact criteria. With
/// `simulate_candidates`, every candidate is priced by the discrete-event
/// simulator (FlexFlow's actual architecture: MCMC over an execution
/// simulator), which is what makes the search orders of magnitude slower
/// than the DP in Table I.
inline McmcOptions flexflow_like_options(u64 seed) {
  McmcOptions o;
  o.max_iterations = 250000;
  o.min_iterations = 50000;  // FlexFlow's searches run long before the
                             // half-time no-improvement rule can fire
  o.seed = seed;
  return o;
}

/// Runs the FlexFlow-like MCMC from the expert initial candidate, as the
/// paper does ([7, §6.2]).
inline McmcResult run_flexflow_like(const Graph& graph, const MachineSpec& m,
                                    bool simulate_candidates = true,
                                    u64 seed = 1) {
  const DpOptions opt = dp_options(m);
  McmcOptions o = flexflow_like_options(seed);
  if (simulate_candidates) {
    auto sim = std::make_shared<Simulator>(graph, m);
    o.objective = [sim](const Strategy& phi) {
      return sim->simulate(phi).step_time_s;
    };
  } else {
    o.full_evaluation = false;  // fast analytical delta mode (Fig. 6)
    o.max_iterations = 25000;
    o.min_iterations = 2500;
  }
  return mcmc_search(graph, opt.config_options, opt.cost_params,
                     expert_strategy(graph, m.num_devices), o);
}

}  // namespace pase::bench
