// Shared helpers for the table/figure-reproducing benchmark binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/dp_solver.h"
#include "cost/machine.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/mcmc.h"
#include "sim/simulator.h"

namespace pase::bench {

inline double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times a fixed single-core *memory-bound* spin (min of `rounds`), in
/// ms: a pointer-chase over an 8 MB ring plus allocator churn. Two jobs:
/// it pulls the CPU governor to steady state before anything is measured,
/// and it prices the machine's current cache/memory-subsystem throughput
/// — the resource the measured code paths are actually bound by, so
/// shared-box contention moves this spin and the benchmark numbers
/// together. tools/bench_gate divides the gated metrics by the
/// baseline/current calibration ratio, cancelling that drift instead of
/// tripping its tolerance band. (A pure register spin does NOT work here:
/// it rides out memory contention untouched while the measured latencies
/// move 1.5x.)
inline double calibrate_cpu_ms(int rounds) {
  constexpr size_t kRing = (8u << 20) / sizeof(u32);
  std::vector<u32> ring(kRing);
  // Fixed permutation: visit order is data-dependent, defeating prefetch.
  u64 x = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < kRing; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    ring[i] = static_cast<u32>(x % kRing);
  }
  double best = 0.0;
  volatile u64 sink = 0;
  for (int r = 0; r < rounds; ++r) {
    const double t0 = now_ms();
    u32 at = static_cast<u32>(r);
    for (int i = 0; i < 2'000'000; ++i) at = ring[at % kRing];
    // Allocator churn alongside the chase: response rendering and the
    // solver's table copies live and die on the heap.
    for (int i = 0; i < 20'000; ++i) {
      std::string s(static_cast<size_t>(64 + (i % 512)), 'x');
      sink = sink + static_cast<u64>(s[static_cast<size_t>(i) % s.size()]);
    }
    sink = sink + at;
    const double ms = now_ms() - t0;
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

inline const std::vector<i64>& device_counts() {
  static const std::vector<i64> p = {4, 8, 16, 32, 64};
  return p;
}

/// `num_threads` follows DpOptions: 0 = hardware concurrency (the default
/// here — benches exploit all cores; DP results are bit-identical at any
/// thread count, so this only changes wall-clock columns), 1 = sequential.
inline DpOptions dp_options(const MachineSpec& m,
                            OrderingKind ordering = OrderingKind::kGenerateSeq,
                            i64 num_threads = 0) {
  DpOptions opt;
  opt.config_options.max_devices = m.num_devices;
  opt.cost_params = CostParams::for_machine(m);
  opt.ordering = ordering;
  opt.num_threads = num_threads;
  return opt;
}

/// MCMC settings for the FlexFlow-like column, following [7, §6.2]: stop
/// when the best discovered strategy has not improved for half the search,
/// or after 250,000 iterations — the paper's exact criteria. With
/// `simulate_candidates`, every candidate is priced by the discrete-event
/// simulator (FlexFlow's actual architecture: MCMC over an execution
/// simulator), which is what makes the search orders of magnitude slower
/// than the DP in Table I.
inline McmcOptions flexflow_like_options(u64 seed) {
  McmcOptions o;
  o.max_iterations = 250000;
  o.min_iterations = 50000;  // FlexFlow's searches run long before the
                             // half-time no-improvement rule can fire
  o.seed = seed;
  return o;
}

/// Runs the FlexFlow-like MCMC from the expert initial candidate, as the
/// paper does ([7, §6.2]).
inline McmcResult run_flexflow_like(const Graph& graph, const MachineSpec& m,
                                    bool simulate_candidates = true,
                                    u64 seed = 1) {
  const DpOptions opt = dp_options(m);
  McmcOptions o = flexflow_like_options(seed);
  if (simulate_candidates) {
    auto sim = std::make_shared<Simulator>(graph, m);
    o.objective = [sim](const Strategy& phi) {
      return sim->simulate(phi).step_time_s;
    };
  } else {
    o.full_evaluation = false;  // fast analytical delta mode (Fig. 6)
    o.max_iterations = 25000;
    o.min_iterations = 2500;
  }
  return mcmc_search(graph, opt.config_options, opt.cost_params,
                     expert_strategy(graph, m.num_devices), o);
}

}  // namespace pase::bench
