// Reproduces paper Fig. 6a: speedup over data parallelism on the 1080Ti
// cluster profile (8 GPUs/node, PCIe with P2P, InfiniBand across nodes).
// Paper's measured ceiling on this machine: up to 1.85x.
#include "fig6_common.h"

int main() {
  return pase::bench::run_fig6(
      "Fig. 6a: speedup over data parallelism, simulated GTX 1080 Ti "
      "cluster",
      [](pase::i64 p) { return pase::MachineSpec::gtx1080ti(p); });
}
