// Widened-strategy-space ablation: what do the spatial/channel split gates
// (--split-dims) and the pipeline-stage dimension (--pipeline-stages) buy
// over the paper's batch/parameter space, on workloads built to need them?
//
// Two scenarios:
//   widened_resnet64     resnet_large_p (small-batch ResNet-50) on 64x
//                        1080Ti: the batch axis carries at most 16-way
//                        parallelism, so the legacy space leans on
//                        parameter splits and their gradient all-reduces.
//                        Opening the spatial/channel gates (halo-exchange
//                        pricing, src/comm) lets the DP shard activation
//                        planes instead. Both strategies are replayed
//                        under the discrete-event simulator.
//   pipelined_tfm64      transformer_pipelined (a deep uniform stack) on
//                        the 64-device mixed cluster with auto collective
//                        pricing: the full-cluster solve pays cross-tier
//                        all-reduces, while cutting the stack into stages
//                        keeps every solve inside a tier. Compared via the
//                        pipeline step model (steady-state bottleneck plus
//                        fill/drain) against the single-stage reference.
//
// Structural claims enforced here (exit 1, so check.sh fails before the
// gate runs):
//   - the widened space never costs more than the legacy space under the
//     DP's own metric (it is a strict superset of the search space);
//   - the widened strategy strictly beats the legacy one under simulation
//     on widened_resnet64, and auto pipelining strictly beats the
//     single-stage reference on pipelined_tfm64 — the acceptance
//     criterion's ">= 1 zoo scenario" with margin;
//   - auto stage search never loses to no-pipeline (it includes it).
//
// Output is one canonical JSON object on stdout (redirect to
// BENCH_splits.json); the human table goes to stderr. Like the
// heterogeneity ablation there is NO cpu_calib_ms: every gated number is a
// deterministic DP cost, simulated step time, or analytic pipeline step,
// so the gate compares exact reproducible values.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hetero/hetero.h"
#include "pipeline/pipeline.h"
#include "serve/json.h"
#include "util/table.h"

using namespace pase;
using pase::serve::Json;
using pase::serve::write_json;

int main() {
  bool ok = true;
  char buf[64];
  Json report = Json::make_object();
  report.object["bench"] = Json::make_string("split_dims_ablation");

  // -------------------------------------------------------------------
  // widened_resnet64: legacy vs widened per-layer space, simulated.
  {
    const MachineSpec m = MachineSpec::gtx1080ti(64);
    const Graph graph = *models::zoo_graph("resnet_large_p");

    DpOptions legacy_options = bench::dp_options(m);
    DpOptions widened_options = legacy_options;
    const auto widened = parse_split_dims("all");
    widened_options.config_options.split_dims = *widened;

    const DpResult legacy = find_best_strategy(graph, legacy_options);
    const DpResult wide = find_best_strategy(graph, widened_options);

    const Simulator sim(graph, m);
    const double legacy_ms = sim.simulate(legacy.strategy).step_time_s * 1e3;
    const double wide_ms = sim.simulate(wide.strategy).step_time_s * 1e3;

    if (wide.best_cost > legacy.best_cost) {
      std::fprintf(stderr,
                   "FAIL: widened_resnet64: the widened space cost more "
                   "under the DP's own metric (%.6g > %.6g) — it is a "
                   "superset of the legacy space, this cannot happen\n",
                   wide.best_cost, legacy.best_cost);
      ok = false;
    }
    if (wide_ms >= legacy_ms) {
      std::fprintf(stderr,
                   "FAIL: widened_resnet64: the widened strategy did not "
                   "strictly beat the legacy one under simulation "
                   "(%.4f ms >= %.4f ms)\n",
                   wide_ms, legacy_ms);
      ok = false;
    }

    TextTable table(
        "Split-dims ablation: resnet_large_p on 64x 1080Ti "
        "(batch 16 — the batch axis is exhausted at p=16)");
    table.set_header({"Space", "DP cost (FLOP-eq)", "Simulated step (ms)"});
    std::vector<std::string> cells = {"batch,param (paper)"};
    std::snprintf(buf, sizeof(buf), "%.6g", legacy.best_cost);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", legacy_ms);
    cells.push_back(buf);
    table.add_row(cells);
    cells = {"all (+spatial/channel)"};
    std::snprintf(buf, sizeof(buf), "%.6g", wide.best_cost);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", wide_ms);
    cells.push_back(buf);
    table.add_row(cells);
    const std::string rendered = table.to_string();
    std::fputs(rendered.c_str(), stderr);
    std::fprintf(stderr,
                 "widened_resnet64: DP cost gain %.3fx, simulated gain "
                 "%.3fx\n\n",
                 wide.best_cost > 0 ? legacy.best_cost / wide.best_cost : 0.0,
                 wide_ms > 0 ? legacy_ms / wide_ms : 0.0);

    Json entry = Json::make_object();
    entry.object["legacy_cost"] = Json::make_number(legacy.best_cost);
    entry.object["widened_cost"] = Json::make_number(wide.best_cost);
    entry.object["legacy_ms"] = Json::make_number(legacy_ms);
    entry.object["widened_ms"] = Json::make_number(wide_ms);
    Json models_json = Json::make_object();
    models_json.object["resnet_large_p"] = std::move(entry);
    report.object["widened_resnet64"] = std::move(models_json);
  }

  // -------------------------------------------------------------------
  // pipelined_tfm64: auto stage search vs the single-stage reference.
  {
    const MachineSpec m = MachineSpec::mixed_cluster(64);
    const Graph graph = *models::zoo_graph("transformer_pipelined");

    DpOptions solver = bench::dp_options(m);
    solver.cost_params = hetero_cost_params(m, CommModelKind::kAuto);
    PipelineSearchOptions popts;
    popts.stages = 0;  // auto: every power-of-two count dividing p, plus 1
    const PipelinedSearchResult pres =
        find_best_pipelined_strategy(graph, m, solver, popts);

    const double step_ms = pres.step_seconds * 1e3;
    const double no_pipeline_ms = pres.no_pipeline_seconds * 1e3;
    if (step_ms > no_pipeline_ms) {
      std::fprintf(stderr,
                   "FAIL: pipelined_tfm64: auto stage search lost to the "
                   "single-stage reference it includes (%.4f ms > %.4f "
                   "ms)\n",
                   step_ms, no_pipeline_ms);
      ok = false;
    }
    if (pres.stages < 2 || step_ms >= no_pipeline_ms) {
      std::fprintf(stderr,
                   "FAIL: pipelined_tfm64: pipelining did not strictly beat "
                   "the single-stage reference (%lld stages, %.4f ms vs "
                   "%.4f ms)\n",
                   static_cast<long long>(pres.stages), step_ms,
                   no_pipeline_ms);
      ok = false;
    }

    TextTable table(
        "Pipeline ablation: transformer_pipelined on the 64-device mixed "
        "cluster (auto collective pricing)");
    table.set_header({"Configuration", "Stages", "Step (ms)"});
    std::vector<std::string> cells = {"no pipeline (pure PaSE)", "1"};
    std::snprintf(buf, sizeof(buf), "%.3f", no_pipeline_ms);
    cells.push_back(buf);
    table.add_row(cells);
    cells = {"--pipeline-stages auto"};
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(pres.stages));
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", step_ms);
    cells.push_back(buf);
    table.add_row(cells);
    const std::string rendered = table.to_string();
    std::fputs(rendered.c_str(), stderr);
    std::fprintf(stderr,
                 "pipelined_tfm64: %lld stages x %lld devices, pipeline "
                 "gain %.3fx\n\n",
                 static_cast<long long>(pres.stages),
                 static_cast<long long>(pres.devices_per_stage),
                 step_ms > 0 ? no_pipeline_ms / step_ms : 0.0);

    Json entry = Json::make_object();
    entry.object["step_ms"] = Json::make_number(step_ms);
    entry.object["no_pipeline_ms"] = Json::make_number(no_pipeline_ms);
    entry.object["stages"] =
        Json::make_number(static_cast<double>(pres.stages));
    Json models_json = Json::make_object();
    models_json.object["transformer_pipelined"] = std::move(entry);
    report.object["pipelined_tfm64"] = std::move(models_json);
  }

  // Scenario objects live at the top level: bench_gate dotted paths have
  // at most three parts, so the path is "<scenario>.<model>.<metric>".
  Json gated = Json::make_array();
  for (const char* metric :
       {"legacy_cost", "widened_cost", "legacy_ms", "widened_ms"})
    gated.array.push_back(Json::make_string(
        std::string("widened_resnet64.resnet_large_p.") + metric));
  for (const char* metric : {"step_ms", "no_pipeline_ms", "stages"})
    gated.array.push_back(Json::make_string(
        std::string("pipelined_tfm64.transformer_pipelined.") + metric));
  report.object["gated"] = std::move(gated);

  std::printf("%s\n", write_json(report).c_str());
  return ok ? 0 : 1;
}
