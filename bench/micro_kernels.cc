// google-benchmark micro-benchmarks for the solver's kernels: vertex
// ordering, dependent-set computation, configuration enumeration, cost
// evaluation and the end-to-end DP solve.
#include <benchmark/benchmark.h>

#include "core/dep_sets.h"
#include "core/dp_solver.h"
#include "cost/cost_model.h"
#include "models/models.h"
#include "ops/ops.h"
#include "search/baselines.h"
#include "sim/simulator.h"

namespace pase {
namespace {

const Graph& inception() {
  static const Graph g = models::inception_v3();
  return g;
}

const Graph& transformer() {
  static const Graph g = models::transformer();
  return g;
}

void BM_GenerateSeq_Inception(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(generate_seq(inception()));
}
BENCHMARK(BM_GenerateSeq_Inception);

void BM_GenerateSeq_Transformer(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(generate_seq(transformer()));
}
BENCHMARK(BM_GenerateSeq_Transformer);

void BM_ComputeVertexSets_Inception(benchmark::State& state) {
  const Ordering o = generate_seq(inception());
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_all_vertex_sets(inception(), o));
}
BENCHMARK(BM_ComputeVertexSets_Inception);

void BM_EnumerateConfigs(benchmark::State& state) {
  const Node conv = ops::conv2d("c", 128, 256, 17, 17, 192, 3, 3);
  ConfigOptions opts;
  opts.max_devices = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(enumerate_node_configs(conv, opts));
}
BENCHMARK(BM_EnumerateConfigs)->Arg(8)->Arg(64);

void BM_LayerCost_Conv(benchmark::State& state) {
  const Node conv = ops::conv2d("c", 128, 256, 17, 17, 192, 3, 3);
  const Config cfg{8, 2, 1, 1, 2, 1, 1};
  CostParams p;
  p.r = 500.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(layer_cost(conv, cfg, p));
}
BENCHMARK(BM_LayerCost_Conv);

void BM_TransferBytes(benchmark::State& state) {
  Graph g;
  g.add_node(ops::fully_connected("a", 128, 4096, 4096));
  g.add_node(ops::fully_connected("b", 128, 4096, 4096));
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  const Config cu{4, 4, 2}, cv{2, 8, 2};
  CostParams p;
  for (auto _ : state)
    benchmark::DoNotOptimize(transfer_bytes(g.edge(0), cu, cv, p));
}
BENCHMARK(BM_TransferBytes);

void BM_FullCostEvaluation_Inception(benchmark::State& state) {
  CostParams p = CostParams::for_machine(MachineSpec::gtx1080ti(8));
  const CostModel cm(inception(), p);
  const Strategy phi = data_parallel_strategy(inception(), 8);
  for (auto _ : state) benchmark::DoNotOptimize(cm.total_cost(phi));
}
BENCHMARK(BM_FullCostEvaluation_Inception);

void BM_DeltaCostEvaluation_Inception(benchmark::State& state) {
  CostParams p = CostParams::for_machine(MachineSpec::gtx1080ti(8));
  const CostModel cm(inception(), p);
  const Strategy phi = data_parallel_strategy(inception(), 8);
  ConfigOptions copts;
  copts.max_devices = 8;
  const auto configs = enumerate_node_configs(inception().node(10), copts);
  for (auto _ : state)
    benchmark::DoNotOptimize(cm.delta_cost(phi, 10, configs.back()));
}
BENCHMARK(BM_DeltaCostEvaluation_Inception);

void BM_FindBestStrategy(benchmark::State& state) {
  const auto benchmarks = models::paper_benchmarks();
  const Graph& g = benchmarks[static_cast<size_t>(state.range(0))].graph;
  DpOptions opt;
  opt.config_options.max_devices = state.range(1);
  opt.cost_params =
      CostParams::for_machine(MachineSpec::gtx1080ti(state.range(1)));
  for (auto _ : state)
    benchmark::DoNotOptimize(find_best_strategy(g, opt));
  state.SetLabel(benchmarks[static_cast<size_t>(state.range(0))].name +
                 " p=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_FindBestStrategy)
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SimulateStep_Inception(benchmark::State& state) {
  const Simulator sim(inception(), MachineSpec::gtx1080ti(8));
  const Strategy phi = data_parallel_strategy(inception(), 8);
  for (auto _ : state) benchmark::DoNotOptimize(sim.simulate(phi));
}
BENCHMARK(BM_SimulateStep_Inception);

}  // namespace
}  // namespace pase

BENCHMARK_MAIN();
