// Shared driver for the Fig. 6 speedup benches: simulated training-step
// speedup over data parallelism for Expert, FlexFlow-like and PaSE
// strategies on a given machine family, p = 4..64.
#pragma once

#include <functional>

#include "bench_common.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace pase::bench {

inline int run_fig6(const char* title,
                    const std::function<MachineSpec(i64)>& machine) {
  const auto benchmarks = models::paper_benchmarks();
  TextTable table(title);
  std::vector<std::string> header = {"Benchmark", "Strategy"};
  for (const i64 p : device_counts()) header.push_back("p=" + std::to_string(p));
  table.set_header(header);

  char buf[32];
  for (const auto& b : benchmarks) {
    std::vector<std::string> expert_row = {b.name, "Expert"};
    std::vector<std::string> mcmc_row = {"", "FlexFlow-like"};
    std::vector<std::string> ours_row = {"", "PaSE (ours)"};
    for (const i64 p : device_counts()) {
      const MachineSpec m = machine(p);
      const Simulator sim(b.graph, m);
      const Strategy dp = data_parallel_strategy(b.graph, p);
      auto fmt = [&](const Strategy& phi) {
        std::snprintf(buf, sizeof(buf), "%.2fx", sim.speedup(phi, dp));
        return std::string(buf);
      };
      expert_row.push_back(fmt(expert_strategy(b.graph, p)));
      // Delta-mode evaluation: same search quality as the full-evaluation
      // FlexFlow profile (Table I measures the time difference), far
      // faster to run here.
      mcmc_row.push_back(
          fmt(run_flexflow_like(b.graph, m, /*simulate_candidates=*/false)
                  .best_strategy));
      const DpResult r = find_best_strategy(b.graph, dp_options(m));
      ours_row.push_back(r.status == DpStatus::kOk ? fmt(r.strategy)
                                                   : std::string("OOM"));
    }
    table.add_row(expert_row);
    table.add_row(mcmc_row);
    table.add_row(ours_row);
    table.add_rule();
  }
  table.print();
  std::printf(
      "\nSpeedup over data parallelism (1.00x) on the simulated cluster;\n"
      "see EXPERIMENTS.md for the comparison against the paper's measured\n"
      "GPU numbers.\n");
  return 0;
}

}  // namespace pase::bench
