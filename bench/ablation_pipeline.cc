// Ablation for the paper's §VI composition with PipeDream: split the graph
// into pipeline stages, parallelize each stage with PaSE, and compare the
// estimated step time against pure (single-stage) PaSE.
//
// Runs through find_best_pipelined_strategy — the same searched-pipeline
// path --pipeline-stages and the serve protocol use — in auto mode, which
// evaluates every power-of-two stage count dividing the device count
// (including 1, the pure-PaSE reference).
#include "bench_common.h"
#include "pipeline/pipeline.h"
#include "util/table.h"

using namespace pase;

int main() {
  const MachineSpec m = MachineSpec::gtx1080ti(32);

  TextTable table(
      "Ablation: PipeDream-style stages + PaSE per stage vs pure PaSE "
      "(p = 32, 1080Ti, 8 micro-batches)");
  table.set_header({"Benchmark", "Best stages", "Devices/stage",
                    "Bottleneck (ms)", "Pipelined step (ms)",
                    "Pure PaSE step (ms)", "Pipeline gain"});

  auto benchmarks = models::paper_benchmarks();
  benchmarks.push_back({"VGG16", models::vgg16()});
  benchmarks.push_back({"ResNet50", models::resnet50()});

  char buf[32];
  for (const auto& b : benchmarks) {
    DpOptions solver;
    solver.cost_params = CostParams::for_machine(m);
    PipelineSearchOptions popts;
    popts.stages = 0;  // auto: stage counts 1, 2, 4, 8
    const PipelinedSearchResult r =
        find_best_pipelined_strategy(b.graph, m, solver, popts);
    std::vector<std::string> row = {b.name, std::to_string(r.stages),
                                    std::to_string(r.devices_per_stage)};
    std::snprintf(buf, sizeof(buf), "%.2f", r.bottleneck_seconds * 1e3);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", r.step_seconds * 1e3);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", r.no_pipeline_seconds * 1e3);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2fx",
                  r.no_pipeline_seconds / r.step_seconds);
    row.push_back(buf);
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nPaper §VI: PaSE ignores inter-layer pipeline parallelism, and\n"
      "proposes stacking it with a PipeDream-style stage partition — each\n"
      "stage's subgraph re-parallelized by FindBestStrategy. Gains <= 1.0x\n"
      "mean the stage search (correctly) fell back to a single stage:\n"
      "consistent with the paper's observation that most DNNs lack\n"
      "sufficient inherent pipeline parallelism.\n");
  return 0;
}
