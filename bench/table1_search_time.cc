// Reproduces paper Table I: time taken by breadth-first-ordered DP (BF),
// the FlexFlow-like MCMC search, and PaSE (Ours) to find parallelization
// strategies for the four benchmarks at p = 4..64.
//
// Expected shape (the claim under test): BF matches Ours on the path graphs
// (AlexNet, RNNLM) but goes OOM on InceptionV3 and Transformer; the MCMC
// search is orders of magnitude slower than Ours; Ours grows with p but
// stays interactive.
//
// The "Ours/1t" vs "Ours/Nt" columns time the identical DP sequentially and
// with the threaded fan-out (see --threads below). The chosen strategy and
// cost are bit-identical by construction; this binary verifies that on
// every cell and aborts loudly on any mismatch.
//
// Usage: table1_search_time [--threads N]   (default 4; 0 = hardware
// concurrency). Speedups only materialize with as many cores as threads.
#include <cstring>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace pase;

int main(int argc, char** argv) {
  i64 threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      return 2;
    }
  }
  threads = ThreadPool::resolve(threads);

  const auto benchmarks = models::paper_benchmarks();

  TextTable table(
      "Table I: time to find parallelization strategies "
      "(mins:secs.msecs; OOM = table guard tripped; Nt = " +
      std::to_string(threads) + " threads)");
  std::vector<std::string> header = {"p"};
  for (const auto& b : benchmarks) {
    header.push_back(b.name + "/BF");
    header.push_back(b.name + "/FlexFlow-like");
    header.push_back(b.name + "/Ours-1t");
    header.push_back(b.name + "/Ours-" + std::to_string(threads) + "t");
  }
  table.set_header(header);

  // Per-benchmark totals across p for the thread-speedup summary.
  std::vector<double> total_1t(benchmarks.size(), 0.0);
  std::vector<double> total_nt(benchmarks.size(), 0.0);
  bool deterministic = true;

  // One registry per benchmark, attached to the threaded "Ours" runs and
  // accumulated across p — the phase-breakdown summary below reads the same
  // dp.phase.* gauges and dp.* counters pase_cli --metrics-out dumps.
  std::vector<MetricsRegistry> metrics(benchmarks.size());

  for (const i64 p : bench::device_counts()) {
    const MachineSpec m = MachineSpec::gtx1080ti(p);
    std::vector<std::string> row = {std::to_string(p)};
    for (size_t bi = 0; bi < benchmarks.size(); ++bi) {
      const auto& b = benchmarks[bi];
      // BF ordering (the paper's naive recurrence): a modest table guard
      // keeps the OOM outcome fast instead of actually exhausting RAM.
      auto bf_opt = bench::dp_options(m, OrderingKind::kBreadthFirst);
      bf_opt.max_table_entries = u64{1} << 20;
      const DpResult bf = find_best_strategy(b.graph, bf_opt);
      row.push_back(bf.status == DpStatus::kOk
                        ? format_mins_secs(bf.elapsed_seconds)
                        : "OOM");

      const McmcResult mc = bench::run_flexflow_like(b.graph, m);
      row.push_back(format_mins_secs(mc.elapsed_seconds));

      const DpResult seq = find_best_strategy(
          b.graph, bench::dp_options(m, OrderingKind::kGenerateSeq, 1));
      row.push_back(seq.status == DpStatus::kOk
                        ? format_mins_secs(seq.elapsed_seconds)
                        : "OOM");

      auto par_opt = bench::dp_options(m, OrderingKind::kGenerateSeq, threads);
      par_opt.metrics = &metrics[bi];
      const DpResult par = find_best_strategy(b.graph, par_opt);
      row.push_back(par.status == DpStatus::kOk
                        ? format_mins_secs(par.elapsed_seconds)
                        : "OOM");

      total_1t[bi] += seq.elapsed_seconds;
      total_nt[bi] += par.elapsed_seconds;
      // Bit-identical determinism contract: same status, cost and strategy
      // at every thread count.
      if (seq.status != par.status || seq.best_cost != par.best_cost ||
          seq.strategy != par.strategy) {
        deterministic = false;
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at p=%lld differs between "
                     "1 and %lld threads\n",
                     b.name.c_str(), static_cast<long long>(p),
                     static_cast<long long>(threads));
      }
    }
    table.add_row(row);
  }
  table.print();

  std::printf("\nThread speedup (sum over p, 1t / %lldt):\n",
              static_cast<long long>(threads));
  for (size_t bi = 0; bi < benchmarks.size(); ++bi)
    std::printf("  %-14s %6.2fx  (%s -> %s)\n", benchmarks[bi].name.c_str(),
                total_nt[bi] > 0 ? total_1t[bi] / total_nt[bi] : 1.0,
                format_mins_secs(total_1t[bi]).c_str(),
                format_mins_secs(total_nt[bi]).c_str());
  std::printf("determinism check: %s (strategy, cost and status %s across "
              "thread counts)\n",
              deterministic ? "PASS" : "FAIL",
              deterministic ? "bit-identical" : "DIFFER");

  std::printf("\nPhase breakdown (Ours-%lldt, summed over p):\n",
              static_cast<long long>(threads));
  static constexpr const char* kPhases[] = {
      "ordering", "configs", "dep_sets", "table_fill", "back_substitution"};
  for (size_t bi = 0; bi < benchmarks.size(); ++bi) {
    const MetricsRegistry& reg = metrics[bi];
    std::printf("  %-14s", benchmarks[bi].name.c_str());
    const double elapsed = reg.gauge("dp.elapsed_seconds");
    for (const char* phase : kPhases) {
      const double s =
          reg.gauge(std::string("dp.phase.") + phase + "_seconds");
      std::printf(" %s=%.0f%%", phase,
                  elapsed > 0 ? 100.0 * s / elapsed : 0.0);
    }
    const u64 hits = reg.counter("dp.cost_cache.hits");
    const u64 misses = reg.counter("dp.cost_cache.misses");
    std::printf("  (substrategies %llu, cache hit rate %.0f%%)\n",
                static_cast<unsigned long long>(
                    reg.counter("dp.substrategies")),
                hits + misses
                    ? 100.0 * static_cast<double>(hits) /
                          static_cast<double>(hits + misses)
                    : 0.0);
  }

  std::printf(
      "\nNotes: the FlexFlow-like column runs the paper's MCMC (expert\n"
      "initial candidate, stop after no improvement for half the search or\n"
      "25k iterations) with full per-candidate evaluation, mirroring\n"
      "FlexFlow's simulator-based costing.\n");
  return deterministic ? 0 : 1;
}
