// Reproduces paper Table I: time taken by breadth-first-ordered DP (BF),
// the FlexFlow-like MCMC search, and PaSE (Ours) to find parallelization
// strategies for the four benchmarks at p = 4..64.
//
// Expected shape (the claim under test): BF matches Ours on the path graphs
// (AlexNet, RNNLM) but goes OOM on InceptionV3 and Transformer; the MCMC
// search is orders of magnitude slower than Ours; Ours grows with p but
// stays interactive.
#include "bench_common.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pase;

int main() {
  const auto benchmarks = models::paper_benchmarks();

  TextTable table(
      "Table I: time to find parallelization strategies "
      "(mins:secs.msecs; OOM = table guard tripped)");
  std::vector<std::string> header = {"p"};
  for (const auto& b : benchmarks) {
    header.push_back(b.name + "/BF");
    header.push_back(b.name + "/FlexFlow-like");
    header.push_back(b.name + "/Ours");
  }
  table.set_header(header);

  for (const i64 p : bench::device_counts()) {
    const MachineSpec m = MachineSpec::gtx1080ti(p);
    std::vector<std::string> row = {std::to_string(p)};
    for (const auto& b : benchmarks) {
      // BF ordering (the paper's naive recurrence): a modest table guard
      // keeps the OOM outcome fast instead of actually exhausting RAM.
      auto bf_opt = bench::dp_options(m, OrderingKind::kBreadthFirst);
      bf_opt.max_table_entries = u64{1} << 20;
      const DpResult bf = find_best_strategy(b.graph, bf_opt);
      row.push_back(bf.status == DpStatus::kOk
                        ? format_mins_secs(bf.elapsed_seconds)
                        : "OOM");

      const McmcResult mc = bench::run_flexflow_like(b.graph, m);
      row.push_back(format_mins_secs(mc.elapsed_seconds));

      const DpResult ours = find_best_strategy(b.graph, bench::dp_options(m));
      row.push_back(ours.status == DpStatus::kOk
                        ? format_mins_secs(ours.elapsed_seconds)
                        : "OOM");
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nNotes: the FlexFlow-like column runs the paper's MCMC (expert\n"
      "initial candidate, stop after no improvement for half the search or\n"
      "25k iterations) with full per-candidate evaluation, mirroring\n"
      "FlexFlow's simulator-based costing.\n");
  return 0;
}
