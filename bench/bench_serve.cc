// Serving-path benchmark: drives ServeCore directly (no sockets) and
// reports the numbers the ROADMAP's BENCH_serve.json trajectory tracks —
// per-model cold-solve vs cached-hit latency (the warm-cache payoff) and a
// concurrent mixed-zoo burst with qps, p50/p99 latency and cache hit rate.
//
// Output is one canonical JSON object on stdout (redirect to
// BENCH_serve.json); human-readable numbers go to stderr. The structural
// claim checked by tools/check.sh: the cached-hit p50 must be at least 10x
// faster than the cold solve for every model measured.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "serve/server.h"

using namespace pase;
using namespace pase::serve;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string solve_line(const std::string& zoo, i64 devices) {
  return "{\"op\":\"solve\",\"zoo\":\"" + zoo +
         "\",\"devices\":" + std::to_string(devices) + "}";
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(q * static_cast<double>(v.size() - 1))];
}

}  // namespace

int main() {
  ServeOptions options;
  options.workers = 4;
  options.default_deadline_ms = 60000;
  options.watchdog_grace_ms = 60000;

  const std::vector<std::string> zoo = {"mlp", "alexnet", "vgg16",
                                        "mobilenet_v1"};
  const i64 p = 8;

  Json models_json = Json::make_object();
  std::fprintf(stderr, "%-14s %12s %12s %10s\n", "model", "cold(ms)",
               "cached(ms)", "speedup");
  {
    ServeCore core(options);
    for (const std::string& m : zoo) {
      const std::string line = solve_line(m, p);
      const double t0 = now_ms();
      core.handle_line(line);
      const double cold_ms = now_ms() - t0;
      // Median of repeated hits: every one is verified against the stored
      // check cost, so this prices the verify-on-hit path, not a blind
      // lookup.
      std::vector<double> hits;
      for (int i = 0; i < 32; ++i) {
        const double h0 = now_ms();
        core.handle_line(line);
        hits.push_back(now_ms() - h0);
      }
      const double cached_ms = percentile(hits, 0.5);
      Json entry = Json::make_object();
      entry.object["cold_ms"] = Json::make_number(cold_ms);
      entry.object["cached_p50_ms"] = Json::make_number(cached_ms);
      entry.object["speedup"] =
          Json::make_number(cached_ms > 0 ? cold_ms / cached_ms : 0.0);
      std::fprintf(stderr, "%-14s %12.3f %12.3f %9.1fx\n", m.c_str(),
                   cold_ms, cached_ms,
                   cached_ms > 0 ? cold_ms / cached_ms : 0.0);
      models_json.object[m] = std::move(entry);
    }
  }

  // Mixed-zoo burst on a fresh core: 4 client threads, 200 requests.
  ServeCore core(options);
  const i64 kRequests = 200;
  const i64 kClients = 4;
  std::vector<double> latencies(static_cast<size_t>(kRequests), 0.0);
  std::atomic<i64> next{0};
  const double burst0 = now_ms();
  std::vector<std::thread> clients;
  for (i64 c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const i64 k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= kRequests) return;
        const std::string line =
            solve_line(zoo[static_cast<size_t>(k) % zoo.size()], p);
        const double t0 = now_ms();
        core.handle_line(line);
        latencies[static_cast<size_t>(k)] = now_ms() - t0;
      }
    });
  }
  for (auto& t : clients) t.join();
  const double burst_s = (now_ms() - burst0) / 1e3;

  const double hits =
      static_cast<double>(core.metrics().counter("serve.cache.hits"));
  const double misses =
      static_cast<double>(core.metrics().counter("serve.cache.misses"));

  Json burst = Json::make_object();
  burst.object["requests"] = Json::make_number(static_cast<double>(kRequests));
  burst.object["clients"] = Json::make_number(static_cast<double>(kClients));
  burst.object["qps"] =
      Json::make_number(static_cast<double>(kRequests) / burst_s);
  burst.object["p50_ms"] = Json::make_number(percentile(latencies, 0.5));
  burst.object["p99_ms"] = Json::make_number(percentile(latencies, 0.99));
  burst.object["cache_hit_rate"] =
      Json::make_number(hits + misses > 0 ? hits / (hits + misses) : 0.0);
  std::fprintf(stderr,
               "burst: %lld requests / %lld clients: %.0f qps, "
               "p50=%.3fms p99=%.3fms hit-rate=%.2f\n",
               static_cast<long long>(kRequests),
               static_cast<long long>(kClients),
               static_cast<double>(kRequests) / burst_s,
               percentile(latencies, 0.5), percentile(latencies, 0.99),
               hits / (hits + misses));

  Json report = Json::make_object();
  report.object["bench"] = Json::make_string("serve");
  report.object["devices"] = Json::make_number(static_cast<double>(p));
  report.object["models"] = std::move(models_json);
  report.object["burst"] = std::move(burst);
  std::printf("%s\n", write_json(report).c_str());
  return 0;
}
