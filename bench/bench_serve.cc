// Serving-path benchmark: drives ServeCore directly (no sockets) and
// reports the numbers the ROADMAP's BENCH_serve.json trajectory tracks —
// per-model cold-solve vs cached-hit latency (the warm-cache payoff) and a
// concurrent mixed-zoo burst with qps, p50/p99 latency and cache hit rate.
//
// Output is one canonical JSON object on stdout (redirect to
// BENCH_serve.json); human-readable numbers go to stderr. The structural
// claim checked by tools/check.sh: the cached-hit p50 must be at least 10x
// faster than the cold solve for every model measured.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/json.h"
#include "serve/server.h"

using namespace pase;
using namespace pase::serve;
using pase::bench::calibrate_cpu_ms;
using pase::bench::now_ms;

namespace {

std::string solve_line(const std::string& zoo, i64 devices) {
  return "{\"op\":\"solve\",\"zoo\":\"" + zoo +
         "\",\"devices\":" + std::to_string(devices) + "}";
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(q * static_cast<double>(v.size() - 1))];
}

}  // namespace

int main() {
  const double calib_ms = calibrate_cpu_ms(3);
  std::fprintf(stderr, "cpu calibration: %.3f ms (fixed integer spin)\n",
               calib_ms);

  ServeOptions options;
  options.workers = 4;
  options.default_deadline_ms = 60000;
  options.watchdog_grace_ms = 60000;

  const std::vector<std::string> zoo = {"mlp", "alexnet", "vgg16",
                                        "mobilenet_v1"};
  const i64 p = 8;

  Json models_json = Json::make_object();
  std::fprintf(stderr, "%-14s %12s %12s %10s\n", "model", "cold(ms)",
               "cached(ms)", "speedup");
  {
    ServeCore core(options);
    for (const std::string& m : zoo) {
      const std::string line = solve_line(m, p);
      const double t0 = now_ms();
      core.handle_line(line);
      const double cold_ms = now_ms() - t0;
      // Repeated verified hits (every one re-checks the stored cost, so
      // this prices the verify-on-hit path, not a blind lookup), measured
      // as min-of-3-windows: three independent windows of 64 timed hits
      // (16 warm-ups each), taking the minimum of the per-window p50s and
      // p99s. The check.sh perf gate compares these sub-100us numbers
      // across runs with a 25% tolerance, so a transient contention spike
      // must hit all three windows before it can move the reported value.
      double cached_ms = 0.0, cached_p99_ms = 0.0;
      for (int window = 0; window < 3; ++window) {
        for (int i = 0; i < 16; ++i) core.handle_line(line);
        std::vector<double> hits;
        for (int i = 0; i < 64; ++i) {
          const double h0 = now_ms();
          core.handle_line(line);
          hits.push_back(now_ms() - h0);
        }
        const double p50 = percentile(hits, 0.5);
        const double p99 = percentile(hits, 0.99);
        if (window == 0 || p50 < cached_ms) cached_ms = p50;
        if (window == 0 || p99 < cached_p99_ms) cached_p99_ms = p99;
      }
      Json entry = Json::make_object();
      entry.object["cold_ms"] = Json::make_number(cold_ms);
      entry.object["cached_p50_ms"] = Json::make_number(cached_ms);
      entry.object["cached_p99_ms"] = Json::make_number(cached_p99_ms);
      entry.object["speedup"] =
          Json::make_number(cached_ms > 0 ? cold_ms / cached_ms : 0.0);
      std::fprintf(stderr, "%-14s %12.3f %12.3f %9.1fx\n", m.c_str(),
                   cold_ms, cached_ms,
                   cached_ms > 0 ? cold_ms / cached_ms : 0.0);
      models_json.object[m] = std::move(entry);
    }
  }

  // Mixed-zoo burst on a fresh core: 4 client threads, 200 requests.
  ServeCore core(options);
  const i64 kRequests = 200;
  const i64 kClients = 4;
  std::vector<double> latencies(static_cast<size_t>(kRequests), 0.0);
  std::atomic<i64> next{0};
  const double burst0 = now_ms();
  std::vector<std::thread> clients;
  for (i64 c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const i64 k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= kRequests) return;
        const std::string line =
            solve_line(zoo[static_cast<size_t>(k) % zoo.size()], p);
        const double t0 = now_ms();
        core.handle_line(line);
        latencies[static_cast<size_t>(k)] = now_ms() - t0;
      }
    });
  }
  for (auto& t : clients) t.join();
  const double burst_s = (now_ms() - burst0) / 1e3;

  const double hits =
      static_cast<double>(core.metrics().counter("serve.cache.hits"));
  const double misses =
      static_cast<double>(core.metrics().counter("serve.cache.misses"));

  // Server-side rolling SLO view of the same burst: total latency over
  // every solve, queue wait and solve time over admitted flights only —
  // the queue/solve split is what audits shed decisions (DESIGN.md §11).
  const ServeCore::SloSnapshot slo = core.slo_snapshot();

  Json burst = Json::make_object();
  burst.object["requests"] = Json::make_number(static_cast<double>(kRequests));
  burst.object["clients"] = Json::make_number(static_cast<double>(kClients));
  burst.object["qps"] =
      Json::make_number(static_cast<double>(kRequests) / burst_s);
  burst.object["p50_ms"] = Json::make_number(percentile(latencies, 0.5));
  burst.object["p99_ms"] = Json::make_number(percentile(latencies, 0.99));
  burst.object["cache_hit_rate"] =
      Json::make_number(hits + misses > 0 ? hits / (hits + misses) : 0.0);
  Json slo_json = Json::make_object();
  slo_json.object["window"] =
      Json::make_number(static_cast<double>(slo.window));
  slo_json.object["total_p50_ms"] = Json::make_number(slo.total.p50);
  slo_json.object["total_p99_ms"] = Json::make_number(slo.total.p99);
  slo_json.object["queue_wait_p50_ms"] =
      Json::make_number(slo.queue_wait.p50);
  slo_json.object["queue_wait_p99_ms"] =
      Json::make_number(slo.queue_wait.p99);
  slo_json.object["solve_p50_ms"] = Json::make_number(slo.solve.p50);
  slo_json.object["admitted"] =
      Json::make_number(static_cast<double>(slo.queue_wait.count));
  burst.object["slo"] = std::move(slo_json);
  std::fprintf(stderr,
               "burst: %lld requests / %lld clients: %.0f qps, "
               "p50=%.3fms p99=%.3fms hit-rate=%.2f\n",
               static_cast<long long>(kRequests),
               static_cast<long long>(kClients),
               static_cast<double>(kRequests) / burst_s,
               percentile(latencies, 0.5), percentile(latencies, 0.99),
               hits / (hits + misses));
  std::fprintf(stderr,
               "  server slo (window %lld): total p50=%.3fms p99=%.3fms | "
               "queue p50=%.3fms p99=%.3fms | solve p50=%.3fms "
               "(%lld admitted)\n",
               static_cast<long long>(slo.window), slo.total.p50,
               slo.total.p99, slo.queue_wait.p50, slo.queue_wait.p99,
               slo.solve.p50, static_cast<long long>(slo.queue_wait.count));

  Json report = Json::make_object();
  report.object["bench"] = Json::make_string("serve");
  report.object["cpu_calib_ms"] = Json::make_number(calib_ms);
  report.object["devices"] = Json::make_number(static_cast<double>(p));
  report.object["models"] = std::move(models_json);
  report.object["burst"] = std::move(burst);
  std::printf("%s\n", write_json(report).c_str());
  return 0;
}
