#include <gtest/gtest.h>

#include "ops/ops.h"

namespace pase {
namespace {

TEST(Ops, Conv2DIterationSpace) {
  const Node n = ops::conv2d("c", 128, 3, 55, 55, 96, 11, 11);
  EXPECT_EQ(n.space.names(), "bchwnrs");
  EXPECT_EQ(n.space.volume(), 128LL * 3 * 55 * 55 * 96 * 11 * 11);
  EXPECT_EQ(n.kind, OpKind::kConv2D);
}

TEST(Ops, Conv2DFlops) {
  const Node n = ops::conv2d("c", 2, 4, 8, 8, 16, 3, 3);
  // 2 FLOPs per MAC over b*c*h*w*n*r*s points.
  EXPECT_DOUBLE_EQ(n.fwd_flops(), 2.0 * 2 * 4 * 8 * 8 * 16 * 3 * 3);
}

TEST(Ops, Conv2DParamsAndReductions) {
  const Node n = ops::conv2d("c", 2, 4, 8, 8, 16, 3, 3);
  ASSERT_EQ(n.params.size(), 2u);
  EXPECT_EQ(n.params[0].volume, 4 * 16 * 3 * 3);  // weights
  EXPECT_EQ(n.params[1].volume, 16);              // bias
  EXPECT_EQ(n.reduction_dims, (std::vector<i32>{1, 5, 6}));
  EXPECT_EQ(n.output.volume, 2 * 16 * 8 * 8);
}

TEST(Ops, Conv2DHalos) {
  const Node n = ops::conv2d("c", 2, 4, 8, 8, 16, 5, 3);
  ASSERT_EQ(n.halos.size(), 2u);
  EXPECT_EQ(n.halos[0].dim, 2);
  EXPECT_EQ(n.halos[0].width, 2);  // (5-1)/2
  EXPECT_EQ(n.halos[1].dim, 3);
  EXPECT_EQ(n.halos[1].width, 1);  // (3-1)/2
}

TEST(Ops, OneByOneConvHasNoHalo) {
  EXPECT_TRUE(ops::conv2d("c", 2, 4, 8, 8, 16, 1, 1).halos.empty());
}

TEST(Ops, PoolHasNoParams) {
  const Node n = ops::pool("p", 2, 4, 8, 8, 3, 3);
  EXPECT_TRUE(n.params.empty());
  // The window taps are reduction dims (splitting them leaves partial
  // window sums), but they are builder-locked: only the channel split gate
  // (--split-dims channel) can open them, so the legacy space never sees
  // the partial-sum all-reduce.
  EXPECT_EQ(n.reduction_dims, (std::vector<i32>{4, 5}));
  EXPECT_FALSE(n.space.dim(4).splittable);
  EXPECT_FALSE(n.space.dim(5).splittable);
  EXPECT_EQ(n.space.names(), "bchwrs");
}

TEST(Ops, FullyConnected) {
  const Node n = ops::fully_connected("f", 128, 4096, 9216);
  EXPECT_EQ(n.space.names(), "bnc");
  EXPECT_DOUBLE_EQ(n.fwd_flops(), 2.0 * 128 * 4096 * 9216);
  EXPECT_EQ(n.params[0].volume, 4096LL * 9216);
  EXPECT_EQ(n.reduction_dims, (std::vector<i32>{2}));
  EXPECT_EQ(n.output.volume, 128 * 4096);
}

TEST(Ops, SoftmaxReducesOverClasses) {
  const Node n = ops::softmax("s", 128, 1000);
  EXPECT_EQ(n.space.names(), "bn");
  EXPECT_EQ(n.reduction_dims, (std::vector<i32>{1}));
  EXPECT_EQ(n.output.volume, 128);  // per-row normalizers
}

TEST(Ops, SoftmaxSeqSequenceNotSplittable) {
  const Node n = ops::softmax_seq("s", 64, 40, 32768);
  EXPECT_EQ(n.space.names(), "bsv");
  EXPECT_FALSE(n.space.dim(1).splittable);
}

TEST(Ops, EmbeddingMovesBsdElements) {
  const Node n = ops::embedding("e", 64, 40, 1024, 32768);
  EXPECT_EQ(n.space.names(), "bsdv");
  // Total FLOPs (copy cost) must be independent of the vocab size.
  EXPECT_NEAR(n.fwd_flops(), 64.0 * 40 * 1024, 1e-3);
  EXPECT_EQ(n.params[0].volume, 32768LL * 1024);
  EXPECT_EQ(n.reduction_dims, (std::vector<i32>{3}));
}

TEST(Ops, LstmFiveDimensionalSpace) {
  // Paper §IV-A: layer, batch, sequence, embed, hidden — all splittable so
  // configurations can exploit intra-layer pipeline parallelism.
  const Node n = ops::lstm("l", 2, 64, 40, 1024, 2048);
  EXPECT_EQ(n.space.names(), "lbsde");
  for (i64 d = 0; d < n.space.rank(); ++d)
    EXPECT_TRUE(n.space.dim(d).splittable);
  EXPECT_EQ(n.params[0].volume, 2LL * 4 * (1024 * 2048 + 2048 * 2048));
}

TEST(Ops, LstmFlopsMatchGateGemms) {
  const i64 l = 2, b = 4, s = 8, d = 16, e = 32;
  const Node n = ops::lstm("l", l, b, s, d, e);
  const double want = 2.0 * 4 * (static_cast<double>(l) * b * s * d * e +
                                 static_cast<double>(l) * b * s * e * e);
  EXPECT_NEAR(n.fwd_flops(), want, want * 1e-9);
}

TEST(Ops, AttentionSpaceAndParams) {
  const Node n = ops::attention("a", 64, 128, 8, 64, 64, 128);
  EXPECT_EQ(n.space.names(), "bshck");
  EXPECT_FALSE(n.space.dim(1).splittable);  // s
  EXPECT_FALSE(n.space.dim(3).splittable);  // c
  EXPECT_TRUE(n.space.dim(2).splittable);   // heads
  EXPECT_EQ(n.params[0].volume, 4LL * 512 * 512);  // Wq,Wk,Wv,Wo
}

TEST(Ops, AttentionFlopsScale) {
  // Projections dominate: ~8*b*s*D^2 plus 4*b*s*s_kv*D.
  const i64 b = 2, s = 16, h = 4, c = 8, k = 8;
  const Node n = ops::attention("a", b, s, h, c, k, s);
  const double D = h * c;
  const double want = 8.0 * b * s * D * D + 4.0 * b * s * s * D;
  EXPECT_NEAR(n.fwd_flops(), want, want * 1e-9);
}

TEST(Ops, FeedForward) {
  const Node n = ops::feed_forward("f", 64, 128, 512, 2048);
  EXPECT_EQ(n.space.names(), "bsde");
  EXPECT_DOUBLE_EQ(n.fwd_flops(), 4.0 * 64 * 128 * 512 * 2048);
  EXPECT_EQ(n.params[0].volume, 2LL * 512 * 2048);
  EXPECT_EQ(n.reduction_dims, (std::vector<i32>{2, 3}));
}

TEST(Ops, Projection) {
  const Node n = ops::projection("p", 64, 40, 32768, 2048);
  EXPECT_EQ(n.space.names(), "bsvd");
  EXPECT_EQ(n.kind, OpKind::kFullyConnected);
  EXPECT_EQ(n.params[0].volume, 32768LL * 2048);
  EXPECT_EQ(n.reduction_dims, (std::vector<i32>{3}));
}

TEST(Ops, LayerNormAndBatchNorm) {
  const Node ln = ops::layer_norm("ln", 64, 128, 512);
  EXPECT_EQ(ln.space.names(), "bsd");
  EXPECT_EQ(ln.params[0].volume, 2 * 512);
  const Node bn = ops::batch_norm("bn", 32, 64, 8, 8);
  EXPECT_EQ(bn.space.names(), "bchw");
  EXPECT_EQ(bn.reduction_dims, (std::vector<i32>{0, 2, 3}));
}

TEST(Ops, ConcatIsFree) {
  const Node n = ops::concat("cc", 32, 256, 35, 35);
  EXPECT_DOUBLE_EQ(n.fwd_flops(), 0.0);
  EXPECT_TRUE(n.params.empty());
}

TEST(Ops, ElementwiseVariants) {
  EXPECT_EQ(ops::elementwise("e", 2, 3, 4, 5).space.names(), "bchw");
  EXPECT_EQ(ops::elementwise_seq("e", 2, 3, 4).space.names(), "bsd");
  EXPECT_EQ(ops::input("i", 2, 3, 4, 5).kind, OpKind::kInput);
}

TEST(Ops, ImagePointwiseSpatialDimsNotSplittable) {
  for (const Node& n :
       {ops::batch_norm("b", 2, 3, 4, 5), ops::concat("c", 2, 3, 4, 5),
        ops::elementwise("e", 2, 3, 4, 5), ops::input("i", 2, 3, 4, 5)}) {
    EXPECT_FALSE(n.space.dim(2).splittable) << n.name;
    EXPECT_FALSE(n.space.dim(3).splittable) << n.name;
    EXPECT_TRUE(n.space.dim(0).splittable) << n.name;
    EXPECT_TRUE(n.space.dim(1).splittable) << n.name;
  }
}

}  // namespace
}  // namespace pase
