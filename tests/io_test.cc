#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "io/strategy_io.h"
#include "models/models.h"
#include "search/baselines.h"

namespace pase {
namespace {

TEST(StrategyIo, RoundTripDataParallel) {
  const Graph g = models::alexnet();
  const Strategy phi = data_parallel_strategy(g, 8);
  const ReadResult r = read_strategy(g, write_strategy(g, phi));
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.strategy.size(), phi.size());
  for (size_t i = 0; i < phi.size(); ++i) EXPECT_EQ(r.strategy[i], phi[i]);
}

TEST(StrategyIo, RoundTripSolverOutputForAllBenchmarks) {
  for (const auto& bench : models::paper_benchmarks()) {
    DpOptions opt;
    opt.config_options.max_devices = 8;
    opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(8));
    const DpResult dp = find_best_strategy(bench.graph, opt);
    ASSERT_EQ(dp.status, DpStatus::kOk);
    const ReadResult r =
        read_strategy(bench.graph, write_strategy(bench.graph, dp.strategy));
    ASSERT_TRUE(r.ok) << bench.name << ": " << r.error;
    for (size_t i = 0; i < dp.strategy.size(); ++i)
      EXPECT_EQ(r.strategy[i], dp.strategy[i]) << bench.name;
  }
}

TEST(StrategyIo, FormatIsStable) {
  const Graph g = models::mlp(8, {16, 4});
  const Strategy phi = {Config{8, 1, 1}, Config{2, 4}};
  EXPECT_EQ(write_strategy(g, phi),
            "pase-strategy v1\n"
            "node FC1 dims bnc config 8,1,1\n"
            "node Softmax dims bn config 2,4\n");
}

TEST(StrategyIo, IgnoresCommentsAndBlankLines) {
  const Graph g = models::mlp(8, {16, 4});
  const ReadResult r = read_strategy(g,
                                     "pase-strategy v1\n"
                                     "# a comment\n"
                                     "\n"
                                     "node FC1 dims bnc config 8,1,1\n"
                                     "node Softmax dims bn config 2,4\n");
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(StrategyIo, RejectsMissingHeader) {
  const Graph g = models::mlp(8, {16, 4});
  EXPECT_FALSE(read_strategy(g, "node FC1 dims bnc config 1,1,1\n").ok);
}

TEST(StrategyIo, RejectsUnknownNode) {
  const Graph g = models::mlp(8, {16, 4});
  const ReadResult r = read_strategy(g,
                                     "pase-strategy v1\n"
                                     "node Nope dims bnc config 1,1,1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown node"), std::string::npos);
}

TEST(StrategyIo, RejectsDimSignatureMismatch) {
  const Graph g = models::mlp(8, {16, 4});
  const ReadResult r = read_strategy(g,
                                     "pase-strategy v1\n"
                                     "node FC1 dims xyz config 1,1,1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dim signature mismatch"), std::string::npos);
}

TEST(StrategyIo, RejectsRankMismatch) {
  const Graph g = models::mlp(8, {16, 4});
  const ReadResult r = read_strategy(g,
                                     "pase-strategy v1\n"
                                     "node FC1 dims bnc config 1,1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("rank mismatch"), std::string::npos);
}

TEST(StrategyIo, RejectsMissingNode) {
  const Graph g = models::mlp(8, {16, 4});
  const ReadResult r = read_strategy(g,
                                     "pase-strategy v1\n"
                                     "node FC1 dims bnc config 1,1,1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing record"), std::string::npos);
}

TEST(StrategyIo, RejectsDuplicateRecord) {
  const Graph g = models::mlp(8, {16, 4});
  const ReadResult r = read_strategy(g,
                                     "pase-strategy v1\n"
                                     "node FC1 dims bnc config 1,1,1\n"
                                     "node FC1 dims bnc config 2,1,1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(StrategyIo, RejectsBadFactors) {
  const Graph g = models::mlp(8, {16, 4});
  for (const char* cfg : {"0,1,1", "x,1,1", "-2,1,1", "1,1,1,1,1,1,1,1,1"}) {
    const ReadResult r = read_strategy(
        g, std::string("pase-strategy v1\nnode FC1 dims bnc config ") + cfg +
               "\nnode Softmax dims bn config 1,1\n");
    EXPECT_FALSE(r.ok) << cfg;
  }
}

TEST(StrategyIo, RejectsEmptyInput) {
  const Graph g = models::mlp(8, {16, 4});
  EXPECT_FALSE(read_strategy(g, "").ok);
}

}  // namespace
}  // namespace pase
