#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace pase {
namespace {

TEST(ThreadPool, ResolveZeroMeansHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1);
  EXPECT_EQ(ThreadPool::resolve(1), 1);
  EXPECT_EQ(ThreadPool::resolve(7), 7);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(pool.wait(fut), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(fut), std::runtime_error);
}

TEST(ThreadPool, ManySubmissionsAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futures) pool.wait(f);
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  // A pool task that submits a subtask and waits for it must not deadlock,
  // even when every worker is busy (1-thread pool = worst case).
  for (const i64 threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    auto outer = pool.submit([&pool] {
      auto inner = pool.submit([] { return 10; });
      auto inner2 = pool.submit([] { return 32; });
      return pool.wait(inner) + pool.wait(inner2);
    });
    EXPECT_EQ(pool.wait(outer), 42) << "threads=" << threads;
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr i64 kN = 10000;
  std::vector<int> touched(kN, 0);
  pool.parallel_for(0, kN, 64, [&](i64 b0, i64 b1) {
    for (i64 i = b0; i < b1; ++i) ++touched[static_cast<size_t>(i)];
  });
  for (i64 i = 0; i < kN; ++i)
    ASSERT_EQ(touched[static_cast<size_t>(i)], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(2);
  int runs = 0;
  pool.parallel_for(5, 5, 10, [&](i64, i64) { ++runs; });
  EXPECT_EQ(runs, 0);
  std::atomic<i64> sum{0};
  pool.parallel_for(3, 4, 100, [&](i64 b0, i64 b1) {
    for (i64 i = b0; i < b1; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, ParallelForPropagatesLowestChunkException) {
  ThreadPool pool(4);
  // Chunks of 10 over [0, 1000): indices 510 and 110 fail; the exception
  // from the lower chunk (index 110, chunk 11) must win deterministically.
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      pool.parallel_for(0, 1000, 10, [&](i64 b0, i64 b1) {
        for (i64 i = b0; i < b1; ++i) {
          if (i == 510) throw std::runtime_error("chunk 51");
          if (i == 110) throw std::runtime_error("chunk 11");
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 11");
    }
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<i64> total{0};
  pool.parallel_for(0, 8, 1, [&](i64 b0, i64 b1) {
    for (i64 i = b0; i < b1; ++i)
      pool.parallel_for(0, 10, 2, [&](i64 c0, i64 c1) {
        total.fetch_add(c1 - c0);
      });
  });
  EXPECT_EQ(total.load(), 80);
}

}  // namespace
}  // namespace pase
