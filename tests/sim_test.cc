#include <gtest/gtest.h>

#include <cmath>

#include "core/dp_solver.h"
#include "models/models.h"
#include "search/baselines.h"
#include "sim/memory.h"
#include "sim/simulator.h"

namespace pase {
namespace {

Strategy serial_strategy(const Graph& g) {
  Strategy phi;
  for (const Node& n : g.nodes()) phi.push_back(Config::ones(n.space.rank()));
  return phi;
}

TEST(Simulator, StepTimeIsPositiveAndFinite) {
  const Graph g = models::alexnet();
  const Simulator sim(g, MachineSpec::gtx1080ti(8));
  const SimResult r = sim.simulate(data_parallel_strategy(g, 8));
  EXPECT_GT(r.step_time_s, 0.0);
  EXPECT_TRUE(std::isfinite(r.step_time_s));
  EXPECT_GT(r.compute_time_s, 0.0);
  EXPECT_GT(r.steps_per_second(), 0.0);
}

TEST(Simulator, SpeedupOfSelfIsOne) {
  const Graph g = models::rnnlm();
  const Simulator sim(g, MachineSpec::gtx1080ti(8));
  const Strategy dp = data_parallel_strategy(g, 8);
  EXPECT_DOUBLE_EQ(sim.speedup(dp, dp), 1.0);
}

TEST(Simulator, DataParallelBeatsSerial) {
  const Graph g = models::inception_v3();
  const Simulator sim(g, MachineSpec::gtx1080ti(8));
  EXPECT_LT(sim.simulate(data_parallel_strategy(g, 8)).step_time_s,
            sim.simulate(serial_strategy(g)).step_time_s);
}

TEST(Simulator, StepTimeShrinksWithDevicesForComputeBoundModel) {
  const Graph g = models::inception_v3();
  double prev = Simulator(g, MachineSpec::gtx1080ti(2))
                    .simulate(data_parallel_strategy(g, 2))
                    .step_time_s;
  for (i64 p : {4LL, 8LL}) {
    const double t = Simulator(g, MachineSpec::gtx1080ti(p))
                         .simulate(data_parallel_strategy(g, p))
                         .step_time_s;
    EXPECT_LT(t, prev) << "p=" << p;
    prev = t;
  }
}

TEST(Simulator, LowBalanceMachineIsSlowerForSameStrategy) {
  // 2080Ti has a higher compute peak but far less bandwidth; communication-
  // heavy data parallelism must be slower there (paper §IV-B).
  const Graph g = models::alexnet();
  const Strategy dp = data_parallel_strategy(g, 8);
  EXPECT_GT(Simulator(g, MachineSpec::rtx2080ti(8)).simulate(dp).step_time_s,
            Simulator(g, MachineSpec::gtx1080ti(8)).simulate(dp).step_time_s);
}

TEST(Simulator, StepsPerSecondGuardsZeroStepTime) {
  // Regression: a default (empty) SimResult used to return inf from a
  // division by zero; the guarded accessor reports 0 steps/s instead.
  const SimResult empty;
  EXPECT_EQ(empty.steps_per_second(), 0.0);
  SimResult r;
  r.step_time_s = 0.5;
  EXPECT_DOUBLE_EQ(r.steps_per_second(), 2.0);
}

TEST(Simulator, DeterministicAcrossCalls) {
  const Graph g = models::transformer();
  const Simulator sim(g, MachineSpec::gtx1080ti(8));
  const Strategy dp = data_parallel_strategy(g, 8);
  EXPECT_DOUBLE_EQ(sim.simulate(dp).step_time_s,
                   sim.simulate(dp).step_time_s);
}

class Fig6InvariantSweep
    : public ::testing::TestWithParam<std::tuple<int, i64>> {};

TEST_P(Fig6InvariantSweep, FoundStrategyAtLeastMatchesDataParallelism) {
  // The paper's headline claim: PaSE strategies outperform data parallelism
  // in all cases (within simulator noise).
  const auto benchmarks = models::paper_benchmarks();
  const auto& bench =
      benchmarks[static_cast<size_t>(std::get<0>(GetParam()))];
  const i64 p = std::get<1>(GetParam());
  for (const MachineSpec& m :
       {MachineSpec::gtx1080ti(p), MachineSpec::rtx2080ti(p)}) {
    DpOptions opt;
    opt.config_options.max_devices = p;
    opt.cost_params = CostParams::for_machine(m);
    const DpResult r = find_best_strategy(bench.graph, opt);
    ASSERT_EQ(r.status, DpStatus::kOk);
    const Simulator sim(bench.graph, m);
    // The solver optimizes the analytical Eq. (1); the simulator adds
    // topology and overlap effects the model abstracts away, so allow a few
    // percent of model mismatch at small p (the paper's claim is about
    // measured wins, which Fig. 6 benches reproduce at the trend level).
    EXPECT_GE(sim.speedup(r.strategy,
                          data_parallel_strategy(bench.graph, p)),
              0.97)
        << bench.name << " p=" << p << " " << m.name;
  }
}

INSTANTIATE_TEST_SUITE_P(ModelsTimesP, Fig6InvariantSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values<i64>(4, 8,
                                                                   16)));

TEST(Memory, ComponentsArePositive) {
  const Graph g = models::alexnet();
  const MemoryFootprint fp =
      estimate_memory(g, data_parallel_strategy(g, 8));
  EXPECT_GT(fp.parameter_bytes, 0.0);
  EXPECT_GT(fp.activation_bytes, 0.0);
  EXPECT_GE(fp.buffer_bytes, 0.0);
  EXPECT_DOUBLE_EQ(fp.total(), fp.parameter_bytes + fp.activation_bytes +
                                   fp.buffer_bytes);
}

TEST(Memory, DataParallelReplicatesAllParameters) {
  const Graph g = models::alexnet();
  i64 params = 0;
  for (const Node& n : g.nodes()) params += n.param_volume();
  MemoryOptions mo;
  const MemoryFootprint fp =
      estimate_memory(g, data_parallel_strategy(g, 8), mo);
  EXPECT_NEAR(fp.parameter_bytes,
              static_cast<double>(params) * 4.0 * mo.parameter_state_copies,
              1.0);
}

TEST(Memory, ParameterSplitShrinksFootprint) {
  const Graph g = models::alexnet();
  const MemoryFootprint dp = estimate_memory(g, data_parallel_strategy(g, 8));
  const MemoryFootprint owt = estimate_memory(g, owt_strategy(g, 8));
  EXPECT_LT(owt.parameter_bytes, dp.parameter_bytes);
}

TEST(Memory, FoundStrategiesUseLessMemoryThanDataParallelism) {
  // Paper §II: minimizing communication also indirectly minimizes the
  // per-device memory footprint.
  for (const auto& bench : models::paper_benchmarks()) {
    DpOptions opt;
    opt.config_options.max_devices = 16;
    opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(16));
    const DpResult r = find_best_strategy(bench.graph, opt);
    ASSERT_EQ(r.status, DpStatus::kOk);
    EXPECT_LE(estimate_memory(bench.graph, r.strategy).total(),
              estimate_memory(bench.graph,
                              data_parallel_strategy(bench.graph, 16))
                      .total() *
                  1.05)
        << bench.name;
  }
}

TEST(Memory, ActivationsScaleWithBatchSplit) {
  const Graph g = models::alexnet();
  const MemoryFootprint serial = estimate_memory(g, serial_strategy(g));
  const MemoryFootprint dp = estimate_memory(g, data_parallel_strategy(g, 8));
  EXPECT_LT(dp.activation_bytes, serial.activation_bytes);
}


TEST(Trace, RecordsEveryLayerInTopologicalOrder) {
  const Graph g = models::alexnet();
  const Simulator sim(g, MachineSpec::gtx1080ti(8));
  SimTrace trace;
  const SimResult r = sim.simulate(data_parallel_strategy(g, 8), &trace);
  ASSERT_EQ(static_cast<i64>(trace.events.size()), g.num_nodes());
  double prev_start = 0.0;
  double compute = 0.0;
  for (const TraceEvent& e : trace.events) {
    EXPECT_GE(e.start_s, prev_start);  // path graph: strictly ordered
    prev_start = e.start_s;
    EXPECT_EQ(e.degree, 8);
    compute += e.compute_s;
  }
  EXPECT_NEAR(compute, r.compute_time_s, 1e-12);
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  const Graph g = models::mlp(64, {128, 64});
  const Simulator sim(g, MachineSpec::gtx1080ti(4));
  SimTrace trace;
  sim.simulate(data_parallel_strategy(g, 4), &trace);
  const std::string json = to_chrome_trace_json(trace);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("FC1"), std::string::npos);
  // Balanced brackets/braces.
  i64 braces = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
  }
  EXPECT_EQ(braces, 0);
}

}  // namespace
}  // namespace pase
