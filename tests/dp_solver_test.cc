#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "core/strategy.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/brute_force.h"
#include "test_util.h"

namespace pase {
namespace {

DpOptions options_for(i64 p, OrderingKind ord = OrderingKind::kGenerateSeq) {
  DpOptions opt;
  opt.config_options.max_devices = p;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(p));
  opt.ordering = ord;
  return opt;
}

// ---- Theorem 1 end-to-end: the DP optimum equals the brute-force optimum.

struct OptimalityCase {
  i64 nodes;
  i64 extra_edges;
  u64 seed;
  i64 p;
};

class OptimalitySweep : public ::testing::TestWithParam<OptimalityCase> {};

TEST_P(OptimalitySweep, DpMatchesBruteForce) {
  const auto& c = GetParam();
  const Graph g = testing::random_graph(c.nodes, c.extra_edges, c.seed);
  const DpOptions opt = options_for(c.p);
  const DpResult dp = find_best_strategy(g, opt);
  ASSERT_EQ(dp.status, DpStatus::kOk);
  const auto bf =
      brute_force_search(g, opt.config_options, opt.cost_params);
  ASSERT_TRUE(bf.has_value());
  EXPECT_NEAR(dp.best_cost, bf->best_cost, 1e-6 * bf->best_cost);
  // The extracted strategy achieves the reported cost under Eq. (1).
  const CostModel cm(g, opt.cost_params);
  EXPECT_NEAR(cm.total_cost(dp.strategy), dp.best_cost,
              1e-6 * dp.best_cost);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, OptimalitySweep,
    ::testing::Values(OptimalityCase{3, 1, 1, 4}, OptimalityCase{4, 2, 2, 4},
                      OptimalityCase{5, 2, 3, 4}, OptimalityCase{5, 3, 4, 2},
                      OptimalityCase{6, 2, 5, 2}, OptimalityCase{6, 4, 6, 2},
                      OptimalityCase{4, 0, 7, 8}, OptimalityCase{5, 1, 8, 4},
                      OptimalityCase{6, 0, 9, 4},
                      OptimalityCase{7, 3, 10, 2}));

TEST(DpSolver, MatchesBruteForceOnFig2ToyGraph) {
  const Graph g = testing::fig2_toy_graph();
  const DpOptions opt = options_for(2);  // 4^9 strategies: exhaustible
  const DpResult dp = find_best_strategy(g, opt);
  const auto bf =
      brute_force_search(g, opt.config_options, opt.cost_params);
  ASSERT_TRUE(bf.has_value());
  EXPECT_NEAR(dp.best_cost, bf->best_cost, 1e-6 * bf->best_cost);
}

TEST(DpSolver, MatchesBruteForceOnMlp) {
  const Graph g = models::mlp(16, {64, 64, 32, 32});
  const DpOptions opt = options_for(4);
  const DpResult dp = find_best_strategy(g, opt);
  const auto bf =
      brute_force_search(g, opt.config_options, opt.cost_params);
  ASSERT_TRUE(bf.has_value());
  EXPECT_NEAR(dp.best_cost, bf->best_cost, 1e-6 * bf->best_cost);
}

// ---- Ordering invariance: recurrence (4)'s optimum is the same for any
// ordering (Theorem 1 holds for every sequence V).

class OrderingInvarianceSweep : public ::testing::TestWithParam<u64> {};

TEST_P(OrderingInvarianceSweep, BothOrderingsAgree) {
  const Graph g = testing::random_graph(8, 3, GetParam());
  const DpResult gs =
      find_best_strategy(g, options_for(4, OrderingKind::kGenerateSeq));
  const DpResult bf =
      find_best_strategy(g, options_for(4, OrderingKind::kBreadthFirst));
  ASSERT_EQ(gs.status, DpStatus::kOk);
  ASSERT_EQ(bf.status, DpStatus::kOk);
  EXPECT_NEAR(gs.best_cost, bf.best_cost, 1e-6 * gs.best_cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingInvarianceSweep,
                         ::testing::Range<u64>(1, 9));

TEST(DpSolver, OrderingsAgreeOnAlexNet) {
  const Graph g = models::alexnet();
  const double a =
      find_best_strategy(g, options_for(8, OrderingKind::kGenerateSeq))
          .best_cost;
  const double b =
      find_best_strategy(g, options_for(8, OrderingKind::kBreadthFirst))
          .best_cost;
  EXPECT_NEAR(a, b, 1e-6 * a);
}

// ---- Strategy quality and validity.

class BenchmarkSweep
    : public ::testing::TestWithParam<std::tuple<int, i64>> {};

TEST_P(BenchmarkSweep, StrategyValidAndBeatsBaselines) {
  const auto benchmarks = models::paper_benchmarks();
  const auto& bench = benchmarks[static_cast<size_t>(
      std::get<0>(GetParam()))];
  const i64 p = std::get<1>(GetParam());
  const DpOptions opt = options_for(p);
  const DpResult dp = find_best_strategy(bench.graph, opt);
  ASSERT_EQ(dp.status, DpStatus::kOk) << bench.name;
  EXPECT_TRUE(strategy_valid(bench.graph, dp.strategy, opt.config_options))
      << bench.name;

  const CostModel cm(bench.graph, opt.cost_params);
  EXPECT_NEAR(cm.total_cost(dp.strategy), dp.best_cost, 1e-6 * dp.best_cost);
  // The optimum can be no worse than any strategy in the space — in
  // particular data parallelism and the expert strategies (paper Fig. 6).
  const double eps = 1e-9;
  EXPECT_LE(dp.best_cost,
            cm.total_cost(data_parallel_strategy(bench.graph, p)) *
                (1 + eps));
  EXPECT_LE(dp.best_cost,
            cm.total_cost(expert_strategy(bench.graph, p)) * (1 + eps));
}

INSTANTIATE_TEST_SUITE_P(ModelsTimesP, BenchmarkSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values<i64>(4, 8,
                                                                   16)));

TEST(DpSolver, Deterministic) {
  const Graph g = models::transformer();
  const DpResult a = find_best_strategy(g, options_for(8));
  const DpResult b = find_best_strategy(g, options_for(8));
  EXPECT_EQ(a.best_cost, b.best_cost);
  ASSERT_EQ(a.strategy.size(), b.strategy.size());
  for (size_t i = 0; i < a.strategy.size(); ++i)
    EXPECT_EQ(a.strategy[i], b.strategy[i]);
}

TEST(DpSolver, SingleDeviceFindsSerialStrategy) {
  const Graph g = models::alexnet();
  const DpResult dp = find_best_strategy(g, options_for(1));
  ASSERT_EQ(dp.status, DpStatus::kOk);
  for (const Config& c : dp.strategy) EXPECT_EQ(c.degree(), 1);
}

TEST(DpSolver, SingleNodeGraph) {
  Graph g;
  g.add_node(ops::fully_connected("only", 64, 64, 64));
  const DpResult dp = find_best_strategy(g, options_for(8));
  ASSERT_EQ(dp.status, DpStatus::kOk);
  EXPECT_GT(dp.best_cost, 0.0);
  EXPECT_GT(dp.strategy[0].degree(), 1);  // splitting must pay off here
}

// ---- OOM guard (Table I's BF column).

TEST(DpSolver, BreadthFirstOomsOnInception) {
  const Graph g = models::inception_v3();
  const DpResult r =
      find_best_strategy(g, options_for(8, OrderingKind::kBreadthFirst));
  EXPECT_EQ(r.status, DpStatus::kOutOfMemory);
}

TEST(DpSolver, BreadthFirstOomsOnTransformer) {
  const Graph g = models::transformer();
  auto opt = options_for(8, OrderingKind::kBreadthFirst);
  opt.max_table_entries = 1 << 16;  // keep the failing run short
  const DpResult r = find_best_strategy(g, opt);
  EXPECT_EQ(r.status, DpStatus::kOutOfMemory);
}

TEST(DpSolver, GenerateSeqSucceedsWhereBreadthFirstOoms) {
  const Graph g = models::inception_v3();
  EXPECT_EQ(find_best_strategy(g, options_for(8)).status, DpStatus::kOk);
}

TEST(DpSolver, TinyGuardTripsEvenWithGenerateSeq) {
  const Graph g = models::inception_v3();
  auto opt = options_for(8);
  opt.max_combinations = 10;
  EXPECT_EQ(find_best_strategy(g, opt).status, DpStatus::kOutOfMemory);
}

TEST(DpSolver, GuardTripReportsReason) {
  const Graph g = models::inception_v3();
  auto opt = options_for(8);
  opt.max_combinations = 10;
  const DpResult r = find_best_strategy(g, opt);
  EXPECT_EQ(r.status, DpStatus::kOutOfMemory);
  EXPECT_FALSE(r.guard_reason.empty());
}

// ---- Graceful degradation: beam-search fallback on guard trips.

TEST(DpSolver, FallbackProducesValidStrategyOnDenseGraph) {
  // A dense random graph plus a tiny table guard forces the kOutOfMemory
  // path; with the fallback enabled the solver must degrade, not die.
  const Graph g = testing::random_graph(10, 20, 11);
  DpOptions opt = options_for(8);
  opt.max_table_entries = 4;  // trips at the first multi-node dependent set
  opt.degraded_fallback = true;
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kDegraded);
  EXPECT_FALSE(r.guard_reason.empty());
  EXPECT_TRUE(strategy_valid(g, r.strategy, opt.config_options));
  // The reported cost is the real Eq. (1) evaluation of the strategy.
  const CostModel cm(g, opt.cost_params);
  EXPECT_NEAR(cm.total_cost(r.strategy), r.best_cost, 1e-9 * r.best_cost);
}

TEST(DpSolver, FallbackWithinTenPercentOfBruteForce) {
  // Small reference graphs where the true optimum is computable: the
  // degraded answer must land within 10% of it.
  for (u64 seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const Graph g = testing::random_graph(6, 6, seed);
    DpOptions opt = options_for(4);
    opt.max_combinations = 10;  // force the guard on every graph
    opt.degraded_fallback = true;
    const DpResult r = find_best_strategy(g, opt);
    ASSERT_EQ(r.status, DpStatus::kDegraded) << "seed " << seed;
    EXPECT_TRUE(strategy_valid(g, r.strategy, opt.config_options));
    const auto bf = brute_force_search(g, opt.config_options, opt.cost_params);
    ASSERT_TRUE(bf.has_value());
    EXPECT_LE(r.best_cost, 1.10 * bf->best_cost) << "seed " << seed;
    EXPECT_GE(r.best_cost, bf->best_cost * (1 - 1e-9)) << "seed " << seed;
  }
}

TEST(DpSolver, FallbackSolvesBreadthFirstInception) {
  // The paper's Table I failure case: BF ordering OOMs on InceptionV3. With
  // graceful degradation the same run yields a usable strategy.
  const Graph g = models::inception_v3();
  auto opt = options_for(8, OrderingKind::kBreadthFirst);
  opt.degraded_fallback = true;
  opt.beam_width = 64;  // keep the 218-node fallback fast
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kDegraded);
  EXPECT_TRUE(strategy_valid(g, r.strategy, opt.config_options));
  // Degraded but useful: no worse than plain data parallelism.
  const CostModel cm(g, opt.cost_params);
  EXPECT_LE(r.best_cost,
            cm.total_cost(data_parallel_strategy(g, 8)) * (1 + 1e-9));
}

TEST(DpSolver, FallbackIsDeterministic) {
  const Graph g = testing::random_graph(10, 20, 11);
  DpOptions opt = options_for(8);
  opt.max_table_entries = 4;
  opt.degraded_fallback = true;
  const DpResult a = find_best_strategy(g, opt);
  const DpResult b = find_best_strategy(g, opt);
  ASSERT_EQ(a.status, DpStatus::kDegraded);
  EXPECT_EQ(a.best_cost, b.best_cost);
  ASSERT_EQ(a.strategy.size(), b.strategy.size());
  for (size_t i = 0; i < a.strategy.size(); ++i)
    EXPECT_EQ(a.strategy[i], b.strategy[i]);
}

TEST(DpSolver, DeadlineExpiresIntoFallback) {
  const Graph g = models::inception_v3();
  auto opt = options_for(8);
  opt.deadline_seconds = 1e-9;  // expires immediately
  opt.degraded_fallback = true;
  opt.beam_width = 64;
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kDegraded);
  EXPECT_NE(r.guard_reason.find("deadline"), std::string::npos)
      << r.guard_reason;
  EXPECT_TRUE(strategy_valid(g, r.strategy, opt.config_options));
}

TEST(DpSolver, DeadlineWithoutFallbackFailsWithReason) {
  const Graph g = models::alexnet();
  auto opt = options_for(8);
  opt.deadline_seconds = 1e-9;
  const DpResult r = find_best_strategy(g, opt);
  EXPECT_EQ(r.status, DpStatus::kOutOfMemory);
  EXPECT_NE(r.guard_reason.find("deadline"), std::string::npos);
  EXPECT_EQ(r.trip_cause, DpResult::TripCause::kDeadline);
}

TEST(DpSolver, DeadlineHonoredInsideSingleLargeVertex) {
  // Granularity regression: with the guards lifted, InceptionV3 at p = 64
  // spends its time *inside* individual vertices (large substrategy tables
  // x large config sets), so a solver that only checked the deadline
  // between vertices would overrun a tight budget by orders of magnitude.
  // The amortized in-loop checks must trip it promptly mid-vertex.
  const Graph g = models::inception_v3();
  auto opt = options_for(64);
  opt.max_table_entries = u64{1} << 40;  // don't let the guards fire first
  opt.max_combinations = u64{1} << 50;
  opt.deadline_seconds = 0.05;
  opt.degraded_fallback = true;
  opt.beam_width = 32;
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kDegraded) << r.guard_reason;
  EXPECT_EQ(r.trip_cause, DpResult::TripCause::kDeadline);
  EXPECT_NE(r.guard_reason.find("deadline"), std::string::npos);
  // "Promptly": the full solve takes minutes; the in-loop checks bound the
  // overrun to a few thousand combinations plus the beam fallback.
  EXPECT_LT(r.elapsed_seconds, 10.0);
  EXPECT_TRUE(strategy_valid(g, r.strategy, opt.config_options));
}

TEST(DpSolver, PreSetCancelTokenAbortsWithCancelledCause) {
  const Graph g = models::alexnet();
  std::atomic<bool> cancel{true};  // cancelled before the solve starts
  auto opt = options_for(8);
  opt.cancel = &cancel;
  const DpResult r = find_best_strategy(g, opt);
  EXPECT_EQ(r.status, DpStatus::kOutOfMemory);
  EXPECT_EQ(r.trip_cause, DpResult::TripCause::kCancelled);
  EXPECT_NE(r.guard_reason.find("cancelled"), std::string::npos);

  // Cancellation beats the fallback too: the beam search honors the token,
  // so no strategy comes back even in degraded mode.
  opt.degraded_fallback = true;
  const DpResult rf = find_best_strategy(g, opt);
  EXPECT_EQ(rf.status, DpStatus::kOutOfMemory);
  EXPECT_EQ(rf.trip_cause, DpResult::TripCause::kCancelled);
  EXPECT_TRUE(rf.strategy.empty());
}

TEST(DpSolver, GuardTripsReportStructuralCauses) {
  const Graph g = models::inception_v3();
  auto opt = options_for(8);
  opt.max_table_entries = 4;  // absurdly small: first big vertex trips it
  const DpResult table = find_best_strategy(g, opt);
  EXPECT_EQ(table.status, DpStatus::kOutOfMemory);
  EXPECT_EQ(table.trip_cause, DpResult::TripCause::kTableGuard);

  opt = options_for(8);
  opt.max_combinations = 4;
  const DpResult work = find_best_strategy(g, opt);
  EXPECT_EQ(work.status, DpStatus::kOutOfMemory);
  EXPECT_EQ(work.trip_cause, DpResult::TripCause::kWorkGuard);
}

TEST(DpSolver, InfeasibleBeatsFallback) {
  // An unsatisfiable admission filter is a modeling problem, not a resource
  // problem: the solver must keep reporting kInfeasible, never degrade.
  const Graph g = models::alexnet();
  auto opt = options_for(8);
  opt.degraded_fallback = true;
  opt.config_options.filter = [](const Node&, const Config&) {
    return false;
  };
  EXPECT_EQ(find_best_strategy(g, opt).status, DpStatus::kInfeasible);
}

// ---- Diagnostics.

TEST(DpSolver, ReportsDependentSetSizes) {
  const Graph g = models::inception_v3();
  const DpResult r = find_best_strategy(g, options_for(8));
  ASSERT_EQ(static_cast<i64>(r.dependent_set_sizes.size()), g.num_nodes());
  i64 m = 0;
  for (i64 s : r.dependent_set_sizes) m = std::max(m, s);
  EXPECT_EQ(m, r.max_dependent_set);
  EXPECT_LE(m, 2);  // paper §III-C: |D(i) u {v}| <= 3
}

TEST(DpSolver, ReportsKAndWork) {
  const Graph g = models::alexnet();
  const DpResult r = find_best_strategy(g, options_for(8));
  EXPECT_GT(r.max_configs, 1);
  EXPECT_GT(r.max_combinations_analyzed, 0u);
  EXPECT_GE(r.elapsed_seconds, 0.0);
}

TEST(DpSolver, CostDecreasesWithMoreDevices) {
  const Graph g = models::alexnet();
  double prev = std::numeric_limits<double>::infinity();
  for (i64 p : {1LL, 2LL, 4LL, 8LL, 16LL}) {
    const double c = find_best_strategy(g, options_for(p)).best_cost;
    EXPECT_LE(c, prev * (1 + 1e-9)) << "p=" << p;
    prev = c;
  }
}

}  // namespace
}  // namespace pase
