#include <gtest/gtest.h>

#include <set>

#include "cost/cost_model.h"
#include "models/models.h"
#include "pipeline/pipeline.h"
#include "search/baselines.h"

namespace pase {
namespace {

PipelineOptions popts(const MachineSpec& m, std::vector<i64> stage_counts) {
  PipelineOptions o;
  o.stage_counts = std::move(stage_counts);
  o.solver.cost_params = CostParams::for_machine(m);
  return o;
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph g = models::alexnet();
  std::vector<NodeId> remap;
  const Graph sub = induced_subgraph(g, {0, 1, 2}, remap);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // conv1-pool1, pool1-conv2
  EXPECT_EQ(remap[0], 0);
  EXPECT_EQ(remap[3], kInvalidNode);
  EXPECT_EQ(sub.node(1).name, g.node(1).name);
}

TEST(InducedSubgraph, DisconnectedPieceIsFine) {
  const Graph g = models::alexnet();
  std::vector<NodeId> remap;
  const Graph sub = induced_subgraph(g, {0, 5}, remap);  // conv1 + conv4
  EXPECT_EQ(sub.num_nodes(), 2);
  EXPECT_EQ(sub.num_edges(), 0);
  EXPECT_FALSE(sub.weakly_connected());
}

TEST(DpSolver, HandlesDisconnectedGraphs) {
  // The per-component generalization used by pipeline stages: the optimum
  // of a disconnected graph is the sum of per-component optima.
  const Graph whole = models::mlp(32, {64, 64});
  DpOptions opt;
  opt.config_options.max_devices = 4;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(4));
  const double one = find_best_strategy(whole, opt).best_cost;

  std::vector<NodeId> remap;
  Graph two_copies;
  for (const Node& n : whole.nodes()) two_copies.add_node(n);
  for (const Node& n : whole.nodes()) {
    Node copy = n;
    copy.name += "_2";
    two_copies.add_node(copy);
  }
  for (const Edge& e : whole.edges()) {
    two_copies.add_edge(e.src, e.dst, e.shape, e.src_dims, e.dst_dims);
    two_copies.add_edge(e.src + whole.num_nodes(),
                        e.dst + whole.num_nodes(), e.shape, e.src_dims,
                        e.dst_dims);
  }
  const DpResult r = find_best_strategy(two_copies, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  EXPECT_NEAR(r.best_cost, 2.0 * one, 1e-6 * one);
  for (const Config& c : r.strategy) EXPECT_GT(c.rank(), 0);
}

TEST(Pipeline, SingleStageEqualsPureStrategySearch) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::alexnet();
  const PipelineResult r = partition_pipeline(g, m, popts(m, {1}));
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_EQ(r.devices_per_stage, 8);
  EXPECT_DOUBLE_EQ(r.step_seconds, r.no_pipeline_seconds);
  EXPECT_EQ(static_cast<i64>(r.stages[0].nodes.size()), g.num_nodes());
}

TEST(Pipeline, StagesPartitionTheGraph) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::vgg16(32);
  const PipelineResult r = partition_pipeline(g, m, popts(m, {2}));
  ASSERT_EQ(r.stages.size(), 2u);
  std::set<NodeId> seen;
  for (const auto& s : r.stages) {
    EXPECT_EQ(static_cast<i64>(s.strategy.size()),
              static_cast<i64>(s.nodes.size()));
    for (NodeId v : s.nodes) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(static_cast<i64>(seen.size()), g.num_nodes());
  EXPECT_EQ(r.devices_per_stage, 4);
}

TEST(Pipeline, BottleneckIsMaxStageTime) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::vgg16(32);
  const PipelineResult r = partition_pipeline(g, m, popts(m, {2}));
  double max_stage = 0.0;
  for (const auto& s : r.stages) max_stage = std::max(max_stage, s.seconds());
  EXPECT_NEAR(r.bottleneck_seconds, max_stage, 1e-12);
  EXPECT_GE(r.step_seconds, r.bottleneck_seconds);  // fill/drain overhead
}

TEST(Pipeline, PicksBestStageCount) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::alexnet();
  const PipelineResult best =
      partition_pipeline(g, m, popts(m, {1, 2, 4}));
  for (const i64 s : {1LL, 2LL, 4LL}) {
    const PipelineResult single = partition_pipeline(g, m, popts(m, {s}));
    EXPECT_LE(best.step_seconds, single.step_seconds * (1 + 1e-9))
        << "stages=" << s;
  }
}

TEST(Pipeline, MoreMicrobatchesShrinkFillDrainOverhead) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::vgg16(32);
  PipelineOptions few = popts(m, {4});
  few.microbatches = 2;
  PipelineOptions many = popts(m, {4});
  many.microbatches = 64;
  EXPECT_GT(partition_pipeline(g, m, few).step_seconds,
            partition_pipeline(g, m, many).step_seconds);
}

TEST(Pipeline, InvalidStageCountsSkipped) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::alexnet();
  // 3 does not divide 8; only the 1-stage variant is feasible.
  const PipelineResult r = partition_pipeline(g, m, popts(m, {3, 1}));
  EXPECT_EQ(r.stages.size(), 1u);
}

// ---------------------------------------------------------------------------
// The searched pipeline-stage dimension (find_best_pipelined_strategy):
// the path --pipeline-stages and the serve protocol use.

DpOptions search_solver(const MachineSpec& m) {
  DpOptions o;
  o.config_options.max_devices = m.num_devices;
  o.cost_params = CostParams::for_machine(m);
  return o;
}

TEST(PipelineSearch, SingleStageIsBitIdenticalToFindBestStrategy) {
  // popts.stages == 1 is the disabled-dimension contract: the verbatim
  // find_best_strategy result, bit for bit.
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  for (const char* name : {"alexnet", "vgg16", "transformer_pipelined"}) {
    const Graph g = *models::zoo_graph(name);
    const DpOptions solver = search_solver(m);
    const DpResult plain = find_best_strategy(g, solver);
    PipelineSearchOptions popts;
    popts.stages = 1;
    const PipelinedSearchResult r =
        find_best_pipelined_strategy(g, m, solver, popts);
    EXPECT_EQ(r.stages, 1) << name;
    EXPECT_TRUE(r.stage_details.empty()) << name;
    EXPECT_EQ(r.dp.status, plain.status) << name;
    EXPECT_EQ(r.dp.best_cost, plain.best_cost) << name;  // bitwise
    EXPECT_TRUE(r.dp.strategy == plain.strategy) << name;
    EXPECT_DOUBLE_EQ(r.step_seconds, r.no_pipeline_seconds) << name;
  }
}

TEST(PipelineSearch, ExplicitStageCountIsRespected) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = *models::zoo_graph("transformer_pipelined");
  PipelineSearchOptions popts;
  popts.stages = 4;
  const PipelinedSearchResult r =
      find_best_pipelined_strategy(g, m, search_solver(m), popts);
  ASSERT_EQ(r.dp.status, DpStatus::kOk);
  EXPECT_EQ(r.stages, 4);
  EXPECT_EQ(r.devices_per_stage, 2);
  ASSERT_EQ(r.stage_details.size(), 4u);
  // The composed strategy covers every original node exactly once, and the
  // bottleneck is the slowest stage.
  std::set<NodeId> seen;
  double max_stage = 0.0;
  for (const auto& s : r.stage_details) {
    for (NodeId v : s.nodes) EXPECT_TRUE(seen.insert(v).second);
    max_stage = std::max(max_stage, s.seconds());
  }
  EXPECT_EQ(static_cast<i64>(seen.size()), g.num_nodes());
  EXPECT_NEAR(r.bottleneck_seconds, max_stage, 1e-12);
  EXPECT_GE(r.step_seconds, r.bottleneck_seconds);
  EXPECT_EQ(static_cast<i64>(r.dp.strategy.size()), g.num_nodes());
}

TEST(PipelineSearch, AutoNeverLosesToAnyFixedStageCount) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = *models::zoo_graph("transformer_pipelined");
  PipelineSearchOptions auto_popts;
  auto_popts.stages = 0;
  const PipelinedSearchResult best =
      find_best_pipelined_strategy(g, m, search_solver(m), auto_popts);
  ASSERT_EQ(best.dp.status, DpStatus::kOk);
  for (const i64 n : {1LL, 2LL, 4LL, 8LL}) {
    PipelineSearchOptions popts;
    popts.stages = n;
    const PipelinedSearchResult fixed =
        find_best_pipelined_strategy(g, m, search_solver(m), popts);
    EXPECT_LE(best.step_seconds, fixed.step_seconds * (1 + 1e-9))
        << "stages=" << n;
  }
}

TEST(PipelineSearch, InfeasiblePartitionReportsInfeasibleNotAbort) {
  // Tiny graph, 8 devices, 8 stages requested: the boundary budget admits
  // at most num_nodes stages, so no partition exists. The searched path
  // must report kInfeasible instead of aborting the process.
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::mlp(32, {64, 64});
  ASSERT_LT(g.num_nodes(), 8);
  PipelineSearchOptions popts;
  popts.stages = 8;
  const PipelinedSearchResult r =
      find_best_pipelined_strategy(g, m, search_solver(m), popts);
  EXPECT_EQ(r.dp.status, DpStatus::kInfeasible);
  EXPECT_TRUE(r.dp.strategy.empty());
}

TEST(PipelineSearch, ComposedCostMatchesCostModelTotal) {
  // stages > 1: dp.best_cost is the full-graph Eq. (1) evaluation of the
  // composed strategy — the same number serve's verify-on-hit recomputes.
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = *models::zoo_graph("transformer_pipelined");
  const DpOptions solver = search_solver(m);
  PipelineSearchOptions popts;
  popts.stages = 2;
  const PipelinedSearchResult r =
      find_best_pipelined_strategy(g, m, solver, popts);
  ASSERT_EQ(r.dp.status, DpStatus::kOk);
  ASSERT_EQ(r.stages, 2);
  const CostModel cm(g, solver.cost_params);
  EXPECT_DOUBLE_EQ(r.dp.best_cost, cm.total_cost(r.dp.strategy));
}

TEST(Pipeline, WorksOnBranchyGraphs) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::resnet50(32);
  const PipelineResult r = partition_pipeline(g, m, popts(m, {1, 2}));
  EXPECT_FALSE(r.stages.empty());
  EXPECT_GT(r.step_seconds, 0.0);
}

}  // namespace
}  // namespace pase
