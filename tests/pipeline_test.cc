#include <gtest/gtest.h>

#include <set>

#include "models/models.h"
#include "pipeline/pipeline.h"
#include "search/baselines.h"

namespace pase {
namespace {

PipelineOptions popts(const MachineSpec& m, std::vector<i64> stage_counts) {
  PipelineOptions o;
  o.stage_counts = std::move(stage_counts);
  o.solver.cost_params = CostParams::for_machine(m);
  return o;
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph g = models::alexnet();
  std::vector<NodeId> remap;
  const Graph sub = induced_subgraph(g, {0, 1, 2}, remap);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // conv1-pool1, pool1-conv2
  EXPECT_EQ(remap[0], 0);
  EXPECT_EQ(remap[3], kInvalidNode);
  EXPECT_EQ(sub.node(1).name, g.node(1).name);
}

TEST(InducedSubgraph, DisconnectedPieceIsFine) {
  const Graph g = models::alexnet();
  std::vector<NodeId> remap;
  const Graph sub = induced_subgraph(g, {0, 5}, remap);  // conv1 + conv4
  EXPECT_EQ(sub.num_nodes(), 2);
  EXPECT_EQ(sub.num_edges(), 0);
  EXPECT_FALSE(sub.weakly_connected());
}

TEST(DpSolver, HandlesDisconnectedGraphs) {
  // The per-component generalization used by pipeline stages: the optimum
  // of a disconnected graph is the sum of per-component optima.
  const Graph whole = models::mlp(32, {64, 64});
  DpOptions opt;
  opt.config_options.max_devices = 4;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(4));
  const double one = find_best_strategy(whole, opt).best_cost;

  std::vector<NodeId> remap;
  Graph two_copies;
  for (const Node& n : whole.nodes()) two_copies.add_node(n);
  for (const Node& n : whole.nodes()) {
    Node copy = n;
    copy.name += "_2";
    two_copies.add_node(copy);
  }
  for (const Edge& e : whole.edges()) {
    two_copies.add_edge(e.src, e.dst, e.shape, e.src_dims, e.dst_dims);
    two_copies.add_edge(e.src + whole.num_nodes(),
                        e.dst + whole.num_nodes(), e.shape, e.src_dims,
                        e.dst_dims);
  }
  const DpResult r = find_best_strategy(two_copies, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  EXPECT_NEAR(r.best_cost, 2.0 * one, 1e-6 * one);
  for (const Config& c : r.strategy) EXPECT_GT(c.rank(), 0);
}

TEST(Pipeline, SingleStageEqualsPureStrategySearch) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::alexnet();
  const PipelineResult r = partition_pipeline(g, m, popts(m, {1}));
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_EQ(r.devices_per_stage, 8);
  EXPECT_DOUBLE_EQ(r.step_seconds, r.no_pipeline_seconds);
  EXPECT_EQ(static_cast<i64>(r.stages[0].nodes.size()), g.num_nodes());
}

TEST(Pipeline, StagesPartitionTheGraph) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::vgg16(32);
  const PipelineResult r = partition_pipeline(g, m, popts(m, {2}));
  ASSERT_EQ(r.stages.size(), 2u);
  std::set<NodeId> seen;
  for (const auto& s : r.stages) {
    EXPECT_EQ(static_cast<i64>(s.strategy.size()),
              static_cast<i64>(s.nodes.size()));
    for (NodeId v : s.nodes) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(static_cast<i64>(seen.size()), g.num_nodes());
  EXPECT_EQ(r.devices_per_stage, 4);
}

TEST(Pipeline, BottleneckIsMaxStageTime) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::vgg16(32);
  const PipelineResult r = partition_pipeline(g, m, popts(m, {2}));
  double max_stage = 0.0;
  for (const auto& s : r.stages) max_stage = std::max(max_stage, s.seconds());
  EXPECT_NEAR(r.bottleneck_seconds, max_stage, 1e-12);
  EXPECT_GE(r.step_seconds, r.bottleneck_seconds);  // fill/drain overhead
}

TEST(Pipeline, PicksBestStageCount) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::alexnet();
  const PipelineResult best =
      partition_pipeline(g, m, popts(m, {1, 2, 4}));
  for (const i64 s : {1LL, 2LL, 4LL}) {
    const PipelineResult single = partition_pipeline(g, m, popts(m, {s}));
    EXPECT_LE(best.step_seconds, single.step_seconds * (1 + 1e-9))
        << "stages=" << s;
  }
}

TEST(Pipeline, MoreMicrobatchesShrinkFillDrainOverhead) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::vgg16(32);
  PipelineOptions few = popts(m, {4});
  few.microbatches = 2;
  PipelineOptions many = popts(m, {4});
  many.microbatches = 64;
  EXPECT_GT(partition_pipeline(g, m, few).step_seconds,
            partition_pipeline(g, m, many).step_seconds);
}

TEST(Pipeline, InvalidStageCountsSkipped) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::alexnet();
  // 3 does not divide 8; only the 1-stage variant is feasible.
  const PipelineResult r = partition_pipeline(g, m, popts(m, {3, 1}));
  EXPECT_EQ(r.stages.size(), 1u);
}

TEST(Pipeline, WorksOnBranchyGraphs) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Graph g = models::resnet50(32);
  const PipelineResult r = partition_pipeline(g, m, popts(m, {1, 2}));
  EXPECT_FALSE(r.stages.empty());
  EXPECT_GT(r.step_seconds, 0.0);
}

}  // namespace
}  // namespace pase
