#include <gtest/gtest.h>

#include <algorithm>

#include "models/models.h"

namespace pase {
namespace {

TEST(Models, AlexNetShape) {
  const Graph g = models::alexnet();
  EXPECT_EQ(g.num_nodes(), 12);  // 5 conv + 3 pool + 3 FC + softmax
  EXPECT_TRUE(g.weakly_connected());
  // Path graph: every node has at most 2 neighbors.
  for (const Node& n : g.nodes()) EXPECT_LE(g.degree(n.id), 2) << n.name;
}

TEST(Models, AlexNetLayerMix) {
  const Graph g = models::alexnet();
  i64 conv = 0, fc = 0, pool = 0, sm = 0;
  for (const Node& n : g.nodes()) {
    conv += n.kind == OpKind::kConv2D;
    fc += n.kind == OpKind::kFullyConnected;
    pool += n.kind == OpKind::kPool;
    sm += n.kind == OpKind::kSoftmax;
  }
  EXPECT_EQ(conv, 5);
  EXPECT_EQ(fc, 3);
  EXPECT_EQ(pool, 3);
  EXPECT_EQ(sm, 1);
}

TEST(Models, InceptionV3SizeMatchesPaper) {
  // Paper §III-C: 218 nodes, 206 of degree < 5 and 12 of degree >= 5. Our
  // builder (conv+BN blocks, standard module mix) lands within a few nodes.
  const Graph g = models::inception_v3();
  EXPECT_GE(g.num_nodes(), 200);
  EXPECT_LE(g.num_nodes(), 235);
  EXPECT_TRUE(g.weakly_connected());
}

TEST(Models, InceptionV3SparsityProfile) {
  const Graph g = models::inception_v3();
  i64 low = 0, high = 0;
  for (const Node& n : g.nodes())
    (g.degree(n.id) < 5 ? low : high) += 1;
  // Mostly sparse with a few dense spots (the property GenerateSeq exploits).
  EXPECT_GE(low, g.num_nodes() * 9 / 10);
  EXPECT_GE(high, 5);
  EXPECT_LE(high, 20);
}

TEST(Models, InceptionV3HasHighDegreeConcats) {
  const Graph g = models::inception_v3();
  i64 max_degree = 0;
  for (const Node& n : g.nodes())
    max_degree = std::max(max_degree, g.degree(n.id));
  EXPECT_GE(max_degree, 6);  // InceptionE concat has 6 inputs + 1 output
}

TEST(Models, RnnlmIsFourNodePath) {
  const Graph g = models::rnnlm();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.node(1).kind, OpKind::kLSTM);
  for (const Node& n : g.nodes()) EXPECT_LE(g.degree(n.id), 2);
}

TEST(Models, RnnlmCustomShapes) {
  const Graph g = models::rnnlm(32, 20, 512, 1024, 10000, 3);
  const Node& lstm = g.node(1);
  EXPECT_EQ(lstm.space.dim(0).size, 3);   // layers
  EXPECT_EQ(lstm.space.dim(1).size, 32);  // batch
  EXPECT_EQ(lstm.space.dim(4).size, 1024);
}

TEST(Models, TransformerStructure) {
  const Graph g = models::transformer();
  EXPECT_TRUE(g.weakly_connected());
  i64 attn = 0, ffn = 0, emb = 0;
  for (const Node& n : g.nodes()) {
    attn += n.kind == OpKind::kAttention;
    ffn += n.kind == OpKind::kFeedForward;
    emb += n.kind == OpKind::kEmbedding;
  }
  EXPECT_EQ(attn, 6 + 12);  // 6 encoder self + 6 decoder self + 6 cross
  EXPECT_EQ(ffn, 12);
  EXPECT_EQ(emb, 2);
}

TEST(Models, TransformerEncoderOutputHasLongLiveRange) {
  // Paper §IV-A: the encoder output is a high-degree vertex feeding every
  // decoder cross-attention.
  const Graph g = models::transformer();
  i64 max_degree = 0;
  for (const Node& n : g.nodes())
    if (n.kind == OpKind::kLayerNorm)
      max_degree = std::max(max_degree, g.degree(n.id));
  EXPECT_GE(max_degree, 7);  // 6 cross-attentions + local wiring
}

TEST(Models, TransformerScalesWithLayers) {
  const Graph small = models::transformer(64, 128, 512, 8, 2048, 32000, 2);
  const Graph big = models::transformer(64, 128, 512, 8, 2048, 32000, 6);
  EXPECT_LT(small.num_nodes(), big.num_nodes());
  EXPECT_TRUE(small.weakly_connected());
}

TEST(Models, DenseNetIsDense) {
  const Graph g = models::densenet(32, 2, 6, 32);
  EXPECT_TRUE(g.weakly_connected());
  i64 max_degree = 0;
  for (const Node& n : g.nodes())
    max_degree = std::max(max_degree, g.degree(n.id));
  EXPECT_GE(max_degree, 6);  // transition fed by the whole block
}

TEST(Models, MlpChain) {
  const Graph g = models::mlp(8, {16, 32, 8});
  EXPECT_EQ(g.num_nodes(), 3);  // two FCs + softmax
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Models, PaperBenchmarksRegistry) {
  const auto v = models::paper_benchmarks();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0].name, "AlexNet");
  EXPECT_EQ(v[1].name, "InceptionV3");
  EXPECT_EQ(v[2].name, "RNNLM");
  EXPECT_EQ(v[3].name, "Transformer");
  for (const auto& b : v) EXPECT_TRUE(b.graph.weakly_connected());
}

TEST(Models, BatchSizePropagates) {
  const Graph g = models::alexnet(256);
  for (const Node& n : g.nodes()) {
    const i64 b = n.space.find("b");
    ASSERT_GE(b, 0) << n.name;
    EXPECT_EQ(n.space.dim(b).size, 256) << n.name;
  }
}

}  // namespace
}  // namespace pase
