// End-to-end tests of the paper's claims, tying the solver, baselines,
// cost model and simulator together.
#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "core/strategy.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/mcmc.h"
#include "sim/simulator.h"

namespace pase {
namespace {

DpOptions options_for(const MachineSpec& m) {
  DpOptions opt;
  opt.config_options.max_devices = m.num_devices;
  opt.cost_params = CostParams::for_machine(m);
  return opt;
}

TEST(Integration, TableIShape) {
  // Table I: BF ordering OOMs on InceptionV3 and Transformer but matches on
  // the path graphs; PaSE succeeds on all four.
  for (const auto& bench : models::paper_benchmarks()) {
    auto opt = options_for(MachineSpec::gtx1080ti(8));
    const DpResult ours = find_best_strategy(bench.graph, opt);
    EXPECT_EQ(ours.status, DpStatus::kOk) << bench.name;

    opt.ordering = OrderingKind::kBreadthFirst;
    opt.max_table_entries = 1 << 16;  // keep failing runs fast
    const DpResult bf = find_best_strategy(bench.graph, opt);
    const bool path_graph =
        bench.name == "AlexNet" || bench.name == "RNNLM";
    if (path_graph) {
      ASSERT_EQ(bf.status, DpStatus::kOk) << bench.name;
      EXPECT_NEAR(bf.best_cost, ours.best_cost, 1e-6 * ours.best_cost);
    } else {
      EXPECT_EQ(bf.status, DpStatus::kOutOfMemory) << bench.name;
    }
  }
}

TEST(Integration, OursNeverWorseThanMcmc) {
  // The DP finds the optimum of F; MCMC explores the same space, so it can
  // at best tie (paper: "our strategies also perform better than ... the
  // strategies suggested by FlexFlow").
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  for (const auto& bench : models::paper_benchmarks()) {
    const DpOptions opt = options_for(m);
    const DpResult ours = find_best_strategy(bench.graph, opt);
    McmcOptions mo;
    mo.max_iterations = 20000;
    mo.min_iterations = 2000;
    mo.full_evaluation = false;
    const McmcResult mc =
        mcmc_search(bench.graph, opt.config_options, opt.cost_params,
                    expert_strategy(bench.graph, 8), mo);
    EXPECT_LE(ours.best_cost, mc.best_cost * (1 + 1e-9)) << bench.name;
  }
}

TEST(Integration, McmcAtLeastTiesExpertInitialCandidate) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  for (const auto& bench : models::paper_benchmarks()) {
    const DpOptions opt = options_for(m);
    const CostModel cm(bench.graph, opt.cost_params);
    const Strategy init = expert_strategy(bench.graph, 8);
    McmcOptions mo;
    mo.max_iterations = 5000;
    mo.min_iterations = 500;
    mo.full_evaluation = false;
    const McmcResult mc = mcmc_search(bench.graph, opt.config_options,
                                      opt.cost_params, init, mo);
    EXPECT_LE(mc.best_cost, cm.total_cost(init) * (1 + 1e-9)) << bench.name;
  }
}

TEST(Integration, AlexNetFcSplitsBeatOwtOnInterLayerTransfers) {
  // Paper §IV-C: PaSE picks in/out-channel splits for the FC layers that
  // drastically cut inter-FC communication relative to OWT's out-channel-
  // only split (which incurs a full all-gather between FC layers). Our cost
  // model picks matching (1, 8, 4) splits rather than the paper's exact
  // alternating (1,4,8)/(1,8,4) pattern — both are parameter-parallel
  // hybrids, and the transfer volume is an order of magnitude below OWT's.
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::alexnet();
  const DpResult r = find_best_strategy(g, options_for(m));
  ASSERT_EQ(r.status, DpStatus::kOk);
  const CostModel cm(g, CostParams::for_machine(m));

  double ours_fc_transfer = 0.0, owt_fc_transfer = 0.0;
  const Strategy owt = owt_strategy(g, 32);
  for (const Edge& e : g.edges()) {
    if (g.node(e.src).kind != OpKind::kFullyConnected ||
        g.node(e.dst).kind != OpKind::kFullyConnected)
      continue;
    ours_fc_transfer += cm.edge_cost(e, r.strategy[e.src], r.strategy[e.dst]);
    owt_fc_transfer += cm.edge_cost(e, owt[e.src], owt[e.dst]);
  }
  EXPECT_LT(ours_fc_transfer, owt_fc_transfer / 4.0);
}

TEST(Integration, AlexNetEarlyConvsStayDataParallel) {
  // Paper Table II: Conv 1-4 use pure data parallelism at p = 32.
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::alexnet();
  const DpResult r = find_best_strategy(g, options_for(m));
  for (NodeId v = 0; v < 2; ++v) {  // at least the first convolutions
    const Config& c = r.strategy[static_cast<size_t>(v)];
    EXPECT_GT(c[0], 1) << g.node(v).name;
    for (i64 d = 1; d < c.rank(); ++d) EXPECT_EQ(c[d], 1) << g.node(v).name;
  }
}

TEST(Integration, RnnlmUsesParameterParallelismForEmbeddingAndProjection) {
  // Paper §IV-C: FindBestStrategy prefers splitting the parameter (table)
  // dimensions — not the batch — for the embedding and projection layers.
  // (The paper's Table II shards the vocabulary axis; our cost model picks
  // the equivalent-cost embedding-dim shard. Either way the table is fully
  // distributed and no gradient all-reduce remains.)
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::rnnlm();
  const DpResult r = find_best_strategy(g, options_for(m));
  const Config& emb = r.strategy[0];   // (b, s, d, v)
  const Config& proj = r.strategy[2];  // (b, s, v, d)
  EXPECT_LE(emb[0], 2) << "embedding batch split";
  EXPECT_GE(emb[2] * emb[3], 16) << "embedding table split";
  EXPECT_LE(proj[0], 4) << "projection batch split";
  EXPECT_GE(proj[2] * proj[3], 8) << "projection table split";
}

TEST(Integration, RnnlmLstmSplitsLayerDimension) {
  // Paper Table II: the LSTM configuration splits the layer dim l fully,
  // "thus utilizing intra-layer pipeline parallelism".
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::rnnlm();
  const DpResult r = find_best_strategy(g, options_for(m));
  EXPECT_EQ(r.strategy[1][0], 2);  // both LSTM layers
}

TEST(Integration, TransformerAttentionMatchesTableII) {
  // Paper Table II at p = 32: multi-head attention is parallelized as
  // (16, 1, 2, 1, 1) — batch 16-way, heads 2-way.
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::transformer();
  const DpResult r = find_best_strategy(g, options_for(m));
  for (const Node& n : g.nodes()) {
    if (n.kind != OpKind::kAttention) continue;
    const Config& c = r.strategy[static_cast<size_t>(n.id)];
    EXPECT_GE(c[0], 8) << n.name;  // batch-dominant everywhere
    // The encoder self-attentions carry the exact Table II hybrid
    // (16, 1, 2, 1, 1); decoder attentions, squeezed between the
    // cross-attention fan-in and the projection, settle on pure batch.
    if (n.name.rfind("EncAttn", 0) == 0) {
      EXPECT_EQ(c[0], 16) << n.name;
      EXPECT_EQ(c[2], 2) << n.name;
    }
  }
}

TEST(Integration, TransformerEmbeddingUsesParameterParallelism) {
  // Paper §IV-C: "Our approach suggests to use parameter parallelism for
  // embedding and softmax layers" of the Transformer.
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::transformer();
  const DpResult r = find_best_strategy(g, options_for(m));
  for (const Node& n : g.nodes()) {
    if (n.kind != OpKind::kEmbedding) continue;
    const Config& c = r.strategy[static_cast<size_t>(n.id)];
    EXPECT_EQ(c[0], 1) << n.name << " must not be batch-parallel";
    EXPECT_GE(c[2] * c[3], 16) << n.name << " should shard the table";
  }
}

TEST(Integration, InceptionDeepModulesGoHybrid) {
  // Paper §IV-C: modules A-D stay data parallel while module E (large
  // output channels) benefits from hybrid data+parameter parallelism —
  // verified here as: the found strategy beats pure data parallelism, and
  // the advantage comes from the deep layers.
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::inception_v3();
  const DpResult r = find_best_strategy(g, options_for(m));
  const CostModel cm(g, CostParams::for_machine(m));
  EXPECT_LT(r.best_cost,
            cm.total_cost(data_parallel_strategy(g, 32)) * 0.999);
}

TEST(Integration, SpeedupsAmplifiedOnLowBalanceMachine) {
  // Paper §IV-B: inefficiencies are "much more pronounced on 2080Ti nodes".
  const i64 p = 16;
  for (const auto& bench : models::paper_benchmarks()) {
    double speedup[2];
    int i = 0;
    for (const MachineSpec& m :
         {MachineSpec::gtx1080ti(p), MachineSpec::rtx2080ti(p)}) {
      const DpResult r = find_best_strategy(bench.graph, options_for(m));
      ASSERT_EQ(r.status, DpStatus::kOk);
      const Simulator sim(bench.graph, m);
      speedup[i++] =
          sim.speedup(r.strategy, data_parallel_strategy(bench.graph, p));
    }
    EXPECT_GE(speedup[1], speedup[0] * 0.95) << bench.name;
  }
}

TEST(Integration, SearchTimeGrowsWithP) {
  // Table I: the search gets more expensive as the device count grows
  // (compare endpoints to avoid timer noise at small p).
  const Graph g = models::inception_v3();
  const double t4 =
      find_best_strategy(g, options_for(MachineSpec::gtx1080ti(4)))
          .elapsed_seconds;
  const double t64 =
      find_best_strategy(g, options_for(MachineSpec::gtx1080ti(64)))
          .elapsed_seconds;
  EXPECT_GT(t64, t4);
}

}  // namespace
}  // namespace pase
