// Shared helpers for the PaSE test suite: deterministic random computation
// graphs (for property tests against brute force), hand-built orderings, and
// the paper's Fig. 2 toy graph.
#pragma once

#include <vector>

#include "core/ordering.h"
#include "graph/graph.h"
#include "ops/ops.h"
#include "util/rng.h"

namespace pase::testing {

/// A connected random computation graph of `n` FC-like nodes: a random
/// spanning tree plus `extra_edges` additional edges; dims drawn from small
/// powers of two. Deterministic for a given seed.
inline Graph random_graph(i64 n, i64 extra_edges, u64 seed) {
  Rng rng(seed);
  Graph g;
  auto rand_dim = [&] {
    static const i64 sizes[] = {4, 8, 16, 32};
    return sizes[rng.uniform(4)];
  };
  for (i64 i = 0; i < n; ++i)
    g.add_node(ops::fully_connected("N" + std::to_string(i), rand_dim(),
                                    rand_dim(), rand_dim()));
  auto connect = [&](NodeId a, NodeId b) {
    // Wire producer output [b, n] to consumer input (b, *, c); extents may
    // differ, which the dim-map representation permits.
    g.add_edge_named(a, b, {"b", "n"}, {"b", "c"});
  };
  for (i64 i = 1; i < n; ++i)
    connect(static_cast<NodeId>(rng.uniform(static_cast<u64>(i))),
            static_cast<NodeId>(i));
  for (i64 e = 0; e < extra_edges; ++e) {
    const NodeId a = static_cast<NodeId>(rng.uniform(static_cast<u64>(n)));
    const NodeId b = static_cast<NodeId>(rng.uniform(static_cast<u64>(n)));
    if (a == b) continue;
    connect(std::min(a, b), std::max(a, b));
  }
  g.validate();
  return g;
}

/// An Ordering with seq = the given node ids (must be a permutation).
inline Ordering make_identity_ordering(const Graph& g) {
  Ordering o;
  o.pos.assign(static_cast<size_t>(g.num_nodes()), -1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    o.seq.push_back(v);
    o.pos[static_cast<size_t>(v)] = v;
  }
  return o;
}

/// The toy computation graph of paper Fig. 2 (9 vertices). With the identity
/// ordering (v^(i) = node i-1):
///   X(5)  = {v1, v2, v3, v5}
///   D(5)  = {v8}           (recurrence (4) dependent set)
///   S(5)  = {{v1, v2}, {v3}}
///   D_B(5) = {v7, v8, v9}  (breadth-first/naive dependent set)
/// Node ids here are 0-based: paper's v^(k) is node k-1.
inline Graph fig2_toy_graph() {
  Graph g;
  for (int i = 1; i <= 9; ++i)
    g.add_node(ops::fully_connected("v" + std::to_string(i), 8, 8, 8));
  auto connect = [&](int a, int b) {  // 1-based, matching the paper
    g.add_edge_named(static_cast<NodeId>(a - 1), static_cast<NodeId>(b - 1),
                     {"b", "n"}, {"b", "c"});
  };
  connect(1, 2);
  connect(2, 5);
  connect(3, 5);
  connect(5, 8);
  connect(4, 7);
  connect(4, 9);
  connect(6, 7);
  connect(8, 9);
  g.validate();
  return g;
}

}  // namespace pase::testing
