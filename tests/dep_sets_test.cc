#include <gtest/gtest.h>

#include <algorithm>

#include "core/dep_sets.h"
#include "models/models.h"
#include "test_util.h"

namespace pase {
namespace {

// All expectations in this file on the toy graph mirror paper Fig. 2, using
// the identity ordering (node k-1 is the paper's v^(k)). Positions here are
// 0-based: paper's i = 5 is position 4.

TEST(DepSets, Fig2ConnectedSet) {
  const Graph g = testing::fig2_toy_graph();
  const Ordering o = testing::make_identity_ordering(g);
  const VertexSets s = compute_vertex_sets(g, o, 4);
  // X(5) = {v1, v2, v3, v5} -> 0-based node ids {0, 1, 2, 4}.
  EXPECT_EQ(s.connected, (std::vector<NodeId>{0, 1, 2, 4}));
}

TEST(DepSets, Fig2DependentSet) {
  const Graph g = testing::fig2_toy_graph();
  const Ordering o = testing::make_identity_ordering(g);
  const VertexSets s = compute_vertex_sets(g, o, 4);
  // D(5) = {v8} -> node id 7.
  EXPECT_EQ(s.dependent, (std::vector<NodeId>{7}));
}

TEST(DepSets, Fig2ConnectedSubsets) {
  const Graph g = testing::fig2_toy_graph();
  const Ordering o = testing::make_identity_ordering(g);
  const VertexSets s = compute_vertex_sets(g, o, 4);
  // S(5) = {{v1, v2}, {v3}}: anchors are the max positions, i.e. v2
  // (position 1) and v3 (position 2).
  EXPECT_EQ(s.subset_anchors, (std::vector<i64>{1, 2}));
}

TEST(DepSets, Fig2NaiveDependentSetIsLarger) {
  // D_B(5) = N(V_<=5) n V_>5 = {v7, v8, v9}: the naive recurrence's set is
  // strictly larger than D(5), which is the whole point of recurrence (4).
  const Graph g = testing::fig2_toy_graph();
  const Ordering o = testing::make_identity_ordering(g);
  Bitset prefix_neighbors(g.num_nodes());
  for (NodeId v = 0; v <= 4; ++v)
    for (NodeId w : g.neighbors(v))
      if (w > 4) prefix_neighbors.set(w);
  EXPECT_EQ(prefix_neighbors.to_vector(), (std::vector<i64>{6, 7, 8}));
  EXPECT_LT(compute_vertex_sets(g, o, 4).dependent.size(),
            prefix_neighbors.to_vector().size());
}

TEST(DepSets, LastVertexHasEmptyDependentSetAndFullConnectedSet) {
  for (const auto& b : models::paper_benchmarks()) {
    const Ordering o = generate_seq(b.graph);
    const VertexSets s =
        compute_vertex_sets(b.graph, o, b.graph.num_nodes() - 1);
    EXPECT_TRUE(s.dependent.empty()) << b.name;
    // G is weakly connected, so X(|V|) = V (used by Theorem 1's proof).
    EXPECT_EQ(static_cast<i64>(s.connected.size()), b.graph.num_nodes())
        << b.name;
  }
}

TEST(DepSets, FirstVertexSets) {
  const Graph g = testing::fig2_toy_graph();
  const Ordering o = testing::make_identity_ordering(g);
  const VertexSets s = compute_vertex_sets(g, o, 0);
  EXPECT_EQ(s.connected, (std::vector<NodeId>{0}));
  EXPECT_EQ(s.dependent, (std::vector<NodeId>{1}));  // v1's neighbor v2
  EXPECT_TRUE(s.subset_anchors.empty());
}

TEST(DepSets, ConnectedSetContainsSelf) {
  const Graph g = testing::random_graph(9, 4, 3);
  const Ordering o = generate_seq(g);
  for (i64 i = 0; i < g.num_nodes(); ++i) {
    const VertexSets s = compute_vertex_sets(g, o, i);
    const NodeId vi = o.seq[static_cast<size_t>(i)];
    EXPECT_TRUE(std::find(s.connected.begin(), s.connected.end(), vi) !=
                s.connected.end());
  }
}

TEST(DepSets, DependentSetIsDisjointFromPrefix) {
  const Graph g = testing::random_graph(9, 4, 5);
  const Ordering o = generate_seq(g);
  for (i64 i = 0; i < g.num_nodes(); ++i) {
    for (NodeId d : compute_vertex_sets(g, o, i).dependent)
      EXPECT_GT(o.pos[static_cast<size_t>(d)], i);
  }
}

TEST(DepSets, AnchorsCoverConnectedSetExactlyOnce) {
  // The components X(j), j in S(i), partition X(i) - {v^(i)} (the proof of
  // Theorem 1 relies on pairwise disjointness).
  const Graph g = testing::random_graph(11, 5, 7);
  const Ordering o = generate_seq(g);
  for (i64 i = 0; i < g.num_nodes(); ++i) {
    const VertexSets s = compute_vertex_sets(g, o, i);
    std::vector<NodeId> covered;
    for (i64 j : s.subset_anchors) {
      const VertexSets sj = compute_vertex_sets(g, o, j);
      covered.insert(covered.end(), sj.connected.begin(),
                     sj.connected.end());
    }
    std::sort(covered.begin(), covered.end());
    EXPECT_TRUE(std::adjacent_find(covered.begin(), covered.end()) ==
                covered.end())
        << "components overlap at position " << i;
    std::vector<NodeId> expected = s.connected;
    expected.erase(std::remove(expected.begin(), expected.end(),
                               o.seq[static_cast<size_t>(i)]),
                   expected.end());
    EXPECT_EQ(covered, expected) << "position " << i;
  }
}

TEST(DepSets, AnchorDependentSetsNestIntoParent) {
  // D(j) subseteq D(i) u {v^(i)} for X(j) in S(i) — the property the DP's
  // table lookups rely on.
  for (u64 seed = 1; seed <= 6; ++seed) {
    const Graph g = testing::random_graph(10, 5, seed);
    const Ordering o = generate_seq(g);
    for (i64 i = 0; i < g.num_nodes(); ++i) {
      const VertexSets s = compute_vertex_sets(g, o, i);
      const NodeId vi = o.seq[static_cast<size_t>(i)];
      for (i64 j : s.subset_anchors) {
        for (NodeId d : compute_vertex_sets(g, o, j).dependent) {
          EXPECT_TRUE(d == vi ||
                      std::binary_search(s.dependent.begin(),
                                         s.dependent.end(), d))
              << "seed " << seed << " i " << i << " j " << j;
        }
      }
    }
  }
}

TEST(DepSets, MaxDependentSetSizeMatchesPerPositionMax) {
  const Graph g = models::inception_v3();
  const Ordering o = generate_seq(g);
  i64 m = 0;
  for (i64 i = 0; i < g.num_nodes(); ++i)
    m = std::max(m, static_cast<i64>(
                        compute_vertex_sets(g, o, i).dependent.size()));
  EXPECT_EQ(max_dependent_set_size(g, o), m);
}

}  // namespace
}  // namespace pase
