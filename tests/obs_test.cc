// Observability subsystem (src/obs) tests: the shared Chrome trace emitter's
// byte format, MetricsRegistry semantics and canonical dumps, TraceSession
// span recording, and — the integration half — parse-back validity of the
// traces a simulate run and a DP run actually emit, using the minimal JSON
// reader in mini_json.h. The ObsZoo suite sweeps every paper-benchmark zoo
// model and is labeled `slow` in ctest (tools/check.sh excludes it from the
// sanitizer lanes).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/dp_solver.h"
#include "mini_json.h"
#include "models/models.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "search/baselines.h"
#include "sim/simulator.h"

namespace pase {
namespace {

// ---------------------------------------------------------------------------
// Shared emitter: the byte format is a contract (golden trace diffs depend
// on it), so lock it down exactly.

TEST(ChromeTrace, EmitterByteFormat) {
  std::vector<ChromeEvent> events(2);
  events[0].name = "alpha";
  events[0].ts_us = 1.5;
  events[0].dur_us = 2.25;
  events[0].args.emplace_back("devices", 8);
  events[1].name = "beta";
  events[1].tid = 3;
  events[1].ts_us = 4.0;
  events[1].dur_us = 0.125;

  EXPECT_EQ(to_chrome_trace_json(events),
            "[\n"
            "{\"name\":\"alpha\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
            "\"ts\":1.500,\"dur\":2.250,\"args\":{\"devices\":8}},\n"
            "{\"name\":\"beta\",\"ph\":\"X\",\"pid\":0,\"tid\":3,"
            "\"ts\":4.000,\"dur\":0.125,\"args\":{}}\n"
            "]\n");
}

TEST(ChromeTrace, EmptyEventListIsValidJson) {
  const std::string json = to_chrome_trace_json(std::vector<ChromeEvent>{});
  EXPECT_EQ(json, "[\n]\n");
  // "[\n]\n" must still parse (Chrome accepts it).
  EXPECT_TRUE(testing::JsonParser::parse(json).has_value());
}

// ---------------------------------------------------------------------------
// MetricsRegistry semantics.

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.add_counter("c.one", 1);
  reg.add_counter("c.one", 2);
  reg.set_gauge("g.x", 1.5);
  reg.add_gauge("g.x", 0.25);
  reg.record("h.sizes", 0);
  reg.record("h.sizes", 1);
  reg.record("h.sizes", 5);
  reg.record("h.sizes", 5);

  EXPECT_EQ(reg.counter("c.one"), 3u);
  EXPECT_EQ(reg.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g.x"), 1.75);
  const auto h = reg.histogram("h.sizes");
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 11);
  // Power-of-two buckets: {0} -> lower 0, {1} -> lower 1, {4..7} -> lower 4.
  const std::vector<std::pair<i64, u64>> want = {{0, 1}, {1, 1}, {4, 2}};
  EXPECT_EQ(h.buckets, want);
  EXPECT_EQ(reg.num_metrics(), 3);
}

TEST(Metrics, JsonIsCanonicalAndGaugesStripCleanly) {
  MetricsRegistry reg;
  // Insert out of alphabetical order; the dump must sort.
  reg.add_counter("z.last", 1);
  reg.add_counter("a.first", 2);
  reg.record("h.only", 3);
  reg.set_gauge("g.volatile", 0.5);

  const std::string full = reg.to_json();
  const std::string structural = reg.structural_json();
  // The structural dump is a prefix of the full dump up to the gauges
  // section — the property check.sh's thread-count diff relies on.
  EXPECT_NE(full.find("\"gauges\""), std::string::npos);
  EXPECT_EQ(structural.find("\"gauges\""), std::string::npos);
  EXPECT_EQ(full.substr(0, full.find("\"gauges\"") - 2),
            structural.substr(0, structural.rfind("\n}\n")));
  EXPECT_LT(full.find("a.first"), full.find("z.last"));

  // Both dumps parse, with the right values in the right sections.
  const auto parsed = testing::JsonParser::parse(full);
  ASSERT_TRUE(parsed.has_value());
  const auto* counters = parsed->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get("a.first")->number, 2.0);
  const auto* hist = parsed->get("histograms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->get("h.only")->get("count")->number, 1.0);
  const auto* gauges = parsed->get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->get("g.volatile")->number, 0.5);
  ASSERT_TRUE(testing::JsonParser::parse(structural).has_value());
}

TEST(Metrics, IdenticalContentsProduceIdenticalBytes) {
  // Canonical ordering: insertion order must not leak into the dump.
  MetricsRegistry a, b;
  a.add_counter("x", 1);
  a.add_counter("y", 2);
  b.add_counter("y", 2);
  b.add_counter("x", 1);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_text(), b.to_text());
}

TEST(Metrics, TextDumpListsEverySection) {
  MetricsRegistry reg;
  reg.add_counter("c", 7);
  reg.record("h", 2);
  reg.set_gauge("g", 1.0);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
}

TEST(Metrics, PrometheusByteFormat) {
  // The Prometheus exposition is a byte contract like to_json():
  // counters, then histograms (cumulative buckets at le = 2^k - 1,
  // then +Inf/_sum/_count), then gauges strictly last.
  MetricsRegistry reg;
  reg.add_counter("c.req", 7);
  reg.record("h.sz", 0);
  reg.record("h.sz", 1);
  reg.record("h.sz", 2);
  reg.record("h.sz", 5);
  reg.set_gauge("g.load", 1.5);

  EXPECT_EQ(reg.to_prometheus(),
            "# TYPE pase_c_req counter\n"
            "pase_c_req 7\n"
            "# TYPE pase_h_sz histogram\n"
            "pase_h_sz_bucket{le=\"0\"} 1\n"
            "pase_h_sz_bucket{le=\"1\"} 2\n"
            "pase_h_sz_bucket{le=\"3\"} 3\n"
            "pase_h_sz_bucket{le=\"7\"} 4\n"
            "pase_h_sz_bucket{le=\"+Inf\"} 4\n"
            "pase_h_sz_sum 8\n"
            "pase_h_sz_count 4\n"
            "# TYPE pase_g_load gauge\n"
            "pase_g_load 1.5\n");

  // Gauges strip cleanly: the gauge-free dump is the exact prefix up to
  // the first gauge TYPE line — the prom analogue of structural_json().
  const std::string full = reg.to_prometheus();
  const std::string structural = reg.to_prometheus(/*include_gauges=*/false);
  EXPECT_EQ(structural, full.substr(0, full.find("# TYPE pase_g_load")));
}

// ---------------------------------------------------------------------------
// RollingHistogram: the windowed SLO quantile estimator.

TEST(RollingHistogram, WindowedQuantilesAreDeterministic) {
  RollingHistogram roll(4);
  for (int v = 1; v <= 10; ++v) roll.record(static_cast<double>(v));
  // The ring holds exactly the last 4 samples {7,8,9,10}; total counts
  // everything ever recorded.
  EXPECT_EQ(roll.count(), 4);
  EXPECT_EQ(roll.total(), 10u);
  EXPECT_EQ(roll.window(), 4);
  // Nearest-rank on the sorted window: index floor(q * (n - 1)).
  EXPECT_DOUBLE_EQ(roll.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(roll.quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(roll.quantile(0.99), 9.0);
  EXPECT_DOUBLE_EQ(roll.quantile(1.0), 10.0);

  const RollingHistogram::Snapshot snap = roll.snapshot();
  EXPECT_EQ(snap.window, 4);
  EXPECT_EQ(snap.count, 4);
  EXPECT_EQ(snap.total, 10u);
  EXPECT_DOUBLE_EQ(snap.p50, 8.0);
  EXPECT_DOUBLE_EQ(snap.p95, 9.0);
  EXPECT_DOUBLE_EQ(snap.p99, 9.0);

  // Same request order -> bit-identical snapshot (the determinism the
  // event-log/SLO contract in DESIGN.md §11 promises).
  RollingHistogram again(4);
  for (int v = 1; v <= 10; ++v) again.record(static_cast<double>(v));
  const RollingHistogram::Snapshot snap2 = again.snapshot();
  EXPECT_EQ(snap.p50, snap2.p50);
  EXPECT_EQ(snap.p95, snap2.p95);
  EXPECT_EQ(snap.p99, snap2.p99);
}

TEST(RollingHistogram, EmptyAndPartialWindows) {
  RollingHistogram roll(8);
  EXPECT_EQ(roll.count(), 0);
  EXPECT_DOUBLE_EQ(roll.quantile(0.5), 0.0);  // empty -> 0, not NaN
  const RollingHistogram::Snapshot empty = roll.snapshot();
  EXPECT_EQ(empty.count, 0);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);

  roll.record(3.0);
  // A single sample answers every quantile.
  EXPECT_DOUBLE_EQ(roll.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(roll.quantile(0.99), 3.0);
}

// ---------------------------------------------------------------------------
// EventLog: bounded memory ring + optional per-line-flushed sink.

TEST(EventLog, MemoryRingKeepsTailAndCountsTotal) {
  EventLog log(2);
  log.append("{\"seq\":0}");
  log.append("{\"seq\":1}");
  log.append("{\"seq\":2}");
  EXPECT_EQ(log.total(), 3u);
  const std::vector<std::string> tail = log.tail();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], "{\"seq\":1}");
  EXPECT_EQ(tail[1], "{\"seq\":2}");
}

TEST(EventLog, SinkStreamsOneLinePerAppend) {
  const std::string path = ::testing::TempDir() + "pase_event_log_test.jsonl";
  EventLog log(8);
  std::string error;
  ASSERT_TRUE(log.open_sink(path, &error)) << error;
  log.append("{\"seq\":0}");
  log.append("{\"seq\":1}");
  // Flushed per line: readable while the log is still open (that is what
  // lets pase_loadgen cross-check a live daemon).
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"seq\":0}");
  EXPECT_EQ(lines[1], "{\"seq\":1}");
  std::remove(path.c_str());

  // An unwritable sink reports the path instead of silently dropping.
  EventLog bad(2);
  EXPECT_FALSE(bad.open_sink("/nonexistent-dir/event.log", &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// TraceSession: span recording, nesting, null-sink no-ops.

TEST(TraceSession, RecordsNestedSpansInStartOrder) {
  TraceSession session;
  {
    TraceSession::Span outer(&session, "outer");
    outer.arg("k", 42);
    { TraceSession::Span inner(&session, "inner"); }
    { TraceSession::Span inner2(&session, "inner"); }
  }
  EXPECT_EQ(session.num_lanes(), 1);
  EXPECT_EQ(session.num_spans(), 3);

  const auto events = session.events();
  ASSERT_EQ(events.size(), 3u);
  // Records append at open: outer first, then the two inners in order.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "inner");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "k");
  EXPECT_EQ(events[0].args[0].second, 42);
  // Exact containment: children open later and close earlier.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[0].ts_us);
    EXPECT_LE(events[i].ts_us + events[i].dur_us,
              events[0].ts_us + events[0].dur_us);
  }
  EXPECT_LE(events[1].ts_us, events[2].ts_us);  // monotone per lane

  const auto totals = session.phase_totals();
  ASSERT_EQ(totals.size(), 2u);  // sorted by name
  EXPECT_EQ(totals[0].name, "inner");
  EXPECT_EQ(totals[0].count, 2u);
  EXPECT_EQ(totals[1].name, "outer");
  EXPECT_EQ(totals[1].count, 1u);
}

TEST(TraceSession, NullSessionIsANoOp) {
  TraceSession::Span span(nullptr, "nothing");
  span.arg("k", 1);  // must not crash
  PhaseScope phase(nullptr, nullptr, "nothing", "g");
  phase.arg("k", 2);
}

TEST(TraceSession, PhaseScopeFeedsBothSinks) {
  TraceSession session;
  MetricsRegistry reg;
  {
    PhaseScope phase(&session, &reg, "phase_x", "phase_x_seconds");
    phase.arg("n", 3);
  }
  EXPECT_EQ(session.num_spans(), 1);
  EXPECT_EQ(session.events()[0].name, "phase_x");
  EXPECT_GE(reg.gauge("phase_x_seconds"), 0.0);
}

// ---------------------------------------------------------------------------
// Parse-back validity of emitted traces (mini_json.h).

/// Checks the event invariants the emitters promise on a parsed Chrome
/// trace: every event is a complete slice with numeric ts/dur >= 0 and,
/// per tid, start-ordered timestamps. Returns the events grouped by tid;
/// the returned pointers alias `parsed`, which the caller must keep alive.
std::map<i64, std::vector<const testing::JsonValue*>> parse_and_check_trace(
    const testing::JsonValue& parsed) {
  std::map<i64, std::vector<const testing::JsonValue*>> by_tid;
  EXPECT_TRUE(parsed.is_array()) << "trace is not a JSON array";
  if (!parsed.is_array()) return by_tid;
  for (const auto& e : parsed.array) {
    EXPECT_TRUE(e.is_object());
    EXPECT_EQ(e.get("ph")->string, "X");
    EXPECT_TRUE(e.get("name")->is_string());
    EXPECT_FALSE(e.get("name")->string.empty());
    EXPECT_TRUE(e.get("ts")->is_number());
    EXPECT_TRUE(e.get("dur")->is_number());
    EXPECT_GE(e.get("ts")->number, 0.0);
    EXPECT_GE(e.get("dur")->number, 0.0);
    by_tid[static_cast<i64>(e.get("tid")->number)].push_back(&e);
  }
  for (const auto& [tid, events] : by_tid)
    for (size_t i = 1; i < events.size(); ++i)
      EXPECT_GE(events[i]->get("ts")->number,
                events[i - 1]->get("ts")->number)
          << "timestamps not monotone within tid " << tid;
  return by_tid;
}

/// Balanced nesting per tid: events arrive in start order, so a stack of
/// open intervals must contain every event's full range. The emitter rounds
/// to 3 decimals, so allow rounding slack of one ulp of that (0.001 us).
void check_nesting(
    const std::map<i64, std::vector<const testing::JsonValue*>>& by_tid) {
  constexpr double kSlackUs = 0.0011;
  for (const auto& [tid, events] : by_tid) {
    std::vector<std::pair<double, double>> open;  // (start, end)
    for (const auto* e : events) {
      const double ts = e->get("ts")->number;
      const double end = ts + e->get("dur")->number;
      while (!open.empty() && ts >= open.back().second - kSlackUs)
        open.pop_back();
      if (!open.empty()) {
        EXPECT_LE(end, open.back().second + kSlackUs)
            << "span \"" << e->get("name")->string << "\" escapes its parent"
            << " on tid " << tid;
      }
      open.emplace_back(ts, end);
    }
  }
}

TEST(ObsTrace, SimulatorTraceParses) {
  const Graph g = models::alexnet();
  const Simulator sim(g, MachineSpec::gtx1080ti(4));
  SimTrace trace;
  sim.simulate(data_parallel_strategy(g, 4), &trace);
  ASSERT_FALSE(trace.events.empty());

  const auto parsed = testing::JsonParser::parse(to_chrome_trace_json(trace));
  ASSERT_TRUE(parsed.has_value()) << "sim trace is not valid JSON";
  const auto by_tid = parse_and_check_trace(*parsed);
  // The sim timeline is single-lane and covers every graph layer's compute
  // slice (comm slices add " (comm)" twins).
  ASSERT_EQ(by_tid.size(), 1u);
  std::set<std::string> names;
  for (const auto* e : by_tid.at(0)) names.insert(e->get("name")->string);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_TRUE(names.count(g.node(v).name))
        << "layer " << g.node(v).name << " missing from the sim trace";
}

TEST(ObsTrace, DpTraceNestsAndCoversPhases) {
  const Graph g = models::alexnet();
  TraceSession session;
  DpOptions options;
  options.config_options.max_devices = 4;
  options.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(4));
  options.trace = &session;
  const DpResult r = find_best_strategy(g, options);
  ASSERT_EQ(r.status, DpStatus::kOk);

  const auto parsed = testing::JsonParser::parse(session.to_chrome_json());
  ASSERT_TRUE(parsed.has_value()) << "DP trace is not valid JSON";
  const auto by_tid = parse_and_check_trace(*parsed);
  check_nesting(by_tid);

  std::map<std::string, i64> counts;
  for (const auto& [tid, events] : by_tid)
    for (const auto* e : events) ++counts[e->get("name")->string];
  EXPECT_EQ(counts["ordering"], 1);
  EXPECT_EQ(counts["configs"], 1);
  EXPECT_EQ(counts["back_substitution"], 1);
  EXPECT_EQ(counts["dep_sets"], g.num_nodes());
  EXPECT_EQ(counts["table_fill"], g.num_nodes());
}

// Every zoo model the paper evaluates gets a full DP run with both sinks
// attached; labeled slow (tests/CMakeLists.txt).
TEST(ObsZoo, EveryPaperBenchmarkEmitsValidTraceAndMetrics) {
  for (const auto& b : models::paper_benchmarks()) {
    TraceSession session;
    MetricsRegistry reg;
    DpOptions options;
    options.config_options.max_devices = 4;
    options.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(4));
    options.trace = &session;
    options.metrics = &reg;
    const DpResult r = find_best_strategy(b.graph, options);
    ASSERT_EQ(r.status, DpStatus::kOk) << b.name;

    const auto parsed = testing::JsonParser::parse(session.to_chrome_json());
    ASSERT_TRUE(parsed.has_value()) << b.name << ": trace is not valid JSON";
    const auto by_tid = parse_and_check_trace(*parsed);
    check_nesting(by_tid);
    ASSERT_FALSE(by_tid.empty()) << b.name;

    // Non-empty phase coverage on the main lane, per model.
    std::map<std::string, i64> counts;
    for (const auto& [tid, events] : by_tid)
      for (const auto* e : events) ++counts[e->get("name")->string];
    for (const char* phase :
         {"ordering", "configs", "dep_sets", "table_fill",
          "back_substitution"})
      EXPECT_GE(counts[phase], 1) << b.name << " missing phase " << phase;
    EXPECT_EQ(counts["dep_sets"], b.graph.num_nodes()) << b.name;
    EXPECT_EQ(counts["table_fill"], b.graph.num_nodes()) << b.name;

    // The metrics snapshot agrees with the solver's own diagnostics.
    EXPECT_EQ(reg.counter("dp.status.ok"), 1u) << b.name;
    EXPECT_EQ(reg.counter("dp.vertices"),
              static_cast<u64>(b.graph.num_nodes()))
        << b.name;
    EXPECT_EQ(reg.counter("dp.cost_cache.hits"), r.cost_cache_hits)
        << b.name;
    EXPECT_EQ(reg.counter("dp.cost_cache.misses"), r.cost_cache_misses)
        << b.name;
    EXPECT_EQ(reg.histogram("dp.dep_set_size").count,
              static_cast<u64>(b.graph.num_nodes()))
        << b.name;
    ASSERT_TRUE(
        testing::JsonParser::parse(reg.to_json()).has_value())
        << b.name;
  }
}

}  // namespace
}  // namespace pase
