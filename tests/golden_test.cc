// Golden-output regression harness: runs the real pase_cli binary (path
// injected by CMake as PASE_CLI_PATH) over the corpus models plus a curated
// zoo subset, normalizes the volatile fields (wall-clock search time,
// temp-file paths), and diffs the result against the expect files under
// tests/corpus/golden/. Any textual drift in the CLI's report — table
// layout, cost figures, simulated step times, strategy choices — fails
// here with a unified context diff.
//
// Updating intentionally-changed output:
//   PASE_UPDATE_GOLDEN=1 ctest -R Golden    # rewrites the expect files
// then review the diff in git like any other source change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pase {
namespace {

#ifndef PASE_CLI_PATH
#error "PASE_CLI_PATH must be defined by the build"
#endif
#ifndef PASE_SOURCE_DIR
#error "PASE_SOURCE_DIR must be defined by the build"
#endif

std::string golden_dir() {
  return std::string(PASE_SOURCE_DIR) + "/tests/corpus/golden/";
}

/// Runs `cmd` (stderr folded into stdout) and returns (exit code, output).
std::pair<int, std::string> run_command(const std::string& cmd) {
  std::FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (!pipe) return {-1, "popen failed"};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = ::pclose(pipe);
  return {status, out};
}

/// Scratch directory for per-test output files the CLI writes.
std::string temp_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base ? base : "/tmp") + "/pase_golden";
  const std::string cmd = "mkdir -p '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) ADD_FAILURE() << "cannot create " << dir;
  return dir;
}

/// Blanks the volatile fields so the remainder is a pure function of the
/// input: wall-clock search times ("search: 12.3 ms" -> "search: X ms") and
/// the scratch paths of written files.
std::string normalize(std::string text, const std::string& scratch) {
  // Replace every occurrence of the scratch dir first, so path suffixes
  // stay comparable ("<TMP>/metrics.json"). Ditto the source dir, which
  // the CLI echoes for --machine-spec files.
  for (size_t at = text.find(scratch); at != std::string::npos;
       at = text.find(scratch, at))
    text.replace(at, scratch.size(), "<TMP>");
  const std::string src = PASE_SOURCE_DIR;
  for (size_t at = text.find(src); at != std::string::npos;
       at = text.find(src, at))
    text.replace(at, src.size(), "<SRC>");

  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line)) {
    const size_t s = line.find("search: ");
    if (s != std::string::npos) {
      const size_t from = s + std::string("search: ").size();
      const size_t ms = line.find(" ms", from);
      if (ms != std::string::npos) line.replace(from, ms - from, "X");
    }
    out += line;
    out += '\n';
  }
  return out;
}

void compare_to_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_dir() + name;
  if (std::getenv("PASE_UPDATE_GOLDEN")) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with PASE_UPDATE_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(actual, want.str()) << "output drifted from " << path
                                << " (PASE_UPDATE_GOLDEN=1 to accept)";
}

/// One CLI invocation checked against a golden expect file.
struct CliCase {
  const char* golden;  ///< expect file name under tests/corpus/golden/
  const char* args;    ///< everything after the binary; %SRC% = source dir
};

class Golden : public ::testing::TestWithParam<CliCase> {};

TEST_P(Golden, CliOutputMatches) {
  const CliCase& c = GetParam();
  std::string args = c.args;
  for (size_t at = args.find("%SRC%"); at != std::string::npos;
       at = args.find("%SRC%", at))
    args.replace(at, 5, PASE_SOURCE_DIR);

  const auto [status, raw] =
      run_command(std::string(PASE_CLI_PATH) + " " + args);
  EXPECT_EQ(status, 0) << "pase_cli failed:\n" << raw;
  compare_to_golden(c.golden, normalize(raw, temp_dir()));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Golden,
    ::testing::Values(
        CliCase{"example_model.txt",
                "%SRC%/tools/example_model.pase --devices 8 --threads 2 "
                "--baseline"},
        CliCase{"dense_model.txt",
                "%SRC%/tools/dense_model.pase --devices 8 --threads 2"},
        CliCase{"valid_tiny.txt",
                "%SRC%/tests/corpus/valid_tiny.pase --devices 4"},
        CliCase{"valid_tiny_machine_spec.txt",
                "%SRC%/tests/corpus/valid_tiny.pase --machine-spec "
                "%SRC%/tests/corpus/machine_valid.json"},
        CliCase{"zoo_alexnet_p8.txt",
                "%SRC%/tests/corpus/zoo_alexnet.pase --devices 8 "
                "--threads 2 --baseline"},
        CliCase{"zoo_transformer_block_p8.txt",
                "%SRC%/tests/corpus/zoo_transformer_block.pase --devices 8 "
                "--comm-model auto"},
        CliCase{"zoo_resnet_large_p_splits_p8.txt",
                "--zoo resnet_large_p --devices 8 --threads 2 --split-dims "
                "batch,param,spatial,channel"},
        CliCase{"zoo_transformer_pipelined_stages_p8.txt",
                "--zoo transformer_pipelined --devices 8 --threads 2 "
                "--pipeline-stages 2"}),
    [](const ::testing::TestParamInfo<CliCase>& info) {
      std::string name = info.param.golden;
      return name.substr(0, name.find('.'));
    });

// The metrics snapshot's structural section (counters + histograms) is a
// golden artifact too: bit-identical across thread counts by contract, so
// the expect file pins it. Gauges (timings) are stripped before comparing.
TEST(GoldenMetrics, StructuralSnapshotMatches) {
  const std::string scratch = temp_dir();
  const std::string metrics_path = scratch + "/example_metrics.json";
  const auto [status, raw] = run_command(
      std::string(PASE_CLI_PATH) + " " + PASE_SOURCE_DIR +
      "/tools/example_model.pase --devices 8 --threads 2 --metrics-out " +
      metrics_path);
  ASSERT_EQ(status, 0) << raw;

  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << "CLI did not write " << metrics_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string snapshot = buf.str();
  // Structural prefix: everything before the volatile gauges section.
  const size_t gauges = snapshot.find("\"gauges\"");
  ASSERT_NE(gauges, std::string::npos) << snapshot;
  compare_to_golden("example_model_metrics.txt",
                    snapshot.substr(0, gauges) + "...gauges stripped...\n");
}

// Same contract for the Prometheus exposition (--metrics-format prom):
// counters and histograms are emitted before any gauge, so stripping from
// the first gauge TYPE line leaves the thread-count-invariant prefix.
TEST(GoldenMetrics, PrometheusSnapshotMatches) {
  const std::string scratch = temp_dir();
  const std::string metrics_path = scratch + "/example_metrics.prom";
  const auto [status, raw] = run_command(
      std::string(PASE_CLI_PATH) + " " + PASE_SOURCE_DIR +
      "/tools/example_model.pase --devices 8 --threads 2 --metrics-out " +
      metrics_path + " --metrics-format prom");
  ASSERT_EQ(status, 0) << raw;

  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << "CLI did not write " << metrics_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string snapshot = buf.str();
  // Find the first gauge TYPE header and cut at its line start.
  size_t cut = snapshot.find(" gauge\n");
  ASSERT_NE(cut, std::string::npos) << snapshot;
  cut = snapshot.rfind("# TYPE", cut);
  ASSERT_NE(cut, std::string::npos);
  compare_to_golden("example_model_metrics_prom.txt",
                    snapshot.substr(0, cut) + "...gauges stripped...\n");
}

}  // namespace
}  // namespace pase
