// Heterogeneous-cluster support (paper §V + src/hetero): the legacy
// analytical model prices compute at the weakest device; the first-class
// hetero model prices uneven proportional shards and per-group bottleneck
// links, degenerating bit-identically to the legacy path on uniform
// machines.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dp_solver.h"
#include "fault/fault_model.h"
#include "fault/robustness.h"
#include "hetero/hetero.h"
#include "hetero/machine_file.h"
#include "models/models.h"
#include "search/baselines.h"
#include "sim/simulator.h"

namespace pase {
namespace {

TEST(Heterogeneous, HomogeneousMachineIsUnchanged) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  EXPECT_DOUBLE_EQ(m.weakest_flops(), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.prefix_weakest_flops(4), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.flops_of(7), m.peak_flops);
}

TEST(Heterogeneous, MixedClusterAccessors) {
  const MachineSpec m = MachineSpec::mixed_cluster(8, 0.5);
  EXPECT_DOUBLE_EQ(m.flops_of(0), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.flops_of(7), m.peak_flops * 0.5);
  EXPECT_DOUBLE_EQ(m.weakest_flops(), m.peak_flops * 0.5);
  // The fast half occupies the rank prefix.
  EXPECT_DOUBLE_EQ(m.prefix_weakest_flops(4), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.prefix_weakest_flops(8), m.peak_flops * 0.5);
}

TEST(Heterogeneous, CostParamsUseWeakestDevice) {
  const MachineSpec m = MachineSpec::mixed_cluster(8, 0.5);
  const CostParams p = CostParams::for_machine(m);
  EXPECT_DOUBLE_EQ(
      p.r, m.peak_flops * 0.5 / m.link_bandwidth * m.compute_efficiency);
}

TEST(Heterogeneous, SimulatorSlowsDownOnWidePrefixes) {
  // A layer using only the fast prefix runs at full speed; one spanning
  // the slow half is bottlenecked by it.
  const Graph g = models::mlp(64, {256, 256});
  const MachineSpec fast = MachineSpec::gtx1080ti(8);
  const MachineSpec mixed = MachineSpec::mixed_cluster(8, 0.5);
  const Strategy wide = data_parallel_strategy(g, 8);
  const Strategy narrow = data_parallel_strategy(g, 4);
  // Compare pure compute time (the step may be communication-dominated).
  const double slowdown_wide =
      Simulator(g, mixed).simulate(wide).compute_time_s /
      Simulator(g, fast).simulate(wide).compute_time_s;
  const double slowdown_narrow =
      Simulator(g, mixed).simulate(narrow).compute_time_s /
      Simulator(g, fast).simulate(narrow).compute_time_s;
  EXPECT_NEAR(slowdown_wide, 2.0, 1e-9);    // hits the 0.5x devices
  EXPECT_NEAR(slowdown_narrow, 1.0, 1e-9);  // stays on the fast prefix
}

TEST(Heterogeneous, SolverStillBeatsDataParallelism) {
  const MachineSpec m = MachineSpec::mixed_cluster(16, 0.6);
  for (const auto& bench : models::paper_benchmarks()) {
    DpOptions opt;
    opt.config_options.max_devices = 16;
    opt.cost_params = CostParams::for_machine(m);
    const DpResult r = find_best_strategy(bench.graph, opt);
    ASSERT_EQ(r.status, DpStatus::kOk) << bench.name;
    const CostModel cm(bench.graph, opt.cost_params);
    EXPECT_LE(r.best_cost,
              cm.total_cost(data_parallel_strategy(bench.graph, 16)) *
                  (1 + 1e-9))
        << bench.name;
  }
}

TEST(Heterogeneous, FlopsOfChecksBounds) {
  const MachineSpec m = MachineSpec::mixed_cluster(4);
  EXPECT_DOUBLE_EQ(m.flops_of(3), m.peak_flops * 0.6);
}

// --- HeteroModel: placement, tables, degeneration -------------------------

TEST(HeteroModel, PlacementIsFastestFirstWithRankTiebreak) {
  MachineSpec m = MachineSpec::gtx1080ti(4);
  m.device_flops = {1e12, 3e12, 2e12, 3e12};  // interleaved speeds
  const HeteroModel h(m);
  EXPECT_FALSE(h.uniform());
  // Descending FLOPS, ties broken by ascending physical rank.
  EXPECT_EQ(h.placement(), (std::vector<i64>{1, 3, 2, 0}));
  EXPECT_DOUBLE_EQ(h.effective_flops(1), 3e12);
  EXPECT_DOUBLE_EQ(h.effective_flops(2), 6e12);
  EXPECT_DOUBLE_EQ(h.effective_flops(4), 9e12);
  // Physical extent of the fastest-g prefix (max physical rank + 1).
  EXPECT_EQ(h.placed_span(1), 2);
  EXPECT_EQ(h.placed_span(2), 4);
  EXPECT_EQ(h.placed_span(4), 4);
}

TEST(HeteroModel, ComputeScaleIsProportionalShardSpeedup) {
  const MachineSpec m = MachineSpec::mixed_cluster(8, 0.5);
  const HeteroModel h(m);
  const double fast = m.peak_flops, slow = 0.5 * m.peak_flops;
  // A degree-4 layer lives entirely on the fast prefix: proportional
  // shards run at fast speed, i.e. half the weakest-device time.
  EXPECT_DOUBLE_EQ(h.compute_scale(4), 4 * slow / (4 * fast));
  // Spanning the whole pod mixes both speeds.
  EXPECT_DOUBLE_EQ(h.compute_scale(8), 8 * slow / (4 * fast + 4 * slow));
  for (i64 g = 1; g <= 8; ++g) EXPECT_LE(h.compute_scale(g), 1.0 + 1e-12);
}

TEST(HeteroModel, GroupBandwidthFollowsLinkTiers) {
  const MachineSpec m = MachineSpec::multi_tier(32);
  const HeteroModel h(m);
  EXPECT_FALSE(h.uniform());
  EXPECT_DOUBLE_EQ(h.group_bandwidth(4), 12e9);   // PCIe island
  EXPECT_DOUBLE_EQ(h.group_bandwidth(8), 12e9);
  EXPECT_DOUBLE_EQ(h.group_bandwidth(16), 7e9);   // IB rack
  EXPECT_DOUBLE_EQ(h.group_bandwidth(32), 3e9);   // pod spine
  // group_r never exceeds the legacy weakest-link ratio.
  const CostParams legacy = CostParams::for_machine(m);
  for (i64 g = 1; g <= 32; ++g)
    EXPECT_LE(h.group_r(g), legacy.r * (1 + 1e-12)) << "group " << g;
}

TEST(HeteroModel, UniformMachineInstallsNoTables) {
  for (const MachineSpec& m :
       {MachineSpec::gtx1080ti(8), MachineSpec::rtx2080ti(16)}) {
    EXPECT_TRUE(HeteroModel(m).uniform()) << m.name;
    const CostParams hetero = hetero_cost_params(m);
    const CostParams legacy = CostParams::for_machine(m);
    EXPECT_FALSE(hetero.heterogeneity_aware()) << m.name;
    EXPECT_EQ(hetero.r, legacy.r) << m.name;
    EXPECT_EQ(hetero.gradient_comm_discount, legacy.gradient_comm_discount)
        << m.name;
  }
  EXPECT_FALSE(HeteroModel(MachineSpec::mixed_pod(8)).uniform());
  EXPECT_FALSE(HeteroModel(MachineSpec::multi_tier(16)).uniform());
}

TEST(HeteroModel, SignatureNamesMachineAndHeterogeneity) {
  EXPECT_EQ(machine_signature(MachineSpec::gtx1080ti(8)), "1080Ti/p8");
  EXPECT_EQ(machine_signature(MachineSpec::mixed_pod(16)),
            "MixedPod/p16/het");
  EXPECT_EQ(machine_signature(MachineSpec::multi_tier(32)),
            "MultiTier/p32/het");
}

TEST(HeteroModel, MixedPodTierSpansAreStrictlyIncreasingAtAnySize) {
  for (const i64 p : {4, 8, 16, 32}) {
    const MachineSpec m = MachineSpec::mixed_pod(p);
    i64 prev = 0;
    for (const LinkTier& t : m.link_tiers) {
      EXPECT_GT(t.span, prev) << "mixed_pod(" << p << ")";
      prev = t.span;
    }
    EXPECT_GE(m.link_tiers.back().span, p);
  }
}

// --- Degenerate-uniform contract over the whole zoo -----------------------

const std::vector<std::string>& zoo_names() {
  static const std::vector<std::string> names = {
      "alexnet", "inception_v3", "rnnlm",        "transformer", "densenet",
      "resnet50", "vgg16",       "mobilenet_v1", "gnmt",        "mlp"};
  return names;
}

// A machine-spec JSON spelling of the 1080Ti preset. Parsing it must
// reproduce MachineSpec::gtx1080ti bit-identically (strtod and the C++
// literal round the same decimal to the same double).
constexpr char kUniform1080TiSpec[] = R"({
  "name": "1080Ti",
  "devices": 8,
  "devices_per_node": 8,
  "peak_flops": 11.3e12,
  "intra_node_bandwidth": 12e9,
  "inter_node_bandwidth": 7e9,
  "link_bandwidth": 7e9,
  "gradient_comm_discount": 0.15
})";

TEST(HeteroDegenerate, UniformSpecReproducesLegacyAcrossZooAndThreads) {
  MachineSpec spec;
  std::string error;
  ASSERT_TRUE(parse_machine_spec(kUniform1080TiSpec, &spec, &error)) << error;
  ASSERT_TRUE(HeteroModel(spec).uniform());

  const MachineSpec legacy_machine = MachineSpec::gtx1080ti(8);
  for (const std::string& name : zoo_names()) {
    auto graph = models::zoo_graph(name);
    ASSERT_TRUE(graph.has_value()) << name;

    DpOptions legacy;
    legacy.config_options.max_devices = 8;
    legacy.cost_params = CostParams::for_machine(legacy_machine);
    legacy.num_threads = 1;
    // densenet trips the table guard; the degraded beam fallback is
    // deterministic too, so the bit-identity contract covers it as well.
    legacy.degraded_fallback = true;
    const DpResult want = find_best_strategy(*graph, legacy);
    ASSERT_TRUE(want.status == DpStatus::kOk ||
                want.status == DpStatus::kDegraded)
        << name;

    for (const i64 threads : {1, 4, 8}) {
      DpOptions hetero = legacy;
      hetero.cost_params = hetero_cost_params(spec);
      hetero.num_threads = threads;
      const DpResult got = find_best_strategy(*graph, hetero);
      ASSERT_EQ(got.status, want.status) << name;
      EXPECT_EQ(got.best_cost, want.best_cost)
          << name << " at " << threads << " threads";
      EXPECT_TRUE(got.strategy == want.strategy)
          << name << " at " << threads << " threads";
    }
  }
}

// --- Property: heterogeneity-aware pricing never exceeds the legacy
// weakest-device model (term-by-term compute_scale <= 1, group_r <= r) ----

TEST(HeteroProperty, HeteroCostAtMostHomogWeakestOnEveryZooModel) {
  const MachineSpec m = MachineSpec::mixed_pod(8);
  const CostParams hetero = hetero_cost_params(m);
  const CostParams legacy = CostParams::for_machine(m);
  for (const std::string& name : zoo_names()) {
    auto graph = models::zoo_graph(name);
    ASSERT_TRUE(graph.has_value()) << name;
    const CostModel hetero_cm(*graph, hetero);
    const CostModel legacy_cm(*graph, legacy);
    const Strategy dp = data_parallel_strategy(*graph, m.num_devices);
    EXPECT_LE(hetero_cm.total_cost(dp),
              legacy_cm.total_cost(dp) * (1 + 1e-12))
        << name;

    DpOptions opt;
    opt.config_options.max_devices = m.num_devices;
    opt.cost_params = hetero;
    opt.degraded_fallback = true;  // densenet trips the table guard
    const DpResult r = find_best_strategy(*graph, opt);
    ASSERT_TRUE(r.status == DpStatus::kOk || r.status == DpStatus::kDegraded)
        << name;
    EXPECT_LE(hetero_cm.total_cost(r.strategy),
              legacy_cm.total_cost(r.strategy) * (1 + 1e-12))
        << name;
  }
}

// --- Fault <-> hetero composition: a straggler-degraded cluster IS a
// heterogeneous machine, and both paths search it identically --------------

TEST(HeteroFault, ResolveEqualsPlainSolveOnEquivalentHeteroMachine) {
  const Graph graph = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);

  const FaultSpecParseResult parsed =
      parse_fault_spec("straggler=2:3,links=0.8:0.5");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const FaultModel fault_model(parsed.spec, /*seed=*/1);

  DpOptions options;
  options.config_options.max_devices = 8;
  options.cost_params = CostParams::for_machine(healthy);
  const DpResult baseline = find_best_strategy(graph, options);
  ASSERT_EQ(baseline.status, DpStatus::kOk);

  DpContext context;
  const RobustnessReport report = evaluate_robustness_with_resolve(
      graph, healthy, baseline.strategy, fault_model, options, &context,
      /*num_scenarios=*/4, CommModelKind::kSimple);
  ASSERT_TRUE(report.resolved);
  ASSERT_EQ(report.resolve_status, DpStatus::kOk);

  // The same degraded machine, searched directly through the hetero path.
  const MachineSpec degraded = fault_model.perturb(healthy);
  EXPECT_FALSE(HeteroModel(degraded).uniform());
  DpOptions direct = options;
  direct.cost_params = hetero_cost_params(degraded, CommModelKind::kSimple);
  const DpResult plain = find_best_strategy(graph, direct);
  ASSERT_EQ(plain.status, DpStatus::kOk);
  EXPECT_TRUE(report.resolve_strategy == plain.strategy);
  EXPECT_EQ(Simulator(graph, degraded, CommModelKind::kSimple)
                .simulate(plain.strategy)
                .step_time_s,
            report.resolve_degraded.step_time_s);
}

TEST(HeteroFault, UniformDegradationKeepsLegacyParamsBitIdentically) {
  // A fault that slows every link equally leaves the spec uniform, so the
  // resolve path's hetero_cost_params is the legacy for_machine verbatim.
  const MachineSpec healthy = MachineSpec::gtx1080ti(4);
  const FaultSpecParseResult parsed = parse_fault_spec("links=0.5:0.5");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const MachineSpec degraded =
      FaultModel(parsed.spec, 1).perturb(healthy);
  EXPECT_TRUE(HeteroModel(degraded).uniform());
  const CostParams hetero = hetero_cost_params(degraded);
  const CostParams legacy = CostParams::for_machine(degraded);
  EXPECT_FALSE(hetero.heterogeneity_aware());
  EXPECT_EQ(hetero.r, legacy.r);
}

// --- Machine-spec file parser ---------------------------------------------

MachineSpec parse_ok(const std::string& text) {
  MachineSpec m;
  std::string error;
  EXPECT_TRUE(parse_machine_spec(text, &m, &error)) << error;
  return m;
}

std::string parse_error(const std::string& text) {
  MachineSpec m;
  std::string error;
  EXPECT_FALSE(parse_machine_spec(text, &m, &error));
  return error;
}

TEST(MachineFile, ParsesHeterogeneousSpec) {
  const MachineSpec m = parse_ok(R"({
    "name": "Pod",
    "devices": 4,
    "devices_per_node": 2,
    "device_flops": [2e12, 2e12, 1e12, 1e12],
    "link_tiers": [{"span": 2, "bandwidth": 12e9},
                   {"span": 4, "bandwidth": 3e9, "latency_s": 2e-5}],
    "link_latency_s": 5e-6
  })");
  EXPECT_EQ(m.name, "Pod");
  EXPECT_EQ(m.num_devices, 4);
  EXPECT_DOUBLE_EQ(m.peak_flops, 2e12);  // defaults to the fastest device
  EXPECT_DOUBLE_EQ(m.link_bandwidth, 3e9);  // weakest link anywhere
  ASSERT_EQ(m.link_tiers.size(), 2u);
  EXPECT_DOUBLE_EQ(m.link_tiers[0].latency_s, 5e-6);  // default latency
  EXPECT_DOUBLE_EQ(m.link_tiers[1].latency_s, 2e-5);
  EXPECT_FALSE(HeteroModel(m).uniform());
}

TEST(MachineFile, RejectsMalformedSpecs) {
  EXPECT_NE(parse_error("not json"), "");
  EXPECT_NE(parse_error("[1,2]").find("top level"), std::string::npos);
  EXPECT_NE(parse_error(R"({"peak_flops": 1e12, "link_bandwidth": 1e9})")
                .find("\"devices\" is required"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"devices": 2, "link_bandwidth": 1e9})")
                .find("\"peak_flops\" or \"device_flops\""),
            std::string::npos);
  EXPECT_NE(parse_error(
                R"({"devices": 2, "device_flops": [1e12, -1.0],
                    "link_bandwidth": 1e9})")
                .find("must be a positive number"),
            std::string::npos);
  EXPECT_NE(parse_error(
                R"({"devices": 4, "device_flops": [1e12, 1e12],
                    "link_bandwidth": 1e9})")
                .find("2 entries but \"devices\" is 4"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"devices": 2, "peak_flops": 1e12})")
                .find("no link given"),
            std::string::npos);
  EXPECT_NE(parse_error(
                R"({"devices": 2, "peak_flops": 1e12,
                    "link_bandwidth": 1e9, "warp_drive": 11})")
                .find("unknown key \"warp_drive\""),
            std::string::npos);
  // Tier spans must strictly increase and cover the machine.
  EXPECT_NE(parse_error(
                R"({"devices": 4, "peak_flops": 1e12, "link_tiers":
                    [{"span": 2, "bandwidth": 1e9},
                     {"span": 2, "bandwidth": 1e9}]})")
                .find("strictly increasing"),
            std::string::npos);
  EXPECT_NE(parse_error(
                R"({"devices": 8, "peak_flops": 1e12, "link_tiers":
                    [{"span": 2, "bandwidth": 1e9}]})")
                .find("cover only 2 of 8"),
            std::string::npos);
}

TEST(MachineFile, CorpusFilesBehaveAsDocumented) {
  const std::string corpus = std::string(PASE_SOURCE_DIR) + "/tests/corpus/";
  MachineSpec m;
  std::string error;
  EXPECT_TRUE(load_machine_spec(corpus + "machine_valid.json", &m, &error))
      << error;
  EXPECT_EQ(m.num_devices, 4);
  EXPECT_FALSE(HeteroModel(m).uniform());
  for (const char* f : {"machine_negative_flops.json",
                        "machine_missing_link.json",
                        "machine_count_mismatch.json"}) {
    EXPECT_FALSE(load_machine_spec(corpus + f, &m, &error)) << f;
    EXPECT_NE(error, "") << f;
  }
  EXPECT_FALSE(load_machine_spec(corpus + "no_such_machine.json", &m, &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

// --- Hetero-aware search end to end ---------------------------------------

TEST(HeteroSearch, DeterministicAcrossThreadCountsOnMixedPod) {
  const MachineSpec m = MachineSpec::mixed_pod(16);
  const Graph graph = models::alexnet();
  DpOptions opt;
  opt.config_options.max_devices = m.num_devices;
  opt.cost_params = hetero_cost_params(m);
  opt.num_threads = 1;
  const DpResult want = find_best_strategy(graph, opt);
  ASSERT_EQ(want.status, DpStatus::kOk);
  for (const i64 threads : {4, 8}) {
    DpOptions o = opt;
    o.num_threads = threads;
    const DpResult got = find_best_strategy(graph, o);
    ASSERT_EQ(got.status, DpStatus::kOk);
    EXPECT_EQ(got.best_cost, want.best_cost) << threads << " threads";
    EXPECT_TRUE(got.strategy == want.strategy) << threads << " threads";
  }
}

TEST(HeteroSearch, HeteroAwareSimulatorUsesEffectiveFlops) {
  // Under proportional shards a fast-prefix layer beats the weakest-device
  // rule: the hetero-aware simulator must price degree-4 compute on the
  // fast half at fast speed.
  const Graph g = models::mlp(64, {256, 256});
  const MachineSpec mixed = MachineSpec::mixed_cluster(8, 0.5);
  const Strategy narrow = data_parallel_strategy(g, 4);
  const double legacy_s =
      Simulator(g, mixed, CommModelKind::kSimple, false)
          .simulate(narrow)
          .compute_time_s;
  const double hetero_s =
      Simulator(g, mixed, CommModelKind::kSimple, true)
          .simulate(narrow)
          .compute_time_s;
  // The fast prefix has uniform speed, so proportional == even shards.
  EXPECT_NEAR(hetero_s, legacy_s, legacy_s * 1e-12);
  // Spanning both halves: proportional shards finish in W/sum(f), faster
  // than the weakest-device rule's (W/g)/f_weakest.
  const Strategy wide = data_parallel_strategy(g, 8);
  const double legacy_wide =
      Simulator(g, mixed, CommModelKind::kSimple, false)
          .simulate(wide)
          .compute_time_s;
  const double hetero_wide =
      Simulator(g, mixed, CommModelKind::kSimple, true)
          .simulate(wide)
          .compute_time_s;
  EXPECT_LT(hetero_wide, legacy_wide);
  // ratio = (W / sum f) / ((W/8) / f_weakest) = 8 * 0.5F / (4F + 4*0.5F).
  EXPECT_NEAR(hetero_wide / legacy_wide, 8 * 0.5 / (4.0 + 4 * 0.5), 1e-9);
}

}  // namespace
}  // namespace pase
