// Heterogeneous-cluster support (paper §V): the analytical model prices
// compute at the weakest device; the simulator uses true per-device peaks.
#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "models/models.h"
#include "search/baselines.h"
#include "sim/simulator.h"

namespace pase {
namespace {

TEST(Heterogeneous, HomogeneousMachineIsUnchanged) {
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  EXPECT_DOUBLE_EQ(m.weakest_flops(), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.prefix_weakest_flops(4), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.flops_of(7), m.peak_flops);
}

TEST(Heterogeneous, MixedClusterAccessors) {
  const MachineSpec m = MachineSpec::mixed_cluster(8, 0.5);
  EXPECT_DOUBLE_EQ(m.flops_of(0), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.flops_of(7), m.peak_flops * 0.5);
  EXPECT_DOUBLE_EQ(m.weakest_flops(), m.peak_flops * 0.5);
  // The fast half occupies the rank prefix.
  EXPECT_DOUBLE_EQ(m.prefix_weakest_flops(4), m.peak_flops);
  EXPECT_DOUBLE_EQ(m.prefix_weakest_flops(8), m.peak_flops * 0.5);
}

TEST(Heterogeneous, CostParamsUseWeakestDevice) {
  const MachineSpec m = MachineSpec::mixed_cluster(8, 0.5);
  const CostParams p = CostParams::for_machine(m);
  EXPECT_DOUBLE_EQ(
      p.r, m.peak_flops * 0.5 / m.link_bandwidth * m.compute_efficiency);
}

TEST(Heterogeneous, SimulatorSlowsDownOnWidePrefixes) {
  // A layer using only the fast prefix runs at full speed; one spanning
  // the slow half is bottlenecked by it.
  const Graph g = models::mlp(64, {256, 256});
  const MachineSpec fast = MachineSpec::gtx1080ti(8);
  const MachineSpec mixed = MachineSpec::mixed_cluster(8, 0.5);
  const Strategy wide = data_parallel_strategy(g, 8);
  const Strategy narrow = data_parallel_strategy(g, 4);
  // Compare pure compute time (the step may be communication-dominated).
  const double slowdown_wide =
      Simulator(g, mixed).simulate(wide).compute_time_s /
      Simulator(g, fast).simulate(wide).compute_time_s;
  const double slowdown_narrow =
      Simulator(g, mixed).simulate(narrow).compute_time_s /
      Simulator(g, fast).simulate(narrow).compute_time_s;
  EXPECT_NEAR(slowdown_wide, 2.0, 1e-9);    // hits the 0.5x devices
  EXPECT_NEAR(slowdown_narrow, 1.0, 1e-9);  // stays on the fast prefix
}

TEST(Heterogeneous, SolverStillBeatsDataParallelism) {
  const MachineSpec m = MachineSpec::mixed_cluster(16, 0.6);
  for (const auto& bench : models::paper_benchmarks()) {
    DpOptions opt;
    opt.config_options.max_devices = 16;
    opt.cost_params = CostParams::for_machine(m);
    const DpResult r = find_best_strategy(bench.graph, opt);
    ASSERT_EQ(r.status, DpStatus::kOk) << bench.name;
    const CostModel cm(bench.graph, opt.cost_params);
    EXPECT_LE(r.best_cost,
              cm.total_cost(data_parallel_strategy(bench.graph, 16)) *
                  (1 + 1e-9))
        << bench.name;
  }
}

TEST(Heterogeneous, FlopsOfChecksBounds) {
  const MachineSpec m = MachineSpec::mixed_cluster(4);
  EXPECT_DOUBLE_EQ(m.flops_of(3), m.peak_flops * 0.6);
}

}  // namespace
}  // namespace pase
