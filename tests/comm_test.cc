#include <gtest/gtest.h>

#include <cmath>

#include "comm/comm_model.h"
#include "core/dp_solver.h"
#include "cost/cost_model.h"
#include "models/models.h"
#include "search/baselines.h"
#include "sim/simulator.h"

namespace pase {
namespace {

const Collective kCollectives[] = {
    Collective::kAllReduce, Collective::kAllGather,
    Collective::kReduceScatter, Collective::kBroadcast,
    Collective::kAllToAll};

const CommAlgo kAlgos[] = {CommAlgo::kRing, CommAlgo::kTree,
                           CommAlgo::kHalvingDoubling,
                           CommAlgo::kHierarchical};

TEST(CommModel, ParseKindRoundTrips) {
  for (CommModelKind k :
       {CommModelKind::kSimple, CommModelKind::kAuto, CommModelKind::kRing,
        CommModelKind::kTree, CommModelKind::kHalvingDoubling,
        CommModelKind::kHierarchical}) {
    const auto parsed = parse_comm_model_kind(comm_model_kind_name(k));
    ASSERT_TRUE(parsed.has_value()) << comm_model_kind_name(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_comm_model_kind("warp").has_value());
  EXPECT_FALSE(parse_comm_model_kind("").has_value());
}

TEST(CommModel, DegenerateShapesAreFree) {
  const CommModel cm(MachineSpec::gtx1080ti(16), CommModelKind::kAuto);
  for (Collective c : kCollectives) {
    EXPECT_EQ(cm.collective_time(c, 0.0, 16), 0.0);
    EXPECT_EQ(cm.collective_time(c, 1 << 20, 1), 0.0);
    for (CommAlgo a : kAlgos) {
      EXPECT_EQ(cm.algorithm_time(a, c, 0.0, 16), 0.0);
      EXPECT_EQ(cm.algorithm_time(a, c, 1 << 20, 1), 0.0);
    }
  }
  EXPECT_EQ(cm.point_to_point_time(0.0, 4), 0.0);
}

TEST(CommModel, CostMonotoneInBytes) {
  const CommModel cm(MachineSpec::gtx1080ti(64), CommModelKind::kAuto);
  for (Collective c : kCollectives) {
    for (CommAlgo a : kAlgos) {
      for (i64 g : {2LL, 4LL, 8LL, 16LL, 64LL}) {
        double prev = 0.0;
        for (double n = 1024.0; n <= 64.0 * (1 << 20); n *= 2.0) {
          const double t = cm.algorithm_time(a, c, n, g);
          EXPECT_GE(t, prev) << comm_algo_name(a) << " "
                             << collective_name(c) << " g=" << g
                             << " n=" << n;
          prev = t;
        }
      }
    }
  }
}

TEST(CommModel, CostMonotoneInBandwidth) {
  const MachineSpec healthy = MachineSpec::gtx1080ti(64);
  MachineSpec slow = healthy;
  slow.scale_links(0.5, 0.5);
  const CommModel fast_cm(healthy, CommModelKind::kAuto);
  const CommModel slow_cm(slow, CommModelKind::kAuto);
  for (Collective c : kCollectives) {
    for (CommAlgo a : kAlgos) {
      for (i64 g : {4LL, 8LL, 32LL, 64LL}) {
        const double n = 4.0 * (1 << 20);
        EXPECT_GE(slow_cm.algorithm_time(a, c, n, g),
                  fast_cm.algorithm_time(a, c, n, g))
            << comm_algo_name(a) << " " << collective_name(c) << " g=" << g;
      }
    }
  }
}

TEST(CommModel, LinkDegradationComposesWithHierarchicalPhases) {
  // The fault layer degrades links by perturbing the MachineSpec; a comm
  // model rebuilt from the degraded spec must slow exactly the phase that
  // crosses the degraded link.
  const MachineSpec healthy = MachineSpec::gtx1080ti(32);
  MachineSpec bad_nic = healthy;
  bad_nic.scale_links(1.0, 0.25);
  const CommModel h(healthy, CommModelKind::kHierarchical);
  const CommModel d(bad_nic, CommModelKind::kHierarchical);
  const double n = 8.0 * (1 << 20);
  const CommPhases hp = h.hierarchical_phases(Collective::kAllReduce, n, 32);
  const CommPhases dp = d.hierarchical_phases(Collective::kAllReduce, n, 32);
  EXPECT_DOUBLE_EQ(dp.intra_s, hp.intra_s);
  EXPECT_GT(dp.inter_s, hp.inter_s);
}

TEST(CommModel, SmallMessagesPreferLogarithmicAlgorithms) {
  // 64 devices, 256 bytes: latency dominates, so the O(log g)-step tree and
  // halving-doubling beat the O(g)-step ring; at 256 MiB bandwidth
  // dominates and the non-scalable tree cannot win.
  const CommModel cm(MachineSpec::gtx1080ti(64), CommModelKind::kAuto);
  const double tiny = 256.0;
  const double tree =
      cm.algorithm_time(CommAlgo::kTree, Collective::kAllReduce, tiny, 64);
  const double hd = cm.algorithm_time(CommAlgo::kHalvingDoubling,
                                      Collective::kAllReduce, tiny, 64);
  const double ring =
      cm.algorithm_time(CommAlgo::kRing, Collective::kAllReduce, tiny, 64);
  EXPECT_LT(tree, ring);
  EXPECT_LT(hd, ring);
  EXPECT_NE(cm.chosen_algorithm(Collective::kAllReduce, tiny, 64),
            CommAlgo::kRing);
  EXPECT_NE(cm.chosen_algorithm(Collective::kAllReduce, 256.0 * (1 << 20),
                                64),
            CommAlgo::kTree);
}

TEST(CommModel, HierarchicalEqualsIntraPlusInter) {
  const CommModel cm(MachineSpec::gtx1080ti(32), CommModelKind::kAuto);
  const double n = 16.0 * (1 << 20);
  for (Collective c : kCollectives) {
    // 32 devices at 8/node = 4 nodes: both phases present, and the total is
    // exactly their sum.
    const CommPhases multi = cm.hierarchical_phases(c, n, 32);
    EXPECT_GT(multi.intra_s, 0.0) << collective_name(c);
    EXPECT_GT(multi.inter_s, 0.0) << collective_name(c);
    EXPECT_DOUBLE_EQ(multi.total(),
                     cm.algorithm_time(CommAlgo::kHierarchical, c, n, 32))
        << collective_name(c);
    // A single-node group has no inter-node phase.
    const CommPhases single = cm.hierarchical_phases(c, n, 4);
    EXPECT_GT(single.intra_s, 0.0) << collective_name(c);
    EXPECT_EQ(single.inter_s, 0.0) << collective_name(c);
  }
}

TEST(CommModel, AutoNeverExceedsAnyForcedAlgorithm) {
  const MachineSpec m = MachineSpec::gtx1080ti(64);
  const CommModel autocm(m, CommModelKind::kAuto);
  for (Collective c : kCollectives) {
    for (i64 g : {2LL, 8LL, 24LL, 64LL}) {
      for (double n = 512.0; n <= 32.0 * (1 << 20); n *= 64.0) {
        const double chosen = autocm.collective_time(c, n, g);
        for (CommAlgo a : kAlgos)
          EXPECT_LE(chosen, autocm.algorithm_time(a, c, n, g))
              << collective_name(c) << " g=" << g << " n=" << n;
      }
    }
  }
}

TEST(CommModel, SimpleModeMatchesLegacyClosedForm) {
  // kSimple must price exactly what the pre-comm-library simulator
  // hard-coded: flat intra-node ring for single-node groups, the fixed
  // intra-ring + inter-ring composition across nodes.
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const CommModel cm(m, CommModelKind::kSimple);
  const double n = 4.0 * (1 << 20);
  EXPECT_DOUBLE_EQ(
      cm.collective_time(Collective::kAllReduce, n, 8),
      ring_all_reduce_bytes(n, 8) / m.intra_bw() + m.link_latency_s);
  const double expected_multi =
      2.0 * n * 7.0 / 8.0 / m.intra_bw() +
      ring_all_reduce_bytes(n / 8.0, 4) / m.inter_bw() +
      2.0 * m.link_latency_s;
  EXPECT_DOUBLE_EQ(cm.collective_time(Collective::kAllReduce, n, 32),
                   expected_multi);
  EXPECT_DOUBLE_EQ(cm.point_to_point_time(n, 4),
                   n / m.intra_bw() + m.link_latency_s);
  EXPECT_DOUBLE_EQ(cm.point_to_point_time(n, 32),
                   n / m.inter_bw() + m.link_latency_s);
}

TEST(CommCost, SimpleModeIsTheDefaultAndBitIdenticalOnZoo) {
  // for_machine(m) attaches no comm model, and the explicit kSimple params
  // price every zoo model bit-identically — the reproduction contract.
  const MachineSpec m = MachineSpec::gtx1080ti(16);
  EXPECT_EQ(CostParams::for_machine(m).comm, nullptr);
  EXPECT_EQ(CostParams::for_machine(m, CommModelKind::kSimple).comm, nullptr);
  for (const auto& b : models::paper_benchmarks()) {
    const CostModel legacy(b.graph, CostParams::for_machine(m));
    const CostModel simple(
        b.graph, CostParams::for_machine(m, CommModelKind::kSimple));
    const Strategy dp = data_parallel_strategy(b.graph, 16);
    EXPECT_EQ(legacy.total_cost(dp), simple.total_cost(dp)) << b.name;
    const Simulator legacy_sim(b.graph, m);
    const Simulator simple_sim(b.graph, m, CommModelKind::kSimple);
    EXPECT_EQ(legacy_sim.simulate(dp).step_time_s,
              simple_sim.simulate(dp).step_time_s)
        << b.name;
  }
}

TEST(CommCost, AutoModeRepricesCollectivesButNotCompute) {
  const MachineSpec m = MachineSpec::gtx1080ti(32);
  const Graph g = models::alexnet();
  const CostParams simple = CostParams::for_machine(m);
  const CostParams autop = CostParams::for_machine(m, CommModelKind::kAuto);
  const Strategy dp = data_parallel_strategy(g, 32);
  for (const Node& node : g.nodes()) {
    const Config& cfg = dp[static_cast<size_t>(node.id)];
    EXPECT_DOUBLE_EQ(layer_flops(node, cfg, simple),
                     layer_flops(node, cfg, autop));
  }
  // Data parallelism at 32 devices gradient-all-reduces every parameter:
  // the pricing backends must actually disagree somewhere.
  const CostModel simple_cm(g, simple);
  const CostModel auto_cm(g, autop);
  EXPECT_NE(simple_cm.total_cost(dp), auto_cm.total_cost(dp));
  EXPECT_GT(auto_cm.total_cost(dp), 0.0);
  EXPECT_TRUE(std::isfinite(auto_cm.total_cost(dp)));
}

TEST(Determinism, AutoCommModelBitIdenticalAcrossThreads) {
  // The kAuto choice memo is shared by every DP worker thread; results must
  // not depend on which thread selected an algorithm first.
  for (const Graph& g : {models::alexnet(), models::rnnlm()}) {
    DpOptions base;
    base.config_options.max_devices = 16;
    base.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(16),
                                               CommModelKind::kAuto);
    DpOptions seq = base;
    seq.num_threads = 1;
    const DpResult a = find_best_strategy(g, seq);
    DpOptions par = base;  // shares the same CommModel instance
    par.num_threads = 4;
    const DpResult b = find_best_strategy(g, par);
    ASSERT_EQ(a.status, DpStatus::kOk);
    ASSERT_EQ(b.status, DpStatus::kOk);
    EXPECT_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.strategy, b.strategy);
  }
}

// --- Multi-tier fabrics (src/hetero threading) ----------------------------

TEST(CommTiers, TwoLevelTiersReproduceLegacyByteIdentically) {
  // Tiers spelling out exactly the legacy intra/inter pair (same spans,
  // same bandwidths, same latency) must price every collective to the
  // exact same double as the tier-free machine.
  const MachineSpec plain = MachineSpec::gtx1080ti(32);
  MachineSpec tiered = plain;
  tiered.link_tiers = {
      {plain.devices_per_node, plain.intra_node_bandwidth,
       plain.link_latency_s},
      {32, plain.inter_node_bandwidth, plain.link_latency_s}};
  for (const CommModelKind kind :
       {CommModelKind::kSimple, CommModelKind::kAuto,
        CommModelKind::kHierarchical}) {
    const CommModel a(plain, kind);
    const CommModel b(tiered, kind);
    for (const Collective c :
         {Collective::kAllReduce, Collective::kAllGather,
          Collective::kBroadcast, Collective::kAllToAll}) {
      for (const double bytes : {512.0, 1e6, 3e8}) {
        for (const i64 group : {2, 8, 16, 32}) {
          EXPECT_EQ(a.collective_time(c, bytes, group),
                    b.collective_time(c, bytes, group))
              << collective_name(c) << " " << bytes << "B x" << group;
        }
      }
    }
    for (const i64 group : {2, 8, 32})
      EXPECT_EQ(a.point_to_point_time(1e6, group),
                b.point_to_point_time(1e6, group));
  }
}

TEST(CommTiers, GroupsPayTheirCoveringTier) {
  // multi_tier(32): PCIe island (8 @ 12 GB/s), IB rack (16 @ 7 GB/s),
  // pod spine (32 @ 3 GB/s). A bandwidth-bound all-gather's time scales
  // inversely with the covering tier's bandwidth.
  const CommModel comm(MachineSpec::multi_tier(32), CommModelKind::kSimple);
  const double bytes = 1e9;  // latency terms negligible
  const double island = comm.collective_time(Collective::kAllGather, bytes, 8);
  const double rack = comm.collective_time(Collective::kAllGather, bytes, 16);
  const double spine =
      comm.collective_time(Collective::kAllGather, bytes, 32);
  // (g-1)/g wire bytes over the tier link: island ~ (7/8)/12, rack ~
  // (15/16)/7, spine ~ (31/32)/3.
  // Latency terms shift the ratios by ~1e-4; band accordingly.
  EXPECT_NEAR(rack / island, (15.0 / 16.0) / 7e9 / ((7.0 / 8.0) / 12e9),
              2e-3);
  EXPECT_NEAR(spine / island, (31.0 / 32.0) / 3e9 / ((7.0 / 8.0) / 12e9),
              2e-3);
  // Point-to-point follows the same tier selection.
  EXPECT_NEAR(comm.point_to_point_time(bytes, 8), bytes / 12e9, 1e-4);
  EXPECT_NEAR(comm.point_to_point_time(bytes, 32), bytes / 3e9, 1e-3);
}

}  // namespace
}  // namespace pase
