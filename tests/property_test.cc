// Cross-cutting property tests: invariants that must hold for arbitrary
// graphs, configurations and device counts.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/dp_solver.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/mcmc.h"
#include "sim/memory.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace pase {
namespace {

// ---- Transfer-cost invariants on random configuration pairs.

class TransferPropertySweep : public ::testing::TestWithParam<u64> {};

TEST_P(TransferPropertySweep, NonNegativeAndZeroForIdenticalConfigs) {
  const Graph g = testing::random_graph(6, 3, GetParam());
  ConfigOptions copts;
  copts.max_devices = 8;
  const ConfigCache cache(g, copts);
  Rng rng(GetParam() * 31 + 7);
  const CostParams params;
  for (const Edge& e : g.edges()) {
    const auto& su = cache.at(e.src);
    const auto& sv = cache.at(e.dst);
    for (int trial = 0; trial < 20; ++trial) {
      const Config cu = su[rng.uniform(su.size())];
      const Config cv = sv[rng.uniform(sv.size())];
      const double bytes = transfer_bytes(e, cu, cv, params);
      EXPECT_GE(bytes, 0.0);
      // Aligned case: equal per-tensor-dim splits and equal degrees move
      // nothing.
      bool aligned = cu.degree() == cv.degree();
      for (size_t t = 0; aligned && t < e.shape.size(); ++t) {
        const i64 a = e.src_dims[t] >= 0 ? cu[e.src_dims[t]] : 1;
        const i64 b = e.dst_dims[t] >= 0 ? cv[e.dst_dims[t]] : 1;
        aligned = a == b;
      }
      if (aligned) EXPECT_DOUBLE_EQ(bytes, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferPropertySweep,
                         ::testing::Values(21, 22, 23, 24));

// ---- Layer-cost invariants across the whole configuration space.

TEST(LayerCostProperty, FiniteAndPositiveForEveryConfig) {
  ConfigOptions copts;
  copts.max_devices = 16;
  CostParams params = CostParams::for_machine(MachineSpec::gtx1080ti(16));
  for (const auto& bench : models::paper_benchmarks()) {
    for (const Node& n : bench.graph.nodes()) {
      for (const Config& c : enumerate_node_configs(n, copts)) {
        const double cost = layer_cost(n, c, params);
        EXPECT_TRUE(std::isfinite(cost)) << bench.name << " " << n.name;
        EXPECT_GE(cost, 0.0) << bench.name << " " << n.name;
      }
    }
  }
}

// ---- Solver invariants at an unusual (non-power-of-two) device count.

TEST(SolverProperty, WorksWithNonPowerOfTwoDeviceCount) {
  const Graph g = models::alexnet();
  DpOptions opt;
  opt.config_options.max_devices = 6;  // factors stay powers of two
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(6));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  for (const Config& c : r.strategy) EXPECT_LE(c.degree(), 6);
}

TEST(SolverProperty, OptimumMonotoneInSearchSpace) {
  // A strictly larger configuration space can only lower the optimum.
  const Graph g = models::transformer();
  DpOptions small, large;
  small.config_options.max_devices = 8;
  large.config_options.max_devices = 8;
  large.config_options.powers_of_two_only = false;
  small.cost_params = large.cost_params =
      CostParams::for_machine(MachineSpec::gtx1080ti(8));
  EXPECT_LE(find_best_strategy(g, large).best_cost,
            find_best_strategy(g, small).best_cost * (1 + 1e-9));
}

// ---- MCMC with the simulator objective (FlexFlow's actual architecture).

TEST(McmcProperty, SimulatorObjectiveImprovesSimulatedStepTime) {
  const Graph g = models::alexnet();
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  auto sim = std::make_shared<Simulator>(g, m);
  ConfigOptions copts;
  copts.max_devices = 8;
  McmcOptions mo;
  mo.max_iterations = 4000;
  mo.min_iterations = 1000;
  mo.objective = [sim](const Strategy& phi) {
    return sim->simulate(phi).step_time_s;
  };
  const Strategy init = data_parallel_strategy(g, 8);
  const McmcResult r =
      mcmc_search(g, copts, CostParams::for_machine(m), init, mo);
  EXPECT_LE(r.best_cost, sim->simulate(init).step_time_s * (1 + 1e-9));
  // best_cost is in the objective's units: seconds.
  EXPECT_NEAR(r.best_cost, sim->simulate(r.best_strategy).step_time_s,
              1e-12);
}

// ---- Simulator invariants across strategies.

TEST(SimulatorProperty, AnyValidStrategySimulates) {
  const Graph g = models::inception_v3();
  const Simulator sim(g, MachineSpec::rtx2080ti(16));
  ConfigOptions copts;
  copts.max_devices = 16;
  const ConfigCache cache(g, copts);
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Strategy phi;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      phi.push_back(cache.at(v)[rng.uniform(cache.at(v).size())]);
    const SimResult r = sim.simulate(phi);
    EXPECT_TRUE(std::isfinite(r.step_time_s));
    EXPECT_GT(r.step_time_s, 0.0);
    EXPECT_GE(r.step_time_s, 0.9 * r.compute_time_s / 16.0);
  }
}

TEST(SimulatorProperty, StepTimeLowerBoundedByBottleneckCompute) {
  // No strategy can beat the serial compute divided by all devices.
  const Graph g = models::alexnet();
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Simulator sim(g, m);
  CostParams params = CostParams::for_machine(m);
  double serial_flops = 0.0;
  for (const Node& n : g.nodes())
    serial_flops += layer_flops(n, Config::ones(n.space.rank()), params);
  const double bound = serial_flops / (8.0 * m.peak_flops);
  DpOptions opt;
  opt.config_options.max_devices = 8;
  opt.cost_params = params;
  const DpResult r = find_best_strategy(g, opt);
  EXPECT_GE(sim.simulate(r.strategy).step_time_s, bound);
}

// ---- Memory estimator consistency with node-level accounting.

TEST(MemoryProperty, NodeSumsBoundTheEstimate) {
  const Graph g = models::alexnet();
  const Strategy phi = owt_strategy(g, 8);
  double node_sum = 0.0;
  for (const Node& n : g.nodes())
    node_sum += node_memory_bytes(n, phi[static_cast<size_t>(n.id)]);
  const MemoryFootprint fp = estimate_memory(g, phi);
  // Node-level accounting covers params + outputs + collective buffers;
  // the full estimate additionally holds consumer-side activation shards.
  EXPECT_GE(fp.total(), fp.parameter_bytes);
  EXPECT_GT(node_sum, fp.parameter_bytes);
}

}  // namespace
}  // namespace pase
