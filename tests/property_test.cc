// Cross-cutting property tests: invariants that must hold for arbitrary
// graphs, configurations and device counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "comm/comm_model.h"
#include "config/config_enum.h"
#include "core/dp_solver.h"
#include "cost/cost_model.h"
#include "models/models.h"
#include "ops/ops.h"
#include "search/baselines.h"
#include "search/mcmc.h"
#include "sim/memory.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace pase {
namespace {

// ---- Transfer-cost invariants on random configuration pairs.

class TransferPropertySweep : public ::testing::TestWithParam<u64> {};

TEST_P(TransferPropertySweep, NonNegativeAndZeroForIdenticalConfigs) {
  const Graph g = testing::random_graph(6, 3, GetParam());
  ConfigOptions copts;
  copts.max_devices = 8;
  const ConfigCache cache(g, copts);
  Rng rng(GetParam() * 31 + 7);
  const CostParams params;
  for (const Edge& e : g.edges()) {
    const auto& su = cache.at(e.src);
    const auto& sv = cache.at(e.dst);
    for (int trial = 0; trial < 20; ++trial) {
      const Config cu = su[rng.uniform(su.size())];
      const Config cv = sv[rng.uniform(sv.size())];
      const double bytes = transfer_bytes(e, cu, cv, params);
      EXPECT_GE(bytes, 0.0);
      // Aligned case: equal per-tensor-dim splits and equal degrees move
      // nothing.
      bool aligned = cu.degree() == cv.degree();
      for (size_t t = 0; aligned && t < e.shape.size(); ++t) {
        const i64 a = e.src_dims[t] >= 0 ? cu[e.src_dims[t]] : 1;
        const i64 b = e.dst_dims[t] >= 0 ? cv[e.dst_dims[t]] : 1;
        aligned = a == b;
      }
      if (aligned) EXPECT_DOUBLE_EQ(bytes, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferPropertySweep,
                         ::testing::Values(21, 22, 23, 24));

// ---- Layer-cost invariants across the whole configuration space.

TEST(LayerCostProperty, FiniteAndPositiveForEveryConfig) {
  ConfigOptions copts;
  copts.max_devices = 16;
  CostParams params = CostParams::for_machine(MachineSpec::gtx1080ti(16));
  for (const auto& bench : models::paper_benchmarks()) {
    for (const Node& n : bench.graph.nodes()) {
      for (const Config& c : enumerate_node_configs(n, copts)) {
        const double cost = layer_cost(n, c, params);
        EXPECT_TRUE(std::isfinite(cost)) << bench.name << " " << n.name;
        EXPECT_GE(cost, 0.0) << bench.name << " " << n.name;
      }
    }
  }
}

// ---- Solver invariants at an unusual (non-power-of-two) device count.

TEST(SolverProperty, WorksWithNonPowerOfTwoDeviceCount) {
  const Graph g = models::alexnet();
  DpOptions opt;
  opt.config_options.max_devices = 6;  // factors stay powers of two
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(6));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  for (const Config& c : r.strategy) EXPECT_LE(c.degree(), 6);
}

TEST(SolverProperty, OptimumMonotoneInSearchSpace) {
  // A strictly larger configuration space can only lower the optimum.
  const Graph g = models::transformer();
  DpOptions small, large;
  small.config_options.max_devices = 8;
  large.config_options.max_devices = 8;
  large.config_options.powers_of_two_only = false;
  small.cost_params = large.cost_params =
      CostParams::for_machine(MachineSpec::gtx1080ti(8));
  EXPECT_LE(find_best_strategy(g, large).best_cost,
            find_best_strategy(g, small).best_cost * (1 + 1e-9));
}

// ---- MCMC with the simulator objective (FlexFlow's actual architecture).

TEST(McmcProperty, SimulatorObjectiveImprovesSimulatedStepTime) {
  const Graph g = models::alexnet();
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  auto sim = std::make_shared<Simulator>(g, m);
  ConfigOptions copts;
  copts.max_devices = 8;
  McmcOptions mo;
  mo.max_iterations = 4000;
  mo.min_iterations = 1000;
  mo.objective = [sim](const Strategy& phi) {
    return sim->simulate(phi).step_time_s;
  };
  const Strategy init = data_parallel_strategy(g, 8);
  const McmcResult r =
      mcmc_search(g, copts, CostParams::for_machine(m), init, mo);
  EXPECT_LE(r.best_cost, sim->simulate(init).step_time_s * (1 + 1e-9));
  // best_cost is in the objective's units: seconds.
  EXPECT_NEAR(r.best_cost, sim->simulate(r.best_strategy).step_time_s,
              1e-12);
}

// ---- Simulator invariants across strategies.

TEST(SimulatorProperty, AnyValidStrategySimulates) {
  const Graph g = models::inception_v3();
  const Simulator sim(g, MachineSpec::rtx2080ti(16));
  ConfigOptions copts;
  copts.max_devices = 16;
  const ConfigCache cache(g, copts);
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Strategy phi;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      phi.push_back(cache.at(v)[rng.uniform(cache.at(v).size())]);
    const SimResult r = sim.simulate(phi);
    EXPECT_TRUE(std::isfinite(r.step_time_s));
    EXPECT_GT(r.step_time_s, 0.0);
    EXPECT_GE(r.step_time_s, 0.9 * r.compute_time_s / 16.0);
  }
}

TEST(SimulatorProperty, StepTimeLowerBoundedByBottleneckCompute) {
  // No strategy can beat the serial compute divided by all devices.
  const Graph g = models::alexnet();
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Simulator sim(g, m);
  CostParams params = CostParams::for_machine(m);
  double serial_flops = 0.0;
  for (const Node& n : g.nodes())
    serial_flops += layer_flops(n, Config::ones(n.space.rank()), params);
  const double bound = serial_flops / (8.0 * m.peak_flops);
  DpOptions opt;
  opt.config_options.max_devices = 8;
  opt.cost_params = params;
  const DpResult r = find_best_strategy(g, opt);
  EXPECT_GE(sim.simulate(r.strategy).step_time_s, bound);
}

// ---- DP optimality relative to the baseline strategy generators.

class DpBeatsBaselinesSweep : public ::testing::TestWithParam<u64> {};

TEST_P(DpBeatsBaselinesSweep, DpCostNeverWorseThanAnyBaseline) {
  // The DP optimum is taken over the full enumerated configuration space,
  // which contains every baseline's per-node configs (baselines clamp to
  // power-of-two factors within the device budget), so the DP cost must be
  // <= every baseline's cost under the same cost model.
  const i64 p = 8;
  const Graph g = testing::random_graph(7, 3, GetParam());
  DpOptions opt;
  opt.config_options.max_devices = p;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(p));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);

  const CostModel cost(g, opt.cost_params);
  const struct {
    const char* name;
    Strategy phi;
  } baselines[] = {
      {"data_parallel", data_parallel_strategy(g, p)},
      {"owt", owt_strategy(g, p)},
      {"expert", expert_strategy(g, p)},
  };
  for (const auto& b : baselines) {
    EXPECT_LE(r.best_cost, cost.total_cost(b.phi) * (1 + 1e-9))
        << "seed=" << GetParam() << " baseline=" << b.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpBeatsBaselinesSweep,
                         ::testing::Values(101, 102, 103, 104));

// ---- Comm-model auto-selection dominates every forced algorithm.

TEST(CommModelProperty, AutoNeverWorseThanAnyForcedAlgorithm) {
  // kAuto prices each (collective, bytes, group) shape with the argmin over
  // the algorithm families, so its time is exactly <= each family's time.
  const MachineSpec machines[] = {MachineSpec::gtx1080ti(16),
                                  MachineSpec::rtx2080ti(16),
                                  MachineSpec::mixed_cluster(16)};
  const Collective collectives[] = {
      Collective::kAllReduce, Collective::kAllGather,
      Collective::kReduceScatter, Collective::kBroadcast,
      Collective::kAllToAll};
  const CommAlgo algos[] = {CommAlgo::kRing, CommAlgo::kTree,
                            CommAlgo::kHalvingDoubling,
                            CommAlgo::kHierarchical};
  Rng rng(2026);
  for (const MachineSpec& m : machines) {
    const CommModel auto_model(m, CommModelKind::kAuto);
    for (int trial = 0; trial < 50; ++trial) {
      const double bytes =
          static_cast<double>(1 + rng.uniform(u64{1} << 24));
      const i64 group = static_cast<i64>(2 + rng.uniform(15));
      for (const Collective c : collectives) {
        const double chosen = auto_model.collective_time(c, bytes, group);
        for (const CommAlgo a : algos) {
          EXPECT_LE(chosen, auto_model.algorithm_time(a, c, bytes, group))
              << collective_name(c) << " vs " << comm_algo_name(a)
              << " bytes=" << bytes << " group=" << group;
        }
      }
    }
  }
}

// ---- Simulated step time is monotone in link bandwidth.

TEST(SimulatorProperty, StepTimeMonotoneNonIncreasingInBandwidth) {
  // Compute time is bandwidth-independent and every comm term is
  // (latency + bytes/bw), so uniformly faster links can never slow a step.
  const Graph graphs[] = {models::alexnet(), models::transformer()};
  for (const Graph& g : graphs) {
    const Strategy phi = data_parallel_strategy(g, 8);
    double prev = std::numeric_limits<double>::infinity();
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      MachineSpec m = MachineSpec::gtx1080ti(8);
      m.link_bandwidth *= scale;
      m.intra_node_bandwidth *= scale;
      m.inter_node_bandwidth *= scale;
      const Simulator sim(g, m);
      const double step = sim.simulate(phi).step_time_s;
      EXPECT_TRUE(std::isfinite(step));
      EXPECT_LE(step, prev * (1 + 1e-12)) << "scale=" << scale;
      prev = step;
    }
  }
}

// ---- Widened strategy space (--split-dims): gating, bit-identity and
// optimality. Suite name starts with "DpSolver" so the TSan stage's filter
// picks up the threaded bit-identity sweep.

// Every zoo name from src/models/zoo.cc apart from the generated
// transformer_stack_<N> family (structurally a repeat of its blocks).
const char* const kZooNames[] = {
    "alexnet",      "inception_v3", "rnnlm",
    "transformer",  "densenet",     "resnet50",
    "vgg16",        "mobilenet_v1", "gnmt",
    "mlp",          "resnet_large_p", "transformer_pipelined"};

TEST(DpSolverSplitDims, DefaultGatesEqualBuilderSplittableEverywhere) {
  // The disabled-dimension contract rests on this: with the default
  // {batch,param} gates, the per-dim mask equals the builder-declared
  // splittable flag for every node of every zoo model, so the enumerated
  // space — and therefore the DP — is bitwise the legacy one.
  const SplitDims defaults;
  for (const char* name : kZooNames) {
    const Graph g = *models::zoo_graph(name);
    for (const Node& n : g.nodes())
      for (i64 d = 0; d < n.space.rank(); ++d)
        EXPECT_EQ(dim_splittable(n, d, defaults), n.space.dim(d).splittable)
            << name << " " << n.name << " dim " << d;
  }
}

TEST(DpSolverSplitDims, DisabledDimsBitIdenticalAcrossZooAndThreads) {
  // --split-dims batch,param must reproduce the legacy solve bit for bit
  // on every zoo model, at any thread count.
  for (const char* name : kZooNames) {
    const Graph g = *models::zoo_graph(name);
    DpOptions base;
    base.config_options.max_devices = 8;
    base.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(8));
    base.num_threads = 1;
    // densenet trips the table guard; the degraded beam fallback is
    // deterministic and gated identically, so the contract covers it too.
    base.degraded_fallback = true;
    const DpResult legacy = find_best_strategy(g, base);
    ASSERT_TRUE(legacy.status == DpStatus::kOk ||
                legacy.status == DpStatus::kDegraded)
        << name;
    for (const i64 threads : {1, 4, 8}) {
      DpOptions opt = base;
      opt.config_options.split_dims = *parse_split_dims("batch,param");
      opt.num_threads = threads;
      const DpResult r = find_best_strategy(g, opt);
      ASSERT_EQ(r.status, legacy.status) << name;
      EXPECT_EQ(r.best_cost, legacy.best_cost)  // bitwise, not NEAR
          << name << " threads=" << threads;
      EXPECT_TRUE(r.strategy == legacy.strategy)
          << name << " threads=" << threads;
    }
  }
}

TEST(DpSolverSplitDims, WidenedSpaceNeverWorseOnZoo) {
  // The widened space is a strict superset of the legacy one, so the DP
  // optimum can only improve.
  for (const char* name : kZooNames) {
    const Graph g = *models::zoo_graph(name);
    DpOptions legacy_opt;
    legacy_opt.config_options.max_devices = 8;
    legacy_opt.cost_params =
        CostParams::for_machine(MachineSpec::gtx1080ti(8));
    legacy_opt.degraded_fallback = true;  // densenet trips the table guard
    DpOptions widened_opt = legacy_opt;
    widened_opt.config_options.split_dims = *parse_split_dims("all");
    const DpResult legacy = find_best_strategy(g, legacy_opt);
    const DpResult widened = find_best_strategy(g, widened_opt);
    ASSERT_TRUE(widened.status == DpStatus::kOk ||
                widened.status == DpStatus::kDegraded)
        << name;
    // The superset argument only binds exact optima; beam-degraded solves
    // (densenet) are excluded from the bound.
    if (legacy.status == DpStatus::kOk && widened.status == DpStatus::kOk)
      EXPECT_LE(widened.best_cost, legacy.best_cost * (1 + 1e-12)) << name;
  }
}

TEST(DpSolverSplitDims, WidenedSpaceNeverWorseOnRandomGraphs) {
  // FC-only random graphs expose no spatial/channel dims, so the widened
  // space degenerates to the legacy one — the bound must still hold, with
  // equality.
  for (const u64 seed : {301u, 302u, 303u}) {
    const Graph g = testing::random_graph(7, 3, seed);
    DpOptions legacy_opt;
    legacy_opt.config_options.max_devices = 8;
    legacy_opt.cost_params =
        CostParams::for_machine(MachineSpec::gtx1080ti(8));
    DpOptions widened_opt = legacy_opt;
    widened_opt.config_options.split_dims = *parse_split_dims("all");
    const DpResult legacy = find_best_strategy(g, legacy_opt);
    const DpResult widened = find_best_strategy(g, widened_opt);
    ASSERT_EQ(widened.status, DpStatus::kOk) << "seed=" << seed;
    EXPECT_EQ(widened.best_cost, legacy.best_cost) << "seed=" << seed;
  }
}

// ---- Halo-exchange pricing (spatial splits of windowed ops).

TEST(HaloCost, HaloExchangeTimeMonotoneInBytesAndGroup) {
  const MachineSpec machines[] = {MachineSpec::gtx1080ti(16),
                                  MachineSpec::mixed_cluster(16),
                                  MachineSpec::multi_tier(16)};
  const CommModelKind kinds[] = {CommModelKind::kSimple,
                                 CommModelKind::kAuto, CommModelKind::kRing};
  for (const MachineSpec& m : machines) {
    for (const CommModelKind kind : kinds) {
      const CommModel comm(m, kind);
      // Degenerate halos are free.
      EXPECT_DOUBLE_EQ(comm.halo_exchange_time(0.0, 8), 0.0);
      EXPECT_DOUBLE_EQ(comm.halo_exchange_time(1 << 20, 1), 0.0);
      for (const i64 group : {2, 4, 8, 16}) {
        double prev = 0.0;
        for (const double bytes : {1e3, 1e4, 1e5, 1e6, 1e7}) {
          const double t = comm.halo_exchange_time(bytes, group);
          EXPECT_GT(t, prev) << m.name << " group=" << group;
          prev = t;
        }
      }
      // Wider groups cross the same or slower link classes, never faster.
      for (const double bytes : {1e4, 1e6}) {
        double prev = 0.0;
        for (const i64 group : {2, 4, 8, 16}) {
          const double t = comm.halo_exchange_time(bytes, group);
          EXPECT_GE(t, prev * (1 - 1e-12)) << m.name << " bytes=" << bytes;
          prev = t;
        }
      }
    }
  }
}

TEST(HaloCost, ConvHaloCollectivesAppearOnlyWhenSplitAndMonotoneInDegree) {
  // A 3x3 conv with spatial splits allowed: dims (b, c, h, w, n, r, s).
  const Node conv =
      ops::conv2d("c", 8, 16, 32, 32, 16, 3, 3, /*allow_spatial_split=*/true);
  const CostParams params =
      CostParams::for_machine(MachineSpec::gtx1080ti(16));
  const CommModel comm(MachineSpec::gtx1080ti(16), CommModelKind::kSimple);
  auto halo_time = [&](i64 h_split) {
    Config cfg = Config::ones(conv.space.rank());
    cfg.set(2, static_cast<u16>(h_split));  // split the output height dim
    double t = 0.0;
    i64 count = 0;
    for (const CollectiveComm& c : layer_collectives(conv, cfg, params))
      if (c.kind == CollectiveComm::Kind::kHaloExchange) {
        t += comm.halo_exchange_time(c.bytes, c.group);
        ++count;
      }
    EXPECT_EQ(count, h_split > 1 ? 1 : 0) << "h_split=" << h_split;
    return t;
  };
  EXPECT_DOUBLE_EQ(halo_time(1), 0.0);  // unsplit planes exchange nothing
  // Cost is weakly monotone in the split degree: the boundary planes traded
  // with the neighbors keep their size, so deeper splits only hurt once the
  // group spills onto a slower link class.
  double prev = 0.0;
  for (const i64 d : {2, 4, 8}) {
    const double t = halo_time(d);
    EXPECT_GT(t, 0.0) << "h_split=" << d;
    EXPECT_GE(t, prev * (1 - 1e-12)) << "h_split=" << d;
    prev = t;
  }
}

// ---- Memory estimator consistency with node-level accounting.

TEST(MemoryProperty, NodeSumsBoundTheEstimate) {
  const Graph g = models::alexnet();
  const Strategy phi = owt_strategy(g, 8);
  double node_sum = 0.0;
  for (const Node& n : g.nodes())
    node_sum += node_memory_bytes(n, phi[static_cast<size_t>(n.id)]);
  const MemoryFootprint fp = estimate_memory(g, phi);
  // Node-level accounting covers params + outputs + collective buffers;
  // the full estimate additionally holds consumer-side activation shards.
  EXPECT_GE(fp.total(), fp.parameter_bytes);
  EXPECT_GT(node_sum, fp.parameter_bytes);
}

}  // namespace
}  // namespace pase
