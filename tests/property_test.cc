// Cross-cutting property tests: invariants that must hold for arbitrary
// graphs, configurations and device counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "comm/comm_model.h"
#include "core/dp_solver.h"
#include "cost/cost_model.h"
#include "models/models.h"
#include "search/baselines.h"
#include "search/mcmc.h"
#include "sim/memory.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace pase {
namespace {

// ---- Transfer-cost invariants on random configuration pairs.

class TransferPropertySweep : public ::testing::TestWithParam<u64> {};

TEST_P(TransferPropertySweep, NonNegativeAndZeroForIdenticalConfigs) {
  const Graph g = testing::random_graph(6, 3, GetParam());
  ConfigOptions copts;
  copts.max_devices = 8;
  const ConfigCache cache(g, copts);
  Rng rng(GetParam() * 31 + 7);
  const CostParams params;
  for (const Edge& e : g.edges()) {
    const auto& su = cache.at(e.src);
    const auto& sv = cache.at(e.dst);
    for (int trial = 0; trial < 20; ++trial) {
      const Config cu = su[rng.uniform(su.size())];
      const Config cv = sv[rng.uniform(sv.size())];
      const double bytes = transfer_bytes(e, cu, cv, params);
      EXPECT_GE(bytes, 0.0);
      // Aligned case: equal per-tensor-dim splits and equal degrees move
      // nothing.
      bool aligned = cu.degree() == cv.degree();
      for (size_t t = 0; aligned && t < e.shape.size(); ++t) {
        const i64 a = e.src_dims[t] >= 0 ? cu[e.src_dims[t]] : 1;
        const i64 b = e.dst_dims[t] >= 0 ? cv[e.dst_dims[t]] : 1;
        aligned = a == b;
      }
      if (aligned) EXPECT_DOUBLE_EQ(bytes, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferPropertySweep,
                         ::testing::Values(21, 22, 23, 24));

// ---- Layer-cost invariants across the whole configuration space.

TEST(LayerCostProperty, FiniteAndPositiveForEveryConfig) {
  ConfigOptions copts;
  copts.max_devices = 16;
  CostParams params = CostParams::for_machine(MachineSpec::gtx1080ti(16));
  for (const auto& bench : models::paper_benchmarks()) {
    for (const Node& n : bench.graph.nodes()) {
      for (const Config& c : enumerate_node_configs(n, copts)) {
        const double cost = layer_cost(n, c, params);
        EXPECT_TRUE(std::isfinite(cost)) << bench.name << " " << n.name;
        EXPECT_GE(cost, 0.0) << bench.name << " " << n.name;
      }
    }
  }
}

// ---- Solver invariants at an unusual (non-power-of-two) device count.

TEST(SolverProperty, WorksWithNonPowerOfTwoDeviceCount) {
  const Graph g = models::alexnet();
  DpOptions opt;
  opt.config_options.max_devices = 6;  // factors stay powers of two
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(6));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);
  for (const Config& c : r.strategy) EXPECT_LE(c.degree(), 6);
}

TEST(SolverProperty, OptimumMonotoneInSearchSpace) {
  // A strictly larger configuration space can only lower the optimum.
  const Graph g = models::transformer();
  DpOptions small, large;
  small.config_options.max_devices = 8;
  large.config_options.max_devices = 8;
  large.config_options.powers_of_two_only = false;
  small.cost_params = large.cost_params =
      CostParams::for_machine(MachineSpec::gtx1080ti(8));
  EXPECT_LE(find_best_strategy(g, large).best_cost,
            find_best_strategy(g, small).best_cost * (1 + 1e-9));
}

// ---- MCMC with the simulator objective (FlexFlow's actual architecture).

TEST(McmcProperty, SimulatorObjectiveImprovesSimulatedStepTime) {
  const Graph g = models::alexnet();
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  auto sim = std::make_shared<Simulator>(g, m);
  ConfigOptions copts;
  copts.max_devices = 8;
  McmcOptions mo;
  mo.max_iterations = 4000;
  mo.min_iterations = 1000;
  mo.objective = [sim](const Strategy& phi) {
    return sim->simulate(phi).step_time_s;
  };
  const Strategy init = data_parallel_strategy(g, 8);
  const McmcResult r =
      mcmc_search(g, copts, CostParams::for_machine(m), init, mo);
  EXPECT_LE(r.best_cost, sim->simulate(init).step_time_s * (1 + 1e-9));
  // best_cost is in the objective's units: seconds.
  EXPECT_NEAR(r.best_cost, sim->simulate(r.best_strategy).step_time_s,
              1e-12);
}

// ---- Simulator invariants across strategies.

TEST(SimulatorProperty, AnyValidStrategySimulates) {
  const Graph g = models::inception_v3();
  const Simulator sim(g, MachineSpec::rtx2080ti(16));
  ConfigOptions copts;
  copts.max_devices = 16;
  const ConfigCache cache(g, copts);
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Strategy phi;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      phi.push_back(cache.at(v)[rng.uniform(cache.at(v).size())]);
    const SimResult r = sim.simulate(phi);
    EXPECT_TRUE(std::isfinite(r.step_time_s));
    EXPECT_GT(r.step_time_s, 0.0);
    EXPECT_GE(r.step_time_s, 0.9 * r.compute_time_s / 16.0);
  }
}

TEST(SimulatorProperty, StepTimeLowerBoundedByBottleneckCompute) {
  // No strategy can beat the serial compute divided by all devices.
  const Graph g = models::alexnet();
  const MachineSpec m = MachineSpec::gtx1080ti(8);
  const Simulator sim(g, m);
  CostParams params = CostParams::for_machine(m);
  double serial_flops = 0.0;
  for (const Node& n : g.nodes())
    serial_flops += layer_flops(n, Config::ones(n.space.rank()), params);
  const double bound = serial_flops / (8.0 * m.peak_flops);
  DpOptions opt;
  opt.config_options.max_devices = 8;
  opt.cost_params = params;
  const DpResult r = find_best_strategy(g, opt);
  EXPECT_GE(sim.simulate(r.strategy).step_time_s, bound);
}

// ---- DP optimality relative to the baseline strategy generators.

class DpBeatsBaselinesSweep : public ::testing::TestWithParam<u64> {};

TEST_P(DpBeatsBaselinesSweep, DpCostNeverWorseThanAnyBaseline) {
  // The DP optimum is taken over the full enumerated configuration space,
  // which contains every baseline's per-node configs (baselines clamp to
  // power-of-two factors within the device budget), so the DP cost must be
  // <= every baseline's cost under the same cost model.
  const i64 p = 8;
  const Graph g = testing::random_graph(7, 3, GetParam());
  DpOptions opt;
  opt.config_options.max_devices = p;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(p));
  const DpResult r = find_best_strategy(g, opt);
  ASSERT_EQ(r.status, DpStatus::kOk);

  const CostModel cost(g, opt.cost_params);
  const struct {
    const char* name;
    Strategy phi;
  } baselines[] = {
      {"data_parallel", data_parallel_strategy(g, p)},
      {"owt", owt_strategy(g, p)},
      {"expert", expert_strategy(g, p)},
  };
  for (const auto& b : baselines) {
    EXPECT_LE(r.best_cost, cost.total_cost(b.phi) * (1 + 1e-9))
        << "seed=" << GetParam() << " baseline=" << b.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpBeatsBaselinesSweep,
                         ::testing::Values(101, 102, 103, 104));

// ---- Comm-model auto-selection dominates every forced algorithm.

TEST(CommModelProperty, AutoNeverWorseThanAnyForcedAlgorithm) {
  // kAuto prices each (collective, bytes, group) shape with the argmin over
  // the algorithm families, so its time is exactly <= each family's time.
  const MachineSpec machines[] = {MachineSpec::gtx1080ti(16),
                                  MachineSpec::rtx2080ti(16),
                                  MachineSpec::mixed_cluster(16)};
  const Collective collectives[] = {
      Collective::kAllReduce, Collective::kAllGather,
      Collective::kReduceScatter, Collective::kBroadcast,
      Collective::kAllToAll};
  const CommAlgo algos[] = {CommAlgo::kRing, CommAlgo::kTree,
                            CommAlgo::kHalvingDoubling,
                            CommAlgo::kHierarchical};
  Rng rng(2026);
  for (const MachineSpec& m : machines) {
    const CommModel auto_model(m, CommModelKind::kAuto);
    for (int trial = 0; trial < 50; ++trial) {
      const double bytes =
          static_cast<double>(1 + rng.uniform(u64{1} << 24));
      const i64 group = static_cast<i64>(2 + rng.uniform(15));
      for (const Collective c : collectives) {
        const double chosen = auto_model.collective_time(c, bytes, group);
        for (const CommAlgo a : algos) {
          EXPECT_LE(chosen, auto_model.algorithm_time(a, c, bytes, group))
              << collective_name(c) << " vs " << comm_algo_name(a)
              << " bytes=" << bytes << " group=" << group;
        }
      }
    }
  }
}

// ---- Simulated step time is monotone in link bandwidth.

TEST(SimulatorProperty, StepTimeMonotoneNonIncreasingInBandwidth) {
  // Compute time is bandwidth-independent and every comm term is
  // (latency + bytes/bw), so uniformly faster links can never slow a step.
  const Graph graphs[] = {models::alexnet(), models::transformer()};
  for (const Graph& g : graphs) {
    const Strategy phi = data_parallel_strategy(g, 8);
    double prev = std::numeric_limits<double>::infinity();
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      MachineSpec m = MachineSpec::gtx1080ti(8);
      m.link_bandwidth *= scale;
      m.intra_node_bandwidth *= scale;
      m.inter_node_bandwidth *= scale;
      const Simulator sim(g, m);
      const double step = sim.simulate(phi).step_time_s;
      EXPECT_TRUE(std::isfinite(step));
      EXPECT_LE(step, prev * (1 + 1e-12)) << "scale=" << scale;
      prev = step;
    }
  }
}

// ---- Memory estimator consistency with node-level accounting.

TEST(MemoryProperty, NodeSumsBoundTheEstimate) {
  const Graph g = models::alexnet();
  const Strategy phi = owt_strategy(g, 8);
  double node_sum = 0.0;
  for (const Node& n : g.nodes())
    node_sum += node_memory_bytes(n, phi[static_cast<size_t>(n.id)]);
  const MemoryFootprint fp = estimate_memory(g, phi);
  // Node-level accounting covers params + outputs + collective buffers;
  // the full estimate additionally holds consumer-side activation shards.
  EXPECT_GE(fp.total(), fp.parameter_bytes);
  EXPECT_GT(node_sum, fp.parameter_bytes);
}

}  // namespace
}  // namespace pase
