#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dep_sets.h"
#include "core/ordering.h"
#include "models/models.h"
#include "test_util.h"

namespace pase {
namespace {

void expect_permutation(const Graph& g, const Ordering& o) {
  ASSERT_EQ(static_cast<i64>(o.seq.size()), g.num_nodes());
  std::set<NodeId> seen(o.seq.begin(), o.seq.end());
  EXPECT_EQ(static_cast<i64>(seen.size()), g.num_nodes());
  for (i64 i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(o.pos[static_cast<size_t>(o.seq[static_cast<size_t>(i)])], i);
}

TEST(Ordering, GenerateSeqIsPermutation) {
  for (const auto& b : models::paper_benchmarks())
    expect_permutation(b.graph, generate_seq(b.graph));
}

TEST(Ordering, BreadthFirstIsPermutation) {
  for (const auto& b : models::paper_benchmarks())
    expect_permutation(b.graph, breadth_first(b.graph));
}

TEST(Ordering, MakeOrderingDispatch) {
  const Graph g = models::alexnet();
  EXPECT_EQ(make_ordering(g, OrderingKind::kGenerateSeq).seq,
            generate_seq(g).seq);
  EXPECT_EQ(make_ordering(g, OrderingKind::kBreadthFirst).seq,
            breadth_first(g).seq);
}

TEST(Ordering, DeterministicAcrossRuns) {
  const Graph g = models::inception_v3();
  EXPECT_EQ(generate_seq(g).seq, generate_seq(g).seq);
  EXPECT_EQ(breadth_first(g).seq, breadth_first(g).seq);
}

// Theorem 2: the v.d sets maintained incrementally by GenerateSeq equal the
// definitional dependent sets D(i) computed by DFS.
class Theorem2Sweep : public ::testing::TestWithParam<u64> {};

TEST_P(Theorem2Sweep, GenerateSeqDepSetsMatchDefinition) {
  const Graph g = testing::random_graph(10, 6, GetParam());
  const Ordering o = generate_seq(g);
  for (i64 i = 0; i < g.num_nodes(); ++i) {
    const VertexSets s = compute_vertex_sets(g, o, i);
    EXPECT_EQ(o.dep_sets[static_cast<size_t>(i)], s.dependent)
        << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2Sweep,
                         ::testing::Range<u64>(1, 13));

TEST(Ordering, Theorem2OnPaperBenchmarks) {
  for (const auto& b : models::paper_benchmarks()) {
    const Ordering o = generate_seq(b.graph);
    for (i64 i = 0; i < b.graph.num_nodes(); ++i) {
      const VertexSets s = compute_vertex_sets(b.graph, o, i);
      ASSERT_EQ(o.dep_sets[static_cast<size_t>(i)], s.dependent)
          << b.name << " position " << i;
    }
  }
}

TEST(Ordering, PathGraphDependentSetsAreSingletons) {
  // AlexNet is a path graph: |D(i)| <= 1 for every vertex under any
  // ordering family we provide (paper Table I discussion).
  const Graph g = models::alexnet();
  EXPECT_LE(max_dependent_set_size(g, generate_seq(g)), 1);
  EXPECT_LE(max_dependent_set_size(g, breadth_first(g)), 1);
}

TEST(Ordering, RnnlmIsPathGraphToo) {
  const Graph g = models::rnnlm();
  EXPECT_LE(max_dependent_set_size(g, generate_seq(g)), 1);
  EXPECT_LE(max_dependent_set_size(g, breadth_first(g)), 1);
}

TEST(Ordering, InceptionGenerateSeqKeepsDependentSetsTiny) {
  // Paper §III-C: GenerateSeq keeps |D(i) u {v^(i)}| <= 3 for InceptionV3
  // while breadth-first lets dependent sets reach ~10.
  const Graph g = models::inception_v3();
  EXPECT_LE(max_dependent_set_size(g, generate_seq(g)), 2);
  EXPECT_GE(max_dependent_set_size(g, breadth_first(g)), 5);
}

TEST(Ordering, TransformerGenerateSeqBeatsBreadthFirst) {
  const Graph g = models::transformer();
  const i64 m_gs = max_dependent_set_size(g, generate_seq(g));
  const i64 m_bf = max_dependent_set_size(g, breadth_first(g));
  EXPECT_LT(m_gs, m_bf);
  EXPECT_LE(m_gs, 4);
}

TEST(Ordering, GenerateSeqNeverWorseOnRandomGraphs) {
  for (u64 seed = 1; seed <= 10; ++seed) {
    const Graph g = testing::random_graph(12, 5, seed);
    EXPECT_LE(max_dependent_set_size(g, generate_seq(g)),
              max_dependent_set_size(g, breadth_first(g)))
        << "seed " << seed;
  }
}

TEST(Ordering, DenseGraphKeepsLargeDependentSets) {
  // Paper §V: for uniformly dense graphs (DenseNet) no ordering helps.
  const Graph g = models::densenet(32, 1, 6, 32);
  EXPECT_GE(max_dependent_set_size(g, generate_seq(g)), 4);
}

TEST(Ordering, SingleNodeGraph) {
  Graph g;
  g.add_node(ops::fully_connected("only", 4, 4, 4));
  const Ordering o = generate_seq(g);
  ASSERT_EQ(o.seq.size(), 1u);
  EXPECT_TRUE(o.dep_sets[0].empty());
}

}  // namespace
}  // namespace pase
