// Determinism contract for the parallel search engines: at every thread
// count the chosen strategy, its cost and the solver status must be
// bit-identical to the sequential run (see docs/ARCHITECTURE.md and the
// contract comments in core/dp_solver.h and util/thread_pool.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dp_solver.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "search/baselines.h"
#include "search/brute_force.h"
#include "search/mcmc.h"
#include "test_util.h"

namespace pase {
namespace {

DpOptions options_for(i64 p, i64 threads) {
  DpOptions o;
  o.config_options.max_devices = p;
  o.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(p));
  o.num_threads = threads;
  return o;
}

TEST(Determinism, DpSolverIdenticalAcrossThreadCounts) {
  struct Case {
    std::string name;
    Graph graph;
  };
  const Case cases[] = {
      {"alexnet", models::alexnet()},
      {"inception_v3", models::inception_v3()},
      {"transformer", models::transformer()},
  };
  for (const Case& c : cases) {
    const DpResult base = find_best_strategy(c.graph, options_for(8, 1));
    for (const i64 threads : {2, 8}) {
      const DpResult r = find_best_strategy(c.graph, options_for(8, threads));
      ASSERT_EQ(r.status, base.status) << c.name << " threads=" << threads;
      // Exact double equality on purpose: the contract is bit-identical,
      // not approximately equal.
      EXPECT_EQ(r.best_cost, base.best_cost)
          << c.name << " threads=" << threads;
      EXPECT_EQ(r.strategy, base.strategy)
          << c.name << " threads=" << threads;
      EXPECT_EQ(r.threads_used, threads) << c.name;
    }
  }
}

TEST(Determinism, StructuralMetricsIdenticalAcrossThreadCounts) {
  // The observability contract (src/obs/metrics.h, DESIGN.md §9): every
  // counter and histogram the solver records — cost-cache hits/misses,
  // per-vertex substrategy counts, dependent-set sizes — is a pure function
  // of the input, so the structural JSON dump must be BYTE-identical at any
  // thread count. Gauges (timings) are exempt and not compared.
  const Graph g = models::inception_v3();
  std::string base_json;
  DpResult base;
  for (const i64 threads : {1, 4, 8}) {
    MetricsRegistry reg;
    DpOptions o = options_for(8, threads);
    o.metrics = &reg;
    const DpResult r = find_best_strategy(g, o);
    ASSERT_EQ(r.status, DpStatus::kOk) << "threads=" << threads;
    if (threads == 1) {
      base_json = reg.structural_json();
      base = r;
      continue;
    }
    EXPECT_EQ(reg.structural_json(), base_json) << "threads=" << threads;
    // The same quantities via the solver's own diagnostics.
    EXPECT_EQ(r.cost_cache_hits, base.cost_cache_hits)
        << "threads=" << threads;
    EXPECT_EQ(r.cost_cache_misses, base.cost_cache_misses)
        << "threads=" << threads;
    EXPECT_EQ(r.dependent_set_sizes, base.dependent_set_sizes)
        << "threads=" << threads;
    EXPECT_EQ(r.max_combinations_analyzed, base.max_combinations_analyzed)
        << "threads=" << threads;
  }
}

TEST(Determinism, DpSolverCacheDoesNotChangeResults) {
  // Threading and the cost cache compose: 8 threads + cache must still
  // match 1 thread without the cache.
  const Graph g = models::inception_v3();
  DpOptions plain = options_for(8, 1);
  plain.use_cost_cache = false;
  DpOptions fancy = options_for(8, 8);
  fancy.use_cost_cache = true;
  const DpResult a = find_best_strategy(g, plain);
  const DpResult b = find_best_strategy(g, fancy);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.strategy, b.strategy);
}

TEST(Determinism, BruteForceIdenticalAcrossThreadCounts) {
  const Graph g = testing::random_graph(5, 2, 3);
  ConfigOptions copts;
  copts.max_devices = 4;
  const CostParams params = CostParams::for_machine(MachineSpec::gtx1080ti(4));
  const auto seq = brute_force_search(g, copts, params, u64{1} << 26, 1);
  ASSERT_TRUE(seq.has_value());
  for (const i64 threads : {2, 3, 8}) {
    const auto par =
        brute_force_search(g, copts, params, u64{1} << 26, threads);
    ASSERT_TRUE(par.has_value()) << "threads=" << threads;
    EXPECT_EQ(par->best_cost, seq->best_cost) << "threads=" << threads;
    EXPECT_EQ(par->best_strategy, seq->best_strategy)
        << "threads=" << threads;
    EXPECT_EQ(par->strategies_evaluated, seq->strategies_evaluated)
        << "threads=" << threads;
  }
}

TEST(Determinism, McmcChainsIdenticalAcrossThreadCounts) {
  const Graph g = models::alexnet();
  ConfigOptions copts;
  copts.max_devices = 8;
  const CostParams params = CostParams::for_machine(MachineSpec::gtx1080ti(8));
  const Strategy initial = expert_strategy(g, 8);

  McmcOptions opts;
  opts.max_iterations = 2000;
  opts.min_iterations = 500;
  opts.seed = 17;
  opts.num_chains = 4;

  opts.num_threads = 1;
  const McmcResult seq = mcmc_search(g, copts, params, initial, opts);
  opts.num_threads = 2;
  const McmcResult par = mcmc_search(g, copts, params, initial, opts);

  EXPECT_EQ(par.best_cost, seq.best_cost);
  EXPECT_EQ(par.best_strategy, seq.best_strategy);
  EXPECT_EQ(par.winning_chain, seq.winning_chain);
  EXPECT_EQ(par.iterations, seq.iterations);
}

}  // namespace
}  // namespace pase
