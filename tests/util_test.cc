#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/bitset.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/types.h"

namespace pase {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
}

TEST(Types, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Types, FloorPow2) {
  EXPECT_EQ(floor_pow2(1), 1);
  EXPECT_EQ(floor_pow2(2), 2);
  EXPECT_EQ(floor_pow2(3), 2);
  EXPECT_EQ(floor_pow2(127), 64);
  EXPECT_EQ(floor_pow2(128), 128);
}

TEST(Bitset, SetTestReset) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2);
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(Bitset, SetAlgebra) {
  Bitset a(100), b(100);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(99);
  const Bitset u = a | b;
  EXPECT_EQ(u.count(), 3);
  const Bitset i = a & b;
  EXPECT_EQ(i.count(), 1);
  EXPECT_TRUE(i.test(70));
  const Bitset d = a - b;
  EXPECT_EQ(d.count(), 1);
  EXPECT_TRUE(d.test(1));
  EXPECT_TRUE(a.intersects(b));
  Bitset c(100);
  c.set(5);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Bitset, Equality) {
  Bitset a(64), b(64);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  b.set(4);
  EXPECT_FALSE(a == b);
}

TEST(Bitset, ToVectorAndForEach) {
  Bitset b(200);
  const std::vector<i64> want = {0, 63, 64, 127, 128, 199};
  for (i64 i : want) b.set(i);
  EXPECT_EQ(b.to_vector(), want);
  std::vector<i64> seen;
  b.for_each([&](i64 i) { seen.push_back(i); });
  EXPECT_EQ(seen, want);
}

TEST(Bitset, AnyEmpty) {
  Bitset b(1);
  EXPECT_FALSE(b.any());
  b.set(0);
  EXPECT_TRUE(b.any());
}

TEST(Hash, Deterministic) {
  const std::vector<u32> v = {1, 2, 3};
  EXPECT_EQ(hash_vector(v), hash_vector(v));
}

TEST(Hash, OrderSensitive) {
  EXPECT_NE(hash_vector<u32>({1, 2, 3}), hash_vector<u32>({3, 2, 1}));
}

TEST(Hash, LengthSensitive) {
  EXPECT_NE(hash_vector<u32>({1, 2}), hash_vector<u32>({1, 2, 0}));
}

TEST(Hash, FewCollisionsOnSmallKeys) {
  std::set<u64> hashes;
  for (u32 a = 0; a < 32; ++a)
    for (u32 b = 0; b < 32; ++b) hashes.insert(hash_vector<u32>({a, b}));
  EXPECT_EQ(hashes.size(), 32u * 32u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<u64> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Timer, FormatMinsSecs) {
  EXPECT_EQ(format_mins_secs(0.0), "0:00.000");
  EXPECT_EQ(format_mins_secs(0.226), "0:00.226");
  EXPECT_EQ(format_mins_secs(14.398), "0:14.398");
  EXPECT_EQ(format_mins_secs(69.21), "1:09.210");
  EXPECT_EQ(format_mins_secs(1883.187), "31:23.187");
  EXPECT_EQ(format_mins_secs(-1.0), "0:00.000");
}

TEST(Timer, ElapsedIsMonotonic) {
  WallTimer t;
  const double a = t.elapsed_seconds();
  const double b = t.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("Title");
  t.set_header({"A", "BB"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| A "), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.set_header({"A"});
  t.add_row({"1", "2", "3"});
  t.add_rule();
  t.add_row({"x"});
  EXPECT_FALSE(t.to_string().empty());
}

}  // namespace
}  // namespace pase
