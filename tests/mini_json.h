// Minimal in-tree JSON reader for tests that need to *parse back* the
// files the system emits (Chrome traces, metrics snapshots) instead of
// merely grepping them. Kept test-only and independent of the production
// parser on purpose: src/serve has its own hardened reader for the serving
// protocol, and serve_test.cc cross-checks the two implementations against
// each other — sharing one parser would make that check vacuous.
//
// Supports the full JSON value grammar with the common one-character
// string escapes (no \uXXXX — nothing in-tree emits them). Numbers are
// held as double. Parse errors return nullopt rather than asserting, so a
// test can FAIL with the offending file's path.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pase::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // std::map: iteration order is sorted, keeping test expectations stable.
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member access; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  static std::optional<JsonValue> parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v;
    if (!p.parse_value(v)) return std::nullopt;
    p.skip_ws();
    if (p.pos_ != text.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: return false;  // \uXXXX unsupported (never emitted)
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue elem;
      if (!parse_value(elem)) return false;
      out.array.push_back(std::move(elem));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue val;
      if (!parse_value(val)) return false;
      out.object.emplace(std::move(key), std::move(val));
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace pase::testing
