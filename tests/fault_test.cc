#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "fault/fault_model.h"
#include "fault/robustness.h"
#include "models/models.h"
#include "search/baselines.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace pase {
namespace {

FaultSpec must_parse(const std::string& text) {
  const FaultSpecParseResult r = parse_fault_spec(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.spec;
}

// ---- Spec parsing.

TEST(FaultSpec, ParsesFullSpec) {
  const FaultSpec s = must_parse(
      "straggler=0:2,straggler=3:1.5,links=0.5:0.8,jitter=0.1,"
      "dropout=1e-4:200:30:2");
  ASSERT_EQ(s.stragglers.size(), 2u);
  EXPECT_EQ(s.stragglers[0].rank, 0);
  EXPECT_DOUBLE_EQ(s.stragglers[0].slowdown, 2.0);
  EXPECT_EQ(s.stragglers[1].rank, 3);
  EXPECT_DOUBLE_EQ(s.links.intra_factor, 0.5);
  EXPECT_DOUBLE_EQ(s.links.inter_factor, 0.8);
  EXPECT_DOUBLE_EQ(s.jitter_sigma, 0.1);
  EXPECT_DOUBLE_EQ(s.dropout.failures_per_step, 1e-4);
  EXPECT_DOUBLE_EQ(s.dropout.checkpoint_interval_steps, 200);
  EXPECT_DOUBLE_EQ(s.dropout.restart_s, 30);
  EXPECT_DOUBLE_EQ(s.dropout.checkpoint_write_s, 2);
  EXPECT_FALSE(s.empty());
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const FaultSpec s =
      must_parse("straggler=1:3,links=0.25:1,jitter=0.2,dropout=0.001:50:10");
  const FaultSpec again = must_parse(s.to_string());
  EXPECT_EQ(again.to_string(), s.to_string());
}

TEST(FaultSpec, RejectsMalformedClauses) {
  for (const char* bad :
       {"", "straggler", "straggler=0", "straggler=x:2", "straggler=0:0.5",
        "straggler=-1:2", "links=0:1", "links=0.5:1.5", "links=0.5",
        "jitter=-1", "jitter=", "dropout=1e-4", "dropout=1e-4:0:30",
        "wobble=1", "straggler=0:2,,links=1:1"}) {
    const FaultSpecParseResult r = parse_fault_spec(bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_FALSE(r.error.empty()) << bad;
  }
}

TEST(FaultSpec, ValidateChecksRanks) {
  const FaultSpec s = must_parse("straggler=8:2");
  EXPECT_FALSE(validate_fault_spec(s, 8).empty());
  EXPECT_TRUE(validate_fault_spec(s, 9).empty());
  EXPECT_TRUE(validate_fault_spec(FaultSpec{}, 1).empty());
}

// ---- Deterministic machine perturbation.

TEST(FaultModel, PerturbAppliesStragglersAndLinks) {
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  const FaultModel model(must_parse("straggler=0:2,links=0.5:0.8"), 1);
  const MachineSpec m = model.perturb(healthy);
  ASSERT_EQ(m.device_flops.size(), 8u);
  EXPECT_DOUBLE_EQ(m.device_flops[0], healthy.peak_flops / 2.0);
  for (size_t d = 1; d < 8; ++d)
    EXPECT_DOUBLE_EQ(m.device_flops[d], healthy.peak_flops);
  EXPECT_DOUBLE_EQ(m.intra_bw(), healthy.intra_bw() * 0.5);
  EXPECT_DOUBLE_EQ(m.inter_bw(), healthy.inter_bw() * 0.8);
  // The analytical-model B follows the weakest scaled link.
  EXPECT_DOUBLE_EQ(m.link_bandwidth, std::min(m.intra_bw(), m.inter_bw()));
  // Weakest-device costing (paper §V rule) sees the straggler.
  EXPECT_DOUBLE_EQ(m.weakest_flops(), healthy.peak_flops / 2.0);
}

TEST(FaultModel, PerturbIsDeterministic) {
  const MachineSpec healthy = MachineSpec::rtx2080ti(16);
  const FaultSpec spec = must_parse("straggler=5:1.7,links=0.9:0.6");
  const MachineSpec a = FaultModel(spec, 1).perturb(healthy);
  const MachineSpec b = FaultModel(spec, 99).perturb(healthy);  // seed-free
  EXPECT_EQ(a.device_flops, b.device_flops);
  EXPECT_DOUBLE_EQ(a.intra_node_bandwidth, b.intra_node_bandwidth);
  EXPECT_DOUBLE_EQ(a.inter_node_bandwidth, b.inter_node_bandwidth);
}

// ---- Seeded simulation determinism (satellite requirement: same seed +
// same FaultSpec => bit-identical SimResult).

TEST(FaultModel, SameSeedGivesBitIdenticalSimResults) {
  const Graph g = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  const Strategy phi = data_parallel_strategy(g, 8);
  const FaultSpec spec = must_parse("straggler=0:2,jitter=0.3");

  const FaultModel model_a(spec, 42);
  const FaultModel model_b(spec, 42);  // independently constructed
  const Simulator sim(g, model_a.perturb(healthy));
  for (u64 scenario : {0ull, 1ull, 7ull}) {
    const SimPerturbation pa = model_a.scenario_perturbation(scenario);
    const SimPerturbation pb = model_b.scenario_perturbation(scenario);
    const SimResult ra = sim.simulate(phi, nullptr, &pa);
    const SimResult rb = sim.simulate(phi, nullptr, &pb);
    EXPECT_EQ(ra.step_time_s, rb.step_time_s);  // exact, not NEAR
    EXPECT_EQ(ra.compute_time_s, rb.compute_time_s);
    EXPECT_EQ(ra.comm_time_s, rb.comm_time_s);
  }
}

TEST(FaultModel, RobustnessReportIsDeterministic) {
  const Graph g = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  const Strategy phi = expert_strategy(g, 8);
  const FaultModel model(must_parse("links=0.7:0.7,jitter=0.2"), 7);
  const RobustnessReport a = evaluate_robustness(g, healthy, phi, model, 8);
  const RobustnessReport b = evaluate_robustness(g, healthy, phi, model, 8);
  EXPECT_EQ(a.mean_step_time_s, b.mean_step_time_s);
  EXPECT_EQ(a.worst_step_time_s, b.worst_step_time_s);
  EXPECT_EQ(a.stddev_s, b.stddev_s);
}

TEST(FaultModel, DifferentSeedsGiveDifferentJitter) {
  const Graph g = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  const Strategy phi = data_parallel_strategy(g, 8);
  const FaultSpec spec = must_parse("jitter=0.3");
  const RobustnessReport a =
      evaluate_robustness(g, healthy, phi, FaultModel(spec, 1), 4);
  const RobustnessReport b =
      evaluate_robustness(g, healthy, phi, FaultModel(spec, 2), 4);
  EXPECT_NE(a.mean_step_time_s, b.mean_step_time_s);
}

// ---- Straggler monotonicity (satellite requirement): slowing rank 0
// strictly increases step time for any strategy occupying that rank —
// under the aligned prefix placement, that is every strategy.

TEST(FaultModel, StragglerOnRankZeroStrictlyIncreasesStepTime) {
  const Graph g = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  const FaultModel model(must_parse("straggler=0:2"), 1);
  const MachineSpec degraded = model.perturb(healthy);

  std::vector<Strategy> strategies = {data_parallel_strategy(g, 8),
                                      expert_strategy(g, 8)};
  Strategy serial;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    serial.push_back(Config::ones(g.node(v).space.rank()));
  strategies.push_back(serial);

  const Simulator healthy_sim(g, healthy);
  const Simulator degraded_sim(g, degraded);
  for (const Strategy& phi : strategies) {
    const double before = healthy_sim.simulate(phi).step_time_s;
    const double after = degraded_sim.simulate(phi).step_time_s;
    EXPECT_GT(after, before);
  }
}

// ---- Jitter-free scenarios collapse onto the deterministic degraded run.

TEST(FaultModel, NoJitterScenariosMatchDegradedSimulation) {
  const Graph g = testing::fig2_toy_graph();
  const MachineSpec healthy = MachineSpec::gtx1080ti(4);
  Strategy phi = data_parallel_strategy(g, 4);
  const FaultModel model(must_parse("straggler=1:3"), 5);
  const RobustnessReport rep = evaluate_robustness(g, healthy, phi, model, 6);
  EXPECT_EQ(rep.mean_step_time_s, rep.degraded.step_time_s);
  EXPECT_EQ(rep.worst_step_time_s, rep.degraded.step_time_s);
  EXPECT_EQ(rep.stddev_s, 0.0);
  EXPECT_EQ(rep.checkpoint_overhead_s, 0.0);
}

// ---- Checkpoint/restart cost model.

TEST(FaultModel, CheckpointOverheadFormula) {
  FaultSpec spec;
  spec.dropout.failures_per_step = 1e-3;
  spec.dropout.checkpoint_interval_steps = 200;
  spec.dropout.restart_s = 30;
  spec.dropout.checkpoint_write_s = 2;
  const FaultModel model(spec, 1);
  // write/interval + rate * (restart + interval/2 * step)
  //  = 2/200 + 1e-3 * (30 + 100 * 0.1) = 0.01 + 0.04
  EXPECT_DOUBLE_EQ(model.checkpoint_overhead_s(0.1), 0.05);
  // No dropout => no overhead.
  EXPECT_EQ(FaultModel(FaultSpec{}, 1).checkpoint_overhead_s(0.1), 0.0);
  // More frequent checkpoints trade write cost against rework.
  FaultSpec frequent = spec;
  frequent.dropout.checkpoint_interval_steps = 20;
  EXPECT_LT(FaultModel(frequent, 1).checkpoint_overhead_s(10.0),
            model.checkpoint_overhead_s(10.0));
}

TEST(FaultModel, DropoutOverheadRaisesExpectedStepTime) {
  const Graph g = testing::fig2_toy_graph();
  const MachineSpec healthy = MachineSpec::gtx1080ti(4);
  const Strategy phi = data_parallel_strategy(g, 4);
  const FaultModel none(FaultSpec{}, 1);
  const FaultModel drop(must_parse("dropout=0.001:100:30"), 1);
  const RobustnessReport a = evaluate_robustness(g, healthy, phi, none, 2);
  const RobustnessReport b = evaluate_robustness(g, healthy, phi, drop, 2);
  EXPECT_GT(b.mean_step_time_s, a.mean_step_time_s);
  EXPECT_GT(b.checkpoint_overhead_s, 0.0);
}

// ---- Mean-one jitter keeps the expectation near the degraded time.

TEST(FaultModel, JitterIsCenteredOnDegradedTime) {
  const Graph g = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  const Strategy phi = data_parallel_strategy(g, 8);
  const FaultModel model(must_parse("jitter=0.1"), 3);
  const RobustnessReport rep =
      evaluate_robustness(g, healthy, phi, model, 64);
  EXPECT_GT(rep.stddev_s, 0.0);
  EXPECT_NEAR(rep.mean_step_time_s, rep.degraded.step_time_s,
              0.1 * rep.degraded.step_time_s);
}

// ---- Degraded-machine re-solve (docs/SCALING.md delta path).

TEST(FaultModel, ResolveAdaptsToDegradedMachineViaDeltaReSolve) {
  const Graph g = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  DpOptions options;
  options.config_options.max_devices = 8;
  options.cost_params = CostParams::for_machine(healthy);
  // Healthy solve primes the context the re-solve will reuse.
  DpContext context;
  options.context = &context;
  const DpResult best = find_best_strategy(g, options);
  ASSERT_EQ(best.status, DpStatus::kOk);

  const FaultModel model(must_parse("links=0.25:0.5,straggler=0:2"), 5);
  const RobustnessReport rep = evaluate_robustness_with_resolve(
      g, healthy, best.strategy, model, options, &context, 8);
  ASSERT_TRUE(rep.resolved);
  EXPECT_EQ(rep.resolve_status, DpStatus::kOk);
  EXPECT_TRUE(rep.resolve_reused_tables);  // same adjacency: delta path

  // The adapted strategy must be exactly what a direct solve against the
  // degraded machine finds — context reuse never changes answers.
  DpOptions degraded_options = options;
  degraded_options.context = nullptr;
  degraded_options.cost_params =
      CostParams::for_machine(model.perturb(healthy));
  const DpResult direct = find_best_strategy(g, degraded_options);
  EXPECT_EQ(rep.resolve_strategy, direct.strategy);

  // Adapting can only help (or tie): gain is a ratio >= ~1.
  EXPECT_GT(rep.adaptation_gain(), 0.0);
  EXPECT_GE(rep.adaptation_gain(), 0.999);
}

TEST(FaultModel, ResolveWorksWithoutContext) {
  const Graph g = models::alexnet();
  const MachineSpec healthy = MachineSpec::gtx1080ti(8);
  DpOptions options;
  options.config_options.max_devices = 8;
  options.cost_params = CostParams::for_machine(healthy);
  const DpResult best = find_best_strategy(g, options);
  const FaultModel model(must_parse("links=0.5:1"), 5);
  const RobustnessReport rep = evaluate_robustness_with_resolve(
      g, healthy, best.strategy, model, options, /*context=*/nullptr, 8);
  ASSERT_TRUE(rep.resolved);
  EXPECT_EQ(rep.resolve_status, DpStatus::kOk);
  EXPECT_FALSE(rep.resolve_reused_tables);  // cold: nothing to reuse
}

}  // namespace
}  // namespace pase
