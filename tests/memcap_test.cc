// Memory-constrained strategy search (paper §I motivation: data parallelism
// replicates parameters, making large models untrainable; the search space
// must exclude over-budget configurations).
#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "models/models.h"
#include "ops/ops.h"
#include "search/baselines.h"
#include "sim/memory.h"

namespace pase {
namespace {

DpOptions options_with_cap(i64 p, double cap_bytes) {
  DpOptions opt;
  opt.config_options.max_devices = p;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(p));
  if (cap_bytes > 0)
    opt.config_options.filter = memory_config_filter(cap_bytes);
  return opt;
}

TEST(NodeMemory, DataParallelReplicatesParameters) {
  const Node fc = ops::fully_connected("f", 64, 4096, 4096);
  const MemoryOptions mo;
  const double dp = node_memory_bytes(fc, Config{8, 1, 1}, mo);
  const double pp = node_memory_bytes(fc, Config{1, 4, 2}, mo);
  // Parameter parallelism shards the 4096^2 weights 8 ways.
  EXPECT_GT(dp, 4.0 * pp);
}

TEST(NodeMemory, IncludesActivationAndBuffers) {
  const Node fc = ops::fully_connected("f", 64, 64, 64);
  const double serial = node_memory_bytes(fc, Config::ones(3));
  const double params = (64.0 * 64 + 64) * 4 * 3;  // weights+bias, 3 copies
  const double act = 64.0 * 64 * 4;
  EXPECT_DOUBLE_EQ(serial, params + act);  // serial: no comm buffers
  EXPECT_GT(node_memory_bytes(fc, Config{8, 1, 1}), 0.0);
}

TEST(MemoryCap, FilterRejectsOverBudgetConfigs) {
  const Node fc = ops::fully_connected("f", 64, 4096, 4096);
  // Budget below the replicated-parameter footprint.
  const auto filter =
      memory_config_filter(node_memory_bytes(fc, Config{1, 4, 2}) * 1.5);
  EXPECT_TRUE(filter(fc, Config{1, 4, 2}));
  EXPECT_FALSE(filter(fc, Config{8, 1, 1}));
}

TEST(MemoryCap, SolverRespectsBudget) {
  const Graph g = models::rnnlm(64, 40, 1024, 2048, 262144);  // big vocab
  const i64 p = 16;
  // Budget chosen so the (replicated) 262k x 2048 projection table cannot
  // fit, but sharded layouts can.
  const double cap = 1.5e9;
  const DpResult r = find_best_strategy(g, options_with_cap(p, cap));
  ASSERT_EQ(r.status, DpStatus::kOk);
  for (const Node& n : g.nodes())
    EXPECT_LE(node_memory_bytes(n, r.strategy[static_cast<size_t>(n.id)]),
              cap)
        << n.name;
  // The per-device total also lands under a per-device budget of that
  // order, while data parallelism cannot fit at all.
  EXPECT_GT(estimate_memory(g, data_parallel_strategy(g, p)).total(),
            2.0 * cap);
}

TEST(MemoryCap, InfeasibleWhenNothingFits) {
  const Graph g = models::rnnlm();
  const DpResult r = find_best_strategy(g, options_with_cap(8, 1.0));
  EXPECT_EQ(r.status, DpStatus::kInfeasible);
}

TEST(MemoryCap, CapCanOnlyRaiseTheOptimum) {
  const Graph g = models::alexnet();
  const DpResult free = find_best_strategy(g, options_with_cap(8, 0));
  const DpResult capped =
      find_best_strategy(g, options_with_cap(8, 100e6));
  ASSERT_EQ(free.status, DpStatus::kOk);
  ASSERT_EQ(capped.status, DpStatus::kOk);
  EXPECT_GE(capped.best_cost, free.best_cost * (1 - 1e-9));
}

TEST(MemoryCap, UnfilteredSearchUnchanged) {
  const Graph g = models::alexnet();
  const DpResult a = find_best_strategy(g, options_with_cap(8, 0));
  const DpResult b = find_best_strategy(g, options_with_cap(8, 1e18));
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

}  // namespace
}  // namespace pase
