#include <gtest/gtest.h>

#include <set>

#include "core/dp_solver.h"
#include "models/models.h"
#include "search/baselines.h"
#include "ops/ops.h"
#include "sim/placement.h"

namespace pase {
namespace {

TEST(Placement, DeviceForCoordinateIsABijection) {
  const Config c{2, 4, 2};
  NodePlacement p{{2, 0, 1}};
  std::set<i64> ranks;
  for (i64 x = 0; x < 2; ++x)
    for (i64 y = 0; y < 4; ++y)
      for (i64 z = 0; z < 2; ++z) {
        const i64 r = device_for_coordinate(c, p, {x, y, z});
        EXPECT_GE(r, 0);
        EXPECT_LT(r, c.degree());
        ranks.insert(r);
      }
  EXPECT_EQ(static_cast<i64>(ranks.size()), c.degree());
}

TEST(Placement, InnermostDimVariesFastest) {
  const Config c{2, 4, 1};
  NodePlacement p{{1, 0, 2}};  // dim 1 innermost
  EXPECT_EQ(device_for_coordinate(c, p, {0, 0, 0}), 0);
  EXPECT_EQ(device_for_coordinate(c, p, {0, 1, 0}), 1);
  EXPECT_EQ(device_for_coordinate(c, p, {1, 0, 0}), 4);
}

TEST(Placement, NaivePlacementUsesDeclarationOrder) {
  const Graph g = models::alexnet();
  const Strategy phi = data_parallel_strategy(g, 8);
  const Placement p = naive_placement(g, phi);
  for (const Node& n : g.nodes()) {
    const auto& order = p.nodes[static_cast<size_t>(n.id)].dim_order;
    for (i64 d = 0; d < n.space.rank(); ++d)
      EXPECT_EQ(order[static_cast<size_t>(d)], d);
  }
}

TEST(Placement, GreedyOrdersAreValidPermutations) {
  const Graph g = models::transformer();
  const Strategy phi = data_parallel_strategy(g, 8);
  const Placement p = greedy_placement(g, phi);
  for (const Node& n : g.nodes()) {
    const auto& order = p.nodes[static_cast<size_t>(n.id)].dim_order;
    std::set<i32> dims(order.begin(), order.end());
    EXPECT_EQ(static_cast<i64>(dims.size()), n.space.rank()) << n.name;
  }
}

TEST(Placement, IdenticalDataParallelConfigsAlignPerfectly) {
  // Every consumer device already holds exactly the batch shard it needs:
  // the locality score equals the total consumed volume.
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  const Strategy phi = data_parallel_strategy(g, 8);
  const Placement p = greedy_placement(g, phi);
  EXPECT_DOUBLE_EQ(locality_score(g, phi, p), 64.0 * 64);
}

TEST(Placement, AlternatingFcSplitsAlignUnderGreedy) {
  // Paper §IV-C's alternating (1,4,8)/(1,8,4) FC pattern eliminates
  // inter-layer communication *given* a locality-maximizing assignment;
  // greedy placement must realize the full overlap.
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  const Strategy phi = {Config{1, 4, 8}, Config{1, 8, 4}};
  const Placement greedy = greedy_placement(g, phi);
  // Consumer device need: (64) * (64/4) per device, 32 devices; all of it
  // should be found locally.
  EXPECT_DOUBLE_EQ(locality_score(g, phi, greedy), 32.0 * 64 * 16);
}

TEST(Placement, GreedyNeverWorseThanNaive) {
  for (const auto& bench : models::paper_benchmarks()) {
    DpOptions opt;
    opt.config_options.max_devices = 8;
    opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(8));
    const DpResult r = find_best_strategy(bench.graph, opt);
    ASSERT_EQ(r.status, DpStatus::kOk);
    EXPECT_GE(locality_score(bench.graph, r.strategy,
                             greedy_placement(bench.graph, r.strategy)),
              locality_score(bench.graph, r.strategy,
                             naive_placement(bench.graph, r.strategy)) -
                  1e-6)
        << bench.name;
  }
}

TEST(Placement, ScoreIsZeroWhenNothingOverlaps) {
  Graph g;
  g.add_node(ops::fully_connected("a", 64, 64, 64));
  g.add_node(ops::fully_connected("b", 64, 64, 64));
  // Tensor dims unmapped on the producer: the producer holds full copies,
  // so overlap is full need; instead test a disjoint-split case.
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  // Producer keeps everything on rank 0 (serial); consumers on ranks 1..7
  // hold nothing, rank 0 holds everything.
  const Strategy phi = {Config{1, 1, 1}, Config{8, 1, 1}};
  const Placement p = greedy_placement(g, phi);
  // Only rank 0 overlaps: it needs 64/8 * 64 and holds all of it.
  EXPECT_DOUBLE_EQ(locality_score(g, phi, p), 8.0 * 64);
}

}  // namespace
}  // namespace pase
