#include <gtest/gtest.h>

#include "graph/graph.h"
#include "ops/ops.h"
#include "test_util.h"

namespace pase {
namespace {

Graph two_fc() {
  Graph g;
  g.add_node(ops::fully_connected("A", 8, 16, 32));
  g.add_node(ops::fully_connected("B", 8, 4, 16));
  return g;
}

TEST(IterSpace, BasicAccessors) {
  const IterSpace s({{"b", 8, true}, {"n", 16, true}, {"c", 32, false}});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.volume(), 8 * 16 * 32);
  EXPECT_EQ(s.find("n"), 1);
  EXPECT_EQ(s.find("zz"), -1);
  EXPECT_EQ(s.names(), "bnc");
  EXPECT_FALSE(s.dim(2).splittable);
}

TEST(Graph, AddNodeAssignsIds) {
  Graph g = two_fc();
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.node(0).id, 0);
  EXPECT_EQ(g.node(1).id, 1);
  EXPECT_EQ(g.node(0).name, "A");
}

TEST(Graph, AddEdgeBuildsAdjacency) {
  Graph g = two_fc();
  const EdgeId e = g.add_edge(0, 1, {8, 16}, {0, 1}, {0, 2});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).volume(), 8 * 16);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, ParallelEdgesDeduplicateNeighbors) {
  Graph g = two_fc();
  g.add_edge(0, 1, {8, 16}, {0, 1}, {0, 2});
  g.add_edge(0, 1, {8, 16}, {0, 1}, {0, 2});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 1);  // neighbor list deduplicated
  EXPECT_EQ(g.incident_edges(0).size(), 2u);
}

TEST(Graph, AddEdgeNamedResolvesDims) {
  Graph g = two_fc();
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  const Edge& e = g.edge(0);
  EXPECT_EQ(e.shape, (std::vector<i64>{8, 16}));
  EXPECT_EQ(e.src_dims, (std::vector<i32>{0, 1}));
  EXPECT_EQ(e.dst_dims, (std::vector<i32>{0, 2}));
}

TEST(Graph, AddEdgeNamedUnmappedDims) {
  Graph g = two_fc();
  g.add_edge_named(0, 1, {"b", "n"}, {"b", ""}, {8, 16});
  EXPECT_EQ(g.edge(0).dst_dims[1], -1);
}

TEST(Graph, NeighborSetMatchesNeighbors) {
  Graph g = testing::fig2_toy_graph();
  const Bitset nb = g.neighbor_set(4);  // paper's v5
  EXPECT_EQ(nb.count(), g.degree(4));
  for (NodeId n : g.neighbors(4)) EXPECT_TRUE(nb.test(n));
}

TEST(Graph, WeaklyConnected) {
  Graph g = two_fc();
  EXPECT_FALSE(g.weakly_connected());
  g.add_edge_named(0, 1, {"b", "n"}, {"b", "c"});
  EXPECT_TRUE(g.weakly_connected());
}

TEST(Graph, EmptyGraphIsConnected) {
  Graph g;
  EXPECT_TRUE(g.weakly_connected());
}

TEST(Graph, Fig2ToyGraphStructure) {
  Graph g = testing::fig2_toy_graph();
  EXPECT_EQ(g.num_nodes(), 9);
  EXPECT_EQ(g.num_edges(), 8);
  EXPECT_TRUE(g.weakly_connected());
  // Paper's v5 (node 4) neighbors: v2, v3, v8.
  EXPECT_EQ(g.degree(4), 3);
}

TEST(Graph, OpKindNames) {
  EXPECT_STREQ(op_kind_name(OpKind::kConv2D), "Conv2D");
  EXPECT_STREQ(op_kind_name(OpKind::kFullyConnected), "FC");
  EXPECT_STREQ(op_kind_name(OpKind::kLSTM), "LSTM");
  EXPECT_STREQ(op_kind_name(OpKind::kAttention), "Attention");
}

TEST(Graph, RandomGraphIsConnectedAndValid) {
  for (u64 seed : {1u, 2u, 3u, 4u}) {
    Graph g = testing::random_graph(7, 3, seed);
    EXPECT_EQ(g.num_nodes(), 7);
    EXPECT_TRUE(g.weakly_connected());
  }
}

TEST(Graph, NodeParamVolume) {
  const Node fc = ops::fully_connected("f", 8, 16, 32);
  EXPECT_EQ(fc.param_volume(), 16 * 32 + 16);
}

}  // namespace
}  // namespace pase
