#include <gtest/gtest.h>

#include "core/dp_solver.h"
#include "io/model_parser.h"

namespace pase {
namespace {

constexpr const char* kTinyModel =
    "pase-model v1\n"
    "model tiny\n"
    "batch 32\n"
    "node fc1 fc n=64 c=16\n"
    "node fc2 fc n=8 c=64\n"
    "node sm softmax n=8\n"
    "edge fc1 fc2 b:b n:c\n"
    "edge fc2 sm b:b n:n\n";

TEST(ModelParser, ParsesTinyModel) {
  const ModelParseResult r = parse_model(kTinyModel);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.name, "tiny");
  EXPECT_EQ(r.graph.num_nodes(), 3);
  EXPECT_EQ(r.graph.num_edges(), 2);
  EXPECT_EQ(r.graph.node(0).kind, OpKind::kFullyConnected);
  EXPECT_EQ(r.graph.node(0).space.dim(0).size, 32);  // batch directive
  EXPECT_EQ(r.graph.node(0).space.dim(1).size, 64);
}

TEST(ModelParser, ParsedModelIsSolvable) {
  const ModelParseResult r = parse_model(kTinyModel);
  ASSERT_TRUE(r.ok) << r.error;
  DpOptions opt;
  opt.config_options.max_devices = 4;
  opt.cost_params = CostParams::for_machine(MachineSpec::gtx1080ti(4));
  EXPECT_EQ(find_best_strategy(r.graph, opt).status, DpStatus::kOk);
}

TEST(ModelParser, SupportsAllOps) {
  const char* text =
      "pase-model v1\n"
      "batch 8\n"
      "node a conv2d c=3 h=8 w=8 n=16 r=3 s=3\n"
      "node b dwconv c=16 h=8 w=8 r=3 s=3\n"
      "node c pool c=16 h=4 w=4 r=2 s=2\n"
      "node d batchnorm c=16 h=4 w=4\n"
      "node e elementwise c=16 h=4 w=4\n"
      "node f concat c=16 h=4 w=4\n"
      "node g fc n=8 c=256\n"
      "node h softmax n=8\n"
      "node i embedding s=4 d=8 v=100\n"
      "node j lstm l=2 s=4 d=8 e=8\n"
      "node k attention s=4 heads=2 qk=4\n"
      "node l ffn s=4 d=8 e=16\n"
      "node m layernorm s=4 d=8\n"
      "node n elementwise_seq s=4 d=8\n"
      "node o projection s=4 v=100 d=8\n"
      "node p softmax_seq s=4 v=100\n"
      // Wire everything into one connected graph.
      "edge a b b:b n:c h:h w:w\n"
      "edge b c b:b c:c h:h w:w\n"
      "edge c d b:b c:c h:h w:w\n"
      "edge d e b:b c:c h:h w:w\n"
      "edge e f b:b c:c h:h w:w\n"
      "edge f g b:b c:c h:- w:-\n"
      "edge g h b:b n:n\n"
      "edge i j b:b s:s d:d\n"
      "edge j k b:b s:s e:-\n"
      "edge k m b:b s:s h:d c:-\n"
      "edge m l b:b s:s d:d\n"
      "edge l n b:b s:s d:d\n"
      "edge n o b:b s:s d:d\n"
      "edge o p b:b s:s v:v\n"
      "edge h p b:b n:-\n";  // bridge the two halves
  const ModelParseResult r = parse_model(text);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.graph.num_nodes(), 16);
}

TEST(ModelParser, PerNodeBatchOverride) {
  const ModelParseResult r = parse_model(
      "pase-model v1\nbatch 32\n"
      "node a fc b=4 n=8 c=8\nnode b softmax n=8\nedge a b b:b n:n\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.graph.node(0).space.dim(0).size, 4);
}

TEST(ModelParser, RejectsMissingHeader) {
  EXPECT_FALSE(parse_model("node a fc n=1 c=1\n").ok);
  EXPECT_FALSE(parse_model("").ok);
}

TEST(ModelParser, RejectsUnknownOp) {
  const auto r = parse_model("pase-model v1\nnode a warp n=1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown op"), std::string::npos);
}

TEST(ModelParser, RejectsMissingKey) {
  const auto r = parse_model("pase-model v1\nnode a fc n=8\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing required key 'c'"), std::string::npos);
}

TEST(ModelParser, RejectsUnknownKey) {
  const auto r = parse_model("pase-model v1\nnode a fc n=8 c=8 zz=1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown key 'zz'"), std::string::npos);
}

TEST(ModelParser, RejectsBadEdges) {
  const char* prefix =
      "pase-model v1\nnode a fc n=8 c=8\nnode b softmax n=8\n";
  EXPECT_FALSE(parse_model(std::string(prefix) + "edge a zz b:b\n").ok);
  EXPECT_FALSE(parse_model(std::string(prefix) + "edge a b\n").ok);
  EXPECT_FALSE(parse_model(std::string(prefix) + "edge a b q:n\n").ok);
  EXPECT_FALSE(parse_model(std::string(prefix) + "edge a b -:n\n").ok);
  EXPECT_FALSE(parse_model(std::string(prefix) + "edge a b bn\n").ok);
}

TEST(ModelParser, RejectsDisconnectedModel) {
  const auto r = parse_model(
      "pase-model v1\nnode a fc n=8 c=8\nnode b softmax n=8\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("connected"), std::string::npos);
}

TEST(ModelParser, RejectsDuplicateNode) {
  const auto r = parse_model(
      "pase-model v1\nnode a fc n=8 c=8\nnode a fc n=8 c=8\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(ModelParser, RejectsDuplicateKeyOnNodeLine) {
  // Before: "n=8 n=16" silently overwrote (last wins). It must be an error,
  // with the line number in the message.
  const auto r = parse_model("pase-model v1\nnode a fc n=8 c=8 n=16\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate key 'n'"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
}

TEST(ModelParser, RejectsNonPositiveDimensions) {
  for (const char* bad : {"n=0", "n=-4", "c=0"}) {
    const auto r = parse_model(std::string("pase-model v1\nnode a fc ") +
                               bad + " n=8 c=8\n");
    EXPECT_FALSE(r.ok) << bad;
    // Either the non-positive value or (for the n=/c= collision cases) the
    // duplicate is reported — never a silently accepted bad extent.
    EXPECT_TRUE(r.error.find("non-positive") != std::string::npos ||
                r.error.find("duplicate") != std::string::npos)
        << bad << ": " << r.error;
  }
  const auto r = parse_model("pase-model v1\nnode a fc n=8 c=-1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("non-positive value in 'c=-1'"), std::string::npos)
      << r.error;
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
}

TEST(ModelParser, RejectsNonPositiveBatchOverride) {
  const auto r = parse_model(
      "pase-model v1\nnode a fc b=0 n=8 c=8\nnode b softmax n=8\n"
      "edge a b b:b n:n\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("non-positive"), std::string::npos) << r.error;
}

TEST(ModelParser, SpatialFlagMustBeBoolean) {
  EXPECT_TRUE(parse_model("pase-model v1\n"
                          "node a conv2d c=3 h=8 w=8 n=16 r=3 s=3 spatial=1\n")
                  .ok);
  EXPECT_TRUE(parse_model("pase-model v1\n"
                          "node a conv2d c=3 h=8 w=8 n=16 r=3 s=3 spatial=0\n")
                  .ok);
  const auto r = parse_model(
      "pase-model v1\nnode a conv2d c=3 h=8 w=8 n=16 r=3 s=3 spatial=2\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("spatial"), std::string::npos) << r.error;
}

TEST(ModelParser, CommentsAndBlankLinesIgnored) {
  const ModelParseResult r = parse_model(
      "pase-model v1\n\n# comment\nnode a fc n=8 c=8  # trailing\n"
      "node b softmax n=8\nedge a b b:b n:n\n");
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ModelParser, RejectsOverflowingDimensionProducts) {
  // 2^31 x 2^31 = 2^62 overflows the downstream int64 iteration-space and
  // table-sizing arithmetic; the trust boundary must reject it regardless
  // of any configured limits.
  const auto r = parse_model(
      "pase-model v1\nnode big fc n=2147483648 c=2147483648\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("overflow"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("big"), std::string::npos) << r.error;

  // The batch multiplies in too: each dim fits, the product does not.
  const auto rb = parse_model(
      "pase-model v1\nbatch 1048576\nnode a fc n=1048576 c=4194304\n");
  EXPECT_FALSE(rb.ok);
  EXPECT_NE(rb.error.find("overflow"), std::string::npos) << rb.error;

  // Large-but-safe products still parse (just under the 2^61 threshold).
  EXPECT_TRUE(
      parse_model("pase-model v1\nnode a fc n=1073741824 c=1048576\n").ok);
}

TEST(ModelParser, EnforcesConfigurableNodeLimit) {
  ModelParseLimits limits;
  limits.max_nodes = 2;
  const auto r = parse_model(kTinyModel, limits);  // 3 nodes
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("maximum of 2 nodes"), std::string::npos)
      << r.error;

  limits.max_nodes = 3;
  EXPECT_TRUE(parse_model(kTinyModel, limits).ok);
  // Zero means unlimited (the default).
  limits.max_nodes = 0;
  EXPECT_TRUE(parse_model(kTinyModel, limits).ok);
}

}  // namespace
}  // namespace pase
