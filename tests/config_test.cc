#include <gtest/gtest.h>

#include <set>

#include "config/config_enum.h"
#include "graph/graph.h"
#include "models/models.h"
#include "ops/ops.h"

namespace pase {
namespace {

IterSpace space3(i64 a, i64 b, i64 c) {
  return IterSpace({{"x", a, true}, {"y", b, true}, {"z", c, true}});
}

TEST(Config, BasicOps) {
  Config c{2, 4, 1};
  EXPECT_EQ(c.rank(), 3);
  EXPECT_EQ(c[0], 2);
  EXPECT_EQ(c.degree(), 8);
  EXPECT_EQ(c.to_string(), "(2, 4, 1)");
  c.set(2, 3);
  EXPECT_EQ(c.degree(), 24);
}

TEST(Config, Ones) {
  const Config c = Config::ones(5);
  EXPECT_EQ(c.rank(), 5);
  EXPECT_EQ(c.degree(), 1);
}

TEST(Config, EqualityAndHash) {
  const Config a{2, 4}, b{2, 4}, c{4, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(ConfigEnum, CountsForKnownCase) {
  // 3 splittable dims, pow2 factors, product <= 8:
  // #tuples = sum_{e=0..3} C(e+2,2) = 1 + 3 + 6 + 10 = 20.
  ConfigOptions opts;
  opts.max_devices = 8;
  const auto configs = enumerate_configs(space3(64, 64, 64), opts);
  EXPECT_EQ(configs.size(), 20u);
}

TEST(ConfigEnum, SerialConfigFirst) {
  ConfigOptions opts;
  opts.max_devices = 8;
  const auto configs = enumerate_configs(space3(64, 64, 64), opts);
  EXPECT_EQ(configs.front(), Config::ones(3));
}

TEST(ConfigEnum, AllUnique) {
  ConfigOptions opts;
  opts.max_devices = 16;
  const auto configs = enumerate_configs(space3(64, 64, 64), opts);
  std::set<std::string> seen;
  for (const Config& c : configs) seen.insert(c.to_string());
  EXPECT_EQ(seen.size(), configs.size());
}

class ConfigEnumSweep : public ::testing::TestWithParam<i64> {};

TEST_P(ConfigEnumSweep, DegreeWithinBudgetAndPow2) {
  const i64 p = GetParam();
  ConfigOptions opts;
  opts.max_devices = p;
  for (const Config& c : enumerate_configs(space3(128, 128, 128), opts)) {
    EXPECT_LE(c.degree(), p);
    for (i64 d = 0; d < c.rank(); ++d) EXPECT_TRUE(is_pow2(c[d]));
  }
}

TEST_P(ConfigEnumSweep, MonotoneInP) {
  const i64 p = GetParam();
  ConfigOptions small, large;
  small.max_devices = p;
  large.max_devices = p * 2;
  const IterSpace s = space3(256, 256, 256);
  EXPECT_LT(enumerate_configs(s, small).size(),
            enumerate_configs(s, large).size());
}

INSTANTIATE_TEST_SUITE_P(P, ConfigEnumSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(ConfigEnum, NonSplittableDimsStaySerial) {
  ConfigOptions opts;
  opts.max_devices = 16;
  const Node conv = ops::conv2d("c", 32, 16, 8, 8, 64, 3, 3);
  for (const Config& c : enumerate_node_configs(conv, opts)) {
    EXPECT_EQ(c[2], 1);  // h
    EXPECT_EQ(c[3], 1);  // w
    EXPECT_EQ(c[5], 1);  // r
    EXPECT_EQ(c[6], 1);  // s
  }
}

TEST(ConfigEnum, SpatialSplitOptIn) {
  ConfigOptions opts;
  opts.max_devices = 16;
  const Node conv = ops::conv2d("c", 32, 16, 8, 8, 64, 3, 3,
                                /*allow_spatial_split=*/true);
  bool saw_spatial = false;
  for (const Config& c : enumerate_node_configs(conv, opts))
    saw_spatial |= c[2] > 1 || c[3] > 1;
  EXPECT_TRUE(saw_spatial);
}

TEST(ConfigEnum, CapByExtent) {
  ConfigOptions opts;
  opts.max_devices = 64;
  const auto configs = enumerate_configs(space3(2, 4, 64), opts);
  for (const Config& c : configs) {
    EXPECT_LE(c[0], 2);
    EXPECT_LE(c[1], 4);
  }
}

TEST(ConfigEnum, ExtentCapDisabled) {
  ConfigOptions opts;
  opts.max_devices = 8;
  opts.cap_by_extent = false;
  bool oversplit = false;
  for (const Config& c : enumerate_configs(space3(2, 64, 64), opts))
    oversplit |= c[0] > 2;
  EXPECT_TRUE(oversplit);
}

TEST(ConfigEnum, FullUseRequiresExactProduct) {
  ConfigOptions opts;
  opts.max_devices = 8;
  opts.require_full_use = true;
  const auto configs = enumerate_configs(space3(64, 64, 64), opts);
  // #pow2 3-tuples with product exactly 8 = C(3+2,2) = 10.
  EXPECT_EQ(configs.size(), 10u);
  for (const Config& c : configs) EXPECT_EQ(c.degree(), 8);
}

TEST(ConfigEnum, NonPow2Factors) {
  ConfigOptions opts;
  opts.max_devices = 6;
  opts.powers_of_two_only = false;
  bool saw3 = false;
  for (const Config& c : enumerate_configs(space3(64, 64, 64), opts)) {
    EXPECT_LE(c.degree(), 6);
    for (i64 d = 0; d < 3; ++d) saw3 |= c[d] == 3;
  }
  EXPECT_TRUE(saw3);
}

TEST(ConfigCache, CoversAllNodesAndReportsK) {
  const Graph g = models::alexnet();
  ConfigOptions opts;
  opts.max_devices = 8;
  const ConfigCache cache(g, opts);
  EXPECT_EQ(cache.num_nodes(), g.num_nodes());
  i64 k = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(cache.at(v).empty());
    k = std::max(k, static_cast<i64>(cache.at(v).size()));
  }
  EXPECT_EQ(cache.max_configs(), k);
}

TEST(ConfigCache, PaperReportedKRangeForInception) {
  // Paper §III-C: 10-30 configurations per vertex at p = 8, up to ~100 at
  // p = 64 for InceptionV3.
  const Graph g = models::inception_v3();
  ConfigOptions opts;
  opts.max_devices = 8;
  EXPECT_LE(ConfigCache(g, opts).max_configs(), 30);
  opts.max_devices = 64;
  const i64 k64 = ConfigCache(g, opts).max_configs();
  EXPECT_GE(k64, 50);
  EXPECT_LE(k64, 120);
}

}  // namespace
}  // namespace pase
